package uniloc

// Bit-identity proof for the offload server's batch-per-tick
// scheduler, at the framework layer where Float64bits can be compared
// directly. The scheduler's contract is that a precomputed distance
// cache changes where distance columns are computed, never what they
// contain: columns are keyed on the pinned snapshot's identity, so a
// session whose live view has moved on (a crowdsourced compaction
// landed mid-batch) misses the cache and recomputes locally against
// its own view — exactly what an unbatched session would have done.
// This file lives in the root package because internal/offload cannot
// import internal/experiments (import cycle via experiments/timing).

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/imu"
	"repro/internal/mapstore"
	"repro/internal/noise"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/world"
)

// batchTestWorld builds the corridor world the scheduler tests walk:
// deterministic, three APs, one office hall.
func batchTestWorld() *world.World {
	return &world.World{
		Name:  "batch-identity",
		Noise: noise.Field{Seed: 8},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "hall", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 4), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2, CorridorWidth: 2.5},
		},
		APs: []world.Site{
			{ID: "a0", Pos: geo.Pt(5, 3), TxPowerDBm: 16},
			{ID: "a1", Pos: geo.Pt(20, 1), TxPowerDBm: 16},
			{ID: "a2", Pos: geo.Pt(35, 3), TxPowerDBm: 16},
		},
	}
}

// batchTestStore surveys the world and wraps the database in a shared
// store. Two calls build bit-identical stores.
func batchTestStore(t *testing.T, w *world.World) *mapstore.Store {
	t.Helper()
	db := fingerprint.Survey(w, rf.WiFiModel(), w.APs, 3, rand.New(rand.NewSource(1)))
	store := mapstore.New(db, mapstore.Config{Name: "wifi", RebuildBatch: 1 << 30})
	t.Cleanup(store.Close)
	return store
}

// batchTestFrameworks builds n identically-seeded wifi+PDR frameworks
// over the given store; framework i in one group is the exact twin of
// framework i in any other group built from this function.
func batchTestFrameworks(t *testing.T, w *world.World, store *mapstore.Store, n int) []*core.Framework {
	t.Helper()
	ms := core.NewModelSet()
	for _, name := range []string{schemes.NameWiFi, schemes.NameMotion} {
		for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
			ms.Put(&core.ErrorModel{
				Scheme: name, Env: env, Features: nil,
				Reg: &regress.Result{HasIntercept: true, Intercept: 3, ResidStd: 2},
			})
		}
	}
	fws := make([]*core.Framework, n)
	for i := range fws {
		ss := []schemes.Scheme{
			schemes.NewWiFi(store),
			schemes.NewPDR(w, schemes.DefaultPDRConfig(), rand.New(rand.NewSource(int64(2+i)))),
		}
		fw, err := core.NewFramework(ss, ms)
		if err != nil {
			t.Fatal(err)
		}
		fw.Reset(geo.Pt(2, 1+float64(i)*0.7))
		fws[i] = fw
	}
	return fws
}

// batchTestWalks precomputes one deterministic corridor walk per
// session.
func batchTestWalks(w *world.World, n, epochs int) [][]*sensing.Snapshot {
	model := rf.WiFiModel()
	walks := make([][]*sensing.Snapshot, n)
	for i := range walks {
		rnd := rand.New(rand.NewSource(int64(50 + i)))
		pos := geo.Pt(2, 1+float64(i)*0.7)
		walks[i] = make([]*sensing.Snapshot, epochs)
		for k := 0; k < epochs; k++ {
			pos = pos.Add(geo.Pt(0.7, 0))
			walks[i][k] = &sensing.Snapshot{
				Epoch:    k,
				WiFi:     model.Scan(w, w.APs, pos, rf.Reference(), rnd),
				Step:     &imu.StepEvent{LengthM: 0.7, HeadingR: 0, PeriodS: 0.5},
				LightLux: 300,
				MagVarUT: 2.2,
			}
		}
	}
	return walks
}

// precomputeBatch mirrors the scheduler's fused pass: one columnar
// AppendDistancesBatch over every distinct observation in the batch,
// keyed on the snapshot pinned at batch start.
func precomputeBatch(snap *mapstore.Snapshot, obs []rf.Vector) *fingerprint.DistCache {
	var uniq []rf.Vector
	seen := make(map[string]struct{}, len(obs))
	for _, o := range obs {
		if len(o) < 2 {
			continue
		}
		k := fingerprint.ObsKey(o)
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		uniq = append(uniq, o)
	}
	if len(uniq) == 0 {
		return nil
	}
	cache := fingerprint.NewDistCache()
	cols := snap.AppendDistancesBatch(uniq)
	for i, o := range uniq {
		cache.Put(snap, o, cols[i])
	}
	return cache
}

// stepGroup steps the given frameworks concurrently (one goroutine
// each, as the scheduler's worker pool does) and records each result.
func stepGroup(fws []*core.Framework, snaps []*sensing.Snapshot, out []core.StepResult) {
	var wg sync.WaitGroup
	for i := range fws {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = fws[i].Step(snaps[i])
		}(i)
	}
	wg.Wait()
}

// TestBatchedStepBitIdenticalAcrossSnapshotSwap walks four sessions
// through batched stepping — shared precomputed distance cache, one
// goroutine per session — against four isolated twins stepped with no
// cache at all, and requires every Best/BMA coordinate to match to the
// last bit. At the swap epoch a crowdsourced survey is compacted in
// after half the batch has stepped, so the remaining sessions run with
// a cache pinned to the superseded snapshot: the pointer key misses
// and they must recompute locally against the new version, exactly as
// their unbatched twins do.
func TestBatchedStepBitIdenticalAcrossSnapshotSwap(t *testing.T) {
	const nSessions = 4
	const epochs = 14
	const swapAt = 7
	const splitAt = 2 // sessions [0,2) step before the swap, [2,4) after

	survey := fingerprint.Fingerprint{
		Pos: geo.Pt(12, 2),
		Vec: rf.Vector{{ID: "a0", RSSI: -52}, {ID: "a1", RSSI: -58}},
	}
	w := batchTestWorld()
	walks := batchTestWalks(w, nSessions, epochs)

	batStore := batchTestStore(t, w)
	refStore := batchTestStore(t, w)
	bat := batchTestFrameworks(t, w, batStore, nSessions)
	ref := batchTestFrameworks(t, w, refStore, nSessions)

	var totalHits int64
	for k := 0; k < epochs; k++ {
		epochSnaps := make([]*sensing.Snapshot, nSessions)
		obs := make([]rf.Vector, nSessions)
		for i := range epochSnaps {
			epochSnaps[i] = walks[i][k]
			obs[i] = epochSnaps[i].WiFi
		}

		// Batched group: fused precompute against the pinned snapshot.
		pinned := batStore.Snapshot()
		cache := precomputeBatch(pinned, obs)
		for _, fw := range bat {
			fw.SetDistCache(cache)
		}
		batRes := make([]core.StepResult, nSessions)
		if k == swapAt {
			stepGroup(bat[:splitAt], epochSnaps[:splitAt], batRes[:splitAt])
			if err := batStore.Submit(survey); err != nil {
				t.Fatal(err)
			}
			if v := batStore.Rebuild(); v < 2 {
				t.Fatalf("rebuild did not advance the version (got %d)", v)
			}
			// The straddling half: live view is now v2, cache is v1.
			stepGroup(bat[splitAt:], epochSnaps[splitAt:], batRes[splitAt:])
		} else {
			stepGroup(bat, epochSnaps, batRes)
		}
		for _, fw := range bat {
			fw.SetDistCache(nil)
		}
		totalHits += cache.Hits()

		// Reference group: identical swap boundary, no cache.
		refRes := make([]core.StepResult, nSessions)
		if k == swapAt {
			stepGroup(ref[:splitAt], epochSnaps[:splitAt], refRes[:splitAt])
			if err := refStore.Submit(survey); err != nil {
				t.Fatal(err)
			}
			refStore.Rebuild()
			stepGroup(ref[splitAt:], epochSnaps[splitAt:], refRes[splitAt:])
		} else {
			stepGroup(ref, epochSnaps, refRes)
		}

		for i := range batRes {
			b, r := batRes[i], refRes[i]
			for _, c := range [][2]float64{
				{b.BMA.X, r.BMA.X}, {b.BMA.Y, r.BMA.Y},
				{b.Best.X, r.Best.X}, {b.Best.Y, r.Best.Y},
				{b.Tau, r.Tau},
			} {
				if math.Float64bits(c[0]) != math.Float64bits(c[1]) {
					t.Fatalf("session %d epoch %d: batched %x != unbatched %x (%v vs %v)",
						i, k, math.Float64bits(c[0]), math.Float64bits(c[1]), c[0], c[1])
				}
			}
			if b.BestIdx != r.BestIdx || b.OK != r.OK || b.Env != r.Env {
				t.Fatalf("session %d epoch %d: metadata diverged: %+v vs %+v", i, k, b, r)
			}
		}
	}
	if totalHits == 0 {
		t.Fatal("distance cache never hit — the batched path was not exercised")
	}
	if batStore.Version() == 1 {
		t.Fatal("snapshot version never swapped")
	}
}
