// Telemetry: walk the campus daily path with epoch tracing on, export
// the traces as JSONL, and decompose where every millisecond of a
// location estimate goes — the live, per-user version of the paper's
// Table V. The same observer hook drives uniloc-server's /metrics
// endpoint; here it runs in-process so the output is easy to poke at.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	uniloc "repro"
	"repro/internal/telemetry"
)

func main() {
	const seed = 42

	fmt.Println("training error models (office + open space)...")
	trained, err := uniloc.Train(seed)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	place := uniloc.Campus()
	assets := uniloc.NewAssets(place, seed+100)
	path := place.Paths[0]

	// Two sinks behind one observer: a collector for in-process
	// analysis and a JSONL file for offline tooling (jq, notebooks).
	tracePath := filepath.Join(os.TempDir(), "uniloc-traces.jsonl")
	f, err := os.Create(tracePath)
	if err != nil {
		log.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	col := &uniloc.TraceCollector{}
	obs := telemetry.MultiObserver(col, telemetry.NewJSONLWriter(f))

	ss := uniloc.NewSchemes(assets, rand.New(rand.NewSource(seed+7)))
	fw, err := uniloc.NewFramework(ss, trained.Models, uniloc.WithObserver(obs))
	if err != nil {
		log.Fatalf("framework: %v", err)
	}

	// A registry like the offload server's, fed from the traces: the
	// same histogram a Prometheus scrape of uniloc-server would see.
	reg := uniloc.NewMetricsRegistry()
	stepHist := reg.Histogram("uniloc_step_seconds", "Framework.Step latency", telemetry.DefBuckets())

	fmt.Printf("walking %s (%.0f m) with epoch tracing on...\n", path.Name, path.Line.Length())
	start, _ := path.Line.At(0)
	fw.Reset(start)
	rnd := rand.New(rand.NewSource(10))
	wk := uniloc.NewWalker(place.World, path, assets.DefaultWalkerConfig(), rnd)
	for !wk.Done() {
		snap, _ := wk.Next(fw.GPSWanted())
		fw.Step(snap)
	}

	traces := col.Traces()
	if len(traces) == 0 {
		log.Fatal("no traces collected")
	}

	// Decompose the walk from its own telemetry, Table V style.
	schemeNS := map[string]int64{}
	var predNS, combineNS, stepNS int64
	envs := map[string]int{}
	gpsOn, avail := 0, map[string]int{}
	for _, t := range traces {
		stepNS += t.StepNS
		predNS += t.PredictNS
		combineNS += t.CombineNS
		envs[t.Env]++
		if t.GPSWanted {
			gpsOn++
		}
		for _, st := range t.Schemes {
			schemeNS[st.Scheme] += st.EstimateNS
			if st.Available {
				avail[st.Scheme]++
			}
		}
		stepHist.ObserveDuration(time.Duration(t.StepNS))
	}
	n := float64(len(traces))
	ms := func(total int64) float64 { return float64(total) / n / 1e6 }

	fmt.Printf("\n%d epochs traced (%d indoor, %d outdoor; GPS wanted %.0f%% of epochs)\n",
		len(traces), envs["indoor"], envs["outdoor"], 100*float64(gpsOn)/n)
	fmt.Println("\nper-scheme server compute, measured per epoch:")
	for name, total := range schemeNS {
		fmt.Printf("  %-9s %7.3f ms  (available %3.0f%% of epochs)\n",
			name, ms(total), 100*float64(avail[name])/n)
	}
	fmt.Printf("\nerror prediction: %.3f ms   BMA+selection: %.3f ms   full step: %.3f ms\n",
		ms(predNS), ms(combineNS), ms(stepNS))
	fmt.Printf("step latency p50=%.2f ms  p95=%.2f ms\n",
		stepHist.Quantile(0.5)*1e3, stepHist.Quantile(0.95)*1e3)

	fi, _ := f.Stat()
	fmt.Printf("\ntraces exported to %s (%d bytes); analyze offline with e.g.\n", tracePath, fi.Size())
	fmt.Printf("  jq -s 'map(.step_ns) | add/length/1e6' %s\n", tracePath)
}
