// Quickstart: train UniLoc's error models, walk the campus daily path
// with all five schemes plus the ensemble, and print the error
// summary. This is the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	uniloc "repro"
)

func main() {
	const seed = 42

	fmt.Println("training error models (office + open space)...")
	trained, err := uniloc.Train(seed)
	if err != nil {
		log.Fatalf("train: %v", err)
	}

	place := uniloc.Campus()
	assets := uniloc.NewAssets(place, seed+100)
	path := place.Paths[0] // the daily path of the paper's §II

	fmt.Printf("walking %s (%.0f m)...\n", path.Name, path.Line.Length())
	run, err := uniloc.RunPath(assets, path, trained, uniloc.RunConfig{Seed: 7})
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	fmt.Println(uniloc.Summary(run))
	fmt.Println("uniloc2 is the locally-weighted BMA ensemble; uniloc1 selects the")
	fmt.Println("highest-confidence scheme; oracle knows the true errors.")
}
