// Mapstore demonstrates the shared radio-map store: one versioned,
// indexed fingerprint map serving every offload session, kept fresh by
// crowdsourced survey submissions. Two "phones" walk the campus
// concurrently, localizing against the same store snapshot; a third
// client plays the crowdsourcing fleet, streaming survey points
// (MsgSurvey, protocol v3) that the store's background compactor folds
// into new snapshot versions — without pausing either walker, and with
// results bit-identical to a linear scan of the same map at every
// version.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"

	uniloc "repro"
	"repro/internal/geo"
)

func main() {
	const seed = 42
	trained, err := uniloc.Train(seed)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	place := uniloc.Campus()
	assets := uniloc.NewAssets(place, seed+100)

	// --- One shared map per radio technology. Every session's schemes
	// read through atomic snapshots of these stores instead of scanning
	// private database copies.
	reg := uniloc.NewMetricsRegistry()
	wifiStore := uniloc.NewMapStore(assets.WiFiDB, uniloc.MapStoreConfig{Name: "wifi", RebuildBatch: 40})
	cellStore := uniloc.NewMapStore(assets.CellDB, uniloc.MapStoreConfig{Name: "cellular", RebuildBatch: 40})
	defer wifiStore.Close()
	defer cellStore.Close()
	fmt.Printf("shared wifi map: version %d, %d fingerprints\n",
		wifiStore.Version(), wifiStore.View().Len())

	// --- Server side: fresh framework per phone, all frameworks over
	// the same two stores; survey submissions routed into them.
	var sessionSeq atomic.Int64
	factory := func() (*uniloc.Framework, error) {
		n := sessionSeq.Add(1)
		ss := uniloc.NewSchemesOver(assets, wifiStore, cellStore, rand.New(rand.NewSource(seed+7+n)))
		return uniloc.NewFramework(ss, trained.Models)
	}
	srv, err := uniloc.NewOffloadServer(uniloc.OffloadServerConfig{
		Factory: factory,
		Metrics: reg,
		MapStores: map[byte]*uniloc.MapStore{
			uniloc.MapWiFi:     wifiStore,
			uniloc.MapCellular: cellStore,
		},
	})
	if err != nil {
		log.Fatalf("server: %v", err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	go srv.ListenAndServe(ln, func(err error) { log.Printf("server: %v", err) })
	fmt.Println("offload server on", ln.Addr(), "(shared map, ingestion on)")

	var wg sync.WaitGroup

	// --- The crowdsourcing fleet: one client walks a path and submits
	// its WiFi scan at every 10th (ground-truth) position as a survey
	// point. Fire-and-forget frames; the compactor batches them into
	// fresh snapshot versions while the other phones keep localizing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			log.Fatalf("surveyor dial: %v", err)
		}
		client := uniloc.NewOffloadClient(conn, "surveyor")
		defer func() { _ = client.Close() }()
		path := place.Paths[2]
		rnd := rand.New(rand.NewSource(301))
		wk := uniloc.NewWalker(place.World, path, assets.DefaultWalkerConfig(), rnd)
		submitted := 0
		for i := 0; !wk.Done(); i++ {
			snap, truth := wk.Next(true)
			if i%10 != 0 || len(snap.WiFi) < 2 {
				continue
			}
			if err := client.SubmitSurvey(uniloc.MapWiFi, truth, snap.WiFi); err != nil {
				log.Fatalf("surveyor submit: %v", err)
			}
			submitted++
		}
		fmt.Printf("surveyor: submitted %d wifi survey points along %s\n", submitted, path.Name)
	}()

	// --- Two phones localize concurrently against the shared store.
	for i, pathIdx := range []int{0, 1} {
		wg.Add(1)
		go func(phone, pathIdx int) {
			defer wg.Done()
			path := place.Paths[pathIdx]
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Fatalf("phone %d dial: %v", phone, err)
			}
			client := uniloc.NewOffloadClient(conn, fmt.Sprintf("phone-%d", phone))
			defer func() { _ = client.Close() }()

			start, _ := path.Line.At(0)
			if err := client.Hello(start); err != nil {
				log.Fatalf("phone %d hello: %v", phone, err)
			}
			rnd := rand.New(rand.NewSource(int64(99 + phone)))
			wk := uniloc.NewWalker(place.World, path, assets.DefaultWalkerConfig(), rnd)
			var sumErr float64
			var n int
			for !wk.Done() {
				snap, truth := wk.Next(true)
				res, err := client.Localize(snap)
				if err != nil {
					log.Fatalf("phone %d localize: %v", phone, err)
				}
				if !res.OK {
					continue
				}
				sumErr += geo.Pt(res.X, res.Y).Dist(truth)
				n++
			}
			fmt.Printf("phone %d (%s): %d epochs, mean fused error %.2f m\n",
				phone, path.Name, n, sumErr/float64(n))
		}(i, pathIdx)
	}
	wg.Wait()

	// Flush whatever the batch trigger hasn't folded in yet, then show
	// how far the shared map moved while the phones walked.
	wifiStore.Rebuild()
	snap := reg.Snapshot()
	ingested, _ := snap.Get("uniloc_surveys_ingested_total")
	fmt.Printf("shared wifi map after the walks: version %d, %d fingerprints (%.0f surveys ingested)\n",
		wifiStore.Version(), wifiStore.View().Len(), ingested)
	if wifiStore.Version() < 2 {
		log.Fatal("expected the shared map to advance past version 1")
	}

	_ = ln.Close()
	st := srv.Stats()
	fmt.Printf("server stats: opened=%d closed=%d epochs=%d avg-step=%v\n",
		st.Opened, st.Closed, st.EpochsServed, st.EpochLatencyAvg)
}
