// Offload demonstrates UniLoc's computation-offloading architecture
// (§IV-C) over real TCP connections: a server process hosts the five
// schemes plus the ensemble, building one private framework per
// session; two "phones" walk different daily paths at the same time,
// pre-process their inertial data into 4-byte step updates, upload
// each epoch's compact sensor summary, and receive fused positions.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"

	uniloc "repro"
	"repro/internal/geo"
)

func main() {
	const seed = 42
	trained, err := uniloc.Train(seed)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	place := uniloc.Campus()
	assets := uniloc.NewAssets(place, seed+100)

	// --- Server side: one fresh framework per connecting phone.
	var sessionSeq atomic.Int64
	factory := func() (*uniloc.Framework, error) {
		n := sessionSeq.Add(1)
		ss := uniloc.NewSchemes(assets, rand.New(rand.NewSource(seed+7+n)))
		return uniloc.NewFramework(ss, trained.Models)
	}
	srv, err := uniloc.NewOffloadServer(uniloc.OffloadServerConfig{Factory: factory})
	if err != nil {
		log.Fatalf("server: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	go srv.ListenAndServe(ln, func(err error) { log.Printf("server: %v", err) })
	fmt.Println("offload server on", ln.Addr())

	// --- Phone side: two concurrent walks on different paths.
	var wg sync.WaitGroup
	for i, pathIdx := range []int{0, 1} {
		wg.Add(1)
		go func(phone, pathIdx int) {
			defer wg.Done()
			path := place.Paths[pathIdx]
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				log.Fatalf("phone %d dial: %v", phone, err)
			}
			client := uniloc.NewOffloadClient(conn, fmt.Sprintf("phone-%d", phone))
			defer func() { _ = client.Close() }()

			start, _ := path.Line.At(0)
			if err := client.Hello(start); err != nil {
				log.Fatalf("phone %d hello: %v", phone, err)
			}

			rnd := rand.New(rand.NewSource(int64(99 + phone)))
			wk := uniloc.NewWalker(place.World, path, assets.DefaultWalkerConfig(), rnd)

			var sumErr float64
			var n int
			for !wk.Done() {
				snap, truth := wk.Next(true)
				res, err := client.Localize(snap)
				if err != nil {
					log.Fatalf("phone %d localize: %v", phone, err)
				}
				if !res.OK {
					continue // no scheme available this epoch
				}
				e := geo.Pt(res.X, res.Y).Dist(truth)
				sumErr += e
				n++
				if n%240 == 0 {
					fmt.Printf("phone %d (session %d) epoch %4d: fused=(%.1f, %.1f) err=%.2f m (selected: %s)\n",
						phone, client.SessionID(), n, res.X, res.Y, e, res.Selected)
				}
			}
			fmt.Printf("phone %d (%s): %d epochs, mean fused error %.2f m, %.1f B up/epoch\n",
				phone, path.Name, n, sumErr/float64(n),
				float64(client.BytesUp())/float64(n))
		}(i, pathIdx)
	}
	wg.Wait()
	_ = ln.Close()

	st := srv.Stats()
	fmt.Printf("\nserver stats: opened=%d closed=%d rejected=%d epochs=%d avg-step=%v\n",
		st.Opened, st.Closed, st.Rejected, st.EpochsServed, st.EpochLatencyAvg)
}
