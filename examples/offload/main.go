// Offload demonstrates UniLoc's computation-offloading architecture
// (§IV-C) over a real TCP connection: a server process hosts the five
// schemes plus the ensemble; the "phone" walks the daily path,
// pre-processes its inertial data into 4-byte step updates, uploads
// each epoch's compact sensor summary, and receives fused positions.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	uniloc "repro"
	"repro/internal/geo"
)

func main() {
	const seed = 42
	trained, err := uniloc.Train(seed)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	place := uniloc.Campus()
	assets := uniloc.NewAssets(place, seed+100)
	path := place.Paths[0]

	// --- Server side: framework behind a TCP listener.
	ss := uniloc.NewSchemes(assets, rand.New(rand.NewSource(seed+7)))
	fw, err := uniloc.NewFramework(ss, trained.Models)
	if err != nil {
		log.Fatalf("framework: %v", err)
	}
	start, _ := path.Line.At(0)
	fw.Reset(start)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	srv := uniloc.NewOffloadServer(fw)
	go srv.ListenAndServe(ln, func(err error) { log.Printf("server: %v", err) })
	fmt.Println("offload server on", ln.Addr())

	// --- Phone side: walk, upload, localize.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	client := uniloc.NewOffloadClient(conn)
	defer func() { _ = client.Close() }()

	rnd := rand.New(rand.NewSource(99))
	wk := uniloc.NewWalker(place.World, path, assets.DefaultWalkerConfig(), rnd)

	var sumErr float64
	var n int
	for !wk.Done() {
		snap, truth := wk.Next(true)
		res, err := client.Localize(snap)
		if err != nil {
			log.Fatalf("localize: %v", err)
		}
		e := geo.Pt(res.X, res.Y).Dist(truth)
		sumErr += e
		n++
		if n%120 == 0 {
			fmt.Printf("epoch %4d: fused=(%.1f, %.1f) true=%v err=%.2f m (selected: %s)\n",
				n, res.X, res.Y, truth, e, res.Selected)
		}
	}
	_ = ln.Close()
	fmt.Printf("\nwalk complete: %d epochs, mean fused error %.2f m\n", n, sumErr/float64(n))
	fmt.Printf("traffic: %d B up (%.1f B/epoch), %d B down\n",
		client.BytesUp(), float64(client.BytesUp())/float64(n), client.BytesDown())
}
