// Mall evaluates UniLoc in a place its error models never saw: the
// basement floor of a crowded shopping mall (the paper's Figure 8a
// scenario). Ten 300 m trajectories are walked; the example prints the
// per-system error distribution and the ensemble's gain over the best
// individual scheme.
package main

import (
	"fmt"
	"log"
	"sort"

	uniloc "repro"
)

func main() {
	const seed = 42
	trained, err := uniloc.Train(seed)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	place := uniloc.Mall()
	assets := uniloc.NewAssets(place, seed+200)

	perScheme := make(map[string][]float64)
	var u1, u2 []float64
	for i, path := range place.Paths {
		run, err := uniloc.RunPath(assets, path, trained, uniloc.RunConfig{Seed: int64(500 + i)})
		if err != nil {
			log.Fatalf("run %s: %v", path.Name, err)
		}
		for name, s := range run.Schemes {
			perScheme[name] = append(perScheme[name], s.Errors()...)
		}
		for i, v := range run.UniLoc1 {
			if !isNaN(v) {
				u1 = append(u1, v)
			}
			if !isNaN(run.UniLoc2[i]) {
				u2 = append(u2, run.UniLoc2[i])
			}
		}
	}

	fmt.Printf("%-10s %8s %8s %8s\n", "system", "mean", "p50", "p90")
	bestMean := 1e9
	names := make([]string, 0, len(perScheme))
	for n := range perScheme {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		xs := perScheme[name]
		if len(xs) == 0 {
			fmt.Printf("%-10s %8s %8s %8s\n", name, "n/a", "n/a", "n/a")
			continue
		}
		m := mean(xs)
		if m < bestMean {
			bestMean = m
		}
		fmt.Printf("%-10s %8.2f %8.2f %8.2f\n", name, m, pct(xs, 50), pct(xs, 90))
	}
	fmt.Printf("%-10s %8.2f %8.2f %8.2f\n", "uniloc1", mean(u1), pct(u1, 50), pct(u1, 90))
	fmt.Printf("%-10s %8.2f %8.2f %8.2f\n", "uniloc2", mean(u2), pct(u2, 50), pct(u2, 90))
	fmt.Printf("\nuniloc2 vs best individual scheme: x%.2f\n", bestMean/mean(u2))
}

func isNaN(v float64) bool { return v != v }

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func pct(xs []float64, p float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}
