// Dailypath reproduces the paper's motivating walk (§II, Figure 2): a
// daily path from an office to an open space crossing a semi-open
// corridor, a basement passageway and a car park. It prints each
// scheme's error as the walk progresses, showing how schemes
// complement each other segment by segment — the observation UniLoc is
// built on.
package main

import (
	"fmt"
	"log"
	"math"

	uniloc "repro"
)

func main() {
	const seed = 42
	trained, err := uniloc.Train(seed)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	place := uniloc.Campus()
	assets := uniloc.NewAssets(place, seed+100)
	path := place.Paths[0]

	run, err := uniloc.RunPath(assets, path, trained, uniloc.RunConfig{Seed: 7})
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("%8s  %-10s  %7s %7s %7s %7s %7s | %7s %7s\n",
		"dist(m)", "segment", "gps", "wifi", "cell", "motion", "fusion", "uniloc1", "uniloc2")
	next := 0.0
	for i := range run.DistM {
		if run.DistM[i] < next {
			continue
		}
		next = run.DistM[i] + 15
		f := func(v float64) string {
			if math.IsNaN(v) {
				return "--"
			}
			return fmt.Sprintf("%.1f", v)
		}
		fmt.Printf("%8.0f  %-10s  %7s %7s %7s %7s %7s | %7s %7s\n",
			run.DistM[i], run.Region[i],
			f(run.Schemes["gps"].Err[i]), f(run.Schemes["wifi"].Err[i]),
			f(run.Schemes["cellular"].Err[i]), f(run.Schemes["motion"].Err[i]),
			f(run.Schemes["fusion"].Err[i]),
			f(run.UniLoc1[i]), f(run.UniLoc2[i]))
	}

	fmt.Println("\nscheme chosen by UniLoc1 at the final epoch:", run.Selected[len(run.Selected)-1])
}
