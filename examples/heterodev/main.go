// Heterodev reproduces the device-heterogeneity experiment (§III-B,
// Figure 8d): a second phone model observes RSSI with a linear offset
// relative to the device that collected the fingerprints; UniLoc's
// fingerprinting schemes learn the offset online and undo it. The
// example runs the daily path with and without calibration and prints
// the tail-error reduction.
package main

import (
	"fmt"
	"log"
	"sort"

	uniloc "repro"
)

func main() {
	const seed = 42
	trained, err := uniloc.Train(seed)
	if err != nil {
		log.Fatalf("train: %v", err)
	}
	place := uniloc.Campus()
	assets := uniloc.NewAssets(place, seed+100)
	path := place.Paths[0]

	for _, calibrate := range []bool{false, true} {
		cfg := uniloc.RunConfig{
			Seed:      11,
			Walker:    assets.HeterogeneousWalkerConfig(),
			Calibrate: calibrate,
		}
		run, err := uniloc.RunPath(assets, path, trained, cfg)
		if err != nil {
			log.Fatalf("run: %v", err)
		}
		wifi := run.Schemes["wifi"].Errors()
		var u2 []float64
		for _, v := range run.UniLoc2 {
			if v == v {
				u2 = append(u2, v)
			}
		}
		label := "without calibration"
		if calibrate {
			label = "with online calibration"
		}
		fmt.Printf("%s:\n", label)
		fmt.Printf("  RADAR (wifi): p50=%.2f m  p90=%.2f m\n", pct(wifi, 50), pct(wifi, 90))
		fmt.Printf("  UniLoc2:      p50=%.2f m  p90=%.2f m\n\n", pct(u2, 50), pct(u2, 90))
	}
}

func pct(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p / 100 * float64(len(sorted)-1))
	return sorted[i]
}
