package uniloc

// Bit-identity of the parallel epoch pipeline: a framework running its
// five schemes on a worker pool (core.WithParallel) must emit exactly
// the StepResult stream of a sequential framework over a full campus
// walk — same floats bit for bit, same gating decisions, hence the
// same walker randomness downstream. This is the contract that lets
// uniloc-server enable -step-workers without changing a single output
// (DESIGN.md §11). CI runs this under -race, which also exercises the
// pool's happens-before edges.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/sensing"
)

// bitsEq reports float equality at the representation level (NaN-safe,
// distinguishes ±0) — "bit-identical" taken literally.
func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

func ptEq(a, b geo.Point) bool {
	return bitsEq(a.X, b.X) && bitsEq(a.Y, b.Y)
}

func TestParallelStepMatchesSequential(t *testing.T) {
	s := getSuite(t)
	tr, err := s.Lab.Trained()
	if err != nil {
		t.Fatal(err)
	}
	campus := s.Lab.Campus()
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		t.Fatal("path1 missing")
	}
	start, _ := path.Line.At(0)

	// Each framework drives its own identically seeded walker and its
	// own gating decisions, exactly like eval.RunPath: if any output
	// ever diverged, the walker streams would too, and the test fails
	// at that epoch.
	run := func(fw *core.Framework) []core.StepResult {
		fw.Reset(start)
		wk := NewWalker(campus.Place.World, path, campus.DefaultWalkerConfig(), rand.New(rand.NewSource(10)))
		var out []core.StepResult
		gps := true
		for !wk.Done() {
			var snap *sensing.Snapshot
			snap, _ = wk.Next(gps)
			out = append(out, fw.Step(snap))
			gps = fw.GPSWanted()
		}
		return out
	}
	mk := func(opts ...core.Option) *core.Framework {
		ss := campus.Schemes(rand.New(rand.NewSource(9)))
		fw, err := core.NewFramework(ss, tr.Models, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return fw
	}

	seqFW := mk()
	parFW := mk(core.WithParallel(4))
	defer parFW.Close()
	seq := run(seqFW)
	par := run(parFW)

	if len(seq) < 100 {
		t.Fatalf("walk too short to be meaningful: %d epochs", len(seq))
	}
	if len(seq) != len(par) {
		t.Fatalf("epoch counts diverged: sequential %d, parallel %d", len(seq), len(par))
	}
	for i := range seq {
		a, b := seq[i], par[i]
		if a.Epoch != b.Epoch || a.Env != b.Env || !bitsEq(a.Tau, b.Tau) ||
			a.BestIdx != b.BestIdx || !ptEq(a.Best, b.Best) || !ptEq(a.BMA, b.BMA) || a.OK != b.OK {
			t.Fatalf("epoch %d diverged:\nseq %+v\npar %+v", i, a, b)
		}
		if len(a.Schemes) != len(b.Schemes) {
			t.Fatalf("epoch %d scheme counts diverged", i)
		}
		for j := range a.Schemes {
			sa, sb := a.Schemes[j], b.Schemes[j]
			if sa.Name != sb.Name || sa.Available != sb.Available ||
				!ptEq(sa.Pos, sb.Pos) ||
				!bitsEq(sa.PredErr, sb.PredErr) || !bitsEq(sa.Sigma, sb.Sigma) ||
				!bitsEq(sa.Conf, sb.Conf) || !bitsEq(sa.Weight, sb.Weight) {
				t.Fatalf("epoch %d scheme %s diverged:\nseq %+v\npar %+v", i, sa.Name, sa, sb)
			}
		}
	}
}
