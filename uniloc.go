// Package uniloc is the public API of the UniLoc reproduction: a
// unified mobile localization framework that runs several localization
// schemes in parallel, predicts each scheme's instantaneous error from
// real-time sensor-data features, and fuses their outputs with a
// locally-weighted Bayesian-Model-Averaging ensemble (Du, Tong, Li —
// "UniLoc: A Unified Mobile Localization Framework Exploiting Scheme
// Diversity", ICDCS 2018).
//
// The package re-exports the framework core plus the simulated
// mobile-sensing substrate (worlds, walkers, radio, GNSS, inertial
// pipeline) that stands in for the paper's physical testbed. A typical
// session:
//
//	place := uniloc.Campus()
//	assets := uniloc.NewAssets(place, 42)
//	trained, _ := uniloc.Train(42)
//	run, _ := uniloc.RunPath(assets, place.Paths[0], trained, uniloc.RunConfig{Seed: 7})
//	fmt.Println(uniloc.Summary(run))
//
// See examples/ for runnable programs and internal/experiments for the
// paper's full evaluation.
package uniloc

import (
	"math/rand"
	"net"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/offload"
	"repro/internal/scenario"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/telemetry"
	"repro/internal/walker"
	"repro/internal/world"
)

// Core framework types.
type (
	// Framework is the UniLoc runtime: N schemes, error models,
	// confidences, and the two ensemble outputs.
	Framework = core.Framework
	// Option configures a Framework.
	Option = core.Option
	// StepResult is everything UniLoc computes for one sensing epoch.
	StepResult = core.StepResult
	// SchemeResult is the per-scheme slice of a StepResult.
	SchemeResult = core.SchemeResult
	// ModelSet holds trained error models per scheme and environment.
	ModelSet = core.ModelSet
	// ErrorModel predicts one scheme's error from its features.
	ErrorModel = core.ErrorModel
	// Trainer accumulates training samples and fits error models.
	Trainer = core.Trainer
	// EnvClass is the indoor/outdoor error-model class.
	EnvClass = core.EnvClass
	// WeightMode selects the BMA weighting variant.
	WeightMode = core.WeightMode
)

// Telemetry types (observability layer).
type (
	// Observer receives one EpochTrace per framework step.
	Observer = telemetry.Observer
	// EpochTrace is the per-epoch structured record: per-scheme
	// estimate/prediction durations, environment class, gating
	// decision, confidences and weights.
	EpochTrace = telemetry.EpochTrace
	// SchemeTrace is one scheme's share of an EpochTrace.
	SchemeTrace = telemetry.SchemeTrace
	// TraceCollector retains every trace for offline analysis.
	TraceCollector = telemetry.Collector
	// MetricsRegistry is a concurrency-safe registry of counters,
	// gauges and histograms with Prometheus/JSON exposition.
	MetricsRegistry = telemetry.Registry
)

// NewMetricsRegistry creates an empty metrics registry, suitable for
// OffloadServerConfig.Metrics and telemetry HTTP exposition.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// Scheme and sensing types.
type (
	// Scheme is a black-box localization scheme.
	Scheme = schemes.Scheme
	// Estimate is a scheme's per-epoch output.
	Estimate = schemes.Estimate
	// Snapshot is one epoch of sensor data.
	Snapshot = sensing.Snapshot
	// Point is a position in the local map frame (meters).
	Point = geo.Point
	// World is a simulated environment.
	World = world.World
	// Place is a world plus its walking paths.
	Place = scenario.Place
	// Path is a named walking trajectory.
	Path = scenario.Path
	// Assets bundles a place's fingerprint databases and GNSS receiver.
	Assets = scenario.Assets
	// WalkerConfig configures snapshot generation along a path.
	WalkerConfig = walker.Config
	// Walker generates sensor snapshots along a path.
	Walker = walker.Walker
)

// Evaluation types.
type (
	// Trained bundles the artifacts of the offline training phase.
	Trained = eval.Trained
	// RunConfig tunes an evaluation walk.
	RunConfig = eval.RunConfig
	// PathRun records every per-epoch outcome of an evaluation walk.
	PathRun = eval.PathRun
)

// Environment classes.
const (
	EnvIndoor  = core.EnvIndoor
	EnvOutdoor = core.EnvOutdoor
)

// Weighting modes for the BMA ensemble.
const (
	WeightPrecision = core.WeightPrecision
	WeightConfOnly  = core.WeightConfOnly
	WeightUniform   = core.WeightUniform
)

// NewFramework builds a UniLoc framework over the given schemes and
// trained error models.
func NewFramework(ss []Scheme, models *ModelSet, opts ...Option) (*Framework, error) {
	return core.NewFramework(ss, models, opts...)
}

// WithGPSGating enables or disables the GPS energy-gating decision.
func WithGPSGating(on bool) Option { return core.WithGPSGating(on) }

// WithWeighting overrides the ensemble weighting mode.
func WithWeighting(mode WeightMode) Option { return core.WithWeighting(mode) }

// WithParallel fans each Step's per-scheme work out to a persistent
// worker pool of the given size. Results are bit-identical to
// sequential execution; <= 1 (the default) keeps the sequential path.
// Call Framework.Close when done to stop the pool's goroutines.
func WithParallel(workers int) Option { return core.WithParallel(workers) }

// WithPruneFrac overrides the confidence-pruning threshold.
func WithPruneFrac(frac float64) Option { return core.WithPruneFrac(frac) }

// WithObserver attaches a telemetry observer that receives one
// EpochTrace per framework step.
func WithObserver(o Observer) Option { return core.WithObserver(o) }

// Campus returns the simulated campus with the eight daily paths.
func Campus() *Place { return scenario.Campus() }

// Mall returns the simulated shopping-mall basement floor.
func Mall() *Place { return scenario.Mall() }

// UrbanOpenSpace returns the simulated urban plaza.
func UrbanOpenSpace() *Place { return scenario.UrbanOpenSpace() }

// TrainingOffice returns the office place used to train indoor error
// models.
func TrainingOffice() *Place { return scenario.TrainingOffice() }

// TrainingOpenSpace returns the open-space place used to train outdoor
// error models.
func TrainingOpenSpace() *Place { return scenario.TrainingOpenSpace() }

// NewAssets surveys a place (fingerprint databases, GNSS receiver)
// deterministically from the seed.
func NewAssets(p *Place, seed int64) *Assets { return scenario.NewAssets(p, seed) }

// NewSchemes returns fresh instances of the five localization schemes
// for a surveyed place, in the canonical order [gps, wifi, cellular,
// motion, fusion].
func NewSchemes(a *Assets, rnd *rand.Rand) []Scheme { return a.Schemes(rnd) }

// Train runs the paper's offline error-modeling workflow and returns
// the trained models plus baseline profiles. Deterministic in the
// seed.
func Train(seed int64) (*Trained, error) { return eval.Train(seed) }

// RunPath walks one path with the full UniLoc stack and every
// individual scheme, recording all per-epoch outcomes.
func RunPath(a *Assets, p Path, tr *Trained, cfg RunConfig) (*PathRun, error) {
	return eval.RunPath(a, p, tr, cfg)
}

// Summary renders mean / median / 90th-percentile error for every
// series of a run as an aligned text table.
func Summary(run *PathRun) string {
	return eval.SummaryTable("run: "+run.Place+"/"+run.Path, eval.Merge([]*eval.PathRun{run})).String()
}

// Offloading types (§IV-C): the phone↔server protocol that moves
// scheme execution, error prediction and BMA off the phone.
type (
	// OffloadServer runs one private framework per connected phone.
	OffloadServer = offload.Server
	// OffloadServerConfig configures the multi-session server
	// (framework factory, session limit, idle eviction).
	OffloadServerConfig = offload.ServerConfig
	// OffloadStats is a snapshot of the server's session counters.
	OffloadStats = offload.Stats
	// OffloadClient is the phone side of the protocol.
	OffloadClient = offload.Client
	// OffloadResult is the server's per-epoch reply.
	OffloadResult = offload.Result
	// FrameworkFactory builds one fresh framework per offload session.
	FrameworkFactory = core.FrameworkFactory
)

// NewOffloadServer builds a multi-session offload server: each
// connecting phone gets its own framework from cfg.Factory, so
// concurrent walks never share localization state.
func NewOffloadServer(cfg OffloadServerConfig) (*OffloadServer, error) {
	return offload.NewServer(cfg)
}

// NewOffloadClient wraps an established connection to an offload
// server. The optional clientID labels the phone in the server's
// per-session stats.
func NewOffloadClient(conn net.Conn, clientID ...string) *OffloadClient {
	return offload.NewClient(conn, clientID...)
}

// NewWalker generates sensor snapshots along a path of a world.
func NewWalker(w *World, p Path, cfg WalkerConfig, rnd *rand.Rand) *Walker {
	return walker.New(w, p.Line, cfg, rnd)
}

// Shared radio-map store: versioned, indexed fingerprint maps that any
// number of sessions read through immutable snapshots while
// crowdsourced survey points are folded in by a background compactor.
type (
	// Fingerprint is one surveyed location with its RSSI vector.
	Fingerprint = fingerprint.Fingerprint
	// FingerprintDB is the plain linear-scan fingerprint database.
	FingerprintDB = fingerprint.DB
	// RadioMap hands out self-consistent read views over a radio map;
	// both *FingerprintDB and *MapStore implement it.
	RadioMap = fingerprint.Map
	// MapStore is a versioned shared radio map with indexed snapshots.
	MapStore = mapstore.Store
	// MapStoreConfig parameterizes a MapStore (rebuild batch/timer,
	// grid cell size, metrics).
	MapStoreConfig = mapstore.Config
)

// Survey map identifiers for OffloadClient.SubmitSurvey.
const (
	MapWiFi     = offload.MapWiFi
	MapCellular = offload.MapCellular
)

// NewMapStore builds a versioned store over a fingerprint database's
// points. The database is copied; the store's background compactor
// starts immediately — call Close to stop it.
func NewMapStore(db *FingerprintDB, cfg MapStoreConfig) *MapStore { return mapstore.New(db, cfg) }

// NewSchemesOver is NewSchemes with the WiFi and cellular radio maps
// supplied by the caller — e.g. shared MapStores serving every session
// from one indexed map — instead of the Assets' private databases.
func NewSchemesOver(a *Assets, wifiMap, cellMap RadioMap, rnd *rand.Rand) []Scheme {
	return a.SchemesOver(wifiMap, cellMap, rnd)
}
