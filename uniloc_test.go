package uniloc

import (
	"math/rand"
	"net"
	"testing"
)

// sharedTrained caches the trained models for the root-package tests.
var sharedTrained *Trained

func trainedOnce(t *testing.T) *Trained {
	t.Helper()
	if sharedTrained == nil {
		tr, err := Train(42)
		if err != nil {
			t.Fatalf("Train: %v", err)
		}
		sharedTrained = tr
	}
	return sharedTrained
}

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	tr := trainedOnce(t)
	place := Campus()
	assets := NewAssets(place, 142)
	path := place.Paths[0]
	run, err := RunPath(assets, path, tr, RunConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Truth) == 0 {
		t.Fatal("no epochs")
	}
	if s := Summary(run); s == "" {
		t.Error("empty summary")
	}
	// The headline qualitative property through the public API: the
	// ensemble beats the weak schemes by a wide margin.
	u2 := 0.0
	n := 0
	for _, v := range run.UniLoc2 {
		if v == v {
			u2 += v
			n++
		}
	}
	u2 /= float64(n)
	cell := 0.0
	cn := 0
	for i, v := range run.Schemes["cellular"].Err {
		if run.Schemes["cellular"].Avail[i] {
			cell += v
			cn++
		}
	}
	cell /= float64(cn)
	if u2 >= cell {
		t.Errorf("uniloc2 (%.2f) should beat cellular (%.2f)", u2, cell)
	}
}

func TestPublicFrameworkConstruction(t *testing.T) {
	if testing.Short() {
		t.Skip("needs training")
	}
	tr := trainedOnce(t)
	place := TrainingOffice()
	assets := NewAssets(place, 42)
	ss := NewSchemes(assets, rand.New(rand.NewSource(1)))
	fw, err := NewFramework(ss, tr.Models,
		WithGPSGating(false),
		WithWeighting(WeightConfOnly),
		WithPruneFrac(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	start, _ := place.Paths[0].Line.At(0)
	fw.Reset(start)
	if !fw.GPSWanted() {
		t.Error("gating disabled should always want GPS")
	}
}

func TestPublicOffloadOverTCP(t *testing.T) {
	if testing.Short() {
		t.Skip("needs training")
	}
	tr := trainedOnce(t)
	place := TrainingOffice()
	assets := NewAssets(place, 42)
	factory := func() (*Framework, error) {
		ss := NewSchemes(assets, rand.New(rand.NewSource(2)))
		return NewFramework(ss, tr.Models)
	}
	srv, err := NewOffloadServer(OffloadServerConfig{Factory: factory})
	if err != nil {
		t.Fatal(err)
	}
	path := place.Paths[0]
	start, _ := path.Line.At(0)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ListenAndServe(ln, nil)
	defer func() { _ = ln.Close() }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewOffloadClient(conn, "test-phone")
	defer func() { _ = client.Close() }()
	if err := client.Hello(start); err != nil {
		t.Fatal(err)
	}

	rnd := rand.New(rand.NewSource(3))
	wk := NewWalker(place.World, path, assets.DefaultWalkerConfig(), rnd)
	epochs := 0
	var lastErr float64
	for !wk.Done() && epochs < 60 {
		snap, truth := wk.Next(false)
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("epoch %d: %v", epochs, err)
		}
		lastErr = res.Pos().Dist(truth)
		epochs++
	}
	if epochs == 0 {
		t.Fatal("no epochs localized")
	}
	if lastErr > 15 {
		t.Errorf("final fused error %.1f m over TCP", lastErr)
	}
}
