// Command uniloc-trace analyzes span JSONL files produced by a
// uniloc-server run with -trace-jsonl (or saved from /debug/traces):
// it assembles span records into trace trees and answers the questions
// a slow-epoch investigation starts with — which traces were slowest,
// where inside them the time went, and how much of each frame's
// latency its children actually explain.
//
//	uniloc-trace -f spans.jsonl                 # slowest traces + phase table
//	uniloc-trace -f spans.jsonl -top 3          # only the 3 slowest
//	uniloc-trace -f spans.jsonl -session phone7 # one client's traces
//	uniloc-trace -f spans.jsonl -trace <hex id> # one trace, span by span
//	uniloc-trace -f spans.jsonl -critical-path  # per-span child coverage
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/telemetry/trace"
)

func main() {
	file := flag.String("f", "", "span JSONL file (required; - reads stdin)")
	top := flag.Int("top", 10, "show the N slowest traces")
	session := flag.String("session", "", "only traces touching this session")
	traceID := flag.String("trace", "", "only the trace with this hex ID (prints every span)")
	critical := flag.Bool("critical-path", false, "per-span child coverage: how much of each span its children explain")
	flag.Parse()

	if *file == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(os.Stdout, *file, *top, *session, *traceID, *critical); err != nil {
		log.Fatalf("uniloc-trace: %v", err)
	}
}

func run(w *os.File, file string, top int, session, traceID string, critical bool) error {
	in := os.Stdin
	if file != "-" {
		f, err := os.Open(file)
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	recs, err := trace.ReadJSONL(in)
	if err != nil {
		return err
	}
	ptrs := make([]*trace.Record, len(recs))
	for i := range recs {
		ptrs[i] = &recs[i]
	}
	trees := trace.Assemble(ptrs)

	filtered := trees[:0:0]
	for _, tr := range trees {
		if session != "" && tr.Session != session {
			continue
		}
		if traceID != "" && tr.Trace != traceID {
			continue
		}
		filtered = append(filtered, tr)
	}
	if len(filtered) == 0 {
		return fmt.Errorf("no matching traces among %d spans", len(recs))
	}

	if traceID != "" {
		printTrace(w, filtered[0], critical)
		return nil
	}

	// Slowest traces first.
	sort.Slice(filtered, func(i, j int) bool { return filtered[i].DurNS > filtered[j].DurNS })
	shown := filtered
	if top > 0 && len(shown) > top {
		shown = shown[:top]
	}
	fmt.Fprintf(w, "%d traces (%d spans); slowest %d:\n\n", len(filtered), len(recs), len(shown))
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "TRACE\tSESSION\tROOT\tDURATION\tSPANS\tCOMPLETE")
	for _, tr := range shown {
		root := "?"
		if tr.Root != nil {
			root = tr.Root.Name
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%v\t%d\t%v\n",
			tr.Trace, tr.Session, root, time.Duration(tr.DurNS), len(tr.Spans), tr.Complete())
	}
	tw.Flush()

	fmt.Fprintf(w, "\nwhere the time went (all %d matching traces):\n\n", len(filtered))
	tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PHASE\tCOUNT\tTOTAL\tMEAN\tMAX")
	for _, p := range trace.Phases(filtered) {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%v\t%v\n",
			p.Name, p.Count, time.Duration(p.TotalNS),
			time.Duration(p.TotalNS/int64(p.Count)), time.Duration(p.MaxNS))
	}
	tw.Flush()

	if critical {
		fmt.Fprintln(w)
		for _, tr := range shown {
			printCoverage(w, tr)
		}
	}
	return nil
}

// printTrace renders one trace span by span, indented by depth.
func printTrace(w *os.File, tr *trace.Tree, critical bool) {
	fmt.Fprintf(w, "trace %s session=%s duration=%v spans=%d complete=%v\n\n",
		tr.Trace, tr.Session, time.Duration(tr.DurNS), len(tr.Spans), tr.Complete())
	byID := make(map[string]*trace.Record, len(tr.Spans))
	for _, s := range tr.Spans {
		byID[s.Span] = s
	}
	// Depth comes from walking the parent chain, not print order: siblings
	// can share a start timestamp, so start-sorting alone does not
	// guarantee parents precede children.
	var depthOf func(s *trace.Record) int
	depthOf = func(s *trace.Record) int {
		d := 0
		for s.Parent != "" {
			p, ok := byID[s.Parent]
			if !ok {
				return d + 1 // parent span missing from this file (e.g. remote side)
			}
			s, d = p, d+1
			if d > len(tr.Spans) { // cycle guard on malformed input
				break
			}
		}
		return d
	}
	for _, s := range tr.Spans {
		fmt.Fprintf(w, "%s%-20s +%-12v %-12v %s\n",
			strings.Repeat("  ", depthOf(s)), s.Name,
			time.Duration(s.StartNS-tr.StartNS), time.Duration(s.DurNS), attrString(s))
	}
	if critical {
		fmt.Fprintln(w)
		printCoverage(w, tr)
	}
}

// printCoverage prints, for every span with children, how much of its
// duration the children explain.
func printCoverage(w *os.File, tr *trace.Tree) {
	fmt.Fprintf(w, "critical path, trace %s:\n", tr.Trace)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "  SPAN\tDURATION\tCHILDREN\tEXPLAINED\tSELF/GAP")
	for _, s := range tr.Spans {
		cov := trace.CriticalPath(tr, s)
		if cov.ChildCount == 0 {
			continue
		}
		fmt.Fprintf(tw, "  %s\t%v\t%d\t%.1f%%\t%v\n",
			s.Name, time.Duration(s.DurNS), cov.ChildCount,
			100*cov.Fraction, time.Duration(cov.GapNS))
	}
	tw.Flush()
}

// attrString renders a span's attributes compactly.
func attrString(s *trace.Record) string {
	if len(s.Attrs) == 0 {
		return ""
	}
	parts := make([]string, 0, len(s.Attrs))
	for _, a := range s.Attrs {
		parts = append(parts, fmt.Sprintf("%s=%v", a.K, a.V))
	}
	return strings.Join(parts, " ")
}
