// Command uniloc-server hosts the UniLoc offload server (§IV-C): it
// trains the error models, builds the campus schemes, and serves the
// binary offloading protocol over TCP. Phones (see examples/offload)
// connect, upload pre-processed sensor epochs, and receive fused
// positions.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/offload"
	"repro/internal/scenario"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7031", "listen address")
	seed := flag.Int64("seed", 42, "master random seed")
	flag.Parse()

	if err := run(*addr, *seed); err != nil {
		log.Fatalf("uniloc-server: %v", err)
	}
}

func run(addr string, seed int64) error {
	tr, err := eval.Train(seed)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	campus := scenario.NewAssets(scenario.Campus(), seed+100)
	ss := campus.Schemes(rand.New(rand.NewSource(seed + 7)))
	fw, err := core.NewFramework(ss, tr.Models)
	if err != nil {
		return err
	}
	start, _ := campus.Place.Paths[0].Line.At(0)
	fw.Reset(start)

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("uniloc-server listening on %s (campus, %d schemes)", ln.Addr(), len(ss))
	srv := offload.NewServer(fw)
	srv.ListenAndServe(ln, func(err error) { log.Printf("conn error: %v", err) })
	return nil
}
