// Command uniloc-server hosts the UniLoc offload server (§IV-C): it
// trains the error models, builds the campus scheme assets, and serves
// the binary offloading protocol over TCP. Phones (see
// examples/offload) connect, perform the session handshake, upload
// pre-processed sensor epochs, and receive fused positions. Every
// connection gets its own framework instance, so any number of phones
// can walk concurrently without sharing localization state.
//
// With -metrics-addr set, a second HTTP listener exposes the
// telemetry registry (RED metrics: sessions, epochs, frame bytes,
// step-latency histogram) as Prometheus text at /metrics and JSON at
// /metrics.json, plus expvar at /debug/vars and pprof at
// /debug/pprof/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/offload"
	"repro/internal/scenario"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7031", "listen address")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof/ on this address (empty = off)")
	seed := flag.Int64("seed", 42, "master random seed")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent sessions (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "evict sessions idle this long (0 = never)")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "log session stats this often (0 = never)")
	flag.Parse()

	if err := run(*addr, *metricsAddr, *seed, *maxSessions, *idleTimeout, *statsEvery); err != nil {
		log.Fatalf("uniloc-server: %v", err)
	}
}

func run(addr, metricsAddr string, seed int64, maxSessions int, idleTimeout, statsEvery time.Duration) error {
	tr, err := eval.Train(seed)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	campus := scenario.NewAssets(scenario.Campus(), seed+100)

	// One fresh framework per session: the shared campus assets
	// (fingerprint databases, constellation) are read-only, while the
	// scheme instances and their particle-filter randomness are
	// private to the session.
	var sessionSeq atomic.Int64
	factory := func() (*core.Framework, error) {
		n := sessionSeq.Add(1)
		ss := campus.Schemes(rand.New(rand.NewSource(seed + 7 + n)))
		return core.NewFramework(ss, tr.Models)
	}

	reg := telemetry.NewRegistry()
	srv, err := offload.NewServer(offload.ServerConfig{
		Factory:     factory,
		MaxSessions: maxSessions,
		IdleTimeout: idleTimeout,
		Metrics:     reg,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("uniloc-server listening on %s (campus, max-sessions=%d, idle-timeout=%v)",
		ln.Addr(), maxSessions, idleTimeout)

	// Optional exposition endpoint: Prometheus + JSON metrics, expvar,
	// pprof.
	var metricsSrv *http.Server
	if metricsAddr != "" {
		mln, err := net.Listen("tcp", metricsAddr)
		if err != nil {
			_ = ln.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsSrv = &http.Server{Handler: telemetry.NewMux(reg)}
		go func() {
			log.Printf("metrics on http://%s/metrics (pprof at /debug/pprof/)", mln.Addr())
			if err := metricsSrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	// Periodic stats logging, driven by the telemetry snapshot. The
	// ticker is owned here and stopped on shutdown — a bare time.Tick
	// would leak the goroutine and keep firing into a dead server.
	statsDone := make(chan struct{})
	statsStopped := make(chan struct{})
	go func() {
		defer close(statsStopped)
		if statsEvery <= 0 {
			<-statsDone
			return
		}
		tick := time.NewTicker(statsEvery)
		defer tick.Stop()
		for {
			select {
			case <-statsDone:
				return
			case <-tick.C:
				logStats(reg)
			}
		}
	}()

	// Close the listener on SIGINT/SIGTERM: ListenAndServe drains its
	// connections and returns, then the stats ticker and metrics
	// endpoint are shut down in order.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, shutting down", s)
		_ = ln.Close()
	}()

	srv.ListenAndServe(ln, func(err error) { log.Printf("conn error: %v", err) })
	signal.Stop(sig)

	close(statsDone)
	<-statsStopped
	logStats(reg) // final snapshot so short runs still report

	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = metricsSrv.Shutdown(ctx)
	}
	return nil
}

// logStats renders the session/epoch counters from one telemetry
// snapshot — the same numbers a /metrics scrape would see.
func logStats(reg *telemetry.Registry) {
	snap := reg.Snapshot()
	get := func(name string, labels ...string) float64 {
		v, _ := snap.Get(name, labels...)
		return v
	}
	epochs := get("uniloc_epochs_served_total")
	avgStep := time.Duration(0)
	if h := reg.Histogram("uniloc_step_seconds", "", nil); h.Count() > 0 {
		avgStep = time.Duration(h.Sum() / float64(h.Count()) * float64(time.Second)).Round(time.Microsecond)
	}
	log.Printf("sessions: active=%.0f opened=%.0f closed=%.0f rejected=%.0f evicted=%.0f epochs=%.0f avg-step=%v bytes-in=%.0f bytes-out=%.0f",
		get("uniloc_sessions_active"), get("uniloc_sessions_opened_total"),
		get("uniloc_sessions_closed_total"), get("uniloc_sessions_rejected_total"),
		get("uniloc_sessions_evicted_total"), epochs, avgStep,
		get("uniloc_frame_bytes_total", "dir", "in"), get("uniloc_frame_bytes_total", "dir", "out"))
}
