// Command uniloc-server hosts the UniLoc offload server (§IV-C): it
// trains the error models, builds the campus scheme assets, and serves
// the binary offloading protocol over TCP. Phones (see
// examples/offload) connect, perform the session handshake, upload
// pre-processed sensor epochs, and receive fused positions. Every
// connection gets its own framework instance, so any number of phones
// can walk concurrently without sharing localization state.
//
// With -shared-map (the default), the WiFi and cellular fingerprint
// databases live in versioned mapstore.Stores: every session reads the
// same indexed snapshot instead of scanning a private copy, and — with
// -ingest — clients may contribute crowdsourced survey points
// (MsgSurvey, protocol v3) that a background compactor folds into new
// snapshot versions without pausing readers.
//
// With -metrics-addr set, a second HTTP listener exposes the
// telemetry registry (RED metrics: sessions, epochs, frame bytes,
// step-latency histogram, map-store lookups/rebuilds/versions) as
// Prometheus text at /metrics and JSON at /metrics.json, plus expvar
// at /debug/vars and pprof at /debug/pprof/.
//
// Cluster deployment (see DESIGN.md §15): -drain-grace turns SIGTERM
// into a graceful drain — in-flight sessions finish their current
// epoch and close cleanly so clients reconnect through the router
// instead of losing an answer. -replicate-listen makes this node the
// replication leader (it streams map-store compaction deltas to
// followers); -replicate-from makes it a follower (it applies the
// leader's deltas, never compacts locally, and forwards crowdsourced
// surveys upstream).
//
// Transparent node failover (DESIGN.md §17): -handoff-listen and
// -handoff-peers put this node in a session-handoff mesh — after every
// served epoch the session's full framework state (particle sets, HMM
// beliefs, RNG cursors) is shipped asynchronously to the peer nodes,
// and a resumed walk this node never served is fetched from the mesh
// and injected, so a kill -9 of one node restarts zero walks.
// -replicate-from accepts a comma-separated candidate list (leader
// first, standbys after); -standby makes a follower retain the
// leader's delta history and buffer surveys across an outage, and
// SIGUSR1 promotes it in place: it becomes the replication leader,
// drains its survey buffer through the normal compact cycle, and
// serves followers — including their catch-up from the retained
// history — on -replicate-listen.
//
// With -trace, every served epoch becomes a span tree — server.frame
// with read/queue/step/write children and per-scheme spans, joined to
// the client's trace when the phone speaks protocol v5 — browsable at
// /debug/traces on the metrics listener, with the slowest frames kept
// as exemplars. -trace-jsonl streams every span to a file for offline
// analysis with uniloc-trace; -pprof-labels additionally labels CPU
// profile samples by session, scheme, and batch tick.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/mapstore"
	"repro/internal/offload"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7031", "listen address")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /debug/vars and /debug/pprof/ on this address (empty = off)")
	seed := flag.Int64("seed", 42, "master random seed")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent sessions (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "evict sessions idle this long (0 = never)")
	epochTimeout := flag.Duration("epoch-timeout", 30*time.Second, "per-epoch protocol deadline; a session that stalls mid-exchange longer than this is evicted (0 = never)")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "log session stats this often (0 = never)")
	sharedMap := flag.Bool("shared-map", true, "serve all sessions from shared indexed map stores instead of per-session database scans")
	ingest := flag.Bool("ingest", false, "accept crowdsourced survey submissions (MsgSurvey) into the shared map stores (requires -shared-map)")
	rebuildBatch := flag.Int("rebuild-batch", 256, "pending survey points that trigger a background snapshot rebuild")
	rebuildEvery := flag.Duration("rebuild-every", 30*time.Second, "also rebuild snapshots on this timer so trickles land (0 = batch-only)")
	stepWorkers := flag.Int("step-workers", 0, "per-session scheme-execution workers (core.WithParallel); <= 1 runs schemes sequentially, results are bit-identical either way")
	batchTick := flag.Duration("batch-tick", 0, "batch-per-tick scheduler: collect ready epochs from all sessions for this long and step them as one fused batch (0 = per-connection stepping; requires -shared-map for the fused distance pass)")
	batchWorkers := flag.Int("batch-workers", 0, "sessions stepped concurrently per batch (<= 0 = NumCPU)")
	sharedCompute := flag.Bool("shared-compute", true, "share version-keyed likelihood rows and HMM neighbor lists across sessions (requires -shared-map; results stay bit-identical to private compute)")
	traceOn := flag.Bool("trace", false, "span-trace every served epoch; browse at /debug/traces on -metrics-addr")
	traceRing := flag.Int("trace-ring", 4096, "spans kept in the in-memory trace ring (rounded up to a power of two)")
	traceJSONL := flag.String("trace-jsonl", "", "also append every span as JSON lines to this file (implies -trace)")
	traceExemplars := flag.Int("trace-exemplars", 8, "slowest frames kept per exemplar window")
	traceWindow := flag.Duration("trace-window", time.Minute, "exemplar rotation window")
	pprofLabels := flag.Bool("pprof-labels", false, "label CPU profile samples with session, scheme and batch tick (small per-epoch allocation cost)")
	drainGrace := flag.Duration("drain-grace", 0, "on SIGTERM/SIGINT, stop accepting and let in-flight sessions finish their current epoch for up to this long before force-closing (0 = close immediately)")
	replListen := flag.String("replicate-listen", "", "lead a replication group: stream map-store compaction deltas to followers subscribing on this address (requires -shared-map)")
	replFrom := flag.String("replicate-from", "", "follow a replication leader: comma-separated candidate addresses, tried in order on every (re)connect (requires -shared-map; local compaction is disabled, surveys are forwarded upstream)")
	standby := flag.Bool("standby", false, "with -replicate-from: retain the leader's delta history, buffer surveys across a leader outage, and promote to replication leader on SIGUSR1, serving followers on -replicate-listen")
	handoffListen := flag.String("handoff-listen", "", "join the session-handoff mesh: serve shipped session states and peer fetches on this address")
	handoffPeers := flag.String("handoff-peers", "", "comma-separated handoff addresses of the other cluster nodes: ship every session's post-epoch state to them, fetch unknown resumed sessions from them")
	flag.Parse()

	cfg := serverOpts{
		addr:          *addr,
		metricsAddr:   *metricsAddr,
		seed:          *seed,
		maxSessions:   *maxSessions,
		idleTimeout:   *idleTimeout,
		epochTimeout:  *epochTimeout,
		statsEvery:    *statsEvery,
		sharedMap:     *sharedMap,
		ingest:        *ingest,
		rebuildBatch:  *rebuildBatch,
		rebuildEvery:  *rebuildEvery,
		stepWorkers:   *stepWorkers,
		batchTick:     *batchTick,
		batchWorkers:  *batchWorkers,
		sharedCompute: *sharedCompute,

		trace:          *traceOn || *traceJSONL != "",
		traceRing:      *traceRing,
		traceJSONL:     *traceJSONL,
		traceExemplars: *traceExemplars,
		traceWindow:    *traceWindow,
		pprofLabels:    *pprofLabels,

		drainGrace:    *drainGrace,
		replListen:    *replListen,
		replFrom:      *replFrom,
		standby:       *standby,
		handoffListen: *handoffListen,
		handoffPeers:  *handoffPeers,
	}
	if err := run(cfg); err != nil {
		log.Fatalf("uniloc-server: %v", err)
	}
}

// serverOpts carries the parsed flags.
type serverOpts struct {
	addr, metricsAddr string
	seed              int64
	maxSessions       int
	idleTimeout       time.Duration
	epochTimeout      time.Duration
	statsEvery        time.Duration
	sharedMap         bool
	ingest            bool
	rebuildBatch      int
	rebuildEvery      time.Duration
	stepWorkers       int
	batchTick         time.Duration
	batchWorkers      int
	sharedCompute     bool

	trace          bool
	traceRing      int
	traceJSONL     string
	traceExemplars int
	traceWindow    time.Duration
	pprofLabels    bool

	drainGrace    time.Duration
	replListen    string
	replFrom      string
	standby       bool
	handoffListen string
	handoffPeers  string
}

func run(opts serverOpts) error {
	if opts.replListen != "" && opts.replFrom != "" && !opts.standby {
		return fmt.Errorf("-replicate-listen and -replicate-from are mutually exclusive without -standby")
	}
	if opts.standby && (opts.replFrom == "" || opts.replListen == "") {
		return fmt.Errorf("-standby requires -replicate-from (whom to follow) and -replicate-listen (where to serve after promotion)")
	}
	if (opts.replListen != "" || opts.replFrom != "") && !opts.sharedMap {
		return fmt.Errorf("replication requires -shared-map")
	}
	tr, err := eval.Train(opts.seed)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	campus := scenario.NewAssets(scenario.Campus(), opts.seed+100)
	reg := telemetry.NewRegistry()

	// Span tracing: the tracer is shared by the server (frame, queue,
	// step, scheme spans) and the /debug/traces endpoint. Nil when off —
	// the serving path then takes no timestamps and allocates nothing.
	var tracer *trace.Tracer
	if opts.trace {
		cfg := trace.Config{
			RingSize:       opts.traceRing,
			ExemplarK:      opts.traceExemplars,
			ExemplarWindow: opts.traceWindow,
		}
		if opts.traceJSONL != "" {
			f, err := os.OpenFile(opts.traceJSONL, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return fmt.Errorf("trace jsonl: %w", err)
			}
			defer f.Close()
			jw := trace.NewJSONLWriter(f)
			jw.SetMetrics(reg)
			defer func() {
				if n := jw.Drops(); n > 0 {
					log.Printf("trace jsonl: %d spans dropped (last error: %v)", n, jw.Err())
				}
			}()
			cfg.Exporter = jw
		}
		tracer = trace.New(cfg)
	}

	// One fresh framework per session: the shared campus assets
	// (fingerprint databases, constellation) are read-only, while the
	// scheme instances and their particle-filter randomness are
	// private to the session. With -shared-map the radio maps further
	// collapse into two versioned stores every session reads through
	// atomic snapshots.
	var sessionSeq atomic.Int64
	var stores, batchStores map[byte]*mapstore.Store
	factory := func() (*core.Framework, error) {
		n := sessionSeq.Add(1)
		rnd := rand.New(rand.NewSource(opts.seed + 7 + n))
		ss := campus.Schemes(rnd)
		return core.NewFramework(ss, tr.Models)
	}
	var surveyIngest func(*offload.Survey) error
	if opts.sharedMap {
		storeCfg := func(name string) mapstore.Config {
			cfg := mapstore.Config{
				Name:         name,
				RebuildBatch: opts.rebuildBatch,
				RebuildEvery: opts.rebuildEvery,
				Metrics:      mapstore.NewMetrics(reg, name),
			}
			if opts.replFrom != "" {
				// A follower never compacts locally: its only writes are
				// replayed leader deltas (cluster.Follower), so its versions
				// can never fork from the leader's. A standby keeps a real
				// batch size — dormant while following (followers never
				// Submit locally), live the moment promotion makes its
				// Submits the compaction stream — but still no timer, which
				// could fire before promotion.
				cfg.RebuildEvery = 0
				if !opts.standby {
					cfg.RebuildBatch = 1 << 30
				}
			}
			return cfg
		}
		wifiStore := mapstore.New(campus.WiFiDB, storeCfg("wifi"))
		cellStore := mapstore.New(campus.CellDB, storeCfg("cellular"))
		defer wifiStore.Close()
		defer cellStore.Close()
		replStores := map[byte]*mapstore.Store{
			offload.MapWiFi:     wifiStore,
			offload.MapCellular: cellStore,
		}
		switch {
		case opts.replFrom != "":
			addrs := strings.Split(opts.replFrom, ",")
			follower := cluster.NewFollowerAddrs(addrs, replStores, reg)
			defer follower.Close()
			// Survey ingest goes through an indirection so promotion can
			// swap forward-to-leader for serve-as-leader atomically, with
			// sessions mid-flight.
			var ingest atomic.Value
			ingest.Store(follower.ForwardSurvey)
			surveyIngest = func(sv *offload.Survey) error {
				return ingest.Load().(func(*offload.Survey) error)(sv)
			}
			log.Printf("replicating from %s (surveys forwarded upstream, standby=%v)", opts.replFrom, opts.standby)
			if opts.standby {
				var promoted atomic.Pointer[cluster.Leader]
				defer func() {
					if l := promoted.Load(); l != nil {
						l.Close()
					}
				}()
				promoteSig := make(chan os.Signal, 1)
				signal.Notify(promoteSig, syscall.SIGUSR1)
				go func() {
					<-promoteSig
					signal.Stop(promoteSig)
					rln, err := net.Listen("tcp", opts.replListen)
					if err != nil {
						log.Printf("promotion: replication listener: %v", err)
						return
					}
					l := cluster.Promote(follower, reg)
					promoted.Store(l)
					ingest.Store(l.SurveyIngest)
					go l.ListenAndServe(rln, func(err error) { log.Printf("replication: %v", err) })
					log.Printf("promoted to replication leader on %s (retained deltas seeded, buffered surveys drained)", rln.Addr())
				}()
			}
		case opts.replListen != "":
			leader := cluster.NewLeader(replStores, reg)
			defer leader.Close()
			rln, err := net.Listen("tcp", opts.replListen)
			if err != nil {
				return fmt.Errorf("replication listener: %w", err)
			}
			defer rln.Close()
			go leader.ListenAndServe(rln, func(err error) { log.Printf("replication: %v", err) })
			log.Printf("replication leader on %s", rln.Addr())
		}
		factory = func() (*core.Framework, error) {
			n := sessionSeq.Add(1)
			rnd := rand.New(rand.NewSource(opts.seed + 7 + n))
			ss := campus.SchemesOver(wifiStore, cellStore, rnd)
			return core.NewFramework(ss, tr.Models)
		}
		// The batch scheduler's fused distance pass always reads the
		// shared stores; survey ingestion stays gated on -ingest.
		batchStores = replStores
		if opts.ingest {
			stores = batchStores
		}
	} else if opts.ingest {
		return fmt.Errorf("-ingest requires -shared-map")
	}

	// Session-handoff mesh: ship every session's post-epoch state to the
	// peer set, fetch-and-inject resumed walks this node never served.
	var shipSession func(clientID string, seq uint32, state []byte)
	var fetchSession func(clientID string) []byte
	if opts.handoffListen != "" || opts.handoffPeers != "" {
		var peers []string
		if opts.handoffPeers != "" {
			peers = strings.Split(opts.handoffPeers, ",")
		}
		ho := cluster.NewHandoff(cluster.HandoffConfig{Peers: peers, Metrics: reg})
		defer ho.Close()
		if opts.handoffListen != "" {
			hln, err := net.Listen("tcp", opts.handoffListen)
			if err != nil {
				return fmt.Errorf("handoff listener: %w", err)
			}
			defer hln.Close()
			go ho.ListenAndServe(hln, func(err error) { log.Printf("handoff: %v", err) })
			log.Printf("session handoff on %s (peers: %v)", hln.Addr(), peers)
		}
		shipSession = ho.Ship
		fetchSession = ho.Fetch
	}

	srv, err := offload.NewServer(offload.ServerConfig{
		Factory:       factory,
		MaxSessions:   opts.maxSessions,
		IdleTimeout:   opts.idleTimeout,
		EpochTimeout:  opts.epochTimeout,
		Metrics:       reg,
		MapStores:     stores,
		StepWorkers:   opts.stepWorkers,
		BatchTick:     opts.batchTick,
		BatchWorkers:  opts.batchWorkers,
		BatchStores:   batchStores,
		SharedCompute: opts.sharedCompute && opts.sharedMap,
		Tracer:        tracer,
		PprofLabels:   opts.pprofLabels,
		SurveyIngest:  surveyIngest,
		ShipSession:   shipSession,
		FetchSession:  fetchSession,
	})
	if err != nil {
		return err
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	log.Printf("uniloc-server listening on %s (campus, max-sessions=%d, idle-timeout=%v, epoch-timeout=%v, shared-map=%v, ingest=%v, step-workers=%d, batch-tick=%v, shared-compute=%v, trace=%v, pprof-labels=%v)",
		ln.Addr(), opts.maxSessions, opts.idleTimeout, opts.epochTimeout, opts.sharedMap, opts.ingest, opts.stepWorkers, opts.batchTick, opts.sharedCompute && opts.sharedMap, opts.trace, opts.pprofLabels)

	// Optional exposition endpoint: Prometheus + JSON metrics, expvar,
	// pprof.
	var metricsSrv *http.Server
	if opts.metricsAddr != "" {
		mln, err := net.Listen("tcp", opts.metricsAddr)
		if err != nil {
			_ = ln.Close()
			return fmt.Errorf("metrics listener: %w", err)
		}
		metricsSrv = &http.Server{Handler: telemetry.NewMux(reg,
			telemetry.WithHandler("/debug/traces", trace.Handler(tracer)))}
		go func() {
			log.Printf("metrics on http://%s/metrics (pprof at /debug/pprof/)", mln.Addr())
			if err := metricsSrv.Serve(mln); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	// Periodic stats logging, driven by the telemetry snapshot. The
	// ticker is owned here and stopped on shutdown — a bare time.Tick
	// would leak the goroutine and keep firing into a dead server.
	statsDone := make(chan struct{})
	statsStopped := make(chan struct{})
	go func() {
		defer close(statsStopped)
		if opts.statsEvery <= 0 {
			<-statsDone
			return
		}
		tick := time.NewTicker(opts.statsEvery)
		defer tick.Stop()
		for {
			select {
			case <-statsDone:
				return
			case <-tick.C:
				logStats(reg, opts.sharedMap)
			}
		}
	}()

	// Close the listener on SIGINT/SIGTERM; with -drain-grace, follow
	// up with a graceful drain: in-flight sessions finish their current
	// epoch and close cleanly (clients see EOF, not a reset), stragglers
	// are force-closed when the grace expires. ListenAndServe then
	// drains its connection goroutines and returns.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, shutting down (drain-grace=%v)", s, opts.drainGrace)
		_ = ln.Close()
		if opts.drainGrace > 0 {
			if forced := srv.Drain(opts.drainGrace); forced > 0 {
				log.Printf("drain grace expired: %d sessions force-closed", forced)
			} else {
				log.Printf("drained cleanly")
			}
		}
	}()

	srv.ListenAndServe(ln, func(err error) { log.Printf("conn error: %v", err) })
	signal.Stop(sig)

	close(statsDone)
	<-statsStopped
	logStats(reg, opts.sharedMap) // final snapshot so short runs still report

	if metricsSrv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = metricsSrv.Shutdown(ctx)
	}
	return nil
}

// logStats renders the session/epoch counters from one telemetry
// snapshot — the same numbers a /metrics scrape would see.
func logStats(reg *telemetry.Registry, sharedMap bool) {
	snap := reg.Snapshot()
	get := func(name string, labels ...string) float64 {
		v, _ := snap.Get(name, labels...)
		return v
	}
	epochs := get("uniloc_epochs_served_total")
	avgStep := time.Duration(0)
	if h := reg.Histogram("uniloc_step_seconds", "", nil); h.Count() > 0 {
		avgStep = time.Duration(h.Sum() / float64(h.Count()) * float64(time.Second)).Round(time.Microsecond)
	}
	log.Printf("sessions: active=%.0f opened=%.0f closed=%.0f rejected=%.0f evicted=%.0f epochs=%.0f avg-step=%v bytes-in=%.0f bytes-out=%.0f",
		get("uniloc_sessions_active"), get("uniloc_sessions_opened_total"),
		get("uniloc_sessions_closed_total"), get("uniloc_sessions_rejected_total"),
		get("uniloc_sessions_evicted_total"), epochs, avgStep,
		get("uniloc_frame_bytes_total", "dir", "in"), get("uniloc_frame_bytes_total", "dir", "out"))
	log.Printf("health: panics=%.0f quarantined=%.0f fallbacks=%.0f deadline-timeouts=%.0f",
		get("scheme_panics_total"), get("quarantined_estimates_total"),
		get("fallback_epochs_total"), get("deadline_timeouts_total"))
	if sharedMap {
		for _, m := range []string{"wifi", "cellular"} {
			log.Printf("mapstore[%s]: version=%.0f points=%.0f pending=%.0f rebuilds=%.0f ingested=%.0f dropped=%.0f",
				m,
				get("uniloc_mapstore_snapshot_version", "map", m),
				get("uniloc_mapstore_snapshot_points", "map", m),
				get("uniloc_mapstore_pending_points", "map", m),
				get("uniloc_mapstore_rebuilds_total", "map", m),
				get("uniloc_surveys_ingested_total"),
				get("uniloc_surveys_dropped_total"))
		}
	}
}
