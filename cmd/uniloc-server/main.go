// Command uniloc-server hosts the UniLoc offload server (§IV-C): it
// trains the error models, builds the campus scheme assets, and serves
// the binary offloading protocol over TCP. Phones (see
// examples/offload) connect, perform the session handshake, upload
// pre-processed sensor epochs, and receive fused positions. Every
// connection gets its own framework instance, so any number of phones
// can walk concurrently without sharing localization state.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/offload"
	"repro/internal/scenario"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7031", "listen address")
	seed := flag.Int64("seed", 42, "master random seed")
	maxSessions := flag.Int("max-sessions", 0, "max concurrent sessions (0 = unlimited)")
	idleTimeout := flag.Duration("idle-timeout", 2*time.Minute, "evict sessions idle this long (0 = never)")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "log session stats this often (0 = never)")
	flag.Parse()

	if err := run(*addr, *seed, *maxSessions, *idleTimeout, *statsEvery); err != nil {
		log.Fatalf("uniloc-server: %v", err)
	}
}

func run(addr string, seed int64, maxSessions int, idleTimeout, statsEvery time.Duration) error {
	tr, err := eval.Train(seed)
	if err != nil {
		return fmt.Errorf("training: %w", err)
	}
	campus := scenario.NewAssets(scenario.Campus(), seed+100)

	// One fresh framework per session: the shared campus assets
	// (fingerprint databases, constellation) are read-only, while the
	// scheme instances and their particle-filter randomness are
	// private to the session.
	var sessionSeq atomic.Int64
	factory := func() (*core.Framework, error) {
		n := sessionSeq.Add(1)
		ss := campus.Schemes(rand.New(rand.NewSource(seed + 7 + n)))
		return core.NewFramework(ss, tr.Models)
	}

	srv, err := offload.NewServer(offload.ServerConfig{
		Factory:     factory,
		MaxSessions: maxSessions,
		IdleTimeout: idleTimeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("uniloc-server listening on %s (campus, max-sessions=%d, idle-timeout=%v)",
		ln.Addr(), maxSessions, idleTimeout)

	if statsEvery > 0 {
		go func() {
			for range time.Tick(statsEvery) {
				st := srv.Stats()
				log.Printf("sessions: active=%d opened=%d closed=%d rejected=%d evicted=%d epochs=%d avg-step=%v",
					st.Active, st.Opened, st.Closed, st.Rejected, st.Evicted,
					st.EpochsServed, st.EpochLatencyAvg)
			}
		}()
	}

	srv.ListenAndServe(ln, func(err error) { log.Printf("conn error: %v", err) })
	return nil
}
