// Command uniloc-loadgen drives a fleet of simulated walkers against
// a uniloc cluster (router + uniloc-server backends, DESIGN.md §15)
// and records the cluster's serving curve into a benchmark artifact.
//
// Each walker is a full phone: it walks a campus path
// (internal/walker — steps, WiFi/cell scans, light, magnetic
// variance), uploads every epoch over the offload protocol, and
// rides the client's reconnect/resume machinery when the link or a
// backend dies. With -drop-prob, the uplink itself is additionally
// shimmed through the fault injector so frames are lost mid-walk.
//
// The run produces BENCH_cluster.json (schema uniloc-bench-cluster/v1.2):
// aggregate throughput (epochs/sec), per-walker outcomes
// (reconnects, resumes, failures), a per-second timeline — the
// node-kill recovery curve when the harness kills a backend mid-run —
// and, with -node-metrics, per-node session and epoch counts scraped
// from each backend's /metrics.json. The failover block records how
// transparent a mid-run node kill was: per-node injected-session
// counts (walks that migrated over the handoff mesh, DESIGN.md §17),
// their sum as cross_node_resumes, and time-to-resume percentiles —
// the client-observed stall of an epoch that rode a reconnect.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/offload"
	"repro/internal/scenario"
	"repro/internal/telemetry"
	"repro/internal/walker"
)

type options struct {
	addr        string
	walkers     int
	epochs      int
	seed        int64
	out         string
	nodeMetrics []string
	dropProb    float64
	pace        time.Duration
	timeout     time.Duration
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7030", "comma-separated router (or single server) addresses; walkers spread their first dial across them and fail over to the next on redial, so killing one router mid-run only costs its clients a reconnect")
	walkers := flag.Int("walkers", 64, "concurrent walker sessions")
	epochs := flag.Int("epochs", 120, "epochs per walker (capped by path length)")
	seed := flag.Int64("seed", 1, "master random seed (walker paths and scan noise)")
	out := flag.String("out", "BENCH_cluster.json", "benchmark artifact path")
	nodeMetrics := flag.String("node-metrics", "", "comma-separated backend metrics addresses to scrape for per-node session counts (each serves /metrics.json)")
	dropProb := flag.Float64("drop-prob", 0, "per-frame probability of the uplink dropping the connection (fault injector; exercises reconnect/resume under load)")
	pace := flag.Duration("pace", 0, "sleep between a walker's epochs (0 = as fast as the cluster answers)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-epoch client deadline")
	flag.Parse()

	opts := options{
		addr:     *addr,
		walkers:  *walkers,
		epochs:   *epochs,
		seed:     *seed,
		out:      *out,
		dropProb: *dropProb,
		pace:     *pace,
		timeout:  *timeout,
	}
	for _, a := range strings.Split(*nodeMetrics, ",") {
		if a = strings.TrimSpace(a); a != "" {
			opts.nodeMetrics = append(opts.nodeMetrics, a)
		}
	}
	if err := run(opts); err != nil {
		log.Fatalf("uniloc-loadgen: %v", err)
	}
}

// walkerResult is one walker's outcome.
type walkerResult struct {
	epochs      int
	reconnects  int
	resumes     int
	drops       int
	err         error
	latencies   []float64 // per-epoch Localize round-trip times, ms
	resumeTimes []float64 // round-trip of each epoch that rode a resume, ms
}

// timelineBucket is one second of fleet progress — the recovery curve
// when a backend is killed mid-run.
type timelineBucket struct {
	TSec       int   `json:"t_s"`
	Epochs     int64 `json:"epochs"`
	Reconnects int64 `json:"reconnects"`
}

// failoverReport quantifies how transparent node failure was to the
// fleet: cross-node resumes are sessions a survivor injected from the
// handoff mesh rather than restarting, and time-to-resume is the
// client-observed round-trip of an epoch that rode a reconnect —
// redial, backoff, resume handshake and the answer itself.
type failoverReport struct {
	InjectedPerNode   map[string]int64 `json:"injected_per_node,omitempty"`
	CrossNodeResumes  int64            `json:"cross_node_resumes"`
	TimeToResumeP50Ms float64          `json:"time_to_resume_p50_ms"`
	TimeToResumeP95Ms float64          `json:"time_to_resume_p95_ms"`
	TimeToResumeMaxMs float64          `json:"time_to_resume_max_ms"`
}

// report is the BENCH_cluster.json schema.
type report struct {
	Schema          string           `json:"schema"`
	GOOS            string           `json:"goos"`
	GOARCH          string           `json:"goarch"`
	CPUs            int              `json:"cpus"`
	Walkers         int              `json:"walkers"`
	Nodes           int              `json:"nodes"`
	DropProb        float64          `json:"drop_prob,omitempty"`
	EpochsTotal     int64            `json:"epochs_total"`
	DurationS       float64          `json:"duration_s"`
	EpochsPerSec    float64          `json:"epochs_per_sec"`
	SessionsPerNode map[string]int64 `json:"sessions_per_node"`
	EpochsPerNode   map[string]int64 `json:"epochs_per_node,omitempty"`
	ReconnectsTotal int64            `json:"reconnects_total"`
	ResumesTotal    int64            `json:"resumes_total"`
	WalkerFailures  int              `json:"walker_failures"`
	LatencyP50Ms    float64          `json:"latency_p50_ms"`
	LatencyP95Ms    float64          `json:"latency_p95_ms"`
	LatencyP99Ms    float64          `json:"latency_p99_ms"`
	Failover        failoverReport   `json:"failover"`
	Timeline        []timelineBucket `json:"timeline"`
}

// percentile reads the q-th quantile (0..1) off sorted samples using
// the nearest-rank method; 0 when there are no samples.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func run(opts options) error {
	place := scenario.Campus()
	assets := scenario.NewAssets(place, opts.seed+100)

	var epochsDone, reconnectsNow atomic.Int64
	results := make([]walkerResult, opts.walkers)

	// Per-second progress sampler: the timeline is what makes a
	// node-kill visible — throughput dips while the victim's walkers
	// redial, then recovers.
	var timeline []timelineBucket
	samplerDone := make(chan struct{})
	samplerStopped := make(chan struct{})
	go func() {
		defer close(samplerStopped)
		tick := time.NewTicker(time.Second)
		defer tick.Stop()
		var prevEp, prevRc int64
		sec := 0
		sample := func() {
			ep, rc := epochsDone.Load(), reconnectsNow.Load()
			timeline = append(timeline, timelineBucket{TSec: sec, Epochs: ep - prevEp, Reconnects: rc - prevRc})
			prevEp, prevRc = ep, rc
			sec++
		}
		for {
			select {
			case <-samplerDone:
				sample() // final partial second
				return
			case <-tick.C:
				sample()
			}
		}
	}()

	log.Printf("uniloc-loadgen: %d walkers against %s (epochs=%d, drop-prob=%g)",
		opts.walkers, opts.addr, opts.epochs, opts.dropProb)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < opts.walkers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = runWalker(opts, place, assets, i, &epochsDone, &reconnectsNow)
		}(i)
	}
	wg.Wait()
	dur := time.Since(start)
	close(samplerDone)
	<-samplerStopped

	rep := report{
		Schema:          "uniloc-bench-cluster/v1.2",
		GOOS:            runtime.GOOS,
		GOARCH:          runtime.GOARCH,
		CPUs:            runtime.NumCPU(),
		Walkers:         opts.walkers,
		Nodes:           len(opts.nodeMetrics),
		DropProb:        opts.dropProb,
		DurationS:       dur.Seconds(),
		SessionsPerNode: map[string]int64{},
		Timeline:        timeline,
	}
	var lat, resumeLat []float64
	for i, r := range results {
		lat = append(lat, r.latencies...)
		resumeLat = append(resumeLat, r.resumeTimes...)
		rep.EpochsTotal += int64(r.epochs)
		rep.ReconnectsTotal += int64(r.reconnects)
		rep.ResumesTotal += int64(r.resumes)
		if r.err != nil {
			rep.WalkerFailures++
			log.Printf("walker %d failed after %d epochs: %v", i, r.epochs, r.err)
		}
	}
	if dur > 0 {
		rep.EpochsPerSec = float64(rep.EpochsTotal) / dur.Seconds()
	}
	sort.Float64s(lat)
	rep.LatencyP50Ms = percentile(lat, 0.50)
	rep.LatencyP95Ms = percentile(lat, 0.95)
	rep.LatencyP99Ms = percentile(lat, 0.99)
	sort.Float64s(resumeLat)
	rep.Failover.TimeToResumeP50Ms = percentile(resumeLat, 0.50)
	rep.Failover.TimeToResumeP95Ms = percentile(resumeLat, 0.95)
	if n := len(resumeLat); n > 0 {
		rep.Failover.TimeToResumeMaxMs = resumeLat[n-1]
	}
	for _, addr := range opts.nodeMetrics {
		sc, err := scrapeNode(addr)
		if err != nil {
			log.Printf("scrape %s: %v", addr, err)
			continue
		}
		rep.SessionsPerNode[addr] = sc.sessions
		if rep.EpochsPerNode == nil {
			rep.EpochsPerNode = map[string]int64{}
		}
		rep.EpochsPerNode[addr] = sc.epochs
		if sc.injected > 0 {
			if rep.Failover.InjectedPerNode == nil {
				rep.Failover.InjectedPerNode = map[string]int64{}
			}
			rep.Failover.InjectedPerNode[addr] = sc.injected
		}
		rep.Failover.CrossNodeResumes += sc.injected
	}

	f, err := os.Create(opts.out)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	log.Printf("done: %d epochs in %.1fs (%.1f epochs/s), p50=%.2fms p95=%.2fms p99=%.2fms, reconnects=%d resumes=%d cross-node=%d resume-p95=%.2fms failures=%d -> %s",
		rep.EpochsTotal, rep.DurationS, rep.EpochsPerSec,
		rep.LatencyP50Ms, rep.LatencyP95Ms, rep.LatencyP99Ms,
		rep.ReconnectsTotal, rep.ResumesTotal, rep.Failover.CrossNodeResumes,
		rep.Failover.TimeToResumeP95Ms, rep.WalkerFailures, opts.out)
	if rep.WalkerFailures > 0 {
		return fmt.Errorf("%d of %d walkers failed", rep.WalkerFailures, opts.walkers)
	}
	return nil
}

// runWalker walks one phone through its path via the cluster.
func runWalker(opts options, place *scenario.Place, assets *scenario.Assets, i int, epochsDone, reconnectsNow *atomic.Int64) walkerResult {
	var res walkerResult
	var injected *faultinject.Conn
	// N-way entry points: first dial spreads the fleet across the
	// routers, and a dead router just advances the cursor — the next
	// router hashes the client to the same backend, so the server-side
	// session survives the hop.
	addrs := strings.Split(opts.addr, ",")
	cursor := i % len(addrs)
	dial := func() (net.Conn, error) {
		var conn net.Conn
		var err error
		for k := 0; k < len(addrs); k++ {
			conn, err = net.Dial("tcp", addrs[(cursor+k)%len(addrs)])
			if err == nil {
				cursor = (cursor + k) % len(addrs)
				break
			}
		}
		if err != nil {
			return nil, err
		}
		if opts.dropProb > 0 {
			injected = faultinject.WrapConn(conn, faultinject.ConnConfig{
				Seed:     opts.seed + int64(1000+i),
				DropProb: opts.dropProb,
			})
			return injected, nil
		}
		return conn, nil
	}
	conn, err := dial()
	if err != nil {
		res.err = fmt.Errorf("dial: %w", err)
		return res
	}
	client := offload.NewClient(conn, fmt.Sprintf("walker-%d", i))
	client.SetTimeout(opts.timeout)
	client.SetReconnect(dial, offload.Backoff{
		Min: 20 * time.Millisecond, Max: time.Second, Attempts: 20, Seed: opts.seed + int64(i),
	})
	defer func() { _ = client.Close() }()

	path := place.Paths[i%len(place.Paths)]
	rnd := rand.New(rand.NewSource(opts.seed + int64(7*i)))
	wk := walker.New(place.World, path.Line, assets.DefaultWalkerConfig(), rnd)

	start, _ := path.Line.At(0)
	if err := client.Hello(start); err != nil {
		res.err = fmt.Errorf("hello: %w", err)
		return res
	}
	lastRc, lastRes := 0, 0
	for !wk.Done() && (opts.epochs <= 0 || res.epochs < opts.epochs) {
		snap, _ := wk.Next(true)
		t0 := time.Now()
		if _, err := client.Localize(snap); err != nil {
			res.err = fmt.Errorf("epoch %d: %w", res.epochs, err)
			break
		}
		ms := float64(time.Since(t0)) / float64(time.Millisecond)
		res.latencies = append(res.latencies, ms)
		res.epochs++
		epochsDone.Add(1)
		if rc := client.Reconnects(); rc > lastRc {
			reconnectsNow.Add(int64(rc - lastRc))
			lastRc = rc
		}
		if rs := client.Resumes(); rs > lastRes {
			// This epoch's round-trip absorbed a resume: redial, backoff,
			// handshake, answer. That stall is the failover cost a phone
			// actually feels.
			res.resumeTimes = append(res.resumeTimes, ms)
			lastRes = rs
		}
		if opts.pace > 0 {
			time.Sleep(opts.pace)
		}
	}
	res.reconnects = client.Reconnects()
	res.resumes = client.Resumes()
	if injected != nil {
		res.drops = injected.Counts().Drops
	}
	return res
}

// nodeScrape is one backend's session accounting: opened (fresh
// walks), served epochs, and injected (walks that arrived mid-flight
// over the handoff mesh — each one a cross-node resume).
type nodeScrape struct {
	sessions, epochs, injected int64
}

// scrapeNode pulls one backend's counters from its /metrics.json.
func scrapeNode(addr string) (nodeScrape, error) {
	var sc nodeScrape
	cli := http.Client{Timeout: 3 * time.Second}
	resp, err := cli.Get("http://" + addr + "/metrics.json")
	if err != nil {
		return sc, err
	}
	defer resp.Body.Close()
	var points []telemetry.Point
	if err := json.NewDecoder(resp.Body).Decode(&points); err != nil {
		return sc, err
	}
	for _, p := range points {
		switch p.Name {
		case "uniloc_sessions_opened_total":
			sc.sessions = int64(p.Value)
		case "uniloc_epochs_served_total":
			sc.epochs = int64(p.Value)
		case "uniloc_sessions_injected_total":
			sc.injected = int64(p.Value)
		}
	}
	return sc, nil
}
