// Command uniloc-train runs the offline error-modeling workflow
// (§III): training-data collection with ground truth in the office and
// open-space training places, regression fitting per scheme per
// environment, and a printout of the resulting models (the paper's
// Table II).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/eval"
)

func main() {
	seed := flag.Int64("seed", 42, "master random seed")
	flag.Parse()

	tr, err := eval.Train(*seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "uniloc-train:", err)
		os.Exit(1)
	}
	fmt.Printf("trained %d samples\n\n", len(tr.Trainer.Samples()))
	fmt.Println(tr.Models)

	fmt.Println("global-BMA baseline weights:")
	for env, ws := range tr.Global {
		fmt.Printf("  %s:", env)
		for name, w := range ws {
			fmt.Printf(" %s=%.2f", name, w)
		}
		fmt.Println()
	}
}
