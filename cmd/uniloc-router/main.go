// Command uniloc-router fronts a uniloc-server cluster (DESIGN.md
// §15): it consistent-hashes each connecting phone's client ID onto
// one of the configured backends and splices the offload protocol
// through untouched (v2–v5, span context included), so the cluster
// looks like one big server to every client. Each backend owns a
// stable shard of client IDs; when one dies, only its clients
// re-route — everyone else keeps their node and their server-side
// session, which is what lets protocol v4 sequence-resume survive
// node failures.
//
// Backends are marked down passively (dial failure) and, with
// -health-every, actively probed so restarted nodes rejoin the ring
// without operator action. With -metrics-addr, the telemetry registry
// — including the per-backend membership gauge
// uniloc_router_backend_up{backend="..."} — is exposed as Prometheus
// text at /metrics, so a scrape shows live cluster membership.
//
// The same listener carries the admin endpoint for live scale-out
// (DESIGN.md §17): POST /admin/add-backend?addr=host:port inserts a
// backend into the ring without a restart. Spliced connections whose
// client now hashes to the new backend are drained with a reset, and
// the reconnecting clients resume on it — the new node pulls their
// session states over the handoff mesh, so the move costs one
// reconnect, not a walk.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7030", "listen address for phone connections")
	backends := flag.String("backends", "", "comma-separated uniloc-server addresses (required)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics (incl. uniloc_router_backend_up membership gauges) on this address (empty = off)")
	healthEvery := flag.Duration("health-every", 2*time.Second, "active backend TCP probe period; probes mark dead backends down and revive restarted ones (0 = passive-only)")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the hash ring")
	dialTimeout := flag.Duration("dial-timeout", 2*time.Second, "per-backend dial timeout")
	flag.Parse()

	var addrs []string
	for _, a := range strings.Split(*backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		log.Fatal("uniloc-router: -backends is required (comma-separated uniloc-server addresses)")
	}

	reg := telemetry.NewRegistry()
	router, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:    addrs,
		VNodes:      *vnodes,
		DialTimeout: *dialTimeout,
		HealthEvery: *healthEvery,
		Metrics:     reg,
	})
	if err != nil {
		log.Fatalf("uniloc-router: %v", err)
	}
	defer router.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("uniloc-router: %v", err)
	}
	log.Printf("uniloc-router listening on %s, %d backends (vnodes=%d, health-every=%v)",
		ln.Addr(), len(addrs), *vnodes, *healthEvery)

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("uniloc-router: metrics listener: %v", err)
		}
		addBackend := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST only", http.StatusMethodNotAllowed)
				return
			}
			backend := strings.TrimSpace(r.FormValue("addr"))
			if backend == "" {
				http.Error(w, "missing addr parameter", http.StatusBadRequest)
				return
			}
			moved := router.AddBackend(backend)
			if moved < 0 {
				http.Error(w, "already a member", http.StatusConflict)
				return
			}
			log.Printf("admin: backend %s added, %d spliced connections drained onto it", backend, moved)
			fmt.Fprintf(w, "added %s, drained %d connections\n", backend, moved)
		})
		go func() {
			log.Printf("metrics on http://%s/metrics (admin at /admin/add-backend)", mln.Addr())
			mux := telemetry.NewMux(reg, telemetry.WithHandler("/admin/add-backend", addBackend))
			if err := http.Serve(mln, mux); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics server: %v", err)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, shutting down", s)
		_ = ln.Close()
	}()

	router.ListenAndServe(ln, func(err error) { log.Printf("conn: %v", err) })
	for _, m := range router.Ring().Members() {
		log.Printf("backend %s up=%v", m.Addr, m.Up)
	}
}
