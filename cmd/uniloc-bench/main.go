// Command uniloc-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	uniloc-bench [-seed N] [-run id[,id...]] [-list] [-trace file.jsonl] [-j N] [-chaos]
//
// Without -run it executes every experiment in paper order and prints
// the regenerated rows/series as text tables. Experiment IDs: table1,
// table2, table3, figure2, figure3, figure5, figure6, figure7,
// figure8a..figure8d, table4, table5, outage, chaos,
// ablation-weighting, ablation-spacing, ablation-training-size.
//
// -chaos is shorthand for -run outage,chaos: the fault-injection
// sweeps (mid-walk scheme outages, full chaos soak) that prove the
// graceful-degradation contract. They fail loudly — a NaN position or
// a non-deterministic rerun is an error, not a table row.
//
// With -j N the experiments run N at a time (each carries its own
// seeds, so the reports are identical to a sequential run); output
// stays in paper order, streamed as each experiment's turn completes.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "uniloc-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	seed := flag.Int64("seed", 42, "master random seed for all experiments")
	only := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	trace := flag.String("trace", "", "write JSONL epoch traces from trace-driven experiments (table5) to this file")
	jobs := flag.Int("j", 1, "experiments to run concurrently (reports are identical at any -j)")
	chaos := flag.Bool("chaos", false, "run the fault-injection experiments (shorthand for -run outage,chaos)")
	flag.Parse()

	if *chaos {
		if *only != "" {
			return fmt.Errorf("-chaos and -run are mutually exclusive")
		}
		*only = "outage,chaos"
	}

	suite := experiments.NewSuite(*seed)
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		bw := bufio.NewWriter(f)
		defer func() {
			_ = bw.Flush()
			_ = f.Close()
		}()
		suite.TraceWriter = bw
	}
	if *list {
		for _, e := range suite.All() {
			fmt.Println(e.ID)
		}
		return nil
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = suite.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := suite.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	var firstErr error
	_, err := suite.RunAll(selected, *jobs, func(r experiments.Result) {
		if r.Err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", r.Experiment.ID, r.Err)
			}
			return
		}
		fmt.Println(r.Report)
		fmt.Printf("[%s completed in %v]\n\n", r.Experiment.ID, r.Elapsed.Round(time.Millisecond))
	})
	if err != nil {
		return err
	}
	return firstErr
}
