package uniloc

// The benchmark harness: one benchmark per paper table and figure
// (each regenerates the corresponding rows/series; run with
// `go test -bench . -benchtime 1x` to print every reproduction once),
// plus micro-benchmarks of UniLoc's per-epoch costs — the quantities
// behind the paper's response-time decomposition (Table V).

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/offload"
	"repro/internal/particle"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/telemetry"
)

// benchSuite is shared across benchmarks so training and surveys run
// once per `go test -bench` invocation.
var benchSuite *experiments.Suite

func getSuite(tb testing.TB) *experiments.Suite {
	tb.Helper()
	if benchSuite == nil {
		benchSuite = experiments.NewSuite(42)
		if _, err := benchSuite.Lab.Trained(); err != nil {
			tb.Fatalf("training: %v", err)
		}
	}
	return benchSuite
}

// benchExperiment runs one paper experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	s := getSuite(b)
	e, ok := s.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable1InfluenceFactors(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2ErrorModels(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTable3PredictionRMSE(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure2SchemeDiversity(b *testing.B) { benchExperiment(b, "figure2") }
func BenchmarkFigure3OracleVsUniLoc(b *testing.B)  { benchExperiment(b, "figure3") }
func BenchmarkFigure5SchemeUsage(b *testing.B)     { benchExperiment(b, "figure5") }
func BenchmarkFigure6AverageError(b *testing.B)    { benchExperiment(b, "figure6") }
func BenchmarkFigure7EightPathsCDF(b *testing.B)   { benchExperiment(b, "figure7") }
func BenchmarkFigure8aMall(b *testing.B)           { benchExperiment(b, "figure8a") }
func BenchmarkFigure8bOpenSpace(b *testing.B)      { benchExperiment(b, "figure8b") }
func BenchmarkFigure8cOffice(b *testing.B)         { benchExperiment(b, "figure8c") }
func BenchmarkFigure8dHeterodevices(b *testing.B)  { benchExperiment(b, "figure8d") }
func BenchmarkTable4Energy(b *testing.B)           { benchExperiment(b, "table4") }
func BenchmarkTable5ResponseTime(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkAblationWeighting(b *testing.B)      { benchExperiment(b, "ablation-weighting") }
func BenchmarkAblationSpacing(b *testing.B)        { benchExperiment(b, "ablation-spacing") }
func BenchmarkAblationTrainingSize(b *testing.B)   { benchExperiment(b, "ablation-training-size") }

// --- Micro-benchmarks: UniLoc's own per-epoch computation (Table V's
// "error prediction" and "BMA" rows measure these very code paths).

// benchEpoch prepares one realistic mid-walk epoch.
func benchEpoch(b *testing.B, opts ...core.Option) (*core.Framework, []*sensing.Snapshot) {
	b.Helper()
	s := getSuite(b)
	tr, err := s.Lab.Trained()
	if err != nil {
		b.Fatal(err)
	}
	campus := s.Lab.Campus()
	ss := campus.Schemes(rand.New(rand.NewSource(9)))
	fw, err := core.NewFramework(ss, tr.Models, opts...)
	if err != nil {
		b.Fatal(err)
	}
	path, _ := campus.Place.PathByName("path1")
	start, _ := path.Line.At(0)
	fw.Reset(start)
	rnd := rand.New(rand.NewSource(10))
	wk := NewWalker(campus.Place.World, path, campus.DefaultWalkerConfig(), rnd)
	var snaps []*sensing.Snapshot
	for !wk.Done() {
		snap, _ := wk.Next(true)
		snaps = append(snaps, snap)
	}
	return fw, snaps
}

// BenchmarkFrameworkStep measures one full UniLoc epoch: all five
// schemes, error prediction, confidences, selection and BMA. No
// observer is attached, so this is also the telemetry no-op-path
// guardrail: compare against BenchmarkFrameworkStepObserved to see
// what tracing costs, and against the PR-1 baseline (2485024 ns/op,
// 30 allocs/op) to confirm the untraced hot path did not regress.
func BenchmarkFrameworkStep(b *testing.B) { benchFrameworkStep(b) }

// BenchmarkFrameworkStepParallel is the same epoch stream with the five
// schemes fanned out to the persistent worker pool (DESIGN.md §11).
// Outputs are bit-identical to BenchmarkFrameworkStep; the ns/op ratio
// is the parallel pipeline's speedup and depends entirely on how many
// cores the runner has — record it, don't assert it.
func BenchmarkFrameworkStepParallel(b *testing.B) {
	benchFrameworkStep(b, core.WithParallel(benchStepWorkers))
}

// benchStepWorkers is the pool size used by the parallel step benchmark
// and the BENCH_epoch.json recorder: one worker per scheme minus the
// GPS scheme, which finishes almost instantly.
const benchStepWorkers = 4

// benchFrameworkStep is the shared body of the sequential and parallel
// framework-step benchmarks.
func benchFrameworkStep(b *testing.B, opts ...core.Option) {
	fw, snaps := benchEpoch(b, opts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Step(snaps[i%len(snaps)])
	}
	b.StopTimer()
	fw.Close()
}

// BenchmarkFrameworkStepObserved is the same epoch with epoch tracing
// on (a counting observer, the cheapest real sink): the delta vs
// BenchmarkFrameworkStep is the full cost of per-epoch telemetry.
func BenchmarkFrameworkStepObserved(b *testing.B) {
	var traces int
	obs := telemetry.ObserverFunc(func(t *telemetry.EpochTrace) { traces++ })
	fw, snaps := benchEpoch(b, core.WithObserver(obs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Step(snaps[i%len(snaps)])
	}
	if traces < b.N {
		b.Fatalf("observer saw %d traces for %d steps", traces, b.N)
	}
}

// TestFrameworkStepObserverOffNoExtraAllocs is the allocation
// guardrail on the real campus framework: with no observer attached,
// Step must allocate exactly as much as it did before the telemetry
// layer existed (the deterministic stub-scheme equivalent lives in
// internal/core). Measured with tracing ON for comparison, the count
// strictly increases — proving the AllocsPerRun harness would catch a
// regression on the off path.
func TestFrameworkStepObserverOffNoExtraAllocs(t *testing.T) {
	s := experiments.NewSuite(42)
	benchSuite = s
	tr, err := s.Lab.Trained()
	if err != nil {
		t.Fatal(err)
	}
	campus := s.Lab.Campus()
	mkSnaps := func(fw *core.Framework) []*sensing.Snapshot {
		path, _ := campus.Place.PathByName("path1")
		start, _ := path.Line.At(0)
		fw.Reset(start)
		rnd := rand.New(rand.NewSource(10))
		wk := NewWalker(campus.Place.World, path, campus.DefaultWalkerConfig(), rnd)
		var snaps []*sensing.Snapshot
		for !wk.Done() {
			snap, _ := wk.Next(true)
			snaps = append(snaps, snap)
		}
		return snaps
	}
	measure := func(opts ...core.Option) float64 {
		ss := campus.Schemes(rand.New(rand.NewSource(9)))
		fw, err := core.NewFramework(ss, tr.Models, opts...)
		if err != nil {
			t.Fatal(err)
		}
		snaps := mkSnaps(fw)
		snap := snaps[len(snaps)/2]
		fw.Step(snap) // warm caches and lastPred
		return testing.AllocsPerRun(100, func() { fw.Step(snap) })
	}
	off := measure()
	on := measure(core.WithObserver(telemetry.ObserverFunc(func(*telemetry.EpochTrace) {})))
	if on <= off {
		t.Fatalf("tracing on (%v allocs/op) should cost more than off (%v) — harness broken?", on, off)
	}
	// pprof labels are the other opt-in on the step path; the default-off
	// measurement above already proves they cost nothing when gated, and
	// turning them on must register (pprof.Do allocates per scheme).
	labeled := measure(core.WithPprofLabels(true))
	if labeled <= off {
		t.Fatalf("pprof labels on (%v allocs/op) should cost more than off (%v) — gate broken?", labeled, off)
	}
	// The PR-1 framework allocated ~30 objects per step on this walk;
	// the observer-off path must stay in that envelope.
	if off > 30 {
		t.Fatalf("observer-off Step allocates %v objects/op, want <= 30 (PR-1 baseline)", off)
	}
}

// BenchmarkBMACombine measures the BMA weighting + combination alone
// (the paper reports ~0.1 ms).
func BenchmarkBMACombine(b *testing.B) {
	fw, snaps := benchEpoch(b)
	res := fw.Step(snaps[len(snaps)/2])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tau := core.Tau(res.Schemes)
		core.ApplyConfidences(res.Schemes, tau)
		core.CombineBMA(res.Schemes)
	}
}

// BenchmarkErrorPrediction measures one scheme-error prediction (the
// paper reports ~6 ms for all schemes on their workstation).
func BenchmarkErrorPrediction(b *testing.B) {
	s := getSuite(b)
	tr, err := s.Lab.Trained()
	if err != nil {
		b.Fatal(err)
	}
	m := tr.Models.Get("wifi", core.EnvIndoor)
	if m == nil {
		b.Fatal("wifi model missing")
	}
	feats := map[string]float64{"fp_density": 2.5, "rssi_dev": 3.1, "num_aps": 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(feats)
	}
}

// BenchmarkOffloadEncode measures the phone-side wire encoding of one
// epoch.
func BenchmarkOffloadEncode(b *testing.B) {
	_, snaps := benchEpoch(b)
	snap := snaps[len(snaps)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap.Step != nil {
			offload.EncodeStep(snap.Step)
		}
		offload.EncodeVector(snap.WiFi)
		offload.EncodeVector(snap.Cell)
		offload.EncodeContext(snap)
	}
}

// BenchmarkWiFiMatch measures one RADAR fingerprint match against the
// campus database (dominant server-side cost of the wifi scheme).
func BenchmarkWiFiMatch(b *testing.B) {
	s := getSuite(b)
	campus := s.Lab.Campus()
	_, snaps := benchEpoch(b)
	var scan = snaps[10].WiFi
	db := campus.WiFiDB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Nearest(scan, 3)
	}
}

// --- Map-store benchmarks: the shared radio-map subsystem
// (internal/mapstore). Indexed snapshots must return bit-identical
// results to the linear scans (proven in the mapstore tests); these
// benchmarks quantify what the index buys at city-block map sizes the
// campus databases never reach.

// benchMapDB builds the deterministic synthetic fingerprint database
// the map-store benchmarks share: n grid-jittered points hearing a
// distance-dependent subset of nTx transmitters (same generator family
// as the mapstore equivalence tests, without their adversarial
// duplicate points).
func benchMapDB(n, nTx int, seed int64) *fingerprint.DB {
	rnd := rand.New(rand.NewSource(seed))
	spacing := 3.0
	side := int(math.Ceil(math.Sqrt(float64(n))))
	type tx struct {
		id  string
		pos geo.Point
		p0  float64
	}
	txs := make([]tx, nTx)
	extent := float64(side) * spacing
	for t := range txs {
		txs[t] = tx{
			id:  fmt.Sprintf("ap-%03d", t),
			pos: geo.Pt(rnd.Float64()*extent, rnd.Float64()*extent),
			p0:  -35 - rnd.Float64()*10,
		}
	}
	db := &fingerprint.DB{SpacingM: spacing, Floor: -98}
	for i := 0; i < n; i++ {
		gx, gy := i%side, i/side
		p := geo.Pt(
			(float64(gx)+0.5)*spacing+rnd.NormFloat64()*0.3,
			(float64(gy)+0.5)*spacing+rnd.NormFloat64()*0.3,
		)
		var vec rf.Vector
		for _, t := range txs {
			d := t.pos.Dist(p)
			// Indoor-grade path loss (exponent 3): each transmitter is
			// audible within a few tens of meters, so vectors are sparse
			// and localized like a real site survey, not campus-wide.
			rssi := t.p0 - 30*math.Log10(math.Max(d, 1)) + rnd.NormFloat64()*2
			if rssi < -90 {
				continue
			}
			vec = append(vec, rf.Obs{ID: t.id, RSSI: rssi})
		}
		if len(vec) < 2 {
			vec = rf.Vector{
				{ID: txs[0].id, RSSI: -89},
				{ID: txs[1].id, RSSI: -89.5},
			}
		}
		sort.Slice(vec, func(a, b int) bool { return vec[a].ID < vec[b].ID })
		db.Points = append(db.Points, fingerprint.Fingerprint{Pos: p, Vec: vec})
	}
	return db
}

// benchMapObs draws plausible observation vectors near stored points.
func benchMapObs(db *fingerprint.DB, count int, seed int64) []rf.Vector {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]rf.Vector, count)
	for i := range out {
		base := db.Points[rnd.Intn(len(db.Points))].Vec
		var obs rf.Vector
		for _, o := range base {
			if rnd.Float64() < 0.15 {
				continue
			}
			obs = append(obs, rf.Obs{ID: o.ID, RSSI: o.RSSI + rnd.NormFloat64()*3})
		}
		if len(obs) == 0 {
			obs = append(rf.Vector(nil), base...)
		}
		out[i] = obs
	}
	return out
}

// Map-store benchmark workload: well past the campus database size, the
// regime the shared store is built for (ISSUE acceptance: >= 5k points).
const (
	benchMapPoints = 6000
	benchMapTx     = 150
)

// BenchmarkNearest compares one k=3 fingerprint match on the linear
// database scan vs the indexed snapshot, at a 6000-point map. The two
// return bit-identical matches; the Indexed/Linear ratio is the index's
// speedup (acceptance: >= 5x).
func BenchmarkNearest(b *testing.B) {
	db := benchMapDB(benchMapPoints, benchMapTx, 7)
	snap := mapstore.Build(db, 1, 0, nil)
	obs := benchMapObs(db, 64, 8)
	b.Run("Linear", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			db.Nearest(obs[i%len(obs)], 3)
		}
	})
	b.Run("Indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			snap.Nearest(obs[i%len(obs)], 3)
		}
	})
}

// BenchmarkDensityAround compares the β₁ density feature (k-nearest
// surveyed positions) on the linear scan vs the grid ring search.
func BenchmarkDensityAround(b *testing.B) {
	db := benchMapDB(benchMapPoints, benchMapTx, 7)
	snap := mapstore.Build(db, 1, 0, nil)
	rnd := rand.New(rand.NewSource(9))
	pts := make([]geo.Point, 64)
	for i := range pts {
		pts[i] = db.Points[rnd.Intn(len(db.Points))].Pos
	}
	b.Run("Linear", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			db.DensityAround(pts[i%len(pts)], 3)
		}
	})
	b.Run("Indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			snap.DensityAround(pts[i%len(pts)], 3)
		}
	})
}

// benchFusionOver drives the fusion scheme alone over the campus walk
// with its radio map supplied by m — the per-epoch cost of UniLoc's
// most expensive scheme under either map representation.
func benchFusionOver(b *testing.B, m fingerprint.Map) {
	s := getSuite(b)
	campus := s.Lab.Campus()
	fus := schemes.NewFusion(campus.Place.World, m, schemes.DefaultFusionConfig(), rand.New(rand.NewSource(9)))
	path, _ := campus.Place.PathByName("path1")
	start, _ := path.Line.At(0)
	fus.Reset(start)
	rnd := rand.New(rand.NewSource(10))
	wk := NewWalker(campus.Place.World, path, campus.DefaultWalkerConfig(), rnd)
	var snaps []*sensing.Snapshot
	for !wk.Done() {
		snap, _ := wk.Next(true)
		snaps = append(snaps, snap)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fus.Estimate(snaps[i%len(snaps)])
	}
}

// BenchmarkFusionStep measures one fusion-scheme epoch over the private
// linear database vs a shared indexed store. On the small campus map
// the two should be near parity (the index must not cost anything when
// maps are small); the win appears at benchMapPoints-scale maps, which
// BenchmarkNearest and BenchmarkDensityAround isolate.
func BenchmarkFusionStep(b *testing.B) {
	b.Run("Linear", func(b *testing.B) {
		benchFusionOver(b, getSuite(b).Lab.Campus().WiFiDB)
	})
	b.Run("Indexed", func(b *testing.B) {
		st := mapstore.New(getSuite(b).Lab.Campus().WiFiDB, mapstore.Config{Name: "bench"})
		defer st.Close()
		benchFusionOver(b, st)
	})
}

// BenchmarkStoreReadUnderRebuild measures indexed Nearest throughput
// while a writer goroutine continuously submits survey points and the
// store's compactor rebuilds and swaps snapshots underneath the
// readers — the live crowdsourcing regime. Readers pin a view per
// query, so a swap never blocks or slows an in-flight match beyond the
// one atomic load.
func BenchmarkStoreReadUnderRebuild(b *testing.B) {
	db := benchMapDB(benchMapPoints, benchMapTx, 7)
	st := mapstore.New(db, mapstore.Config{Name: "bench", RebuildBatch: 64})
	defer st.Close()
	obs := benchMapObs(db, 64, 8)

	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		rnd := rand.New(rand.NewSource(11))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			p := db.Points[rnd.Intn(len(db.Points))]
			jit := geo.Pt(p.Pos.X+rnd.Float64(), p.Pos.Y+rnd.Float64())
			_ = st.Submit(fingerprint.Fingerprint{Pos: jit, Vec: p.Vec})
			if i%64 == 63 {
				time.Sleep(100 * time.Microsecond) // let a rebuild land
			}
		}
	}()

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			view := st.View()
			view.Nearest(obs[i%len(obs)], 3)
			i++
		}
	})
	b.StopTimer()
	close(stop)
	<-writerDone
}

// TestIndexedNearestPrunes is the keep-it-honest guard on the index.
// It deliberately does not assert wall-clock time (timing assertions
// flake on loaded or throttled CI runners); instead it asserts the
// mechanism that delivers the speedup — the cell-visit counters must
// show Nearest examining a small fraction of the grid's non-empty
// cells, where a linear-scan equivalent touches all of them. The 5x
// wall-clock acceptance number is verified via `go test -bench
// BenchmarkNearest` and recorded in bench_output_experiments.txt;
// timing is logged here for reference only.
func TestIndexedNearestPrunes(t *testing.T) {
	db := benchMapDB(benchMapPoints, benchMapTx, 7)
	reg := telemetry.NewRegistry()
	snap := mapstore.Build(db, 1, 0, mapstore.NewMetrics(reg, "guard"))
	obs := benchMapObs(db, 64, 8)

	t0 := time.Now()
	for _, o := range obs {
		got, want := snap.Nearest(o, 3), db.Nearest(o, 3)
		if len(got) != len(want) {
			t.Fatalf("Nearest diverged from linear scan: %v vs %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Nearest diverged from linear scan at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
	indexed := time.Since(t0)

	nx, ny, nonEmpty := snap.GridStats()
	// Snapshot.Get on a histogram returns its sum: total cells scanned
	// across all queries.
	scanned, ok := reg.Snapshot().Get("uniloc_mapstore_cells_scanned", "map", "guard", "op", "nearest")
	if !ok {
		t.Fatal("cells-scanned histogram not registered")
	}
	mean := scanned / float64(len(obs))
	t.Logf("grid %dx%d, %d non-empty cells; mean %.1f cells scanned per query; %v for %d indexed queries",
		nx, ny, nonEmpty, mean, indexed, len(obs))
	if mean*4 > float64(nonEmpty) {
		t.Errorf("pruning ineffective: mean %.1f cells scanned per Nearest, want < 1/4 of %d non-empty cells",
			mean, nonEmpty)
	}
}

// BenchmarkResample measures one steady-state systematic resampling
// pass of the particle filter at its default population. The double
// buffer from the parallel-pipeline PR makes this allocation-free
// after the first call (TestResampleNoAllocsSteadyState in
// internal/particle asserts exactly 0 allocs/op).
func BenchmarkResample(b *testing.B) {
	f := particle.New(particle.DefaultCount, geo.Pt(0, 0), 2, rand.New(rand.NewSource(5)))
	f.Normalize()
	f.Resample() // warm the double buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Resample leaves uniform normalized weights, so every
		// iteration is a valid steady-state pass.
		f.Resample()
	}
}

// benchOffloadServer measures end-to-end offload-server throughput:
// nc concurrent clients replay the same campus walk over TCP, each
// behind its own session framework reading the shared wifi/cell map
// stores. batchTick > 0 turns on the batch-per-tick scheduler, so the
// same workload is served via fused per-batch distance passes. The
// returned stats snapshot carries the batch-shape quantiles the
// recorder folds into BENCH_epoch.json.
func benchOffloadServer(b *testing.B, nc int, batchTick time.Duration, shared bool) offload.Stats {
	b.Helper()
	s := getSuite(b)
	tr, err := s.Lab.Trained()
	if err != nil {
		b.Fatal(err)
	}
	campus := s.Lab.Campus()
	wifiStore := mapstore.New(campus.WiFiDB, mapstore.Config{Name: "bench-wifi"})
	cellStore := mapstore.New(campus.CellDB, mapstore.Config{Name: "bench-cell"})
	defer wifiStore.Close()
	defer cellStore.Close()

	var seed atomic.Int64
	factory := func() (*core.Framework, error) {
		ss := campus.SchemesOver(wifiStore, cellStore, rand.New(rand.NewSource(100+seed.Add(1))))
		return core.NewFramework(ss, tr.Models)
	}
	cfg := offload.ServerConfig{Factory: factory, SharedCompute: shared}
	if batchTick > 0 || shared {
		cfg.BatchStores = map[byte]*mapstore.Store{
			offload.MapWiFi:     wifiStore,
			offload.MapCellular: cellStore,
		}
	}
	if batchTick > 0 {
		cfg.BatchTick = batchTick
	}
	srv, err := offload.NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.ListenAndServe(ln, nil)
	defer func() { _ = ln.Close() }()

	path, _ := campus.Place.PathByName("path1")
	start, _ := path.Line.At(0)
	wk := NewWalker(campus.Place.World, path, campus.DefaultWalkerConfig(), rand.New(rand.NewSource(11)))
	var snaps []*sensing.Snapshot
	for !wk.Done() {
		snap, _ := wk.Next(true)
		snaps = append(snaps, snap)
	}

	clients := make([]*offload.Client, nc)
	for i := range clients {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = conn.Close() }()
		clients[i] = offload.NewClient(conn)
		if err := clients[i].Hello(start); err != nil {
			b.Fatal(err)
		}
	}

	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / nc
	if per == 0 {
		per = 1
	}
	for _, c := range clients {
		wg.Add(1)
		go func(c *offload.Client) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := c.Localize(snaps[i%len(snaps)]); err != nil {
					b.Error(err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	b.ReportMetric(float64(per*nc)/b.Elapsed().Seconds(), "epochs/s")
	return srv.Stats()
}

// --- BENCH_epoch.json: the machine-readable perf trajectory of the
// per-epoch hot path, recorded once per perf-relevant PR.

// epochBenchEntry is one benchmark row of BENCH_epoch.json.
type epochBenchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// epochBenchBatch is the batch-shape summary of the batched server
// row, lifted from the server's Stats quantiles (schema v1.1): how
// many sessions each tick actually fused and how many distinct pinned
// snapshots it precomputed against. A batched throughput number is
// only comparable between runs that batched similarly.
type epochBenchBatch struct {
	Batches   int64   `json:"batches"`
	SizeP50   float64 `json:"size_p50"`
	SizeP95   float64 `json:"size_p95"`
	GroupsP50 float64 `json:"groups_p50"`
	GroupsP95 float64 `json:"groups_p95"`
}

// epochBenchShared is the shared-compute summary of the shared server
// row (schema v1.2): the cache's lifetime counters and the hit rate
// sessions saw on per-cell likelihood lookups. On a degraded (< 4
// cpus) box the hit rate is the row's acceptance signal — the 2x
// speedup over unbatched only materializes with real parallelism.
type epochBenchShared struct {
	Hits       int64   `json:"hits"`
	Misses     int64   `json:"misses"`
	HitRate    float64 `json:"hit_rate"`
	RowsWarmed int64   `json:"rows_warmed"`
	Trackers   int64   `json:"tracker_shares"`
	Built      int64   `json:"entries_built"`
	Evicted    int64   `json:"entries_evicted"`
}

// epochBenchFile is the committed BENCH_epoch.json document. CPUs
// records the measuring machine — the framework_step_par /
// framework_step_seq ratio is meaningless without it (a single-core
// runner cannot show a speedup, only pool overhead).
type epochBenchFile struct {
	Schema      string            `json:"schema"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	CPUs        int               `json:"cpus"`
	StepWorkers int               `json:"step_workers"`
	Degraded    bool              `json:"degraded"`
	Note        string            `json:"note,omitempty"`
	Batch       *epochBenchBatch  `json:"batch,omitempty"`
	Shared      *epochBenchShared `json:"shared,omitempty"`
	Benchmarks  []epochBenchEntry `json:"benchmarks"`
}

// TestRecordEpochBench re-measures the per-epoch hot path with
// testing.Benchmark and writes BENCH_epoch.json to the path in
// UNILOC_BENCH_JSON (skipped when unset, so plain `go test` stays
// fast). Regenerate with:
//
//	UNILOC_BENCH_JSON=BENCH_epoch.json go test -run TestRecordEpochBench
//
// CI points it at a scratch path every run to keep the recorder and
// schema from rotting; the committed file is refreshed manually per
// perf PR.
func TestRecordEpochBench(t *testing.T) {
	path := os.Getenv("UNILOC_BENCH_JSON")
	if path == "" {
		t.Skip("set UNILOC_BENCH_JSON=<path> to record BENCH_epoch.json")
	}
	row := func(name string, fn func(*testing.B)) epochBenchEntry {
		r := testing.Benchmark(fn)
		if r.N == 0 {
			t.Fatalf("benchmark %s did not run", name)
		}
		return epochBenchEntry{
			Name:        name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
	}
	degraded := runtime.NumCPU() < benchStepWorkers
	if degraded {
		msg := fmt.Sprintf("BENCH DEGRADED: %d cpus < %d step workers — parallel and batched "+
			"rows measure scheduling overhead, not speedup; do not compare across machines",
			runtime.NumCPU(), benchStepWorkers)
		t.Log(msg)
		fmt.Fprintln(os.Stderr, msg)
	}
	var batchStats, sharedStats offload.Stats
	doc := epochBenchFile{
		Schema:      "uniloc-bench-epoch/v1.2",
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		CPUs:        runtime.NumCPU(),
		StepWorkers: benchStepWorkers,
		Degraded:    degraded,
		Note: "framework_step_par vs framework_step_seq is the parallel pipeline's " +
			"speedup; it only materializes when cpus >= 4 (one core per heavy scheme). " +
			"server_epoch_64c_* rows need cpus >= 4 as well for the batched scheduler " +
			"and the shared-compute cache to show their multicore win; on degraded " +
			"boxes the shared row's acceptance signal is shared.hit_rate > 0.9.",
		Benchmarks: []epochBenchEntry{
			row("framework_step_seq", func(b *testing.B) { benchFrameworkStep(b) }),
			row("framework_step_par", func(b *testing.B) {
				benchFrameworkStep(b, core.WithParallel(benchStepWorkers))
			}),
			row("resample", BenchmarkResample),
			row("fusion_step", func(b *testing.B) {
				benchFusionOver(b, getSuite(b).Lab.Campus().WiFiDB)
			}),
			row("nearest", func(b *testing.B) {
				db := benchMapDB(benchMapPoints, benchMapTx, 7)
				snap := mapstore.Build(db, 1, 0, nil)
				obs := benchMapObs(db, 64, 8)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					snap.Nearest(obs[i%len(obs)], 3)
				}
			}),
			row("server_epoch_64c_unbatched", func(b *testing.B) {
				benchOffloadServer(b, 64, 0, false)
			}),
			row("server_epoch_64c_batched", func(b *testing.B) {
				batchStats = benchOffloadServer(b, 64, 200*time.Microsecond, false)
			}),
			row("server_epoch_64c_shared", func(b *testing.B) {
				sharedStats = benchOffloadServer(b, 64, 200*time.Microsecond, true)
			}),
		},
	}
	if batchStats.Batches > 0 {
		doc.Batch = &epochBenchBatch{
			Batches:   batchStats.Batches,
			SizeP50:   batchStats.BatchSizeP50,
			SizeP95:   batchStats.BatchSizeP95,
			GroupsP50: batchStats.BatchGroupsP50,
			GroupsP95: batchStats.BatchGroupsP95,
		}
	}
	if lk := sharedStats.SharedLikHits + sharedStats.SharedLikMisses; lk > 0 {
		doc.Shared = &epochBenchShared{
			Hits:       sharedStats.SharedLikHits,
			Misses:     sharedStats.SharedLikMisses,
			HitRate:    float64(sharedStats.SharedLikHits) / float64(lk),
			RowsWarmed: sharedStats.SharedRowsWarmed,
			Trackers:   sharedStats.SharedTrackers,
			Built:      sharedStats.SharedBuilt,
			Evicted:    sharedStats.SharedEvicted,
		}
		// The cache's whole premise is that 64 sessions overlap almost
		// completely; anything under 90% means sharing is broken, on
		// any machine.
		if doc.Shared.HitRate <= 0.9 {
			t.Errorf("shared-compute hit rate %.3f <= 0.9 at 64 sessions", doc.Shared.HitRate)
		}
	} else {
		t.Error("shared server row produced no shared-compute traffic")
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d benchmarks, %d cpus)", path, len(doc.Benchmarks), doc.CPUs)
}
