package uniloc

// The benchmark harness: one benchmark per paper table and figure
// (each regenerates the corresponding rows/series; run with
// `go test -bench . -benchtime 1x` to print every reproduction once),
// plus micro-benchmarks of UniLoc's per-epoch costs — the quantities
// behind the paper's response-time decomposition (Table V).

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/offload"
	"repro/internal/sensing"
	"repro/internal/telemetry"
)

// benchSuite is shared across benchmarks so training and surveys run
// once per `go test -bench` invocation.
var benchSuite *experiments.Suite

func getSuite(b *testing.B) *experiments.Suite {
	b.Helper()
	if benchSuite == nil {
		benchSuite = experiments.NewSuite(42)
		if _, err := benchSuite.Lab.Trained(); err != nil {
			b.Fatalf("training: %v", err)
		}
	}
	return benchSuite
}

// benchExperiment runs one paper experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	s := getSuite(b)
	e, ok := s.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable1InfluenceFactors(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2ErrorModels(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTable3PredictionRMSE(b *testing.B)   { benchExperiment(b, "table3") }
func BenchmarkFigure2SchemeDiversity(b *testing.B) { benchExperiment(b, "figure2") }
func BenchmarkFigure3OracleVsUniLoc(b *testing.B)  { benchExperiment(b, "figure3") }
func BenchmarkFigure5SchemeUsage(b *testing.B)     { benchExperiment(b, "figure5") }
func BenchmarkFigure6AverageError(b *testing.B)    { benchExperiment(b, "figure6") }
func BenchmarkFigure7EightPathsCDF(b *testing.B)   { benchExperiment(b, "figure7") }
func BenchmarkFigure8aMall(b *testing.B)           { benchExperiment(b, "figure8a") }
func BenchmarkFigure8bOpenSpace(b *testing.B)      { benchExperiment(b, "figure8b") }
func BenchmarkFigure8cOffice(b *testing.B)         { benchExperiment(b, "figure8c") }
func BenchmarkFigure8dHeterodevices(b *testing.B)  { benchExperiment(b, "figure8d") }
func BenchmarkTable4Energy(b *testing.B)           { benchExperiment(b, "table4") }
func BenchmarkTable5ResponseTime(b *testing.B)     { benchExperiment(b, "table5") }
func BenchmarkAblationWeighting(b *testing.B)      { benchExperiment(b, "ablation-weighting") }
func BenchmarkAblationSpacing(b *testing.B)        { benchExperiment(b, "ablation-spacing") }
func BenchmarkAblationTrainingSize(b *testing.B)   { benchExperiment(b, "ablation-training-size") }

// --- Micro-benchmarks: UniLoc's own per-epoch computation (Table V's
// "error prediction" and "BMA" rows measure these very code paths).

// benchEpoch prepares one realistic mid-walk epoch.
func benchEpoch(b *testing.B, opts ...core.Option) (*core.Framework, []*sensing.Snapshot) {
	b.Helper()
	s := getSuite(b)
	tr, err := s.Lab.Trained()
	if err != nil {
		b.Fatal(err)
	}
	campus := s.Lab.Campus()
	ss := campus.Schemes(rand.New(rand.NewSource(9)))
	fw, err := core.NewFramework(ss, tr.Models, opts...)
	if err != nil {
		b.Fatal(err)
	}
	path, _ := campus.Place.PathByName("path1")
	start, _ := path.Line.At(0)
	fw.Reset(start)
	rnd := rand.New(rand.NewSource(10))
	wk := NewWalker(campus.Place.World, path, campus.DefaultWalkerConfig(), rnd)
	var snaps []*sensing.Snapshot
	for !wk.Done() {
		snap, _ := wk.Next(true)
		snaps = append(snaps, snap)
	}
	return fw, snaps
}

// BenchmarkFrameworkStep measures one full UniLoc epoch: all five
// schemes, error prediction, confidences, selection and BMA. No
// observer is attached, so this is also the telemetry no-op-path
// guardrail: compare against BenchmarkFrameworkStepObserved to see
// what tracing costs, and against the PR-1 baseline (2485024 ns/op,
// 30 allocs/op) to confirm the untraced hot path did not regress.
func BenchmarkFrameworkStep(b *testing.B) {
	fw, snaps := benchEpoch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Step(snaps[i%len(snaps)])
	}
}

// BenchmarkFrameworkStepObserved is the same epoch with epoch tracing
// on (a counting observer, the cheapest real sink): the delta vs
// BenchmarkFrameworkStep is the full cost of per-epoch telemetry.
func BenchmarkFrameworkStepObserved(b *testing.B) {
	var traces int
	obs := telemetry.ObserverFunc(func(t *telemetry.EpochTrace) { traces++ })
	fw, snaps := benchEpoch(b, core.WithObserver(obs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fw.Step(snaps[i%len(snaps)])
	}
	if traces < b.N {
		b.Fatalf("observer saw %d traces for %d steps", traces, b.N)
	}
}

// TestFrameworkStepObserverOffNoExtraAllocs is the allocation
// guardrail on the real campus framework: with no observer attached,
// Step must allocate exactly as much as it did before the telemetry
// layer existed (the deterministic stub-scheme equivalent lives in
// internal/core). Measured with tracing ON for comparison, the count
// strictly increases — proving the AllocsPerRun harness would catch a
// regression on the off path.
func TestFrameworkStepObserverOffNoExtraAllocs(t *testing.T) {
	s := experiments.NewSuite(42)
	benchSuite = s
	tr, err := s.Lab.Trained()
	if err != nil {
		t.Fatal(err)
	}
	campus := s.Lab.Campus()
	mkSnaps := func(fw *core.Framework) []*sensing.Snapshot {
		path, _ := campus.Place.PathByName("path1")
		start, _ := path.Line.At(0)
		fw.Reset(start)
		rnd := rand.New(rand.NewSource(10))
		wk := NewWalker(campus.Place.World, path, campus.DefaultWalkerConfig(), rnd)
		var snaps []*sensing.Snapshot
		for !wk.Done() {
			snap, _ := wk.Next(true)
			snaps = append(snaps, snap)
		}
		return snaps
	}
	measure := func(opts ...core.Option) float64 {
		ss := campus.Schemes(rand.New(rand.NewSource(9)))
		fw, err := core.NewFramework(ss, tr.Models, opts...)
		if err != nil {
			t.Fatal(err)
		}
		snaps := mkSnaps(fw)
		snap := snaps[len(snaps)/2]
		fw.Step(snap) // warm caches and lastPred
		return testing.AllocsPerRun(100, func() { fw.Step(snap) })
	}
	off := measure()
	on := measure(core.WithObserver(telemetry.ObserverFunc(func(*telemetry.EpochTrace) {})))
	if on <= off {
		t.Fatalf("tracing on (%v allocs/op) should cost more than off (%v) — harness broken?", on, off)
	}
	// The PR-1 framework allocated ~30 objects per step on this walk;
	// the observer-off path must stay in that envelope.
	if off > 30 {
		t.Fatalf("observer-off Step allocates %v objects/op, want <= 30 (PR-1 baseline)", off)
	}
}

// BenchmarkBMACombine measures the BMA weighting + combination alone
// (the paper reports ~0.1 ms).
func BenchmarkBMACombine(b *testing.B) {
	fw, snaps := benchEpoch(b)
	res := fw.Step(snaps[len(snaps)/2])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tau := core.Tau(res.Schemes)
		core.ApplyConfidences(res.Schemes, tau)
		core.CombineBMA(res.Schemes)
	}
}

// BenchmarkErrorPrediction measures one scheme-error prediction (the
// paper reports ~6 ms for all schemes on their workstation).
func BenchmarkErrorPrediction(b *testing.B) {
	s := getSuite(b)
	tr, err := s.Lab.Trained()
	if err != nil {
		b.Fatal(err)
	}
	m := tr.Models.Get("wifi", core.EnvIndoor)
	if m == nil {
		b.Fatal("wifi model missing")
	}
	feats := map[string]float64{"fp_density": 2.5, "rssi_dev": 3.1, "num_aps": 7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(feats)
	}
}

// BenchmarkOffloadEncode measures the phone-side wire encoding of one
// epoch.
func BenchmarkOffloadEncode(b *testing.B) {
	_, snaps := benchEpoch(b)
	snap := snaps[len(snaps)/2]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if snap.Step != nil {
			offload.EncodeStep(snap.Step)
		}
		offload.EncodeVector(snap.WiFi)
		offload.EncodeVector(snap.Cell)
		offload.EncodeContext(snap)
	}
}

// BenchmarkWiFiMatch measures one RADAR fingerprint match against the
// campus database (dominant server-side cost of the wifi scheme).
func BenchmarkWiFiMatch(b *testing.B) {
	s := getSuite(b)
	campus := s.Lab.Campus()
	_, snaps := benchEpoch(b)
	var scan = snaps[10].WiFi
	db := campus.WiFiDB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.Nearest(scan, 3)
	}
}
