package faultinject

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/geo"
	"repro/internal/schemes"
	"repro/internal/sensing"
)

// SchemeConfig schedules faults for one decorated scheme.
// Probabilities are per Estimate call; zero disables that fault.
type SchemeConfig struct {
	Seed int64

	// Kills are epoch windows during which the scheme is dead: Estimate
	// returns OK=false without consulting the wrapped scheme, modeling
	// a mid-walk outage (the diversity experiment's primary knob).
	Kills []Window

	// PanicProb makes Estimate panic — the fault the framework's
	// per-scheme recovery must contain.
	PanicProb float64

	// NaNProb poisons the estimate: the position becomes NaN or ±Inf
	// (alternating deterministically) while OK stays true, and the
	// feature map gains a NaN — the quarantine layer must catch both
	// the position and the poisoned error prediction.
	NaNProb float64

	// StaleProb replays the previous successful estimate unchanged,
	// modeling a wedged pipeline that keeps reporting its last output.
	StaleProb float64

	// LatencyProb stalls Estimate for Latency before answering,
	// modeling a scheme-internal latency spike. Latency defaults to
	// 20ms when a spike fires with no duration configured.
	LatencyProb float64
	Latency     time.Duration
}

// SchemeCounts reports how many faults a decorated scheme has injected
// since its last Reset.
type SchemeCounts struct {
	Kills, Panics, NaNs, Stales, Latencies int
}

// Scheme decorates a schemes.Scheme with a deterministic fault
// schedule. It satisfies schemes.Scheme, so it drops into any
// framework unchanged; the framework cannot tell a decorated scheme
// from a misbehaving real one — which is the point.
type Scheme struct {
	inner schemes.Scheme
	cfg   SchemeConfig
	rnd   *rand.Rand

	last    schemes.Estimate
	hasLast bool
	counts  SchemeCounts
}

// WrapScheme decorates s with the fault schedule in cfg.
func WrapScheme(s schemes.Scheme, cfg SchemeConfig) *Scheme {
	return &Scheme{inner: s, cfg: cfg, rnd: newRand(cfg.Seed)}
}

// Name returns the wrapped scheme's identifier (the framework keys
// error models and gating state by name, so the decorator must be
// transparent).
func (s *Scheme) Name() string { return s.inner.Name() }

// RegressionFeatures passes through.
func (s *Scheme) RegressionFeatures() []string { return s.inner.RegressionFeatures() }

// Sensors passes through.
func (s *Scheme) Sensors() []string { return s.inner.Sensors() }

// Counts reports the faults injected since the last Reset.
func (s *Scheme) Counts() SchemeCounts { return s.counts }

// Reset re-seeds the fault schedule and resets the wrapped scheme.
func (s *Scheme) Reset(start geo.Point) {
	s.rnd = newRand(s.cfg.Seed)
	s.last, s.hasLast = schemes.Estimate{}, false
	s.counts = SchemeCounts{}
	s.inner.Reset(start)
}

// Estimate applies the epoch's scheduled faults around the wrapped
// scheme's estimate. Kill windows short-circuit; the probabilistic
// faults each draw exactly one variate per call (see hit), so the
// schedule for one fault kind is invariant to the others' settings.
func (s *Scheme) Estimate(snap *sensing.Snapshot) schemes.Estimate {
	if inWindows(s.cfg.Kills, snap.Epoch) {
		s.counts.Kills++
		return schemes.Estimate{}
	}
	doPanic := hit(s.rnd, s.cfg.PanicProb)
	doNaN := hit(s.rnd, s.cfg.NaNProb)
	doStale := hit(s.rnd, s.cfg.StaleProb)
	doLatency := hit(s.rnd, s.cfg.LatencyProb)
	infNotNaN := s.rnd.Intn(2) == 1 // drawn unconditionally to keep the stream aligned

	if doLatency {
		s.counts.Latencies++
		d := s.cfg.Latency
		if d <= 0 {
			d = 20 * time.Millisecond
		}
		time.Sleep(d)
	}
	if doPanic {
		s.counts.Panics++
		panic(fmt.Sprintf("faultinject: scheme %s panic at epoch %d", s.inner.Name(), snap.Epoch))
	}
	if doStale && s.hasLast {
		s.counts.Stales++
		return s.last
	}

	est := s.inner.Estimate(snap)
	if est.OK {
		// Stale repeats replay the last clean inner estimate; poisons
		// below stay one-epoch events with their own schedule.
		s.last, s.hasLast = est, true
	}
	if doNaN && est.OK {
		s.counts.NaNs++
		bad := math.NaN()
		if infNotNaN {
			bad = math.Inf(1)
		}
		est.Pos = geo.Pt(bad, bad)
		// Poison a feature too: the quarantine must also survive a NaN
		// that reaches the error model rather than the position.
		if est.Features != nil {
			feats := make(map[string]float64, len(est.Features))
			for k, v := range est.Features {
				feats[k] = v
			}
			for k := range feats {
				feats[k] = math.NaN()
				break
			}
			est.Features = feats
		}
	}
	return est
}

// KillScheme wraps s so it dies for good at epoch from — the
// mid-walk outage used by the diversity experiments.
func KillScheme(s schemes.Scheme, seed int64, from int) *Scheme {
	return WrapScheme(s, SchemeConfig{Seed: seed, Kills: []Window{Until(from)}})
}
