package faultinject

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjectedDrop is returned by a Conn whose schedule dropped the
// connection (the underlying conn is closed, as a real drop would).
var ErrInjectedDrop = errors.New("faultinject: injected connection drop")

// ConnConfig schedules offload-link faults. Probabilities are per
// Write call — one protocol frame in practice, since the offload
// encoders issue one Write per frame section; zero disables that
// fault.
type ConnConfig struct {
	Seed int64

	// DropProb closes the connection instead of writing — a mid-walk
	// link loss the client's reconnect path must absorb.
	DropProb float64

	// TruncateProb writes a prefix of the buffer and then closes,
	// leaving the peer a half frame (ReadFrame sees
	// io.ErrUnexpectedEOF).
	TruncateProb float64

	// CorruptProb flips one byte of the buffer before writing,
	// desynchronizing or corrupting the frame stream.
	CorruptProb float64

	// StallProb delays the write by Stall (default 20ms), modeling a
	// congested or half-dead link — the fault read/write deadlines
	// exist for.
	StallProb float64
	Stall     time.Duration
}

// ConnCounts reports the link faults injected so far.
type ConnCounts struct {
	Drops, Truncations, Corruptions, Stalls int
}

// Conn shims a net.Conn with a deterministic write-side fault
// schedule. It composes with any other net.Conn wrapper (e.g. the
// offload server's metered conn). Safe for concurrent use; the fault
// schedule is serialized by an internal lock, so determinism holds as
// long as the traffic itself is deterministic (single-writer
// protocols like the offload client).
type Conn struct {
	net.Conn
	cfg ConnConfig

	mu     sync.Mutex
	rnd    *rand.Rand
	counts ConnCounts
}

// WrapConn shims conn with the fault schedule in cfg.
func WrapConn(conn net.Conn, cfg ConnConfig) *Conn {
	return &Conn{Conn: conn, cfg: cfg, rnd: newRand(cfg.Seed)}
}

// Counts returns the faults injected so far.
func (c *Conn) Counts() ConnCounts {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counts
}

// Write applies the scheduled fault, then writes. Fault kinds are
// checked in severity order (drop > truncate > corrupt > stall); at
// most one fires per call. Every call draws the same number of
// variates regardless of which fault fires, so one kind's probability
// never shifts another's schedule.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	drop := hit(c.rnd, c.cfg.DropProb)
	trunc := hit(c.rnd, c.cfg.TruncateProb)
	corrupt := hit(c.rnd, c.cfg.CorruptProb)
	stall := hit(c.rnd, c.cfg.StallProb)
	var cut, flip int
	if len(p) > 0 {
		cut = c.rnd.Intn(len(p))
		flip = c.rnd.Intn(len(p))
	}
	switch {
	case drop:
		c.counts.Drops++
	case trunc:
		c.counts.Truncations++
	case corrupt:
		c.counts.Corruptions++
	case stall:
		c.counts.Stalls++
	}
	c.mu.Unlock()

	switch {
	case drop:
		_ = c.Conn.Close()
		return 0, ErrInjectedDrop
	case trunc:
		n, _ := c.Conn.Write(p[:cut])
		_ = c.Conn.Close()
		return n, ErrInjectedDrop
	case corrupt:
		bad := make([]byte, len(p))
		copy(bad, p)
		if len(bad) > 0 {
			bad[flip] ^= 0xFF
		}
		return c.Conn.Write(bad)
	case stall:
		d := c.cfg.Stall
		if d <= 0 {
			d = 20 * time.Millisecond
		}
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}
