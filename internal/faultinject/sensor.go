package faultinject

import (
	"math"
	"math/rand"

	"repro/internal/rf"
	"repro/internal/sensing"
)

// SensorConfig schedules sensing-level faults. Probabilities are per
// epoch; zero disables that fault. All schedules are driven by Seed.
type SensorConfig struct {
	Seed int64

	// WiFiDropProb / CellDropProb empty the RF scan for the epoch,
	// modeling a failed or throttled scan.
	WiFiDropProb float64
	CellDropProb float64

	// GPSOutages are epoch windows with no GNSS fix at all (urban
	// canyon, tunnel, indoors beyond what the scenario models).
	GPSOutages []Window

	// IMUNaNProb corrupts the epoch's step event with NaN heading and
	// length, modeling a glitched inertial pipeline.
	IMUNaNProb float64

	// DelayProb delivers the previous epoch's WiFi/cellular scans
	// instead of the current ones (a queued, stale snapshot).
	DelayProb float64
}

// Sensors mutates snapshots on a deterministic schedule before they
// reach the framework. Not safe for concurrent use; one walk, one
// injector.
type Sensors struct {
	cfg SensorConfig
	rnd *rand.Rand

	prevWiFi rf.Vector
	prevCell rf.Vector

	wifiDrops, cellDrops, gpsOutages, imuGlitches, delays int
}

// NewSensors builds a sensing-level injector.
func NewSensors(cfg SensorConfig) *Sensors {
	return &Sensors{cfg: cfg, rnd: newRand(cfg.Seed)}
}

// Reset re-seeds the schedule for a new walk.
func (s *Sensors) Reset() {
	s.rnd = newRand(s.cfg.Seed)
	s.prevWiFi, s.prevCell = nil, nil
	s.wifiDrops, s.cellDrops, s.gpsOutages, s.imuGlitches, s.delays = 0, 0, 0, 0, 0
}

// Apply returns a faulted shallow copy of the snapshot (the original is
// never mutated — callers may reuse it for ground-truth accounting).
func (s *Sensors) Apply(snap *sensing.Snapshot) *sensing.Snapshot {
	out := *snap
	curWiFi, curCell := snap.WiFi, snap.Cell

	if hit(s.rnd, s.cfg.DelayProb) && (s.prevWiFi != nil || s.prevCell != nil) {
		out.WiFi, out.Cell = s.prevWiFi, s.prevCell
		s.delays++
	}
	if hit(s.rnd, s.cfg.WiFiDropProb) {
		out.WiFi = nil
		s.wifiDrops++
	}
	if hit(s.rnd, s.cfg.CellDropProb) {
		out.Cell = nil
		s.cellDrops++
	}
	if inWindows(s.cfg.GPSOutages, snap.Epoch) && out.GNSS != nil {
		out.GNSS = nil
		s.gpsOutages++
	}
	if hit(s.rnd, s.cfg.IMUNaNProb) && out.Step != nil {
		glitch := *out.Step
		glitch.HeadingR = math.NaN()
		glitch.LengthM = math.NaN()
		out.Step = &glitch
		s.imuGlitches++
	}

	s.prevWiFi, s.prevCell = curWiFi, curCell
	return &out
}

// Counts reports how many faults of each kind have fired since the
// last Reset, keyed by fault name.
func (s *Sensors) Counts() map[string]int {
	return map[string]int{
		"wifi_drop":  s.wifiDrops,
		"cell_drop":  s.cellDrops,
		"gps_outage": s.gpsOutages,
		"imu_nan":    s.imuGlitches,
		"delay":      s.delays,
	}
}
