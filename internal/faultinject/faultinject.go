// Package faultinject is UniLoc's deterministic chaos harness: seeded
// injectors that wrap the framework's existing seams and corrupt them
// on a reproducible schedule, so the defense layers (per-scheme panic
// recovery, NaN/Inf quarantine, last-good fallback, offload deadlines
// and reconnect) can be proven rather than assumed.
//
// Injectors exist at the three levels where real deployments fail:
//
//   - sensing: Sensors mutates snapshots before they reach the
//     framework — WiFi/cellular scan loss, GPS outage windows, IMU NaN
//     glitches, and stale (delayed) RF scans.
//   - scheme: Scheme decorates any schemes.Scheme — injected panics,
//     NaN/Inf positions, stale repeats, latency spikes, and hard kill
//     windows that model a scheme dying mid-walk.
//   - offload link: Conn shims a net.Conn — connection drops,
//     truncated frames, byte corruption, and stalls — composable with
//     the server's meteredConn wrapper.
//
// Every injector draws from its own math/rand stream seeded at
// construction (and re-seeded by Reset, where the wrapped interface has
// one), so two runs with the same seed produce the identical fault
// schedule: same epochs lose WiFi, same scheme panics at the same
// step, same frame gets the same flipped byte. That determinism is the
// contract the chaos experiments and CI smoke tests are built on.
package faultinject

import "math/rand"

// Window is an inclusive epoch range [From, To] during which a
// windowed fault (GPS outage, scheme kill) is active. To < From means
// an empty window; use a large To (e.g. 1<<30) for "until the end of
// the walk".
type Window struct {
	From, To int
}

// Contains reports whether epoch e falls inside the window.
func (w Window) Contains(e int) bool { return e >= w.From && e <= w.To }

// Until returns a window open from epoch from to the end of the walk.
func Until(from int) Window { return Window{From: from, To: 1 << 30} }

// inWindows reports whether any window contains the epoch.
func inWindows(ws []Window, e int) bool {
	for _, w := range ws {
		if w.Contains(e) {
			return true
		}
	}
	return false
}

// newRand builds the injector-private random stream. Streams are
// derived from the injector seed alone — never shared — so adding one
// injector cannot shift another's schedule.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// hit draws one uniform variate and reports whether a probability-p
// fault fires. Every decision point draws exactly one variate whether
// or not it fires, keeping downstream decisions aligned across
// configuration changes to *other* fault kinds' probabilities.
func hit(rnd *rand.Rand, p float64) bool {
	u := rnd.Float64()
	return p > 0 && u < p
}
