package faultinject

import (
	"io"
	"math"
	"net"
	"reflect"
	"testing"

	"repro/internal/geo"
	"repro/internal/gnss"
	"repro/internal/imu"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
)

var gnssFix = gnss.Fix{NumSats: 9, HDOP: 1.0}

// fakeScheme returns a fixed, valid estimate every epoch.
type fakeScheme struct{ calls int }

func (f *fakeScheme) Name() string                 { return "fake" }
func (f *fakeScheme) Reset(geo.Point)              { f.calls = 0 }
func (f *fakeScheme) RegressionFeatures() []string { return []string{"feat"} }
func (f *fakeScheme) Sensors() []string            { return nil }
func (f *fakeScheme) Estimate(snap *sensing.Snapshot) schemes.Estimate {
	f.calls++
	return schemes.Estimate{
		Pos: geo.Pt(float64(snap.Epoch), 1), OK: true,
		Features: map[string]float64{"feat": 1},
	}
}

func testSnap(epoch int) *sensing.Snapshot {
	return &sensing.Snapshot{
		Epoch: epoch,
		WiFi:  rf.Vector{{ID: "ap1", RSSI: -40}},
		Cell:  rf.Vector{{ID: "cell1", RSSI: -60}},
		Step:  &imu.StepEvent{HeadingR: 0.1, LengthM: 0.7},
	}
}

// sensorSchedule runs n epochs and records which faults fired when.
func sensorSchedule(t *testing.T, seed int64, n int) []string {
	t.Helper()
	s := NewSensors(SensorConfig{
		Seed: seed, WiFiDropProb: 0.3, CellDropProb: 0.3,
		IMUNaNProb: 0.2, DelayProb: 0.2,
		GPSOutages: []Window{{From: 3, To: 6}},
	})
	var sched []string
	for e := 0; e < n; e++ {
		out := s.Apply(testSnap(e))
		key := ""
		if out.WiFi == nil {
			key += "W"
		}
		if out.Cell == nil {
			key += "C"
		}
		if out.Step != nil && math.IsNaN(out.Step.HeadingR) {
			key += "I"
		}
		sched = append(sched, key)
	}
	return sched
}

func TestSensorsDeterministic(t *testing.T) {
	a := sensorSchedule(t, 7, 200)
	b := sensorSchedule(t, 7, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different sensor fault schedules")
	}
	c := sensorSchedule(t, 8, 200)
	if reflect.DeepEqual(a, c) {
		t.Fatalf("different seeds produced identical schedules (injector inert?)")
	}
}

func TestSensorsNeverMutatesInput(t *testing.T) {
	s := NewSensors(SensorConfig{Seed: 1, WiFiDropProb: 1, IMUNaNProb: 1})
	in := testSnap(0)
	_ = s.Apply(in)
	if in.WiFi == nil || math.IsNaN(in.Step.HeadingR) {
		t.Fatalf("Apply mutated the caller's snapshot")
	}
}

func TestSensorsGPSOutageWindow(t *testing.T) {
	s := NewSensors(SensorConfig{Seed: 1, GPSOutages: []Window{{From: 2, To: 4}}})
	for e := 0; e < 7; e++ {
		snap := testSnap(e)
		snap.GNSS = &gnssFix
		out := s.Apply(snap)
		inWin := e >= 2 && e <= 4
		if (out.GNSS == nil) != inWin {
			t.Fatalf("epoch %d: GNSS nil=%v, want outage=%v", e, out.GNSS == nil, inWin)
		}
	}
}

// schemeSchedule runs n epochs against a wrapped fake scheme and
// records the fault outcome per epoch.
func schemeSchedule(t *testing.T, seed int64, n int) ([]string, SchemeCounts) {
	t.Helper()
	fs := WrapScheme(&fakeScheme{}, SchemeConfig{
		Seed: seed, PanicProb: 0.1, NaNProb: 0.2, StaleProb: 0.2,
		Kills: []Window{{From: 10, To: 14}},
	})
	fs.Reset(geo.Pt(0, 0))
	var sched []string
	for e := 0; e < n; e++ {
		key := func() (k string) {
			defer func() {
				if recover() != nil {
					k = "panic"
				}
			}()
			est := fs.Estimate(testSnap(e))
			switch {
			case !est.OK:
				return "dead"
			case math.IsNaN(est.Pos.X) || math.IsInf(est.Pos.X, 0):
				return "nan"
			case est.Pos.X != float64(e):
				return "stale"
			default:
				return "ok"
			}
		}()
		sched = append(sched, key)
	}
	return sched, fs.Counts()
}

func TestSchemeDeterministic(t *testing.T) {
	a, ca := schemeSchedule(t, 11, 300)
	b, cb := schemeSchedule(t, 11, 300)
	if !reflect.DeepEqual(a, b) || ca != cb {
		t.Fatalf("same seed produced different scheme fault schedules")
	}
	for e := 10; e <= 14; e++ {
		if a[e] != "dead" {
			t.Fatalf("epoch %d inside kill window got %q, want dead", e, a[e])
		}
	}
	var panics, nans, stales int
	for _, k := range a {
		switch k {
		case "panic":
			panics++
		case "nan":
			nans++
		case "stale":
			stales++
		}
	}
	if panics == 0 || nans == 0 || stales == 0 {
		t.Fatalf("expected every fault kind to fire over 300 epochs: panics=%d nans=%d stales=%d", panics, nans, stales)
	}
	if ca.Panics != panics || ca.NaNs != nans || ca.Stales != stales {
		t.Fatalf("counts %+v disagree with observed panics=%d nans=%d stales=%d", ca, panics, nans, stales)
	}
}

func TestSchemeResetRestartsSchedule(t *testing.T) {
	fs := WrapScheme(&fakeScheme{}, SchemeConfig{Seed: 5, NaNProb: 0.5})
	fs.Reset(geo.Pt(0, 0))
	first := make([]bool, 50)
	for e := range first {
		est := fs.Estimate(testSnap(e))
		first[e] = math.IsNaN(est.Pos.X) || math.IsInf(est.Pos.X, 0)
	}
	fs.Reset(geo.Pt(0, 0))
	for e := range first {
		est := fs.Estimate(testSnap(e))
		got := math.IsNaN(est.Pos.X) || math.IsInf(est.Pos.X, 0)
		if got != first[e] {
			t.Fatalf("epoch %d: schedule diverged after Reset", e)
		}
	}
	if fs.Name() != "fake" {
		t.Fatalf("decorator must preserve the scheme name, got %q", fs.Name())
	}
}

// connExchange writes frames through a faulty conn and records which
// writes fail, plus the bytes the peer observed.
func connExchange(t *testing.T, seed int64, n int) ([]bool, []byte, ConnCounts) {
	t.Helper()
	a, b := net.Pipe()
	fc := WrapConn(a, ConnConfig{Seed: seed, DropProb: 0.05, TruncateProb: 0.05, CorruptProb: 0.2})
	recvDone := make(chan []byte, 1)
	go func() {
		buf, _ := io.ReadAll(b)
		recvDone <- buf
	}()
	fails := make([]bool, 0, n)
	msg := []byte("frame-payload-0123456789")
	for i := 0; i < n; i++ {
		_, err := fc.Write(msg)
		fails = append(fails, err != nil)
		if err != nil {
			break
		}
	}
	_ = fc.Close()
	_ = b.Close()
	return fails, <-recvDone, fc.Counts()
}

func TestConnDeterministic(t *testing.T) {
	fa, ba, ca := connExchange(t, 3, 100)
	fb, bb, cb := connExchange(t, 3, 100)
	if !reflect.DeepEqual(fa, fb) || !reflect.DeepEqual(ba, bb) || ca != cb {
		t.Fatalf("same seed produced different link fault schedules: %+v vs %+v", ca, cb)
	}
	if ca.Corruptions == 0 {
		t.Fatalf("expected corruptions over 100 writes at p=0.2, got %+v", ca)
	}
}

func TestConnDropClosesConnection(t *testing.T) {
	a, b := net.Pipe()
	fc := WrapConn(a, ConnConfig{Seed: 1, DropProb: 1})
	go func() { _, _ = io.ReadAll(b) }()
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatalf("drop-scheduled write succeeded")
	}
	if _, err := a.Write([]byte("y")); err == nil {
		t.Fatalf("underlying conn still open after injected drop")
	}
}

func TestWindowHelpers(t *testing.T) {
	w := Until(5)
	if w.Contains(4) || !w.Contains(5) || !w.Contains(1e6) {
		t.Fatalf("Until(5) misbehaves: %+v", w)
	}
	if (Window{From: 3, To: 2}).Contains(3) {
		t.Fatalf("inverted window should be empty")
	}
}
