package faultinject

import (
	"errors"
	"net"
	"sort"
	"sync"
)

// ErrPartitioned reports a dial refused by an active Partition.
var ErrPartitioned = errors.New("faultinject: link partitioned")

// Partition models a network partition of one cluster-internal link
// (the session-handoff wire, the replication stream): while cut, every
// dial through WrapDial fails and every connection previously opened
// through it is severed. Heal restores the link; the wrapped
// component's own reconnect path (shipper backoff, follower redial)
// takes it from there. Unlike the epoch-seeded injectors, a partition
// is driven explicitly — cluster chaos schedules are wall-time and
// process-level, so the harness (or a ClusterPlan) decides when.
type Partition struct {
	mu     sync.Mutex
	active bool
	conns  map[net.Conn]struct{}
	cuts   int
}

// Cut activates the partition and severs every tracked connection.
func (p *Partition) Cut() {
	p.mu.Lock()
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	p.conns = nil
	p.active = true
	p.cuts++
	p.mu.Unlock()
	for _, c := range conns {
		_ = c.Close()
	}
}

// Heal deactivates the partition; subsequent dials succeed again.
func (p *Partition) Heal() {
	p.mu.Lock()
	p.active = false
	p.mu.Unlock()
}

// Active reports whether the link is currently cut.
func (p *Partition) Active() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.active
}

// Cuts returns how many times the link has been cut.
func (p *Partition) Cuts() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cuts
}

// WrapDial decorates a dialer so the partition governs it: dials fail
// while cut, and connections it opened are tracked for severing by the
// next Cut. Plugs into cluster.HandoffConfig.Dial.
func (p *Partition) WrapDial(dial func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	return func(addr string) (net.Conn, error) {
		p.mu.Lock()
		if p.active {
			p.mu.Unlock()
			return nil, ErrPartitioned
		}
		p.mu.Unlock()
		conn, err := dial(addr)
		if err != nil {
			return nil, err
		}
		p.mu.Lock()
		if p.active {
			// Cut raced the dial: the conn belongs to the dead link.
			p.mu.Unlock()
			_ = conn.Close()
			return nil, ErrPartitioned
		}
		if p.conns == nil {
			p.conns = make(map[net.Conn]struct{})
		}
		p.conns[conn] = struct{}{}
		p.mu.Unlock()
		return &partitionConn{Conn: conn, p: p}, nil
	}
}

// partitionConn untracks itself on Close so healed links don't
// accumulate dead entries.
type partitionConn struct {
	net.Conn
	p *Partition
}

func (c *partitionConn) Close() error {
	c.p.mu.Lock()
	delete(c.p.conns, c.Conn)
	c.p.mu.Unlock()
	return c.Conn.Close()
}

// ClusterPlan schedules process-level cluster faults — node kills,
// handoff-link cuts, standby promotion — on a walk's epoch clock, the
// same deterministic axis the sensing and scheme injectors use. The
// harness registers actions with At and calls Tick once per observed
// epoch; each action fires exactly once, at the first tick at or past
// its epoch, in epoch order. Two runs of the same harness therefore
// produce the same fault schedule relative to walk progress, even
// though the faults themselves (kill -9, dial failures) are wall-time
// effects.
type ClusterPlan struct {
	mu   sync.Mutex
	acts []clusterAction
}

type clusterAction struct {
	epoch int
	name  string
	fn    func()
	fired bool
}

// At registers an action to fire at the first Tick at or past epoch.
func (c *ClusterPlan) At(epoch int, name string, fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.acts = append(c.acts, clusterAction{epoch: epoch, name: name, fn: fn})
	sort.SliceStable(c.acts, func(i, j int) bool { return c.acts[i].epoch < c.acts[j].epoch })
}

// Tick fires every unfired action whose epoch has been reached and
// returns their names (empty when nothing fired). Safe for concurrent
// callers; each action runs exactly once, outside the plan's lock.
func (c *ClusterPlan) Tick(epoch int) []string {
	c.mu.Lock()
	var due []func()
	var names []string
	for i := range c.acts {
		if !c.acts[i].fired && c.acts[i].epoch <= epoch {
			c.acts[i].fired = true
			due = append(due, c.acts[i].fn)
			names = append(names, c.acts[i].name)
		}
	}
	c.mu.Unlock()
	for _, fn := range due {
		fn()
	}
	return names
}
