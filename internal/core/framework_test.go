package core

import (
	"testing"

	"repro/internal/geo"
	"repro/internal/iodetector"
	"repro/internal/regress"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/telemetry"
)

// fakeScheme is a scriptable scheme for framework tests.
type fakeScheme struct {
	name  string
	pos   geo.Point
	ok    bool
	feats map[string]float64
	reset int
}

func (f *fakeScheme) Name() string                 { return f.name }
func (f *fakeScheme) Reset(geo.Point)              { f.reset++ }
func (f *fakeScheme) RegressionFeatures() []string { return []string{"x"} }
func (f *fakeScheme) Sensors() []string            { return []string{schemes.SensorIMU} }
func (f *fakeScheme) Estimate(*sensing.Snapshot) schemes.Estimate {
	return schemes.Estimate{Pos: f.pos, OK: f.ok, Features: f.feats}
}

// modelFor builds an intercept-free model ŷ = beta·x with residual σ.
func modelFor(scheme string, env EnvClass, beta, sigma float64) *ErrorModel {
	return &ErrorModel{
		Scheme:   scheme,
		Env:      env,
		Features: []string{"x"},
		Reg: &regress.Result{
			Names:    []string{"x"},
			Beta:     []float64{beta},
			ResidStd: sigma,
		},
	}
}

// outdoorSnap is clearly outdoor for IODetector.
func outdoorSnap() *sensing.Snapshot {
	return &sensing.Snapshot{LightLux: 11000, MagVarUT: 0.4}
}

// indoorSnap is clearly indoor.
func indoorSnap() *sensing.Snapshot {
	return &sensing.Snapshot{LightLux: 150, MagVarUT: 3}
}

func twoSchemeFramework(t *testing.T) (*Framework, *fakeScheme, *fakeScheme) {
	t.Helper()
	good := &fakeScheme{name: "good", pos: geo.Pt(1, 1), ok: true, feats: map[string]float64{"x": 1}}
	bad := &fakeScheme{name: "bad", pos: geo.Pt(30, 30), ok: true, feats: map[string]float64{"x": 10}}
	ms := NewModelSet()
	for _, env := range []EnvClass{EnvIndoor, EnvOutdoor} {
		ms.Put(modelFor("good", env, 2, 1)) // predicts 2 m
		ms.Put(modelFor("bad", env, 2, 2))  // predicts 20 m
	}
	fw, err := NewFramework([]schemes.Scheme{good, bad}, ms)
	if err != nil {
		t.Fatal(err)
	}
	return fw, good, bad
}

func TestNewFrameworkValidation(t *testing.T) {
	if _, err := NewFramework(nil, NewModelSet()); err == nil {
		t.Error("no schemes should fail")
	}
	if _, err := NewFramework([]schemes.Scheme{&fakeScheme{name: "s"}}, nil); err == nil {
		t.Error("nil models should fail")
	}
}

func TestFrameworkStepSelectsAndCombines(t *testing.T) {
	fw, _, _ := twoSchemeFramework(t)
	fw.Reset(geo.Pt(0, 0))
	res := fw.Step(outdoorSnap())
	if !res.OK {
		t.Fatal("step should succeed")
	}
	if res.Schemes[res.BestIdx].Name != "good" {
		t.Errorf("selected %s", res.Schemes[res.BestIdx].Name)
	}
	if res.Best != geo.Pt(1, 1) {
		t.Errorf("Best = %v", res.Best)
	}
	// BMA must sit between the schemes, dominated by the good one.
	if res.BMA.Dist(geo.Pt(1, 1)) > res.BMA.Dist(geo.Pt(30, 30)) {
		t.Errorf("BMA %v closer to the bad scheme", res.BMA)
	}
	if res.Env != EnvOutdoor {
		t.Errorf("Env = %v", res.Env)
	}
	if res.Tau <= 0 {
		t.Errorf("Tau = %v", res.Tau)
	}
}

func TestFrameworkEnvironmentSwitch(t *testing.T) {
	fw, _, _ := twoSchemeFramework(t)
	fw.Reset(geo.Pt(0, 0))
	res := fw.Step(indoorSnap())
	if res.Env != EnvIndoor {
		t.Errorf("Env = %v, want indoor", res.Env)
	}
}

func TestFrameworkUnavailableScheme(t *testing.T) {
	fw, good, _ := twoSchemeFramework(t)
	fw.Reset(geo.Pt(0, 0))
	good.ok = false
	res := fw.Step(outdoorSnap())
	if !res.OK {
		t.Fatal("one scheme remains")
	}
	if res.Schemes[res.BestIdx].Name != "bad" {
		t.Error("should fall back to the remaining scheme")
	}
	if res.Schemes[0].Conf != 0 {
		t.Error("unavailable scheme must carry zero confidence")
	}
}

func TestFrameworkAllUnavailable(t *testing.T) {
	fw, good, bad := twoSchemeFramework(t)
	fw.Reset(geo.Pt(0, 0))
	good.ok = false
	bad.ok = false
	res := fw.Step(outdoorSnap())
	if res.OK || res.BestIdx != -1 {
		t.Error("no scheme available should report !OK")
	}
}

func TestFrameworkResetPropagates(t *testing.T) {
	fw, good, bad := twoSchemeFramework(t)
	fw.Reset(geo.Pt(5, 5))
	if good.reset != 1 || bad.reset != 1 {
		t.Error("Reset must reach every scheme")
	}
}

func TestFrameworkMissingModelNeutralPrediction(t *testing.T) {
	s := &fakeScheme{name: "orphan", pos: geo.Pt(2, 2), ok: true, feats: map[string]float64{"x": 1}}
	ms := NewModelSet()
	ms.Put(modelFor("someone-else", EnvOutdoor, 1, 1))
	fw, err := NewFramework([]schemes.Scheme{s}, ms)
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(geo.Pt(0, 0))
	res := fw.Step(outdoorSnap())
	if !res.OK {
		t.Fatal("orphan scheme should still participate")
	}
	if res.Schemes[0].PredErr != 10 || res.Schemes[0].Sigma != 5 {
		t.Errorf("neutral prediction = %v ± %v", res.Schemes[0].PredErr, res.Schemes[0].Sigma)
	}
}

func TestGPSGating(t *testing.T) {
	gps := &fakeScheme{name: schemes.NameGPS, pos: geo.Pt(0, 0), ok: true, feats: map[string]float64{}}
	other := &fakeScheme{name: "other", pos: geo.Pt(1, 1), ok: true, feats: map[string]float64{"x": 1}}
	ms := NewModelSet()
	// GPS: intercept-only 13.5 m outdoor model.
	ms.Put(&ErrorModel{
		Scheme: schemes.NameGPS, Env: EnvOutdoor, Features: nil,
		Reg: &regress.Result{HasIntercept: true, Intercept: 13.5, ResidStd: 9.4},
	})
	ms.Put(modelFor("other", EnvOutdoor, 2, 1)) // predicts 2 m
	ms.Put(modelFor("other", EnvIndoor, 2, 1))
	fw, err := NewFramework([]schemes.Scheme{gps, other}, ms)
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(geo.Pt(0, 0))

	// Before any step (no predictions yet) GPS may be wanted outdoors.
	if !fw.GPSWanted() {
		t.Error("fresh outdoor framework should allow GPS")
	}
	// After a step where the other scheme predicts 2 m < 13.5 m, GPS
	// should be gated off.
	fw.Step(outdoorSnap())
	if fw.GPSWanted() {
		t.Error("GPS should be off when another scheme predicts better")
	}
	// Degrade the other scheme's features → prediction 40 m > 13.5 m.
	other.feats = map[string]float64{"x": 20}
	fw.Step(outdoorSnap())
	if !fw.GPSWanted() {
		t.Error("GPS should be on when it is predicted best")
	}
	// Indoors GPS is always off.
	fw.Step(indoorSnap())
	fw.Step(indoorSnap())
	if fw.GPSWanted() {
		t.Error("GPS must be off indoors")
	}
	// Gating disabled → always on.
	fw2, _ := NewFramework([]schemes.Scheme{gps, other}, ms, WithGPSGating(false))
	fw2.Reset(geo.Pt(0, 0))
	fw2.Step(indoorSnap())
	if !fw2.GPSWanted() {
		t.Error("disabled gating should always want GPS")
	}
}

// TestGPSGatingForgetsUnavailableSchemes is the regression for the
// stale-lastPred bug: a scheme that left coverage kept its last
// predicted error forever, permanently gating GPS off.
func TestGPSGatingForgetsUnavailableSchemes(t *testing.T) {
	gps := &fakeScheme{name: schemes.NameGPS, pos: geo.Pt(0, 0), ok: true, feats: map[string]float64{}}
	other := &fakeScheme{name: "other", pos: geo.Pt(1, 1), ok: true, feats: map[string]float64{"x": 1}}
	ms := NewModelSet()
	ms.Put(&ErrorModel{
		Scheme: schemes.NameGPS, Env: EnvOutdoor, Features: nil,
		Reg: &regress.Result{HasIntercept: true, Intercept: 13.5, ResidStd: 9.4},
	})
	ms.Put(modelFor("other", EnvOutdoor, 2, 1)) // predicts 2 m while available
	ms.Put(modelFor("other", EnvIndoor, 2, 1))
	fw, err := NewFramework([]schemes.Scheme{gps, other}, ms)
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(geo.Pt(0, 0))

	// While the other scheme predicts 2 m < 13.5 m, GPS is gated off.
	fw.Step(outdoorSnap())
	if fw.GPSWanted() {
		t.Fatal("GPS should be off while a better scheme is available")
	}
	// The other scheme leaves coverage: its stale 2 m prediction must
	// not keep biasing the gate — GPS is now the only candidate.
	other.ok = false
	fw.Step(outdoorSnap())
	if !fw.GPSWanted() {
		t.Error("stale prediction of an unavailable scheme must not gate GPS off")
	}
	// Coverage returns: gating resumes from the fresh prediction.
	other.ok = true
	fw.Step(outdoorSnap())
	if fw.GPSWanted() {
		t.Error("gating should resume when the scheme becomes available again")
	}
}

func TestModelSetLookupFallback(t *testing.T) {
	ms := NewModelSet()
	m := modelFor("s", EnvOutdoor, 1, 1)
	ms.Put(m)
	if got := ms.Lookup("s", EnvIndoor); got != m {
		t.Error("Lookup should fall back to the other environment")
	}
	if ms.Lookup("nope", EnvIndoor) != nil {
		t.Error("unknown scheme should be nil")
	}
	if got := ms.Get("s", EnvIndoor); got != nil {
		t.Error("Get must not fall back")
	}
	names := ms.Schemes()
	if len(names) != 1 || names[0] != "s" {
		t.Errorf("Schemes = %v", names)
	}
}

func TestErrorModelPredictFloorsAndSigma(t *testing.T) {
	m := modelFor("s", EnvIndoor, -5, 0) // negative prediction, zero sigma
	mu, sigma := m.Predict(map[string]float64{"x": 1})
	if mu != minPredictedErr {
		t.Errorf("mu = %v, want floor", mu)
	}
	if sigma != 0.1 {
		t.Errorf("sigma = %v, want fallback", sigma)
	}
}

func TestEnvClassString(t *testing.T) {
	if EnvIndoor.String() != "indoor" || EnvOutdoor.String() != "outdoor" || EnvClass(0).String() != "unknown" {
		t.Error("EnvClass strings wrong")
	}
}

// TestResetPreservesConfiguredIODetector is the regression for the
// Reset bug: Reset rebuilt the IODetector with DefaultConfig, silently
// discarding a detector installed via WithIODetector. The custom
// detector here inverts the light thresholds so bright light reads as
// indoor — behavior only a preserved config can produce after Reset.
func TestResetPreservesConfiguredIODetector(t *testing.T) {
	s := &fakeScheme{name: "s", pos: geo.Pt(1, 1), ok: true, feats: map[string]float64{"x": 1}}
	ms := NewModelSet()
	ms.Put(modelFor("s", EnvIndoor, 2, 1))
	ms.Put(modelFor("s", EnvOutdoor, 2, 1))
	// Absurdly high DimLux: every light level votes indoor.
	cfg := iodetector.DefaultConfig()
	cfg.DaylightLux = 1e12
	cfg.DimLux = 1e11
	cfg.Votes = 1
	fw, err := NewFramework([]schemes.Scheme{s}, ms, WithIODetector(iodetector.New(cfg)))
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(geo.Pt(0, 0))
	if res := fw.Step(outdoorSnap()); res.Env != EnvIndoor {
		t.Fatalf("custom detector ignored before reset: env = %v", res.Env)
	}
	fw.Reset(geo.Pt(0, 0))
	if res := fw.Step(outdoorSnap()); res.Env != EnvIndoor {
		t.Fatalf("Reset discarded the configured IODetector: env = %v", res.Env)
	}
}

// TestResetClearsIODetectorState: the preserved detector must still
// start the next walk fresh (no hysteresis carry-over).
func TestResetClearsIODetectorState(t *testing.T) {
	fw, _, _ := twoSchemeFramework(t)
	fw.Reset(geo.Pt(0, 0))
	for i := 0; i < 5; i++ {
		fw.Step(indoorSnap())
	}
	if fw.iod.State() != iodetector.Indoor {
		t.Fatalf("detector state = %v, want indoor", fw.iod.State())
	}
	fw.Reset(geo.Pt(0, 0))
	if fw.iod.State() != iodetector.Unknown {
		t.Fatalf("Reset left detector state %v, want unknown", fw.iod.State())
	}
}

// TestStepEmitsEpochTrace verifies the observer contract: one trace
// per Step carrying the environment, gating decision, and per-scheme
// self-assessment, with timing fields populated.
func TestStepEmitsEpochTrace(t *testing.T) {
	fw, good, _ := twoSchemeFramework(t)
	var col telemetry.Collector
	WithObserver(&col)(fw)
	fw.Reset(geo.Pt(0, 0))

	good.ok = false
	snap := outdoorSnap()
	snap.Epoch = 7
	fw.Step(snap)

	traces := col.Traces()
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Epoch != 7 || tr.Env != "outdoor" || !tr.OK {
		t.Fatalf("trace header %+v", tr)
	}
	if tr.Best != "bad" {
		t.Fatalf("trace best = %q, want bad (good is unavailable)", tr.Best)
	}
	if len(tr.Schemes) != 2 {
		t.Fatalf("trace schemes = %d, want 2", len(tr.Schemes))
	}
	if tr.Schemes[0].Scheme != "good" || tr.Schemes[0].Available {
		t.Fatalf("scheme 0 = %+v, want unavailable good", tr.Schemes[0])
	}
	st := tr.Schemes[1]
	if st.Scheme != "bad" || !st.Available || st.PredErr != 20 || st.Conf <= 0 || st.Weight != 1 {
		t.Fatalf("scheme 1 = %+v", st)
	}
	if st.PredictNS < 0 || st.EstimateNS < 0 || tr.StepNS <= 0 || tr.Tau != 20 {
		t.Fatalf("trace timings %+v", tr)
	}
	if tr.PredictNS != st.PredictNS {
		t.Fatalf("total predict %d != sum of per-scheme %d", tr.PredictNS, st.PredictNS)
	}
}

// stepBaselineAllocs is what one observer-off Step allocates with the
// test's deterministic fake schemes: the StepResult.Schemes slice plus
// one feature vector per available scheme inside ErrorModel.Predict.
// The telemetry instrumentation must not move this number — that is
// the "no-op observer path adds zero allocations" guardrail (the
// companion wall-time guardrail lives in BenchmarkFrameworkStep).
const stepBaselineAllocs = 3

func TestStepNoObserverAddsNoAllocations(t *testing.T) {
	fw, _, _ := twoSchemeFramework(t)
	fw.Reset(geo.Pt(0, 0))
	snap := outdoorSnap()
	fw.Step(snap) // warm up lastPred so map inserts don't count
	got := testing.AllocsPerRun(200, func() { fw.Step(snap) })
	if got != stepBaselineAllocs {
		t.Fatalf("observer-off Step allocates %v objects/op, want %d", got, stepBaselineAllocs)
	}
}
