package core

import (
	"math"
	"testing"

	"repro/internal/geo"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/telemetry"
)

// panicScheme panics on Estimate when armed.
type panicScheme struct {
	fakeScheme
	armed bool
}

func (p *panicScheme) Estimate(snap *sensing.Snapshot) schemes.Estimate {
	if p.armed {
		panic("chaos: injected scheme panic")
	}
	return p.fakeScheme.Estimate(snap)
}

func chaosFramework(t *testing.T, extra schemes.Scheme, opts ...Option) *Framework {
	t.Helper()
	good := &fakeScheme{name: "good", pos: geo.Pt(1, 1), ok: true, feats: map[string]float64{"x": 1}}
	ms := NewModelSet()
	for _, env := range []EnvClass{EnvIndoor, EnvOutdoor} {
		ms.Put(modelFor("good", env, 2, 1))
		ms.Put(modelFor(extra.Name(), env, 2, 2))
	}
	fw, err := NewFramework([]schemes.Scheme{good, extra}, ms, opts...)
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(geo.Pt(0, 0))
	return fw
}

func TestSchemePanicRecovered(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := NewHealth(reg)
	bad := &panicScheme{fakeScheme: fakeScheme{name: "bad", pos: geo.Pt(2, 2), ok: true, feats: map[string]float64{"x": 1}}, armed: true}
	col := &telemetry.Collector{}
	fw := chaosFramework(t, bad, WithHealth(h), WithObserver(col))

	res := fw.Step(outdoorSnap())
	if !res.OK {
		t.Fatal("surviving scheme should keep the epoch OK")
	}
	for _, sr := range res.Schemes {
		if sr.Name == "bad" && sr.Available {
			t.Fatal("panicked scheme must be unavailable")
		}
	}
	if got := h.SchemePanics.Value(); got != 1 {
		t.Fatalf("scheme_panics_total = %d, want 1", got)
	}
	traces := col.Traces()
	if len(traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(traces))
	}
	var sawPanicked bool
	for _, st := range traces[0].Schemes {
		if st.Scheme == "bad" && st.Panicked {
			sawPanicked = true
		}
	}
	if !sawPanicked {
		t.Fatal("trace should flag the panicked scheme")
	}

	// A scheme that recovers keeps participating the next epoch.
	bad.armed = false
	res = fw.Step(outdoorSnap())
	for _, sr := range res.Schemes {
		if sr.Name == "bad" && !sr.Available {
			t.Fatal("recovered scheme should be available again")
		}
	}
}

func TestSchemePanicRecoveredParallel(t *testing.T) {
	bad := &panicScheme{fakeScheme: fakeScheme{name: "bad", pos: geo.Pt(2, 2), ok: true, feats: map[string]float64{"x": 1}}, armed: true}
	fw := chaosFramework(t, bad, WithParallel(2))
	defer fw.Close()
	for i := 0; i < 10; i++ {
		res := fw.Step(outdoorSnap())
		if !res.OK {
			t.Fatalf("epoch %d: pool lost the surviving scheme", i)
		}
	}
}

func TestNaNEstimateQuarantined(t *testing.T) {
	for _, tc := range []struct {
		name string
		pos  geo.Point
		feat float64
	}{
		{"nan-pos", geo.Pt(math.NaN(), 3), 1},
		{"inf-pos", geo.Pt(3, math.Inf(1)), 1},
		{"nan-feature", geo.Pt(3, 3), math.NaN()}, // poisons PredErr via the model
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			h := NewHealth(reg)
			bad := &fakeScheme{name: "bad", pos: tc.pos, ok: true, feats: map[string]float64{"x": tc.feat}}
			fw := chaosFramework(t, bad, WithHealth(h))

			res := fw.Step(outdoorSnap())
			if !res.OK {
				t.Fatal("good scheme should keep the epoch OK")
			}
			for _, sr := range res.Schemes {
				if sr.Name == "bad" && sr.Available {
					t.Fatal("poisoned scheme must be quarantined")
				}
			}
			if !finitePt(res.Best) || !finitePt(res.BMA) {
				t.Fatalf("non-finite result escaped: best=%v bma=%v", res.Best, res.BMA)
			}
			if got := h.Quarantined.Value(); got != 1 {
				t.Fatalf("quarantined_estimates_total = %d, want 1", got)
			}
		})
	}
}

func TestAllSchemesDownFallsBackToLastGood(t *testing.T) {
	reg := telemetry.NewRegistry()
	h := NewHealth(reg)
	good := &fakeScheme{name: "good", pos: geo.Pt(5, 7), ok: true, feats: map[string]float64{"x": 1}}
	bad := &fakeScheme{name: "bad", pos: geo.Pt(2, 2), ok: true, feats: map[string]float64{"x": 1}}
	ms := NewModelSet()
	for _, env := range []EnvClass{EnvIndoor, EnvOutdoor} {
		ms.Put(modelFor("good", env, 2, 1))
		ms.Put(modelFor("bad", env, 2, 2))
	}
	fw, err := NewFramework([]schemes.Scheme{good, bad}, ms, WithHealth(h))
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(geo.Pt(0, 0))

	// Epoch 1: healthy; the framework records a last good estimate.
	res := fw.Step(outdoorSnap())
	if !res.OK {
		t.Fatal("healthy epoch should be OK")
	}
	lastGood := res.BMA

	// Epoch 2: everything dies.
	good.ok, bad.ok = false, false
	res = fw.Step(outdoorSnap())
	if res.OK {
		t.Fatal("epoch with no schemes must not claim OK")
	}
	if !res.Fallback {
		t.Fatal("fallback flag should be set")
	}
	if res.BMA != lastGood || res.Best != lastGood {
		t.Fatalf("fallback position %v, want last good %v", res.BMA, lastGood)
	}
	if got := h.Fallbacks.Value(); got != 1 {
		t.Fatalf("fallback_epochs_total = %d, want 1", got)
	}

	// Before any good epoch, Reset's start position is the fallback.
	fw.Reset(geo.Pt(9, 9))
	res = fw.Step(outdoorSnap())
	if res.OK || res.BMA != geo.Pt(9, 9) {
		t.Fatalf("fresh walk with no schemes should answer the start, got ok=%v pos=%v", res.OK, res.BMA)
	}
}

func TestApplyWeightsNonFiniteConfidences(t *testing.T) {
	mk := func(predErr, sigma float64) []SchemeResult {
		return []SchemeResult{
			{Name: "a", Pos: geo.Pt(1, 1), Available: true, PredErr: predErr, Sigma: sigma},
			{Name: "b", Pos: geo.Pt(3, 3), Available: true, PredErr: 2, Sigma: 1},
		}
	}
	for _, tc := range []struct {
		name           string
		predErr, sigma float64
		tau            float64
	}{
		{"nan-prederr", math.NaN(), 1, 2},
		{"inf-prederr", math.Inf(1), 1, 2},
		{"nan-sigma", 2, math.NaN(), 2},
		{"nan-tau", 2, 1, math.NaN()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rs := mk(tc.predErr, tc.sigma)
			ApplyWeights(rs, tc.tau, WeightPrecision, PruneFrac)
			for _, r := range rs {
				if math.IsNaN(r.Weight) || math.IsInf(r.Weight, 0) {
					t.Fatalf("non-finite weight for %s: %v", r.Name, r.Weight)
				}
			}
			if pos, ok := CombineBMA(rs); ok && !finitePt(pos) {
				t.Fatalf("BMA emitted non-finite position %v", pos)
			}
		})
	}

	// All-zero confidences (tau far below every prediction): weights
	// must fall back to uniform, never NaN.
	rs := mk(50, 0.1)
	rs[1].PredErr, rs[1].Sigma = 60, 0.1
	ApplyWeights(rs, 0.001, WeightPrecision, PruneFrac)
	pos, ok := CombineBMA(rs)
	if !ok || !finitePt(pos) {
		t.Fatalf("all-zero confidences: BMA = %v ok=%v, want finite uniform average", pos, ok)
	}
}
