package core

import (
	"context"
	"fmt"
	"runtime/pprof"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/iodetector"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/sharedcompute"
	"repro/internal/telemetry"
)

// StepResult is everything UniLoc computes for one sensing epoch.
type StepResult struct {
	Epoch int
	Env   EnvClass // IODetector's classification this epoch
	Tau   float64  // adaptive confidence threshold

	Schemes []SchemeResult // aligned with the framework's scheme list

	// Best is the UniLoc1 output: the position of the
	// highest-confidence scheme. BestIdx indexes Schemes (-1 if no
	// scheme was available).
	Best    geo.Point
	BestIdx int

	// BMA is the UniLoc2 output: the locally-weighted BMA position.
	BMA geo.Point

	// OK reports whether at least one scheme was available. When
	// false, Best and BMA may still carry the framework's last good
	// estimate (see Fallback) so consumers always have a finite
	// position to show — but it is dead reckoning of degree zero and
	// must not be mistaken for a fresh fix.
	OK bool

	// Fallback reports that no scheme survived this epoch and Best/BMA
	// were answered from the last good estimate.
	Fallback bool
}

// Option configures a Framework.
type Option func(*Framework)

// FrameworkFactory builds a fresh, independent Framework. Servers that
// host many users concurrently (internal/offload) call the factory
// once per session so that no particle-filter, IODetector, or
// gating state is shared between walks. Implementations must be safe
// for concurrent use; the frameworks they return need not be (each
// session drives its framework from a single goroutine).
type FrameworkFactory func() (*Framework, error)

// WithIODetector replaces the default indoor/outdoor detector.
func WithIODetector(d *iodetector.Detector) Option {
	return func(f *Framework) { f.iod = d }
}

// WithGPSGating enables or disables the GPS energy-gating decision
// (§IV-C). It defaults to enabled.
func WithGPSGating(on bool) Option {
	return func(f *Framework) { f.gpsGating = on }
}

// WithWeighting overrides the BMA weighting mode (ablations).
func WithWeighting(mode WeightMode) Option {
	return func(f *Framework) { f.weightMode = mode }
}

// WithPruneFrac overrides the confidence-pruning threshold (0 disables
// pruning; see PruneFrac).
func WithPruneFrac(frac float64) Option {
	return func(f *Framework) { f.pruneFrac = frac }
}

// WithObserver attaches a telemetry observer: Step emits one
// structured telemetry.EpochTrace per epoch — per-scheme estimate and
// error-prediction durations, environment classification, the gating
// decision, and the full self-assessment state (availability,
// predicted error, confidence, weight per scheme). A nil observer
// disables tracing; the untraced path takes no timestamps and
// allocates nothing extra (see BenchmarkFrameworkStep).
func WithObserver(o telemetry.Observer) Option {
	return func(f *Framework) { f.obs = o }
}

// WithPprofLabels enables runtime/pprof labels around each scheme's
// epoch work, so CPU and goroutine profiles of a busy server attribute
// samples to scheme names ("scheme" label; the offload layer adds
// session and batch-tick labels around the whole step). Off by
// default: label push/pop costs a few allocations per scheme per
// epoch, which would break the zero-alloc untraced path.
func WithPprofLabels(on bool) Option {
	return func(f *Framework) { f.pprofLabels = on }
}

// Framework is the UniLoc runtime: N schemes running in parallel, one
// error model per scheme per environment, confidence computation, and
// the two ensemble outputs.
type Framework struct {
	schemes []schemes.Scheme
	models  *ModelSet
	iod     *iodetector.Detector

	gpsGating   bool
	weightMode  WeightMode
	pruneFrac   float64
	lastPred    map[string]float64 // last predicted error per scheme, for gating
	lastEnv     EnvClass
	obs         telemetry.Observer // nil = tracing off
	health      *Health            // failure-containment counters; nil = uncounted
	pprofLabels bool               // wrap scheme work in pprof labels

	// lastGood is the most recent finite ensemble output, answered
	// (with OK=false) on epochs where every scheme failed. Reset seeds
	// it with the walk's start position, which is known by contract.
	lastGood    geo.Point
	hasLastGood bool

	stepWorkers int       // scheme-execution workers (<= 1: sequential)
	pool        *stepPool // lazily started persistent worker pool
}

// NewFramework builds a framework over the given schemes and trained
// models.
func NewFramework(ss []schemes.Scheme, models *ModelSet, opts ...Option) (*Framework, error) {
	if len(ss) == 0 {
		return nil, fmt.Errorf("core: framework needs at least one scheme")
	}
	if models == nil {
		return nil, fmt.Errorf("core: framework needs a model set")
	}
	f := &Framework{
		schemes:    ss,
		models:     models,
		iod:        iodetector.New(iodetector.DefaultConfig()),
		gpsGating:  true,
		weightMode: WeightPrecision,
		pruneFrac:  PruneFrac,
		lastPred:   make(map[string]float64),
		lastEnv:    EnvOutdoor,
	}
	for _, o := range opts {
		o(f)
	}
	return f, nil
}

// Schemes returns the framework's scheme list.
func (f *Framework) Schemes() []schemes.Scheme { return f.schemes }

// SetDistCache forwards a shared per-batch fingerprint-distance cache
// to every scheme that can consume one (schemes.DistCacheUser); nil
// clears it. The batch scheduler installs the cache before stepping a
// session and the framework is driven from one goroutine per session,
// so no synchronization beyond the scheduler's own happens-before edge
// is needed. Cache hits and misses produce identical floats, so this
// never changes a Step result — only the work done to compute it.
func (f *Framework) SetDistCache(c *fingerprint.DistCache) {
	for _, s := range f.schemes {
		if u, ok := s.(schemes.DistCacheUser); ok {
			u.SetDistCache(c)
		}
	}
}

// SetSharedCompute forwards the server's cross-session shared-compute
// cache to every scheme that can consume one
// (schemes.SharedComputeUser); nil restores private computation.
// Shared values are canonical and misses fall back to local compute of
// the same float sequence, so this never changes a Step result — only
// how many sessions pay for it. Must not be called concurrently with
// Step (the session manager attaches it before the first Reset).
func (f *Framework) SetSharedCompute(c *sharedcompute.Cache) {
	for _, s := range f.schemes {
		if u, ok := s.(schemes.SharedComputeUser); ok {
			u.SetSharedCompute(c)
		}
	}
}

// Models returns the framework's model set.
func (f *Framework) Models() *ModelSet { return f.models }

// SetObserver replaces the framework's telemetry observer after
// construction (nil disables tracing). The offload session manager
// uses this to attach per-session span bridges to factory-built
// frameworks. Must not be called concurrently with Step.
func (f *Framework) SetObserver(o telemetry.Observer) { f.obs = o }

// Observer returns the attached telemetry observer (nil = tracing
// off).
func (f *Framework) Observer() telemetry.Observer { return f.obs }

// SetPprofLabels reconfigures per-scheme pprof labeling after
// construction (see WithPprofLabels). Must not be called concurrently
// with Step.
func (f *Framework) SetPprofLabels(on bool) { f.pprofLabels = on }

// Reset prepares all schemes for a new walk starting near start. The
// configured IODetector is kept (its runtime state is cleared, its
// thresholds survive) — rebuilding it here would silently discard a
// detector installed via WithIODetector.
func (f *Framework) Reset(start geo.Point) {
	for _, s := range f.schemes {
		s.Reset(start)
	}
	f.iod.Reset()
	f.lastPred = make(map[string]float64)
	f.lastEnv = EnvOutdoor
	f.lastGood = start
	f.hasLastGood = true
}

// GPSWanted implements the GPS gating decision for the next epoch
// (§IV-C): GPS is off indoors; outdoors it is enabled only when its
// (sensor-free) predicted error β₀ is the smallest among the schemes'
// most recent predicted errors. With gating disabled it always returns
// true.
func (f *Framework) GPSWanted() bool {
	if !f.gpsGating {
		return true
	}
	if f.lastEnv == EnvIndoor {
		return false
	}
	gpsModel := f.models.Lookup(schemes.NameGPS, EnvOutdoor)
	if gpsModel == nil {
		return false
	}
	gpsErr, _ := gpsModel.Predict(nil)
	for name, pred := range f.lastPred {
		if name == schemes.NameGPS {
			continue
		}
		if pred < gpsErr {
			return false
		}
	}
	return true
}

// Step processes one sensing epoch through every scheme, predicts each
// scheme's error from its real-time features, computes confidences and
// both ensemble outputs. With an observer attached (WithObserver) it
// also emits one telemetry.EpochTrace; without one, the trace branches
// reduce to nil checks — no timestamps, no extra allocations.
func (f *Framework) Step(snap *sensing.Snapshot) StepResult {
	if f.obs == nil {
		return f.step(snap, nil)
	}
	tr := &telemetry.EpochTrace{
		Epoch:   snap.Epoch,
		Schemes: make([]telemetry.SchemeTrace, len(f.schemes)),
	}
	start := time.Now()
	tr.StartMono = start // anchor for span reconstruction
	res := f.step(snap, tr)
	tr.StepNS = time.Since(start).Nanoseconds()
	tr.Env = res.Env.String()
	tr.Tau = res.Tau
	tr.OK = res.OK
	tr.Fallback = res.Fallback
	if res.BestIdx >= 0 {
		tr.Best = res.Schemes[res.BestIdx].Name
	}
	// The gating decision the phone would act on next epoch (§IV-C).
	tr.GPSWanted = f.GPSWanted()
	for i, sr := range res.Schemes {
		st := &tr.Schemes[i]
		st.Scheme = sr.Name
		st.Available = sr.Available
		st.PredErr = sr.PredErr
		st.Sigma = sr.Sigma
		st.Conf = sr.Conf
		st.Weight = sr.Weight
		tr.PredictNS += st.PredictNS
	}
	f.obs.ObserveEpoch(tr)
	return res
}

// step is the shared epoch pipeline; tr is nil when tracing is off.
func (f *Framework) step(snap *sensing.Snapshot, tr *telemetry.EpochTrace) StepResult {
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
	}
	// Environment classification from the low-power sensors.
	env := EnvOutdoor
	switch f.iod.Update(snap.LightLux, snap.MagVarUT, snap.Cell) {
	case iodetector.Indoor:
		env = EnvIndoor
	case iodetector.Outdoor:
		env = EnvOutdoor
	default:
		env = f.lastEnv
	}
	f.lastEnv = env
	if tr != nil {
		tr.ClassifyNS = time.Since(t0).Nanoseconds()
	}

	res := StepResult{
		Epoch:   snap.Epoch,
		Env:     env,
		Schemes: make([]SchemeResult, len(f.schemes)),
		BestIdx: -1,
	}

	if f.stepWorkers > 1 {
		// Fan the schemes out to the persistent worker pool. Each
		// worker writes only its scheme's slot of res.Schemes (and of
		// tr.Schemes), so the result layout is identical to the
		// sequential loop; the gating-state updates below then replay
		// in canonical scheme order after the join.
		f.ensurePool().dispatch(snap, tr, res.Schemes)
	} else {
		for i := range f.schemes {
			f.runScheme(i, snap, tr, res.Schemes)
		}
	}
	for i, s := range f.schemes {
		if res.Schemes[i].Available {
			f.lastPred[s.Name()] = res.Schemes[i].PredErr
		} else {
			// A scheme that produced no estimate this epoch must not
			// keep its last prediction alive: a stale entry would bias
			// the GPSWanted comparison forever (e.g. WiFi leaves
			// coverage but its old 2 m prediction keeps GPS gated off).
			delete(f.lastPred, s.Name())
		}
	}

	if tr != nil {
		t0 = time.Now()
	}
	res.Tau = Tau(res.Schemes)
	ApplyWeights(res.Schemes, res.Tau, f.weightMode, f.pruneFrac)

	if idx, ok := SelectBest(res.Schemes); ok {
		res.BestIdx = idx
		res.Best = res.Schemes[idx].Pos
		res.OK = true
	}
	if bma, ok := CombineBMA(res.Schemes); ok && finitePt(bma) {
		res.BMA = bma
	} else if res.OK {
		res.BMA = res.Best
	}
	// Defense in depth: quarantine upstream keeps non-finite positions
	// out of the ensemble, but a combination bug must still never
	// escape as a NaN Result.
	if res.OK && !finitePt(res.Best) {
		res.OK = false
		res.BestIdx = -1
	}
	if res.OK {
		f.lastGood = res.BMA
		f.hasLastGood = true
	} else if f.hasLastGood {
		// Graceful degradation: every scheme failed (outage, panic,
		// quarantine). Answer the last good position with OK=false so
		// consumers degrade to "stale but finite" instead of NaN.
		res.Best = f.lastGood
		res.BMA = f.lastGood
		res.Fallback = true
		f.health.fellBack()
	}
	if tr != nil {
		tr.CombineNS = time.Since(t0).Nanoseconds()
	}
	return res
}

// runScheme executes one scheme's epoch work — Estimate plus the error
// prediction from its real-time features — and writes the result into
// out[i] (and its timings into tr.Schemes[i] when tracing). It touches
// no cross-scheme state, so the worker pool may run any subset of
// schemes concurrently; gating-state (lastPred) updates stay with the
// caller.
func (f *Framework) runScheme(i int, snap *sensing.Snapshot, tr *telemetry.EpochTrace, out []SchemeResult) {
	if f.pprofLabels {
		// Label push/pop allocates, so this wrapper only exists when the
		// operator asked for labeled profiles (WithPprofLabels).
		pprof.Do(context.Background(), pprof.Labels("scheme", f.schemes[i].Name()),
			func(context.Context) { f.schemeEpoch(i, snap, tr, out) })
		return
	}
	f.schemeEpoch(i, snap, tr, out)
}

// schemeEpoch is runScheme's body, shared by the labeled and plain
// paths.
func (f *Framework) schemeEpoch(i int, snap *sensing.Snapshot, tr *telemetry.EpochTrace, out []SchemeResult) {
	s := f.schemes[i]
	// A panicking scheme becomes an unavailable scheme — never a dead
	// worker goroutine or a torn-down walk. The recover must live here,
	// inside the unit of work, so the parallel pool's workers are
	// covered identically to the sequential loop.
	defer func() {
		if r := recover(); r != nil {
			out[i] = SchemeResult{Name: s.Name()}
			f.health.panicRecovered()
			if tr != nil {
				tr.Schemes[i].Panicked = true
			}
		}
	}()
	var t0 time.Time
	if tr != nil {
		t0 = time.Now()
		if !tr.StartMono.IsZero() {
			// Offset from the step start, so the span tracer can place
			// this scheme's execution on the epoch timeline (parallel
			// schemes genuinely overlap; the offsets show it).
			tr.Schemes[i].StartNS = t0.Sub(tr.StartMono).Nanoseconds()
		}
	}
	est := s.Estimate(snap)
	if tr != nil {
		tr.Schemes[i].EstimateNS = time.Since(t0).Nanoseconds()
	}
	sr := SchemeResult{Name: s.Name(), Pos: est.Pos, Available: est.OK}
	if est.OK {
		if tr != nil {
			t0 = time.Now()
		}
		if m := f.models.Lookup(s.Name(), f.lastEnv); m != nil {
			sr.PredErr, sr.Sigma = m.Predict(est.Features)
		} else {
			// No model: neutral prediction so the scheme still
			// participates rather than silently vanishing.
			sr.PredErr, sr.Sigma = 10, 5
		}
		if tr != nil {
			tr.Schemes[i].PredictNS = time.Since(t0).Nanoseconds()
		}
	}
	if sr.Available && !usable(&sr) {
		// Quarantine: a NaN/Inf position or error prediction entering
		// τ or the weight normalization would poison every scheme's
		// weight, not just this one's. Discard the estimate and treat
		// the scheme as unavailable for the epoch.
		sr = SchemeResult{Name: sr.Name}
		f.health.quarantined()
		if tr != nil {
			tr.Schemes[i].Quarantined = true
		}
	}
	out[i] = sr
}
