package core

import (
	"math"
	"testing"

	"repro/internal/schemes"
)

// addSamples fills a trainer with synthetic samples whose error is
// 2·x plus noise-free structure, for two schemes in one environment.
func addSamples(tr *Trainer, scheme string, env EnvClass, n int, slope float64) {
	for i := 0; i < n; i++ {
		x := float64(i%20) + 1
		tr.Add(Sample{
			Scheme:   scheme,
			Env:      env,
			Features: map[string]float64{"x": x},
			Err:      slope * x,
		})
	}
}

func TestTrainerFit(t *testing.T) {
	tr := &Trainer{}
	addSamples(tr, "s", EnvIndoor, 100, 2)
	addSamples(tr, "s", EnvOutdoor, 100, 0.5)
	s := &fakeScheme{name: "s"}
	set, err := tr.Fit([]schemes.Scheme{s})
	if err != nil {
		t.Fatal(err)
	}
	in := set.Get("s", EnvIndoor)
	if in == nil {
		t.Fatal("indoor model missing")
	}
	if math.Abs(in.Reg.Beta[0]-2) > 1e-6 {
		t.Errorf("indoor beta = %v", in.Reg.Beta[0])
	}
	out := set.Get("s", EnvOutdoor)
	if math.Abs(out.Reg.Beta[0]-0.5) > 1e-6 {
		t.Errorf("outdoor beta = %v", out.Reg.Beta[0])
	}
	mu, _ := in.Predict(map[string]float64{"x": 5})
	if math.Abs(mu-10) > 1e-6 {
		t.Errorf("Predict = %v", mu)
	}
}

func TestTrainerSkipsSparseEnvironments(t *testing.T) {
	tr := &Trainer{}
	addSamples(tr, "s", EnvIndoor, 100, 2)
	addSamples(tr, "s", EnvOutdoor, 3, 1) // too few
	set, err := tr.Fit([]schemes.Scheme{&fakeScheme{name: "s"}})
	if err != nil {
		t.Fatal(err)
	}
	if set.Get("s", EnvOutdoor) != nil {
		t.Error("sparse environment should be skipped")
	}
	if set.Get("s", EnvIndoor) == nil {
		t.Error("dense environment should be fitted")
	}
}

func TestTrainerFitNoData(t *testing.T) {
	tr := &Trainer{}
	if _, err := tr.Fit([]schemes.Scheme{&fakeScheme{name: "s"}}); err == nil {
		t.Error("no samples should fail")
	}
}

func TestSampleCount(t *testing.T) {
	tr := &Trainer{}
	addSamples(tr, "s", EnvIndoor, 7, 1)
	if tr.SampleCount("s", EnvIndoor) != 7 || tr.SampleCount("s", EnvOutdoor) != 0 {
		t.Error("SampleCount wrong")
	}
}

func TestGlobalWeights(t *testing.T) {
	tr := &Trainer{}
	// Scheme a: mean error 2; scheme b: mean error 8.
	for i := 0; i < 50; i++ {
		tr.Add(Sample{Scheme: "a", Env: EnvIndoor, Err: 2})
		tr.Add(Sample{Scheme: "b", Env: EnvIndoor, Err: 8})
	}
	w := tr.GlobalWeights()
	wa, wb := w[EnvIndoor]["a"], w[EnvIndoor]["b"]
	if math.Abs(wa+wb-1) > 1e-9 {
		t.Errorf("weights sum = %v", wa+wb)
	}
	if math.Abs(wa/wb-4) > 1e-6 {
		t.Errorf("weight ratio = %v, want 4 (inverse error)", wa/wb)
	}
}

func TestALocProfileFromTrainer(t *testing.T) {
	tr := &Trainer{}
	for i := 0; i < 30; i++ {
		tr.Add(Sample{Scheme: "cheap", Env: EnvIndoor, Err: 4})
		tr.Add(Sample{Scheme: "pricey", Env: EnvIndoor, Err: 2})
	}
	p := tr.ALoc(map[string]float64{"cheap": 10, "pricey": 100}, 5)
	if p.MeanErr[EnvIndoor]["cheap"] != 4 {
		t.Errorf("mean err = %v", p.MeanErr[EnvIndoor]["cheap"])
	}
	if p.AccuracyReqM != 5 {
		t.Error("requirement not stored")
	}
}
