package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/schemes"
	"repro/internal/stat"
	"repro/internal/walker"
	"repro/internal/world"
)

// Sample is one training tuple: a scheme's real-time data features and
// its measured localization error at a surveyed location (§III-A,
// step 1). During training the surveyor knows the ground truth, so the
// environment class comes from the world, not from IODetector.
type Sample struct {
	Scheme   string
	Env      EnvClass
	Features map[string]float64
	Err      float64
}

// Trainer accumulates training samples across walks and fits the error
// models (§III-A, step 2). The paper's data collection treats every
// scheme as a black box and records all schemes simultaneously; so
// does CollectWalk.
type Trainer struct {
	samples []Sample
}

// Samples returns the accumulated samples (shared slice; callers must
// not mutate).
func (t *Trainer) Samples() []Sample { return t.samples }

// Add appends a sample directly (used by tests and by error-model
// validation).
func (t *Trainer) Add(s Sample) { t.samples = append(t.samples, s) }

// SampleCount returns the number of samples for a (scheme, env).
func (t *Trainer) SampleCount(scheme string, env EnvClass) int {
	n := 0
	for _, s := range t.samples {
		if s.Scheme == scheme && s.Env == env {
			n++
		}
	}
	return n
}

// CollectWalk runs all schemes along one walk in world w and records a
// sample per scheme per epoch. GPS is always powered during training.
func (t *Trainer) CollectWalk(w *world.World, ss []schemes.Scheme, path geo.Polyline, cfg walker.Config, rnd *rand.Rand) {
	start, _ := path.At(0)
	for _, s := range ss {
		s.Reset(start)
	}
	wk := walker.New(w, path, cfg, rnd)
	for !wk.Done() {
		snap, truth := wk.Next(true)
		env := EnvOutdoor
		if w.Indoor(truth) {
			env = EnvIndoor
		}
		for _, s := range ss {
			est := s.Estimate(snap)
			if !est.OK {
				continue
			}
			t.samples = append(t.samples, Sample{
				Scheme:   s.Name(),
				Env:      env,
				Features: est.Features,
				Err:      est.Pos.Dist(truth),
			})
		}
	}
}

// Fit fits one error model per (scheme, environment) with enough
// samples and returns the model set. Schemes with an empty regression
// feature list (GPS) get an intercept-only model; all others are
// fitted through the origin, as in the paper ("the intercept term β₀
// is zero for all schemes, since the localization error is zero if
// all coefficients are zero").
func (t *Trainer) Fit(ss []schemes.Scheme) (*ModelSet, error) {
	set := NewModelSet()
	for _, s := range ss {
		feats := s.RegressionFeatures()
		for _, env := range []EnvClass{EnvIndoor, EnvOutdoor} {
			var x [][]float64
			var y []float64
			for _, smp := range t.samples {
				if smp.Scheme != s.Name() || smp.Env != env {
					continue
				}
				row := make([]float64, len(feats))
				for i, name := range feats {
					row[i] = smp.Features[name]
				}
				x = append(x, row)
				y = append(y, smp.Err)
			}
			minRows := len(feats) + 5
			if len(feats) == 0 {
				minRows = 6
			}
			if len(x) < minRows {
				continue
			}
			intercept := len(feats) == 0
			reg, err := fitRobust(x, y, feats, intercept)
			if err != nil {
				return nil, fmt.Errorf("core: fitting %s/%s: %w", s.Name(), env, err)
			}
			set.Put(&ErrorModel{Scheme: s.Name(), Env: env, Features: feats, Reg: reg})
		}
	}
	if len(set.models) == 0 {
		return nil, fmt.Errorf("core: no models could be fitted from %d samples", len(t.samples))
	}
	return set, nil
}

// GlobalWeights derives the fixed per-environment scheme weights the
// global-weight BMA baseline uses: proportional to inverse mean
// training error (prior work assigns one weight per scheme for an
// entire place).
func (t *Trainer) GlobalWeights() map[EnvClass]map[string]float64 {
	sums := make(map[EnvClass]map[string][]float64)
	for _, s := range t.samples {
		if sums[s.Env] == nil {
			sums[s.Env] = make(map[string][]float64)
		}
		sums[s.Env][s.Scheme] = append(sums[s.Env][s.Scheme], s.Err)
	}
	out := make(map[EnvClass]map[string]float64, len(sums))
	for env, m := range sums {
		out[env] = make(map[string]float64, len(m))
		// Deterministic summation order (map iteration would perturb
		// the floating-point total across process runs).
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		var total float64
		for _, name := range names {
			me := stat.Mean(m[name])
			if me < 0.2 {
				me = 0.2
			}
			out[env][name] = 1 / me
			total += 1 / me
		}
		for _, name := range names {
			out[env][name] /= total
		}
	}
	return out
}

// ALoc derives the A-Loc baseline's offline error records from the
// training samples.
func (t *Trainer) ALoc(costMW map[string]float64, accuracyReqM float64) *ALocProfile {
	errs := make(map[EnvClass]map[string][]float64)
	for _, s := range t.samples {
		if errs[s.Env] == nil {
			errs[s.Env] = make(map[string][]float64)
		}
		errs[s.Env][s.Scheme] = append(errs[s.Env][s.Scheme], s.Err)
	}
	mean := make(map[EnvClass]map[string]float64, len(errs))
	for env, m := range errs {
		mean[env] = make(map[string]float64, len(m))
		for name, es := range m {
			mean[env][name] = stat.Mean(es)
		}
	}
	return &ALocProfile{MeanErr: mean, CostMW: costMW, AccuracyReqM: accuracyReqM}
}
