package core

import (
	"math"

	"repro/internal/geo"
	"repro/internal/telemetry"
)

// Health bundles the framework's failure-containment instruments:
// panics recovered from schemes, estimates quarantined for non-finite
// output, and epochs answered from the last good estimate because no
// scheme survived. All instruments are nil-safe, and a nil *Health is
// itself a no-op, so the happy path pays only nil checks.
type Health struct {
	// SchemePanics counts panics recovered from Scheme.Estimate or the
	// error-model prediction; each one turns into Available=false for
	// that scheme and epoch.
	SchemePanics *telemetry.Counter

	// Quarantined counts scheme results discarded before weight
	// normalization because their position, predicted error, or sigma
	// was NaN/Inf (or sigma negative).
	Quarantined *telemetry.Counter

	// Fallbacks counts epochs where no scheme was available and the
	// framework answered with the last good estimate (Result.OK=false).
	Fallbacks *telemetry.Counter
}

// NewHealth registers the failure-containment counters on reg. A nil
// registry yields a Health whose instruments are all no-ops — still
// usable, never observable.
func NewHealth(reg *telemetry.Registry) *Health {
	return &Health{
		SchemePanics: reg.Counter("scheme_panics_total", "panics recovered from a localization scheme (scheme marked unavailable for the epoch)"),
		Quarantined:  reg.Counter("quarantined_estimates_total", "scheme estimates discarded for NaN/Inf position or error prediction before weighting"),
		Fallbacks:    reg.Counter("fallback_epochs_total", "epochs answered from the last good estimate because no scheme was available"),
	}
}

// WithHealth attaches failure-containment instrumentation to a
// framework. Frameworks without one still recover panics and
// quarantine non-finite estimates — the counters are observation, not
// the defense.
func WithHealth(h *Health) Option {
	return func(f *Framework) { f.health = h }
}

// SetHealth attaches health instrumentation after construction (the
// offload session manager applies the server's registry to
// factory-built frameworks). Must not be called concurrently with
// Step.
func (f *Framework) SetHealth(h *Health) { f.health = h }

// nil-safe increment helpers.
func (h *Health) panicRecovered() {
	if h != nil {
		h.SchemePanics.Inc()
	}
}

func (h *Health) quarantined() {
	if h != nil {
		h.Quarantined.Inc()
	}
}

func (h *Health) fellBack() {
	if h != nil {
		h.Fallbacks.Inc()
	}
}

// finite reports whether v is neither NaN nor ±Inf.
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// finitePt reports whether both coordinates are finite.
func finitePt(p geo.Point) bool { return finite(p.X) && finite(p.Y) }

// usable reports whether an available scheme result is safe to feed
// into τ, weighting, and BMA: finite position, finite predicted error,
// and a finite non-negative sigma. Everything else is quarantined.
func usable(sr *SchemeResult) bool {
	return finitePt(sr.Pos) && finite(sr.PredErr) && finite(sr.Sigma) && sr.Sigma >= 0
}
