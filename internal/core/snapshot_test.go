package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/imu"
	"repro/internal/noise"
	"repro/internal/prng"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/world"
)

// snapshotWorld builds a corridor world with real stateful schemes —
// WiFi fingerprinting (HMM tracker), PDR and fusion (particle filters
// over tracked RNG streams) — the full mutable surface Snapshot must
// capture.
func snapshotWorld(t testing.TB) (FrameworkFactory, *world.World) {
	t.Helper()
	w := &world.World{
		Name:  "snapshot",
		Noise: noise.Field{Seed: 8},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "hall", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 4), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2, CorridorWidth: 2.5},
		},
		APs: []world.Site{
			{ID: "a0", Pos: geo.Pt(5, 3), TxPowerDBm: 16},
			{ID: "a1", Pos: geo.Pt(20, 1), TxPowerDBm: 16},
			{ID: "a2", Pos: geo.Pt(35, 3), TxPowerDBm: 16},
		},
	}
	db := fingerprint.Survey(w, rf.WiFiModel(), w.APs, 3, rand.New(rand.NewSource(1)))
	ms := NewModelSet()
	for _, name := range []string{schemes.NameWiFi, schemes.NameMotion, schemes.NameFusion} {
		for _, env := range []EnvClass{EnvIndoor, EnvOutdoor} {
			ms.Put(&ErrorModel{
				Scheme: name, Env: env, Features: nil,
				Reg: &regress.Result{HasIntercept: true, Intercept: 3, ResidStd: 2},
			})
		}
	}
	factory := func() (*Framework, error) {
		pdrSrc := prng.New(2)
		pdr := schemes.NewPDR(w, schemes.DefaultPDRConfig(), rand.New(pdrSrc))
		pdr.TrackSource(pdrSrc)
		fusionSrc := prng.New(3)
		fusion := schemes.NewFusion(w, db, schemes.DefaultFusionConfig(), rand.New(fusionSrc))
		fusion.TrackSource(fusionSrc)
		ss := []schemes.Scheme{
			schemes.NewWiFi(db),
			pdr,
			fusion,
		}
		return NewFramework(ss, ms)
	}
	return factory, w
}

func snapshotWalk(w *world.World, epochs int) (geo.Point, []*sensing.Snapshot) {
	rnd := rand.New(rand.NewSource(40))
	model := rf.WiFiModel()
	start := geo.Pt(2, 1)
	pos := start
	snaps := make([]*sensing.Snapshot, 0, epochs)
	for i := 0; i < epochs; i++ {
		pos = pos.Add(geo.Pt(0.7, 0))
		snaps = append(snaps, &sensing.Snapshot{
			Epoch:    i,
			WiFi:     model.Scan(w, w.APs, pos, rf.Reference(), rnd),
			Step:     &imu.StepEvent{LengthM: 0.7, HeadingR: 0, PeriodS: 0.5},
			LightLux: 300,
			MagVarUT: 2.2,
		})
	}
	return start, snaps
}

func sameStep(a, b StepResult) bool {
	return math.Float64bits(a.Best.X) == math.Float64bits(b.Best.X) &&
		math.Float64bits(a.Best.Y) == math.Float64bits(b.Best.Y) &&
		math.Float64bits(a.BMA.X) == math.Float64bits(b.BMA.X) &&
		math.Float64bits(a.BMA.Y) == math.Float64bits(b.BMA.Y) &&
		a.OK == b.OK && a.BestIdx == b.BestIdx && a.Env == b.Env
}

// TestSnapshotRestoreBitIdentical is the foundation of cross-node
// session migration: a walk snapshotted mid-stream and restored into
// a fresh framework (same factory — a different node's session) must
// produce Float64bits-equal ensemble outputs to the uninterrupted
// walk, and taking the snapshot must not perturb the origin.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	factory, w := snapshotWorld(t)
	start, snaps := snapshotWalk(w, 24)
	const cut = 9 // mid-walk, after the trackers and filters carry real state

	ref, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	ref.Reset(start)
	want := make([]StepResult, len(snaps))
	for i, snap := range snaps {
		want[i] = ref.Step(snap)
	}

	origin, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	origin.Reset(start)
	for i := 0; i < cut; i++ {
		if got := origin.Step(snaps[i]); !sameStep(got, want[i]) {
			t.Fatalf("pre-cut epoch %d diverged before any snapshot", i)
		}
	}
	blob, err := origin.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	// The origin keeps walking, unperturbed by the snapshot.
	migrated, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	if err := migrated.Restore(blob); err != nil {
		t.Fatal(err)
	}
	for i := cut; i < len(snaps); i++ {
		if got := origin.Step(snaps[i]); !sameStep(got, want[i]) {
			t.Errorf("origin epoch %d diverged after snapshot was taken", i)
		}
		if got := migrated.Step(snaps[i]); !sameStep(got, want[i]) {
			t.Errorf("migrated epoch %d diverged from uninterrupted walk: got (%v,%v) want (%v,%v)",
				i, got.BMA.X, got.BMA.Y, want[i].BMA.X, want[i].BMA.Y)
		}
	}
}

// TestSnapshotRoundTripsRepeatedly pins that Snapshot→Restore can
// chain every epoch (the per-epoch shipping pattern) without drift.
func TestSnapshotRoundTripsRepeatedly(t *testing.T) {
	factory, w := snapshotWorld(t)
	start, snaps := snapshotWalk(w, 12)

	ref, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	ref.Reset(start)

	cur, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	cur.Reset(start)
	for i, snap := range snaps {
		want := ref.Step(snap)
		got := cur.Step(snap)
		if !sameStep(got, want) {
			t.Fatalf("epoch %d diverged under per-epoch migration", i)
		}
		blob, err := cur.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		next, err := factory()
		if err != nil {
			t.Fatal(err)
		}
		if err := next.Restore(blob); err != nil {
			t.Fatal(err)
		}
		cur = next
	}
}

// TestRestoreRejectsMismatchedSchemes pins the safety rail: a blob
// from a different scheme lineup must be rejected, not half-applied.
func TestRestoreRejectsMismatchedSchemes(t *testing.T) {
	factory, w := snapshotWorld(t)
	start, _ := snapshotWalk(w, 1)
	fw, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(start)
	blob, err := fw.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	other, err := NewFramework([]schemes.Scheme{&fakeScheme{name: "other", ok: true, pos: geo.Pt(1, 1)}}, NewModelSet())
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Restore(blob); err == nil {
		t.Fatal("restore of mismatched scheme list must fail")
	}
}
