package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geo"
)

func results3() []SchemeResult {
	return []SchemeResult{
		{Name: "good", Pos: geo.Pt(0, 0), Available: true, PredErr: 2, Sigma: 1},
		{Name: "mid", Pos: geo.Pt(10, 0), Available: true, PredErr: 6, Sigma: 2},
		{Name: "bad", Pos: geo.Pt(50, 0), Available: true, PredErr: 20, Sigma: 5},
	}
}

func TestTau(t *testing.T) {
	rs := results3()
	if got := Tau(rs); math.Abs(got-28.0/3) > 1e-9 {
		t.Errorf("Tau = %v", got)
	}
	rs[2].Available = false
	if got := Tau(rs); math.Abs(got-4) > 1e-9 {
		t.Errorf("Tau w/o bad = %v", got)
	}
	if Tau(nil) != 0 {
		t.Error("empty Tau should be 0")
	}
}

func TestConfidenceOrdering(t *testing.T) {
	tau := 9.3
	cGood := Confidence(2, 1, tau)
	cMid := Confidence(6, 2, tau)
	cBad := Confidence(20, 5, tau)
	if !(cGood > cMid && cMid > cBad) {
		t.Errorf("confidence ordering violated: %v %v %v", cGood, cMid, cBad)
	}
	if cGood <= 0.99 {
		t.Errorf("far-below-τ confidence = %v", cGood)
	}
	if cBad >= 0.05 {
		t.Errorf("far-above-τ confidence = %v", cBad)
	}
}

func TestApplyConfidencesWeightsSumToOne(t *testing.T) {
	rs := results3()
	ApplyConfidences(rs, Tau(rs))
	var sum float64
	for _, r := range rs {
		if r.Weight < 0 {
			t.Errorf("negative weight for %s", r.Name)
		}
		sum += r.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum = %v", sum)
	}
}

func TestApplyConfidencesUnavailableExcluded(t *testing.T) {
	rs := results3()
	rs[0].Available = false
	ApplyConfidences(rs, Tau(rs))
	if rs[0].Conf != 0 || rs[0].Weight != 0 {
		t.Error("unavailable scheme must have zero confidence and weight")
	}
}

func TestPruningDropsLowConfidence(t *testing.T) {
	rs := results3()
	ApplyConfidences(rs, Tau(rs))
	if rs[2].Weight != 0 {
		t.Errorf("bad scheme should be pruned, weight = %v", rs[2].Weight)
	}
	// Without pruning it keeps a small weight.
	rs2 := results3()
	ApplyWeights(rs2, Tau(rs2), WeightPrecision, 0)
	if rs2[2].Weight <= 0 {
		t.Error("no-prune should keep the bad scheme")
	}
}

func TestWeightModes(t *testing.T) {
	rs := results3()
	ApplyWeights(rs, Tau(rs), WeightUniform, 0)
	for _, r := range rs {
		if math.Abs(r.Weight-1.0/3) > 1e-9 {
			t.Errorf("uniform weight = %v", r.Weight)
		}
	}
	rs2 := results3()
	ApplyWeights(rs2, Tau(rs2), WeightConfOnly, 0)
	if !(rs2[0].Weight > rs2[1].Weight && rs2[1].Weight > rs2[2].Weight) {
		t.Error("confidence-only ordering violated")
	}
	rs3 := results3()
	ApplyWeights(rs3, Tau(rs3), WeightPrecision, 0)
	// Precision weighting concentrates harder than confidence-only.
	if rs3[0].Weight <= rs2[0].Weight {
		t.Errorf("precision %v should concentrate beyond confidence %v", rs3[0].Weight, rs2[0].Weight)
	}
}

func TestWeightModeString(t *testing.T) {
	if WeightPrecision.String() != "precision" || WeightConfOnly.String() != "confidence" ||
		WeightUniform.String() != "uniform" || WeightMode(9).String() != "unknown" {
		t.Error("WeightMode strings wrong")
	}
}

func TestAllZeroConfidenceFallsBackToUniform(t *testing.T) {
	rs := []SchemeResult{
		{Name: "a", Available: true, PredErr: 100, Sigma: 0.1, Pos: geo.Pt(1, 1)},
		{Name: "b", Available: true, PredErr: 100, Sigma: 0.1, Pos: geo.Pt(3, 3)},
	}
	// τ far below both predictions → both confidences ~0.
	ApplyConfidences(rs, 1)
	var sum float64
	for _, r := range rs {
		sum += r.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fallback weights sum = %v", sum)
	}
}

func TestSelectBest(t *testing.T) {
	rs := results3()
	ApplyConfidences(rs, Tau(rs))
	idx, ok := SelectBest(rs)
	if !ok || rs[idx].Name != "good" {
		t.Errorf("SelectBest = %d", idx)
	}
	// Nothing available.
	none := results3()
	for i := range none {
		none[i].Available = false
	}
	if _, ok := SelectBest(none); ok {
		t.Error("SelectBest with nothing available should fail")
	}
}

func TestSelectBestDeterministicTieBreak(t *testing.T) {
	rs := []SchemeResult{
		{Name: "b", Available: true, Conf: 0.5, PredErr: 3},
		{Name: "a", Available: true, Conf: 0.5, PredErr: 3},
	}
	idx, ok := SelectBest(rs)
	if !ok || rs[idx].Name != "a" {
		t.Error("tie should break by name")
	}
	rs2 := []SchemeResult{
		{Name: "a", Available: true, Conf: 0.5, PredErr: 5},
		{Name: "b", Available: true, Conf: 0.5, PredErr: 3},
	}
	idx, _ = SelectBest(rs2)
	if rs2[idx].Name != "b" {
		t.Error("equal confidence should prefer lower predicted error")
	}
}

func TestCombineBMA(t *testing.T) {
	rs := []SchemeResult{
		{Name: "a", Pos: geo.Pt(0, 0), Available: true, Weight: 0.75},
		{Name: "b", Pos: geo.Pt(4, 8), Available: true, Weight: 0.25},
	}
	got, ok := CombineBMA(rs)
	if !ok || got.Dist(geo.Pt(1, 2)) > 1e-9 {
		t.Errorf("BMA = %v", got)
	}
	if _, ok := CombineBMA(nil); ok {
		t.Error("empty BMA should fail")
	}
}

func TestCombineBMAConvexHullProperty(t *testing.T) {
	f := func(w1, w2, w3 float64) bool {
		// Positive, bounded weights (arbitrary magnitudes overflow the
		// sum without saying anything about the combiner).
		clamp := func(v float64) float64 { return math.Mod(math.Abs(v), 100) + 0.01 }
		w1, w2, w3 = clamp(w1), clamp(w2), clamp(w3)
		rs := []SchemeResult{
			{Pos: geo.Pt(0, 0), Available: true, Weight: w1},
			{Pos: geo.Pt(10, 0), Available: true, Weight: w2},
			{Pos: geo.Pt(0, 10), Available: true, Weight: w3},
		}
		p, ok := CombineBMA(rs)
		if !ok {
			return false
		}
		// Inside the triangle's bounding box.
		return p.X >= -1e-9 && p.X <= 10+1e-9 && p.Y >= -1e-9 && p.Y <= 10+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCombineFixed(t *testing.T) {
	rs := []SchemeResult{
		{Name: "a", Pos: geo.Pt(0, 0), Available: true},
		{Name: "b", Pos: geo.Pt(10, 10), Available: true},
		{Name: "c", Pos: geo.Pt(99, 99), Available: false},
	}
	w := map[string]float64{"a": 1, "b": 3, "c": 100}
	got, ok := CombineFixed(rs, w)
	if !ok || got.Dist(geo.Pt(7.5, 7.5)) > 1e-9 {
		t.Errorf("CombineFixed = %v", got)
	}
	if _, ok := CombineFixed(rs, map[string]float64{}); ok {
		t.Error("no weights should fail")
	}
}

func TestALocSelect(t *testing.T) {
	profile := &ALocProfile{
		MeanErr: map[EnvClass]map[string]float64{
			EnvIndoor: {"cheap": 4, "pricey": 2},
		},
		CostMW:       map[string]float64{"cheap": 10, "pricey": 100},
		AccuracyReqM: 5,
	}
	rs := []SchemeResult{
		{Name: "pricey", Available: true},
		{Name: "cheap", Available: true},
	}
	idx, ok := profile.Select(rs, EnvIndoor)
	if !ok || rs[idx].Name != "cheap" {
		t.Error("A-Loc should pick the cheapest meeting the requirement")
	}
	// Requirement unmeetable → most accurate.
	profile.AccuracyReqM = 1
	idx, ok = profile.Select(rs, EnvIndoor)
	if !ok || rs[idx].Name != "pricey" {
		t.Error("A-Loc should fall back to the most accurate")
	}
	// Nothing available.
	for i := range rs {
		rs[i].Available = false
	}
	if _, ok := profile.Select(rs, EnvIndoor); ok {
		t.Error("nothing available should fail")
	}
}
