package core

import (
	"errors"

	"repro/internal/regress"
)

// fitRobust fits OLS and falls back to a lightly ridge-regularized fit
// when the design matrix is singular (a feature that happens to be
// constant over the training place makes XᵀX rank-deficient without an
// intercept).
func fitRobust(x [][]float64, y []float64, names []string, intercept bool) (*regress.Result, error) {
	reg, err := regress.Fit(x, y, names, intercept)
	if err == nil {
		return reg, nil
	}
	if errors.Is(err, regress.ErrInsufficientData) {
		return nil, err
	}
	return regress.FitRidge(x, y, names, intercept, 1e-3)
}
