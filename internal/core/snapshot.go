package core

import (
	"fmt"
	"sort"

	"repro/internal/geo"
	"repro/internal/iodetector"
	"repro/internal/schemes"
	"repro/internal/statecodec"
)

// snapshotVersion is the framework state blob's format version.
// Decoders reject other versions outright: a session state is shipped
// between nodes of one cluster, and mixed-build clusters must fail
// loudly rather than misinterpret bits.
const snapshotVersion byte = 1

// Snapshot serializes the framework's complete mutable walk state —
// environment classification, gating memory, last-good fallback, the
// IODetector's hysteresis, and every scheme's state blob — into a
// versioned binary buffer. Restoring the buffer into a framework
// built by the same factory continues the walk bit-identically to an
// uninterrupted run (the contract the cross-node resume tests prove).
//
// Must be called from the goroutine driving Step (it reads the same
// state Step mutates); the offload layer calls it at epoch
// boundaries.
func (f *Framework) Snapshot() ([]byte, error) {
	dst := []byte{snapshotVersion}
	dst = statecodec.AppendU8(dst, byte(f.lastEnv))
	dst = statecodec.AppendF64(dst, f.lastGood.X)
	dst = statecodec.AppendF64(dst, f.lastGood.Y)
	dst = statecodec.AppendBool(dst, f.hasLastGood)

	m := f.iod.Export()
	dst = statecodec.AppendU8(dst, byte(m.State))
	dst = statecodec.AppendU8(dst, byte(m.PendingState))
	dst = statecodec.AppendU32(dst, uint32(m.PendingVotes))
	dst = statecodec.AppendF64(dst, m.CellBaseline)
	dst = statecodec.AppendBool(dst, m.HaveBaseline)

	// lastPred in sorted key order so identical state always encodes
	// to identical bytes (map iteration order must not leak in).
	names := make([]string, 0, len(f.lastPred))
	for n := range f.lastPred {
		names = append(names, n)
	}
	sort.Strings(names)
	dst = statecodec.AppendU32(dst, uint32(len(names)))
	for _, n := range names {
		dst = statecodec.AppendString(dst, n)
		dst = statecodec.AppendF64(dst, f.lastPred[n])
	}

	dst = statecodec.AppendU32(dst, uint32(len(f.schemes)))
	for _, s := range f.schemes {
		dst = statecodec.AppendString(dst, s.Name())
		if sc, ok := s.(schemes.StateCodec); ok {
			blob, err := sc.AppendState(nil)
			if err != nil {
				return nil, fmt.Errorf("core: snapshot scheme %s: %w", s.Name(), err)
			}
			dst = statecodec.AppendBytes(dst, blob)
		} else {
			// Stateless by contract (e.g. GPS): empty blob.
			dst = statecodec.AppendBytes(dst, nil)
		}
	}
	return dst, nil
}

// Restore installs a Snapshot into this framework. The framework must
// have been built by the same factory as the snapshot's origin (same
// scheme list, same models, same configuration); scheme-list
// mismatches are rejected. Restore first Resets the framework to a
// defined state — filters exist, trackers are built — then overwrites
// that state, including every tracked RNG stream position, so the
// draws Reset itself spent are irrelevant.
func (f *Framework) Restore(b []byte) error {
	r := statecodec.NewReader(b)
	if v := r.U8(); r.Err() != nil || v != snapshotVersion {
		return fmt.Errorf("core: unsupported framework snapshot version %d", b[0])
	}
	lastEnv := EnvClass(r.U8())
	lastGood := geo.Pt(r.F64(), r.F64())
	hasLastGood := r.Bool()
	iodState := r.U8()
	iodPending := r.U8()
	iodVotes := r.U32()
	iodBaseline := r.F64()
	iodHave := r.Bool()
	nPred := int(r.U32())
	if r.Err() != nil {
		return fmt.Errorf("core: truncated framework snapshot: %w", r.Err())
	}
	lastPred := make(map[string]float64, nPred)
	for i := 0; i < nPred; i++ {
		lastPred[r.String()] = r.F64()
	}
	nSchemes := int(r.U32())
	if r.Err() != nil {
		return fmt.Errorf("core: truncated framework snapshot: %w", r.Err())
	}
	if nSchemes != len(f.schemes) {
		return fmt.Errorf("core: snapshot has %d schemes, framework has %d", nSchemes, len(f.schemes))
	}

	f.Reset(lastGood)

	f.lastEnv = lastEnv
	f.lastGood = lastGood
	f.hasLastGood = hasLastGood
	f.iod.Restore(iodetector.Memento{
		State:        iodetector.State(iodState),
		PendingState: iodetector.State(iodPending),
		PendingVotes: int(iodVotes),
		CellBaseline: iodBaseline,
		HaveBaseline: iodHave,
	})
	f.lastPred = lastPred

	for _, s := range f.schemes {
		name := r.String()
		blob := r.Bytes()
		if err := r.Err(); err != nil {
			return fmt.Errorf("core: truncated framework snapshot: %w", err)
		}
		if name != s.Name() {
			return fmt.Errorf("core: snapshot scheme %q does not match framework scheme %q", name, s.Name())
		}
		if len(blob) == 0 {
			continue
		}
		sc, ok := s.(schemes.StateCodec)
		if !ok {
			return fmt.Errorf("core: snapshot carries state for scheme %q which cannot restore it", name)
		}
		if err := sc.RestoreState(blob); err != nil {
			return fmt.Errorf("core: restore scheme %s: %w", name, err)
		}
	}
	return nil
}
