package core

import (
	"sync"

	"repro/internal/sensing"
	"repro/internal/telemetry"
)

// WithParallel sets the number of worker goroutines Step fans the
// per-scheme Estimate + error-prediction calls out to. The paper's
// architecture runs the N schemes in parallel on the server (§IV-C,
// Table V's "slowest scheme" row); this makes the implementation do
// the same. workers <= 1 keeps today's sequential path (the default).
//
// Parallel execution is bit-identical to sequential: every scheme owns
// its random stream (scenario.Assets.SchemesOver derives one child per
// scheme), each worker writes only its scheme's result slot, and the
// ensemble stages (τ, weighting, selection, BMA) and lastPred gating
// updates run after the join in canonical scheme order. See
// TestParallelStepMatchesSequential and DESIGN.md §11.
func WithParallel(workers int) Option {
	return func(f *Framework) { f.stepWorkers = workers }
}

// stepPool is a Framework's persistent scheme-execution pool: the
// goroutines start once (lazily, on the first parallel Step) and are
// reused for every epoch — no per-Step spawning. One pool serves one
// framework from its single driving goroutine, like the framework
// itself.
type stepPool struct {
	f     *Framework
	tasks chan int // scheme indices to run this epoch
	done  chan int // completion signals, one per scheme
	quit  chan struct{}
	wg    sync.WaitGroup

	// Per-dispatch state: written before the tasks are enqueued, read
	// by workers, and released after every completion is drained. The
	// channel operations order these accesses, so workers never race
	// on them or on anything reachable from them.
	snap *sensing.Snapshot
	tr   *telemetry.EpochTrace
	out  []SchemeResult
}

// ensurePool returns the framework's worker pool, starting it on first
// use (and after Close).
func (f *Framework) ensurePool() *stepPool {
	if f.pool == nil {
		n := f.stepWorkers
		if n > len(f.schemes) {
			n = len(f.schemes)
		}
		p := &stepPool{
			f: f,
			// Buffered to the scheme count so dispatch never blocks on
			// enqueue regardless of the worker count.
			tasks: make(chan int, len(f.schemes)),
			done:  make(chan int, len(f.schemes)),
			quit:  make(chan struct{}),
		}
		for w := 0; w < n; w++ {
			p.wg.Add(1)
			go p.worker()
		}
		f.pool = p
	}
	return f.pool
}

// worker executes scheme tasks until the pool is closed.
func (p *stepPool) worker() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		case i := <-p.tasks:
			p.f.runScheme(i, p.snap, p.tr, p.out)
			p.done <- i
		}
	}
}

// dispatch runs every scheme of one epoch on the pool and blocks until
// all have completed. Results land in out, indexed by scheme position.
func (p *stepPool) dispatch(snap *sensing.Snapshot, tr *telemetry.EpochTrace, out []SchemeResult) {
	p.snap, p.tr, p.out = snap, tr, out
	n := len(p.f.schemes)
	for i := 0; i < n; i++ {
		p.tasks <- i
	}
	for i := 0; i < n; i++ {
		<-p.done
	}
	p.snap, p.tr, p.out = nil, nil, nil // do not retain epoch state
}

// Close stops the framework's worker pool, if one is running. It is
// safe to call on a sequential framework and to keep using the
// framework afterwards — the next parallel Step starts a fresh pool.
// Servers call this when a session ends so pools do not outlive their
// frameworks.
func (f *Framework) Close() {
	if f.pool != nil {
		close(f.pool.quit)
		f.pool.wg.Wait()
		f.pool = nil
	}
}

// SetParallel reconfigures the worker count after construction (the
// offload session manager applies the server's -step-workers setting
// to factory-built frameworks). Must not be called concurrently with
// Step. Any running pool is stopped; the next Step starts one at the
// new width.
func (f *Framework) SetParallel(workers int) {
	if workers == f.stepWorkers {
		return
	}
	f.Close()
	f.stepWorkers = workers
}

// StepWorkers reports the configured scheme-execution worker count
// (<= 1 means sequential).
func (f *Framework) StepWorkers() int { return f.stepWorkers }
