package core

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/schemes"
	"repro/internal/telemetry"
)

// parallelPair builds two identical two-scheme frameworks, one
// sequential and one parallel, over the same deterministic fakes.
func parallelPair(t *testing.T, workers int) (seq, par *Framework) {
	t.Helper()
	mk := func(opts ...Option) *Framework {
		good := &fakeScheme{name: "good", pos: geo.Pt(1, 1), ok: true, feats: map[string]float64{"x": 1}}
		bad := &fakeScheme{name: "bad", pos: geo.Pt(30, 30), ok: true, feats: map[string]float64{"x": 10}}
		ms := NewModelSet()
		for _, env := range []EnvClass{EnvIndoor, EnvOutdoor} {
			ms.Put(modelFor("good", env, 2, 1))
			ms.Put(modelFor("bad", env, 2, 2))
		}
		fw, err := NewFramework([]schemes.Scheme{good, bad}, ms, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return fw
	}
	return mk(), mk(WithParallel(workers))
}

// TestParallelStepMatchesSequentialFakes checks slot-for-slot equality
// of the StepResult stream between a sequential and a parallel
// framework over deterministic schemes (the full-walk bit-identity
// test over the real campus stack lives in the root package:
// TestParallelStepMatchesSequential).
func TestParallelStepMatchesSequentialFakes(t *testing.T) {
	seq, par := parallelPair(t, 2)
	defer par.Close()
	seq.Reset(geo.Pt(0, 0))
	par.Reset(geo.Pt(0, 0))
	for i := 0; i < 50; i++ {
		snap := outdoorSnap()
		if i%3 == 0 {
			snap = indoorSnap()
		}
		snap.Epoch = i
		a, b := seq.Step(snap), par.Step(snap)
		if a.Epoch != b.Epoch || a.Env != b.Env || a.Tau != b.Tau ||
			a.Best != b.Best || a.BestIdx != b.BestIdx || a.BMA != b.BMA || a.OK != b.OK {
			t.Fatalf("epoch %d: step results diverged:\nseq %+v\npar %+v", i, a, b)
		}
		for j := range a.Schemes {
			if a.Schemes[j] != b.Schemes[j] {
				t.Fatalf("epoch %d scheme %d diverged:\nseq %+v\npar %+v", i, j, a.Schemes[j], b.Schemes[j])
			}
		}
		if aw, bw := seq.GPSWanted(), par.GPSWanted(); aw != bw {
			t.Fatalf("epoch %d: gating diverged: seq %v par %v", i, aw, bw)
		}
	}
}

// TestParallelPoolReuseAcrossReset is the worker-pool lifecycle guard:
// the pool starts once, survives Reset (a server reuses one framework
// across walks), stops on Close without leaking goroutines, and
// restarts lazily if the framework keeps stepping afterwards.
func TestParallelPoolReuseAcrossReset(t *testing.T) {
	_, fw := parallelPair(t, 2)
	fw.Reset(geo.Pt(0, 0))

	before := runtime.NumGoroutine()
	fw.Step(outdoorSnap()) // pool starts lazily here
	started := runtime.NumGoroutine()
	if started <= before {
		t.Fatalf("expected worker goroutines after first parallel step (%d -> %d)", before, started)
	}
	pool := fw.pool
	if pool == nil {
		t.Fatal("no pool after parallel step")
	}

	// Reset must keep the pool: goroutine count stable, same pool.
	for walk := 0; walk < 3; walk++ {
		fw.Reset(geo.Pt(float64(walk), 0))
		for i := 0; i < 10; i++ {
			fw.Step(outdoorSnap())
		}
		if fw.pool != pool {
			t.Fatalf("walk %d: Reset replaced the worker pool", walk)
		}
	}
	if n := runtime.NumGoroutine(); n > started {
		t.Fatalf("goroutines grew across resets: %d -> %d", started, n)
	}

	// Close stops the workers (poll briefly: goroutine exit is async).
	fw.Close()
	if fw.pool != nil {
		t.Fatal("Close left the pool installed")
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("worker goroutines leaked after Close: %d > %d", n, before)
	}
	fw.Close() // idempotent

	// The framework stays usable: the next Step restarts a pool.
	res := fw.Step(outdoorSnap())
	if !res.OK {
		t.Fatal("step after Close failed")
	}
	if fw.pool == nil {
		t.Fatal("pool did not restart after Close")
	}
	fw.Close()
}

// TestSetParallelSwitchesModes covers the offload wiring entry point:
// SetParallel reconfigures a framework after construction and tears
// down a stale pool when switching back to sequential.
func TestSetParallelSwitchesModes(t *testing.T) {
	fw, _ := parallelPair(t, 2)
	if fw.StepWorkers() > 1 {
		t.Fatalf("fresh framework reports %d workers", fw.StepWorkers())
	}
	fw.SetParallel(3)
	if fw.StepWorkers() != 3 {
		t.Fatalf("StepWorkers = %d after SetParallel(3)", fw.StepWorkers())
	}
	fw.Reset(geo.Pt(0, 0))
	fw.Step(outdoorSnap())
	if fw.pool == nil {
		t.Fatal("no pool after parallel step")
	}
	fw.SetParallel(0) // back to sequential: pool must go
	if fw.pool != nil {
		t.Fatal("SetParallel(0) left the pool running")
	}
	if res := fw.Step(outdoorSnap()); !res.OK {
		t.Fatal("sequential step after SetParallel(0) failed")
	}
	if fw.pool != nil {
		t.Fatal("sequential step started a pool")
	}
}

// TestParallelStepTelemetry: per-scheme timings keep flowing with the
// pool enabled (workers write their own trace slots).
func TestParallelStepTelemetry(t *testing.T) {
	var got *telemetry.EpochTrace
	obs := telemetry.ObserverFunc(func(tr *telemetry.EpochTrace) { got = tr })
	good := &fakeScheme{name: "good", pos: geo.Pt(1, 1), ok: true, feats: map[string]float64{"x": 1}}
	bad := &fakeScheme{name: "bad", pos: geo.Pt(30, 30), ok: true, feats: map[string]float64{"x": 10}}
	ms := NewModelSet()
	ms.Put(modelFor("good", EnvOutdoor, 2, 1))
	ms.Put(modelFor("bad", EnvOutdoor, 2, 2))
	fw, err := NewFramework([]schemes.Scheme{good, bad}, ms, WithParallel(2), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	defer fw.Close()
	fw.Reset(geo.Pt(0, 0))
	fw.Step(outdoorSnap())
	if got == nil {
		t.Fatal("no trace emitted")
	}
	if len(got.Schemes) != 2 {
		t.Fatalf("trace has %d scheme entries", len(got.Schemes))
	}
	for i, st := range got.Schemes {
		if st.Scheme == "" || st.EstimateNS < 0 || !st.Available {
			t.Fatalf("scheme trace %d incomplete: %+v", i, st)
		}
	}
	if got.StepNS <= 0 {
		t.Fatalf("StepNS = %d", got.StepNS)
	}
}

// TestParallelStepObserverOffAllocs: the pool path must stay within the
// sequential allocation envelope — dispatch reuses channels and slots,
// so no per-Step goroutines or boxing.
func TestParallelStepObserverOffAllocs(t *testing.T) {
	_, fw := parallelPair(t, 2)
	defer fw.Close()
	fw.Reset(geo.Pt(0, 0))
	snap := outdoorSnap()
	fw.Step(snap) // start the pool, warm lastPred
	got := testing.AllocsPerRun(200, func() { fw.Step(snap) })
	if got > stepBaselineAllocs {
		t.Fatalf("parallel observer-off Step allocates %v objects/op, want <= %d", got, stepBaselineAllocs)
	}
}
