package core

import (
	"math"
	"sort"

	"repro/internal/geo"
	"repro/internal/stat"
)

// SchemeResult is the per-scheme data for one epoch after error
// prediction.
type SchemeResult struct {
	Name      string
	Pos       geo.Point
	Available bool    // scheme produced a usable estimate this epoch
	PredErr   float64 // μ̂: predicted localization error
	Sigma     float64 // σ_ε of the error model
	Conf      float64 // c: P(Y ≤ τ), 0 when unavailable
	Weight    float64 // BMA weight w = c / Σc
}

// Tau computes the confidence threshold τ: the paper sets it
// adaptively at every location as the average predicted error of all
// available schemes (§IV-A).
func Tau(results []SchemeResult) float64 {
	var sum float64
	var n int
	for _, r := range results {
		if !r.Available || math.IsNaN(r.PredErr) || math.IsInf(r.PredErr, 0) {
			continue
		}
		sum += r.PredErr
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Confidence computes c = P(Y ≤ τ) for Y ~ N(mu, sigma) (Eq. 2).
func Confidence(mu, sigma, tau float64) float64 {
	return stat.NormalCDF(tau, mu, sigma)
}

// PruneFrac is the confidence-pruning threshold of the BMA weighting:
// a scheme whose confidence falls below PruneFrac of the most
// confident scheme's is temporarily excluded from the combination (its
// weight is set to zero). This is an implementation refinement of the
// paper's "exclude a scheme by setting its confidence as zero" rule:
// without it, a scheme predicted to be several times worse than the
// best still drags the weighted average away from the truth. The
// ablation benchmark quantifies the effect.
const PruneFrac = 0.55

// WeightMode selects how confidences become BMA weights.
type WeightMode int

// Weighting modes. WeightPrecision is the default: confidence scaled
// by predicted precision (1/μ̂²). WeightConfOnly is the literal w=c/Σc
// of Eq. 5. WeightUniform ignores confidences entirely (plain
// averaging of available schemes) — the weakest baseline.
const (
	WeightPrecision WeightMode = iota
	WeightConfOnly
	WeightUniform
)

// String implements fmt.Stringer.
func (m WeightMode) String() string {
	switch m {
	case WeightPrecision:
		return "precision"
	case WeightConfOnly:
		return "confidence"
	case WeightUniform:
		return "uniform"
	default:
		return "unknown"
	}
}

// ApplyConfidences fills Conf and Weight in place given τ. Unavailable
// schemes get confidence zero, which excludes them from the ensemble
// (§IV-A: "UniLoc can temporarily exclude one localization scheme by
// simply setting its confidence as zero"), and schemes far less
// confident than the best are pruned (see PruneFrac).
func ApplyConfidences(results []SchemeResult, tau float64) {
	ApplyWeights(results, tau, WeightPrecision, PruneFrac)
}

// ApplyWeights is ApplyConfidences with an explicit weighting mode and
// pruning threshold, used by the ablation experiments.
func ApplyWeights(results []SchemeResult, tau float64, mode WeightMode, pruneFrac float64) {
	applyConfidences(results, tau, mode, pruneFrac)
}

func applyConfidences(results []SchemeResult, tau float64, mode WeightMode, pruneFrac float64) {
	maxConf := 0.0
	for i := range results {
		r := &results[i]
		if !r.Available {
			r.Conf = 0
			continue
		}
		r.Conf = Confidence(r.PredErr, r.Sigma, tau)
		// A NaN confidence (non-finite μ̂/σ/τ reaching the CDF) must
		// not poison the normalization below: NaN compares false
		// against every threshold, so it would slip past pruning and
		// turn the weight total — and every position — into NaN.
		if math.IsNaN(r.Conf) || math.IsInf(r.Conf, 0) || r.Conf < 0 {
			r.Conf = 0
		}
		if r.Conf > maxConf {
			maxConf = r.Conf
		}
	}
	// Raw weight: in the default mode, confidence scaled by predicted
	// precision. The confidence c approximates P(M_n | s_t); dividing
	// by the predicted error variance is the inverse-variance weighting
	// that minimizes the combined estimator's variance when predictions
	// are unbiased.
	raw := func(r *SchemeResult) float64 {
		switch mode {
		case WeightConfOnly:
			return r.Conf
		case WeightUniform:
			if r.Available {
				return 1
			}
			return 0
		default:
			if r.PredErr <= 0 || math.IsNaN(r.PredErr) || math.IsInf(r.PredErr, 0) {
				return 0
			}
			return r.Conf / (r.PredErr * r.PredErr)
		}
	}
	var total float64
	for i := range results {
		if results[i].Conf < maxConf*pruneFrac {
			results[i].Weight = 0
			continue
		}
		total += raw(&results[i])
	}
	for i := range results {
		if results[i].Conf < maxConf*pruneFrac {
			continue
		}
		if total > 0 {
			results[i].Weight = raw(&results[i]) / total
		} else {
			results[i].Weight = 0
		}
	}
	// Degenerate case: all confidences zero but schemes available —
	// fall back to uniform weights over available schemes.
	if total == 0 {
		var n int
		for _, r := range results {
			if r.Available {
				n++
			}
		}
		if n > 0 {
			for i := range results {
				if results[i].Available {
					results[i].Weight = 1 / float64(n)
				}
			}
		}
	}
}

// SelectBest returns the index of the scheme UniLoc1 picks: the highest
// confidence among available schemes, ties broken by lower predicted
// error then by name for determinism. ok is false when no scheme is
// available.
func SelectBest(results []SchemeResult) (int, bool) {
	best := -1
	for i, r := range results {
		if !r.Available {
			continue
		}
		if best < 0 {
			best = i
			continue
		}
		b := results[best]
		switch {
		case r.Conf > b.Conf:
			best = i
		case r.Conf == b.Conf && r.PredErr < b.PredErr:
			best = i
		case r.Conf == b.Conf && r.PredErr == b.PredErr && r.Name < b.Name:
			best = i
		}
	}
	return best, best >= 0
}

// CombineBMA returns the UniLoc2 locally-weighted BMA position: the
// weight-averaged X and Y coordinates (Eq. 4 computed per coordinate,
// §IV-B). ok is false when no scheme is available.
func CombineBMA(results []SchemeResult) (geo.Point, bool) {
	var x, y, w float64
	for _, r := range results {
		if !r.Available || r.Weight <= 0 {
			continue
		}
		x += r.Pos.X * r.Weight
		y += r.Pos.Y * r.Weight
		w += r.Weight
	}
	if w <= 0 {
		return geo.Point{}, false
	}
	return geo.Pt(x/w, y/w), true
}

// CombineFixed combines available schemes with externally supplied
// fixed weights (the global-weight BMA baseline of prior work [29]:
// one weight per scheme per place, no local adaptation).
func CombineFixed(results []SchemeResult, weights map[string]float64) (geo.Point, bool) {
	var x, y, w float64
	for _, r := range results {
		if !r.Available {
			continue
		}
		wt := weights[r.Name]
		if wt <= 0 {
			continue
		}
		x += r.Pos.X * wt
		y += r.Pos.Y * wt
		w += wt
	}
	if w <= 0 {
		return geo.Point{}, false
	}
	return geo.Pt(x/w, y/w), true
}

// ALocProfile is the A-Loc-style baseline's offline knowledge: the
// historical mean error and an energy cost for each scheme in each
// environment class. A-Loc [28] selects the cheapest single scheme
// whose offline error record meets the accuracy requirement; it cannot
// adapt to real-time context or combine schemes.
type ALocProfile struct {
	MeanErr map[EnvClass]map[string]float64
	CostMW  map[string]float64
	// AccuracyReqM is the target accuracy the selected scheme must
	// historically meet.
	AccuracyReqM float64
}

// Select returns the A-Loc choice among the available schemes: the
// cheapest whose offline mean error is within the requirement, else
// the historically most accurate. ok is false when nothing is
// available.
func (p *ALocProfile) Select(results []SchemeResult, env EnvClass) (int, bool) {
	errs := p.MeanErr[env]
	type cand struct {
		idx  int
		err  float64
		cost float64
	}
	var cands []cand
	for i, r := range results {
		if !r.Available {
			continue
		}
		e, ok := errs[r.Name]
		if !ok {
			e = 1e9
		}
		cands = append(cands, cand{idx: i, err: e, cost: p.CostMW[r.Name]})
	}
	if len(cands) == 0 {
		return -1, false
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].cost != cands[b].cost {
			return cands[a].cost < cands[b].cost
		}
		return cands[a].err < cands[b].err
	})
	for _, c := range cands {
		if c.err <= p.AccuracyReqM {
			return c.idx, true
		}
	}
	// None meets the requirement: take the most accurate.
	best := cands[0]
	for _, c := range cands[1:] {
		if c.err < best.err {
			best = c
		}
	}
	return best.idx, true
}
