// Package core implements the paper's primary contribution: online
// per-scheme localization-error prediction from real-time sensor-data
// features (§III), probabilistic confidence (§IV-A, Eq. 2), the
// UniLoc1 best-scheme selector, and the UniLoc2 locally-weighted
// Bayesian-Model-Averaging ensemble (§IV-B, Eqs. 3–5), plus the GPS
// gating energy technique (§IV-C).
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/regress"
)

// EnvClass is the error-model environment class. The paper trains
// separate indoor and outdoor models because most schemes have distinct
// error characteristics under a roof (§III-A).
type EnvClass int

// Environment classes.
const (
	EnvIndoor EnvClass = iota + 1
	EnvOutdoor
)

// String implements fmt.Stringer.
func (e EnvClass) String() string {
	switch e {
	case EnvIndoor:
		return "indoor"
	case EnvOutdoor:
		return "outdoor"
	default:
		return "unknown"
	}
}

// minPredictedErr floors predicted errors: a regression can extrapolate
// below zero near the origin, but a localization error cannot be
// negative.
const minPredictedErr = 0.3

// ErrorModel predicts one scheme's localization error in one
// environment class from its real-time data features.
type ErrorModel struct {
	Scheme   string
	Env      EnvClass
	Features []string // feature order expected by Predict
	Reg      *regress.Result
}

// Predict returns the predicted error mean μ̂ (Eq. 6) and the residual
// deviation σ_ε for the Gaussian error distribution Y ~ N(μ̂, σ_ε).
func (m *ErrorModel) Predict(features map[string]float64) (mu, sigma float64) {
	x := make([]float64, len(m.Features))
	for i, name := range m.Features {
		x[i] = features[name]
	}
	mu = m.Reg.Predict(x)
	if mu < minPredictedErr {
		mu = minPredictedErr
	}
	sigma = m.Reg.ResidStd
	if sigma <= 0 {
		sigma = 0.1
	}
	return mu, sigma
}

// modelKey identifies one (scheme, environment) model.
type modelKey struct {
	scheme string
	env    EnvClass
}

// ModelSet holds the trained error models for every scheme and
// environment class.
type ModelSet struct {
	models map[modelKey]*ErrorModel
}

// NewModelSet returns an empty model set.
func NewModelSet() *ModelSet {
	return &ModelSet{models: make(map[modelKey]*ErrorModel)}
}

// Put registers a model, replacing any previous model for the same
// (scheme, environment).
func (s *ModelSet) Put(m *ErrorModel) {
	s.models[modelKey{m.Scheme, m.Env}] = m
}

// Get returns the model for (scheme, env), or nil.
func (s *ModelSet) Get(scheme string, env EnvClass) *ErrorModel {
	return s.models[modelKey{scheme, env}]
}

// Lookup returns the model for (scheme, env), falling back to the
// other environment's model when the requested one is missing (e.g.
// GPS has only an outdoor model).
func (s *ModelSet) Lookup(scheme string, env EnvClass) *ErrorModel {
	if m := s.Get(scheme, env); m != nil {
		return m
	}
	other := EnvIndoor
	if env == EnvIndoor {
		other = EnvOutdoor
	}
	return s.Get(scheme, other)
}

// Schemes returns the sorted scheme names present in the set.
func (s *ModelSet) Schemes() []string {
	seen := make(map[string]bool)
	for k := range s.models {
		seen[k.scheme] = true
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// String renders the model set like the paper's Table II.
func (s *ModelSet) String() string {
	var b strings.Builder
	for _, scheme := range s.Schemes() {
		for _, env := range []EnvClass{EnvIndoor, EnvOutdoor} {
			m := s.Get(scheme, env)
			if m == nil {
				continue
			}
			fmt.Fprintf(&b, "%s (%s):\n%s", scheme, env, m.Reg.String())
		}
	}
	return b.String()
}
