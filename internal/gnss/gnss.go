// Package gnss simulates a smartphone GPS receiver: a seeded satellite
// constellation, per-location satellite visibility driven by the
// world's sky openness, horizontal dilution of precision (HDOP) computed
// from the visible satellite geometry, and position fixes with
// HDOP-scaled Gaussian error plus stable per-location multipath bias.
//
// The paper characterizes smartphone GPS by exactly these observables:
// the number of visible satellites, HDOP, and an error that is Gaussian
// (μ ≈ 13.5 m, σ ≈ 9.4 m) in urban open spaces (§III-B). A reliable fix
// requires more than 4 satellites and HDOP < 6 (§III-B, A-Loc [28]).
package gnss

import (
	"math"
	"math/rand"

	"repro/internal/geo"
	"repro/internal/mat"
	"repro/internal/noise"
	"repro/internal/world"
)

// MinSatsForFix is the minimum satellite count for any fix at all.
const MinSatsForFix = 4

// Reliability thresholds from the paper: a reliable location estimate
// requires NumSats > ReliableSats and HDOP < ReliableHDOP.
const (
	ReliableSats = 4
	ReliableHDOP = 6.0
)

// Satellite is one GNSS space vehicle at a fixed sky position (the
// constellation rotates slowly relative to a walk, so a static snapshot
// per scenario is adequate).
type Satellite struct {
	ID         int
	AzimuthR   float64 // radians, 0 = east, counter-clockwise
	ElevationR float64 // radians above horizon
}

// Constellation is the set of satellites above the horizon.
type Constellation struct {
	Sats       []Satellite
	MaskR      float64 // elevation mask: satellites below are never used
	ErrScaleM  float64 // 1-sigma per-axis error at HDOP=1
	BiasScaleM float64 // per-location multipath bias scale
}

// NewConstellation builds a deterministic constellation of n satellites
// from the given seed, with sky positions spread by a noise field.
func NewConstellation(seed uint64, n int) *Constellation {
	f := noise.Field{Seed: seed}
	sats := make([]Satellite, n)
	for i := range sats {
		az := f.Uniform(1, int64(i)) * 2 * math.Pi
		// Bias elevations toward mid-sky like a real constellation.
		u := f.Uniform(2, int64(i))
		el := math.Asin(0.15 + 0.85*u) // elevations from ~8.6° to 90°
		sats[i] = Satellite{ID: i + 1, AzimuthR: az, ElevationR: el}
	}
	return &Constellation{
		Sats:       sats,
		MaskR:      10 * math.Pi / 180,
		ErrScaleM:  7.5,
		BiasScaleM: 3.0,
	}
}

// Visible returns the satellites visible at position p in world w. A
// satellite is visible when it is above the elevation mask and its sky
// ray is not blocked; blockage is a deterministic per-(satellite, cell)
// draw against the region's sky openness, weighted so low-elevation
// satellites are blocked first (buildings occlude the horizon before
// the zenith).
func (c *Constellation) Visible(w *world.World, p geo.Point) []Satellite {
	openness := w.SkyOpennessAt(p)
	if openness <= 0 {
		return nil
	}
	cx := noise.QuantizeM(p.X, 10)
	cy := noise.QuantizeM(p.Y, 10)
	var vis []Satellite
	for _, s := range c.Sats {
		if s.ElevationR < c.MaskR {
			continue
		}
		// Effective visibility probability grows with elevation: a
		// zenith satellite is visible whenever openness > 0.15.
		elFrac := s.ElevationR / (math.Pi / 2)
		pVis := openness * (0.4 + 1.6*elFrac)
		if pVis > 1 {
			pVis = 1
		}
		u := w.Noise.Uniform(201, int64(s.ID), cx, cy)
		if u < pVis {
			vis = append(vis, s)
		}
	}
	return vis
}

// HDOP computes the horizontal dilution of precision from the visible
// satellite geometry: H = (GᵀG)⁻¹ with G rows
// [cos(el)·cos(az), cos(el)·sin(az), sin(el), 1], HDOP = √(H₀₀+H₁₁).
// It returns +Inf when the geometry is degenerate or fewer than 4
// satellites are visible.
func HDOP(sats []Satellite) float64 {
	if len(sats) < MinSatsForFix {
		return math.Inf(1)
	}
	g := mat.New(len(sats), 4)
	for i, s := range sats {
		ce := math.Cos(s.ElevationR)
		g.Set(i, 0, ce*math.Cos(s.AzimuthR))
		g.Set(i, 1, ce*math.Sin(s.AzimuthR))
		g.Set(i, 2, math.Sin(s.ElevationR))
		g.Set(i, 3, 1)
	}
	gtg := mat.Mul(g.T(), g)
	h, err := mat.Inverse(gtg)
	if err != nil {
		return math.Inf(1)
	}
	v := h.At(0, 0) + h.At(1, 1)
	if v <= 0 {
		return math.Inf(1)
	}
	return math.Sqrt(v)
}

// Fix is a GPS position report as a smartphone exposes it.
type Fix struct {
	Pos     geo.LatLon
	NumSats int
	HDOP    float64
}

// Reliable reports whether the fix meets the paper's reliability
// criterion (NumSats > 4 and HDOP < 6).
func (f *Fix) Reliable() bool {
	return f != nil && f.NumSats > ReliableSats && f.HDOP < ReliableHDOP
}

// Receiver produces fixes for a world.
type Receiver struct {
	Con   *Constellation
	World *world.World
}

// Fix returns the receiver's position fix at true position p, or nil if
// no fix is possible (fewer than 4 visible satellites, e.g. indoors).
// The reported position error is HDOP-scaled Gaussian noise plus a
// stable per-location multipath bias.
func (r *Receiver) Fix(p geo.Point, rnd *rand.Rand) *Fix {
	vis := r.Con.Visible(r.World, p)
	if len(vis) < MinSatsForFix {
		return nil
	}
	hdop := HDOP(vis)
	if math.IsInf(hdop, 1) {
		return nil
	}
	scale := r.Con.ErrScaleM * hdop
	bias := r.World.SkyBiasAt(p, r.Con.BiasScaleM*hdop)
	est := geo.Pt(
		p.X+bias.X+rnd.NormFloat64()*scale,
		p.Y+bias.Y+rnd.NormFloat64()*scale,
	)
	return &Fix{
		Pos:     r.World.Proj.ToGeo(est),
		NumSats: len(vis),
		HDOP:    hdop,
	}
}
