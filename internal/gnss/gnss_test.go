package gnss

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/noise"
	"repro/internal/world"
)

func skyWorld() *world.World {
	return &world.World{
		Name:  "sky",
		Noise: noise.Field{Seed: 5},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "open", Kind: world.KindOpenSpace, Poly: geo.RectPoly(0, 0, 100, 100), SkyOpenness: 1, LightLux: 10000, MagNoise: 0.5},
			{Name: "office", Kind: world.KindOffice, Poly: geo.RectPoly(200, 0, 260, 24), SkyOpenness: 0.03, LightLux: 300, MagNoise: 2},
			{Name: "corridor", Kind: world.KindCorridor, Poly: geo.RectPoly(300, 0, 360, 4), SkyOpenness: 0.22, LightLux: 1500, MagNoise: 2},
		},
	}
}

func TestConstellationDeterministic(t *testing.T) {
	a := NewConstellation(1, 12)
	b := NewConstellation(1, 12)
	if len(a.Sats) != 12 {
		t.Fatalf("sats = %d", len(a.Sats))
	}
	for i := range a.Sats {
		if a.Sats[i] != b.Sats[i] {
			t.Fatal("constellation not deterministic")
		}
	}
	c := NewConstellation(2, 12)
	same := true
	for i := range a.Sats {
		if a.Sats[i] != c.Sats[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestConstellationElevationRange(t *testing.T) {
	c := NewConstellation(3, 32)
	for _, s := range c.Sats {
		if s.ElevationR < 0 || s.ElevationR > math.Pi/2 {
			t.Errorf("elevation %v out of range", s.ElevationR)
		}
		if s.AzimuthR < 0 || s.AzimuthR > 2*math.Pi {
			t.Errorf("azimuth %v out of range", s.AzimuthR)
		}
	}
}

func TestVisibilityByEnvironment(t *testing.T) {
	w := skyWorld()
	c := NewConstellation(0x5A7E111E, 12)
	open := len(c.Visible(w, geo.Pt(50, 50)))
	office := len(c.Visible(w, geo.Pt(230, 12)))
	corridor := len(c.Visible(w, geo.Pt(330, 2)))
	if open < 8 {
		t.Errorf("open sky sees %d sats, want most of 12", open)
	}
	if office >= MinSatsForFix {
		t.Errorf("office sees %d sats, should be blocked", office)
	}
	if corridor >= open {
		t.Errorf("semi-open corridor (%d) should see fewer than open (%d)", corridor, open)
	}
}

func TestVisibilityZeroOpenness(t *testing.T) {
	w := skyWorld()
	w.Regions[0].SkyOpenness = 0
	c := NewConstellation(1, 12)
	if got := c.Visible(w, geo.Pt(50, 50)); got != nil {
		t.Errorf("zero openness should see nothing, got %d", len(got))
	}
}

func TestHDOP(t *testing.T) {
	// Too few satellites → +Inf.
	if !math.IsInf(HDOP(nil), 1) {
		t.Error("empty HDOP should be Inf")
	}
	// A well-spread constellation gives a reasonable HDOP (~1).
	var sats []Satellite
	for i := 0; i < 8; i++ {
		sats = append(sats, Satellite{
			ID:         i + 1,
			AzimuthR:   float64(i) * math.Pi / 4,
			ElevationR: 0.6,
		})
	}
	sats = append(sats, Satellite{ID: 9, ElevationR: math.Pi / 2})
	h := HDOP(sats)
	if h < 0.5 || h > 3 {
		t.Errorf("HDOP = %v, want ~1", h)
	}
	// Degenerate geometry (all satellites at the same spot) → Inf.
	var degenerate []Satellite
	for i := 0; i < 5; i++ {
		degenerate = append(degenerate, Satellite{ID: i, AzimuthR: 1, ElevationR: 1})
	}
	if !math.IsInf(HDOP(degenerate), 1) {
		t.Error("degenerate geometry should be Inf")
	}
}

func TestFixReliable(t *testing.T) {
	var nilFix *Fix
	if nilFix.Reliable() {
		t.Error("nil fix is not reliable")
	}
	if (&Fix{NumSats: 4, HDOP: 1}).Reliable() {
		t.Error("4 sats is not > 4")
	}
	if (&Fix{NumSats: 8, HDOP: 7}).Reliable() {
		t.Error("HDOP 7 is not reliable")
	}
	if !(&Fix{NumSats: 8, HDOP: 1.1}).Reliable() {
		t.Error("good fix should be reliable")
	}
}

func TestReceiverFix(t *testing.T) {
	w := skyWorld()
	c := NewConstellation(0x5A7E111E, 12)
	r := &Receiver{Con: c, World: w}
	rnd := rand.New(rand.NewSource(1))

	if fix := r.Fix(geo.Pt(230, 12), rnd); fix != nil {
		t.Error("office should have no fix")
	}
	fix := r.Fix(geo.Pt(50, 50), rnd)
	if fix == nil {
		t.Fatal("open sky should have a fix")
	}
	if fix.NumSats < MinSatsForFix {
		t.Errorf("NumSats = %d", fix.NumSats)
	}
	local := w.Proj.ToLocal(fix.Pos)
	err := local.Dist(geo.Pt(50, 50))
	if err > 120 {
		t.Errorf("fix error %v m implausible", err)
	}
}

func TestReceiverErrorDistribution(t *testing.T) {
	w := skyWorld()
	c := NewConstellation(0x5A7E111E, 12)
	r := &Receiver{Con: c, World: w}
	rnd := rand.New(rand.NewSource(2))
	var errs []float64
	for i := 0; i < 400; i++ {
		p := geo.Pt(5+rand.New(rand.NewSource(int64(i))).Float64()*90, 5+float64(i%90))
		fix := r.Fix(p, rnd)
		if fix == nil {
			continue
		}
		errs = append(errs, w.Proj.ToLocal(fix.Pos).Dist(p))
	}
	if len(errs) < 300 {
		t.Fatalf("too few fixes: %d", len(errs))
	}
	var sum float64
	for _, e := range errs {
		sum += e
	}
	mean := sum / float64(len(errs))
	// The paper's urban open-space GPS error: Gaussian with mean
	// ~13.5 m. Our simulator should land in that neighbourhood.
	if mean < 7 || mean > 25 {
		t.Errorf("mean GPS error = %.1f m, want ~13.5", mean)
	}
}
