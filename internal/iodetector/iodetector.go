// Package iodetector reimplements the IODetector service the paper
// relies on to switch between indoor and outdoor error models
// (§III-A). It classifies the environment from three low-power sensing
// modalities — ambient light, magnetic field variance, and cellular
// signal strength — and applies hysteresis so the state does not
// flicker at boundaries.
package iodetector

import "repro/internal/rf"

// State is the detected environment.
type State int

// Detector states.
const (
	Unknown State = iota
	Indoor
	Outdoor
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Indoor:
		return "indoor"
	case Outdoor:
		return "outdoor"
	default:
		return "unknown"
	}
}

// Config holds classification thresholds.
type Config struct {
	// DaylightLux is the light level above which the user is almost
	// certainly outdoors in daytime.
	DaylightLux float64
	// DimLux is the level below which the user is almost certainly
	// under a roof.
	DimLux float64
	// MagVarIndoorUT is the magnetic variance above which steel
	// structures (a building) are nearby.
	MagVarIndoorUT float64
	// CellDropDB: mean cellular RSSI this much below the running
	// outdoor baseline votes indoor.
	CellDropDB float64
	// Votes needed to flip the state (hysteresis).
	Votes int
}

// DefaultConfig returns thresholds tuned for the simulated campus.
func DefaultConfig() Config {
	return Config{
		DaylightLux:    3000,
		DimLux:         800,
		MagVarIndoorUT: 1.8,
		CellDropDB:     9,
		Votes:          2,
	}
}

// Detector is the stateful indoor/outdoor classifier.
type Detector struct {
	cfg Config

	state        State
	pendingState State
	pendingVotes int

	cellBaseline float64
	haveBaseline bool
}

// New creates a detector.
func New(cfg Config) *Detector {
	if cfg.Votes <= 0 {
		cfg.Votes = 1
	}
	return &Detector{cfg: cfg}
}

// State returns the current classification.
func (d *Detector) State() State { return d.state }

// Reset clears the detector's runtime state — classification,
// hysteresis votes, and the learned cellular baseline — while keeping
// its configuration, so one detector can be reused across walks.
func (d *Detector) Reset() {
	d.state = Unknown
	d.pendingState = Unknown
	d.pendingVotes = 0
	d.cellBaseline = 0
	d.haveBaseline = false
}

// Memento is the detector's mutable runtime state, exported for
// session migration. Configuration is not included — the restoring
// detector keeps its own thresholds.
type Memento struct {
	State        State
	PendingState State
	PendingVotes int
	CellBaseline float64
	HaveBaseline bool
}

// Export captures the runtime state.
func (d *Detector) Export() Memento {
	return Memento{
		State:        d.state,
		PendingState: d.pendingState,
		PendingVotes: d.pendingVotes,
		CellBaseline: d.cellBaseline,
		HaveBaseline: d.haveBaseline,
	}
}

// Restore installs previously exported runtime state.
func (d *Detector) Restore(m Memento) {
	d.state = m.State
	d.pendingState = m.PendingState
	d.pendingVotes = m.PendingVotes
	d.cellBaseline = m.CellBaseline
	d.haveBaseline = m.HaveBaseline
}

// Update classifies one epoch from the light reading, magnetic variance
// and cellular scan, and returns the (hysteresis-filtered) state.
func (d *Detector) Update(lightLux, magVarUT float64, cell rf.Vector) State {
	meanCell := 0.0
	if len(cell) > 0 {
		for _, o := range cell {
			meanCell += o.RSSI
		}
		meanCell /= float64(len(cell))
	}

	indoorScore := 0
	outdoorScore := 0

	switch {
	case lightLux >= d.cfg.DaylightLux:
		outdoorScore += 2
	case lightLux <= d.cfg.DimLux:
		indoorScore += 2
	}
	if magVarUT >= d.cfg.MagVarIndoorUT {
		indoorScore++
	} else {
		outdoorScore++
	}
	if len(cell) > 0 {
		if d.haveBaseline && meanCell < d.cellBaseline-d.cfg.CellDropDB {
			indoorScore++
		}
		// Track the outdoor cellular baseline with a slow EWMA, updated
		// only when the evidence says outdoors.
		if outdoorScore > indoorScore {
			if !d.haveBaseline {
				d.cellBaseline = meanCell
				d.haveBaseline = true
			} else {
				d.cellBaseline = 0.95*d.cellBaseline + 0.05*meanCell
			}
		}
	}

	vote := Unknown
	switch {
	case indoorScore > outdoorScore:
		vote = Indoor
	case outdoorScore > indoorScore:
		vote = Outdoor
	}
	if vote == Unknown {
		return d.state
	}
	if d.state == Unknown {
		d.state = vote
		d.pendingVotes = 0
		return d.state
	}
	if vote == d.state {
		d.pendingVotes = 0
		return d.state
	}
	if vote == d.pendingState {
		d.pendingVotes++
	} else {
		d.pendingState = vote
		d.pendingVotes = 1
	}
	if d.pendingVotes >= d.cfg.Votes {
		d.state = vote
		d.pendingVotes = 0
	}
	return d.state
}
