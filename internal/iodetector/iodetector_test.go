package iodetector

import (
	"testing"

	"repro/internal/rf"
)

func cellScan(rssi float64) rf.Vector {
	return rf.Vector{{ID: "t1", RSSI: rssi}, {ID: "t2", RSSI: rssi - 5}}
}

func TestClassifiesObviousCases(t *testing.T) {
	d := New(DefaultConfig())
	if got := d.Update(11000, 0.5, cellScan(-60)); got != Outdoor {
		t.Errorf("bright daylight = %v", got)
	}
	d2 := New(DefaultConfig())
	if got := d2.Update(250, 3.0, cellScan(-75)); got != Indoor {
		t.Errorf("dim + magnetic = %v", got)
	}
}

func TestHysteresis(t *testing.T) {
	d := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		d.Update(11000, 0.5, cellScan(-60))
	}
	if d.State() != Outdoor {
		t.Fatal("should start outdoor")
	}
	// One indoor-looking epoch must not flip the state (votes = 2).
	if got := d.Update(250, 3.0, cellScan(-75)); got != Outdoor {
		t.Errorf("single vote flipped state to %v", got)
	}
	// Sustained indoor evidence flips it.
	d.Update(250, 3.0, cellScan(-75))
	if got := d.Update(250, 3.0, cellScan(-75)); got != Indoor {
		t.Errorf("sustained evidence did not flip: %v", got)
	}
}

func TestCellularDropVotesIndoor(t *testing.T) {
	d := New(DefaultConfig())
	// Build an outdoor baseline.
	for i := 0; i < 10; i++ {
		d.Update(11000, 0.5, cellScan(-58))
	}
	// Ambiguous light (semi-open corridor) but big cellular drop and
	// magnetic disturbance → indoor.
	for i := 0; i < 3; i++ {
		d.Update(1500, 2.5, cellScan(-72))
	}
	if d.State() != Indoor {
		t.Errorf("corridor should classify indoor, got %v", d.State())
	}
}

func TestUnknownStartSnapsOnFirstEvidence(t *testing.T) {
	d := New(DefaultConfig())
	if d.State() != Unknown {
		t.Error("fresh detector should be Unknown")
	}
	// The very first vote snaps the state without hysteresis — a
	// localization system cannot wait for consensus before its first
	// estimate.
	if got := d.Update(200, 3.0, cellScan(-80)); got != Indoor {
		t.Errorf("first clear evidence = %v", got)
	}
}

func TestStateString(t *testing.T) {
	if Indoor.String() != "indoor" || Outdoor.String() != "outdoor" || Unknown.String() != "unknown" {
		t.Error("State strings wrong")
	}
}

func TestVotesDefaulted(t *testing.T) {
	d := New(Config{}) // zero votes must not panic or flip instantly
	d.Update(11000, 0.1, cellScan(-60))
	if d.State() != Outdoor {
		t.Error("zero-config detector should still classify")
	}
}

func TestResetKeepsConfigClearsState(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Votes = 3 // non-default: must survive Reset
	d := New(cfg)
	// Establish an outdoor state and a learned cellular baseline.
	for i := 0; i < 4; i++ {
		d.Update(11000, 0.3, cellScan(-55))
	}
	if d.State() != Outdoor || !d.haveBaseline {
		t.Fatalf("setup: state=%v baseline=%v", d.State(), d.haveBaseline)
	}
	d.Reset()
	if d.State() != Unknown {
		t.Errorf("Reset left state %v, want unknown", d.State())
	}
	if d.haveBaseline || d.cellBaseline != 0 || d.pendingVotes != 0 || d.pendingState != Unknown {
		t.Error("Reset left runtime state behind")
	}
	if d.cfg.Votes != 3 {
		t.Errorf("Reset changed config: votes = %d, want 3", d.cfg.Votes)
	}
	// A fresh walk classifies normally.
	if got := d.Update(250, 3.0, cellScan(-75)); got != Indoor {
		t.Errorf("post-reset classification = %v, want indoor", got)
	}
}
