package noise

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUniformDeterministic(t *testing.T) {
	f := Field{Seed: 42}
	a := f.Uniform(1, 2, 3)
	b := f.Uniform(1, 2, 3)
	if a != b {
		t.Error("same keys must give same value")
	}
	if f.Uniform(1, 2, 4) == a {
		t.Error("different keys should (almost surely) differ")
	}
	g := Field{Seed: 43}
	if g.Uniform(1, 2, 3) == a {
		t.Error("different seeds should (almost surely) differ")
	}
}

func TestUniformRangeProperty(t *testing.T) {
	f := Field{Seed: 7}
	fn := func(a, b, c int64) bool {
		u := f.Uniform(a, b, c)
		return u >= 0 && u < 1
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestUniformDistribution(t *testing.T) {
	f := Field{Seed: 9}
	var sum float64
	const n = 10000
	for i := int64(0); i < n; i++ {
		sum += f.Uniform(i)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestGaussianMoments(t *testing.T) {
	f := Field{Seed: 11}
	const n = 20000
	var sum, sumSq float64
	for i := int64(0); i < n; i++ {
		g := f.Gaussian(i)
		sum += g
		sumSq += g * g
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestGaussianFinite(t *testing.T) {
	f := Field{Seed: 13}
	fn := func(a, b int64) bool {
		g := f.Gaussian(a, b)
		return !math.IsNaN(g) && !math.IsInf(g, 0)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestStringKeyStable(t *testing.T) {
	if StringKey("AP01") != StringKey("AP01") {
		t.Error("StringKey must be stable")
	}
	if StringKey("AP01") == StringKey("AP02") {
		t.Error("different strings should differ")
	}
}

func TestQuantizeM(t *testing.T) {
	cases := []struct {
		v, cell float64
		want    int64
	}{
		{0, 3, 0}, {2.9, 3, 0}, {3, 3, 1}, {-0.1, 3, -1}, {-3, 3, -1}, {-3.1, 3, -2},
	}
	for _, c := range cases {
		if got := QuantizeM(c.v, c.cell); got != c.want {
			t.Errorf("QuantizeM(%v,%v) = %d want %d", c.v, c.cell, got, c.want)
		}
	}
}
