// Package noise provides deterministic pseudo-random fields keyed by
// discrete coordinates. The simulator uses them for quantities that must
// be a *stable function of position* rather than a fresh random draw —
// most importantly RF shadow fading (so the offline fingerprint survey
// and later online measurements observe a consistent radio map) and
// per-satellite sky visibility.
package noise

import (
	"hash/fnv"
	"math"
)

// Field is a deterministic noise field derived from a seed. The zero
// value is a usable field with seed 0.
type Field struct {
	Seed uint64
}

// hash mixes the field seed with the given keys into a uint64.
func (f Field) hash(keys ...int64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		_, _ = h.Write(buf[:])
	}
	put(f.Seed)
	for _, k := range keys {
		put(uint64(k))
	}
	return h.Sum64()
}

// Uniform returns a deterministic value in [0, 1) for the given keys.
func (f Field) Uniform(keys ...int64) float64 {
	// Use the top 53 bits for a uniform double.
	return float64(f.hash(keys...)>>11) / float64(1<<53)
}

// Gaussian returns a deterministic standard-normal value for the given
// keys, via the inverse-CDF of a hashed uniform.
func (f Field) Gaussian(keys ...int64) float64 {
	u := f.Uniform(keys...)
	// Clamp away from 0/1 to keep the quantile finite.
	if u < 1e-12 {
		u = 1e-12
	}
	if u > 1-1e-12 {
		u = 1 - 1e-12
	}
	return invNorm(u)
}

// StringKey converts a string identifier into an int64 key for use with
// Uniform/Gaussian, so noise can be keyed on e.g. an AP ID.
func StringKey(s string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return int64(h.Sum64())
}

// QuantizeM quantizes a coordinate (meters) to a grid cell index with the
// given cell size, for spatially-correlated fields.
func QuantizeM(v, cell float64) int64 {
	return int64(math.Floor(v / cell))
}

// invNorm is the Acklam inverse-normal approximation (duplicated from
// stat to keep noise dependency-free at the bottom of the package graph).
func invNorm(p float64) float64 {
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}
