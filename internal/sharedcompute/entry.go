package sharedcompute

import (
	"math"
	"sync"

	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/rf"
)

// Entry is the shared-compute state for one pinned map snapshot. All
// cached values are canonical — functions of (snapshot, cell,
// observation, scale) only — so concurrent fills write identical bits
// and readers never observe a value another session couldn't have
// computed itself.
type Entry struct {
	cache *Cache
	snap  *mapstore.Snapshot
	name  string
	refs  int // guarded by cache.mu
	cellM float64

	posOnce sync.Once
	pos     []geo.Point

	repMu sync.RWMutex
	reps  map[Cell]int32 // cell → representative fingerprint index (-1: none)

	rowMu sync.RWMutex
	rows  map[uint64]map[string]*LikRow // Float64bits(scale) → obs key → row
}

// Snapshot returns the pinned snapshot this entry is keyed by.
func (e *Entry) Snapshot() *mapstore.Snapshot { return e.snap }

// CellM returns the likelihood-grid cell size (LikCellM of the
// snapshot).
func (e *Entry) CellM() float64 { return e.cellM }

// Positions returns the snapshot's state positions, materialized once
// and shared by every session's HMM tracker. The slice is immutable by
// contract: hand it to hmm.NewShared, never mutate it.
func (e *Entry) Positions() []geo.Point {
	e.posOnce.Do(func() { e.pos = e.snap.Positions() })
	e.cache.trackers.Add(1)
	e.cache.metTrackers.Inc()
	return e.pos
}

// NeighborLists returns the snapshot's HMM neighbor lists for the
// given transition radius. The snapshot itself memoizes the build per
// radius, so all sessions already share one [][]int32; routing the
// call through the entry keeps the shared-compute counters honest
// about who serves tracker rebuilds.
func (e *Entry) NeighborLists(radius float64) [][]int32 {
	return e.snap.NeighborLists(radius)
}

// RepVec returns the vector of the cell's representative fingerprint —
// the physically nearest point to the cell center, resolved once per
// (snapshot, cell) and shared across observations and sessions. ok is
// false when the snapshot is empty, matching VectorAt's behavior.
func (e *Entry) RepVec(cell Cell) (rf.Vector, bool) {
	idx, ok := e.repIdx(cell)
	if !ok {
		return nil, false
	}
	return e.snap.At(int(idx)).Vec, true
}

// repIdx resolves and caches the representative index for a cell.
// Racing resolvers compute the same deterministic index (the ring
// search is a pure function of the snapshot), so last-write-wins is
// safe.
func (e *Entry) repIdx(cell Cell) (int32, bool) {
	e.repMu.RLock()
	idx, ok := e.reps[cell]
	e.repMu.RUnlock()
	if ok {
		return idx, idx >= 0
	}
	i, found := e.snap.NearestIndexAt(cell.Center(e.cellM))
	idx = int32(i)
	if !found {
		idx = -1
	}
	e.repMu.Lock()
	if e.reps == nil {
		e.reps = make(map[Cell]int32, 64)
	}
	e.reps[cell] = idx
	e.repMu.Unlock()
	return idx, idx >= 0
}

// Row returns the shared likelihood row for (scale, observation),
// creating an empty one on first use. key is the
// fingerprint.AppendObsKey encoding, passed as bytes so the
// steady-state path (row already exists) performs no allocation.
func (e *Entry) Row(scale float64, key []byte) *LikRow {
	bits := math.Float64bits(scale)
	e.rowMu.RLock()
	var r *LikRow
	if inner := e.rows[bits]; inner != nil {
		r = inner[string(key)]
	}
	e.rowMu.RUnlock()
	if r != nil {
		return r
	}
	return e.makeRow(bits, string(key))
}

// rowString is Row for callers that already hold a string key (the
// prewarm path).
func (e *Entry) rowString(scale float64, key string) *LikRow {
	bits := math.Float64bits(scale)
	e.rowMu.RLock()
	var r *LikRow
	if inner := e.rows[bits]; inner != nil {
		r = inner[key]
	}
	e.rowMu.RUnlock()
	if r != nil {
		return r
	}
	return e.makeRow(bits, key)
}

func (e *Entry) makeRow(bits uint64, key string) *LikRow {
	e.rowMu.Lock()
	defer e.rowMu.Unlock()
	inner := e.rows[bits]
	if inner == nil {
		if e.rows == nil {
			e.rows = make(map[uint64]map[string]*LikRow, 2)
		}
		inner = make(map[string]*LikRow)
		e.rows[bits] = inner
	}
	r := inner[key]
	if r == nil {
		r = &LikRow{cache: e.cache, cells: make(map[Cell]float64, 32)}
		inner[key] = r
	}
	return r
}

// LikRow holds the shared per-cell likelihoods of one (snapshot,
// scale, observation) triple — exactly the values a session's private
// likMemo would hold for the same pass, minus any session dependence.
type LikRow struct {
	cache  *Cache
	mu     sync.RWMutex
	cells  map[Cell]float64
	warmed bool
}

// Lookup returns the shared likelihood for one cell. A miss means no
// session (and no prewarm) has touched the cell yet: the caller
// computes locally and Publishes.
func (r *LikRow) Lookup(cell Cell) (float64, bool) {
	r.mu.RLock()
	v, ok := r.cells[cell]
	r.mu.RUnlock()
	if ok {
		r.cache.likHits.Add(1)
		r.cache.metHits.Inc()
	} else {
		r.cache.likMisses.Add(1)
		r.cache.metMisses.Inc()
	}
	return v, ok
}

// Publish stores a locally computed likelihood for other sessions.
// Values are canonical, so concurrent publishers of the same cell
// write identical bits and either winning is safe.
func (r *LikRow) Publish(cell Cell, v float64) {
	r.mu.Lock()
	r.cells[cell] = v
	r.mu.Unlock()
}

// markWarming claims the row for prewarming; only the first caller per
// row gets true, so repeated batches containing the same observation
// don't redo the kernel work.
func (r *LikRow) markWarming() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.warmed {
		return false
	}
	r.warmed = true
	return true
}

// PrewarmFusion seeds likelihood rows for a batch's unique WiFi
// observations before sessions step: for each row not yet warmed, the
// cells within warmRadius of the observation's best-matching
// fingerprint (argmin of its distance column — a heuristic anchor
// only; the values themselves stay canonical) are evaluated through
// the snapshot's fused CellLikelihoodsBatch kernel in one rep-major
// pass and published. obs/keys/cols are parallel: the unique
// observations, their AppendObsKey encodings, and their
// AppendDistancesBatch columns. Returns the number of rows warmed.
func (e *Entry) PrewarmFusion(obs []rf.Vector, keys []string, cols [][]float64, scale float64) int {
	const warmRadius = 2
	var warmObs []rf.Vector
	var warmRows []*LikRow
	cellSet := make(map[Cell]struct{}, 64)
	for i, o := range obs {
		if len(cols[i]) == 0 {
			continue
		}
		r := e.rowString(scale, keys[i])
		if !r.markWarming() {
			continue
		}
		warmObs = append(warmObs, o)
		warmRows = append(warmRows, r)
		best := 0
		for j, d := range cols[i] {
			if d < cols[i][best] {
				best = j
			}
		}
		c0 := CellFor(e.snap.At(best).Pos, e.cellM)
		for dx := int32(-warmRadius); dx <= warmRadius; dx++ {
			for dy := int32(-warmRadius); dy <= warmRadius; dy++ {
				cellSet[Cell{X: c0.X + dx, Y: c0.Y + dy}] = struct{}{}
			}
		}
	}
	if len(warmRows) == 0 {
		return 0
	}
	cells := make([]Cell, 0, len(cellSet))
	for c := range cellSet {
		cells = append(cells, c)
	}
	reps := make([]int32, len(cells))
	for k, c := range cells {
		idx, ok := e.repIdx(c)
		if !ok {
			idx = -1
		}
		reps[k] = idx
	}
	lik := e.snap.CellLikelihoodsBatch(warmObs, reps, scale)
	for qi, r := range warmRows {
		r.mu.Lock()
		for k, c := range cells {
			if _, ok := r.cells[c]; !ok {
				r.cells[c] = lik[qi][k]
			}
		}
		r.mu.Unlock()
	}
	e.cache.rowsWarmed.Add(int64(len(warmRows)))
	e.cache.metWarmed.Add(int64(len(warmRows)))
	return len(warmRows)
}
