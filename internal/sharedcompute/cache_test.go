package sharedcompute_test

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/rf"
	"repro/internal/sharedcompute"
)

// testDB builds a small gridded radio map with synthetic path-loss
// vectors, mirroring the mapstore test fixture.
func testDB(n, nTx int, seed int64) *fingerprint.DB {
	rnd := rand.New(rand.NewSource(seed))
	spacing := 3.0
	side := int(math.Ceil(math.Sqrt(float64(n))))
	type tx struct {
		id  string
		pos geo.Point
		p0  float64
	}
	txs := make([]tx, nTx)
	extent := float64(side) * spacing
	for t := range txs {
		txs[t] = tx{
			id:  fmt.Sprintf("ap-%03d", t),
			pos: geo.Pt(rnd.Float64()*extent, rnd.Float64()*extent),
			p0:  -30 - rnd.Float64()*10,
		}
	}
	db := &fingerprint.DB{SpacingM: spacing, Floor: -98}
	for i := 0; i < n; i++ {
		gx, gy := i%side, i/side
		p := geo.Pt(
			(float64(gx)+0.5)*spacing+rnd.NormFloat64()*0.3,
			(float64(gy)+0.5)*spacing+rnd.NormFloat64()*0.3,
		)
		var vec rf.Vector
		for _, t := range txs {
			d := t.pos.Dist(p)
			rssi := t.p0 - 20*math.Log10(math.Max(d, 1)) + rnd.NormFloat64()*2
			if rssi < -90 {
				continue
			}
			vec = append(vec, rf.Obs{ID: t.id, RSSI: rssi})
		}
		if len(vec) < 2 {
			vec = rf.Vector{
				{ID: txs[0].id, RSSI: -89},
				{ID: txs[1].id, RSSI: -89.5},
			}
		}
		db.Points = append(db.Points, fingerprint.Fingerprint{Pos: p, Vec: vec})
	}
	return db
}

func randObs(db *fingerprint.DB, rnd *rand.Rand) rf.Vector {
	base := db.Points[rnd.Intn(len(db.Points))].Vec
	obs := make(rf.Vector, 0, len(base))
	for _, o := range base {
		obs = append(obs, rf.Obs{ID: o.ID, RSSI: o.RSSI + rnd.NormFloat64()*3})
	}
	return obs
}

// TestRetainReleaseEvict pins the refcounted lifecycle: entries are
// built on first retain, shared on re-retain, and evicted — invisible
// to Get — once the last pin is released.
func TestRetainReleaseEvict(t *testing.T) {
	db := testDB(64, 6, 1)
	snap := mapstore.Build(db, 7, 0, nil)
	c := sharedcompute.NewCache(nil)

	e1 := c.Retain(snap, "wifi")
	if e1 == nil {
		t.Fatal("Retain returned nil entry")
	}
	e2 := c.Retain(snap, "wifi")
	if e2 != e1 {
		t.Fatal("second Retain built a new entry for the same snapshot")
	}
	if got := c.Get(snap); got != e1 {
		t.Fatalf("Get = %p, want %p", got, e1)
	}
	st := c.Stats()
	if st.Built != 1 || st.Resident != 1 || st.Evicted != 0 {
		t.Fatalf("after double retain: %+v", st)
	}
	if v := st.ResidentVersions["wifi"]; v != 7 {
		t.Fatalf("ResidentVersions[wifi] = %d, want 7", v)
	}

	c.Release(e1)
	if c.Get(snap) == nil {
		t.Fatal("entry evicted while still pinned")
	}
	c.Release(e2)
	if c.Get(snap) != nil {
		t.Fatal("entry survived its last release")
	}
	st = c.Stats()
	if st.Evicted != 1 || st.Resident != 0 {
		t.Fatalf("after final release: %+v", st)
	}

	// A fresh retain of the same snapshot rebuilds from scratch.
	e3 := c.Retain(snap, "wifi")
	if e3 == nil || c.Stats().Built != 2 {
		t.Fatalf("re-retain did not rebuild: %+v", c.Stats())
	}
	c.Release(e3)

	// Nil-safety contract used throughout the offload layer.
	var nilCache *sharedcompute.Cache
	if nilCache.Retain(snap, "wifi") != nil || nilCache.Get(snap) != nil {
		t.Fatal("nil cache must be inert")
	}
	nilCache.Release(nil)
	if c.Retain(nil, "wifi") != nil {
		t.Fatal("nil snapshot must not be retained")
	}
}

// TestRepVecMatchesVectorAt pins the canonical-representative
// contract: the entry's cached per-cell representative must be exactly
// the fingerprint VectorAt resolves at the cell center, so shared and
// private likelihoods see the same vector bit for bit.
func TestRepVecMatchesVectorAt(t *testing.T) {
	db := testDB(100, 8, 2)
	snap := mapstore.Build(db, 1, 0, nil)
	c := sharedcompute.NewCache(nil)
	e := c.Retain(snap, "wifi")
	defer c.Release(e)

	cellM := e.CellM()
	if want := sharedcompute.LikCellM(snap); cellM != want {
		t.Fatalf("CellM = %v, want LikCellM = %v", cellM, want)
	}
	for x := int32(-2); x < 25; x += 3 {
		for y := int32(-2); y < 25; y += 3 {
			cell := sharedcompute.Cell{X: x, Y: y}
			vec, ok := e.RepVec(cell)
			wantVec, _, wantOK := snap.VectorAt(cell.Center(cellM))
			if ok != wantOK {
				t.Fatalf("cell %v: ok=%v, VectorAt ok=%v", cell, ok, wantOK)
			}
			if !ok {
				continue
			}
			if len(vec) != len(wantVec) {
				t.Fatalf("cell %v: vec len %d != %d", cell, len(vec), len(wantVec))
			}
			for i := range vec {
				if vec[i] != wantVec[i] {
					t.Fatalf("cell %v obs %d: %+v != %+v", cell, i, vec[i], wantVec[i])
				}
			}
		}
	}
}

// TestBatchKernelMatchesPrivateFormula pins the fused likelihood
// kernel to the exact private expression: Likelihood(rf.Distance(obs,
// rep.Vec, floor), scale), Float64bits-identical, including the
// unknown-transmitter fallback and the rep<0 neutral value.
func TestBatchKernelMatchesPrivateFormula(t *testing.T) {
	db := testDB(120, 10, 3)
	snap := mapstore.Build(db, 1, 0, nil)
	rnd := rand.New(rand.NewSource(9))

	obs := make([]rf.Vector, 0, 8)
	for i := 0; i < 6; i++ {
		obs = append(obs, randObs(db, rnd))
	}
	// Unknown transmitter forces the intern-fallback path.
	obs = append(obs, rf.Vector{{ID: "ghost-ap", RSSI: -55}, {ID: "ap-001", RSSI: -60}})

	reps := []int32{0, 3, 17, 55, int32(len(db.Points) - 1), -1}
	const scale = 15.0
	got := snap.CellLikelihoodsBatch(obs, reps, scale)
	for qi, o := range obs {
		for k, rep := range reps {
			want := 1.0
			if rep >= 0 {
				d := rf.Distance(o, snap.At(int(rep)).Vec, db.Floor)
				want = sharedcompute.Likelihood(d, scale)
			}
			if math.Float64bits(got[qi][k]) != math.Float64bits(want) {
				t.Fatalf("obs %d rep %d: batch %v != private %v", qi, rep, got[qi][k], want)
			}
		}
	}
}

// TestRowLookupPublish pins row semantics and the hit/miss counters.
func TestRowLookupPublish(t *testing.T) {
	db := testDB(64, 6, 4)
	snap := mapstore.Build(db, 1, 0, nil)
	c := sharedcompute.NewCache(nil)
	e := c.Retain(snap, "wifi")
	defer c.Release(e)

	obs := db.Points[0].Vec
	key := fingerprint.ObsKey(obs)
	row := e.Row(15, []byte(key))
	if again := e.Row(15, []byte(key)); again != row {
		t.Fatal("same (scale, obs) must map to one shared row")
	}
	if other := e.Row(12, []byte(key)); other == row {
		t.Fatal("different scales must not share a row")
	}

	cell := sharedcompute.Cell{X: 1, Y: 2}
	if _, ok := row.Lookup(cell); ok {
		t.Fatal("lookup hit before any publish")
	}
	row.Publish(cell, 0.25)
	if v, ok := row.Lookup(cell); !ok || v != 0.25 {
		t.Fatalf("after publish: v=%v ok=%v", v, ok)
	}
	st := c.Stats()
	if st.LikHits != 1 || st.LikMisses != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestPrewarmFusion pins the prewarm contract: seeded cells carry the
// canonical likelihood values, and a row is only warmed once.
func TestPrewarmFusion(t *testing.T) {
	db := testDB(100, 8, 5)
	snap := mapstore.Build(db, 1, 0, nil)
	c := sharedcompute.NewCache(nil)
	e := c.Retain(snap, "wifi")
	defer c.Release(e)

	rnd := rand.New(rand.NewSource(11))
	obs := []rf.Vector{randObs(db, rnd), randObs(db, rnd)}
	keys := []string{fingerprint.ObsKey(obs[0]), fingerprint.ObsKey(obs[1])}
	cols := snap.AppendDistancesBatch(obs)

	const scale = 15.0
	if n := e.PrewarmFusion(obs, keys, cols, scale); n != 2 {
		t.Fatalf("first prewarm warmed %d rows, want 2", n)
	}
	if n := e.PrewarmFusion(obs, keys, cols, scale); n != 0 {
		t.Fatalf("second prewarm redid %d rows, want 0", n)
	}
	if st := c.Stats(); st.RowsWarmed != 2 {
		t.Fatalf("RowsWarmed = %d, want 2", st.RowsWarmed)
	}

	// Every seeded cell must hold exactly the private formula's value.
	for i, o := range obs {
		row := e.Row(scale, []byte(keys[i]))
		best := 0
		for j, d := range cols[i] {
			if d < cols[i][best] {
				best = j
			}
		}
		c0 := sharedcompute.CellFor(snap.At(best).Pos, e.CellM())
		checked := 0
		for dx := int32(-2); dx <= 2; dx++ {
			for dy := int32(-2); dy <= 2; dy++ {
				cell := sharedcompute.Cell{X: c0.X + dx, Y: c0.Y + dy}
				v, ok := row.Lookup(cell)
				if !ok {
					continue
				}
				want := 1.0
				if vec, okRep := e.RepVec(cell); okRep {
					want = sharedcompute.Likelihood(rf.Distance(o, vec, db.Floor), scale)
				}
				if math.Float64bits(v) != math.Float64bits(want) {
					t.Fatalf("obs %d cell %v: warmed %v != private %v", i, cell, v, want)
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("obs %d: prewarm seeded no cells", i)
		}
	}
}

// TestConcurrentSwapHammer races readers (Get, Row, Lookup, Publish,
// Positions, RepVec) against a writer that keeps swapping which
// snapshot is pinned — the shape of sessions stepping while compaction
// rebuilds land. Run under -race this pins the lock-free index and
// the copy-on-write swap discipline.
func TestConcurrentSwapHammer(t *testing.T) {
	db := testDB(80, 6, 6)
	snaps := []*mapstore.Snapshot{
		mapstore.Build(db, 1, 0, nil),
		mapstore.Build(db, 2, 0, nil),
		mapstore.Build(db, 3, 0, nil),
	}
	c := sharedcompute.NewCache(nil)
	obs := db.Points[3].Vec
	key := fingerprint.ObsKey(obs)

	var readers, swapper sync.WaitGroup
	stop := make(chan struct{})
	// Swapper: retain next, release previous, round-robin until the
	// readers are done.
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		cur := c.Retain(snaps[0], "wifi")
		for i := 1; ; i++ {
			select {
			case <-stop:
				c.Release(cur)
				return
			default:
			}
			next := c.Retain(snaps[i%len(snaps)], "wifi")
			c.Release(cur)
			cur = next
		}
	}()
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func(g int) {
			defer readers.Done()
			for i := 0; i < 3000; i++ {
				snap := snaps[(g+i)%len(snaps)]
				e := c.Get(snap)
				if e == nil {
					continue // unpinned at this instant: private fallback
				}
				row := e.Row(15, []byte(key))
				cell := sharedcompute.Cell{X: int32(i % 7), Y: int32(g)}
				if v, ok := row.Lookup(cell); ok {
					var want float64 = 1.0
					if vec, okRep := e.RepVec(cell); okRep {
						want = sharedcompute.Likelihood(rf.Distance(obs, vec, db.Floor), 15)
					}
					if math.Float64bits(v) != math.Float64bits(want) {
						t.Errorf("cell %v: shared %v != canonical %v", cell, v, want)
						return
					}
				} else {
					var v float64 = 1.0
					if vec, okRep := e.RepVec(cell); okRep {
						v = sharedcompute.Likelihood(rf.Distance(obs, vec, db.Floor), 15)
					}
					row.Publish(cell, v)
				}
				_ = e.Positions()
			}
		}(g)
	}
	readers.Wait()
	close(stop)
	swapper.Wait()

	if st := c.Stats(); st.Resident != 0 {
		t.Fatalf("swapper exit left %d resident entries", st.Resident)
	}
}
