// Package sharedcompute amortizes per-snapshot scheme work across
// every session of an offload server. UniLoc's premise is that many
// phones run the same schemes against the same radio map: at 64+
// concurrent sessions, each one privately recomputing RSSI likelihood
// memos, HMM state lists, and neighbor graphs against the *same*
// pinned mapstore.Snapshot wastes 63/64ths of that work. This package
// holds one immutable Entry per live snapshot, read lock-free by every
// session via an atomic.Pointer index, containing:
//
//   - per-(scale, observation) RSSI likelihood rows — the canonical
//     per-cell values Fusion.weightByRSSI memoizes, computed once and
//     shared (LikRow);
//   - the snapshot's state positions and HMM neighbor lists, so
//     trackers rebuild by adopting shared immutable slices instead of
//     copying and rescanning (Positions, NeighborLists);
//   - per-cell representative fingerprint indices, resolving each
//     likelihood-grid cell's nearest fingerprint once (RepVec).
//
// Every cached value is *canonical*: it depends only on (snapshot,
// cell, observation, scale), never on any session's private state, so
// one session's computation is bit-for-bit valid for all others —
// shared-compute results are Float64bits-identical to private compute
// by construction, and two sessions racing to fill the same slot write
// identical bits. On any miss (snapshot not pinned, row not yet
// warmed) consumers fall back to local computation of the exact same
// float sequence, so correctness never depends on the cache's state.
//
// Lifecycle: the session manager Retains one entry per map store when
// a session opens, migrates pins when a compaction swaps the snapshot
// (RepinShared at epoch/batch boundaries), and Releases at close; the
// last release evicts the entry, bounding residency to snapshots some
// session actually pins. See DESIGN.md §16.
package sharedcompute

import (
	"sync"
	"sync/atomic"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/telemetry"
)

// Cell aliases the mapstore likelihood-grid cell so scheme code can
// key memos without importing mapstore directly.
type Cell = mapstore.LikCell

// CellFor returns the likelihood-grid cell containing p.
func CellFor(p geo.Point, cellM float64) Cell { return mapstore.LikCellFor(p, cellM) }

// Likelihood is the canonical RSSI likelihood expression
// (mapstore.CellLikelihood) re-exported for scheme code.
func Likelihood(d, scale float64) float64 { return mapstore.CellLikelihood(d, scale) }

// LikCellM returns the fusion likelihood-grid cell size for a view:
// half the survey spacing, with a 1.5 m fallback for maps that don't
// report spacing. Both the private memo and the shared rows grid with
// this one function, so their cells always coincide.
func LikCellM(view fingerprint.Reader) float64 {
	c := view.Spacing() / 2
	if c <= 0 {
		c = 1.5
	}
	return c
}

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	// LikHits / LikMisses count per-cell likelihood lookups served
	// from vs missed by shared rows.
	LikHits   int64
	LikMisses int64
	// RowsWarmed counts likelihood rows seeded by the batch
	// scheduler's fused kernel ahead of session stepping.
	RowsWarmed int64
	// Trackers counts HMM tracker rebuilds served from shared
	// positions/neighbor state.
	Trackers int64
	// Built / Evicted count entry lifecycle events; Resident is the
	// number of entries currently pinned.
	Built    int64
	Evicted  int64
	Resident int
	// ResidentVersions maps store name to the newest resident snapshot
	// version for that store.
	ResidentVersions map[string]uint64
}

// Cache is the cross-session shared-compute cache: an immutable index
// from pinned snapshot to Entry, swapped copy-on-write under mu and
// read lock-free through an atomic.Pointer.
type Cache struct {
	idx atomic.Pointer[index]
	mu  sync.Mutex // guards index swaps and Entry refcounts

	reg *telemetry.Registry

	likHits    atomic.Int64
	likMisses  atomic.Int64
	rowsWarmed atomic.Int64
	trackers   atomic.Int64
	built      atomic.Int64
	evicted    atomic.Int64

	metHits     *telemetry.Counter
	metMisses   *telemetry.Counter
	metWarmed   *telemetry.Counter
	metTrackers *telemetry.Counter
	metBuilt    *telemetry.Counter
	metEvicted  *telemetry.Counter
	metResident *telemetry.Gauge
	verGauges   map[string]*telemetry.Gauge // per store name, under mu
}

// index is the immutable snapshot→entry map; every mutation installs a
// fresh copy.
type index struct {
	entries map[*mapstore.Snapshot]*Entry
}

// NewCache builds a cache registering its instruments on reg (nil reg
// = no metrics, counters still work).
func NewCache(reg *telemetry.Registry) *Cache {
	return &Cache{
		reg:         reg,
		metHits:     reg.Counter("uniloc_sharedcompute_hits_total", "Per-cell likelihood lookups served from shared snapshot rows."),
		metMisses:   reg.Counter("uniloc_sharedcompute_misses_total", "Per-cell likelihood lookups that fell back to local compute."),
		metWarmed:   reg.Counter("uniloc_sharedcompute_rows_warmed_total", "Likelihood rows prewarmed by the batch scheduler's fused kernel."),
		metTrackers: reg.Counter("uniloc_sharedcompute_tracker_shares_total", "HMM tracker rebuilds served from shared positions and neighbor lists."),
		metBuilt:    reg.Counter("uniloc_sharedcompute_entries_built_total", "Shared-compute entries built (one per newly pinned snapshot)."),
		metEvicted:  reg.Counter("uniloc_sharedcompute_entries_evicted_total", "Shared-compute entries evicted after their last session pin was released."),
		metResident: reg.Gauge("uniloc_sharedcompute_resident_entries", "Shared-compute entries currently pinned by at least one session."),
		verGauges:   make(map[string]*telemetry.Gauge),
	}
}

// Retain pins snap's entry for one session, building it on first
// retain. name labels the entry with its store (for metrics and
// Stats). Callers must pair every Retain with exactly one Release.
// Nil-safe: a nil cache or snapshot returns nil.
func (c *Cache) Retain(snap *mapstore.Snapshot, name string) *Entry {
	if c == nil || snap == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cur := c.idx.Load()
	if cur != nil {
		if e := cur.entries[snap]; e != nil {
			e.refs++
			return e
		}
	}
	e := &Entry{cache: c, snap: snap, name: name, refs: 1, cellM: LikCellM(snap)}
	next := &index{entries: make(map[*mapstore.Snapshot]*Entry, 1+lenIdx(cur))}
	if cur != nil {
		for k, v := range cur.entries {
			next.entries[k] = v
		}
	}
	next.entries[snap] = e
	c.idx.Store(next)
	c.built.Add(1)
	c.metBuilt.Inc()
	c.metResident.Set(float64(len(next.entries)))
	c.versionGauge(name).Set(float64(snap.Version()))
	return e
}

// Release drops one pin. The last release evicts the entry from the
// index; in-flight readers holding the entry pointer finish safely
// (entries are immutable), new Gets miss and compute privately.
func (c *Cache) Release(e *Entry) {
	if c == nil || e == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e.refs--
	if e.refs > 0 {
		return
	}
	cur := c.idx.Load()
	if cur == nil || cur.entries[e.snap] != e {
		return
	}
	next := &index{entries: make(map[*mapstore.Snapshot]*Entry, lenIdx(cur)-1)}
	for k, v := range cur.entries {
		if k != e.snap {
			next.entries[k] = v
		}
	}
	c.idx.Store(next)
	c.evicted.Add(1)
	c.metEvicted.Inc()
	c.metResident.Set(float64(len(next.entries)))
}

// Get returns the entry pinned for view, or nil when view is not a
// currently pinned store snapshot. Lock-free: one atomic load plus a
// read of an immutable map, safe from any number of goroutines.
func (c *Cache) Get(view fingerprint.Reader) *Entry {
	if c == nil {
		return nil
	}
	idx := c.idx.Load()
	if idx == nil {
		return nil
	}
	snap, ok := view.(*mapstore.Snapshot)
	if !ok {
		return nil
	}
	return idx.entries[snap]
}

// Stats returns the cache's counters. Nil-safe.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{
		LikHits:    c.likHits.Load(),
		LikMisses:  c.likMisses.Load(),
		RowsWarmed: c.rowsWarmed.Load(),
		Trackers:   c.trackers.Load(),
		Built:      c.built.Load(),
		Evicted:    c.evicted.Load(),
	}
	if idx := c.idx.Load(); idx != nil && len(idx.entries) > 0 {
		st.Resident = len(idx.entries)
		st.ResidentVersions = make(map[string]uint64, 2)
		for snap, e := range idx.entries {
			if v := snap.Version(); v > st.ResidentVersions[e.name] {
				st.ResidentVersions[e.name] = v
			}
		}
	}
	return st
}

// versionGauge lazily creates the per-store newest-resident-version
// gauge. Called under mu.
func (c *Cache) versionGauge(name string) *telemetry.Gauge {
	g, ok := c.verGauges[name]
	if !ok {
		g = c.reg.Gauge("uniloc_sharedcompute_resident_version", "Newest resident snapshot version per map store.", "map", name)
		c.verGauges[name] = g
	}
	return g
}

func lenIdx(i *index) int {
	if i == nil {
		return 0
	}
	return len(i.entries)
}
