package stat

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs; 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs; 0 when fewer than
// two samples are present.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RMSE returns the root-mean-square error between predictions and
// ground-truth values. Both slices must have equal length; an empty
// input yields 0.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stat: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. An empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	Value float64 // sample value
	P     float64 // cumulative probability in (0, 1]
}

// EmpiricalCDF returns the empirical CDF of xs as sorted (value, P)
// points.
func EmpiricalCDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		out[i] = CDFPoint{Value: v, P: float64(i+1) / n}
	}
	return out
}

// CDFSeries samples an empirical CDF at regularly spaced values, which
// is how the paper's CDF figures (Figures 7 and 8) are rendered. It
// returns P(X ≤ v) for each v in values.
func CDFSeries(xs, values []float64) []float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(values))
	for i, v := range values {
		// Count of samples ≤ v via binary search.
		k := sort.SearchFloat64s(sorted, math.Nextafter(v, math.Inf(1)))
		if len(sorted) == 0 {
			out[i] = 0
			continue
		}
		out[i] = float64(k) / float64(len(sorted))
	}
	return out
}

// Histogram counts xs into nbins equal-width bins over [min, max].
// Values outside the range are clamped into the first/last bin.
func Histogram(xs []float64, min, max float64, nbins int) []int {
	if nbins <= 0 || max <= min {
		return nil
	}
	counts := make([]int, nbins)
	w := (max - min) / float64(nbins)
	for _, x := range xs {
		i := int((x - min) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts
}
