// Package stat provides the probability distributions and summary
// statistics used by UniLoc's error modeling and evaluation: the normal
// CDF behind scheme confidences (paper Eq. 2), the Student-t CDF behind
// regression-coefficient p-values (Table II), and percentile/CDF/RMSE
// helpers for the evaluation figures.
package stat

import "math"

// NormalCDF returns P(X ≤ x) for X ~ N(mu, sigma). A non-positive sigma
// degenerates to a step function at mu.
func NormalCDF(x, mu, sigma float64) float64 {
	if sigma <= 0 {
		if x < mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-mu)/(sigma*math.Sqrt2))
}

// NormalQuantile returns the x such that NormalCDF(x, mu, sigma) = p,
// using the Acklam rational approximation (relative error < 1.15e-9).
func NormalQuantile(p, mu, sigma float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return mu + sigma*stdNormalQuantile(p)
}

func stdNormalQuantile(p float64) float64 {
	// Coefficients for the Acklam approximation.
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// StudentTCDF returns P(T ≤ t) for T following a Student-t distribution
// with df degrees of freedom.
func StudentTCDF(t float64, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	p := 0.5 * RegIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// TTestPValue returns the two-sided p-value for a t statistic with df
// degrees of freedom (the hypothesis test used for Table II's
// coefficient significance).
func TTestPValue(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	p := 2 * (1 - StudentTCDF(math.Abs(t), df))
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// RegIncBeta computes the regularized incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// betacf), which converges quickly for the arguments this package uses.
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lnBeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lnBeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betacf evaluates the continued fraction for the incomplete beta
// function by the modified Lentz method.
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 200
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
