package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, mu, sigma, want float64
	}{
		{0, 0, 1, 0.5},
		{1.96, 0, 1, 0.975},
		{-1.96, 0, 1, 0.025},
		{13.5, 13.5, 9.4, 0.5},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x, c.mu, c.sigma); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("NormalCDF(%v,%v,%v) = %v want %v", c.x, c.mu, c.sigma, got, c.want)
		}
	}
}

func TestNormalCDFDegenerateSigma(t *testing.T) {
	if got := NormalCDF(1, 2, 0); got != 0 {
		t.Errorf("below-mean step = %v", got)
	}
	if got := NormalCDF(3, 2, 0); got != 1 {
		t.Errorf("above-mean step = %v", got)
	}
}

func TestNormalCDFMonotoneProperty(t *testing.T) {
	f := func(a, b float64) bool {
		lo, hi := math.Min(a, b), math.Max(a, b)
		return NormalCDF(lo, 0, 2) <= NormalCDF(hi, 0, 2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999} {
		x := NormalQuantile(p, 3, 2)
		if got := NormalCDF(x, 3, 2); math.Abs(got-p) > 1e-6 {
			t.Errorf("round trip p=%v: got %v", p, got)
		}
	}
	if !math.IsInf(NormalQuantile(0, 0, 1), -1) || !math.IsInf(NormalQuantile(1, 0, 1), 1) {
		t.Error("extreme quantiles should be infinite")
	}
}

func TestStudentTCDF(t *testing.T) {
	// Symmetry and known quantiles.
	if got := StudentTCDF(0, 5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("T(0) = %v", got)
	}
	// t=2.571 is the 97.5th percentile for df=5.
	if got := StudentTCDF(2.571, 5); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("T(2.571, df=5) = %v", got)
	}
	// Approaches the normal for large df.
	if got := StudentTCDF(1.96, 10000); math.Abs(got-0.975) > 1e-3 {
		t.Errorf("T(1.96, df=1e4) = %v", got)
	}
	if !math.IsNaN(StudentTCDF(1, 0)) {
		t.Error("df<=0 should be NaN")
	}
}

func TestTTestPValue(t *testing.T) {
	// Two-sided p for |t|=2.571, df=5 is 0.05.
	if got := TTestPValue(2.571, 5); math.Abs(got-0.05) > 2e-3 {
		t.Errorf("p = %v", got)
	}
	if got := TTestPValue(-2.571, 5); math.Abs(got-0.05) > 2e-3 {
		t.Errorf("p (negative t) = %v", got)
	}
	if got := TTestPValue(0, 5); math.Abs(got-1) > 1e-9 {
		t.Errorf("p(0) = %v", got)
	}
}

func TestRegIncBeta(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := RegIncBeta(1, 1, x); math.Abs(got-x) > 1e-9 {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := RegIncBeta(2, 3, 0.4) + RegIncBeta(3, 2, 0.6); math.Abs(got-1) > 1e-9 {
		t.Errorf("symmetry sum = %v", got)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-9 {
		t.Errorf("Variance = %v", got)
	}
	if got := StdDev(xs); math.Abs(got-math.Sqrt(32.0/7)) > 1e-9 {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate cases wrong")
	}
}

func TestRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 4, 3}
	if got := RMSE(pred, truth); math.Abs(got-2.0/math.Sqrt(3)) > 1e-9 {
		t.Errorf("RMSE = %v", got)
	}
	if RMSE(nil, nil) != 0 {
		t.Error("empty RMSE should be 0")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on length mismatch")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("Median wrong")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input was sorted in place")
	}
}

func TestEmpiricalCDF(t *testing.T) {
	pts := EmpiricalCDF([]float64{3, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Value != 1 || math.Abs(pts[0].P-1.0/3) > 1e-9 {
		t.Errorf("first = %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].P != 1 {
		t.Errorf("last = %+v", pts[2])
	}
	if EmpiricalCDF(nil) != nil {
		t.Error("empty should be nil")
	}
}

func TestCDFSeries(t *testing.T) {
	xs := []float64{1, 2, 2, 3}
	got := CDFSeries(xs, []float64{0, 1, 2, 3, 4})
	want := []float64{0, 0.25, 0.75, 1, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("CDFSeries[%d] = %v want %v", i, got[i], want[i])
		}
	}
}

func TestCDFSeriesMonotoneProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		vals := []float64{-10, -1, 0, 1, 10, 100}
		s := CDFSeries(xs, vals)
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				return false
			}
		}
		return s[len(s)-1] <= 1 && s[0] >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	counts := Histogram([]float64{0.5, 1.5, 1.6, 9.9, -5, 20}, 0, 10, 10)
	if counts[0] != 2 { // 0.5 and clamped -5
		t.Errorf("bin0 = %d", counts[0])
	}
	if counts[1] != 2 {
		t.Errorf("bin1 = %d", counts[1])
	}
	if counts[9] != 2 { // 9.9 and clamped 20
		t.Errorf("bin9 = %d", counts[9])
	}
	if Histogram(nil, 0, 0, 5) != nil || Histogram(nil, 0, 10, 0) != nil {
		t.Error("degenerate histogram should be nil")
	}
}
