package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPolygonContains(t *testing.T) {
	pg := RectPoly(0, 0, 10, 5)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(5, 2), true},
		{Pt(0, 0), true},  // corner counts as inside
		{Pt(10, 5), true}, // corner
		{Pt(5, 0), true},  // edge
		{Pt(-1, 2), false},
		{Pt(11, 2), false},
		{Pt(5, 6), false},
	}
	for _, c := range cases {
		if got := pg.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v want %v", c.p, got, c.want)
		}
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// L-shape.
	pg := Poly(Pt(0, 0), Pt(4, 0), Pt(4, 2), Pt(2, 2), Pt(2, 4), Pt(0, 4))
	if !pg.Contains(Pt(1, 3)) {
		t.Error("inside leg should contain")
	}
	if pg.Contains(Pt(3, 3)) {
		t.Error("notch should not contain")
	}
}

func TestPolygonDegenerate(t *testing.T) {
	if Poly().Contains(Pt(0, 0)) {
		t.Error("empty polygon contains nothing")
	}
	if Poly(Pt(0, 0), Pt(1, 1)).Contains(Pt(0.5, 0.5)) {
		t.Error("2-vertex polygon contains nothing")
	}
	if got := Poly().Area(); got != 0 {
		t.Errorf("empty Area = %v", got)
	}
}

func TestPolygonAreaCentroid(t *testing.T) {
	pg := RectPoly(2, 3, 6, 9)
	if got := pg.Area(); got != 24 {
		t.Errorf("Area = %v", got)
	}
	c := pg.Centroid()
	if c.Dist(Pt(4, 6)) > 1e-9 {
		t.Errorf("Centroid = %v", c)
	}
}

func TestPolygonBoundsEdges(t *testing.T) {
	pg := RectPoly(1, 2, 5, 8)
	b := pg.Bounds()
	if b.Min != Pt(1, 2) || b.Max != Pt(5, 8) {
		t.Errorf("Bounds = %+v", b)
	}
	if got := len(pg.Edges()); got != 4 {
		t.Errorf("Edges = %d", got)
	}
	if d := pg.DistToBoundary(Pt(3, 5)); !almostEq(d, 2, 1e-9) {
		t.Errorf("DistToBoundary = %v", d)
	}
}

func TestPolygonContainsImpliesBounds(t *testing.T) {
	pg := Poly(Pt(0, 0), Pt(8, 1), Pt(6, 7), Pt(1, 5))
	b := pg.Bounds()
	f := func(x, y float64) bool {
		p := Pt(math.Mod(x, 10), math.Mod(y, 10))
		if pg.Contains(p) {
			return b.Contains(p)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolylineLengthAt(t *testing.T) {
	pl := Line(Pt(0, 0), Pt(10, 0), Pt(10, 5))
	if got := pl.Length(); got != 15 {
		t.Fatalf("Length = %v", got)
	}
	p, h := pl.At(0)
	if p != Pt(0, 0) || h != 0 {
		t.Errorf("At(0) = %v, %v", p, h)
	}
	p, _ = pl.At(5)
	if p.Dist(Pt(5, 0)) > 1e-9 {
		t.Errorf("At(5) = %v", p)
	}
	p, h = pl.At(12)
	if p.Dist(Pt(10, 2)) > 1e-9 {
		t.Errorf("At(12) = %v", p)
	}
	if !almostEq(h, math.Pi/2, 1e-9) {
		t.Errorf("heading at 12 = %v", h)
	}
	// Clamped past the end.
	p, _ = pl.At(100)
	if p.Dist(Pt(10, 5)) > 1e-9 {
		t.Errorf("At(100) = %v", p)
	}
}

func TestPolylineAtMonotonic(t *testing.T) {
	pl := Line(Pt(0, 0), Pt(3, 4), Pt(3, 10), Pt(-2, 10))
	total := pl.Length()
	prev := 0.0
	for d := 0.0; d <= total; d += 0.25 {
		p, _ := pl.At(d)
		// Walked distance along the polyline to p should be ~d.
		_ = p
		if d < prev {
			t.Fatal("not monotonic input")
		}
		prev = d
	}
	// Distance between successive samples never exceeds the stride.
	var last Point
	first := true
	for d := 0.0; d <= total; d += 0.5 {
		p, _ := pl.At(d)
		if !first && p.Dist(last) > 0.5+1e-9 {
			t.Fatalf("jump at d=%v: %v -> %v", d, last, p)
		}
		last, first = p, false
	}
}

func TestPolylineVertices(t *testing.T) {
	pl := Line(Pt(0, 0), Pt(3, 0), Pt(3, 4))
	vs := pl.Vertices()
	want := []float64{0, 3, 7}
	for i := range want {
		if !almostEq(vs[i], want[i], 1e-12) {
			t.Errorf("Vertices[%d] = %v want %v", i, vs[i], want[i])
		}
	}
	if Line().Vertices() != nil {
		t.Error("empty polyline should give nil")
	}
}

func TestPolylineDegenerate(t *testing.T) {
	var empty Polyline
	p, h := empty.At(5)
	if p != (Point{}) || h != 0 {
		t.Errorf("empty At = %v,%v", p, h)
	}
	single := Line(Pt(2, 3))
	p, _ = single.At(10)
	if p != Pt(2, 3) {
		t.Errorf("single At = %v", p)
	}
}
