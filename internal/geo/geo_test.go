package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(-1, 2)
	if got := p.Add(q); got != Pt(2, 6) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(4, 2) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(6, 8) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 5 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != 10 {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := p.Dist(q); !almostEq(got, math.Sqrt(16+4), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
	if got := p.DistSq(q); got != 20 {
		t.Errorf("DistSq = %v", got)
	}
}

func TestUnitAndRotate(t *testing.T) {
	u := Pt(3, 4).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v", u.Norm())
	}
	if got := (Point{}).Unit(); got != (Point{}) {
		t.Errorf("zero Unit = %v", got)
	}
	r := Pt(1, 0).Rotate(math.Pi / 2)
	if !almostEq(r.X, 0, 1e-12) || !almostEq(r.Y, 1, 1e-12) {
		t.Errorf("Rotate = %v", r)
	}
}

func TestHeadingRoundTrip(t *testing.T) {
	f := func(theta float64) bool {
		theta = NormalizeAngle(theta)
		v := FromHeading(theta)
		return almostEq(NormalizeAngle(v.Heading()-theta), 0, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizeAngle(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, math.Pi},
		{3 * math.Pi, math.Pi},
		{-3 * math.Pi, math.Pi}, // wraps to +π via the loop
		{2 * math.Pi, 0},
		{-math.Pi / 2, -math.Pi / 2},
	}
	for _, c := range cases {
		got := NormalizeAngle(c.in)
		if !almostEq(math.Abs(got), math.Abs(c.want), 1e-9) {
			t.Errorf("NormalizeAngle(%v) = %v want ±%v", c.in, got, c.want)
		}
		if got < -math.Pi-1e-9 || got > math.Pi+1e-9 {
			t.Errorf("NormalizeAngle(%v) = %v outside [-π,π]", c.in, got)
		}
	}
}

func TestAngleDiffProperty(t *testing.T) {
	f := func(a, b float64) bool {
		d := AngleDiff(a, b)
		if math.IsInf(a-b, 0) || math.IsNaN(a-b) {
			// Overflowing difference degrades to NaN by contract.
			return math.IsNaN(d)
		}
		return d >= -math.Pi-1e-9 && d <= math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := Lerp(a, b, 0); got != a {
		t.Errorf("Lerp 0 = %v", got)
	}
	if got := Lerp(a, b, 1); got != b {
		t.Errorf("Lerp 1 = %v", got)
	}
	if got := Lerp(a, b, 0.5); got != Pt(5, 10) {
		t.Errorf("Lerp 0.5 = %v", got)
	}
}

func TestSegmentClosestPoint(t *testing.T) {
	s := Seg(Pt(0, 0), Pt(10, 0))
	cases := []struct {
		p, want Point
	}{
		{Pt(5, 3), Pt(5, 0)},
		{Pt(-4, 2), Pt(0, 0)},
		{Pt(14, -2), Pt(10, 0)},
	}
	for _, c := range cases {
		if got := s.ClosestPoint(c.p); got.Dist(c.want) > 1e-12 {
			t.Errorf("ClosestPoint(%v) = %v want %v", c.p, got, c.want)
		}
	}
	// Degenerate segment.
	d := Seg(Pt(1, 1), Pt(1, 1))
	if got := d.ClosestPoint(Pt(5, 5)); got != Pt(1, 1) {
		t.Errorf("degenerate ClosestPoint = %v", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		a, b Segment
		want bool
	}{
		{Seg(Pt(0, 0), Pt(10, 10)), Seg(Pt(0, 10), Pt(10, 0)), true},
		{Seg(Pt(0, 0), Pt(1, 1)), Seg(Pt(2, 2), Pt(3, 3)), false},
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(5, 0), Pt(5, 5)), true},   // touch
		{Seg(Pt(0, 0), Pt(10, 0)), Seg(Pt(0, 1), Pt(10, 1)), false}, // parallel
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(2, 0), Pt(6, 0)), true},    // collinear overlap
		{Seg(Pt(0, 0), Pt(4, 0)), Seg(Pt(5, 0), Pt(9, 0)), false},   // collinear apart
		{Seg(Pt(0, 0), Pt(0, 0)), Seg(Pt(-1, -1), Pt(1, 1)), true},  // point on segment
		{Seg(Pt(2, 2), Pt(2, 2)), Seg(Pt(-1, -1), Pt(1, 1)), false}, // point off segment
	}
	for i, c := range cases {
		if got := c.a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v want %v", i, got, c.want)
		}
		if got := c.b.Intersects(c.a); got != c.want {
			t.Errorf("case %d (sym): Intersects = %v want %v", i, got, c.want)
		}
	}
}

func TestSegmentIntersectsSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		s1 := Seg(Pt(ax, ay), Pt(bx, by))
		s2 := Seg(Pt(cx, cy), Pt(dx, dy))
		return s1.Intersects(s2) == s2.Intersects(s1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRect(t *testing.T) {
	r := NewRect(Pt(5, 5), Pt(1, 2))
	if r.Min != Pt(1, 2) || r.Max != Pt(5, 5) {
		t.Fatalf("NewRect = %+v", r)
	}
	if !r.Contains(Pt(3, 3)) || r.Contains(Pt(0, 0)) {
		t.Error("Contains wrong")
	}
	if r.Width() != 4 || r.Height() != 3 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if r.Center() != Pt(3, 3.5) {
		t.Errorf("Center = %v", r.Center())
	}
	u := r.Union(NewRect(Pt(-1, -1), Pt(0, 0)))
	if u.Min != Pt(-1, -1) || u.Max != Pt(5, 5) {
		t.Errorf("Union = %+v", u)
	}
	e := r.Expand(1)
	if e.Min != Pt(0, 1) || e.Max != Pt(6, 6) {
		t.Errorf("Expand = %+v", e)
	}
	if got := r.Clamp(Pt(100, -100)); got != Pt(5, 2) {
		t.Errorf("Clamp = %v", got)
	}
}

func TestLatLonRoundTrip(t *testing.T) {
	pr := Projection{Origin: LatLon{Lat: 1.3483, Lon: 103.6831}}
	f := func(x, y float64) bool {
		// Campus-scale coordinates.
		x = math.Mod(x, 2000)
		y = math.Mod(y, 2000)
		p := Pt(x, y)
		back := pr.ToLocal(pr.ToGeo(p))
		return back.Dist(p) < 0.01
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProjectionScale(t *testing.T) {
	pr := Projection{Origin: LatLon{Lat: 0, Lon: 0}}
	// At the equator, 1 degree of longitude is ~111.19 km.
	p := pr.ToLocal(LatLon{Lat: 0, Lon: 1})
	if !almostEq(p.X, 111194.9, 100) {
		t.Errorf("1 deg lon = %v m", p.X)
	}
}
