package geo

import "math"

// earthRadiusM is the mean Earth radius used by the equirectangular
// projection, in meters.
const earthRadiusM = 6371000.0

// LatLon is a geographic coordinate in degrees.
type LatLon struct {
	Lat, Lon float64
}

// Projection converts between geographic coordinates and the local map
// frame using an equirectangular approximation anchored at Origin. It is
// accurate to well under a meter over campus-scale extents, which matches
// how the paper converts GPS output onto the local digital map.
type Projection struct {
	Origin LatLon
}

// ToLocal converts a geographic coordinate to local map meters.
func (pr Projection) ToLocal(ll LatLon) Point {
	latRad := pr.Origin.Lat * math.Pi / 180
	x := (ll.Lon - pr.Origin.Lon) * math.Pi / 180 * earthRadiusM * math.Cos(latRad)
	y := (ll.Lat - pr.Origin.Lat) * math.Pi / 180 * earthRadiusM
	return Point{X: x, Y: y}
}

// ToGeo converts a local map point back to geographic coordinates.
func (pr Projection) ToGeo(p Point) LatLon {
	latRad := pr.Origin.Lat * math.Pi / 180
	lon := pr.Origin.Lon + p.X/(earthRadiusM*math.Cos(latRad))*180/math.Pi
	lat := pr.Origin.Lat + p.Y/earthRadiusM*180/math.Pi
	return LatLon{Lat: lat, Lon: lon}
}
