// Package geo provides the 2-D geometric primitives used throughout the
// UniLoc simulator: points and vectors in a local map frame (meters),
// segments, polygons, and conversions between geographic (lat/lon) and
// local map coordinates.
//
// The local map frame is a right-handed plane with X pointing east and Y
// pointing north, anchored at a scenario-specific origin.
package geo

import (
	"fmt"
	"math"
)

// Point is a position in the local map frame, in meters.
type Point struct {
	X, Y float64
}

// Pt is a shorthand constructor for Point.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Add returns p + q treated as vectors.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q treated as vectors.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product of p and q treated as vectors.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the 2-D cross product (z component) of p and q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p treated as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Heading returns the compass-style heading in radians of the vector p,
// measured counter-clockwise from the +X axis, normalized to [-π, π].
func (p Point) Heading() float64 { return math.Atan2(p.Y, p.X) }

// Unit returns p normalized to unit length. The zero vector is returned
// unchanged.
func (p Point) Unit() Point {
	n := p.Norm()
	if n == 0 {
		return p
	}
	return p.Scale(1 / n)
}

// Rotate returns p rotated counter-clockwise by theta radians.
func (p Point) Rotate(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{p.X*c - p.Y*s, p.X*s + p.Y*c}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.2f, %.2f)", p.X, p.Y) }

// Lerp linearly interpolates between a and b; t=0 yields a, t=1 yields b.
func Lerp(a, b Point, t float64) Point {
	return Point{a.X + (b.X-a.X)*t, a.Y + (b.Y-a.Y)*t}
}

// FromHeading returns the unit vector pointing along heading theta
// (radians, counter-clockwise from +X).
func FromHeading(theta float64) Point {
	s, c := math.Sincos(theta)
	return Point{c, s}
}

// NormalizeAngle wraps an angle in radians into [-π, π]. It is O(1)
// for arbitrarily large inputs (NaN and ±Inf pass through as NaN).
func NormalizeAngle(a float64) float64 {
	if math.IsInf(a, 0) {
		return math.NaN()
	}
	a = math.Mod(a, 2*math.Pi)
	if a > math.Pi {
		a -= 2 * math.Pi
	} else if a < -math.Pi {
		a += 2 * math.Pi
	}
	return a
}

// AngleDiff returns the smallest signed difference a-b wrapped to [-π, π].
func AngleDiff(a, b float64) float64 { return NormalizeAngle(a - b) }

// Segment is a directed line segment from A to B.
type Segment struct {
	A, B Point
}

// Seg is a shorthand constructor for Segment.
func Seg(a, b Point) Segment { return Segment{A: a, B: b} }

// Length returns the length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// Midpoint returns the midpoint of the segment.
func (s Segment) Midpoint() Point { return Lerp(s.A, s.B, 0.5) }

// At returns the point at parameter t along the segment (t=0 → A, t=1 → B).
func (s Segment) At(t float64) Point { return Lerp(s.A, s.B, t) }

// ClosestPoint returns the point on the segment closest to p.
func (s Segment) ClosestPoint(p Point) Point {
	d := s.B.Sub(s.A)
	l2 := d.Dot(d)
	if l2 == 0 {
		return s.A
	}
	t := p.Sub(s.A).Dot(d) / l2
	t = math.Max(0, math.Min(1, t))
	return s.At(t)
}

// DistTo returns the distance from p to the segment.
func (s Segment) DistTo(p Point) float64 { return p.Dist(s.ClosestPoint(p)) }

// Intersects reports whether segments s and o properly intersect or touch.
func (s Segment) Intersects(o Segment) bool {
	d1 := orient(o.A, o.B, s.A)
	d2 := orient(o.A, o.B, s.B)
	d3 := orient(s.A, s.B, o.A)
	d4 := orient(s.A, s.B, o.B)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	switch {
	case d1 == 0 && onSegment(o.A, o.B, s.A):
		return true
	case d2 == 0 && onSegment(o.A, o.B, s.B):
		return true
	case d3 == 0 && onSegment(s.A, s.B, o.A):
		return true
	case d4 == 0 && onSegment(s.A, s.B, o.B):
		return true
	}
	return false
}

// orient returns >0 if a→b→c turns counter-clockwise, <0 if clockwise,
// 0 if collinear.
func orient(a, b, c Point) float64 { return b.Sub(a).Cross(c.Sub(a)) }

// onSegment reports whether collinear point p lies on segment [a, b].
func onSegment(a, b, p Point) bool {
	return math.Min(a.X, b.X) <= p.X && p.X <= math.Max(a.X, b.X) &&
		math.Min(a.Y, b.Y) <= p.Y && p.Y <= math.Max(a.Y, b.Y)
}

// Rect is an axis-aligned rectangle.
type Rect struct {
	Min, Max Point
}

// NewRect returns the axis-aligned rectangle spanning the two corners in
// any order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// Contains reports whether p lies inside or on the boundary of r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// Width returns the horizontal extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Center returns the center point of r.
func (r Rect) Center() Point { return Lerp(r.Min, r.Max, 0.5) }

// Union returns the smallest rectangle containing both r and o.
func (r Rect) Union(o Rect) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, o.Min.X), math.Min(r.Min.Y, o.Min.Y)},
		Max: Point{math.Max(r.Max.X, o.Max.X), math.Max(r.Max.Y, o.Max.Y)},
	}
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Point{r.Min.X - d, r.Min.Y - d},
		Max: Point{r.Max.X + d, r.Max.Y + d},
	}
}

// Clamp returns p clamped into r.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}
