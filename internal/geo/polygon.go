package geo

import "math"

// Polygon is a simple polygon described by its vertices in order. The
// polygon is implicitly closed (the last vertex connects back to the
// first). The zero value is an empty polygon containing no points.
type Polygon struct {
	Vertices []Point
}

// Poly constructs a polygon from the given vertices.
func Poly(vs ...Point) Polygon { return Polygon{Vertices: vs} }

// RectPoly returns the rectangle [x0,x1]×[y0,y1] as a polygon.
func RectPoly(x0, y0, x1, y1 float64) Polygon {
	return Poly(Pt(x0, y0), Pt(x1, y0), Pt(x1, y1), Pt(x0, y1))
}

// Contains reports whether p lies inside the polygon (boundary points
// count as inside), using the ray-crossing rule.
func (pg Polygon) Contains(p Point) bool {
	n := len(pg.Vertices)
	if n < 3 {
		return false
	}
	// Boundary check first so edge points are deterministically inside.
	for i := 0; i < n; i++ {
		s := Segment{pg.Vertices[i], pg.Vertices[(i+1)%n]}
		if s.DistTo(p) < 1e-9 {
			return true
		}
	}
	inside := false
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.Vertices[i], pg.Vertices[j]
		if (vi.Y > p.Y) != (vj.Y > p.Y) {
			xCross := (vj.X-vi.X)*(p.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if p.X < xCross {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// Area returns the unsigned area of the polygon.
func (pg Polygon) Area() float64 {
	n := len(pg.Vertices)
	if n < 3 {
		return 0
	}
	var sum float64
	for i := 0; i < n; i++ {
		a, b := pg.Vertices[i], pg.Vertices[(i+1)%n]
		sum += a.Cross(b)
	}
	return math.Abs(sum) / 2
}

// Centroid returns the centroid of the polygon. An empty polygon yields
// the origin.
func (pg Polygon) Centroid() Point {
	n := len(pg.Vertices)
	if n == 0 {
		return Point{}
	}
	if n < 3 {
		var c Point
		for _, v := range pg.Vertices {
			c = c.Add(v)
		}
		return c.Scale(1 / float64(n))
	}
	var cx, cy, a float64
	for i := 0; i < n; i++ {
		p, q := pg.Vertices[i], pg.Vertices[(i+1)%n]
		cr := p.Cross(q)
		cx += (p.X + q.X) * cr
		cy += (p.Y + q.Y) * cr
		a += cr
	}
	if a == 0 {
		return pg.Vertices[0]
	}
	return Point{cx / (3 * a), cy / (3 * a)}
}

// Bounds returns the axis-aligned bounding rectangle of the polygon.
func (pg Polygon) Bounds() Rect {
	if len(pg.Vertices) == 0 {
		return Rect{}
	}
	r := Rect{Min: pg.Vertices[0], Max: pg.Vertices[0]}
	for _, v := range pg.Vertices[1:] {
		r.Min.X = math.Min(r.Min.X, v.X)
		r.Min.Y = math.Min(r.Min.Y, v.Y)
		r.Max.X = math.Max(r.Max.X, v.X)
		r.Max.Y = math.Max(r.Max.Y, v.Y)
	}
	return r
}

// Edges returns the polygon's edges as segments.
func (pg Polygon) Edges() []Segment {
	n := len(pg.Vertices)
	if n < 2 {
		return nil
	}
	segs := make([]Segment, 0, n)
	for i := 0; i < n; i++ {
		segs = append(segs, Segment{pg.Vertices[i], pg.Vertices[(i+1)%n]})
	}
	return segs
}

// DistToBoundary returns the distance from p to the polygon's boundary.
// For an empty polygon it returns +Inf.
func (pg Polygon) DistToBoundary(p Point) float64 {
	d := math.Inf(1)
	for _, e := range pg.Edges() {
		d = math.Min(d, e.DistTo(p))
	}
	return d
}

// Polyline is an open chain of points, used for walking paths.
type Polyline struct {
	Points []Point
}

// Line constructs a polyline from the given points.
func Line(pts ...Point) Polyline { return Polyline{Points: pts} }

// Length returns the total length of the polyline.
func (pl Polyline) Length() float64 {
	var total float64
	for i := 1; i < len(pl.Points); i++ {
		total += pl.Points[i-1].Dist(pl.Points[i])
	}
	return total
}

// At returns the point at arc-length distance d from the start of the
// polyline, clamped to its endpoints, together with the heading of the
// segment containing that point.
func (pl Polyline) At(d float64) (Point, float64) {
	if len(pl.Points) == 0 {
		return Point{}, 0
	}
	if len(pl.Points) == 1 {
		return pl.Points[0], 0
	}
	if d <= 0 {
		h := pl.Points[1].Sub(pl.Points[0]).Heading()
		return pl.Points[0], h
	}
	remaining := d
	for i := 1; i < len(pl.Points); i++ {
		seg := Segment{pl.Points[i-1], pl.Points[i]}
		l := seg.Length()
		if remaining <= l || i == len(pl.Points)-1 && remaining <= l+1e-9 {
			t := 0.0
			if l > 0 {
				t = remaining / l
				if t > 1 {
					t = 1
				}
			}
			return seg.At(t), seg.B.Sub(seg.A).Heading()
		}
		remaining -= l
	}
	last := Segment{pl.Points[len(pl.Points)-2], pl.Points[len(pl.Points)-1]}
	return last.B, last.B.Sub(last.A).Heading()
}

// Vertices returns the cumulative arc-length at every vertex of the
// polyline (the first entry is always 0).
func (pl Polyline) Vertices() []float64 {
	if len(pl.Points) == 0 {
		return nil
	}
	out := make([]float64, len(pl.Points))
	for i := 1; i < len(pl.Points); i++ {
		out[i] = out[i-1] + pl.Points[i-1].Dist(pl.Points[i])
	}
	return out
}
