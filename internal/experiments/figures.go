package experiments

import (
	"fmt"
	"math"

	"repro/internal/eval"
	"repro/internal/scenario"
	"repro/internal/schemes"
)

// schemeOrder is the display order used across figures.
var schemeOrder = []string{
	schemes.NameGPS, schemes.NameWiFi, schemes.NameCellular,
	schemes.NameMotion, schemes.NameFusion,
}

// cdfGrid is the error axis the CDF figures are sampled at (meters).
var cdfGrid = []float64{0.5, 1, 2, 3, 4, 5, 6, 8, 10, 12, 15, 20, 25, 30, 40}

// runDailyPath runs Path 1 with the standard configuration.
func (s *Suite) runDailyPath() (*eval.PathRun, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	campus := s.Lab.Campus()
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		return nil, fmt.Errorf("experiments: path1 missing")
	}
	return eval.RunPath(campus, path, tr, eval.RunConfig{Seed: s.Lab.Seed + 77})
}

// runAllCampusPaths runs the eight daily paths.
func (s *Suite) runAllCampusPaths() ([]*eval.PathRun, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	campus := s.Lab.Campus()
	runs := make([]*eval.PathRun, 0, len(campus.Place.Paths))
	for i, p := range campus.Place.Paths {
		run, err := eval.RunPath(campus, p, tr, eval.RunConfig{Seed: s.Lab.Seed + 77 + int64(i)})
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// runPlacePaths runs every path of a place.
func (s *Suite) runPlacePaths(assets *scenario.Assets, seed int64) ([]*eval.PathRun, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	runs := make([]*eval.PathRun, 0, len(assets.Place.Paths))
	for i, p := range assets.Place.Paths {
		run, err := eval.RunPath(assets, p, tr, eval.RunConfig{Seed: seed + int64(i)})
		if err != nil {
			return nil, err
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// sampleSeries renders a per-epoch series sampled every strideM meters
// of walked distance.
func sampleSeries(run *eval.PathRun, strideM float64, cols map[string][]float64, order []string, title string) *eval.Table {
	t := &eval.Table{Title: title}
	t.Headers = append([]string{"dist(m)", "segment"}, order...)
	next := 0.0
	for i := range run.DistM {
		if run.DistM[i] < next {
			continue
		}
		next = run.DistM[i] + strideM
		row := []string{eval.F1(run.DistM[i]), run.Region[i]}
		for _, name := range order {
			row = append(row, eval.F1(cols[name][i]))
		}
		t.AddRow(row...)
	}
	return t
}

// Figure2 regenerates Figure 2: the localization error of each
// individual scheme along the daily path, by segment.
func (s *Suite) Figure2() (*Report, error) {
	run, err := s.runDailyPath()
	if err != nil {
		return nil, err
	}
	cols := make(map[string][]float64, len(run.Schemes)+1)
	for name, series := range run.Schemes {
		cols[name] = series.Err
	}
	cols["oracle"] = run.Oracle
	order := append(append([]string{}, schemeOrder...), "oracle")
	series := sampleSeries(run, 10, cols, order, "Per-scheme error along daily Path 1 (n/a = unavailable)")

	seg := segmentMeans(run)
	return &Report{
		ID: "Figure 2", Title: "localization error of different schemes along the daily path",
		Tables: []*eval.Table{series, seg},
		Notes: []string{
			"paper shape: no scheme stable everywhere; WiFi/GPS dead in basement where PDR drifts and cellular becomes competitive; outdoors every scheme degrades",
		},
	}, nil
}

// segmentMeans summarizes per-segment mean error of every series.
func segmentMeans(run *eval.PathRun) *eval.Table {
	t := &eval.Table{Title: "Mean error per path segment"}
	t.Headers = append([]string{"segment"}, schemeOrder...)
	t.Headers = append(t.Headers, "uniloc1", "uniloc2", "oracle")
	// Preserve segment order of first appearance.
	var segs []string
	seen := make(map[string]bool)
	for _, r := range run.Region {
		if !seen[r] {
			seen[r] = true
			segs = append(segs, r)
		}
	}
	for _, segName := range segs {
		var idx []int
		for i, r := range run.Region {
			if r == segName {
				idx = append(idx, i)
			}
		}
		row := []string{segName}
		pick := func(xs []float64) string {
			var v []float64
			for _, i := range idx {
				if !math.IsNaN(xs[i]) {
					v = append(v, xs[i])
				}
			}
			return eval.F(eval.MeanValid(v))
		}
		for _, name := range schemeOrder {
			row = append(row, pick(run.Schemes[name].Err))
		}
		row = append(row, pick(run.UniLoc1), pick(run.UniLoc2), pick(run.Oracle))
		t.AddRow(row...)
	}
	return t
}

// Figure3 regenerates Figure 3: Oracle (optimal single-selection) vs
// UniLoc1 vs UniLoc2 along the daily path.
func (s *Suite) Figure3() (*Report, error) {
	run, err := s.runDailyPath()
	if err != nil {
		return nil, err
	}
	cols := map[string][]float64{
		"oracle":  run.Oracle,
		"uniloc1": run.UniLoc1,
		"uniloc2": run.UniLoc2,
	}
	series := sampleSeries(run, 10, cols, []string{"oracle", "uniloc1", "uniloc2"},
		"Oracle vs UniLoc1 vs UniLoc2 along daily Path 1")
	return &Report{
		ID: "Figure 3", Title: "optimal single-selection vs UniLoc along the daily path",
		Tables: []*eval.Table{series},
		Notes: []string{
			"paper shape: UniLoc1 tracks the oracle; UniLoc2 improves over UniLoc1 most where individual errors are large (outdoors)",
		},
	}, nil
}

// Figure5 regenerates Figure 5: the scheme-usage distribution of
// UniLoc1 vs the oracle.
func (s *Suite) Figure5() (*Report, error) {
	run, err := s.runDailyPath()
	if err != nil {
		return nil, err
	}
	t := eval.UsageTable("Scheme usage along daily Path 1", []*eval.PathRun{run})
	return &Report{
		ID: "Figure 5", Title: "usage of different localization schemes (UniLoc1 vs oracle)",
		Tables: []*eval.Table{t},
		Notes: []string{
			"paper shape: UniLoc1's usage distribution is close to the oracle's; fusion dominates, WiFi usage is low because fusion is selected when RSSI quality is high",
		},
	}, nil
}

// Figure6 regenerates Figure 6: the average localization error of all
// systems along the daily path.
func (s *Suite) Figure6() (*Report, error) {
	run, err := s.runDailyPath()
	if err != nil {
		return nil, err
	}
	m := eval.Merge([]*eval.PathRun{run})
	t := eval.SummaryTable("Average error along daily Path 1", m)
	fusionMean := eval.MeanValid(run.Schemes[schemes.NameFusion].Err)
	u1 := eval.MeanValid(run.UniLoc1)
	u2 := eval.MeanValid(run.UniLoc2)
	return &Report{
		ID: "Figure 6", Title: "average localization error along the daily path",
		Tables: []*eval.Table{t},
		Notes: []string{
			fmt.Sprintf("fusion %.2f m vs uniloc1 %.2f m (x%.2f) vs uniloc2 %.2f m (x%.2f); paper: 4.0 / 3.7 / 2.6 m",
				fusionMean, u1, fusionMean/u1, u2, fusionMean/u2),
		},
	}, nil
}

// Figure7 regenerates Figure 7: the error CDF over all eight daily
// paths.
func (s *Suite) Figure7() (*Report, error) {
	runs, err := s.runAllCampusPaths()
	if err != nil {
		return nil, err
	}
	m := eval.Merge(runs)
	cdf := eval.CDFTable("Error CDF over the eight daily paths (2.7+ km)", m, cdfGrid)
	sum := eval.SummaryTable("Summary over the eight daily paths", m)
	var total float64
	for _, r := range runs {
		total += r.DistM[len(r.DistM)-1]
	}
	return &Report{
		ID: "Figure 7", Title: "localization error on the eight daily paths",
		Tables: []*eval.Table{cdf, sum},
		Notes: []string{
			fmt.Sprintf("total walked distance: %.2f km over %d paths", total/1000, len(runs)),
			"paper shape: uniloc1/uniloc2 below every individual scheme across the CDF; uniloc2 controls the 90th percentile best",
		},
	}, nil
}

// figure8 builds one CDF report over a place.
func (s *Suite) figure8(id, title string, assets *scenario.Assets, seed int64, note string) (*Report, error) {
	runs, err := s.runPlacePaths(assets, seed)
	if err != nil {
		return nil, err
	}
	m := eval.Merge(runs)
	return &Report{
		ID: id, Title: title,
		Tables: []*eval.Table{
			eval.CDFTable("Error CDF: "+assets.Place.Name, m, cdfGrid),
			eval.SummaryTable("Summary: "+assets.Place.Name, m),
		},
		Notes: []string{note},
	}, nil
}

// Figure8a regenerates Figure 8a: the shopping mall (new place).
func (s *Suite) Figure8a() (*Report, error) {
	return s.figure8("Figure 8a", "localization error in the shopping mall",
		s.Lab.Mall(), s.Lab.Seed+500,
		"paper shape: cellular poor (basement floor, ~2 towers); UniLoc2 still gains from the remaining schemes")
}

// Figure8b regenerates Figure 8b: the urban open space (new place).
func (s *Suite) Figure8b() (*Report, error) {
	return s.figure8("Figure 8b", "localization error in the urban open space",
		s.Lab.Urban(), s.Lab.Seed+600,
		"paper shape: all individual schemes high and unstable outdoors (sparse fingerprints, wide paths); ensemble gains largest here")
}

// Figure8c regenerates Figure 8c: the office.
func (s *Suite) Figure8c() (*Report, error) {
	return s.figure8("Figure 8c", "localization error in the office",
		s.Lab.TrainingOffice(), s.Lab.Seed+700,
		"paper shape: every system better than in the mall — stable signals, narrow corridors with many turns")
}

// Figure8d regenerates Figure 8d: heterogeneous devices with and
// without online RSSI offset calibration.
func (s *Suite) Figure8d() (*Report, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	campus := s.Lab.Campus()
	path, _ := campus.Place.PathByName("path1")
	office := s.Lab.TrainingOffice()

	type variant struct {
		name      string
		calibrate bool
	}
	t := &eval.Table{
		Title:   "Heterogeneous device (LG-G3-like) with/without online RSSI calibration",
		Headers: []string{"series", "mean(m)", "p50(m)", "p90(m)"},
	}
	for _, v := range []variant{{"w/ calibration", true}, {"w/o calibration", false}} {
		var wifiErrs, u2Errs []float64
		for i, spec := range []struct {
			assets *scenario.Assets
			path   scenario.Path
		}{{campus, path}, {office, office.Place.Paths[0]}} {
			cfg := eval.RunConfig{
				Seed:      s.Lab.Seed + 800 + int64(i),
				Walker:    spec.assets.HeterogeneousWalkerConfig(),
				Calibrate: v.calibrate,
			}
			run, err := eval.RunPath(spec.assets, spec.path, tr, cfg)
			if err != nil {
				return nil, err
			}
			wifiErrs = append(wifiErrs, run.Schemes[schemes.NameWiFi].Errors()...)
			u2Errs = append(u2Errs, eval.Valid(run.UniLoc2)...)
		}
		t.AddRow("RADAR "+v.name, eval.F(eval.MeanValid(wifiErrs)),
			eval.F(eval.PercentileValid(wifiErrs, 50)), eval.F(eval.PercentileValid(wifiErrs, 90)))
		t.AddRow("UniLoc "+v.name, eval.F(eval.MeanValid(u2Errs)),
			eval.F(eval.PercentileValid(u2Errs, 50)), eval.F(eval.PercentileValid(u2Errs, 90)))
	}
	return &Report{
		ID: "Figure 8d", Title: "heterogeneous devices",
		Tables: []*eval.Table{t},
		Notes: []string{
			"paper shape: online offset calibration reduces the large-error tail (~1.9x at the 90th percentile for RADAR); UniLoc assimilates the gain",
		},
	}, nil
}
