package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/schemes"
	"repro/internal/telemetry"
)

// suite caches one trained suite across this package's tests.
var shared *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if shared == nil {
		shared = NewSuite(42)
		if _, err := shared.Lab.Trained(); err != nil {
			t.Fatalf("training: %v", err)
		}
	}
	return shared
}

func TestAllExperimentIDsUniqueAndResolvable(t *testing.T) {
	s := NewSuite(1)
	seen := map[string]bool{}
	for _, e := range s.All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if _, ok := s.ByID(e.ID); !ok {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := s.ByID("nonesuch"); ok {
		t.Error("ByID should miss unknown ids")
	}
	if len(s.All()) < 14 {
		t.Errorf("only %d experiments; every paper table and figure needs one", len(s.All()))
	}
}

func TestTableI(t *testing.T) {
	rep, err := suite(t).TableI()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"gps", "wifi", "cellular", "motion", "fusion",
		schemes.FeatFPDensity, schemes.FeatDistLandmark} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTableII(t *testing.T) {
	rep, err := suite(t).TableII()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"indoor", "outdoor", "pvalue", "R2", "(intercept)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestFigure6HeadlineShape(t *testing.T) {
	rep, err := suite(t).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 || len(rep.Notes) == 0 {
		t.Fatal("Figure 6 report incomplete")
	}
	// The note carries the fusion-vs-uniloc factors; just assert it
	// rendered with real numbers.
	if strings.Contains(rep.Notes[0], "NaN") {
		t.Errorf("Figure 6 note has NaN: %s", rep.Notes[0])
	}
}

func TestFigure5UsageCloseToOracle(t *testing.T) {
	s := suite(t)
	run, err := s.runDailyPath()
	if err != nil {
		t.Fatal(err)
	}
	// UniLoc1's dominant scheme should be the oracle's dominant scheme
	// (paper: "the usage of different localization schemes in UniLoc1
	// is close to the oracle").
	top2 := func(counts map[string]int) map[string]bool {
		type kv struct {
			k string
			v int
		}
		var all []kv
		for k, v := range counts {
			all = append(all, kv{k, v})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
		out := map[string]bool{}
		for i := 0; i < len(all) && i < 2; i++ {
			out[all[i].k] = true
		}
		return out
	}
	u1 := map[string]int{}
	or := map[string]int{}
	for i := range run.Selected {
		u1[run.Selected[i]]++
		or[run.OracleChoice[i]]++
	}
	// The paper notes UniLoc1 sometimes picks a close runner-up; its
	// dominant scheme must at least be one of the oracle's top two.
	u1top := top2(u1)
	orTop := top2(or)
	overlap := false
	for k := range u1top {
		if orTop[k] {
			overlap = true
		}
	}
	if !overlap {
		t.Errorf("uniloc1 top-2 %v disjoint from oracle top-2 %v", u1top, orTop)
	}
}

func TestAblationWeightingOrdering(t *testing.T) {
	rep, err := suite(t).AblationWeighting()
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Parse means: default (row 0) must beat uniform averaging (last).
	var def, uni float64
	if _, err := fmt.Sscanf(tbl.Rows[0][1], "%f", &def); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(tbl.Rows[len(tbl.Rows)-1][1], "%f", &uni); err != nil {
		t.Fatal(err)
	}
	if def >= uni {
		t.Errorf("default weighting (%.2f) should beat uniform (%.2f)", def, uni)
	}
}

func TestTableVStructure(t *testing.T) {
	s := suite(t)
	var traceBuf bytes.Buffer
	s.TraceWriter = &traceBuf
	defer func() { s.TraceWriter = nil }()
	rep, err := s.TableV()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"BMA", "error prediction", "upload", "download", "total", "observer epoch traces"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table V missing %q", want)
		}
	}

	// Server-compute rows are measured, so every epoch must have left a
	// well-formed JSONL trace with populated timings.
	traces, err := telemetry.ReadJSONL(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("TableV exported no traces")
	}
	for i, tr := range traces {
		if tr.StepNS <= 0 || len(tr.Schemes) == 0 || tr.Env == "" {
			t.Fatalf("trace %d incomplete: %+v", i, tr)
		}
	}
}
