package experiments

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/schemes"
	"repro/internal/telemetry"
)

// suite caches one trained suite across this package's tests.
var shared *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if shared == nil {
		shared = NewSuite(42)
		if _, err := shared.Lab.Trained(); err != nil {
			t.Fatalf("training: %v", err)
		}
	}
	return shared
}

func TestAllExperimentIDsUniqueAndResolvable(t *testing.T) {
	s := NewSuite(1)
	seen := map[string]bool{}
	for _, e := range s.All() {
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if _, ok := s.ByID(e.ID); !ok {
			t.Errorf("ByID(%q) failed", e.ID)
		}
	}
	if _, ok := s.ByID("nonesuch"); ok {
		t.Error("ByID should miss unknown ids")
	}
	if len(s.All()) < 14 {
		t.Errorf("only %d experiments; every paper table and figure needs one", len(s.All()))
	}
}

func TestTableI(t *testing.T) {
	rep, err := suite(t).TableI()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"gps", "wifi", "cellular", "motion", "fusion",
		schemes.FeatFPDensity, schemes.FeatDistLandmark} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTableII(t *testing.T) {
	rep, err := suite(t).TableII()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"indoor", "outdoor", "pvalue", "R2", "(intercept)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestFigure6HeadlineShape(t *testing.T) {
	rep, err := suite(t).Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) == 0 || len(rep.Notes) == 0 {
		t.Fatal("Figure 6 report incomplete")
	}
	// The note carries the fusion-vs-uniloc factors; just assert it
	// rendered with real numbers.
	if strings.Contains(rep.Notes[0], "NaN") {
		t.Errorf("Figure 6 note has NaN: %s", rep.Notes[0])
	}
}

func TestFigure5UsageCloseToOracle(t *testing.T) {
	s := suite(t)
	run, err := s.runDailyPath()
	if err != nil {
		t.Fatal(err)
	}
	// UniLoc1's dominant scheme should be the oracle's dominant scheme
	// (paper: "the usage of different localization schemes in UniLoc1
	// is close to the oracle").
	top2 := func(counts map[string]int) map[string]bool {
		type kv struct {
			k string
			v int
		}
		var all []kv
		for k, v := range counts {
			all = append(all, kv{k, v})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
		out := map[string]bool{}
		for i := 0; i < len(all) && i < 2; i++ {
			out[all[i].k] = true
		}
		return out
	}
	u1 := map[string]int{}
	or := map[string]int{}
	for i := range run.Selected {
		u1[run.Selected[i]]++
		or[run.OracleChoice[i]]++
	}
	// The paper notes UniLoc1 sometimes picks a close runner-up; its
	// dominant scheme must at least be one of the oracle's top two.
	u1top := top2(u1)
	orTop := top2(or)
	overlap := false
	for k := range u1top {
		if orTop[k] {
			overlap = true
		}
	}
	if !overlap {
		t.Errorf("uniloc1 top-2 %v disjoint from oracle top-2 %v", u1top, orTop)
	}
}

func TestAblationWeightingOrdering(t *testing.T) {
	rep, err := suite(t).AblationWeighting()
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Tables[0]
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Parse means: default (row 0) must beat uniform averaging (last).
	var def, uni float64
	if _, err := fmt.Sscanf(tbl.Rows[0][1], "%f", &def); err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Sscanf(tbl.Rows[len(tbl.Rows)-1][1], "%f", &uni); err != nil {
		t.Fatal(err)
	}
	if def >= uni {
		t.Errorf("default weighting (%.2f) should beat uniform (%.2f)", def, uni)
	}
}

func TestTableVStructure(t *testing.T) {
	s := suite(t)
	var traceBuf bytes.Buffer
	s.TraceWriter = &traceBuf
	defer func() { s.TraceWriter = nil }()
	rep, err := s.TableV()
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"BMA", "error prediction", "upload", "download", "total", "observer epoch traces"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table V missing %q", want)
		}
	}

	// Server-compute rows are measured, so every epoch must have left a
	// well-formed JSONL trace with populated timings.
	traces, err := telemetry.ReadJSONL(&traceBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) == 0 {
		t.Fatal("TableV exported no traces")
	}
	for i, tr := range traces {
		if tr.StepNS <= 0 || len(tr.Schemes) == 0 || tr.Env == "" {
			t.Fatalf("trace %d incomplete: %+v", i, tr)
		}
	}
}

// TestRunAllOrderedStreamingAndErrors drives RunAll with synthetic
// experiments: results and the streaming emit callback must come back
// in input order even though execution is concurrent, errors must ride
// in Result.Err without aborting the batch, and at least two
// experiments must genuinely overlap under workers=2 (the rendezvous
// below deadlocks otherwise).
func TestRunAllOrderedStreamingAndErrors(t *testing.T) {
	s := suite(t)
	errBoom := errors.New("boom")

	// s0 and s1 block until both are running: proof of concurrency.
	var barrier sync.WaitGroup
	barrier.Add(2)
	rendezvous := func(id string) (*Report, error) {
		barrier.Done()
		barrier.Wait()
		return &Report{ID: id}, nil
	}
	exps := []Experiment{
		{ID: "s0", Run: func() (*Report, error) { return rendezvous("s0") }},
		{ID: "s1", Run: func() (*Report, error) { return rendezvous("s1") }},
		{ID: "s2", Run: func() (*Report, error) { return nil, errBoom }},
		{ID: "s3", Run: func() (*Report, error) {
			time.Sleep(time.Millisecond)
			return &Report{ID: "s3"}, nil
		}},
	}

	var emitted []string
	results, err := s.RunAll(exps, 2, func(r Result) {
		// emit is documented to run on the caller's goroutine, in
		// order — no locking needed here.
		emitted = append(emitted, r.Experiment.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(exps) {
		t.Fatalf("%d results, want %d", len(results), len(exps))
	}
	wantOrder := []string{"s0", "s1", "s2", "s3"}
	for i, id := range wantOrder {
		if results[i].Experiment.ID != id {
			t.Errorf("results[%d] = %q, want %q", i, results[i].Experiment.ID, id)
		}
		if i < len(emitted) && emitted[i] != id {
			t.Errorf("emitted[%d] = %q, want %q", i, emitted[i], id)
		}
	}
	if len(emitted) != len(exps) {
		t.Fatalf("emit fired %d times, want %d", len(emitted), len(exps))
	}
	if !errors.Is(results[2].Err, errBoom) {
		t.Errorf("results[2].Err = %v, want %v", results[2].Err, errBoom)
	}
	if results[2].Report != nil {
		t.Error("failed experiment must not carry a report")
	}
	for _, i := range []int{0, 1, 3} {
		if results[i].Err != nil || results[i].Report == nil || results[i].Report.ID != exps[i].ID {
			t.Errorf("results[%d] = %+v, want clean report %q", i, results[i], exps[i].ID)
		}
	}
	if results[3].Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", results[3].Elapsed)
	}

	// workers <= 1 must run the whole batch sequentially (no Warm, no
	// rendezvous partner available — these must not block).
	solo := []Experiment{
		{ID: "a", Run: func() (*Report, error) { return &Report{ID: "a"}, nil }},
		{ID: "b", Run: func() (*Report, error) { return nil, errBoom }},
	}
	res1, err := s.RunAll(solo, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1) != 2 || res1[0].Report == nil || !errors.Is(res1[1].Err, errBoom) {
		t.Fatalf("sequential RunAll results: %+v", res1)
	}
}
