package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/scenario"
	"repro/internal/schemes"
	"repro/internal/stat"
	"repro/internal/walker"
)

// AblationWeighting compares the BMA weighting variants on the daily
// path: the default precision weighting with pruning, the literal
// w=c/Σc of Eq. 5, no pruning, and plain uniform averaging.
func (s *Suite) AblationWeighting() (*Report, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	campus := s.Lab.Campus()
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		return nil, fmt.Errorf("experiments: path1 missing")
	}

	type variant struct {
		name string
		opts []core.Option
	}
	variants := []variant{
		{"precision + prune (default)", nil},
		{"precision, no prune", []core.Option{core.WithPruneFrac(0)}},
		{"confidence-only (Eq. 5)", []core.Option{core.WithWeighting(core.WeightConfOnly)}},
		{"confidence-only, no prune", []core.Option{core.WithWeighting(core.WeightConfOnly), core.WithPruneFrac(0)}},
		{"uniform averaging", []core.Option{core.WithWeighting(core.WeightUniform), core.WithPruneFrac(0)}},
	}
	t := &eval.Table{
		Title:   "BMA weighting ablation on daily Path 1",
		Headers: []string{"variant", "uniloc2 mean(m)", "uniloc2 p50(m)", "uniloc2 p90(m)"},
	}
	for _, v := range variants {
		run, err := eval.RunPath(campus, path, tr, eval.RunConfig{
			Seed: s.Lab.Seed + 77, Framework: v.opts,
		})
		if err != nil {
			return nil, err
		}
		u2 := eval.Valid(run.UniLoc2)
		t.AddRow(v.name, eval.F(stat.Mean(u2)), eval.F(stat.Percentile(u2, 50)), eval.F(stat.Percentile(u2, 90)))
	}
	return &Report{
		ID: "Ablation A", Title: "locally-weighted BMA weighting variants",
		Tables: []*eval.Table{t},
		Notes: []string{
			"expected ordering: precision+prune <= confidence-only <= uniform; the gap quantifies how much the local weights matter",
		},
	}, nil
}

// AblationSpacing sweeps the fingerprint grid pitch (the paper's 5 m /
// 10 m / 15 m downsampling study, §III-B) and reports how RADAR's
// error grows with the spatial-density feature β₁.
func (s *Suite) AblationSpacing() (*Report, error) {
	office := s.Lab.TrainingOffice()
	rnd := rand.New(rand.NewSource(s.Lab.Seed + 1200))
	t := &eval.Table{
		Title:   "RADAR error vs fingerprint grid pitch (training office)",
		Headers: []string{"downsample", "fingerprints", "mean err (m)", "p90 err (m)"},
	}
	for _, factor := range []int{1, 2, 3, 5} {
		db := office.WiFiDB.Downsample(factor)
		wifi := schemes.NewWiFi(db)
		var errs []float64
		for _, p := range office.Place.Paths {
			wk := newTestWalk(office, p, rnd)
			for !wk.Done() {
				snap, truth := wk.Next(false)
				est := wifi.Estimate(snap)
				if est.OK {
					errs = append(errs, est.Pos.Dist(truth))
				}
			}
		}
		if len(errs) == 0 {
			continue
		}
		t.AddRow(fmt.Sprintf("x%d (~%.0f m)", factor, db.SpacingM),
			fmt.Sprintf("%d", len(db.Points)),
			eval.F(stat.Mean(errs)), eval.F(stat.Percentile(errs, 90)))
	}
	return &Report{
		ID: "Ablation B", Title: "fingerprint spatial density sweep",
		Tables: []*eval.Table{t},
		Notes: []string{
			"paper shape: error grows with grid pitch — the basis of the positive β₁ coefficient in Table II",
		},
	}, nil
}

// newTestWalk builds a walker over a path with the place's default
// configuration.
func newTestWalk(assets *scenario.Assets, p scenario.Path, rnd *rand.Rand) *walker.Walker {
	return walker.New(assets.Place.World, p.Line, assets.DefaultWalkerConfig(), rnd)
}

// AblationTrainingSize refits the error models on truncated training
// sets and measures prediction quality on the daily path, probing the
// paper's claim that ~300 measurements per place suffice.
func (s *Suite) AblationTrainingSize() (*Report, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	campus := s.Lab.Campus()
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		return nil, fmt.Errorf("experiments: path1 missing")
	}

	t := &eval.Table{
		Title:   "Error-model quality vs training-set size (per scheme per environment)",
		Headers: []string{"samples/scheme/env", "uniloc2 mean(m)", "prediction nRMSE"},
	}
	for _, n := range []int{50, 100, 300, 1000} {
		sub := &core.Trainer{}
		counts := make(map[string]int)
		for _, smp := range tr.Trainer.Samples() {
			key := smp.Scheme + "/" + smp.Env.String()
			if counts[key] >= n {
				continue
			}
			counts[key]++
			sub.Add(smp)
		}
		models, err := sub.Fit(tr.FeatureSchemes)
		if err != nil {
			continue
		}
		subTrained := &eval.Trained{
			Models: models, Global: tr.Global, ALoc: tr.ALoc,
			Trainer: sub, FeatureSchemes: tr.FeatureSchemes,
		}
		run, err := eval.RunPath(campus, path, subTrained, eval.RunConfig{Seed: s.Lab.Seed + 77})
		if err != nil {
			return nil, err
		}
		// Prediction quality over all schemes.
		var sq, act []float64
		for _, series := range run.Schemes {
			for i := range series.Err {
				if !series.Avail[i] {
					continue
				}
				d := series.PredErr[i] - series.Err[i]
				sq = append(sq, d*d)
				act = append(act, series.Err[i])
			}
		}
		nrmse := math.NaN()
		if m := stat.Mean(act); m > 0 {
			nrmse = math.Sqrt(stat.Mean(sq)) / m
		}
		t.AddRow(fmt.Sprintf("%d", n), eval.F(eval.MeanValid(run.UniLoc2)), eval.F(nrmse))
	}
	return &Report{
		ID: "Ablation C", Title: "training-set size sensitivity",
		Tables: []*eval.Table{t},
		Notes: []string{
			"paper claim: ~300 measurements per place already yield models good enough for substantial ensemble gain",
		},
	}, nil
}
