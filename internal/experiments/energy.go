package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/schemes"
)

// TableIV regenerates Table IV: power, active time and energy of every
// localization system along daily Path 1, with UniLoc's GPS gating and
// offload transmissions included.
func (s *Suite) TableIV() (*Report, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	campus := s.Lab.Campus()
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		return nil, fmt.Errorf("experiments: path1 missing")
	}
	run, err := eval.RunPath(campus, path, tr, eval.RunConfig{Seed: s.Lab.Seed + 77})
	if err != nil {
		return nil, err
	}
	// A no-gating run gives the "default GPS always on outdoors"
	// reference for the outdoor-energy reduction claim. The standalone
	// "gps" consumer in the normal run is already always-on outdoors,
	// so it serves as that reference directly.

	t := &eval.Table{
		Title:   "Power and energy along daily Path 1 (power model in EXPERIMENTS.md)",
		Headers: []string{"system", "avg power (mW)", "time (s)", "energy (J)"},
	}
	rows := []string{
		schemes.NameGPS, schemes.NameWiFi, schemes.NameCellular,
		schemes.NameMotion, schemes.NameFusion, "uniloc-nogps", "uniloc",
	}
	for _, name := range rows {
		e := run.EnergyJ[name]
		dur := run.DurationS
		if e == 0 && name != schemes.NameGPS {
			continue
		}
		avgMW := 0.0
		if dur > 0 {
			avgMW = e * 1000 / dur
		}
		t.AddRow(name, eval.F(avgMW), eval.F1(dur), eval.F(e))
	}

	motionJ := run.EnergyJ[schemes.NameMotion]
	unilocJ := run.EnergyJ["uniloc"]
	gpsJ := run.EnergyJ[schemes.NameGPS]
	gpsOnEpochs := 0
	for _, on := range run.GPSOn {
		if on {
			gpsOnEpochs++
		}
	}
	notes := []string{
		fmt.Sprintf("uniloc vs motion-based PDR: +%.1f%% energy (paper: +14%%)",
			(unilocJ/motionJ-1)*100),
		fmt.Sprintf("offload traffic: %d B up, %d B down over %d epochs",
			run.BytesUp, run.BytesDown, len(run.GPSOn)),
	}
	if gpsJ > 0 {
		// Compare only the GPS radio's own draw (385 mW) under the two
		// policies: always-on outdoors vs UniLoc's gate.
		outdoorEpochs := 0
		for i := range run.GPSOn {
			if run.Env[i] == core.EnvOutdoor {
				outdoorEpochs++
			}
		}
		gpsJ = float64(outdoorEpochs) * 0.5 * 385 / 1000
		unilocGPSJ := float64(gpsOnEpochs) * 0.5 * 385 / 1000 // gated GPS epochs × epoch × GPS draw
		if unilocGPSJ > 0 {
			notes = append(notes, fmt.Sprintf("GPS energy outdoors: default %.2f J vs gated %.2f J (x%.1f reduction; paper: x2.1)",
				gpsJ, unilocGPSJ, gpsJ/unilocGPSJ))
		} else {
			notes = append(notes, fmt.Sprintf("GPS energy outdoors: default %.2f J vs gated 0 J (GPS never predicted best; the gate saves all of it)", gpsJ))
		}
	}
	return &Report{
		ID: "Table IV", Title: "power and energy consumption along the daily path",
		Tables: []*eval.Table{t},
		Notes:  notes,
	}, nil
}
