package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/faultinject"
	"repro/internal/schemes"
	"repro/internal/telemetry"
)

// outageSeed offsets the daily-path seed so the outage walks replay
// the exact Path 1 walk of the standard experiments: the only
// difference between rows is the injected fault, never the trajectory.
const outageSeed = 77

// finiteOK classifies one recorded UniLoc2 epoch: sel != "" marks an
// epoch the framework answered (res.OK), and an answered epoch must
// have a finite error — a NaN here means a non-finite position escaped
// the quarantine layer.
func nanEpochs(run *eval.PathRun) (ok, nan int) {
	for i, sel := range run.Selected {
		if sel == "" {
			continue
		}
		ok++
		if math.IsNaN(run.UniLoc2[i]) || math.IsInf(run.UniLoc2[i], 0) {
			nan++
		}
	}
	return ok, nan
}

// meanFrom is the mean over the finite entries of xs[from:].
func meanFrom(xs []float64, from int) float64 {
	return eval.MeanValid(xs[from:])
}

// killAllBut wraps every scheme except survivor in a kill window
// starting at epoch from.
func killAllBut(survivor string, seed int64, from int) func([]schemes.Scheme) []schemes.Scheme {
	return func(ss []schemes.Scheme) []schemes.Scheme {
		out := make([]schemes.Scheme, len(ss))
		for i, s := range ss {
			if s.Name() == survivor {
				out[i] = s
				continue
			}
			out[i] = faultinject.KillScheme(s, seed+int64(i), from)
		}
		return out
	}
}

// killOne wraps only the named scheme in a kill window from epoch from.
func killOne(victim string, seed int64, from int) func([]schemes.Scheme) []schemes.Scheme {
	return func(ss []schemes.Scheme) []schemes.Scheme {
		out := make([]schemes.Scheme, len(ss))
		for i, s := range ss {
			if s.Name() == victim {
				out[i] = faultinject.KillScheme(s, seed+int64(i), from)
			} else {
				out[i] = s
			}
		}
		return out
	}
}

// SchemeOutage regenerates the graceful-degradation sweep: the daily
// Path 1 walk with each scheme killed for good halfway through, plus
// one walk where every scheme but the fusion scheme dies. The walk
// itself is the standard daily walk — same seed, same trajectory — so
// the rows differ only in which diversity the ensemble has left.
func (s *Suite) SchemeOutage() (*Report, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	campus := s.Lab.Campus()
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		return nil, fmt.Errorf("experiments: path1 missing")
	}
	seed := s.Lab.Seed + outageSeed

	base, err := eval.RunPath(campus, path, tr, eval.RunConfig{Seed: seed})
	if err != nil {
		return nil, err
	}
	epochs := len(base.UniLoc2)
	killAt := epochs / 2

	t := &eval.Table{Title: fmt.Sprintf("UniLoc under scheme outages (kill at epoch %d of %d)", killAt, epochs)}
	t.Headers = []string{"scenario", "u2(m)", "u1(m)", "u2-after-kill(m)", "ok-epochs", "nan-epochs"}

	addRow := func(name string, run *eval.PathRun) (okN, nanN int) {
		okN, nanN = nanEpochs(run)
		t.AddRow(name,
			eval.F1(eval.MeanValid(run.UniLoc2)),
			eval.F1(eval.MeanValid(run.UniLoc1)),
			eval.F1(meanFrom(run.UniLoc2, killAt)),
			fmt.Sprint(okN), fmt.Sprint(nanN))
		return okN, nanN
	}
	totalNaN := 0
	_, nanN := addRow("baseline", base)
	totalNaN += nanN

	for _, victim := range schemeOrder {
		run, err := eval.RunPath(campus, path, tr, eval.RunConfig{
			Seed:        seed,
			WrapSchemes: killOne(victim, seed, killAt),
		})
		if err != nil {
			return nil, err
		}
		_, nanN := addRow("kill "+victim, run)
		totalNaN += nanN
	}

	survivor := schemes.NameFusion
	solo, err := eval.RunPath(campus, path, tr, eval.RunConfig{
		Seed:        seed,
		WrapSchemes: killAllBut(survivor, seed, killAt),
	})
	if err != nil {
		return nil, err
	}
	_, nanN = addRow("kill all but "+survivor, solo)
	totalNaN += nanN

	soloErr := meanFrom(base.Schemes[survivor].Err, killAt)
	u2Solo := meanFrom(solo.UniLoc2, killAt)
	u2Base := meanFrom(base.UniLoc2, killAt)

	rep := &Report{
		ID: "outage", Title: "graceful degradation under mid-walk scheme outages",
		Tables: []*eval.Table{t},
		Notes: []string{
			fmt.Sprintf("after the kill, all-but-%s UniLoc2 = %sm vs %s solo = %sm vs full-diversity baseline = %sm",
				survivor, eval.F1(u2Solo), survivor, eval.F1(soloErr), eval.F1(u2Base)),
			"losing one scheme costs little (diversity absorbs it); losing all but one collapses UniLoc2 onto the survivor's solo accuracy",
		},
	}
	if totalNaN != 0 {
		return rep, fmt.Errorf("experiments: %d NaN/Inf positions escaped the quarantine layer", totalNaN)
	}
	// Degradation must be ordered: the ensemble with one scheme left
	// cannot beat the survivor's own accuracy by more than noise, and
	// must not be wildly worse than it either.
	if u2Solo+0.5 < u2Base {
		return rep, fmt.Errorf("experiments: killing all but one scheme improved UniLoc2 (%.2fm < %.2fm) — outage injection is not reaching the framework", u2Solo, u2Base)
	}
	return rep, nil
}

// chaosRun drives one fully-faulted daily walk: every scheme wrapped
// with panics, NaN poisons, stale repeats, and latency spikes, plus
// sensing-level scan drops, GPS outages, IMU glitches, and delayed
// snapshots. Returns the run plus the framework's health counters.
func (s *Suite) chaosRun(seed int64) (*eval.PathRun, *core.Health, *faultinject.Sensors, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, nil, nil, err
	}
	campus := s.Lab.Campus()
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		return nil, nil, nil, fmt.Errorf("experiments: path1 missing")
	}
	health := core.NewHealth(telemetry.NewRegistry())
	sensors := faultinject.NewSensors(faultinject.SensorConfig{
		Seed:         seed + 1000,
		WiFiDropProb: 0.05,
		CellDropProb: 0.05,
		IMUNaNProb:   0.02,
		DelayProb:    0.03,
		GPSOutages:   []faultinject.Window{{From: 40, To: 90}},
	})
	run, err := eval.RunPath(campus, path, tr, eval.RunConfig{
		Seed:      seed,
		Framework: []core.Option{core.WithHealth(health)},
		WrapSchemes: func(ss []schemes.Scheme) []schemes.Scheme {
			out := make([]schemes.Scheme, len(ss))
			for i, sc := range ss {
				out[i] = faultinject.WrapScheme(sc, faultinject.SchemeConfig{
					Seed:        seed + int64(i),
					PanicProb:   0.02,
					NaNProb:     0.03,
					StaleProb:   0.02,
					LatencyProb: 0.01,
					Latency:     50 * time.Microsecond, // spike shape, bench-friendly size
				})
			}
			return out
		},
		Faults: sensors.Apply,
	})
	return run, health, sensors, err
}

// Chaos soaks the full stack under every injector at once and proves
// the degradation contract: panics are recovered, poisons quarantined,
// no NaN position ever escapes, and the whole circus is deterministic
// under its seed (two runs, identical output).
func (s *Suite) Chaos() (*Report, error) {
	seed := s.Lab.Seed + outageSeed
	run, health, sensors, err := s.chaosRun(seed)
	if err != nil {
		return nil, err
	}
	rerun, _, _, err := s.chaosRun(seed)
	if err != nil {
		return nil, err
	}

	okN, nanN := nanEpochs(run)
	t := &eval.Table{Title: "Chaos soak on daily Path 1 (all injectors armed)"}
	t.Headers = []string{"metric", "value"}
	t.AddRow("epochs", fmt.Sprint(len(run.UniLoc2)))
	t.AddRow("answered epochs", fmt.Sprint(okN))
	t.AddRow("uniloc2 mean (m)", eval.F1(eval.MeanValid(run.UniLoc2)))
	t.AddRow("uniloc1 mean (m)", eval.F1(eval.MeanValid(run.UniLoc1)))
	t.AddRow("scheme panics recovered", fmt.Sprint(health.SchemePanics.Value()))
	t.AddRow("estimates quarantined", fmt.Sprint(health.Quarantined.Value()))
	t.AddRow("fallback epochs", fmt.Sprint(health.Fallbacks.Value()))
	for name, n := range sensors.Counts() {
		t.AddRow("sensor "+name, fmt.Sprint(n))
	}
	t.AddRow("nan positions", fmt.Sprint(nanN))

	rep := &Report{
		ID: "chaos", Title: "fault-injection soak: recovery, quarantine, and determinism",
		Tables: []*eval.Table{t},
		Notes: []string{
			"every counter above is deterministic under the suite seed",
		},
	}
	if nanN != 0 {
		return rep, fmt.Errorf("experiments: %d NaN/Inf positions escaped under chaos", nanN)
	}
	if health.SchemePanics.Value() == 0 || health.Quarantined.Value() == 0 {
		return rep, fmt.Errorf("experiments: chaos injected no panics/poisons (panics=%d quarantined=%d) — injector wiring is broken",
			health.SchemePanics.Value(), health.Quarantined.Value())
	}
	for i := range run.UniLoc2 {
		same := run.UniLoc2[i] == rerun.UniLoc2[i] ||
			(math.IsNaN(run.UniLoc2[i]) && math.IsNaN(rerun.UniLoc2[i]))
		if !same {
			return rep, fmt.Errorf("experiments: chaos run is not deterministic at epoch %d (%v vs %v)",
				i, run.UniLoc2[i], rerun.UniLoc2[i])
		}
	}
	return rep, nil
}
