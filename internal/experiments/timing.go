package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/offload"
	"repro/internal/schemes"
	"repro/internal/telemetry"
	"repro/internal/walker"
)

// phonePreprocessMS models the phone-side cost of the 50 Hz inertial
// inference (step detection + heading averaging) per epoch. The
// paper's Nexus 5 measurement is a few milliseconds; our simulator
// generates steps directly, so this constant stands in for the
// workload the phone would run (documented in EXPERIMENTS.md).
const phonePreprocessMS = 3.8

// TableV regenerates Table V: the response-time decomposition of one
// location estimation. Server-side computation (scheme execution,
// error prediction, BMA) is derived from measured epoch traces: the
// walk runs through a real core.Framework carrying a telemetry
// observer, exactly the instrumentation a production uniloc-server
// exposes, so these numbers are the live pipeline's own timing rather
// than an offline re-enactment. Transfer times come from the link
// model applied to the protocol's real byte counts. If the suite has a
// TraceWriter, every epoch trace is also exported as JSONL.
func (s *Suite) TableV() (*Report, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	campus := s.Lab.Campus()
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		return nil, fmt.Errorf("experiments: path1 missing")
	}

	// Independent streams for the schemes and the walker: sharing one
	// source would couple the walk to scheme construction order.
	ss := campus.Schemes(rand.New(rand.NewSource(s.Lab.Seed + 901)))
	wkRnd := rand.New(rand.NewSource(s.Lab.Seed + 902))

	col := &telemetry.Collector{}
	var obs telemetry.Observer = col
	if s.TraceWriter != nil {
		obs = telemetry.MultiObserver(col, telemetry.NewJSONLWriter(s.TraceWriter))
	}
	fw, err := core.NewFramework(ss, tr.Models, core.WithObserver(obs))
	if err != nil {
		return nil, err
	}
	start, _ := path.Line.At(0)
	fw.Reset(start)
	wk := walker.New(campus.Place.World, path.Line, campus.DefaultWalkerConfig(), wkRnd)

	var upBytes, downBytes int
	epochs := 0
	for !wk.Done() && epochs < 400 {
		snap, _ := wk.Next(true)
		epochs++
		fw.Step(snap)

		// Wire sizes for this epoch.
		if snap.Step != nil {
			upBytes += 3 + len(offload.EncodeStep(snap.Step))
		}
		if len(snap.WiFi) > 0 {
			upBytes += 3 + len(offload.EncodeVector(snap.WiFi))
		}
		if len(snap.Cell) > 0 {
			upBytes += 3 + len(offload.EncodeVector(snap.Cell))
		}
		if snap.GNSS.Reliable() {
			upBytes += 3 + len(offload.EncodeFix(snap.GNSS))
		}
		upBytes += 3 + len(offload.EncodeContext(snap)) + 3
		downBytes += 3 + len(offload.EncodeResult(&offload.Result{Selected: schemes.NameFusion}))
	}
	if epochs == 0 {
		return nil, fmt.Errorf("experiments: no epochs walked")
	}

	// Decompose the measured traces: per-scheme estimate time, total
	// error-prediction time, and combination (τ + weighting +
	// selection + BMA) time.
	traces := col.Traces()
	if len(traces) != epochs {
		return nil, fmt.Errorf("experiments: observer saw %d traces for %d epochs", len(traces), epochs)
	}
	schemeNS := make(map[string]time.Duration, len(ss))
	var predNS, bmaNS time.Duration
	for _, t := range traces {
		for _, st := range t.Schemes {
			schemeNS[st.Scheme] += time.Duration(st.EstimateNS)
		}
		predNS += time.Duration(t.PredictNS)
		bmaNS += time.Duration(t.CombineNS)
	}

	link := offload.WiFiLink()
	upMS := float64(link.TransferTime(upBytes/epochs)) / float64(time.Millisecond)
	downMS := float64(link.TransferTime(downBytes/epochs)) / float64(time.Millisecond)

	perScheme := &eval.Table{
		Title:   "Per-scheme server computation per location estimate (measured traces)",
		Headers: []string{"scheme", "server (ms)", "phone (ms)"},
	}
	ms := func(d time.Duration) float64 {
		return float64(d) / float64(epochs) / float64(time.Millisecond)
	}
	slowest := 0.0
	for _, name := range schemeOrder {
		v := ms(schemeNS[name])
		if v > slowest {
			slowest = v
		}
		phone := 0.0
		if name == schemes.NameMotion || name == schemes.NameFusion {
			phone = phonePreprocessMS
		}
		perScheme.AddRow(name, fmt.Sprintf("%.3f", v), fmt.Sprintf("%.2f", phone))
	}

	predMS := ms(predNS)
	bmaMS := ms(bmaNS)
	total := phonePreprocessMS + upMS + slowest + predMS + bmaMS + downMS
	decomp := &eval.Table{
		Title:   "Response-time decomposition per location estimate",
		Headers: []string{"component", "time (ms)"},
	}
	decomp.AddRow("phone pre-processing", fmt.Sprintf("%.2f", phonePreprocessMS))
	decomp.AddRow("upload (wifi link)", fmt.Sprintf("%.2f", upMS))
	decomp.AddRow("slowest scheme (parallel exec)", fmt.Sprintf("%.3f", slowest))
	decomp.AddRow("error prediction (all schemes)", fmt.Sprintf("%.3f", predMS))
	decomp.AddRow("BMA", fmt.Sprintf("%.3f", bmaMS))
	decomp.AddRow("download", fmt.Sprintf("%.2f", downMS))
	decomp.AddRow("total", fmt.Sprintf("%.2f", total))

	return &Report{
		ID: "Table V", Title: "average response time for one location estimation",
		Tables: []*eval.Table{perScheme, decomp},
		Notes: []string{
			fmt.Sprintf("server compute measured from %d observer epoch traces (core.WithObserver)", len(traces)),
			fmt.Sprintf("transmissions account for %.0f%% of the total (paper: 73%%)", (upMS+downMS)/total*100),
			fmt.Sprintf("avg payloads: %d B up, %d B down per epoch", upBytes/epochs, downBytes/epochs),
			"paper shape: UniLoc's own additions (error prediction + BMA) are milliseconds; the schemes run in parallel so the slowest dominates server compute",
		},
	}, nil
}
