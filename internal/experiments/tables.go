package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/scenario"
	"repro/internal/schemes"
	"repro/internal/stat"
)

// TableI regenerates Table I: the influence factors of each data
// source, straight from the schemes' feature declarations.
func (s *Suite) TableI() (*Report, error) {
	campus := s.Lab.Campus()
	ss := campus.Schemes(rand.New(rand.NewSource(1)))
	t := &eval.Table{
		Title:   "Influence factors of typical localization models",
		Headers: []string{"model", "influence factors"},
	}
	for _, sch := range ss {
		feats := sch.RegressionFeatures()
		if len(feats) == 0 {
			t.AddRow(sch.Name(), "(intercept-only: number/geometry of visible satellites folded into the constant)")
			continue
		}
		t.AddRow(sch.Name(), fmt.Sprintf("%v", feats))
	}
	return &Report{
		ID: "Table I", Title: "influence factors per data source",
		Tables: []*eval.Table{t},
	}, nil
}

// TableII regenerates Table II: the fitted error-model coefficients,
// p-values, residual statistics and R² per scheme per environment.
func (s *Suite) TableII() (*Report, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	t := &eval.Table{
		Title:   "Error model coefficients (training: office + open space, 2 surveyors)",
		Headers: []string{"scheme", "env", "feature", "estimate", "pvalue"},
	}
	summary := &eval.Table{
		Title:   "Model fit summary",
		Headers: []string{"scheme", "env", "mu_eps", "sigma_eps", "R2", "n"},
	}
	for _, name := range tr.Models.Schemes() {
		for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
			m := tr.Models.Get(name, env)
			if m == nil {
				continue
			}
			reg := m.Reg
			if reg.HasIntercept {
				t.AddRow(name, env.String(), "(intercept)", eval.F(reg.Intercept), "-")
			}
			for j, feat := range reg.Names {
				t.AddRow(name, env.String(), feat, eval.F(reg.Beta[j]), fmt.Sprintf("%.3f", reg.P[j]))
			}
			summary.AddRow(name, env.String(), eval.F(reg.ResidMean), eval.F(reg.ResidStd),
				eval.F(reg.R2), fmt.Sprintf("%d", reg.N))
		}
	}
	return &Report{
		ID: "Table II", Title: "regression coefficients for the error models",
		Tables: []*eval.Table{t, summary},
		Notes: []string{
			"paper shape: density coefficients positive, rssi-deviation negative, motion/fusion R² highest, wifi/cellular R² lower but sufficient for relative ranking",
		},
	}, nil
}

// predictionCell collects normalized RMSE of online error prediction
// for one validation condition.
func (s *Suite) predictionCell(assets *scenario.Assets, paths []scenario.Path, tr *eval.Trained, hetero bool, seed int64) (map[string]float64, error) {
	sq := make(map[string][]float64) // squared prediction errors
	act := make(map[string][]float64)
	const maxTuples = 200
	for i, p := range paths {
		cfg := eval.RunConfig{Seed: seed + int64(i)}
		if hetero {
			cfg.Walker = assets.HeterogeneousWalkerConfig()
		} else {
			cfg.Walker = assets.DefaultWalkerConfig()
		}
		run, err := eval.RunPath(assets, p, tr, cfg)
		if err != nil {
			return nil, err
		}
		for name, series := range run.Schemes {
			for j := range series.Err {
				if !series.Avail[j] || len(sq[name]) >= maxTuples {
					continue
				}
				d := series.PredErr[j] - series.Err[j]
				sq[name] = append(sq[name], d*d)
				act[name] = append(act[name], series.Err[j])
			}
		}
	}
	out := make(map[string]float64, len(sq))
	for name, xs := range sq {
		meanAct := stat.Mean(act[name])
		if meanAct <= 0 || len(xs) == 0 {
			out[name] = math.NaN()
			continue
		}
		out[name] = math.Sqrt(stat.Mean(xs)) / meanAct
	}
	return out, nil
}

// TableIII regenerates Table III: normalized RMSE of the online error
// prediction across {same, new} places × {same, different} devices.
func (s *Suite) TableIII() (*Report, error) {
	tr, err := s.Lab.Trained()
	if err != nil {
		return nil, err
	}
	office := s.Lab.TrainingOffice()
	open := s.Lab.TrainingOpen()
	mall := s.Lab.Mall()
	urban := s.Lab.Urban()

	type cell struct {
		name   string
		assets []*scenario.Assets
		paths  [][]scenario.Path
		hetero bool
	}
	samePlace := []*scenario.Assets{office, open}
	samePaths := [][]scenario.Path{office.Place.Paths, open.Place.Paths}
	newPlace := []*scenario.Assets{mall, urban}
	newPaths := [][]scenario.Path{mall.Place.Paths[:2], urban.Place.Paths[:2]}

	cells := []cell{
		{"same place / same device", samePlace, samePaths, false},
		{"same place / diff device", samePlace, samePaths, true},
		{"new place / same device", newPlace, newPaths, false},
		{"new place / diff device", newPlace, newPaths, true},
	}

	t := &eval.Table{
		Title:   "Normalized RMSE of online error prediction (M<=200 tuples per scheme)",
		Headers: []string{"scheme", cells[0].name, cells[1].name, cells[2].name, cells[3].name},
	}
	perCell := make([]map[string]float64, len(cells))
	for ci, c := range cells {
		acc := make(map[string][]float64)
		for ai, a := range c.assets {
			m, err := s.predictionCell(a, c.paths[ai], tr, c.hetero, s.Lab.Seed+int64(1000*ci+ai))
			if err != nil {
				return nil, err
			}
			for k, v := range m {
				if !math.IsNaN(v) {
					acc[k] = append(acc[k], v)
				}
			}
		}
		perCell[ci] = make(map[string]float64)
		for k, vs := range acc {
			perCell[ci][k] = stat.Mean(vs)
		}
	}
	names := []string{schemes.NameGPS, schemes.NameWiFi, schemes.NameCellular, schemes.NameMotion, schemes.NameFusion}
	var avgs [4]float64
	var avgN [4]int
	for _, name := range names {
		row := []string{name}
		for ci := range cells {
			v, ok := perCell[ci][name]
			if !ok {
				row = append(row, "n/a")
				continue
			}
			row = append(row, eval.F(v))
			if !math.IsNaN(v) {
				avgs[ci] += v
				avgN[ci]++
			}
		}
		t.AddRow(row...)
	}
	avgRow := []string{"average"}
	for ci := range cells {
		if avgN[ci] == 0 {
			avgRow = append(avgRow, "n/a")
			continue
		}
		avgRow = append(avgRow, eval.F(avgs[ci]/float64(avgN[ci])))
	}
	t.AddRow(avgRow...)
	return &Report{
		ID: "Table III", Title: "error-prediction accuracy across places and devices",
		Tables: []*eval.Table{t},
		Notes: []string{
			"paper shape: same place/device lowest (~0.5), new place + different device highest (~0.76); prediction stays useful despite the growth",
		},
	}, nil
}
