// Package experiments regenerates every table and figure of the
// paper's evaluation (§II, §III, §V) plus the ablations listed in
// DESIGN.md §6. Each experiment returns a Report of text tables whose
// rows/series mirror what the paper plots; cmd/uniloc-bench prints
// them all, and the root bench_test.go wraps each as a benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/eval"
)

// Report is one experiment's regenerated output.
type Report struct {
	ID     string
	Title  string
	Tables []*eval.Table
	Notes  []string
}

// String renders the report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "######## %s — %s ########\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Suite runs experiments over one shared lab (trained models and
// surveyed places are built once and reused).
type Suite struct {
	Lab *eval.Lab

	// TraceWriter, when non-nil, receives one JSONL epoch trace per
	// framework step of the trace-driven experiments (TableV) for
	// offline analysis. cmd/uniloc-bench wires -trace to this.
	TraceWriter io.Writer
}

// NewSuite creates a suite with the given master seed.
func NewSuite(seed int64) *Suite {
	return &Suite{Lab: eval.NewLab(seed)}
}

// Experiment is a named regeneration entry point.
type Experiment struct {
	ID  string
	Run func() (*Report, error)
}

// All returns every experiment in paper order.
func (s *Suite) All() []Experiment {
	return []Experiment{
		{"table1", s.TableI},
		{"table2", s.TableII},
		{"table3", s.TableIII},
		{"figure2", s.Figure2},
		{"figure3", s.Figure3},
		{"figure5", s.Figure5},
		{"figure6", s.Figure6},
		{"figure7", s.Figure7},
		{"figure8a", s.Figure8a},
		{"figure8b", s.Figure8b},
		{"figure8c", s.Figure8c},
		{"figure8d", s.Figure8d},
		{"table4", s.TableIV},
		{"table5", s.TableV},
		{"outage", s.SchemeOutage},
		{"chaos", s.Chaos},
		{"ablation-weighting", s.AblationWeighting},
		{"ablation-spacing", s.AblationSpacing},
		{"ablation-training-size", s.AblationTrainingSize},
	}
}

// ByID returns the experiment with the given ID.
func (s *Suite) ByID(id string) (Experiment, bool) {
	for _, e := range s.All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Warm pre-builds the lab's shared artifacts — trained models and all
// surveyed places — so concurrent experiments only ever read them. The
// Lab's lazy caches are not safe for concurrent population; warming
// turns every subsequent access into a plain pointer read.
func (s *Suite) Warm() error {
	if _, err := s.Lab.Trained(); err != nil {
		return err
	}
	s.Lab.Campus()
	s.Lab.Mall()
	s.Lab.Urban()
	s.Lab.TrainingOffice()
	s.Lab.TrainingOpen()
	return nil
}

// Result is one experiment's outcome from a RunAll batch.
type Result struct {
	Experiment Experiment
	Report     *Report
	Err        error
	Elapsed    time.Duration
}

// RunAll executes the experiments with at most workers running
// concurrently and returns their results in input order. Every
// experiment carries its own seeds and builds its own frameworks, so
// concurrent runs produce the same reports as sequential ones; with
// workers > 1 the shared lab is warmed first (see Warm). emit, when
// non-nil, is called once per experiment in input order, as soon as
// that experiment and all earlier ones have finished — streaming,
// ordered progress for cmd/uniloc-bench -j.
func (s *Suite) RunAll(exps []Experiment, workers int, emit func(Result)) ([]Result, error) {
	if workers > 1 {
		if err := s.Warm(); err != nil {
			return nil, err
		}
	}
	results := make([]Result, len(exps))
	done := make([]chan struct{}, len(exps))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, max(workers, 1))
	for i := range exps {
		go func(i int) {
			sem <- struct{}{}
			defer func() {
				<-sem
				close(done[i])
			}()
			start := time.Now()
			rep, err := exps[i].Run()
			results[i] = Result{Experiment: exps[i], Report: rep, Err: err, Elapsed: time.Since(start)}
		}(i)
	}
	for i := range exps {
		<-done[i]
		if emit != nil {
			emit(results[i])
		}
	}
	return results, nil
}
