package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// sampleTrace is a fully populated epoch trace; every field must
// survive the JSONL round trip.
func sampleTrace(epoch int) EpochTrace {
	return EpochTrace{
		Epoch:      epoch,
		Env:        "indoor",
		Tau:        3.75,
		GPSWanted:  epoch%2 == 0,
		Best:       "wifi",
		OK:         true,
		ClassifyNS: 1200,
		PredictNS:  48000,
		CombineNS:  2100,
		StepNS:     310000,
		Schemes: []SchemeTrace{
			{Scheme: "wifi", Available: true, EstimateNS: 250000, PredictNS: 30000,
				PredErr: 2.5, Sigma: 1.1, Conf: 0.83, Weight: 0.7},
			{Scheme: "gps", Available: false},
			{Scheme: "motion", Available: true, EstimateNS: 51000, PredictNS: 18000,
				PredErr: 4.75, Sigma: 2.25, Conf: 0.41, Weight: 0.3},
		},
	}
}

// TestJSONLRoundTrip is the golden encode → decode → identical-record
// test: traces written by JSONLWriter must come back byte-equal in
// meaning through ReadJSONL.
func TestJSONLRoundTrip(t *testing.T) {
	want := []EpochTrace{sampleTrace(0), sampleTrace(1), sampleTrace(2)}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for i := range want {
		w.ObserveEpoch(&want[i])
	}
	if lines := strings.Count(buf.String(), "\n"); lines != len(want) {
		t.Fatalf("wrote %d lines, want %d", lines, len(want))
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadJSONLSkipsBlankLinesAndReportsErrors(t *testing.T) {
	in := "\n" + `{"epoch":5,"env":"outdoor","ok":true}` + "\n\n"
	got, err := ReadJSONL(strings.NewReader(in))
	if err != nil || len(got) != 1 || got[0].Epoch != 5 || got[0].Env != "outdoor" {
		t.Fatalf("got %+v err=%v", got, err)
	}
	if _, err := ReadJSONL(strings.NewReader("{broken\n")); err == nil {
		t.Fatal("malformed line should error")
	}
}

func TestCollectorCopiesAndConcurrency(t *testing.T) {
	var c Collector
	tr := sampleTrace(1)
	c.ObserveEpoch(&tr)
	// Mutating the original after observation must not change the
	// collected copy.
	tr.Schemes[0].Weight = 99
	if got := c.Traces()[0].Schemes[0].Weight; got != 0.7 {
		t.Fatalf("collector shares the caller's scheme slice (weight=%v)", got)
	}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr := sampleTrace(i*100 + j)
				c.ObserveEpoch(&tr)
			}
		}(i)
	}
	wg.Wait()
	if got := c.Len(); got != 801 {
		t.Fatalf("collected %d traces, want 801", got)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset did not clear traces")
	}
}

func TestMultiObserverFansOut(t *testing.T) {
	var a, b Collector
	obs := MultiObserver(&a, nil, &b)
	tr := sampleTrace(3)
	obs.ObserveEpoch(&tr)
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("fan-out reached a=%d b=%d observers, want 1 and 1", a.Len(), b.Len())
	}
}
