package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// JSONLWriter is an Observer that appends one JSON object per epoch
// trace to an io.Writer — the export format for offline analysis
// (spreadsheets, jq, notebook tooling). Safe for concurrent use: each
// line is written atomically under a mutex.
type JSONLWriter struct {
	mu  sync.Mutex
	enc *json.Encoder
}

// NewJSONLWriter wraps w. The caller owns w's lifetime (and any
// buffering/flushing).
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// ObserveEpoch implements Observer. Encoding errors are silently
// dropped — telemetry must never take down the serving path; callers
// that care wrap the writer with their own error tracking.
func (j *JSONLWriter) ObserveEpoch(t *EpochTrace) {
	j.mu.Lock()
	_ = j.enc.Encode(t)
	j.mu.Unlock()
}

// ReadJSONL decodes a stream of epoch traces written by JSONLWriter
// (one JSON object per line; blank lines are skipped).
func ReadJSONL(r io.Reader) ([]EpochTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []EpochTrace
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var t EpochTrace
		if err := json.Unmarshal(b, &t); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: jsonl scan: %w", err)
	}
	return out, nil
}
