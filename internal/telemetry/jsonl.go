package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// JSONLWriter is an Observer that appends one JSON object per epoch
// trace to an io.Writer — the export format for offline analysis
// (spreadsheets, jq, notebook tooling). Safe for concurrent use: each
// line is written atomically under a mutex.
//
// Encoding or write failures never reach the serving path, but they
// are no longer invisible: the trace is dropped and counted (Drops,
// and the optional jsonl_encode_errors_total counter wired by
// SetMetrics), and the most recent error is retained for Err() so
// shutdown paths can report a broken export destination.
type JSONLWriter struct {
	mu      sync.Mutex
	enc     *json.Encoder
	lastErr error

	drops  atomic.Int64
	errCtr *Counter
}

// NewJSONLWriter wraps w. The caller owns w's lifetime (and any
// buffering/flushing).
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// SetMetrics registers the writer's drop counter on reg as
// jsonl_encode_errors_total{stream="epochs"} (the span exporter in
// telemetry/trace registers the same name with stream="spans"). Call
// before attaching the writer as an observer.
func (j *JSONLWriter) SetMetrics(reg *Registry) {
	j.errCtr = reg.Counter("jsonl_encode_errors_total",
		"JSONL records dropped because encoding or the underlying write failed",
		"stream", "epochs")
}

// ObserveEpoch implements Observer. Failed traces are dropped and
// counted rather than propagated — telemetry must never take down the
// serving path.
func (j *JSONLWriter) ObserveEpoch(t *EpochTrace) {
	j.mu.Lock()
	if err := j.enc.Encode(t); err != nil {
		j.lastErr = err
		j.drops.Add(1)
		j.errCtr.Inc()
	}
	j.mu.Unlock()
}

// Drops returns how many traces failed to encode or write.
func (j *JSONLWriter) Drops() int64 { return j.drops.Load() }

// Err returns the most recent encode/write error, or nil.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastErr
}

// ReadJSONL decodes a stream of epoch traces written by JSONLWriter
// (one JSON object per line; blank lines are skipped).
func ReadJSONL(r io.Reader) ([]EpochTrace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []EpochTrace
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var t EpochTrace
		if err := json.Unmarshal(b, &t); err != nil {
			return nil, fmt.Errorf("telemetry: jsonl line %d: %w", line, err)
		}
		out = append(out, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: jsonl scan: %w", err)
	}
	return out, nil
}
