package telemetry

import (
	"sync"
	"time"
)

// SchemeTrace is one scheme's share of an epoch: how long its estimate
// and error prediction took and what the framework concluded about it.
// Durations are nanoseconds so traces serialize compactly and
// deterministically.
type SchemeTrace struct {
	Scheme     string  `json:"scheme"`
	Available  bool    `json:"available"`
	StartNS    int64   `json:"start_ns,omitempty"` // offset from step start (span reconstruction)
	EstimateNS int64   `json:"estimate_ns"`        // Scheme.Estimate wall time
	PredictNS  int64   `json:"predict_ns"`         // error-model Predict wall time
	PredErr    float64 `json:"pred_err"`           // μ̂: predicted localization error (m)
	Sigma      float64 `json:"sigma"`              // σ_ε of the error model
	Conf       float64 `json:"conf"`               // c = P(Y ≤ τ)
	Weight     float64 `json:"weight"`             // BMA weight after pruning

	// Failure containment (omitted when clean, so healthy traces are
	// byte-identical to pre-chaos ones).
	Panicked    bool `json:"panicked,omitempty"`    // Estimate/Predict panicked; recovered, scheme unavailable
	Quarantined bool `json:"quarantined,omitempty"` // estimate discarded for NaN/Inf output
}

// EpochTrace is one structured record per framework epoch: the live
// decomposition behind the paper's Table V (per-scheme execution,
// error prediction, BMA) plus the self-assessment state the paper
// treats as UniLoc's core output (environment class, τ, gating
// decision, per-scheme availability/confidence/predicted error).
type EpochTrace struct {
	Epoch     int     `json:"epoch"`
	Env       string  `json:"env"`                // indoor / outdoor
	Tau       float64 `json:"tau"`                // adaptive confidence threshold (m)
	GPSWanted bool    `json:"gps_wanted"`         // gating decision for the next epoch
	Best      string  `json:"best,omitempty"`     // UniLoc1's selected scheme
	OK        bool    `json:"ok"`                 // at least one scheme was available
	Fallback  bool    `json:"fallback,omitempty"` // answered from the last good estimate

	ClassifyNS int64 `json:"classify_ns"` // IODetector update
	PredictNS  int64 `json:"predict_ns"`  // all error-model predictions
	CombineNS  int64 `json:"combine_ns"`  // τ + weighting + selection + BMA
	StepNS     int64 `json:"step_ns"`     // full Framework.Step wall time

	// StartMono is the monotonic wall-clock reading taken at the top of
	// Framework.Step — the anchor that lets the span tracer place this
	// epoch (and its scheme children, via SchemeTrace.StartNS offsets)
	// on a shared timeline. Excluded from JSON: serialized traces carry
	// durations only, keeping them byte-identical across runs.
	StartMono time.Time `json:"-"`

	Schemes []SchemeTrace `json:"schemes"`
}

// Observer receives one trace per framework epoch. Implementations
// must not retain the trace past the call unless they copy it — the
// framework may reuse nothing today, but the contract keeps the hot
// path free to pool records later. Observers attached to a framework
// are called from that framework's goroutine only; observers shared
// across frameworks (e.g. one JSONL writer behind a multi-session
// server) must be safe for concurrent use.
type Observer interface {
	ObserveEpoch(*EpochTrace)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(*EpochTrace)

// ObserveEpoch implements Observer.
func (f ObserverFunc) ObserveEpoch(t *EpochTrace) { f(t) }

// MultiObserver fans one trace out to several observers in order.
func MultiObserver(obs ...Observer) Observer {
	flat := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			flat = append(flat, o)
		}
	}
	return ObserverFunc(func(t *EpochTrace) {
		for _, o := range flat {
			o.ObserveEpoch(t)
		}
	})
}

// Collector is an Observer that retains deep copies of every trace,
// for offline analysis (experiments.TableV regenerates the paper's
// response-time decomposition from a Collector's traces). Safe for
// concurrent use.
type Collector struct {
	mu     sync.Mutex
	traces []EpochTrace
}

// ObserveEpoch implements Observer.
func (c *Collector) ObserveEpoch(t *EpochTrace) {
	cp := *t
	cp.Schemes = append([]SchemeTrace(nil), t.Schemes...)
	c.mu.Lock()
	c.traces = append(c.traces, cp)
	c.mu.Unlock()
}

// Traces returns a copy of the collected traces in arrival order.
func (c *Collector) Traces() []EpochTrace {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]EpochTrace(nil), c.traces...)
}

// Len returns how many traces have been collected.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// Reset discards all collected traces.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.traces = nil
	c.mu.Unlock()
}
