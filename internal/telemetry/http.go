package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"strings"
)

// MuxOption customizes the mux built by NewMux.
type MuxOption func(*http.ServeMux)

// WithHandler mounts an extra handler on the mux — the hook cmd code
// uses to attach subsystems telemetry must not import (the span
// tracer's /debug/traces lives in internal/telemetry/trace, which
// imports this package; the dependency cannot point both ways).
func WithHandler(pattern string, h http.Handler) MuxOption {
	return func(mux *http.ServeMux) { mux.Handle(pattern, h) }
}

// NewMux builds the exposition endpoint served by cmd/uniloc-server's
// -metrics-addr listener:
//
//	/metrics       Prometheus text exposition format
//	               (or the JSON snapshot when the request prefers
//	               Accept: application/json)
//	/metrics.json  the same snapshot as indented JSON
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  CPU/heap/goroutine/block profiling
//
// pprof handlers are mounted explicitly rather than via the package's
// DefaultServeMux side effect, so importing telemetry never pollutes a
// caller's default mux.
func NewMux(reg *Registry, opts ...MuxOption) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if wantsJSON(r) {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			_ = reg.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, opt := range opts {
		opt(mux)
	}
	return mux
}

// wantsJSON reports whether the request explicitly prefers JSON:
// application/json must appear in Accept and text/plain must not
// precede it. Prometheus scrapers send text-oriented Accept headers
// (or none), so the text format stays the default.
func wantsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	ij := strings.Index(accept, "application/json")
	if ij < 0 {
		return false
	}
	if it := strings.Index(accept, "text/plain"); it >= 0 && it < ij {
		return false
	}
	return true
}
