package telemetry

import (
	"expvar"
	"net/http"
	"net/http/pprof"
)

// NewMux builds the exposition endpoint served by cmd/uniloc-server's
// -metrics-addr listener:
//
//	/metrics       Prometheus text exposition format
//	/metrics.json  the same snapshot as indented JSON
//	/debug/vars    expvar (Go runtime memstats, cmdline)
//	/debug/pprof/  CPU/heap/goroutine/block profiling
//
// pprof handlers are mounted explicitly rather than via the package's
// DefaultServeMux side effect, so importing telemetry never pollutes a
// caller's default mux.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
