package telemetry

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("uniloc_epochs_total", "epochs served")
	c.Inc()
	c.Add(4)
	c.Add(-7) // negative deltas are ignored: counters stay monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("uniloc_sessions_active", "live sessions")
	g.Set(3)
	g.Add(2)
	g.Add(-1)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %v, want 4", got)
	}

	// Get-or-create returns the same instrument.
	if r.Counter("uniloc_epochs_total", "") != c {
		t.Fatal("second Counter call returned a different instrument")
	}
	// Labels distinguish instruments; order does not matter.
	a := r.Counter("uniloc_bytes_total", "", "dir", "in", "proto", "tcp")
	b := r.Counter("uniloc_bytes_total", "", "proto", "tcp", "dir", "in")
	if a != b {
		t.Fatal("label order changed instrument identity")
	}
	if a == r.Counter("uniloc_bytes_total", "", "dir", "out", "proto", "tcp") {
		t.Fatal("different label values shared an instrument")
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var r *Registry // nil registry hands out nil instruments
	c := r.Counter("x", "")
	g := r.Gauge("y", "")
	h := r.Histogram("z", "", DefBuckets())
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(0.5)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-106.5) > 1e-9 {
		t.Fatalf("sum = %v, want 106.5", h.Sum())
	}
	// Cumulative buckets: ≤1:1, ≤2:3, ≤4:4, +Inf:5.
	got := h.snapshotBuckets()
	want := []uint64{1, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (all %v)", i, got[i], want[i], got)
		}
	}
	// Median lands in the (1,2] bucket; overflow quantiles interpolate
	// toward the observed max instead of clamping to the last bound.
	if q := h.Quantile(0.5); q <= 1 || q > 2 {
		t.Fatalf("p50 = %v, want in (1,2]", q)
	}
	if q := h.Quantile(0.99); q <= 4 || q > 100 {
		t.Fatalf("p99 = %v, want in (4,100] (overflow interpolation)", q)
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %v, want 100", h.Max())
	}
}

// TestHistogramOverflowQuantiles feeds adversarial spike distributions:
// almost all mass in the bottom bucket with rare huge outliers, and an
// all-overflow stream. The old clamping behavior reported the last
// finite bound for every upper quantile, hiding the tail entirely.
func TestHistogramOverflowQuantiles(t *testing.T) {
	// 999 tiny observations + one 100x spike past the last bound (10).
	h := NewHistogram([]float64{0.01, 0.1, 1, 10})
	for i := 0; i < 999; i++ {
		h.Observe(0.001)
	}
	h.Observe(100)
	// p99.9 rank lands exactly on the 999 tiny values; p99.95 is the
	// spike and must escape the finite buckets.
	if q := h.Quantile(0.9995); q <= 10 || q > 100 {
		t.Fatalf("p99.95 = %v, want in (10,100]", q)
	}
	if q := h.Quantile(0.5); q > 0.01 {
		t.Fatalf("p50 = %v, want <= 0.01", q)
	}
	if h.Overflow() != 1 {
		t.Fatalf("overflow = %d, want 1", h.Overflow())
	}
	if h.Max() != 100 {
		t.Fatalf("max = %v, want 100", h.Max())
	}

	// Every observation past the last bound: quantiles must live in
	// (last bound, max], and be monotone in q.
	h2 := NewHistogram([]float64{1, 2})
	for _, v := range []float64{5, 50, 500} {
		h2.Observe(v)
	}
	prev := 0.0
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		v := h2.Quantile(q)
		if v <= 2 || v > 500 {
			t.Fatalf("all-overflow q%v = %v, want in (2,500]", q, v)
		}
		if v < prev {
			t.Fatalf("quantiles not monotone: q%v = %v < %v", q, v, prev)
		}
		prev = v
	}
	if h2.Overflow() != 3 {
		t.Fatalf("overflow = %d, want 3", h2.Overflow())
	}

	// Empty histogram stays well-defined.
	h3 := NewHistogram([]float64{1})
	if h3.Quantile(0.99) != 0 || h3.Max() != 0 || h3.Overflow() != 0 {
		t.Fatalf("empty histogram: q=%v max=%v overflow=%d, want zeros",
			h3.Quantile(0.99), h3.Max(), h3.Overflow())
	}
}

// TestRegistryConcurrent hammers every instrument type from many
// goroutines while a reader snapshots continuously; run under -race
// this is the registry's thread-safety proof, and the final counts
// prove no increment was lost.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	const perWorker = 2000

	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := r.Snapshot()
				var sb strings.Builder
				_ = r.WritePrometheus(&sb)
				_ = snap
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Workers race on instrument creation too, not just updates.
			c := r.Counter("hammer_total", "")
			g := r.Gauge("hammer_gauge", "")
			h := r.Histogram("hammer_seconds", "", []float64{0.001, 0.01, 0.1, 1})
			lc := r.Counter("hammer_labeled_total", "", "worker", "shared")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				lc.Add(2)
				g.Set(float64(i))
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	snap := r.Snapshot()
	if v, ok := snap.Get("hammer_total"); !ok || v != workers*perWorker {
		t.Fatalf("hammer_total = %v ok=%v, want %d", v, ok, workers*perWorker)
	}
	if v, ok := snap.Get("hammer_labeled_total", "worker", "shared"); !ok || v != 2*workers*perWorker {
		t.Fatalf("hammer_labeled_total = %v ok=%v, want %d", v, ok, 2*workers*perWorker)
	}
	h := r.Histogram("hammer_seconds", "", nil)
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*perWorker)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("uniloc_epochs_total", "epochs served", "env", "indoor").Add(7)
	r.Gauge("uniloc_sessions_active", "live sessions").Set(2)
	h := r.Histogram("uniloc_step_seconds", "framework step latency", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE uniloc_epochs_total counter",
		`uniloc_epochs_total{env="indoor"} 7`,
		"# TYPE uniloc_sessions_active gauge",
		"uniloc_sessions_active 2",
		"# TYPE uniloc_step_seconds histogram",
		`uniloc_step_seconds_bucket{le="0.001"} 1`,
		`uniloc_step_seconds_bucket{le="0.01"} 1`,
		`uniloc_step_seconds_bucket{le="+Inf"} 2`,
		"uniloc_step_seconds_sum 0.5005",
		"uniloc_step_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPMuxEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("uniloc_epochs_total", "").Add(3)
	srv := httptest.NewServer(NewMux(r))
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "uniloc_epochs_total 3") {
		t.Fatalf("/metrics: code=%d body=%q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"uniloc_epochs_total"`) {
		t.Fatalf("/metrics.json: code=%d body=%q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars: code=%d", code)
	}
	if code, _ := get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/: code=%d", code)
	}
}
