package trace

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// tracesResponse is the /debug/traces JSON payload.
type tracesResponse struct {
	// TracerStartUnixNS anchors every monotonic timestamp in the
	// payload to wall time.
	TracerStartUnixNS int64 `json:"tracer_start_unix_ns"`

	SpansTotal   int64 `json:"spans_total"`
	SpansDropped int64 `json:"spans_dropped"`

	Traces []*Tree `json:"traces"`

	// Exemplars are the K slowest complete traces of the current and
	// previous rotation windows.
	Exemplars     []Exemplar `json:"exemplars,omitempty"`
	ExemplarsPrev []Exemplar `json:"exemplars_prev,omitempty"`
}

// Handler serves the tracer's ring buffer as JSON trace trees at
// /debug/traces. Query parameters:
//
//	session=<id>     only traces touching the session
//	trace=<hex id>   only the named trace
//	min_dur=<dur>    only traces at least this long (Go duration, e.g. 5ms)
//	complete=1       only traces whose root span was captured
//	limit=<n>        newest n traces (default 100)
func Handler(t *Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !t.Enabled() {
			http.Error(w, "tracing disabled", http.StatusNotFound)
			return
		}
		q := r.URL.Query()
		limit := 100
		if v := q.Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				http.Error(w, "bad limit", http.StatusBadRequest)
				return
			}
			limit = n
		}
		var minDur time.Duration
		if v := q.Get("min_dur"); v != "" {
			d, err := time.ParseDuration(v)
			if err != nil {
				http.Error(w, "bad min_dur (want a Go duration, e.g. 5ms)", http.StatusBadRequest)
				return
			}
			minDur = d
		}
		session := q.Get("session")
		traceID := q.Get("trace")
		completeOnly := q.Get("complete") == "1"

		trees := Assemble(t.Snapshot())
		out := make([]*Tree, 0, len(trees))
		for _, tr := range trees {
			if len(out) >= limit {
				break
			}
			if traceID != "" && tr.Trace != traceID {
				continue
			}
			if session != "" && tr.Session != session {
				continue
			}
			if tr.DurNS < int64(minDur) {
				continue
			}
			if completeOnly && !tr.Complete() {
				continue
			}
			out = append(out, tr)
		}
		cur, prev := t.Exemplars().Snapshot()
		resp := tracesResponse{
			TracerStartUnixNS: t.EpochWall(),
			SpansTotal:        t.Spans(),
			SpansDropped:      t.Dropped(),
			Traces:            out,
			Exemplars:         cur,
			ExemplarsPrev:     prev,
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
	})
}
