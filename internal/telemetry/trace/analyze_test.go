package trace

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// rec is a shorthand constructor for hand-built span records.
func rec(traceID, span, parent, name string, start, dur int64) *Record {
	return &Record{Trace: traceID, Span: span, Parent: parent, Name: name, StartNS: start, DurNS: dur}
}

func TestAssembleGroupsAndRoots(t *testing.T) {
	recs := []*Record{
		rec("t1", "b", "a", "child", 15, 5),
		rec("t1", "a", "", "root", 10, 20),
		rec("t2", "x", "missing", "orphan", 100, 3),
	}
	trees := Assemble(recs)
	if len(trees) != 2 {
		t.Fatalf("got %d trees, want 2", len(trees))
	}
	// Newest start first: t2 (100) before t1 (10).
	if trees[0].Trace != "t2" || trees[1].Trace != "t1" {
		t.Fatalf("order = %s, %s", trees[0].Trace, trees[1].Trace)
	}
	t1 := trees[1]
	if !t1.Complete() || t1.Root.Span != "a" {
		t.Errorf("t1 root = %+v", t1.Root)
	}
	if t1.StartNS != 10 || t1.DurNS != 20 {
		t.Errorf("t1 extent = %d +%d, want 10 +20", t1.StartNS, t1.DurNS)
	}
	if t1.Spans[0].Span != "a" || t1.Spans[1].Span != "b" {
		t.Errorf("t1 spans not sorted by start: %+v", t1.Spans)
	}
	// t2's only span has a parent absent from the set, so it is still
	// picked as the root (the server-side view of a client-rooted trace).
	if trees[0].Root == nil || trees[0].Root.Span != "x" {
		t.Errorf("t2 root = %+v", trees[0].Root)
	}
}

func TestPhases(t *testing.T) {
	trees := Assemble([]*Record{
		rec("t1", "a", "", "step", 0, 10),
		rec("t1", "b", "a", "scheme.wifi", 0, 7),
		rec("t2", "c", "", "step", 50, 30),
		rec("t2", "d", "c", "scheme.wifi", 50, 4),
	})
	ph := Phases(trees)
	if len(ph) != 2 {
		t.Fatalf("got %d phases, want 2", len(ph))
	}
	if ph[0].Name != "step" || ph[0].Count != 2 || ph[0].TotalNS != 40 || ph[0].MaxNS != 30 {
		t.Errorf("step phase = %+v", ph[0])
	}
	if ph[1].Name != "scheme.wifi" || ph[1].TotalNS != 11 || ph[1].MaxNS != 7 {
		t.Errorf("scheme phase = %+v", ph[1])
	}
}

func TestCriticalPathUnionsOverlaps(t *testing.T) {
	root := rec("t", "r", "", "frame", 0, 100)
	trees := Assemble([]*Record{
		root,
		rec("t", "c1", "r", "read", 0, 30),
		rec("t", "c2", "r", "step", 20, 40),   // overlaps c1 by 10
		rec("t", "c3", "r", "write", 90, 20),  // runs past the parent; clamped
		rec("t", "g1", "c2", "scheme", 25, 5), // grandchild: not counted
	})
	cov := CriticalPath(trees[0], root)
	// Union of [0,30) ∪ [20,60) ∪ [90,100) = 60 + 10 = 70.
	if cov.ChildNS != 70 {
		t.Errorf("ChildNS = %d, want 70", cov.ChildNS)
	}
	if cov.GapNS != 30 {
		t.Errorf("GapNS = %d, want 30", cov.GapNS)
	}
	if cov.Fraction != 0.7 {
		t.Errorf("Fraction = %v, want 0.7", cov.Fraction)
	}
	if cov.ChildCount != 3 {
		t.Errorf("ChildCount = %d, want 3", cov.ChildCount)
	}
}

func TestCriticalPathZeroLengthSpan(t *testing.T) {
	root := rec("t", "r", "", "marker", 5, 0)
	trees := Assemble([]*Record{root})
	if cov := CriticalPath(trees[0], root); cov.Fraction != 1 {
		t.Errorf("zero-length Fraction = %v, want 1", cov.Fraction)
	}
}

func TestEpochSpansSynthesizesTree(t *testing.T) {
	tr := New(Config{Seed: 7})
	e := NewEpochSpans(tr, "sess-1")
	parent := SpanContext{Trace: tr.NewTraceID(), Span: tr.NewSpanID()}
	e.SetParent(parent)
	batch := SpanContext{Trace: tr.NewTraceID(), Span: tr.NewSpanID()}
	e.SetBatch(batch, 9)

	start := time.Now().Add(-time.Millisecond)
	e.ObserveEpoch(&telemetry.EpochTrace{
		Epoch:      3,
		Env:        "indoor",
		OK:         true,
		Best:       "wifi",
		Tau:        0.5,
		StartMono:  start,
		ClassifyNS: 100,
		CombineNS:  200,
		StepNS:     1000,
		Schemes: []telemetry.SchemeTrace{
			{Scheme: "wifi", Available: true, StartNS: 100, EstimateNS: 300, PredictNS: 50,
				PredErr: 1.5, Conf: 0.9, Weight: 0.6},
			{Scheme: "pdr", Available: false, StartNS: 450, EstimateNS: 10, PredictNS: 5, Panicked: true},
		},
	})

	recs := tr.Snapshot()
	byName := map[string]*Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	step := byName["step"]
	if step == nil {
		t.Fatalf("no step span in %d records", len(recs))
	}
	if step.Trace != parent.Trace.String() || step.Parent != parent.Span.String() {
		t.Errorf("step not parented to frame: %+v", step)
	}
	if step.Session != "sess-1" || step.DurNS != 1000 {
		t.Errorf("step = %+v", step)
	}
	wantBase := tr.At(start)
	if step.StartNS != wantBase {
		t.Errorf("step start = %d, want %d (anchored at StartMono)", step.StartNS, wantBase)
	}
	attrs := func(r *Record) map[string]interface{} {
		m := map[string]interface{}{}
		for _, a := range r.Attrs {
			m[a.K] = a.V
		}
		return m
	}
	sa := attrs(step)
	if sa["batch_trace"] != batch.Trace.String() || sa["batch_tick"] != int64(9) {
		t.Errorf("batch link attrs = %+v", sa)
	}
	cl := byName["classify"]
	if cl == nil || cl.StartNS != wantBase || cl.DurNS != 100 || cl.Parent != step.Span {
		t.Errorf("classify = %+v", cl)
	}
	wifi := byName["scheme.wifi"]
	if wifi == nil || wifi.StartNS != wantBase+100 || wifi.DurNS != 350 {
		t.Errorf("scheme.wifi = %+v", wifi)
	}
	wa := attrs(wifi)
	if wa["available"] != true || wa["weight"] != 0.6 {
		t.Errorf("wifi attrs = %+v", wa)
	}
	pdr := byName["scheme.pdr"]
	if pdr == nil {
		t.Fatal("no scheme.pdr span")
	}
	pa := attrs(pdr)
	if pa["available"] != false || pa["panicked"] != true {
		t.Errorf("pdr attrs = %+v", pa)
	}
	if _, hasWeight := pa["weight"]; hasWeight {
		t.Error("unavailable scheme must not carry weight attr")
	}
	comb := byName["combine"]
	if comb == nil || comb.StartNS != wantBase+800 || comb.DurNS != 200 {
		t.Errorf("combine = %+v", comb)
	}
	if byName["fallback"] != nil {
		t.Error("ok epoch must not emit fallback span")
	}

	// All of it assembles into one complete tree when the frame root is
	// present too.
	frame := &Record{Trace: parent.Trace.String(), Span: parent.Span.String(),
		Name: "server.frame", StartNS: wantBase - 10, DurNS: 1100}
	trees := Assemble(append(recs, frame))
	if len(trees) != 1 || !trees[0].Complete() || trees[0].Root.Name != "server.frame" {
		t.Fatalf("trees = %+v", trees)
	}
	// classify [0,100) + wifi [100,450) + pdr [450,465) + combine
	// [800,1000) = 665 of the step's 1000ns.
	cov := CriticalPath(trees[0], byName["step"])
	if cov.ChildNS != 665 || cov.Fraction != 0.665 {
		t.Errorf("step child coverage = %d (%v), want 665 (0.665)", cov.ChildNS, cov.Fraction)
	}
}

func TestEpochSpansFallbackAndNilSafety(t *testing.T) {
	var e *EpochSpans
	e.SetParent(SpanContext{}) // must not panic
	e.SetBatch(SpanContext{}, 0)

	tr := New(Config{Seed: 7})
	eb := NewEpochSpans(tr, "s")
	eb.ObserveEpoch(&telemetry.EpochTrace{StepNS: 10, Fallback: true})
	found := false
	for _, r := range tr.Snapshot() {
		if r.Name == "fallback" {
			found = true
		}
	}
	if !found {
		t.Error("degraded epoch must emit fallback span")
	}

	// A bridge with a nil tracer is a no-op observer.
	nb := NewEpochSpans(nil, "s")
	nb.ObserveEpoch(&telemetry.EpochTrace{StepNS: 10})
}

func TestHandlerFilters(t *testing.T) {
	tr := New(Config{Seed: 11})
	mk := func(name, session string, dur int64) SpanContext {
		s := tr.Start(name, SpanContext{})
		s.SetSession(session)
		ctx := s.Context()
		s.EndNS(tr.Now() + dur)
		return ctx
	}
	aCtx := mk("server.frame", "alpha", int64(50*time.Millisecond))
	mk("server.frame", "beta", int64(time.Millisecond))
	// An incomplete trace: child whose root was never captured... except
	// Assemble treats a parentless-set span as root, so instead emit a
	// span pair and drop the root by using a parent that IS in the set
	// minus itself — the simplest incomplete shape is unreachable here;
	// complete=1 filtering is still exercised against complete trees.

	h := Handler(tr)
	get := func(url string) (int, tracesResponse) {
		req := httptest.NewRequest("GET", url, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		var resp tracesResponse
		if w.Code == 200 {
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatalf("bad JSON from %s: %v", url, err)
			}
		}
		return w.Code, resp
	}

	code, resp := get("/debug/traces")
	if code != 200 || len(resp.Traces) != 2 {
		t.Fatalf("unfiltered: code=%d traces=%d", code, len(resp.Traces))
	}
	if resp.SpansTotal != 2 {
		t.Errorf("SpansTotal = %d", resp.SpansTotal)
	}
	if len(resp.Exemplars) != 2 {
		t.Errorf("exemplars = %d, want 2 roots", len(resp.Exemplars))
	}

	code, resp = get("/debug/traces?session=alpha")
	if code != 200 || len(resp.Traces) != 1 || resp.Traces[0].Session != "alpha" {
		t.Fatalf("session filter: code=%d resp=%+v", code, resp.Traces)
	}

	code, resp = get("/debug/traces?trace=" + aCtx.Trace.String())
	if code != 200 || len(resp.Traces) != 1 || resp.Traces[0].Trace != aCtx.Trace.String() {
		t.Fatalf("trace filter: code=%d traces=%d", code, len(resp.Traces))
	}

	code, resp = get("/debug/traces?min_dur=10ms")
	if code != 200 || len(resp.Traces) != 1 || resp.Traces[0].Session != "alpha" {
		t.Fatalf("min_dur filter: code=%d traces=%d", code, len(resp.Traces))
	}

	code, resp = get("/debug/traces?limit=1")
	if code != 200 || len(resp.Traces) != 1 {
		t.Fatalf("limit: code=%d traces=%d", code, len(resp.Traces))
	}

	code, resp = get("/debug/traces?complete=1")
	if code != 200 || len(resp.Traces) != 2 {
		t.Fatalf("complete filter: code=%d traces=%d", code, len(resp.Traces))
	}

	if code, _ = get("/debug/traces?limit=zero"); code != 400 {
		t.Errorf("bad limit: code=%d, want 400", code)
	}
	if code, _ = get("/debug/traces?min_dur=fast"); code != 400 {
		t.Errorf("bad min_dur: code=%d, want 400", code)
	}

	var off *Tracer
	req := httptest.NewRequest("GET", "/debug/traces", nil)
	w := httptest.NewRecorder()
	Handler(off).ServeHTTP(w, req)
	if w.Code != 404 {
		t.Errorf("disabled tracer: code=%d, want 404", w.Code)
	}
}
