package trace

import "sort"

// Tree is one assembled trace: all spans sharing a trace ID, with the
// root identified and the trace's overall extent computed. Spans are
// sorted by start time.
type Tree struct {
	Trace   string    `json:"trace"`
	Session string    `json:"session,omitempty"` // first session label seen
	StartNS int64     `json:"start_ns"`
	DurNS   int64     `json:"dur_ns"` // earliest start → latest end
	Root    *Record   `json:"-"`      // span with no parent in the set; nil if incomplete
	Spans   []*Record `json:"spans"`
}

// Complete reports whether the tree has a root span (its topmost span
// was captured — partially evicted traces have none).
func (t *Tree) Complete() bool { return t.Root != nil }

// Assemble groups span records into trace trees, newest-start first.
func Assemble(recs []*Record) []*Tree {
	byTrace := make(map[string]*Tree)
	var order []*Tree
	for _, r := range recs {
		tr := byTrace[r.Trace]
		if tr == nil {
			tr = &Tree{Trace: r.Trace}
			byTrace[r.Trace] = tr
			order = append(order, tr)
		}
		tr.Spans = append(tr.Spans, r)
	}
	for _, tr := range order {
		ids := make(map[string]bool, len(tr.Spans))
		for _, s := range tr.Spans {
			ids[s.Span] = true
		}
		start, end := tr.Spans[0].StartNS, tr.Spans[0].End()
		for _, s := range tr.Spans {
			if s.StartNS < start {
				start = s.StartNS
			}
			if s.End() > end {
				end = s.End()
			}
			if tr.Session == "" && s.Session != "" {
				tr.Session = s.Session
			}
			// The root is the span whose parent is absent from the
			// captured set (the client's span, for server-side rings).
			if s.Parent == "" || !ids[s.Parent] {
				if tr.Root == nil || s.StartNS < tr.Root.StartNS {
					tr.Root = s
				}
			}
		}
		tr.StartNS, tr.DurNS = start, end-start
		sort.Slice(tr.Spans, func(i, j int) bool { return tr.Spans[i].StartNS < tr.Spans[j].StartNS })
	}
	sort.Slice(order, func(i, j int) bool { return order[i].StartNS > order[j].StartNS })
	return order
}

// PhaseStat is one span name's aggregate across a set of traces.
type PhaseStat struct {
	Name    string
	Count   int
	TotalNS int64
	MaxNS   int64
}

// Phases aggregates span durations by name across trees, sorted by
// total time descending — the per-scheme/per-phase breakdown.
func Phases(trees []*Tree) []PhaseStat {
	byName := make(map[string]*PhaseStat)
	var order []*PhaseStat
	for _, tr := range trees {
		for _, s := range tr.Spans {
			ps := byName[s.Name]
			if ps == nil {
				ps = &PhaseStat{Name: s.Name}
				byName[s.Name] = ps
				order = append(order, ps)
			}
			ps.Count++
			ps.TotalNS += s.DurNS
			if s.DurNS > ps.MaxNS {
				ps.MaxNS = s.DurNS
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].TotalNS > order[j].TotalNS })
	out := make([]PhaseStat, len(order))
	for i, p := range order {
		out[i] = *p
	}
	return out
}

// Coverage is a critical-path accounting of one span: how much of its
// duration is explained by its direct children.
type Coverage struct {
	Span       *Record
	ChildNS    int64   // union of direct-child intervals, clamped to the span
	Fraction   float64 // ChildNS / DurNS (1 for zero-length spans)
	GapNS      int64   // DurNS - ChildNS: self time / unattributed
	ChildCount int
}

// CriticalPath computes child coverage of the given span within its
// tree: the union of its direct children's intervals (overlapping
// children — e.g. schemes fanned out in parallel — are not double
// counted).
func CriticalPath(tr *Tree, span *Record) Coverage {
	cov := Coverage{Span: span}
	type iv struct{ a, b int64 }
	var ivs []iv
	for _, s := range tr.Spans {
		if s.Parent != span.Span {
			continue
		}
		cov.ChildCount++
		a, b := s.StartNS, s.End()
		if a < span.StartNS {
			a = span.StartNS
		}
		if b > span.End() {
			b = span.End()
		}
		if b > a {
			ivs = append(ivs, iv{a, b})
		}
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].a < ivs[j].a })
	var covered, end int64
	for i, v := range ivs {
		if i == 0 || v.a > end {
			covered += v.b - v.a
			end = v.b
		} else if v.b > end {
			covered += v.b - end
			end = v.b
		}
	}
	cov.ChildNS = covered
	cov.GapNS = span.DurNS - covered
	if span.DurNS > 0 {
		cov.Fraction = float64(covered) / float64(span.DurNS)
	} else {
		cov.Fraction = 1
	}
	return cov
}
