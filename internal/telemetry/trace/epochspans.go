package trace

import (
	"repro/internal/telemetry"
)

// EpochSpans bridges the framework's existing telemetry.Observer hook
// into span records: one ObserveEpoch call becomes a "step" span with
// "classify", one "scheme.<name>" child per scheme, "combine", and
// (on degraded epochs) a "fallback" marker. The framework itself
// stays tracer-agnostic — with no observer attached, Step takes no
// timestamps and allocates nothing, exactly as before; the spans are
// synthesized here from the durations the trace already carries.
//
// The serving goroutine parents each epoch by calling SetParent with
// the frame span's context before Step, and the batch scheduler links
// the epoch to its tick via SetBatch. Both writes happen-before the
// Step that consumes them (a framework is driven by one goroutine at
// a time; the batch scheduler's channel handoff orders the rest), so
// EpochSpans needs no locking.
type EpochSpans struct {
	t       *Tracer
	session string

	parent    SpanContext // frame span; zero = each epoch is its own root
	batch     SpanContext // batch tick span, when batched
	batchTick int64
	hasBatch  bool
}

// NewEpochSpans builds the bridge. A nil tracer yields a bridge whose
// ObserveEpoch is a no-op — but prefer not attaching the observer at
// all, so the framework skips trace assembly entirely.
func NewEpochSpans(t *Tracer, session string) *EpochSpans {
	return &EpochSpans{t: t, session: session}
}

// SetParent sets the parent span context for subsequent epochs
// (typically once per frame, from the serving goroutine). Nil-safe, so
// tracer-off servers can call it unconditionally.
func (e *EpochSpans) SetParent(ctx SpanContext) {
	if e != nil {
		e.parent = ctx
	}
}

// SetBatch links subsequent epochs to a batch tick span. Clear by
// passing the zero context. Nil-safe.
func (e *EpochSpans) SetBatch(ctx SpanContext, tick int64) {
	if e != nil {
		e.batch, e.batchTick, e.hasBatch = ctx, tick, ctx.Valid()
	}
}

// ObserveEpoch implements telemetry.Observer.
func (e *EpochSpans) ObserveEpoch(tr *telemetry.EpochTrace) {
	t := e.t
	if t == nil {
		return
	}
	// Anchor the step span on the monotonic start Step recorded; fall
	// back to "it just ended" for traces without one (replayed JSONL).
	var start int64
	if !tr.StartMono.IsZero() {
		start = t.At(tr.StartMono)
	} else {
		start = t.Now() - tr.StepNS
	}
	end := start + tr.StepNS

	step := t.StartNS("step", e.parent, start)
	step.SetSession(e.session)
	step.Attr("epoch", tr.Epoch)
	step.Attr("env", tr.Env)
	step.Attr("ok", tr.OK)
	if tr.Best != "" {
		step.Attr("best", tr.Best)
	}
	if e.hasBatch {
		// Cross-trace link: the batch tick span aggregates many
		// sessions' epochs, each in its own trace, so the relationship
		// travels as attributes rather than as a parent edge.
		step.Attr("batch_trace", e.batch.Trace.String())
		step.Attr("batch_span", e.batch.Span.String())
		step.Attr("batch_tick", e.batchTick)
	}
	stepCtx := step.Context()

	child := func(name string, childStart, dur int64, attrs []Attr) {
		rec := &Record{
			Trace:   stepCtx.Trace.String(),
			Span:    t.NewSpanID().String(),
			Parent:  stepCtx.Span.String(),
			Name:    name,
			Session: e.session,
			StartNS: childStart,
			DurNS:   dur,
			Attrs:   attrs,
		}
		t.Emit(rec)
	}

	child("classify", start, tr.ClassifyNS, nil)
	for i := range tr.Schemes {
		st := &tr.Schemes[i]
		attrs := []Attr{
			{K: "available", V: st.Available},
			{K: "estimate_ns", V: st.EstimateNS},
			{K: "predict_ns", V: st.PredictNS},
		}
		if st.Available {
			attrs = append(attrs,
				Attr{K: "pred_err", V: st.PredErr},
				Attr{K: "conf", V: st.Conf},
				Attr{K: "weight", V: st.Weight})
		}
		if st.Panicked {
			attrs = append(attrs, Attr{K: "panicked", V: true})
		}
		if st.Quarantined {
			attrs = append(attrs, Attr{K: "quarantined", V: true})
		}
		child("scheme."+st.Scheme, start+st.StartNS, st.EstimateNS+st.PredictNS, attrs)
	}
	// Combine (τ, weighting, selection, BMA) is the last phase of the
	// step, so its span is anchored to the step's end.
	child("combine", end-tr.CombineNS, tr.CombineNS, []Attr{{K: "tau", V: tr.Tau}})
	if tr.Fallback {
		child("fallback", end, 0, nil)
	}
	step.EndNS(end)
}
