// Package trace is UniLoc's zero-dependency span tracer: causal,
// per-request visibility across the serving pipeline. Where the
// metrics registry (internal/telemetry) answers "how is the fleet
// doing in aggregate", a trace answers "why was *this* client's epoch
// slow" — one tree of timed spans per request, from the phone's upload
// through the server's batch tick down to each localization scheme.
//
// Design constraints, in order:
//
//  1. Tracing off costs nothing: a nil *Tracer is a valid no-op
//     tracer, every method on it short-circuits, and the serving path
//     takes no timestamps and allocates nothing extra (guarded by
//     AllocsPerRun tests, like the telemetry observer).
//  2. Recording a span never blocks the serving path: completed spans
//     land in a lock-free ring buffer (atomic slot publication), the
//     optional exporter is invoked synchronously but is expected to be
//     cheap (the JSONL exporter is one buffered encode under a mutex).
//  3. Identifiers are W3C-traceparent compatible: 16-byte trace IDs
//     and 8-byte span IDs, rendered lowercase-hex, so UniLoc traces
//     can be correlated with any external tracing system later.
//  4. No dependencies beyond the standard library.
//
// Timestamps are monotonic nanoseconds since the tracer's creation
// (Tracer.EpochWall anchors them to wall time), so span math never
// suffers wall-clock jumps.
package trace

import (
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// TraceID is a W3C-traceparent-compatible 16-byte trace identifier.
type TraceID [16]byte

// SpanID is an 8-byte span identifier.
type SpanID [8]byte

// IsZero reports whether the ID is the invalid all-zero ID.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the ID is the invalid all-zero ID.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the trace ID as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the span ID as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// ParseTraceID parses 32 hex digits.
func ParseTraceID(s string) (TraceID, error) {
	var t TraceID
	if len(s) != 32 {
		return t, fmt.Errorf("trace: trace ID must be 32 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, fmt.Errorf("trace: bad trace ID: %w", err)
	}
	return t, nil
}

// ParseSpanID parses 16 hex digits.
func ParseSpanID(s string) (SpanID, error) {
	var id SpanID
	if len(s) != 16 {
		return id, fmt.Errorf("trace: span ID must be 16 hex digits, got %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return SpanID{}, fmt.Errorf("trace: bad span ID: %w", err)
	}
	return id, nil
}

// SpanContext identifies a span within a trace — the propagation unit
// carried across the wire (protocol v5 packs it into 24 bytes next to
// the epoch header).
type SpanContext struct {
	Trace TraceID
	Span  SpanID
}

// Valid reports whether the context names a real span.
func (c SpanContext) Valid() bool { return !c.Trace.IsZero() && !c.Span.IsZero() }

// ContextBytes is the wire size of an encoded SpanContext.
const ContextBytes = 24

// AppendContext appends the 24-byte wire form (trace ID, span ID).
func AppendContext(dst []byte, c SpanContext) []byte {
	dst = append(dst, c.Trace[:]...)
	return append(dst, c.Span[:]...)
}

// DecodeContext unpacks a 24-byte wire span context.
func DecodeContext(b []byte) (SpanContext, error) {
	var c SpanContext
	if len(b) != ContextBytes {
		return c, fmt.Errorf("trace: span context must be %d bytes, got %d", ContextBytes, len(b))
	}
	copy(c.Trace[:], b[:16])
	copy(c.Span[:], b[16:])
	return c, nil
}

// Attr is one span attribute. Values are strings, bools, or numbers
// (anything json.Marshal handles); the analyzer reads numbers back as
// float64.
type Attr struct {
	K string      `json:"k"`
	V interface{} `json:"v"`
}

// Record is one completed span — the unit stored in the ring buffer
// and exported as JSONL. IDs travel as lowercase hex so records are
// directly greppable and W3C-correlatable.
type Record struct {
	Trace   string `json:"trace"`
	Span    string `json:"span"`
	Parent  string `json:"parent,omitempty"`
	Name    string `json:"name"`
	Session string `json:"session,omitempty"`
	StartNS int64  `json:"start_ns"` // monotonic ns since tracer start
	DurNS   int64  `json:"dur_ns"`
	Attrs   []Attr `json:"attrs,omitempty"`
}

// End returns the span's monotonic end timestamp.
func (r *Record) End() int64 { return r.StartNS + r.DurNS }

// Exporter receives every completed span. Implementations must be
// safe for concurrent use (spans complete on serving goroutines, batch
// workers, and the client's goroutine alike) and must never block for
// long — they run synchronously on the recording path.
type Exporter interface {
	ExportSpan(*Record)
}

// Config configures a Tracer. The zero value picks sane defaults.
type Config struct {
	// RingSize is the capacity of the in-memory completed-span ring
	// buffer behind /debug/traces. Rounded up to a power of two;
	// default 4096.
	RingSize int

	// ExemplarK is how many slowest-trace exemplars to retain per
	// window (default 8); ExemplarWindow is the rotation period
	// (default 1 minute).
	ExemplarK      int
	ExemplarWindow time.Duration

	// Exporter, when set, receives every completed span (e.g. the
	// JSONL span exporter).
	Exporter Exporter

	// Seed fixes the ID-generation stream for deterministic tests.
	// 0 derives a seed from the clock.
	Seed uint64
}

// Tracer creates spans and fans completed spans out to the ring
// buffer, the exemplar collector, and the optional exporter. A nil
// Tracer is a valid disabled tracer: every method is a no-op and
// Start returns an inert Span.
type Tracer struct {
	t0      time.Time
	wall0   int64 // wall unix-nanos at t0
	idState atomic.Uint64
	ring    *ring
	ex      *Exemplars
	exp     Exporter
	spans   atomic.Int64 // completed spans, ever
	dropped atomic.Int64 // spans overwritten in the ring before a read
}

// New builds a Tracer from the config.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 4096
	}
	if cfg.ExemplarK <= 0 {
		cfg.ExemplarK = 8
	}
	if cfg.ExemplarWindow <= 0 {
		cfg.ExemplarWindow = time.Minute
	}
	now := time.Now()
	t := &Tracer{
		t0:    now,
		wall0: now.UnixNano(),
		ring:  newRing(cfg.RingSize),
		ex:    NewExemplars(cfg.ExemplarK, cfg.ExemplarWindow),
		exp:   cfg.Exporter,
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(now.UnixNano()) | 1
	}
	t.idState.Store(seed)
	return t
}

// Enabled reports whether the tracer records spans (false for nil).
func (t *Tracer) Enabled() bool { return t != nil }

// EpochWall returns the wall-clock unix nanoseconds corresponding to
// monotonic timestamp 0 — the anchor for converting Record.StartNS to
// wall time.
func (t *Tracer) EpochWall() int64 {
	if t == nil {
		return 0
	}
	return t.wall0
}

// Now returns the tracer's monotonic clock: nanoseconds since the
// tracer was created.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.t0))
}

// At converts an absolute time to the tracer's monotonic clock.
func (t *Tracer) At(at time.Time) int64 {
	if t == nil {
		return 0
	}
	return int64(at.Sub(t.t0))
}

// splitmix64 advances the ID stream — lock-free (one atomic add) and
// well-distributed, which is all span IDs need. Crypto-strength IDs
// are explicitly a non-goal: traces are an operator diagnostic, not a
// security boundary.
func (t *Tracer) next64() uint64 {
	z := t.idState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewTraceID mints a fresh non-zero trace ID.
func (t *Tracer) NewTraceID() TraceID {
	var id TraceID
	if t == nil {
		return id
	}
	for id.IsZero() {
		a, b := t.next64(), t.next64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

// NewSpanID mints a fresh non-zero span ID.
func (t *Tracer) NewSpanID() SpanID {
	var id SpanID
	if t == nil {
		return id
	}
	for id.IsZero() {
		a := t.next64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
		}
	}
	return id
}

// Span is one in-flight span. The zero Span (and any Span from a nil
// Tracer) is inert: attributes and End are no-ops. Spans are values —
// starting one allocates nothing until attributes are attached.
type Span struct {
	t       *Tracer
	ctx     SpanContext
	parent  SpanID
	hasPar  bool
	name    string
	session string
	startNS int64
	root    bool // offer to the exemplar collector on End
	attrs   []Attr
}

// Start opens a span now. An invalid parent starts a new root trace
// (and marks the span as an exemplar candidate); a valid parent
// continues the parent's trace.
func (t *Tracer) Start(name string, parent SpanContext) Span {
	if t == nil {
		return Span{}
	}
	return t.StartNS(name, parent, t.Now())
}

// StartAt opens a span with an explicit start time — for callers that
// learn the trace context only after the work began (e.g. the server
// reads a whole epoch before it knows the client's trace ID).
func (t *Tracer) StartAt(name string, parent SpanContext, at time.Time) Span {
	if t == nil {
		return Span{}
	}
	return t.StartNS(name, parent, t.At(at))
}

// StartNS opens a span at an explicit monotonic timestamp.
func (t *Tracer) StartNS(name string, parent SpanContext, startNS int64) Span {
	if t == nil {
		return Span{}
	}
	s := Span{t: t, name: name, startNS: startNS}
	if parent.Valid() {
		s.ctx = SpanContext{Trace: parent.Trace, Span: t.NewSpanID()}
		s.parent = parent.Span
		s.hasPar = true
	} else {
		s.ctx = SpanContext{Trace: t.NewTraceID(), Span: t.NewSpanID()}
		s.root = true
	}
	return s
}

// Context returns the span's propagation context (zero for inert
// spans).
func (s *Span) Context() SpanContext {
	if s.t == nil {
		return SpanContext{}
	}
	return s.ctx
}

// Recording reports whether the span will produce a Record on End.
func (s *Span) Recording() bool { return s.t != nil }

// SetSession labels the span (and its exemplar, if any) with a
// session/client identifier.
func (s *Span) SetSession(id string) {
	if s.t != nil {
		s.session = id
	}
}

// SetRoot overrides exemplar-candidate status: the server marks its
// frame spans complete-trace roots even when they continue a client's
// trace.
func (s *Span) SetRoot(root bool) {
	if s.t != nil {
		s.root = root
	}
}

// Attr attaches one attribute. No-op on inert spans.
func (s *Span) Attr(k string, v interface{}) {
	if s.t != nil {
		s.attrs = append(s.attrs, Attr{K: k, V: v})
	}
}

// End completes the span now and publishes its Record.
func (s *Span) End() {
	if s.t == nil {
		return
	}
	s.EndNS(s.t.Now())
}

// EndNS completes the span at an explicit monotonic timestamp.
func (s *Span) EndNS(endNS int64) {
	if s.t == nil {
		return
	}
	dur := endNS - s.startNS
	if dur < 0 {
		dur = 0
	}
	rec := &Record{
		Trace:   s.ctx.Trace.String(),
		Span:    s.ctx.Span.String(),
		Name:    s.name,
		Session: s.session,
		StartNS: s.startNS,
		DurNS:   dur,
		Attrs:   s.attrs,
	}
	if s.hasPar {
		rec.Parent = s.parent.String()
	}
	s.t.Emit(rec)
	if s.root {
		s.t.ex.Offer(Exemplar{
			Trace:   rec.Trace,
			Name:    s.name,
			Session: s.session,
			EndNS:   endNS,
			DurNS:   dur,
		})
	}
	s.t = nil // double-End is a no-op
}

// Emit publishes a completed span record directly — the low-level
// path used by synthesized spans (the epoch-trace bridge reconstructs
// per-scheme child spans from measured durations after the fact).
// The record must not be mutated after Emit.
func (t *Tracer) Emit(rec *Record) {
	if t == nil {
		return
	}
	t.spans.Add(1)
	if t.ring.put(rec) {
		t.dropped.Add(1)
	}
	if t.exp != nil {
		t.exp.ExportSpan(rec)
	}
}

// OfferExemplar offers a completed trace to the tail-latency exemplar
// collector directly (for callers composing spans via Emit).
func (t *Tracer) OfferExemplar(e Exemplar) {
	if t == nil {
		return
	}
	t.ex.Offer(e)
}

// Spans returns how many spans have completed since the tracer
// started; Dropped returns how many were overwritten in the ring
// before being read (the ring keeps the newest spans).
func (t *Tracer) Spans() int64 {
	if t == nil {
		return 0
	}
	return t.spans.Load()
}

// Dropped returns how many completed spans have been overwritten in
// the ring buffer (they were still exported, if an exporter is set).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Snapshot returns the ring buffer's current contents, oldest first.
func (t *Tracer) Snapshot() []*Record {
	if t == nil {
		return nil
	}
	return t.ring.snapshot()
}

// Exemplars returns the tracer's tail-latency exemplar collector.
func (t *Tracer) Exemplars() *Exemplars {
	if t == nil {
		return nil
	}
	return t.ex
}
