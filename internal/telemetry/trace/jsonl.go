package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// JSONLWriter is an Exporter appending one JSON object per completed
// span — the span-stream twin of telemetry.JSONLWriter's epoch
// traces, and the input format of `uniloc-trace`. Safe for concurrent
// use; each line is written atomically under a mutex.
//
// Encoding failures never reach the serving path: the span is dropped
// and counted (Drops, the optional jsonl_encode_errors_total counter)
// and the most recent error is retained for Err().
type JSONLWriter struct {
	mu      sync.Mutex
	enc     *json.Encoder
	lastErr error

	drops  atomic.Int64
	errCtr *telemetry.Counter
}

// NewJSONLWriter wraps w. The caller owns w's lifetime (and any
// buffering/flushing).
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// SetMetrics registers the exporter's drop counter on reg as
// jsonl_encode_errors_total{stream="spans"} (the epoch-trace writer
// registers the same name with stream="epochs").
func (j *JSONLWriter) SetMetrics(reg *telemetry.Registry) {
	j.errCtr = reg.Counter("jsonl_encode_errors_total",
		"JSONL records dropped because encoding or the underlying write failed",
		"stream", "spans")
}

// ExportSpan implements Exporter.
func (j *JSONLWriter) ExportSpan(r *Record) {
	j.mu.Lock()
	if err := j.enc.Encode(r); err != nil {
		j.lastErr = err
		j.drops.Add(1)
		j.errCtr.Inc()
	}
	j.mu.Unlock()
}

// Drops returns how many spans failed to encode or write.
func (j *JSONLWriter) Drops() int64 { return j.drops.Load() }

// Err returns the most recent encode/write error, or nil.
func (j *JSONLWriter) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lastErr
}

// ReadJSONL decodes a stream of span records written by JSONLWriter
// (one JSON object per line; blank lines are skipped).
func ReadJSONL(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("trace: jsonl line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: jsonl scan: %w", err)
	}
	return out, nil
}
