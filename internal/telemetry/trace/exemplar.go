package trace

import (
	"sort"
	"sync"
	"time"
)

// Exemplar is one complete trace retained for its tail latency: the
// trace ID is the hook — paste it into /debug/traces?trace=<id> or
// `uniloc-trace -trace <id>` to see exactly where that request's time
// went. Exemplars are what connect the latency histograms' anonymous
// p99 to a concrete, inspectable span tree.
type Exemplar struct {
	Trace   string `json:"trace"`
	Name    string `json:"name"`
	Session string `json:"session,omitempty"`
	EndNS   int64  `json:"end_ns"` // monotonic completion time
	DurNS   int64  `json:"dur_ns"`
}

// Exemplars retains the K slowest complete traces per rotation
// window. Offers happen once per completed root span (once per served
// frame), so a small mutex is cheap relative to the epoch it
// annotates; the ring buffer stays the lock-free path.
type Exemplars struct {
	k      int
	window int64 // ns; monotonic timestamps partition into windows

	mu       sync.Mutex
	cur      []Exemplar // current window, unsorted beyond heap property
	curStart int64
	prev     []Exemplar // last completed window, sorted slowest-first
}

// NewExemplars builds a collector keeping the k slowest traces per
// window.
func NewExemplars(k int, window time.Duration) *Exemplars {
	if k <= 0 {
		k = 8
	}
	if window <= 0 {
		window = time.Minute
	}
	return &Exemplars{k: k, window: int64(window)}
}

// Offer submits one completed trace. Nil-safe.
func (e *Exemplars) Offer(x Exemplar) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if x.EndNS-e.curStart >= e.window {
		// Rotate: the finished window becomes the stable "previous"
		// snapshot operators compare against.
		e.rotateLocked(x.EndNS)
	}
	if len(e.cur) < e.k {
		e.cur = append(e.cur, x)
		return
	}
	// Evict the fastest retained exemplar if this one is slower.
	min := 0
	for i := 1; i < len(e.cur); i++ {
		if e.cur[i].DurNS < e.cur[min].DurNS {
			min = i
		}
	}
	if x.DurNS > e.cur[min].DurNS {
		e.cur[min] = x
	}
}

// rotateLocked closes the current window at now.
func (e *Exemplars) rotateLocked(now int64) {
	if len(e.cur) > 0 {
		sort.Slice(e.cur, func(i, j int) bool { return e.cur[i].DurNS > e.cur[j].DurNS })
		e.prev = e.cur
		e.cur = nil
	}
	// Align the new window to the offer that triggered rotation; gaps
	// with no traffic simply extend the old window's lifetime.
	e.curStart = now
}

// Snapshot returns the exemplars of the current (in-progress) and
// previous (complete) windows, both sorted slowest-first. Nil-safe.
func (e *Exemplars) Snapshot() (cur, prev []Exemplar) {
	if e == nil {
		return nil, nil
	}
	e.mu.Lock()
	cur = append([]Exemplar(nil), e.cur...)
	prev = append([]Exemplar(nil), e.prev...)
	e.mu.Unlock()
	sort.Slice(cur, func(i, j int) bool { return cur[i].DurNS > cur[j].DurNS })
	return cur, prev
}
