package trace

import "sync/atomic"

// ring is the lock-free completed-span buffer behind /debug/traces:
// a power-of-two slice of atomically published slots. Writers claim a
// slot with one atomic add and publish the record with one atomic
// store; readers load every slot pointer. No mutex anywhere, so a
// burst of completing spans never serializes the serving path, and a
// slow /debug/traces scrape never blocks a writer — at worst a reader
// observes a slot mid-rotation and sees the newer record.
type ring struct {
	slots []atomic.Pointer[Record]
	head  atomic.Uint64 // next sequence number to claim
}

// newRing builds a ring with capacity rounded up to a power of two.
func newRing(size int) *ring {
	n := 1
	for n < size {
		n <<= 1
	}
	return &ring{slots: make([]atomic.Pointer[Record], n)}
}

// put publishes rec, returning true when it overwrote an older record
// (the ring has wrapped).
func (r *ring) put(rec *Record) (overwrote bool) {
	seq := r.head.Add(1) - 1
	slot := &r.slots[seq&uint64(len(r.slots)-1)]
	return slot.Swap(rec) != nil
}

// snapshot copies the current contents, oldest claimed slot first.
// Records are immutable after Emit, so sharing the pointers is safe.
func (r *ring) snapshot() []*Record {
	head := r.head.Load()
	n := uint64(len(r.slots))
	start := uint64(0)
	if head > n {
		start = head - n
	}
	out := make([]*Record, 0, head-start)
	for seq := start; seq < head; seq++ {
		if rec := r.slots[seq&(n-1)].Load(); rec != nil {
			out = append(out, rec)
		}
	}
	return out
}
