package trace

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func testTracer(t *testing.T, cfg Config) *Tracer {
	t.Helper()
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return New(cfg)
}

func TestIDRoundTrip(t *testing.T) {
	tr := testTracer(t, Config{})
	tid := tr.NewTraceID()
	if tid.IsZero() {
		t.Fatal("trace ID is zero")
	}
	got, err := ParseTraceID(tid.String())
	if err != nil || got != tid {
		t.Fatalf("trace ID round trip: %v %v", got, err)
	}
	sid := tr.NewSpanID()
	if sid.IsZero() {
		t.Fatal("span ID is zero")
	}
	gs, err := ParseSpanID(sid.String())
	if err != nil || gs != sid {
		t.Fatalf("span ID round trip: %v %v", gs, err)
	}
	if _, err := ParseTraceID("xyz"); err == nil {
		t.Error("short trace ID must not parse")
	}
	if _, err := ParseTraceID(strings.Repeat("g", 32)); err == nil {
		t.Error("non-hex trace ID must not parse")
	}
	if _, err := ParseSpanID("123"); err == nil {
		t.Error("short span ID must not parse")
	}
}

func TestIDsDistinct(t *testing.T) {
	tr := testTracer(t, Config{})
	seen := make(map[TraceID]bool)
	for i := 0; i < 1000; i++ {
		id := tr.NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID after %d draws", i)
		}
		seen[id] = true
	}
}

func TestContextWire(t *testing.T) {
	tr := testTracer(t, Config{})
	c := SpanContext{Trace: tr.NewTraceID(), Span: tr.NewSpanID()}
	b := AppendContext(nil, c)
	if len(b) != ContextBytes {
		t.Fatalf("wire size = %d, want %d", len(b), ContextBytes)
	}
	got, err := DecodeContext(b)
	if err != nil || got != c {
		t.Fatalf("context round trip: %+v %v", got, err)
	}
	if _, err := DecodeContext(b[:10]); err == nil {
		t.Error("short context must not decode")
	}
	var zero SpanContext
	if zero.Valid() {
		t.Error("zero context must be invalid")
	}
	z, err := DecodeContext(AppendContext(nil, zero))
	if err != nil || z.Valid() {
		t.Errorf("zero context round trip: %+v %v", z, err)
	}
}

func TestSpanParentChild(t *testing.T) {
	tr := testTracer(t, Config{})
	root := tr.Start("root", SpanContext{})
	root.Attr("k", "v")
	child := tr.Start("child", root.Context())
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	var rr, cr *Record
	for _, r := range recs {
		switch r.Name {
		case "root":
			rr = r
		case "child":
			cr = r
		}
	}
	if rr == nil || cr == nil {
		t.Fatalf("missing spans: %+v", recs)
	}
	if cr.Trace != rr.Trace {
		t.Errorf("child trace %s != root trace %s", cr.Trace, rr.Trace)
	}
	if cr.Parent != rr.Span {
		t.Errorf("child parent %s != root span %s", cr.Parent, rr.Span)
	}
	if rr.Parent != "" {
		t.Errorf("root has parent %s", rr.Parent)
	}
	if len(rr.Attrs) != 1 || rr.Attrs[0].K != "k" {
		t.Errorf("root attrs = %+v", rr.Attrs)
	}
	if tr.Spans() != 2 {
		t.Errorf("Spans() = %d", tr.Spans())
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer must be disabled")
	}
	s := tr.Start("x", SpanContext{})
	s.Attr("a", 1)
	s.SetSession("s")
	s.SetRoot(true)
	if s.Recording() || s.Context().Valid() {
		t.Fatal("nil tracer span must be inert")
	}
	s.End() // must not panic
	tr.Emit(&Record{})
	tr.OfferExemplar(Exemplar{})
	if tr.Snapshot() != nil || tr.Spans() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
	if tr.Now() != 0 || tr.EpochWall() != 0 {
		t.Fatal("nil tracer clock must be zero")
	}
}

func TestDoubleEndIsNoop(t *testing.T) {
	tr := testTracer(t, Config{})
	s := tr.Start("once", SpanContext{})
	s.End()
	s.End()
	if got := tr.Spans(); got != 1 {
		t.Fatalf("double End produced %d records", got)
	}
}

func TestRingWrapCountsDropped(t *testing.T) {
	tr := testTracer(t, Config{RingSize: 4})
	for i := 0; i < 10; i++ {
		s := tr.Start("s", SpanContext{})
		s.End()
	}
	recs := tr.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring snapshot = %d records, want 4", len(recs))
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped() = %d, want 6", tr.Dropped())
	}
	if tr.Spans() != 10 {
		t.Errorf("Spans() = %d, want 10", tr.Spans())
	}
}

func TestRingSnapshotOldestFirst(t *testing.T) {
	r := newRing(4)
	for i := 0; i < 6; i++ {
		r.put(&Record{StartNS: int64(i)})
	}
	recs := r.snapshot()
	if len(recs) != 4 {
		t.Fatalf("snapshot = %d, want 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].StartNS < recs[i-1].StartNS {
			t.Fatalf("not oldest-first: %v then %v", recs[i-1].StartNS, recs[i].StartNS)
		}
	}
}

func TestConcurrentEmitRace(t *testing.T) {
	tr := testTracer(t, Config{RingSize: 64})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := tr.Start("hot", SpanContext{})
				s.End()
				_ = tr.Snapshot()
			}
		}()
	}
	wg.Wait()
	if tr.Spans() != 8*200 {
		t.Fatalf("Spans() = %d, want %d", tr.Spans(), 8*200)
	}
}

func TestStartAtAndAt(t *testing.T) {
	tr := testTracer(t, Config{})
	at := time.Now().Add(-50 * time.Millisecond)
	s := tr.StartAt("past", SpanContext{}, at)
	s.End()
	rec := tr.Snapshot()[0]
	if rec.StartNS != tr.At(at) {
		t.Errorf("StartNS = %d, want %d", rec.StartNS, tr.At(at))
	}
	if rec.DurNS < int64(40*time.Millisecond) {
		t.Errorf("DurNS = %d, want >= 40ms", rec.DurNS)
	}
}

func TestExemplarsKeepKSlowest(t *testing.T) {
	e := NewExemplars(3, time.Hour)
	for i := 1; i <= 10; i++ {
		e.Offer(Exemplar{Trace: strings.Repeat("a", i), DurNS: int64(i), EndNS: int64(i)})
	}
	cur, prev := e.Snapshot()
	if len(prev) != 0 {
		t.Fatalf("prev window = %d exemplars, want 0", len(prev))
	}
	if len(cur) != 3 {
		t.Fatalf("cur window = %d exemplars, want 3", len(cur))
	}
	// K slowest of 1..10 are 10, 9, 8, slowest-first.
	for i, want := range []int64{10, 9, 8} {
		if cur[i].DurNS != want {
			t.Errorf("cur[%d].DurNS = %d, want %d", i, cur[i].DurNS, want)
		}
	}
}

func TestExemplarsRotateWindows(t *testing.T) {
	win := int64(time.Second)
	e := NewExemplars(2, time.Duration(win))
	e.Offer(Exemplar{Trace: "t1", DurNS: 5, EndNS: 10})
	e.Offer(Exemplar{Trace: "t2", DurNS: 7, EndNS: 20})
	// Next offer lands past the window: the old window rotates to prev.
	e.Offer(Exemplar{Trace: "t3", DurNS: 1, EndNS: win + 30})
	cur, prev := e.Snapshot()
	if len(prev) != 2 || prev[0].Trace != "t2" || prev[1].Trace != "t1" {
		t.Fatalf("prev = %+v, want t2 then t1", prev)
	}
	if len(cur) != 1 || cur[0].Trace != "t3" {
		t.Fatalf("cur = %+v, want t3", cur)
	}
}

func TestExemplarsNilSafe(t *testing.T) {
	var e *Exemplars
	e.Offer(Exemplar{})
	cur, prev := e.Snapshot()
	if cur != nil || prev != nil {
		t.Fatal("nil collector must report nothing")
	}
}

func TestRootSpanFeedsExemplars(t *testing.T) {
	tr := testTracer(t, Config{ExemplarK: 4})
	root := tr.Start("frame", SpanContext{})
	root.SetSession("s1")
	child := tr.Start("inner", root.Context())
	child.End()
	root.End()
	cur, _ := tr.Exemplars().Snapshot()
	if len(cur) != 1 {
		t.Fatalf("exemplars = %d, want 1 (root only)", len(cur))
	}
	if cur[0].Name != "frame" || cur[0].Session != "s1" {
		t.Errorf("exemplar = %+v", cur[0])
	}
	if cur[0].Trace != tr.Snapshot()[1].Trace && cur[0].Trace != tr.Snapshot()[0].Trace {
		t.Errorf("exemplar trace %s not in ring", cur[0].Trace)
	}
}

func TestSetRootFalseSkipsExemplar(t *testing.T) {
	tr := testTracer(t, Config{})
	s := tr.Start("batch.tick", SpanContext{})
	s.SetRoot(false)
	s.End()
	if cur, _ := tr.Exemplars().Snapshot(); len(cur) != 0 {
		t.Fatalf("non-root span produced exemplar: %+v", cur)
	}
}

// failWriter fails every write after the first n.
type failWriter struct {
	n int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestJSONLWriterCountsDrops(t *testing.T) {
	w := &failWriter{n: 2}
	j := NewJSONLWriter(w)
	for i := 0; i < 5; i++ {
		j.ExportSpan(&Record{Trace: "t", Span: "s", Name: "x"})
	}
	if j.Drops() != 3 {
		t.Errorf("Drops() = %d, want 3", j.Drops())
	}
	if j.Err() == nil || !strings.Contains(j.Err().Error(), "disk full") {
		t.Errorf("Err() = %v, want disk full", j.Err())
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var sb strings.Builder
	j := NewJSONLWriter(&sb)
	in := []*Record{
		{Trace: "aa", Span: "01", Name: "root", Session: "s", StartNS: 10, DurNS: 5,
			Attrs: []Attr{{K: "n", V: 3.0}, {K: "b", V: true}}},
		{Trace: "aa", Span: "02", Parent: "01", Name: "child", StartNS: 11, DurNS: 2},
	}
	for _, r := range in {
		j.ExportSpan(r)
	}
	if j.Drops() != 0 || j.Err() != nil {
		t.Fatalf("unexpected drops: %d %v", j.Drops(), j.Err())
	}
	out, err := ReadJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("read %d records, want 2", len(out))
	}
	if out[0].Trace != "aa" || out[0].Name != "root" || len(out[0].Attrs) != 2 {
		t.Errorf("record 0 = %+v", out[0])
	}
	if out[1].Parent != "01" {
		t.Errorf("record 1 parent = %q", out[1].Parent)
	}
	if _, err := ReadJSONL(strings.NewReader("{bad json\n")); err == nil {
		t.Error("malformed line must error")
	}
}
