// External test package: exercising NewMux together with the span
// tracer's /debug/traces handler requires importing telemetry/trace,
// which imports telemetry — an internal test file would cycle.
package telemetry_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

func newTestRegistry(t *testing.T) *telemetry.Registry {
	t.Helper()
	reg := telemetry.NewRegistry()
	reg.Counter("test_requests_total", "requests seen", "code", "200").Add(3)
	return reg
}

func get(t *testing.T, mux *http.ServeMux, path string, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, req)
	return w
}

func TestMuxRouteTable(t *testing.T) {
	mux := telemetry.NewMux(newTestRegistry(t))
	for _, tc := range []struct {
		path     string
		wantCode int
		wantCT   string
	}{
		{"/metrics", 200, "text/plain"},
		{"/metrics.json", 200, "application/json"},
		{"/debug/vars", 200, "application/json"},
		{"/debug/pprof/", 200, "text/html"},
		{"/debug/pprof/cmdline", 200, "text/plain"},
		{"/debug/pprof/symbol", 200, "text/plain"},
		{"/nope", 404, ""},
	} {
		w := get(t, mux, tc.path)
		if w.Code != tc.wantCode {
			t.Errorf("%s: code = %d, want %d", tc.path, w.Code, tc.wantCode)
			continue
		}
		if tc.wantCT != "" && !strings.Contains(w.Header().Get("Content-Type"), tc.wantCT) {
			t.Errorf("%s: Content-Type = %q, want %q", tc.path, w.Header().Get("Content-Type"), tc.wantCT)
		}
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	mux := telemetry.NewMux(newTestRegistry(t))

	// Default (no Accept): Prometheus text exposition.
	w := get(t, mux, "/metrics")
	if !strings.Contains(w.Body.String(), `test_requests_total{code="200"} 3`) {
		t.Errorf("text body missing counter:\n%s", w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "# TYPE test_requests_total counter") {
		t.Error("text body missing TYPE line")
	}

	// Explicit JSON preference.
	w = get(t, mux, "/metrics", "Accept", "application/json")
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("Accept json: Content-Type = %q", ct)
	}
	var snap []json.RawMessage
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil {
		t.Fatalf("Accept json: body is not JSON: %v\n%s", err, w.Body.String())
	}
	if len(snap) == 0 {
		t.Error("Accept json: empty snapshot")
	}

	// Prometheus-style Accept listing text first stays text even when
	// json appears later in the list.
	w = get(t, mux, "/metrics", "Accept", "text/plain;version=0.0.4, application/json;q=0.1")
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("text-first Accept: Content-Type = %q, want text", ct)
	}

	// json listed before text wins.
	w = get(t, mux, "/metrics", "Accept", "application/json, text/plain;q=0.5")
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("json-first Accept: Content-Type = %q, want json", ct)
	}
}

func TestWithHandlerMountsTraces(t *testing.T) {
	tr := trace.New(trace.Config{Seed: 5})
	s := tr.Start("server.frame", trace.SpanContext{})
	s.SetSession("sess")
	s.End()

	mux := telemetry.NewMux(newTestRegistry(t),
		telemetry.WithHandler("/debug/traces", trace.Handler(tr)))

	w := get(t, mux, "/debug/traces")
	if w.Code != 200 {
		t.Fatalf("/debug/traces: code = %d\n%s", w.Code, w.Body.String())
	}
	var resp struct {
		SpansTotal int64             `json:"spans_total"`
		Traces     []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if resp.SpansTotal != 1 || len(resp.Traces) != 1 {
		t.Errorf("resp = %+v", resp)
	}

	// The standard routes still work with options applied.
	if w := get(t, mux, "/metrics"); w.Code != 200 {
		t.Errorf("/metrics after WithHandler: code = %d", w.Code)
	}
}

// TestMuxConcurrentScrapeHammer drives /metrics and /debug/traces while
// spans and counters are being written — meaningful under -race.
func TestMuxConcurrentScrapeHammer(t *testing.T) {
	reg := telemetry.NewRegistry()
	tr := trace.New(trace.Config{Seed: 13, RingSize: 64})
	mux := telemetry.NewMux(reg,
		telemetry.WithHandler("/debug/traces", trace.Handler(tr)))

	const writers, scrapes = 4, 50
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			label := fmt.Sprintf("w%d", id)
			ctr := reg.Counter("hammer_total", "hammered", "worker", label)
			for i := 0; i < scrapes; i++ {
				ctr.Inc()
				s := tr.Start("hot", trace.SpanContext{})
				s.SetSession(label)
				s.End()
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scrapes; i++ {
				for _, p := range []string{"/metrics", "/debug/traces", "/metrics.json"} {
					req := httptest.NewRequest("GET", p, nil)
					w := httptest.NewRecorder()
					mux.ServeHTTP(w, req)
					if w.Code != 200 {
						t.Errorf("%s: code = %d", p, w.Code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if tr.Spans() != writers*scrapes {
		t.Errorf("Spans() = %d, want %d", tr.Spans(), writers*scrapes)
	}
}
