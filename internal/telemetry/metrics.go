// Package telemetry is UniLoc's zero-dependency observability layer:
// a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms with label support) cheap enough for per-epoch use on the
// hot path, an epoch-trace observer protocol that turns the framework's
// internal timing into structured records (the live counterpart of the
// paper's Table V response-time decomposition), and HTTP exposition in
// Prometheus text and JSON formats.
//
// Design constraints, in order:
//
//  1. Updates are lock-free: counters and histogram buckets are single
//     atomic adds; gauges are a single atomic store. Registration (the
//     only locked path) happens once at setup, and callers hold the
//     returned instrument pointer.
//  2. Every instrument is nil-receiver safe, so instrumented code runs
//     unchanged — and at near-zero cost — when no registry is
//     configured.
//  3. No dependencies beyond the standard library.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates instrument types in snapshots and exposition.
type Kind int

// Instrument kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing count. The zero value is
// usable; a nil counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be >= 0 to keep the counter monotonic; negative
// deltas are ignored).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is usable;
// a nil gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64 // math.Float64bits
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop; gauges are updated rarely compared to
// counters).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative-style
// exposition, like Prometheus). Observe is two atomic adds plus a CAS
// for the running sum. The zero value is NOT usable — buckets must be
// set — but a nil histogram is a no-op.
type Histogram struct {
	bounds  []float64       // sorted upper bounds; +Inf bucket implicit
	counts  []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	count   atomic.Uint64
	sum     atomic.Uint64 // math.Float64bits of the running sum
	maxBits atomic.Uint64 // math.Float64bits of the largest observation; -Inf when empty
}

// NewHistogram builds a standalone (unregistered) histogram over the
// given bucket upper bounds. Bounds are sorted and deduplicated; an
// implicit +Inf bucket catches the overflow.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if i == 0 || b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	h := &Histogram{bounds: uniq, counts: make([]atomic.Uint64, len(uniq)+1)}
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// DefBuckets are default latency buckets in seconds, spanning 10 µs to
// ~10 s — wide enough for both a sub-millisecond framework step and a
// slow wide-area round trip.
func DefBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Max returns the largest value observed so far, or 0 when the
// histogram is empty.
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.maxBits.Load())
}

// Overflow returns the number of observations that landed past the
// largest finite bound (the implicit +Inf bucket).
func (h *Histogram) Overflow() uint64 {
	if h == nil || len(h.counts) == 0 {
		return 0
	}
	return h.counts[len(h.counts)-1].Load()
}

// Quantile estimates the q-quantile (0 < q < 1) from the buckets by
// linear interpolation within the bucket that contains it. When the
// quantile lands in the overflow (+Inf) bucket it interpolates between
// the largest finite bound and the largest observation actually seen,
// instead of clamping to the bound — a p95/p99 past the last bucket is
// reported as such rather than silently folded down. Overflow() says
// how many observations that tail holds.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || len(h.bounds) == 0 {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum, prev uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		cum += n
		if float64(cum) >= rank {
			var lo, hi float64
			if i >= len(h.bounds) { // overflow bucket: finite bound -> observed max
				lo = h.bounds[len(h.bounds)-1]
				hi = math.Float64frombits(h.maxBits.Load())
				if hi <= lo {
					return lo
				}
			} else {
				if i > 0 {
					lo = h.bounds[i-1]
				}
				hi = h.bounds[i]
			}
			if n == 0 {
				return hi
			}
			frac := (rank - float64(prev)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		prev = cum
	}
	return math.Float64frombits(h.maxBits.Load())
}

// snapshotBuckets returns cumulative counts aligned with bounds plus
// the +Inf total.
func (h *Histogram) snapshotBuckets() []uint64 {
	out := make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// metric is one registered instrument with its identity.
type metric struct {
	name   string
	help   string
	kind   Kind
	labels []string // alternating key, value
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a set of named instruments. Get-or-create methods are
// safe for concurrent use; the instruments they return are shared by
// all callers asking for the same (name, labels) pair. A nil registry
// hands out nil instruments, which are no-ops.
type Registry struct {
	mu      sync.Mutex
	byKey   map[string]*metric
	ordered []*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// key builds the identity of a (name, labels) pair.
func metricKey(name string, labels []string) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0xff)
		b.WriteString(l)
	}
	return b.String()
}

// normalize validates an alternating key/value label list, returning a
// copy with pairs sorted by key for a stable identity.
func normalizeLabels(labels []string) []string {
	if len(labels) == 0 {
		return nil
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q", labels))
	}
	type pair struct{ k, v string }
	ps := make([]pair, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		ps = append(ps, pair{labels[i], labels[i+1]})
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
	out := make([]string, 0, len(labels))
	for _, p := range ps {
		out = append(out, p.k, p.v)
	}
	return out
}

// lookup returns the metric for (name, labels), creating it with mk on
// first use. It panics if the name is already registered with a
// different kind.
func (r *Registry) lookup(name, help string, kind Kind, labels []string, mk func(*metric)) *metric {
	labels = normalizeLabels(labels)
	k := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[k]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: %s re-registered as %v (was %v)", name, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels}
	mk(m)
	r.byKey[k] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the counter for (name, labels), creating it on first
// use. Labels are an alternating key, value list.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindCounter, labels, func(m *metric) { m.c = &Counter{} }).c
}

// Gauge returns the gauge for (name, labels), creating it on first
// use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindGauge, labels, func(m *metric) { m.g = &Gauge{} }).g
}

// Histogram returns the histogram for (name, labels), creating it over
// the given buckets on first use (later callers share the original
// buckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, KindHistogram, labels, func(m *metric) { m.h = NewHistogram(buckets) }).h
}

// Point is one instrument's state in a snapshot.
type Point struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Help   string   `json:"help,omitempty"`
	Labels []string `json:"labels,omitempty"` // alternating key, value

	Value float64 `json:"value"` // counter count or gauge value; histogram sum

	// Histogram-only fields.
	Count    uint64    `json:"count,omitempty"`
	Bounds   []float64 `json:"bounds,omitempty"`
	Buckets  []uint64  `json:"buckets,omitempty"`  // cumulative, aligned with Bounds + +Inf
	Overflow uint64    `json:"overflow,omitempty"` // observations past the largest finite bound
	Max      float64   `json:"max,omitempty"`      // largest single observation
}

// Snapshot is a point-in-time copy of a registry.
type Snapshot []Point

// Get returns the value of the named point (counters and gauges),
// matching labels exactly.
func (s Snapshot) Get(name string, labels ...string) (float64, bool) {
	want := normalizeLabels(labels)
	for _, p := range s {
		if p.Name != name || len(p.Labels) != len(want) {
			continue
		}
		match := true
		for i := range want {
			if p.Labels[i] != want[i] {
				match = false
				break
			}
		}
		if match {
			return p.Value, true
		}
	}
	return 0, false
}

// Snapshot copies every instrument's current state, sorted by name
// then labels.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := append([]*metric(nil), r.ordered...)
	r.mu.Unlock()
	out := make(Snapshot, 0, len(ms))
	for _, m := range ms {
		p := Point{Name: m.name, Kind: m.kind.String(), Help: m.help, Labels: m.labels}
		switch m.kind {
		case KindCounter:
			p.Value = float64(m.c.Value())
		case KindGauge:
			p.Value = m.g.Value()
		case KindHistogram:
			p.Value = m.h.Sum()
			p.Count = m.h.Count()
			p.Bounds = m.h.bounds
			p.Buckets = m.h.snapshotBuckets()
			p.Overflow = m.h.Overflow()
			p.Max = m.h.Max()
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return strings.Join(out[i].Labels, ",") < strings.Join(out[j].Labels, ",")
	})
	return out
}

// WriteJSON writes the snapshot as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// promLabels renders {k="v",...} or "".
func promLabels(labels []string, extra ...string) string {
	all := append(append([]string(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(all); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", all[i], all[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return fmtNum(v)
}

// fmtNum formats with minimal digits.
func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	seenHeader := make(map[string]bool)
	for _, p := range snap {
		if !seenHeader[p.Name] {
			seenHeader[p.Name] = true
			if p.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", p.Name, p.Help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", p.Name, p.Kind); err != nil {
				return err
			}
		}
		switch p.Kind {
		case "histogram":
			for i, b := range p.Bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					p.Name, promLabels(p.Labels, "le", fmtFloat(b)), p.Buckets[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				p.Name, promLabels(p.Labels, "le", "+Inf"), p.Buckets[len(p.Buckets)-1]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", p.Name, promLabels(p.Labels), fmtFloat(p.Value)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", p.Name, promLabels(p.Labels), p.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", p.Name, promLabels(p.Labels), fmtFloat(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}
