package rf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geo"
	"repro/internal/world"
)

func rfWorld() *world.World {
	return &world.World{
		Name: "rf",
		Regions: []world.Region{
			{Name: "room", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 40), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2},
		},
	}
}

func site(id string, x, y float64) world.Site {
	return world.Site{ID: id, Pos: geo.Pt(x, y), TxPowerDBm: 16}
}

func TestTrueRSSIDecreasesWithDistance(t *testing.T) {
	w := rfWorld()
	m := WiFiModel()
	m.ShadowSigmaDB = 0 // isolate path loss
	s := site("ap", 0, 0)
	near := m.TrueRSSI(w, s, geo.Pt(2, 0))
	far := m.TrueRSSI(w, s, geo.Pt(30, 0))
	if near <= far {
		t.Errorf("near %v should exceed far %v", near, far)
	}
	// 10× distance costs 10·n dB.
	d1 := m.TrueRSSI(w, s, geo.Pt(1, 0))
	d10 := m.TrueRSSI(w, s, geo.Pt(10, 0))
	if math.Abs((d1-d10)-10*m.Exponent) > 1e-9 {
		t.Errorf("decade loss = %v want %v", d1-d10, 10*m.Exponent)
	}
}

func TestTrueRSSIMinDistanceClamp(t *testing.T) {
	w := rfWorld()
	m := WiFiModel()
	m.ShadowSigmaDB = 0
	s := site("ap", 5, 5)
	at0 := m.TrueRSSI(w, s, geo.Pt(5, 5))
	at1 := m.TrueRSSI(w, s, geo.Pt(6, 5))
	if at0 != at1 {
		t.Error("distances below 1 m should clamp to the 1 m loss")
	}
}

func TestWallAttenuation(t *testing.T) {
	w := rfWorld()
	w.Walls = []world.Wall{{Seg: geo.Seg(geo.Pt(10, -50), geo.Pt(10, 50)), AttenuationDB: 12}}
	m := WiFiModel()
	m.ShadowSigmaDB = 0
	s := site("ap", 0, 0)
	open := m.TrueRSSI(w, s, geo.Pt(9, 0))
	// Mirror position behind the wall at equal distance has the wall
	// loss; compare at same distance by symmetry around x=10... use
	// direct difference with/without wall instead.
	blocked := m.TrueRSSI(w, s, geo.Pt(20, 0))
	w.Walls = nil
	unblocked := m.TrueRSSI(w, s, geo.Pt(20, 0))
	if math.Abs((unblocked-blocked)-12) > 1e-9 {
		t.Errorf("wall loss = %v", unblocked-blocked)
	}
	_ = open
}

func TestPenetrationLossSymmetricWithinZone(t *testing.T) {
	w := rfWorld()
	w.Zones = []world.PenetrationZone{{Name: "b", Poly: geo.RectPoly(0, 0, 40, 40), LossDB: 34}}
	m := WiFiModel()
	m.ShadowSigmaDB = 0
	inside := site("in", 5, 5)
	// Both endpoints in the zone: no loss.
	with := m.TrueRSSI(w, inside, geo.Pt(15, 5))
	w.Zones = nil
	without := m.TrueRSSI(w, inside, geo.Pt(15, 5))
	if with != without {
		t.Error("same-zone link should pay no penetration loss")
	}
	// Outside transmitter to inside receiver: full loss.
	w.Zones = []world.PenetrationZone{{Name: "b", Poly: geo.RectPoly(0, 0, 40, 40), LossDB: 34}}
	out := site("out", 100, 5)
	with = m.TrueRSSI(w, out, geo.Pt(15, 5))
	w.Zones = nil
	without = m.TrueRSSI(w, out, geo.Pt(15, 5))
	if math.Abs((without-with)-34) > 1e-9 {
		t.Errorf("penetration loss = %v", without-with)
	}
}

func TestShadowDeterministicPerCell(t *testing.T) {
	w := rfWorld()
	m := WiFiModel()
	s := site("ap", 0, 0)
	a := m.TrueRSSI(w, s, geo.Pt(20, 20))
	b := m.TrueRSSI(w, s, geo.Pt(20, 20))
	if a != b {
		t.Error("TrueRSSI must be deterministic")
	}
	// Same shadow cell (6 m) → same value.
	c := m.TrueRSSI(w, s, geo.Pt(20, 21))
	dist1 := geo.Pt(20, 20).Dist(s.Pos)
	dist2 := geo.Pt(20, 21).Dist(s.Pos)
	pathDelta := 10 * m.Exponent * (math.Log10(dist2) - math.Log10(dist1))
	if math.Abs((a-c)-pathDelta) > 1e-9 {
		t.Error("same-cell shadow should match")
	}
}

func TestMeasureAudibility(t *testing.T) {
	w := rfWorld()
	m := WiFiModel()
	rnd := rand.New(rand.NewSource(1))
	s := site("ap", 5, 5)
	if _, ok := m.Measure(w, s, geo.Pt(6, 5), Reference(), rnd); !ok {
		t.Error("nearby AP should be audible")
	}
	far := site("far", 5000, 5000)
	if _, ok := m.Measure(w, far, geo.Pt(6, 5), Reference(), rnd); ok {
		t.Error("5 km AP should be inaudible")
	}
}

func TestScanSortedAndDeterministicSeed(t *testing.T) {
	w := rfWorld()
	m := WiFiModel()
	sites := []world.Site{site("b", 5, 5), site("a", 6, 6), site("c", 7, 7)}
	v := m.Scan(w, sites, geo.Pt(6, 6), Reference(), rand.New(rand.NewSource(2)))
	for i := 1; i < len(v); i++ {
		if v[i-1].ID >= v[i].ID {
			t.Error("scan not sorted by ID")
		}
	}
	v2 := m.Scan(w, sites, geo.Pt(6, 6), Reference(), rand.New(rand.NewSource(2)))
	if len(v) != len(v2) || v[0].RSSI != v2[0].RSSI {
		t.Error("same seed should give same scan")
	}
}

func TestDeviceTransform(t *testing.T) {
	d := Device{Name: "x", Alpha: 1.1, Delta: -3}
	if got := d.Apply(-50); math.Abs(got-(-58)) > 1e-9 {
		t.Errorf("Apply = %v", got)
	}
	if Reference().Apply(-50) != -50 {
		t.Error("reference must be identity")
	}
	h := Heterogeneous()
	if h.Apply(-60) == -60 {
		t.Error("heterogeneous device must differ")
	}
}

func TestVectorHelpers(t *testing.T) {
	v := Vector{{ID: "a", RSSI: -40}, {ID: "b", RSSI: -60}}
	m := v.Map()
	if m["a"] != -40 || m["b"] != -60 {
		t.Error("Map wrong")
	}
	ids := v.IDs()
	if len(ids) != 2 || ids[0] != "a" {
		t.Error("IDs wrong")
	}
}

func TestDistance(t *testing.T) {
	a := Vector{{ID: "x", RSSI: -40}, {ID: "y", RSSI: -60}}
	b := Vector{{ID: "x", RSSI: -43}, {ID: "y", RSSI: -56}}
	if got := Distance(a, b, -100); math.Abs(got-5) > 1e-9 {
		t.Errorf("Distance = %v", got)
	}
	// Missing transmitter imputed at floor.
	c := Vector{{ID: "x", RSSI: -40}}
	got := Distance(a, c, -100)
	want := math.Sqrt(0 + (-60 - -100)*(-60 - -100))
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("imputed Distance = %v want %v", got, want)
	}
	if Distance(nil, nil, -100) != 0 {
		t.Error("empty Distance should be 0")
	}
}

func TestDistanceProperties(t *testing.T) {
	mk := func(r1, r2 float64) Vector {
		return Vector{{ID: "a", RSSI: r1}, {ID: "b", RSSI: r2}}
	}
	clampRSSI := func(v float64) float64 {
		// Map arbitrary floats into the physical RSSI range.
		return -30 - math.Mod(math.Abs(v), 70)
	}
	f := func(a1, a2, b1, b2 float64) bool {
		a := mk(clampRSSI(a1), clampRSSI(a2))
		b := mk(clampRSSI(b1), clampRSSI(b2))
		d1 := Distance(a, b, -100)
		d2 := Distance(b, a, -100)
		return math.Abs(d1-d2) < 1e-9 && d1 >= 0 && Distance(a, a, -100) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
