// Package rf simulates received signal strength (RSSI) observations
// from WiFi access points and cellular towers using a log-distance
// path-loss model with wall attenuation, deterministic
// spatially-correlated shadow fading, and temporal measurement noise.
//
// Shadow fading is a pure function of (transmitter, quantized receiver
// cell) via the world's noise field, so the offline fingerprint survey
// and online measurements observe a consistent radio map — the property
// that makes RSSI fingerprinting work at all.
package rf

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/geo"
	"repro/internal/noise"
	"repro/internal/world"
)

// Obs is one RSSI observation from a single transmitter.
type Obs struct {
	ID   string  // transmitter identifier
	RSSI float64 // dBm
}

// Vector is a full scan: one Obs per audible transmitter, sorted by ID
// for determinism.
type Vector []Obs

// Map converts the vector to an ID→RSSI map.
func (v Vector) Map() map[string]float64 {
	m := make(map[string]float64, len(v))
	for _, o := range v {
		m[o.ID] = o.RSSI
	}
	return m
}

// IDs returns the transmitter IDs in the vector, in order.
func (v Vector) IDs() []string {
	out := make([]string, len(v))
	for i, o := range v {
		out[i] = o.ID
	}
	return out
}

// Device models smartphone RSSI measurement heterogeneity: a device
// observes measured = Alpha·true + Delta dB (paper §III-B). The zero
// value is not valid; use Reference for the fingerprinting device.
type Device struct {
	Name  string
	Alpha float64
	Delta float64
}

// Reference is the device used to collect fingerprints (the paper's
// Google Nexus 5X); it observes true RSSI.
func Reference() Device { return Device{Name: "nexus5x", Alpha: 1, Delta: 0} }

// Heterogeneous returns a second device model with a linear RSSI offset
// (the paper's LG G3: alpha close to 1 plus a dB offset).
func Heterogeneous() Device { return Device{Name: "lgg3", Alpha: 1.06, Delta: -4.5} }

// Apply transforms a true RSSI into this device's measured RSSI.
func (d Device) Apply(rssi float64) float64 { return d.Alpha*rssi + d.Delta }

// Model is a log-distance path-loss channel model.
type Model struct {
	RefLossDB      float64 // path loss at the 1 m reference distance
	Exponent       float64 // path-loss exponent n
	ShadowSigmaDB  float64 // spatial shadow-fading std-dev
	ShadowCellM    float64 // spatial correlation cell size for shadowing
	TempSigmaDB    float64 // temporal per-measurement noise std-dev
	SensitivityDBm float64 // audibility floor: weaker signals are not observed
	NoiseKey       int64   // namespace for the world noise field (separate WiFi/cell maps)
}

// WiFiModel returns the channel model used for 2.4/5 GHz WiFi in the
// simulated deployments.
func WiFiModel() Model {
	return Model{
		RefLossDB:      40,
		Exponent:       3.0,
		ShadowSigmaDB:  4.0,
		ShadowCellM:    6.0,
		TempSigmaDB:    3.2,
		SensitivityDBm: -92,
		NoiseKey:       1,
	}
}

// CellModel returns the channel model used for cellular (GSM-band)
// signals: lower frequency, better penetration, much longer range.
func CellModel() Model {
	return Model{
		RefLossDB:      32,
		Exponent:       2.7,
		ShadowSigmaDB:  6.0,
		ShadowCellM:    18.0,
		TempSigmaDB:    3.0,
		SensitivityDBm: -110,
		NoiseKey:       2,
	}
}

// TrueRSSI returns the noiseless-in-time RSSI of site s at rx: path loss
// plus wall attenuation plus spatial shadowing. This is what an
// idealized long-term average measurement would converge to.
func (m Model) TrueRSSI(w *world.World, s world.Site, rx geo.Point) float64 {
	d := math.Max(s.Pos.Dist(rx), 1)
	pl := m.RefLossDB + 10*m.Exponent*math.Log10(d)
	att := w.WallAttenuationDB(s.Pos, rx)
	// Bulk penetration loss (underground floors, thick structures):
	// charged when the link crosses a penetration boundary.
	att += math.Abs(w.PenetrationAt(rx) - w.PenetrationAt(s.Pos))
	shadow := m.shadow(w, s, rx)
	return s.TxPowerDBm - pl - att + shadow
}

// shadow returns the deterministic spatial shadow fading for (site, rx).
func (m Model) shadow(w *world.World, s world.Site, rx geo.Point) float64 {
	cell := m.ShadowCellM
	if cell <= 0 {
		cell = 3
	}
	cx := noise.QuantizeM(rx.X, cell)
	cy := noise.QuantizeM(rx.Y, cell)
	return w.Noise.Gaussian(m.NoiseKey, noise.StringKey(s.ID), cx, cy) * m.ShadowSigmaDB
}

// Measure returns one noisy measurement of site s at rx through device
// dev, and whether the signal is audible. The temporal noise includes
// any region-specific extra noise (e.g. a crowded mall).
func (m Model) Measure(w *world.World, s world.Site, rx geo.Point, dev Device, rnd *rand.Rand) (float64, bool) {
	rssi := m.TrueRSSI(w, s, rx)
	sigma := m.TempSigmaDB + w.RSSINoiseAt(rx)
	rssi += rnd.NormFloat64() * sigma
	rssi = dev.Apply(rssi)
	if rssi < m.SensitivityDBm {
		return 0, false
	}
	return rssi, true
}

// Scan measures every site in sites at rx and returns the audible
// observations sorted by ID.
func (m Model) Scan(w *world.World, sites []world.Site, rx geo.Point, dev Device, rnd *rand.Rand) Vector {
	var out Vector
	for _, s := range sites {
		if rssi, ok := m.Measure(w, s, rx, dev, rnd); ok {
			out = append(out, Obs{ID: s.ID, RSSI: rssi})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Distance computes the Euclidean RSSI distance between two scans over
// the union of their transmitter sets, imputing missing transmitters at
// the floor value. This is the RADAR matching metric.
//
// Both vectors are ID-sorted (Scan guarantees it), so a merge walk
// computes the union deterministically — float summation order never
// depends on map iteration, keeping whole-experiment results bitwise
// reproducible across process runs.
func Distance(a, b Vector, floor float64) float64 {
	var sum float64
	add := func(x, y float64) {
		d := x - y
		sum += d * d
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID == b[j].ID:
			add(a[i].RSSI, b[j].RSSI)
			i++
			j++
		case a[i].ID < b[j].ID:
			add(a[i].RSSI, floor)
			i++
		default:
			add(floor, b[j].RSSI)
			j++
		}
	}
	for ; i < len(a); i++ {
		add(a[i].RSSI, floor)
	}
	for ; j < len(b); j++ {
		add(floor, b[j].RSSI)
	}
	return math.Sqrt(sum)
}
