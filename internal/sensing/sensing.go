// Package sensing defines the Snapshot type: everything a smartphone's
// sensors report during one sensing epoch (0.5 s in the paper's
// implementation). Localization schemes consume snapshots as black
// boxes; the ground-truth position is deliberately NOT part of the
// snapshot so schemes cannot cheat.
package sensing

import (
	"time"

	"repro/internal/gnss"
	"repro/internal/imu"
	"repro/internal/rf"
)

// EpochPeriod is the sensing/update period used throughout: the paper's
// implementation updates particle states every 0.5 s.
const EpochPeriod = 500 * time.Millisecond

// LandmarkHit reports that the phone sensed a calibration-landmark
// signature (a turn pattern, a door transition, a WiFi/structure
// signature) during the epoch. The position is the landmark's known map
// position (from the signature database), not the user's true position.
type LandmarkHit struct {
	ID   string
	Pos  Landmark2D
	Kind string
}

// Landmark2D mirrors geo.Point without importing it, keeping the wire
// type minimal for the offload protocol.
type Landmark2D struct {
	X, Y float64
}

// Snapshot is one epoch of sensor data.
type Snapshot struct {
	Epoch int           // epoch index since the walk started
	T     time.Duration // time since the walk started

	WiFi rf.Vector // audible WiFi RSSI scan (empty when WiFi off/unavailable)
	Cell rf.Vector // audible cellular RSSI scan

	GNSS *gnss.Fix // GPS fix, nil when GPS is off or has no fix

	Step *imu.StepEvent // processed inertial step, nil if the user did not step

	Landmark *LandmarkHit // sensed calibration landmark, nil if none

	LightLux float64 // ambient light sensor reading
	MagVarUT float64 // magnetic field variance over the epoch (µT)

	GPSEnabled bool // whether the GPS radio was powered this epoch
}
