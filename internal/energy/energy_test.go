package energy

import (
	"math"
	"testing"
	"time"
)

func TestSensorPower(t *testing.T) {
	m := DefaultPowerModel()
	if m.SensorPower("gps") != m.GPSmW || m.SensorPower("wifi") != m.WiFiScanmW ||
		m.SensorPower("cell") != m.CellScanmW || m.SensorPower("imu") != m.IMUmW {
		t.Error("SensorPower mapping wrong")
	}
	if m.SensorPower("unknown") != 0 {
		t.Error("unknown sensor should cost 0")
	}
}

func TestAccountantIntegration(t *testing.T) {
	m := PowerModel{IMUmW: 30, WiFiScanmW: 40, BasemW: 100}
	a := NewAccountant(m)
	// 10 s of IMU+WiFi: (100+30+40) mW × 10 s = 1.7 J.
	for i := 0; i < 20; i++ {
		a.AddSensors("x", []string{"imu", "wifi"}, 500*time.Millisecond)
	}
	if got := a.EnergyJ("x"); math.Abs(got-1.7) > 1e-9 {
		t.Errorf("energy = %v", got)
	}
	if got := a.ActiveTime("x"); got != 10*time.Second {
		t.Errorf("time = %v", got)
	}
	if got := a.AvgPowerMW("x"); math.Abs(got-170) > 1e-9 {
		t.Errorf("avg power = %v", got)
	}
}

func TestAccountantDuplicateSensorsChargedOnce(t *testing.T) {
	m := PowerModel{IMUmW: 30}
	a := NewAccountant(m)
	a.AddSensors("x", []string{"imu", "imu", "imu"}, time.Second)
	if got := a.EnergyJ("x"); math.Abs(got-0.03) > 1e-12 {
		t.Errorf("duplicate sensors double-charged: %v J", got)
	}
}

func TestAccountantTx(t *testing.T) {
	m := PowerModel{TxPerByteMJ: 0.006}
	a := NewAccountant(m)
	a.AddTx("x", 1000)
	if got := a.EnergyJ("x"); math.Abs(got-0.006) > 1e-12 {
		t.Errorf("tx energy = %v", got)
	}
}

func TestAccountantConsumersSorted(t *testing.T) {
	a := NewAccountant(DefaultPowerModel())
	a.AddTx("zeta", 1)
	a.AddTx("alpha", 1)
	got := a.Consumers()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("Consumers = %v", got)
	}
}

func TestAvgPowerZeroTime(t *testing.T) {
	a := NewAccountant(DefaultPowerModel())
	a.AddTx("x", 100) // energy but no active time
	if a.AvgPowerMW("x") != 0 {
		t.Error("zero active time should report zero power")
	}
}

func TestRelativeSchemeOrdering(t *testing.T) {
	// The paper's qualitative claims: GPS is the most expensive
	// sensor; IMU the cheapest of the localization sensors.
	m := DefaultPowerModel()
	if m.GPSmW <= m.WiFiScanmW || m.GPSmW <= m.IMUmW || m.GPSmW <= m.CellScanmW {
		t.Error("GPS must dominate")
	}
	if m.IMUmW >= m.WiFiScanmW {
		t.Error("IMU should be cheaper than WiFi scanning")
	}
}
