// Package energy models smartphone power consumption for the paper's
// Table IV comparison: per-sensor power states integrated over each
// scheme's sensor schedule, plus radio transmission energy for the
// offloaded computation (§IV-C).
//
// The absolute milliwatt figures are representative smartphone values
// (documented in EXPERIMENTS.md); what the experiment reproduces is the
// *relative* ordering — GPS dominates, the motion-based PDR is the most
// efficient, and UniLoc adds only a small overhead on top of it thanks
// to GPS gating.
package energy

import (
	"sort"
	"time"
)

// PowerModel holds per-component power draws.
type PowerModel struct {
	// Sensor draws in milliwatts while active.
	GPSmW      float64
	WiFiScanmW float64 // WiFi interface actively scanning
	CellScanmW float64 // cellular measurement on top of the always-on modem
	IMUmW      float64 // inertial sensors at 50 Hz plus local step inference

	// Screen/system baseline shared by every scheme (excluded from the
	// per-scheme comparison, as the paper's table isolates
	// localization cost).
	BasemW float64

	// TxPerByteMJ is the radio energy per transmitted byte
	// (millijoules); transmissions are short, so this is the marginal
	// cost on an already-associated interface.
	TxPerByteMJ float64
}

// DefaultPowerModel returns the representative smartphone power draws
// used across the evaluation. Scan draws are amortized over the 0.5 s
// sensing epoch (a WiFi scan bursts ~300 mW for ~60 ms); the base draw
// is the awake-phone floor every localization system pays, which is
// how the paper's whole-phone Monsoon measurements are structured —
// without it GPS would not dominate by the observed modest ratios.
func DefaultPowerModel() PowerModel {
	return PowerModel{
		GPSmW:       385,
		WiFiScanmW:  35,
		CellScanmW:  40,
		IMUmW:       31,
		BasemW:      170,
		TxPerByteMJ: 0.006,
	}
}

// SensorPower maps a sensor name (schemes.Sensor*) to its draw.
func (m PowerModel) SensorPower(sensor string) float64 {
	switch sensor {
	case "gps":
		return m.GPSmW
	case "wifi":
		return m.WiFiScanmW
	case "cell":
		return m.CellScanmW
	case "imu":
		return m.IMUmW
	default:
		return 0
	}
}

// Accountant accumulates energy per named consumer (a scheme, or the
// UniLoc aggregate).
type Accountant struct {
	model PowerModel
	mj    map[string]float64 // millijoules
	time  map[string]time.Duration
}

// NewAccountant creates an accountant over the power model.
func NewAccountant(model PowerModel) *Accountant {
	return &Accountant{
		model: model,
		mj:    make(map[string]float64),
		time:  make(map[string]time.Duration),
	}
}

// AddSensors charges consumer for running the given sensors for dt.
// Duplicate sensor names are charged once (a scheme never runs the same
// radio twice).
func (a *Accountant) AddSensors(consumer string, sensors []string, dt time.Duration) {
	seen := make(map[string]bool, len(sensors))
	var mw float64
	for _, s := range sensors {
		if seen[s] {
			continue
		}
		seen[s] = true
		mw += a.model.SensorPower(s)
	}
	mw += a.model.BasemW
	a.mj[consumer] += mw * dt.Seconds()
	a.time[consumer] += dt
}

// AddTx charges consumer for transmitting n bytes.
func (a *Accountant) AddTx(consumer string, n int) {
	a.mj[consumer] += float64(n) * a.model.TxPerByteMJ
}

// EnergyJ returns the accumulated energy for consumer in joules.
func (a *Accountant) EnergyJ(consumer string) float64 { return a.mj[consumer] / 1000 }

// ActiveTime returns the accumulated active time for consumer.
func (a *Accountant) ActiveTime(consumer string) time.Duration { return a.time[consumer] }

// AvgPowerMW returns the mean power for consumer over its active time.
func (a *Accountant) AvgPowerMW(consumer string) float64 {
	t := a.time[consumer].Seconds()
	if t == 0 {
		return 0
	}
	return a.mj[consumer] / t
}

// Consumers returns the sorted consumer names seen so far.
func (a *Accountant) Consumers() []string {
	out := make([]string, 0, len(a.mj))
	for k := range a.mj {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
