package regress

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// synth builds y = X·beta + noise.
func synth(rnd *rand.Rand, n int, beta []float64, intercept, noise float64) ([][]float64, []float64) {
	p := len(beta)
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, p)
		v := intercept
		for j := range row {
			row[j] = rnd.NormFloat64()*2 + 3
			v += beta[j] * row[j]
		}
		x[i] = row
		y[i] = v + rnd.NormFloat64()*noise
	}
	return x, y
}

func TestFitRecoversCoefficients(t *testing.T) {
	rnd := rand.New(rand.NewSource(1))
	beta := []float64{1.5, -0.7, 0.2}
	x, y := synth(rnd, 500, beta, 0, 0.1)
	res, err := Fit(x, y, []string{"a", "b", "c"}, false)
	if err != nil {
		t.Fatal(err)
	}
	for j := range beta {
		if math.Abs(res.Beta[j]-beta[j]) > 0.05 {
			t.Errorf("beta[%d] = %v want %v", j, res.Beta[j], beta[j])
		}
	}
	if res.R2 < 0.99 {
		t.Errorf("R2 = %v", res.R2)
	}
	if math.Abs(res.ResidStd-0.1) > 0.03 {
		t.Errorf("sigma = %v", res.ResidStd)
	}
	if math.Abs(res.ResidMean) > 0.02 {
		t.Errorf("resid mean = %v", res.ResidMean)
	}
}

func TestFitWithIntercept(t *testing.T) {
	rnd := rand.New(rand.NewSource(2))
	x, y := synth(rnd, 300, []float64{2}, 5, 0.2)
	res, err := Fit(x, y, []string{"a"}, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Intercept-5) > 0.2 {
		t.Errorf("intercept = %v", res.Intercept)
	}
	if math.Abs(res.Beta[0]-2) > 0.05 {
		t.Errorf("beta = %v", res.Beta[0])
	}
}

func TestFitInterceptOnly(t *testing.T) {
	// The GPS error model: no features, just a constant.
	rnd := rand.New(rand.NewSource(3))
	y := make([]float64, 400)
	for i := range y {
		y[i] = 13.5 + rnd.NormFloat64()*9.4
	}
	x := make([][]float64, len(y))
	for i := range x {
		x[i] = nil
	}
	res, err := Fit(x, y, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Intercept-13.5) > 1.5 {
		t.Errorf("intercept = %v", res.Intercept)
	}
	if math.Abs(res.ResidStd-9.4) > 1.0 {
		t.Errorf("sigma = %v", res.ResidStd)
	}
}

func TestSignificance(t *testing.T) {
	rnd := rand.New(rand.NewSource(4))
	// One real feature, one pure-noise feature.
	n := 400
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		real := rnd.NormFloat64()*2 + 5
		junk := rnd.NormFloat64()*2 + 5
		x[i] = []float64{real, junk}
		y[i] = 2*real + rnd.NormFloat64()
	}
	res, err := Fit(x, y, []string{"real", "junk"}, false)
	if err != nil {
		t.Fatal(err)
	}
	sig := res.Significant(0.05)
	found := false
	for _, s := range sig {
		if s == "real" {
			found = true
		}
	}
	if !found {
		t.Errorf("real feature not significant: p=%v", res.P)
	}
	if res.P[0] > 0.05 {
		t.Errorf("real p = %v", res.P[0])
	}
	// The junk feature usually has p > 0.05. (Not guaranteed on every
	// seed; this seed is checked to satisfy it.)
	if res.P[1] < 0.05 {
		t.Errorf("junk p = %v (seed-dependent check failed)", res.P[1])
	}
}

func TestPredict(t *testing.T) {
	res := &Result{Beta: []float64{2, -1}, Intercept: 3, Names: []string{"a", "b"}}
	if got := res.Predict([]float64{4, 5}); got != 3+8-5 {
		t.Errorf("Predict = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dimension mismatch")
		}
	}()
	res.Predict([]float64{1})
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, nil, false); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("empty: %v", err)
	}
	// More coefficients than rows.
	x := [][]float64{{1, 2, 3}, {4, 5, 6}}
	y := []float64{1, 2}
	if _, err := Fit(x, y, []string{"a", "b", "c"}, false); !errors.Is(err, ErrInsufficientData) {
		t.Errorf("underdetermined: %v", err)
	}
	// Name count mismatch.
	x2 := [][]float64{{1}, {2}, {3}, {4}}
	y2 := []float64{1, 2, 3, 4}
	if _, err := Fit(x2, y2, []string{"a", "b"}, false); err == nil {
		t.Error("expected name mismatch error")
	}
	// Ragged rows.
	x3 := [][]float64{{1, 2}, {3}}
	if _, err := Fit(x3, []float64{1, 2}, []string{"a", "b"}, true); err == nil {
		t.Error("expected ragged error")
	}
}

func TestFitSingularWithoutRidge(t *testing.T) {
	// Perfectly collinear features.
	n := 50
	x := make([][]float64, n)
	y := make([]float64, n)
	rnd := rand.New(rand.NewSource(5))
	for i := 0; i < n; i++ {
		v := rnd.NormFloat64()
		x[i] = []float64{v, 2 * v}
		y[i] = v
	}
	if _, err := Fit(x, y, []string{"a", "b"}, false); err == nil {
		t.Error("expected singular error")
	}
	// Ridge fixes it.
	res, err := FitRidge(x, y, []string{"a", "b"}, false, 1e-3)
	if err != nil {
		t.Fatalf("ridge: %v", err)
	}
	// Prediction still works even though individual coefficients are
	// not identified.
	if got := res.Predict([]float64{1, 2}); math.Abs(got-1) > 0.05 {
		t.Errorf("ridge predict = %v", got)
	}
}

func TestResultString(t *testing.T) {
	rnd := rand.New(rand.NewSource(6))
	x, y := synth(rnd, 100, []float64{1}, 0, 0.1)
	res, err := Fit(x, y, []string{"feat"}, false)
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if s == "" {
		t.Error("empty String")
	}
}
