// Package regress implements the multiple linear regression workflow
// from the paper's error modeling (§III): ordinary least squares over
// (feature, localization-error) tuples, coefficient standard errors and
// two-sided t-test p-values (Table II's significance column), R², and
// the residual mean/deviation that parameterizes the Gaussian error
// prediction (Eq. 2).
package regress

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/mat"
	"repro/internal/stat"
)

// ErrInsufficientData is returned when there are not enough rows to fit
// the requested number of coefficients.
var ErrInsufficientData = errors.New("regress: insufficient data")

// Result is a fitted linear model.
type Result struct {
	Names        []string  // feature names, aligned with Beta (excluding intercept)
	Beta         []float64 // coefficients for each feature
	Intercept    float64   // β₀ (0 when fitted without intercept)
	HasIntercept bool

	SE []float64 // standard error per coefficient (aligned with Beta)
	T  []float64 // t statistic per coefficient
	P  []float64 // two-sided p-value per coefficient

	R2        float64 // coefficient of determination
	ResidMean float64 // μ_ε
	ResidStd  float64 // σ_ε
	N         int     // number of training rows
}

// Fit performs OLS of y on X (rows = observations, columns = features,
// aligned with names). When intercept is true a constant column is
// added; the paper fits its error models through the origin (the
// localization error is zero when all factors are zero), so most
// callers pass false.
func Fit(x [][]float64, y []float64, names []string, intercept bool) (*Result, error) {
	return FitRidge(x, y, names, intercept, 0)
}

// FitRidge is Fit with an L2 penalty lambda added to the normal
// equations' diagonal. A small lambda regularizes nearly-collinear
// feature sets (e.g. a constant corridor width in a single-region
// outdoor training world) at negligible bias. The reported p-values
// are the usual OLS approximations.
func FitRidge(x [][]float64, y []float64, names []string, intercept bool, lambda float64) (*Result, error) {
	n := len(x)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("%w: %d rows, %d targets", ErrInsufficientData, n, len(y))
	}
	p := len(x[0])
	if p == 0 && !intercept {
		return nil, fmt.Errorf("%w: no features and no intercept", ErrInsufficientData)
	}
	if len(names) != p {
		return nil, fmt.Errorf("regress: %d names for %d features", len(names), p)
	}
	cols := p
	if intercept {
		cols++
	}
	if n <= cols {
		return nil, fmt.Errorf("%w: %d rows for %d coefficients", ErrInsufficientData, n, cols)
	}

	xm := mat.New(n, cols)
	for i, row := range x {
		if len(row) != p {
			return nil, fmt.Errorf("regress: ragged row %d: %d features, want %d", i, len(row), p)
		}
		off := 0
		if intercept {
			xm.Set(i, 0, 1)
			off = 1
		}
		for j, v := range row {
			xm.Set(i, j+off, v)
		}
	}

	xt := xm.T()
	xtx := mat.Mul(xt, xm)
	if lambda > 0 {
		for j := 0; j < cols; j++ {
			if intercept && j == 0 {
				continue
			}
			xtx.Set(j, j, xtx.At(j, j)+lambda)
		}
	}
	xty := xt.MulVec(y)
	beta, err := mat.Solve(xtx, xty)
	if err != nil {
		return nil, fmt.Errorf("regress: normal equations: %w", err)
	}

	// Residuals.
	resid := make([]float64, n)
	pred := xm.MulVec(beta)
	var rss float64
	for i := range y {
		resid[i] = y[i] - pred[i]
		rss += resid[i] * resid[i]
	}

	// Total sum of squares: centered when an intercept is present,
	// uncentered otherwise (standard no-intercept R² definition).
	var tss float64
	if intercept {
		my := stat.Mean(y)
		for _, v := range y {
			d := v - my
			tss += d * d
		}
	} else {
		for _, v := range y {
			tss += v * v
		}
	}
	r2 := 0.0
	if tss > 0 {
		r2 = 1 - rss/tss
	}

	df := float64(n - cols)
	sigma2 := rss / df
	xtxInv, err := mat.Inverse(xtx)
	if err != nil {
		return nil, fmt.Errorf("regress: covariance: %w", err)
	}

	res := &Result{
		Names:        append([]string(nil), names...),
		Beta:         make([]float64, p),
		HasIntercept: intercept,
		SE:           make([]float64, p),
		T:            make([]float64, p),
		P:            make([]float64, p),
		R2:           r2,
		ResidMean:    stat.Mean(resid),
		ResidStd:     math.Sqrt(rss / df),
		N:            n,
	}
	off := 0
	if intercept {
		res.Intercept = beta[0]
		off = 1
	}
	for j := 0; j < p; j++ {
		res.Beta[j] = beta[j+off]
		se := math.Sqrt(sigma2 * xtxInv.At(j+off, j+off))
		res.SE[j] = se
		if se > 0 {
			res.T[j] = res.Beta[j] / se
			res.P[j] = stat.TTestPValue(res.T[j], df)
		} else {
			res.T[j] = math.Inf(1)
			res.P[j] = 0
		}
	}
	return res, nil
}

// Predict evaluates the fitted model at the feature vector x (paper
// Eq. 6: ê = β₀ + β₁x₁ + ... + β_p x_p).
func (r *Result) Predict(x []float64) float64 {
	if len(x) != len(r.Beta) {
		panic(fmt.Sprintf("regress: Predict got %d features, model has %d", len(x), len(r.Beta)))
	}
	v := r.Intercept
	for j, b := range r.Beta {
		v += b * x[j]
	}
	return v
}

// Significant returns the names of features whose p-value is below
// alpha (the paper uses 0.05).
func (r *Result) Significant(alpha float64) []string {
	var out []string
	for j, p := range r.P {
		if p < alpha {
			out = append(out, r.Names[j])
		}
	}
	return out
}

// String renders the model like a row group of the paper's Table II.
func (r *Result) String() string {
	var b strings.Builder
	if r.HasIntercept {
		fmt.Fprintf(&b, "  %-28s % 9.3f\n", "(intercept)", r.Intercept)
	}
	for j, name := range r.Names {
		fmt.Fprintf(&b, "  %-28s % 9.3f  (p=%.3f)\n", name, r.Beta[j], r.P[j])
	}
	fmt.Fprintf(&b, "  R²=%.2f  μ_ε=%.2f  σ_ε=%.2f  n=%d\n", r.R2, r.ResidMean, r.ResidStd, r.N)
	return b.String()
}
