package eval

import (
	"fmt"

	"repro/internal/scenario"
)

// Lab caches the expensive shared artifacts — trained models and
// surveyed places — so a batch of experiments does not retrain per
// table. It is not safe for concurrent use; each experiment harness
// owns one Lab.
type Lab struct {
	Seed int64

	trained *Trained

	campus *scenario.Assets
	mall   *scenario.Assets
	urban  *scenario.Assets
	office *scenario.Assets
	open   *scenario.Assets
}

// NewLab creates a lab with the given master seed.
func NewLab(seed int64) *Lab { return &Lab{Seed: seed} }

// Trained returns the trained models, training on first use.
func (l *Lab) Trained() (*Trained, error) {
	if l.trained == nil {
		tr, err := Train(l.Seed)
		if err != nil {
			return nil, fmt.Errorf("lab: %w", err)
		}
		l.trained = tr
	}
	return l.trained, nil
}

// Campus returns the campus assets, building them on first use.
func (l *Lab) Campus() *scenario.Assets {
	if l.campus == nil {
		l.campus = scenario.NewAssets(scenario.Campus(), l.Seed+100)
	}
	return l.campus
}

// Mall returns the shopping-mall assets.
func (l *Lab) Mall() *scenario.Assets {
	if l.mall == nil {
		l.mall = scenario.NewAssets(scenario.Mall(), l.Seed+200)
	}
	return l.mall
}

// Urban returns the urban open-space assets.
func (l *Lab) Urban() *scenario.Assets {
	if l.urban == nil {
		l.urban = scenario.NewAssets(scenario.UrbanOpenSpace(), l.Seed+300)
	}
	return l.urban
}

// TrainingOffice returns the training-office assets (used for
// same-place validation in Table III).
func (l *Lab) TrainingOffice() *scenario.Assets {
	if l.office == nil {
		l.office = scenario.NewAssets(scenario.TrainingOffice(), l.Seed)
	}
	return l.office
}

// TrainingOpen returns the training open-space assets.
func (l *Lab) TrainingOpen() *scenario.Assets {
	if l.open == nil {
		l.open = scenario.NewAssets(scenario.TrainingOpenSpace(), l.Seed+1000)
	}
	return l.open
}
