package eval

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/energy"
	"repro/internal/geo"
	"repro/internal/offload"
	"repro/internal/scenario"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/walker"
)

// SchemeSeries is one scheme's per-epoch record along a walk. Err is
// NaN at epochs where the scheme was unavailable.
type SchemeSeries struct {
	Err     []float64
	Avail   []bool
	PredErr []float64
	Conf    []float64
}

// Errors returns the available (non-NaN) errors.
func (s *SchemeSeries) Errors() []float64 {
	out := make([]float64, 0, len(s.Err))
	for i, e := range s.Err {
		if s.Avail[i] {
			out = append(out, e)
		}
	}
	return out
}

// PathRun is the complete record of one evaluated walk.
type PathRun struct {
	Place string
	Path  string

	Truth  []geo.Point
	DistM  []float64 // true distance from the start per epoch
	Region []string  // region name per epoch
	Env    []core.EnvClass

	Schemes map[string]*SchemeSeries

	UniLoc1   []float64
	UniLoc2   []float64
	Oracle    []float64
	GlobalBMA []float64
	ALoc      []float64

	Selected     []string // UniLoc1's choice per epoch
	OracleChoice []string
	GPSOn        []bool

	// Energy accounting over the walk (joules per consumer; see
	// Table IV). "uniloc" includes transmission energy; "uniloc-nogps"
	// is UniLoc with the GPS radio never granted.
	EnergyJ   map[string]float64
	DurationS float64
	BytesUp   int
	BytesDown int
}

// RunConfig tunes a path run.
type RunConfig struct {
	Walker    walker.Config
	Seed      int64
	NoGPS     bool // deny GPS entirely (for the UniLoc w/o GPS energy row)
	Calibrate bool // attach online device-offset calibrators (Fig. 8d)
	// Framework passes extra options to the UniLoc framework
	// (weighting-mode and pruning ablations).
	Framework []core.Option
	// WrapSchemes, when set, rewrites the scheme set before the
	// framework is built — the hook fault-injection decorators
	// (internal/faultinject) use to kill or sabotage schemes mid-walk.
	WrapSchemes func([]schemes.Scheme) []schemes.Scheme
	// Faults, when set, maps every sensed snapshot before the framework
	// sees it (scan loss, GPS outages, IMU glitches, ...). It must not
	// mutate its input.
	Faults func(*sensing.Snapshot) *sensing.Snapshot
}

// RunPath walks one path with the full UniLoc stack and every
// individual scheme, recording all per-epoch outcomes.
func RunPath(a *scenario.Assets, path scenario.Path, tr *Trained, cfg RunConfig) (*PathRun, error) {
	w := a.Place.World
	wkRnd := rand.New(rand.NewSource(cfg.Seed))
	fwRnd := rand.New(rand.NewSource(cfg.Seed + 1))

	ss := a.Schemes(fwRnd)
	if cfg.Calibrate {
		for _, s := range ss {
			if fp, ok := s.(*schemes.Fingerprinting); ok {
				fp.SetCalibrator(schemes.NewCalibrator())
			}
		}
	}
	if cfg.WrapSchemes != nil {
		ss = cfg.WrapSchemes(ss)
	}
	fw, err := core.NewFramework(ss, tr.Models, cfg.Framework...)
	if err != nil {
		return nil, fmt.Errorf("eval: %w", err)
	}
	// A standalone GPS instance evaluates the GPS scheme with its
	// radio always on (outdoors), independent of UniLoc's gating.
	gpsAlone := schemes.NewGPS(w.Proj)

	wcfg := cfg.Walker
	if wcfg.WiFi.Exponent == 0 {
		wcfg = a.DefaultWalkerConfig()
	}
	wk := walker.New(w, path.Line, wcfg, wkRnd)
	start, _ := path.Line.At(0)
	fw.Reset(start)

	run := &PathRun{
		Place:   a.Place.Name,
		Path:    path.Name,
		Schemes: make(map[string]*SchemeSeries, len(ss)),
		EnergyJ: make(map[string]float64),
	}
	for _, s := range ss {
		run.Schemes[s.Name()] = &SchemeSeries{}
	}

	acct := energy.NewAccountant(energy.DefaultPowerModel())

	for !wk.Done() {
		gpsOn := fw.GPSWanted() && !cfg.NoGPS
		snap, truth := wk.Next(true) // sample every sensor; gate below
		if cfg.Faults != nil {
			snap = cfg.Faults(snap)
		}
		full := *snap
		if !gpsOn {
			snap.GNSS = nil
			snap.GPSEnabled = false
		}
		res := fw.Step(snap)

		run.Truth = append(run.Truth, truth)
		run.DistM = append(run.DistM, wk.Distance())
		regName := "outside"
		if r := w.RegionAt(truth); r != nil {
			regName = r.Name
		}
		run.Region = append(run.Region, regName)
		envTruth := core.EnvOutdoor
		if w.Indoor(truth) {
			envTruth = core.EnvIndoor
		}
		run.Env = append(run.Env, envTruth)
		run.GPSOn = append(run.GPSOn, gpsOn)

		// Individual schemes. GPS comes from the standalone instance
		// so the gating decision does not hide its curve.
		oracleErr := math.NaN()
		oracleName := ""
		for i, sr := range res.Schemes {
			series := run.Schemes[sr.Name]
			e := math.NaN()
			avail := sr.Available
			pos := sr.Pos
			if sr.Name == schemes.NameGPS {
				est := gpsAlone.Estimate(&full)
				avail = est.OK
				pos = est.Pos
			}
			if avail {
				e = pos.Dist(truth)
				if math.IsNaN(oracleErr) || e < oracleErr {
					oracleErr = e
					oracleName = sr.Name
				}
			}
			series.Err = append(series.Err, e)
			series.Avail = append(series.Avail, avail)
			series.PredErr = append(series.PredErr, res.Schemes[i].PredErr)
			series.Conf = append(series.Conf, res.Schemes[i].Conf)
		}

		// Ensembles and baselines.
		u1, u2 := math.NaN(), math.NaN()
		sel := ""
		if res.OK {
			u1 = res.Best.Dist(truth)
			u2 = res.BMA.Dist(truth)
			sel = res.Schemes[res.BestIdx].Name
		}
		run.UniLoc1 = append(run.UniLoc1, u1)
		run.UniLoc2 = append(run.UniLoc2, u2)
		run.Selected = append(run.Selected, sel)
		run.Oracle = append(run.Oracle, oracleErr)
		run.OracleChoice = append(run.OracleChoice, oracleName)

		gErr := math.NaN()
		if gp, ok := core.CombineFixed(res.Schemes, tr.Global[res.Env]); ok {
			gErr = gp.Dist(truth)
		}
		run.GlobalBMA = append(run.GlobalBMA, gErr)

		aErr := math.NaN()
		if idx, ok := tr.ALoc.Select(res.Schemes, res.Env); ok {
			aErr = res.Schemes[idx].Pos.Dist(truth)
		}
		run.ALoc = append(run.ALoc, aErr)

		// Energy accounting.
		up, down := chargeEpoch(acct, gpsOn, envTruth, snap)
		run.BytesUp += up
		run.BytesDown += down
	}

	run.DurationS = float64(wk.Epoch()) * sensing.EpochPeriod.Seconds()
	for _, consumer := range acct.Consumers() {
		run.EnergyJ[consumer] = acct.EnergyJ(consumer)
	}
	return run, nil
}

// chargeEpoch charges every consumer for one epoch and returns the
// offload byte counts.
func chargeEpoch(acct *energy.Accountant, gpsOn bool, envTruth core.EnvClass, snap *sensing.Snapshot) (upBytes, downBytes int) {
	dt := sensing.EpochPeriod
	// Individual schemes, each run standalone.
	acct.AddSensors(schemes.NameMotion, []string{schemes.SensorIMU}, dt)
	acct.AddSensors(schemes.NameWiFi, []string{schemes.SensorWiFi}, dt)
	acct.AddSensors(schemes.NameCellular, []string{schemes.SensorCell}, dt)
	acct.AddSensors(schemes.NameFusion, []string{schemes.SensorIMU, schemes.SensorWiFi}, dt)
	if envTruth == core.EnvOutdoor {
		// Standalone GPS is on outdoors (turned off under roofs even
		// when standalone, per Table IV's setup).
		acct.AddSensors(schemes.NameGPS, []string{schemes.SensorGPS}, dt)
	}

	// UniLoc: IMU and WiFi sensing plus GPS only when gated on, plus
	// offload transmissions. Cellular RSSI is NOT charged: the paper
	// assumes normal phone usage where the cellular modem is always
	// enabled, so UniLoc's cellular scheme piggybacks on measurements
	// the modem makes anyway (§V-C).
	sensors := []string{schemes.SensorIMU, schemes.SensorWiFi}
	if gpsOn {
		sensors = append(sensors, schemes.SensorGPS)
	}
	acct.AddSensors("uniloc", sensors, dt)
	acct.AddSensors("uniloc-nogps", []string{schemes.SensorIMU, schemes.SensorWiFi}, dt)

	up, down := epochBytes(snap, gpsOn)
	acct.AddTx("uniloc", up+down)
	acct.AddTx("uniloc-nogps", up+down)
	return up, down
}

// epochBytes computes the offload protocol's exact byte counts for one
// epoch using the wire encoders.
func epochBytes(snap *sensing.Snapshot, gpsOn bool) (up, down int) {
	const frame = 3
	if snap.Step != nil {
		up += frame + len(offload.EncodeStep(snap.Step))
	}
	if len(snap.WiFi) > 0 {
		up += frame + len(offload.EncodeVector(snap.WiFi))
	}
	if len(snap.Cell) > 0 {
		up += frame + len(offload.EncodeVector(snap.Cell))
	}
	if gpsOn && snap.GNSS.Reliable() {
		up += frame + len(offload.EncodeFix(snap.GNSS))
	}
	if snap.Landmark != nil {
		up += frame + len(offload.EncodeLandmark(snap.Landmark))
	}
	up += frame + len(offload.EncodeContext(snap)) // context header
	up += frame                                    // epoch end
	down = frame + len(offload.EncodeResult(&offload.Result{Selected: schemes.NameFusion}))
	return up, down
}
