// Package eval runs the end-to-end experiments: it trains the error
// models in the two training places (§III-B), runs UniLoc and every
// individual scheme along evaluation paths, and aggregates errors,
// scheme usage, energy and response-time statistics into the report
// structures the experiment harness renders.
package eval

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/imu"
	"repro/internal/scenario"
	"repro/internal/schemes"
)

// Trained bundles everything produced by the offline training phase.
type Trained struct {
	Models  *core.ModelSet
	Global  map[core.EnvClass]map[string]float64
	ALoc    *core.ALocProfile
	Trainer *core.Trainer

	// FeatureSchemes holds one scheme instance per name for feature
	// metadata (names, order); do not call Estimate on them.
	FeatureSchemes []schemes.Scheme
}

// ALocAccuracyReqM is the accuracy requirement handed to the A-Loc
// baseline.
const ALocAccuracyReqM = 5

// aLocCosts are the relative sensing costs (mW) A-Loc ranks schemes by.
func aLocCosts() map[string]float64 {
	return map[string]float64{
		schemes.NameMotion:   31,
		schemes.NameCellular: 48,
		schemes.NameWiFi:     92,
		schemes.NameFusion:   123,
		schemes.NameGPS:      385,
	}
}

// Train runs the paper's offline error-modeling workflow: data
// collection with ground truth in the training office (indoor models)
// and the training open space (outdoor models and the GPS constant),
// then the multiple-linear-regression fit per scheme per environment.
// The entire procedure is deterministic in the seed.
func Train(seed int64) (*Trained, error) {
	trainer := &core.Trainer{}

	office := scenario.TrainingOffice()
	officeAssets := scenario.NewAssets(office, seed)
	collectPlace(trainer, officeAssets, seed+1)

	open := scenario.TrainingOpenSpace()
	openAssets := scenario.NewAssets(open, seed+1000)
	collectPlace(trainer, openAssets, seed+1001)

	// Fit against one instance of each scheme for feature metadata.
	featureSchemes := officeAssets.Schemes(rand.New(rand.NewSource(seed + 7)))
	models, err := trainer.Fit(featureSchemes)
	if err != nil {
		return nil, fmt.Errorf("eval: training: %w", err)
	}
	return &Trained{
		Models:         models,
		Global:         trainer.GlobalWeights(),
		ALoc:           trainer.ALoc(aLocCosts(), ALocAccuracyReqM),
		Trainer:        trainer,
		FeatureSchemes: featureSchemes,
	}, nil
}

// collectPlace walks every path of the place's training set twice
// (two persons), recording samples for all five schemes.
func collectPlace(trainer *core.Trainer, assets *scenario.Assets, seed int64) {
	persons := trainingPersons()
	for wi, path := range assets.Place.Paths {
		for pi, person := range persons {
			rnd := rand.New(rand.NewSource(seed + int64(wi*13+pi)))
			cfg := assets.DefaultWalkerConfig()
			cfg.Person = person
			// Scheme construction draws a child stream so the training
			// walk (which keeps consuming rnd) is decoupled from it.
			ss := assets.Schemes(rand.New(rand.NewSource(rnd.Int63())))
			trainer.CollectWalk(assets.Place.World, ss, path.Line, cfg, rnd)
		}
	}
}

// trainingPersons returns the two surveyors who collect training data
// (the paper's collection is done by one person in one day; a second
// gait adds robustness without changing the workflow).
func trainingPersons() []imu.Person {
	return imu.Persons()[:2]
}
