package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stat"
)

// Table is a generic text-renderable table (one per paper table, and
// one per figure rendered as rows/series).
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float for table cells.
func F(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.2f", v)
}

// F1 formats a float with one decimal.
func F1(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", v)
}

// Pct formats a ratio as a percentage.
func Pct(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", v*100)
}

// Valid filters NaNs out of a series.
func Valid(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			out = append(out, x)
		}
	}
	return out
}

// MeanValid returns the mean of the non-NaN entries.
func MeanValid(xs []float64) float64 {
	v := Valid(xs)
	if len(v) == 0 {
		return math.NaN()
	}
	return stat.Mean(v)
}

// PercentileValid returns the p-th percentile of the non-NaN entries.
func PercentileValid(xs []float64, p float64) float64 {
	v := Valid(xs)
	if len(v) == 0 {
		return math.NaN()
	}
	return stat.Percentile(v, p)
}

// MergeRuns concatenates the same series across several runs, e.g. the
// eight paths of Figure 7.
type Merged struct {
	Schemes   map[string][]float64
	UniLoc1   []float64
	UniLoc2   []float64
	Oracle    []float64
	GlobalBMA []float64
	ALoc      []float64
}

// Merge combines the per-epoch error series of several runs.
func Merge(runs []*PathRun) *Merged {
	m := &Merged{Schemes: make(map[string][]float64)}
	for _, r := range runs {
		for name, s := range r.Schemes {
			m.Schemes[name] = append(m.Schemes[name], s.Errors()...)
		}
		m.UniLoc1 = append(m.UniLoc1, Valid(r.UniLoc1)...)
		m.UniLoc2 = append(m.UniLoc2, Valid(r.UniLoc2)...)
		m.Oracle = append(m.Oracle, Valid(r.Oracle)...)
		m.GlobalBMA = append(m.GlobalBMA, Valid(r.GlobalBMA)...)
		m.ALoc = append(m.ALoc, Valid(r.ALoc)...)
	}
	return m
}

// SchemeNames returns the sorted scheme names present.
func (m *Merged) SchemeNames() []string {
	names := make([]string, 0, len(m.Schemes))
	for n := range m.Schemes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// CDFTable renders the CDF of every series at the given error values
// (the paper's CDF figures as rows).
func CDFTable(title string, m *Merged, values []float64) *Table {
	t := &Table{Title: title}
	t.Headers = []string{"error<=m"}
	names := m.SchemeNames()
	t.Headers = append(t.Headers, names...)
	t.Headers = append(t.Headers, "uniloc1", "uniloc2", "oracle")
	cols := make([][]float64, 0, len(names)+3)
	for _, n := range names {
		cols = append(cols, stat.CDFSeries(m.Schemes[n], values))
	}
	cols = append(cols,
		stat.CDFSeries(m.UniLoc1, values),
		stat.CDFSeries(m.UniLoc2, values),
		stat.CDFSeries(m.Oracle, values),
	)
	for i, v := range values {
		row := []string{F1(v)}
		for _, c := range cols {
			row = append(row, fmt.Sprintf("%.2f", c[i]))
		}
		t.AddRow(row...)
	}
	return t
}

// SummaryTable renders mean / median / 90th percentile for every
// series.
func SummaryTable(title string, m *Merged) *Table {
	t := &Table{Title: title, Headers: []string{"series", "mean(m)", "p50(m)", "p90(m)", "n"}}
	add := func(name string, xs []float64) {
		if len(xs) == 0 {
			t.AddRow(name, "n/a", "n/a", "n/a", "0")
			return
		}
		t.AddRow(name, F(stat.Mean(xs)), F(stat.Percentile(xs, 50)), F(stat.Percentile(xs, 90)),
			fmt.Sprintf("%d", len(xs)))
	}
	for _, n := range m.SchemeNames() {
		add(n, m.Schemes[n])
	}
	add("uniloc1", m.UniLoc1)
	add("uniloc2", m.UniLoc2)
	add("oracle", m.Oracle)
	add("global-bma", m.GlobalBMA)
	add("a-loc", m.ALoc)
	return t
}

// UsageTable renders the fraction of epochs each scheme was chosen by
// UniLoc1 and by the oracle (Figure 5).
func UsageTable(title string, runs []*PathRun) *Table {
	u1 := make(map[string]int)
	or := make(map[string]int)
	total := 0
	for _, r := range runs {
		for i := range r.Selected {
			if r.Selected[i] != "" {
				u1[r.Selected[i]]++
			}
			if r.OracleChoice[i] != "" {
				or[r.OracleChoice[i]]++
			}
			total++
		}
	}
	names := make(map[string]bool)
	for n := range u1 {
		names[n] = true
	}
	for n := range or {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	t := &Table{Title: title, Headers: []string{"scheme", "uniloc1", "oracle"}}
	for _, n := range sorted {
		t.AddRow(n, Pct(float64(u1[n])/float64(total)), Pct(float64(or[n])/float64(total)))
	}
	return t
}
