package eval

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/schemes"
)

// sharedLab caches one trained lab across this package's tests (the
// test binary is single-process, so plain lazy init is fine).
var sharedLab *Lab

func lab(t *testing.T) *Lab {
	t.Helper()
	if sharedLab == nil {
		sharedLab = NewLab(42)
	}
	return sharedLab
}

func trained(t *testing.T) *Trained {
	t.Helper()
	tr, err := lab(t).Trained()
	if err != nil {
		t.Fatalf("training: %v", err)
	}
	return tr
}

func TestTrainProducesModels(t *testing.T) {
	tr := trained(t)
	// Every scheme must have at least one environment model; the four
	// non-GPS schemes must have both.
	for _, name := range []string{schemes.NameWiFi, schemes.NameCellular, schemes.NameMotion, schemes.NameFusion} {
		if tr.Models.Get(name, core.EnvIndoor) == nil {
			t.Errorf("%s indoor model missing", name)
		}
		if tr.Models.Get(name, core.EnvOutdoor) == nil {
			t.Errorf("%s outdoor model missing", name)
		}
	}
	gps := tr.Models.Get(schemes.NameGPS, core.EnvOutdoor)
	if gps == nil {
		t.Fatal("gps outdoor model missing")
	}
	if !gps.Reg.HasIntercept || len(gps.Reg.Beta) != 0 {
		t.Error("gps model must be intercept-only")
	}
	if gps.Reg.Intercept < 5 || gps.Reg.Intercept > 25 {
		t.Errorf("gps intercept = %v, want near the paper's 13.5", gps.Reg.Intercept)
	}
	if tr.Models.Get(schemes.NameGPS, core.EnvIndoor) != nil {
		t.Error("gps must have no indoor model (no fixes indoors)")
	}
}

func TestTrainedModelShapes(t *testing.T) {
	tr := trained(t)
	// Fingerprint density coefficients must be positive (sparser →
	// worse), RSSI deviation negative (less distinguishable → worse),
	// and the motion distance-from-landmark slope positive.
	wifi := tr.Models.Get(schemes.NameWiFi, core.EnvIndoor).Reg
	for j, name := range wifi.Names {
		switch name {
		case schemes.FeatFPDensity:
			if wifi.Beta[j] <= 0 {
				t.Errorf("wifi density coefficient = %v, want > 0", wifi.Beta[j])
			}
		case schemes.FeatRSSIDev:
			if wifi.Beta[j] >= 0 {
				t.Errorf("wifi rssi-dev coefficient = %v, want < 0", wifi.Beta[j])
			}
		}
	}
	motion := tr.Models.Get(schemes.NameMotion, core.EnvIndoor).Reg
	for j, name := range motion.Names {
		if name == schemes.FeatDistLandmark {
			if motion.Beta[j] <= 0 {
				t.Errorf("motion dist-landmark coefficient = %v, want > 0", motion.Beta[j])
			}
			if motion.P[j] > 0.05 {
				t.Errorf("motion dist-landmark p = %v, should be significant", motion.P[j])
			}
		}
	}
}

func TestGlobalWeightsNormalized(t *testing.T) {
	tr := trained(t)
	for env, ws := range tr.Global {
		var sum float64
		for _, w := range ws {
			if w < 0 {
				t.Errorf("%v: negative weight", env)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%v weights sum to %v", env, sum)
		}
	}
}

func TestRunPathInvariants(t *testing.T) {
	tr := trained(t)
	campus := lab(t).Campus()
	path, ok := campus.Place.PathByName("path2")
	if !ok {
		t.Fatal("path2 missing")
	}
	run, err := RunPath(campus, path, tr, RunConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := len(run.Truth)
	if n == 0 {
		t.Fatal("no epochs")
	}
	for name, s := range run.Schemes {
		if len(s.Err) != n || len(s.Avail) != n || len(s.PredErr) != n || len(s.Conf) != n {
			t.Fatalf("%s series misaligned", name)
		}
		for i := range s.Err {
			if s.Avail[i] != !math.IsNaN(s.Err[i]) {
				t.Fatalf("%s: avail/NaN mismatch at %d", name, i)
			}
		}
	}
	for _, series := range [][]float64{run.UniLoc1, run.UniLoc2, run.Oracle, run.GlobalBMA, run.ALoc} {
		if len(series) != n {
			t.Fatal("ensemble series misaligned")
		}
	}
	// Distances strictly increase.
	for i := 1; i < n; i++ {
		if run.DistM[i] < run.DistM[i-1] {
			t.Fatal("distance not monotonic")
		}
	}
	// Oracle ≤ every available scheme at every epoch.
	for i := 0; i < n; i++ {
		for name, s := range run.Schemes {
			if s.Avail[i] && run.Oracle[i] > s.Err[i]+1e-9 {
				t.Fatalf("oracle %v beaten by %s %v at epoch %d", run.Oracle[i], name, s.Err[i], i)
			}
		}
	}
	// Energy accounting covers every consumer.
	for _, consumer := range []string{"uniloc", "uniloc-nogps", schemes.NameMotion, schemes.NameWiFi} {
		if run.EnergyJ[consumer] <= 0 {
			t.Errorf("energy for %s missing", consumer)
		}
	}
	if run.BytesUp <= 0 || run.BytesDown <= 0 {
		t.Error("offload byte counters empty")
	}
	if run.DurationS <= 0 {
		t.Error("duration missing")
	}
}

func TestRunPathNoGPS(t *testing.T) {
	tr := trained(t)
	campus := lab(t).Campus()
	path, _ := campus.Place.PathByName("path1")
	run, err := RunPath(campus, path, tr, RunConfig{Seed: 3, NoGPS: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, on := range run.GPSOn {
		if on {
			t.Fatal("NoGPS run must never power GPS")
		}
	}
}

func TestMergeAndTables(t *testing.T) {
	tr := trained(t)
	campus := lab(t).Campus()
	path, _ := campus.Place.PathByName("path8")
	run, err := RunPath(campus, path, tr, RunConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := Merge([]*PathRun{run, run})
	if len(m.UniLoc2) != 2*len(Valid(run.UniLoc2)) {
		t.Error("Merge should concatenate")
	}
	if s := SummaryTable("x", m).String(); s == "" {
		t.Error("summary empty")
	}
	if s := CDFTable("x", m, []float64{1, 5, 10}).String(); s == "" {
		t.Error("cdf empty")
	}
	if s := UsageTable("x", []*PathRun{run}).String(); s == "" {
		t.Error("usage empty")
	}
}

func TestReportHelpers(t *testing.T) {
	if F(math.NaN()) != "n/a" || F1(math.NaN()) != "n/a" || Pct(math.NaN()) != "n/a" {
		t.Error("NaN rendering wrong")
	}
	if F(1.234) != "1.23" || F1(1.26) != "1.3" || Pct(0.5) != "50.0%" {
		t.Error("number rendering wrong")
	}
	xs := []float64{1, math.NaN(), 3}
	if len(Valid(xs)) != 2 {
		t.Error("Valid wrong")
	}
	if MeanValid(xs) != 2 {
		t.Error("MeanValid wrong")
	}
	if !math.IsNaN(MeanValid([]float64{math.NaN()})) {
		t.Error("all-NaN mean should be NaN")
	}
	if PercentileValid(xs, 50) != 1 && PercentileValid(xs, 50) != 3 && PercentileValid(xs, 50) != 2 {
		t.Error("PercentileValid wrong")
	}
}
