package eval

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"sort"
)

// WriteCSV exports a run's per-epoch record as CSV, one row per
// sensing epoch: ground truth, per-scheme error/availability/predicted
// error/confidence, ensemble and baseline errors. Downstream plotting
// pipelines consume this to redraw the paper's figures.
func (r *PathRun) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	names := make([]string, 0, len(r.Schemes))
	for n := range r.Schemes {
		names = append(names, n)
	}
	sort.Strings(names)

	header := []string{"epoch", "dist_m", "region", "env", "truth_x", "truth_y", "gps_on"}
	for _, n := range names {
		header = append(header, n+"_err", n+"_avail", n+"_pred", n+"_conf")
	}
	header = append(header, "uniloc1_err", "uniloc2_err", "oracle_err",
		"globalbma_err", "aloc_err", "selected", "oracle_choice")
	if err := cw.Write(header); err != nil {
		return err
	}

	f := func(v float64) string {
		if math.IsNaN(v) {
			return ""
		}
		return fmt.Sprintf("%.4f", v)
	}
	bs := func(b bool) string {
		if b {
			return "1"
		}
		return "0"
	}
	for i := range r.Truth {
		row := []string{
			fmt.Sprintf("%d", i),
			f(r.DistM[i]),
			r.Region[i],
			r.Env[i].String(),
			f(r.Truth[i].X), f(r.Truth[i].Y),
			bs(r.GPSOn[i]),
		}
		for _, n := range names {
			s := r.Schemes[n]
			row = append(row, f(s.Err[i]), bs(s.Avail[i]), f(s.PredErr[i]), f(s.Conf[i]))
		}
		row = append(row,
			f(r.UniLoc1[i]), f(r.UniLoc2[i]), f(r.Oracle[i]),
			f(r.GlobalBMA[i]), f(r.ALoc[i]),
			r.Selected[i], r.OracleChoice[i],
		)
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
