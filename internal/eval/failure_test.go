package eval

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/schemes"
	"repro/internal/sensing"
)

// flakyScheme fails on demand, for failure-injection tests.
type flakyScheme struct {
	name string
	pos  geo.Point
	fail bool
}

func (f *flakyScheme) Name() string                 { return f.name }
func (f *flakyScheme) Reset(geo.Point)              {}
func (f *flakyScheme) RegressionFeatures() []string { return nil }
func (f *flakyScheme) Sensors() []string            { return []string{schemes.SensorIMU} }
func (f *flakyScheme) Estimate(*sensing.Snapshot) schemes.Estimate {
	return schemes.Estimate{Pos: f.pos, OK: !f.fail, Features: map[string]float64{}}
}

// interceptModel builds an intercept-only model for a flaky scheme.
func interceptModel(name string, env core.EnvClass, mu, sigma float64) *core.ErrorModel {
	tr := &core.Trainer{}
	for i := 0; i < 40; i++ {
		tr.Add(core.Sample{Scheme: name, Env: env, Features: map[string]float64{}, Err: mu})
	}
	set, err := tr.Fit([]schemes.Scheme{&flakyScheme{name: name}})
	if err != nil {
		panic(err)
	}
	m := set.Get(name, env)
	m.Reg.ResidStd = sigma
	return m
}

// TestFrameworkSurvivesSchemeDropout drives a framework while schemes
// drop in and out; UniLoc must keep producing estimates as long as one
// scheme survives, and recover seamlessly when schemes return (§IV-A's
// temporary-exclusion rule under churn).
func TestFrameworkSurvivesSchemeDropout(t *testing.T) {
	a := &flakyScheme{name: "a", pos: geo.Pt(1, 1)}
	b := &flakyScheme{name: "b", pos: geo.Pt(2, 2)}
	ms := core.NewModelSet()
	for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
		ms.Put(interceptModel("a", env, 2, 1))
		ms.Put(interceptModel("b", env, 3, 1))
	}
	fw, err := core.NewFramework([]schemes.Scheme{a, b}, ms)
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(geo.Pt(0, 0))
	snap := &sensing.Snapshot{LightLux: 11000, MagVarUT: 0.4}

	// Phase 1: both up.
	res := fw.Step(snap)
	if !res.OK {
		t.Fatal("both up should succeed")
	}
	// Phase 2: a drops.
	a.fail = true
	res = fw.Step(snap)
	if !res.OK || res.Schemes[res.BestIdx].Name != "b" {
		t.Fatal("should fail over to b")
	}
	if res.BMA.Dist(geo.Pt(2, 2)) > 1e-9 {
		t.Errorf("BMA should be b alone, got %v", res.BMA)
	}
	// Phase 3: everything drops.
	b.fail = true
	res = fw.Step(snap)
	if res.OK {
		t.Fatal("no scheme up should report !OK")
	}
	// Phase 4: a returns.
	a.fail = false
	res = fw.Step(snap)
	if !res.OK || res.Schemes[res.BestIdx].Name != "a" {
		t.Fatal("should recover when a returns")
	}
}

// TestRunPathWithFlakySensors runs the real campus path with landmark
// detection disabled entirely — a worst case for the motion schemes —
// and checks the pipeline completes with sane output.
func TestRunPathWithFlakySensors(t *testing.T) {
	tr := trained(t)
	campus := lab(t).Campus()
	path, _ := campus.Place.PathByName("path1")
	cfg := RunConfig{Seed: 21}
	cfg.Walker = campus.DefaultWalkerConfig()
	cfg.Walker.LandmarkDetectProb = 0 // no calibration at all
	run, err := RunPath(campus, path, tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Motion drifts badly without landmarks...
	motion := MeanValid(run.Schemes[schemes.NameMotion].Err)
	if math.IsNaN(motion) {
		t.Fatal("motion series empty")
	}
	// ...but the ensemble must stay finite and beat raw motion.
	u2 := MeanValid(run.UniLoc2)
	if math.IsNaN(u2) || math.IsInf(u2, 0) {
		t.Fatal("uniloc2 not finite")
	}
	if u2 > motion {
		t.Errorf("without landmarks, ensemble (%.1f) should beat drifting motion (%.1f)", u2, motion)
	}
}

func TestWriteCSV(t *testing.T) {
	tr := trained(t)
	campus := lab(t).Campus()
	path, _ := campus.Place.PathByName("path8")
	run, err := RunPath(campus, path, tr, RunConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(run.Truth)+1 {
		t.Fatalf("csv rows = %d, want %d", len(lines), len(run.Truth)+1)
	}
	header := lines[0]
	for _, col := range []string{"epoch", "dist_m", "uniloc2_err", "fusion_err", "selected"} {
		if !strings.Contains(header, col) {
			t.Errorf("csv header missing %q", col)
		}
	}
	// Every row has the same column count as the header.
	wantCols := strings.Count(header, ",")
	for i, line := range lines[1:] {
		if strings.Count(line, ",") != wantCols {
			t.Fatalf("row %d has wrong column count", i+1)
		}
	}
}
