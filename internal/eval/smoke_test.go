package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/schemes"
)

// TestSmokeDailyPath trains the models and runs the daily path,
// checking the headline qualitative claims: UniLoc2 beats every
// individual scheme on average, and the oracle beats any individual
// scheme. It doubles as the calibration probe: run with -v to see the
// full summary.
func TestSmokeDailyPath(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	l := lab(t)
	tr := trained(t)
	t.Logf("models:\n%s", tr.Models)

	campus := l.Campus()
	t.Logf("wifi fingerprints: %d, cell fingerprints: %d",
		len(campus.WiFiDB.Points), len(campus.CellDB.Points))
	path, ok := campus.Place.PathByName("path1")
	if !ok {
		t.Fatal("path1 missing")
	}
	t.Logf("path1 length: %.1f m", path.Line.Length())

	run, err := RunPath(campus, path, tr, RunConfig{Seed: 7})
	if err != nil {
		t.Fatalf("run: %v", err)
	}

	m := Merge([]*PathRun{run})
	t.Logf("\n%s", SummaryTable("daily path", m))
	t.Logf("\n%s", UsageTable("usage", []*PathRun{run}))

	// Per-segment means for Figure 2's shape.
	segs := map[string][]int{}
	for i, reg := range run.Region {
		segs[reg] = append(segs[reg], i)
	}
	for reg, idx := range segs {
		line := reg + ":"
		for _, name := range []string{schemes.NameGPS, schemes.NameWiFi, schemes.NameCellular, schemes.NameMotion, schemes.NameFusion} {
			s := run.Schemes[name]
			var xs []float64
			for _, i := range idx {
				if s.Avail[i] {
					xs = append(xs, s.Err[i])
				}
			}
			line += " " + name + "=" + F(MeanValid(xs))
		}
		var u2 []float64
		for _, i := range idx {
			u2 = append(u2, run.UniLoc2[i])
		}
		line += " uniloc2=" + F(MeanValid(u2))
		t.Log(line)
	}

	// Predicted vs actual per scheme in the basement segment.
	for _, name := range []string{schemes.NameCellular, schemes.NameMotion, schemes.NameFusion} {
		s := run.Schemes[name]
		var pred, act, conf []float64
		for i, reg := range run.Region {
			if reg != "basement" || !s.Avail[i] {
				continue
			}
			pred = append(pred, s.PredErr[i])
			act = append(act, s.Err[i])
			conf = append(conf, s.Conf[i])
		}
		t.Logf("basement %s: pred=%.2f act=%.2f conf=%.2f", name, MeanValid(pred), MeanValid(act), MeanValid(conf))
	}

	u2 := MeanValid(run.UniLoc2)
	oracle := MeanValid(run.Oracle)
	for _, name := range []string{schemes.NameWiFi, schemes.NameCellular, schemes.NameMotion, schemes.NameFusion} {
		me := MeanValid(run.Schemes[name].Err)
		if oracle > me {
			t.Errorf("oracle (%.2f) worse than %s (%.2f)", oracle, name, me)
		}
		// UniLoc2 must clearly beat every scheme except possibly the
		// single best one, which it must at least match within 15%
		// (our fusion implementation is stronger than the paper's, so
		// the ensemble's headroom over it is thinner; see
		// EXPERIMENTS.md).
		if u2 > me*1.15 {
			t.Errorf("uniloc2 (%.2f) worse than %s (%.2f)", u2, name, me)
		}
	}

	_ = core.EnvIndoor
}
