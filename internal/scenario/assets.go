package scenario

import (
	"math/rand"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/gnss"
	"repro/internal/prng"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/walker"
)

// Survey spacings used across the evaluation: the paper's deployments
// collect fingerprints at ~3 m resolution indoors and 12 m in open
// spaces (fine-grained indoor collection, constrained access outdoors).
const (
	IndoorSpacingM  = 3
	OutdoorSpacingM = 12
)

// Assets bundles the per-place runtime artifacts every experiment
// needs: the WiFi and cellular fingerprint databases (surveyed with
// the reference device), the GNSS constellation and receiver, and
// factory methods for scheme instances.
type Assets struct {
	Place  *Place
	WiFiDB *fingerprint.DB
	CellDB *fingerprint.DB
	Con    *gnss.Constellation
	GPS    *gnss.Receiver
}

// NewAssets surveys the place and prepares its runtime assets
// deterministically from the seed.
func NewAssets(p *Place, seed int64) *Assets {
	rnd := rand.New(rand.NewSource(seed))
	w := p.World
	indoor := func(pt geo.Point) bool { return w.Indoor(pt) }
	outdoor := func(pt geo.Point) bool { return !w.Indoor(pt) }

	wifiModel := rf.WiFiModel()
	cellModel := rf.CellModel()

	wifiDB := fingerprint.Merge(
		fingerprint.SurveyArea(w, wifiModel, w.APs, IndoorSpacingM, rnd, indoor),
		fingerprint.SurveyArea(w, wifiModel, w.APs, OutdoorSpacingM, rnd, outdoor),
	)
	cellDB := fingerprint.Merge(
		fingerprint.SurveyArea(w, cellModel, w.Towers, IndoorSpacingM, rnd, indoor),
		fingerprint.SurveyArea(w, cellModel, w.Towers, OutdoorSpacingM, rnd, outdoor),
	)

	// One shared sky: every place sees the same satellite constellation
	// (the GPS error model learned in the training open space must
	// transfer to the evaluation places).
	con := gnss.NewConstellation(0x5A7E111E, 12)
	return &Assets{
		Place:  p,
		WiFiDB: wifiDB,
		CellDB: cellDB,
		Con:    con,
		GPS:    &gnss.Receiver{Con: con, World: w},
	}
}

// Schemes returns fresh instances of the five localization schemes,
// in the canonical order [gps, wifi, cellular, motion, fusion]. The
// random source seeds the particle filters.
func (a *Assets) Schemes(rnd *rand.Rand) []schemes.Scheme {
	return a.SchemesOver(a.WiFiDB, a.CellDB, rnd)
}

// SchemesOver is Schemes with the radio maps supplied by the caller —
// e.g. shared mapstore.Store instances serving every session from one
// indexed map — instead of this Assets' private databases.
//
// Each randomized scheme receives its own child stream, derived from
// rnd in canonical scheme order: handing the parent to two consumers
// would couple their outputs to call order and forbid running them
// concurrently (core.WithParallel).
// Each stream runs over a counting prng.Source (output bit-identical
// to the plain stdlib source it wraps), so the randomized schemes are
// snapshotable for cross-node session migration.
func (a *Assets) SchemesOver(wifiMap, cellMap fingerprint.Map, rnd *rand.Rand) []schemes.Scheme {
	pdrSrc := prng.New(rnd.Int63())
	fusionSrc := prng.New(rnd.Int63())
	pdr := schemes.NewPDR(a.Place.World, schemes.DefaultPDRConfig(), rand.New(pdrSrc))
	pdr.TrackSource(pdrSrc)
	fusion := schemes.NewFusion(a.Place.World, wifiMap, schemes.DefaultFusionConfig(), rand.New(fusionSrc))
	fusion.TrackSource(fusionSrc)
	return []schemes.Scheme{
		schemes.NewGPS(a.Place.World.Proj),
		schemes.NewWiFi(wifiMap),
		schemes.NewCellular(cellMap),
		pdr,
		fusion,
	}
}

// WalkerConfig returns the standard walk configuration for this place
// with the given person and device.
func (a *Assets) WalkerConfig(person walker.Config) walker.Config {
	person.GPS = a.GPS
	return person
}

// DefaultWalkerConfig returns the reference walk configuration
// (default person, reference device) wired to this place's GNSS
// receiver.
func (a *Assets) DefaultWalkerConfig() walker.Config {
	cfg := walker.DefaultConfig()
	cfg.GPS = a.GPS
	return cfg
}

// HeterogeneousWalkerConfig returns the walk configuration for the
// second device model (Figure 8d).
func (a *Assets) HeterogeneousWalkerConfig() walker.Config {
	cfg := a.DefaultWalkerConfig()
	cfg.Device = rf.Heterogeneous()
	return cfg
}
