package scenario

import (
	"math/rand"
	"testing"

	"repro/internal/geo"
	"repro/internal/world"
)

func allPlaces() []*Place {
	return []*Place{Campus(), Mall(), UrbanOpenSpace(), TrainingOffice(), TrainingOpenSpace()}
}

func TestWorldsValidate(t *testing.T) {
	for _, p := range allPlaces() {
		if err := p.World.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// TestPathsWalkable is the load-bearing geometry check: every point of
// every path, sampled at 0.5 m, must lie inside a walkable region, and
// no 0.5 m hop along the path may cross a wall.
func TestPathsWalkable(t *testing.T) {
	for _, p := range allPlaces() {
		for _, path := range p.Paths {
			total := path.Line.Length()
			if total < 50 {
				t.Errorf("%s/%s: suspiciously short (%.1f m)", p.Name, path.Name, total)
			}
			var prev geo.Point
			first := true
			for d := 0.0; d <= total; d += 0.5 {
				pt, _ := path.Line.At(d)
				if !p.World.Walkable(pt) {
					t.Fatalf("%s/%s: unwalkable at %.1f m: %v", p.Name, path.Name, d, pt)
				}
				if !first && p.World.WallsCrossed(prev, pt) > 0 {
					t.Fatalf("%s/%s: wall crossed at %.1f m (%v → %v)", p.Name, path.Name, d, prev, pt)
				}
				prev, first = pt, false
			}
		}
	}
}

func TestCampusPathInventory(t *testing.T) {
	c := Campus()
	if len(c.Paths) != 8 {
		t.Fatalf("campus paths = %d, want the paper's 8", len(c.Paths))
	}
	var total float64
	for _, p := range c.Paths {
		total += p.Line.Length()
	}
	// The paper's eight paths total 2.78 km; ours should land in the
	// same regime.
	if total < 2200 || total > 3500 {
		t.Errorf("total path length = %.0f m, want ~2780", total)
	}
	if _, ok := c.PathByName("path1"); !ok {
		t.Error("path1 missing")
	}
	if _, ok := c.PathByName("nonesuch"); ok {
		t.Error("PathByName should miss")
	}
}

func TestDailyPathSegments(t *testing.T) {
	c := Campus()
	p1, _ := c.PathByName("path1")
	wantOrder := []world.Kind{
		world.KindOffice, world.KindCorridor, world.KindBasement,
		world.KindCarPark, world.KindOpenSpace,
	}
	var seen []world.Kind
	for d := 0.0; d <= p1.Line.Length(); d += 1 {
		pt, _ := p1.Line.At(d)
		r := c.World.RegionAt(pt)
		if r == nil {
			continue
		}
		if len(seen) == 0 || seen[len(seen)-1] != r.Kind {
			seen = append(seen, r.Kind)
		}
	}
	// The canonical segment kinds must appear in the canonical order
	// (subsequence match; vertical connector corridors inside the
	// office may repeat kinds).
	i := 0
	for _, k := range seen {
		if i < len(wantOrder) && k == wantOrder[i] {
			i++
		}
	}
	if i != len(wantOrder) {
		t.Errorf("segment order %v missing canonical sequence %v", seen, wantOrder)
	}
}

func TestCampusBasementIsDark(t *testing.T) {
	c := Campus()
	a := NewAssets(c, 1)
	// No WiFi fingerprints inside the basement: the penetration zone
	// must kill the survey there.
	for _, fp := range a.WiFiDB.Points {
		if r := c.World.RegionAt(fp.Pos); r != nil && r.Kind == world.KindBasement {
			t.Fatalf("wifi fingerprint inside basement at %v", fp.Pos)
		}
	}
	// But cellular fingerprints must exist there.
	found := false
	for _, fp := range a.CellDB.Points {
		if r := c.World.RegionAt(fp.Pos); r != nil && r.Kind == world.KindBasement {
			found = true
			break
		}
	}
	if !found {
		t.Error("no cellular fingerprints in the basement")
	}
}

func TestLandmarksIndoorOnly(t *testing.T) {
	c := Campus()
	for _, lm := range c.World.Landmarks {
		if !c.World.Indoor(lm.Pos) && lm.Kind != world.LandmarkDoor {
			t.Errorf("non-door landmark %s outdoors at %v", lm.ID, lm.Pos)
		}
	}
	if len(c.World.Landmarks) < 10 {
		t.Errorf("campus landmarks = %d, too few", len(c.World.Landmarks))
	}
}

func TestAssetsDeterministic(t *testing.T) {
	p := TrainingOffice()
	a := NewAssets(p, 9)
	b := NewAssets(TrainingOffice(), 9)
	if len(a.WiFiDB.Points) != len(b.WiFiDB.Points) {
		t.Fatal("survey size differs across identical builds")
	}
	for i := range a.WiFiDB.Points {
		if a.WiFiDB.Points[i].Pos != b.WiFiDB.Points[i].Pos {
			t.Fatal("survey positions differ")
		}
		if len(a.WiFiDB.Points[i].Vec) != len(b.WiFiDB.Points[i].Vec) {
			t.Fatal("survey vectors differ")
		}
	}
}

func TestAssetsSpacingByEnvironment(t *testing.T) {
	c := Campus()
	a := NewAssets(c, 2)
	indoor, outdoor := 0, 0
	for _, fp := range a.WiFiDB.Points {
		if c.World.Indoor(fp.Pos) {
			indoor++
		} else {
			outdoor++
		}
	}
	if indoor == 0 || outdoor == 0 {
		t.Fatalf("survey should cover both: %d indoor / %d outdoor", indoor, outdoor)
	}
	// The indoor grid is 4× denser linearly, so indoor fingerprints
	// should outnumber outdoor ones despite smaller indoor area.
	if indoor < outdoor {
		t.Errorf("indoor %d < outdoor %d — spacing rule broken?", indoor, outdoor)
	}
}

func TestSchemesFactory(t *testing.T) {
	a := NewAssets(TrainingOffice(), 3)
	ss := a.Schemes(rand.New(rand.NewSource(1)))
	if len(ss) != 5 {
		t.Fatalf("schemes = %d, want the paper's 5", len(ss))
	}
	names := map[string]bool{}
	for _, s := range ss {
		names[s.Name()] = true
	}
	for _, want := range []string{"gps", "wifi", "cellular", "motion", "fusion"} {
		if !names[want] {
			t.Errorf("missing scheme %q", want)
		}
	}
}

func TestMallCellularWeak(t *testing.T) {
	m := Mall()
	a := NewAssets(m, 4)
	// Count audible towers at a mall aisle point: the paper observed
	// ~2 on the basement floor.
	var counts []int
	for _, fp := range a.CellDB.Points {
		counts = append(counts, len(fp.Vec))
	}
	if len(counts) == 0 {
		t.Fatal("no cellular fingerprints in the mall")
	}
	var sum int
	for _, c := range counts {
		sum += c
	}
	avg := float64(sum) / float64(len(counts))
	if avg > 3.5 {
		t.Errorf("mall hears %.1f towers on average, want ~2", avg)
	}
}

func TestLoopPathsCutCorrectly(t *testing.T) {
	loop := geo.Line(geo.Pt(0, 0), geo.Pt(100, 0), geo.Pt(100, 50), geo.Pt(0, 50), geo.Pt(0, 0))
	paths := loopPaths("x", loop, 4, 120)
	if len(paths) != 4 {
		t.Fatalf("paths = %d", len(paths))
	}
	for _, p := range paths {
		l := p.Line.Length()
		if l < 110 || l > 130 {
			t.Errorf("%s length = %v", p.Name, l)
		}
	}
	// Different offsets start at different points.
	s0, _ := paths[0].Line.At(0)
	s1, _ := paths[1].Line.At(0)
	if s0 == s1 {
		t.Error("offsets should differ")
	}
}
