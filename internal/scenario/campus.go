package scenario

import (
	"repro/internal/geo"
	"repro/internal/noise"
	"repro/internal/world"
)

// Campus builds the campus place: four buildings (office A, library L,
// auditorium D, restaurant R), a semi-open corridor, a basement
// passageway, a covered car park, walkways, and a large open space.
// The eight daily paths of §V-B run through it; Path 1 is the daily
// path of §II (office → corridor → basement → car park → open space,
// ~330 m).
func Campus() *Place {
	w := &world.World{
		Name:  "campus",
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3483, Lon: 103.6831}},
		Noise: noise.Field{Seed: 0xCA11B5},
	}

	// ---- Building A: the office (56×20 m² interior, three corridors).
	addRegions(w,
		room("A-C1", world.KindOffice, 2, 2, 58, 5),
		room("A-C2", world.KindOffice, 2, 9, 58, 12),
		room("A-C3", world.KindOffice, 2, 16, 58, 19),
		room("A-V1", world.KindOffice, 2, 2, 5, 19),
		room("A-V2", world.KindOffice, 55, 2, 58, 19),
		room("A-Vm", world.KindOffice, 28, 2, 31, 24),
	)
	w.Walls = append(w.Walls, shellWalls(0, 0, 60, 24, 12,
		doorGap{side: 'e', at: 10.5, width: 3},
		doorGap{side: 'n', at: 29.5, width: 3},
	)...)

	// ---- Semi-open corridor along the building edge (roofed, one
	// side open to the sky).
	addRegions(w, room("corridor", world.KindCorridor, 58, 9, 120, 12))

	// ---- Basement passageway: underground (heavy penetration loss
	// kills WiFi and GPS, cellular survives weakly), magnetically
	// noisy, wide and featureless (no landmarks) — PDR error
	// accumulates here (§II).
	bas := room("basement", world.KindBasement, 120, -2, 180, 17)
	bas.CorridorWidth = 19
	bas.MagNoise = 7
	addRegions(w, bas)
	w.Zones = append(w.Zones, world.PenetrationZone{
		Name:   "basement-floor",
		Poly:   geo.RectPoly(120, -2.5, 180, 17.5),
		LossDB: 38,
	})
	w.Walls = append(w.Walls, shellWalls(120, -2.5, 180, 17.5, 20,
		doorGap{side: 'w', at: 10.5, width: 3},
		doorGap{side: 'e', at: 10.5, width: 3},
	)...)

	// ---- Covered car park.
	addRegions(w, room("carpark", world.KindCarPark, 180, -8, 226, 26))
	w.Walls = append(w.Walls, shellWalls(180, -8, 226, 26, 6,
		doorGap{side: 'w', at: 10.5, width: 3},
		doorGap{side: 'e', at: 0, width: 4},
	)...)

	// ---- Open space.
	addRegions(w, room("openspace", world.KindOpenSpace, 226, -24, 340, 44))

	// ---- Building L: the library.
	addRegions(w,
		room("L-C1", world.KindOffice, 72, 32, 128, 35),
		room("L-C2", world.KindOffice, 72, 44, 128, 47),
		room("L-C3", world.KindOffice, 72, 57, 128, 60),
		room("L-V1", world.KindOffice, 72, 32, 75, 60),
		room("L-V2", world.KindOffice, 125, 32, 128, 60),
		room("L-Vm", world.KindOffice, 98.5, 30, 101.5, 47),
		room("L-Vw", world.KindOffice, 70, 44.5, 72, 47.5), // west-door vestibule
	)
	w.Walls = append(w.Walls, shellWalls(70, 30, 130, 62, 12,
		doorGap{side: 's', at: 100, width: 3},
		doorGap{side: 'w', at: 46, width: 3},
	)...)

	// ---- Building D: the auditorium.
	addRegions(w,
		room("D-C1", world.KindOffice, 2, 42, 48, 45),
		room("D-C2", world.KindOffice, 2, 54, 48, 57),
		room("D-C3", world.KindOffice, 2, 67, 48, 70),
		room("D-V1", world.KindOffice, 2, 42, 5, 70),
		room("D-V2", world.KindOffice, 45, 42, 48, 70),
	)
	w.Walls = append(w.Walls, shellWalls(0, 40, 50, 72, 12,
		doorGap{side: 'e', at: 56, width: 3},
	)...)

	// ---- Building R: the restaurant.
	addRegions(w,
		room("R-C1", world.KindOffice, 242, 62, 298, 65),
		room("R-C2", world.KindOffice, 242, 72, 298, 75),
		room("R-C3", world.KindOffice, 242, 83, 298, 86),
		room("R-V1", world.KindOffice, 242, 62, 245, 86),
		room("R-V2", world.KindOffice, 295, 62, 298, 86),
		room("R-Vm", world.KindOffice, 268.5, 60, 271.5, 65),
	)
	w.Walls = append(w.Walls, shellWalls(240, 60, 300, 88, 12,
		doorGap{side: 's', at: 270, width: 3},
	)...)

	// ---- Outdoor walkways connecting the buildings.
	addRegions(w,
		room("WK-north", world.KindWalkway, 24, 24, 104, 30), // A north door ↔ L south door
		room("WK-west", world.KindWalkway, 60, 12, 66, 60),   // corridor ↔ D area
		room("WK-D", world.KindWalkway, 48, 54, 66, 60),      // spur to D east door
		room("WK-L", world.KindWalkway, 66, 44, 72, 48),      // spur to L west door
		room("WK-R", world.KindWalkway, 266, 44, 274, 61),    // open space ↔ R south door
	)

	// ---- WiFi access points.
	w.APs = append(w.APs, apGrid("A", 4, 2, 58, 22, 15, 16)...)
	w.APs = append(w.APs, apGrid("L", 74, 32, 126, 60, 15, 16)...)
	w.APs = append(w.APs, apGrid("D", 4, 42, 46, 70, 15, 16)...)
	w.APs = append(w.APs, apGrid("R", 244, 62, 296, 86, 15, 16)...)
	w.APs = append(w.APs,
		world.Site{ID: "COR0", Pos: geo.Pt(75, 13.5), TxPowerDBm: 15},
		world.Site{ID: "COR1", Pos: geo.Pt(105, 13.5), TxPowerDBm: 15},
		world.Site{ID: "CP0", Pos: geo.Pt(184, 24), TxPowerDBm: 14},
		world.Site{ID: "CP1", Pos: geo.Pt(222, -6), TxPowerDBm: 14},
		world.Site{ID: "OS0", Pos: geo.Pt(232, 46), TxPowerDBm: 16},
		world.Site{ID: "OS1", Pos: geo.Pt(300, 47), TxPowerDBm: 16},
		world.Site{ID: "OS2", Pos: geo.Pt(338, -22), TxPowerDBm: 16},
		world.Site{ID: "WK0", Pos: geo.Pt(63, 36), TxPowerDBm: 14},
	)

	// ---- Cellular towers.
	w.Towers = []world.Site{
		{ID: "T1", Pos: geo.Pt(-220, 260), TxPowerDBm: 43},
		{ID: "T2", Pos: geo.Pt(520, 380), TxPowerDBm: 43},
		{ID: "T3", Pos: geo.Pt(300, -340), TxPowerDBm: 43},
		{ID: "T4", Pos: geo.Pt(-180, -260), TxPowerDBm: 43},
		{ID: "T5", Pos: geo.Pt(160, 640), TxPowerDBm: 43},
		{ID: "T6", Pos: geo.Pt(650, 40), TxPowerDBm: 43},
	}

	p := &Place{Name: "campus", World: w}
	p.Paths = campusPaths()

	// Landmarks: turns and doors along every path, plus signatures
	// inside the office buildings only (the semi-open corridor and the
	// basement passageway are featureless, and outdoors signatures are
	// hard to find — §V-B2), so PDR error accumulates along the
	// corridor–basement stretch as in the paper's Figure 2.
	inBuilding := func(pt geo.Point) bool {
		r := w.RegionAt(pt)
		return r != nil && r.Kind == world.KindOffice
	}
	for _, path := range p.Paths {
		autoLandmarks(w, path.Line, 4)
		addSignatures(w, path.Line, 35, inBuilding)
	}
	return p
}

// addRegions appends regions to a world.
func addRegions(w *world.World, rs ...world.Region) {
	w.Regions = append(w.Regions, rs...)
}

// campusPaths defines the eight daily paths (Figure 4). Lengths are
// campus-scale approximations of the paper's 290–415 m paths totalling
// ~2.8 km.
func campusPaths() []Path {
	pt := geo.Pt
	return []Path{
		// Path 1 — the daily path of §II: office, semi-open corridor,
		// basement, car park, open space (~333 m).
		{Name: "path1", Line: geo.Line(
			pt(4, 3.5), pt(56.5, 3.5), pt(56.5, 10.5), pt(180, 10.5),
			pt(200, 10.5), pt(200, 0), pt(226, 0), pt(290, 0), pt(290, 30),
		)},
		// Path 2 — office A to the library reading rooms (~290 m).
		{Name: "path2", Line: geo.Line(
			pt(4, 17.5), pt(27, 17.5), pt(29.5, 17.5), pt(29.5, 27),
			pt(100, 27), pt(100, 45.5), pt(74, 45.5), pt(74, 33.5),
			pt(126.5, 33.5), pt(126.5, 58.5), pt(74, 58.5),
		)},
		// Path 3 — office A through the corridor, north walkway, into
		// the auditorium and a loop of its corridors (~390 m).
		{Name: "path3", Line: geo.Line(
			pt(4, 3.5), pt(56.5, 3.5), pt(56.5, 10.5), pt(63, 10.5),
			pt(63, 56), pt(46.5, 56), pt(46.5, 43.5), pt(4, 43.5),
			pt(3.5, 55.5), pt(46.5, 55.5), pt(46.5, 68.5), pt(4, 68.5),
			pt(3.5, 43.5), pt(30, 43.5),
		)},
		// Path 4 — the full daily route extended to the restaurant
		// (~415 m): office → corridor → basement → car park → open
		// space → restaurant.
		{Name: "path4", Line: geo.Line(
			pt(4, 3.5), pt(56.5, 3.5), pt(56.5, 10.5), pt(180, 10.5),
			pt(200, 10.5), pt(200, 0), pt(226, 0), pt(270, 0),
			pt(270, 63.5), pt(244, 63.5), pt(244, 73.5), pt(296, 73.5),
		)},
		// Path 5 — library loop plus walkways to the auditorium
		// (~376 m).
		{Name: "path5", Line: geo.Line(
			pt(126.5, 33.5), pt(74, 33.5), pt(74, 45.5), pt(126.5, 45.5),
			pt(126.5, 58.5), pt(74, 58.5), pt(73.5, 46), pt(69, 46),
			pt(63, 46), pt(63, 56), pt(46.5, 56), pt(46.5, 43.5),
			pt(4, 43.5), pt(3.5, 68.5), pt(46.5, 68.5),
		)},
		// Path 6 — office A, corridor, basement, and a car-park loop
		// (~343 m).
		{Name: "path6", Line: geo.Line(
			pt(4, 10.5), pt(56.5, 10.5), pt(180, 10.5), pt(200, 10.5),
			pt(200, 22), pt(220, 22), pt(220, -4), pt(190, -4),
			pt(190, 10.5), pt(123, 10.5),
		)},
		// Path 7 — open-space wander ending in the restaurant (~372 m).
		{Name: "path7", Line: geo.Line(
			pt(230, 0), pt(330, 0), pt(330, 35), pt(270, 35), pt(270, 63.5),
			pt(296, 63.5), pt(296, 73.5),
		)},
		// Path 8 — a long interior snake of office A, exiting north to
		// the walkway and back (~290 m).
		{Name: "path8", Line: geo.Line(
			pt(4, 3.5), pt(56.5, 3.5), pt(56.5, 10.5), pt(4, 10.5),
			pt(3.5, 17.5), pt(56.5, 17.5), pt(56.5, 10.8), pt(29.5, 10.8),
			pt(29.5, 27), pt(100, 27), pt(40, 27),
		)},
	}
}
