// Package scenario constructs the deterministic worlds the evaluation
// runs in: the campus hosting the daily path and the eight paths of
// §V-B, the shopping-mall basement floor and urban open space of §V-B3,
// and the office/open-space training places of §III-B. It also bundles
// the per-place runtime assets (fingerprint databases, GNSS receiver,
// scheme instances).
package scenario

import (
	"fmt"
	"math"

	"repro/internal/geo"
	"repro/internal/world"
)

// Region property presets per kind.
func regionDefaults(kind world.Kind) world.Region {
	switch kind {
	case world.KindOffice:
		return world.Region{Kind: kind, CorridorWidth: 2.5, SkyOpenness: 0.03, LightLux: 320, MagNoise: 2.2, RSSINoise: 0}
	case world.KindCorridor:
		return world.Region{Kind: kind, CorridorWidth: 3, SkyOpenness: 0.22, LightLux: 1600, MagNoise: 1.9, RSSINoise: 0}
	case world.KindBasement:
		return world.Region{Kind: kind, CorridorWidth: 3, SkyOpenness: 0, LightLux: 140, MagNoise: 2.6, RSSINoise: 0}
	case world.KindCarPark:
		return world.Region{Kind: kind, CorridorWidth: 14, SkyOpenness: 0.15, LightLux: 420, MagNoise: 2.4, RSSINoise: 0}
	case world.KindOpenSpace:
		return world.Region{Kind: kind, CorridorWidth: 26, SkyOpenness: 1, LightLux: 11000, MagNoise: 0.5, RSSINoise: 0}
	case world.KindMall:
		return world.Region{Kind: kind, CorridorWidth: 4, SkyOpenness: 0, LightLux: 600, MagNoise: 3.1, RSSINoise: 2.0}
	case world.KindWalkway:
		return world.Region{Kind: kind, CorridorWidth: 5, SkyOpenness: 0.9, LightLux: 9000, MagNoise: 0.7, RSSINoise: 0}
	default:
		return world.Region{Kind: kind, CorridorWidth: 10, SkyOpenness: 0.5, LightLux: 1000, MagNoise: 1, RSSINoise: 0}
	}
}

// room creates a rectangular region of the given kind with kind-default
// properties.
func room(name string, kind world.Kind, x0, y0, x1, y1 float64) world.Region {
	r := regionDefaults(kind)
	r.Name = name
	r.Poly = geo.RectPoly(x0, y0, x1, y1)
	return r
}

// shellWalls returns the four walls of a rectangle with door gaps cut
// out. Each gap is specified by a perimeter side ("n","s","e","w"), a
// coordinate along that side, and a width.
type doorGap struct {
	side  byte // 'n','s','e','w'
	at    float64
	width float64
}

func shellWalls(x0, y0, x1, y1, attDB float64, gaps ...doorGap) []world.Wall {
	var walls []world.Wall
	addRun := func(a, b geo.Point) {
		if a.Dist(b) < 1e-9 {
			return
		}
		walls = append(walls, world.Wall{Seg: geo.Seg(a, b), AttenuationDB: attDB})
	}
	// For each side, collect sorted gap intervals and emit the
	// remaining runs.
	side := func(fixed float64, lo, hi float64, vertical bool, sideID byte) {
		type iv struct{ a, b float64 }
		var ivs []iv
		for _, g := range gaps {
			if g.side != sideID {
				continue
			}
			ivs = append(ivs, iv{g.at - g.width/2, g.at + g.width/2})
		}
		// Insertion-sort the few gaps.
		for i := 1; i < len(ivs); i++ {
			for j := i; j > 0 && ivs[j].a < ivs[j-1].a; j-- {
				ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
			}
		}
		cur := lo
		emit := func(a, b float64) {
			a = math.Max(a, lo)
			b = math.Min(b, hi)
			if b <= a {
				return
			}
			if vertical {
				addRun(geo.Pt(fixed, a), geo.Pt(fixed, b))
			} else {
				addRun(geo.Pt(a, fixed), geo.Pt(b, fixed))
			}
		}
		for _, g := range ivs {
			emit(cur, g.a)
			if g.b > cur {
				cur = g.b
			}
		}
		emit(cur, hi)
	}
	side(y0, x0, x1, false, 's')
	side(y1, x0, x1, false, 'n')
	side(x0, y0, y1, true, 'w')
	side(x1, y0, y1, true, 'e')
	return walls
}

// apGrid places access points on a grid inside a rectangle.
func apGrid(prefix string, x0, y0, x1, y1, spacing, txDBm float64) []world.Site {
	var sites []world.Site
	i := 0
	for y := y0 + spacing/2; y < y1; y += spacing {
		for x := x0 + spacing/2; x < x1; x += spacing {
			sites = append(sites, world.Site{
				ID:         fmt.Sprintf("%s%02d", prefix, i),
				Pos:        geo.Pt(x, y),
				TxPowerDBm: txDBm,
			})
			i++
		}
	}
	return sites
}

// Path is a named walking trajectory.
type Path struct {
	Name string
	Line geo.Polyline
}

// Place is a complete experimental site: a world plus its walking
// paths.
type Place struct {
	Name  string
	World *world.World
	Paths []Path
}

// PathByName returns the named path, or false.
func (p *Place) PathByName(name string) (Path, bool) {
	for _, pt := range p.Paths {
		if pt.Name == name {
			return pt, true
		}
	}
	return Path{}, false
}

// autoLandmarks places calibration landmarks along a path the way the
// paper's PDR finds them: a turn landmark at every roofed path vertex
// with a significant heading change, and a door landmark wherever the
// path crosses between roofed and open regions. Landmarks within
// minSep of an existing one are skipped. Outdoor turns yield no
// landmark — the paper observes it is hard to find sufficient
// signatures outdoors.
func autoLandmarks(w *world.World, line geo.Polyline, minSep float64) {
	add := func(kind world.LandmarkKind, pos geo.Point) {
		for _, lm := range w.Landmarks {
			if lm.Pos.Dist(pos) < minSep {
				return
			}
		}
		w.Landmarks = append(w.Landmarks, world.Landmark{
			ID:     fmt.Sprintf("lm%02d-%s", len(w.Landmarks), kind),
			Kind:   kind,
			Pos:    pos,
			Radius: 2.0,
		})
	}
	pts := line.Points
	for i := 1; i < len(pts)-1; i++ {
		h1 := pts[i].Sub(pts[i-1]).Heading()
		h2 := pts[i+1].Sub(pts[i]).Heading()
		if math.Abs(geo.AngleDiff(h2, h1)) > 30*math.Pi/180 && w.Indoor(pts[i]) {
			add(world.LandmarkTurn, pts[i])
		}
	}
	// Doors: scan along the path for roofed/unroofed transitions.
	const ds = 0.5
	total := line.Length()
	prevIndoor := false
	first := true
	for d := 0.0; d <= total; d += ds {
		p, _ := line.At(d)
		in := w.Indoor(p)
		if !first && in != prevIndoor {
			add(world.LandmarkDoor, p)
		}
		prevIndoor = in
		first = false
	}
}

// addSignatures sprinkles WiFi/structure signature landmarks along the
// indoor portion of a path every sigEvery meters (UnLoc [12]). The
// allow predicate restricts where signatures exist — e.g. a featureless
// basement passageway offers none, which is why PDR error accumulates
// there (§II).
func addSignatures(w *world.World, line geo.Polyline, sigEvery float64, allow func(geo.Point) bool) {
	total := line.Length()
	for d := sigEvery; d < total; d += sigEvery {
		p, _ := line.At(d)
		if !w.Indoor(p) {
			continue
		}
		if allow != nil && !allow(p) {
			continue
		}
		skip := false
		for _, lm := range w.Landmarks {
			if lm.Pos.Dist(p) < sigEvery/2 {
				skip = true
				break
			}
		}
		if !skip {
			w.Landmarks = append(w.Landmarks, world.Landmark{
				ID:     fmt.Sprintf("lm%02d-signature", len(w.Landmarks)),
				Kind:   world.LandmarkSignature,
				Pos:    p,
				Radius: 2.0,
			})
		}
	}
}
