package scenario

import (
	"fmt"

	"repro/internal/geo"
	"repro/internal/noise"
	"repro/internal/world"
)

// Mall builds the shopping-mall place: one basement floor (95×27 m²,
// §V) with two main aisles and three cross aisles, crowded (extra
// temporal RSSI noise), magnetically noisy, no sky, and only two
// cellular towers effectively audible through the heavy structure —
// matching the paper's observation that cellular accuracy is low there.
func Mall() *Place {
	w := &world.World{
		Name:  "mall",
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3521, Lon: 103.8198}},
		Noise: noise.Field{Seed: 0x3A11},
	}
	addRegions(w,
		room("M-A1", world.KindMall, 2, 4, 93, 8),
		room("M-A2", world.KindMall, 2, 19, 93, 23),
		room("M-V1", world.KindMall, 2, 4, 6, 23),
		room("M-V2", world.KindMall, 44, 4, 48, 23),
		room("M-V3", world.KindMall, 89, 4, 93, 23),
	)
	// The whole floor is underground: every shop AP shares the zone,
	// but outside towers pay the penetration loss.
	w.Zones = append(w.Zones, world.PenetrationZone{
		Name:   "mall-basement",
		Poly:   geo.RectPoly(0, 0, 95, 27),
		LossDB: 34,
	})
	w.Walls = append(w.Walls, shellWalls(0, 0, 95, 27, 15,
		doorGap{side: 'w', at: 6, width: 3},
	)...)
	w.APs = apGrid("M", 3, 3, 93, 25, 15, 14)
	w.Towers = []world.Site{
		{ID: "MT1", Pos: geo.Pt(260, 310), TxPowerDBm: 43},
		{ID: "MT2", Pos: geo.Pt(-210, -260), TxPowerDBm: 43},
		{ID: "MT3", Pos: geo.Pt(1400, -200), TxPowerDBm: 43}, // too far through walls
		{ID: "MT4", Pos: geo.Pt(-1200, 900), TxPowerDBm: 43},
	}

	p := &Place{Name: "mall", World: w}
	// Ten ~300 m trajectories: offsets around the main loop.
	loop := geo.Line(
		geo.Pt(4, 6), geo.Pt(91, 6), geo.Pt(91, 21), geo.Pt(46, 21),
		geo.Pt(46, 6.5), geo.Pt(45, 6.5), geo.Pt(45, 21), geo.Pt(4, 21),
		geo.Pt(4, 6),
	)
	p.Paths = loopPaths("mall", loop, 10, 300)
	for _, path := range p.Paths {
		autoLandmarks(w, path.Line, 4)
		addSignatures(w, path.Line, 24, nil)
	}
	return p
}

// UrbanOpenSpace builds the urban open-space place: a flat plaza with
// facade-mounted APs around it, full sky view, and sparse outdoor
// fingerprints.
func UrbanOpenSpace() *Place {
	w := &world.World{
		Name:  "urban-open",
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3000, Lon: 103.8500}},
		Noise: noise.Field{Seed: 0x0BE2},
	}
	addRegions(w, room("plaza", world.KindOpenSpace, 0, 0, 80, 72))
	w.APs = []world.Site{
		{ID: "U0", Pos: geo.Pt(2, 2), TxPowerDBm: 16},
		{ID: "U1", Pos: geo.Pt(78, 2), TxPowerDBm: 16},
		{ID: "U2", Pos: geo.Pt(2, 70), TxPowerDBm: 16},
		{ID: "U3", Pos: geo.Pt(78, 70), TxPowerDBm: 16},
		{ID: "U4", Pos: geo.Pt(40, 71), TxPowerDBm: 16},
	}
	w.Towers = []world.Site{
		{ID: "UT1", Pos: geo.Pt(-260, 180), TxPowerDBm: 43},
		{ID: "UT2", Pos: geo.Pt(340, 300), TxPowerDBm: 43},
		{ID: "UT3", Pos: geo.Pt(200, -280), TxPowerDBm: 43},
		{ID: "UT4", Pos: geo.Pt(-180, -240), TxPowerDBm: 43},
	}

	p := &Place{Name: "urban-open", World: w}
	loop := geo.Line(
		geo.Pt(5, 5), geo.Pt(75, 5), geo.Pt(75, 23), geo.Pt(5, 23),
		geo.Pt(5, 41), geo.Pt(75, 41), geo.Pt(75, 59), geo.Pt(5, 59),
		geo.Pt(5, 5),
	)
	p.Paths = loopPaths("open", loop, 10, 300)
	// Outdoors there are no calibration landmarks; PDR must survive on
	// its own (as the paper observes).
	return p
}

// TrainingOffice builds the error-model training office (§III-B: an
// indoor office of 56×20 m²). It reuses building A's layout standalone.
func TrainingOffice() *Place {
	w := &world.World{
		Name:  "training-office",
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3400, Lon: 103.6800}},
		Noise: noise.Field{Seed: 0x0FF1CE},
	}
	addRegions(w,
		room("T-C1", world.KindOffice, 2, 2, 58, 5),
		room("T-C2", world.KindOffice, 2, 9, 58, 12),
		room("T-C3", world.KindOffice, 2, 16, 58, 19),
		room("T-V1", world.KindOffice, 2, 2, 5, 19),
		room("T-V2", world.KindOffice, 55, 2, 58, 19),
		room("T-Vm", world.KindOffice, 28, 2, 31, 19),
	)
	w.Walls = shellWalls(0, 0, 60, 21, 12)
	// The west wing is a signal-dead zone (server rooms, thick
	// shielding): WiFi is unusable and only a subset of towers remain
	// audible. Without such variety in the training place the error
	// models could not learn how scheme accuracy degrades when signals
	// weaken — the condition they must recognize in basements later.
	w.Zones = append(w.Zones, world.PenetrationZone{
		Name:   "dead-wing",
		Poly:   geo.RectPoly(0, 0, 20, 21),
		LossDB: 45,
	})
	w.APs = apGrid("T", 22, 2, 58, 20, 15, 16)
	w.Towers = []world.Site{
		{ID: "TT1", Pos: geo.Pt(-240, 210), TxPowerDBm: 43},
		{ID: "TT2", Pos: geo.Pt(420, 330), TxPowerDBm: 43},
		{ID: "TT3", Pos: geo.Pt(260, -300), TxPowerDBm: 43},
		{ID: "TT4", Pos: geo.Pt(-200, -230), TxPowerDBm: 43},
		{ID: "TT5", Pos: geo.Pt(130, 560), TxPowerDBm: 43},
	}

	p := &Place{Name: "training-office", World: w}
	pt := geo.Pt
	p.Paths = []Path{
		{Name: "train-a", Line: geo.Line(
			pt(4, 3.5), pt(56.5, 3.5), pt(56.5, 10.5), pt(4, 10.5),
			pt(3.5, 17.5), pt(56.5, 17.5), pt(56.5, 10.8), pt(29.5, 10.8),
			pt(29.5, 3.8), pt(54, 3.8),
		)},
		{Name: "train-b", Line: geo.Line(
			pt(56.5, 17.5), pt(4, 17.5), pt(3.5, 3.5), pt(29.5, 3.5),
			pt(29.5, 17.2), pt(56.5, 17.2), pt(56.5, 3.5), pt(31, 3.5),
		)},
	}
	for _, path := range p.Paths {
		autoLandmarks(w, path.Line, 4)
		addSignatures(w, path.Line, 22, nil)
	}
	return p
}

// TrainingOpenSpace builds the outdoor training place (§III-B: an open
// space of ~100×100 m² on campus, plus the GPS characterization of two
// urban open spaces).
func TrainingOpenSpace() *Place {
	w := &world.World{
		Name:  "training-open",
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3450, Lon: 103.6900}},
		Noise: noise.Field{Seed: 0x09E2},
	}
	addRegions(w, room("field", world.KindOpenSpace, 0, 0, 100, 100))
	w.APs = []world.Site{
		{ID: "F0", Pos: geo.Pt(2, 2), TxPowerDBm: 16},
		{ID: "F1", Pos: geo.Pt(98, 2), TxPowerDBm: 16},
		{ID: "F2", Pos: geo.Pt(2, 98), TxPowerDBm: 16},
		{ID: "F3", Pos: geo.Pt(98, 98), TxPowerDBm: 16},
		{ID: "F4", Pos: geo.Pt(50, 99), TxPowerDBm: 16},
	}
	w.Towers = []world.Site{
		{ID: "FT1", Pos: geo.Pt(-230, 240), TxPowerDBm: 43},
		{ID: "FT2", Pos: geo.Pt(430, 310), TxPowerDBm: 43},
		{ID: "FT3", Pos: geo.Pt(280, -290), TxPowerDBm: 43},
		{ID: "FT4", Pos: geo.Pt(-190, -250), TxPowerDBm: 43},
	}

	p := &Place{Name: "training-open", World: w}
	pt := geo.Pt
	p.Paths = []Path{
		{Name: "train-out-a", Line: geo.Line(
			pt(5, 5), pt(95, 5), pt(95, 30), pt(5, 30), pt(5, 55),
			pt(95, 55), pt(95, 80), pt(5, 80),
		)},
		{Name: "train-out-b", Line: geo.Line(
			pt(95, 90), pt(10, 90), pt(10, 65), pt(90, 65), pt(90, 40),
			pt(10, 40), pt(10, 15), pt(90, 15),
		)},
	}
	// Surveyor calibration checkpoints at alternating path corners:
	// during training the surveyor knows the truth and re-anchors PDR
	// periodically, so the motion model sees the same 0–100 m
	// distance-from-landmark range it will see between landmarks in
	// evaluation places.
	for _, path := range p.Paths {
		for i := 1; i < len(path.Line.Points)-1; i += 2 {
			v := path.Line.Points[i]
			w.Landmarks = append(w.Landmarks, world.Landmark{
				ID:     fmt.Sprintf("cal%02d", len(w.Landmarks)),
				Kind:   world.LandmarkSignature,
				Pos:    v,
				Radius: 2.0,
			})
		}
	}
	return p
}

// loopPaths cuts n paths of the given length from a closed loop,
// starting at evenly spaced offsets and alternating direction.
func loopPaths(prefix string, loop geo.Polyline, n int, lengthM float64) []Path {
	total := loop.Length()
	paths := make([]Path, 0, n)
	for i := 0; i < n; i++ {
		offset := total * float64(i) / float64(n)
		reverse := i%2 == 1
		line := cutLoop(loop, offset, lengthM, reverse)
		paths = append(paths, Path{Name: fmt.Sprintf("%s-%02d", prefix, i), Line: line})
	}
	return paths
}

// cutLoop walks the closed loop starting at arc-length offset for
// lengthM meters (wrapping), optionally in reverse, sampling a
// polyline every 2 m to keep turn structure.
func cutLoop(loop geo.Polyline, offset, lengthM float64, reverse bool) geo.Polyline {
	total := loop.Length()
	const ds = 2.0
	var pts []geo.Point
	for d := 0.0; d <= lengthM; d += ds {
		pos := offset + d
		if reverse {
			pos = offset - d
		}
		pos = wrap(pos, total)
		p, _ := loop.At(pos)
		pts = append(pts, p)
	}
	return geo.Polyline{Points: pts}
}

func wrap(v, mod float64) float64 {
	for v < 0 {
		v += mod
	}
	for v >= mod {
		v -= mod
	}
	return v
}
