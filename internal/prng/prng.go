// Package prng provides a counting random source: a rand.Source64
// that delegates every draw to the standard library generator while
// keeping a (seed, draws) pair that fully describes its state. The
// pair is what cross-node session migration ships — restoring a
// source on another node reseeds the underlying generator and
// discards the counted draws, after which the stream continues
// bit-identically to an uninterrupted run.
//
// The wrapper adds one counter increment per draw and nothing else:
// rand.New(prng.New(seed)) produces the exact output sequence of
// rand.New(rand.NewSource(seed)), so schemes that adopt a tracked
// source keep every existing golden result.
package prng

import "math/rand"

// Source is a serializable rand.Source64. Not safe for concurrent
// use — like the source it wraps, each consumer needs its own.
type Source struct {
	seed  int64
	draws uint64
	src   rand.Source64
}

// New creates a tracked source seeded like rand.NewSource(seed).
func New(seed int64) *Source {
	return &Source{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 {
	s.draws++
	return s.src.Int63()
}

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.draws++
	return s.src.Uint64()
}

// Seed implements rand.Source, resetting the draw count.
func (s *Source) Seed(seed int64) {
	s.seed = seed
	s.draws = 0
	s.src.Seed(seed)
}

// State returns the (seed, draws) pair that identifies the stream
// position.
func (s *Source) State() (seed int64, draws uint64) { return s.seed, s.draws }

// Restore rewinds or fast-forwards the source to the given state:
// reseed, then burn draws variates. Every rand.Rand method bottoms
// out in exactly one underlying draw per Int63/Uint64 call (both
// advance the same generator state once), so replaying the count
// reproduces the stream position regardless of which methods
// originally consumed it.
func (s *Source) Restore(seed int64, draws uint64) {
	s.src.Seed(seed)
	for i := uint64(0); i < draws; i++ {
		s.src.Uint64()
	}
	s.seed = seed
	s.draws = draws
}
