package prng

import (
	"math"
	"math/rand"
	"testing"
)

// The tracked source must be indistinguishable from the stdlib source
// it wraps: same seed, same output bits, for every rand.Rand method
// the schemes use.
func TestMatchesStdlibSource(t *testing.T) {
	ref := rand.New(rand.NewSource(42))
	got := rand.New(New(42))
	for i := 0; i < 2000; i++ {
		switch i % 4 {
		case 0:
			if a, b := ref.NormFloat64(), got.NormFloat64(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("NormFloat64 diverged at draw %d: %v vs %v", i, a, b)
			}
		case 1:
			if a, b := ref.Float64(), got.Float64(); math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("Float64 diverged at draw %d: %v vs %v", i, a, b)
			}
		case 2:
			if a, b := ref.Int63(), got.Int63(); a != b {
				t.Fatalf("Int63 diverged at draw %d: %d vs %d", i, a, b)
			}
		case 3:
			if a, b := ref.Uint64(), got.Uint64(); a != b {
				t.Fatalf("Uint64 diverged at draw %d: %d vs %d", i, a, b)
			}
		}
	}
}

// Restoring (seed, draws) on a fresh source must continue the stream
// bit-identically, including across mixed draw kinds (NormFloat64
// consumes a variable number of variates via rejection sampling — the
// count at the source level absorbs that).
func TestRestoreContinuesStream(t *testing.T) {
	src := New(7)
	r := rand.New(src)
	for i := 0; i < 500; i++ {
		r.NormFloat64()
		r.Float64()
	}
	seed, draws := src.State()

	want := make([]float64, 100)
	for i := range want {
		want[i] = r.NormFloat64()
	}

	src2 := New(1234) // deliberately different initial seed
	src2.Restore(seed, draws)
	r2 := rand.New(src2)
	for i := range want {
		if g := r2.NormFloat64(); math.Float64bits(g) != math.Float64bits(want[i]) {
			t.Fatalf("restored stream diverged at draw %d: %v vs %v", i, g, want[i])
		}
	}

	if s2, d2 := src2.State(); s2 != seed || d2 <= draws {
		t.Fatalf("restored state not advancing: seed %d draws %d", s2, d2)
	}
}

// Restore to draw 0 equals a fresh seed.
func TestRestoreZeroDraws(t *testing.T) {
	src := New(99)
	r := rand.New(src)
	for i := 0; i < 50; i++ {
		r.Int63()
	}
	src.Restore(99, 0)
	ref := rand.New(rand.NewSource(99))
	got := rand.New(src)
	for i := 0; i < 50; i++ {
		if a, b := ref.Int63(), got.Int63(); a != b {
			t.Fatalf("rewind diverged at %d", i)
		}
	}
}
