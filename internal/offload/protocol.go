// Package offload implements UniLoc's computation-offloading path
// (§IV-C): the phone pre-processes raw sensor data locally (the 50 Hz
// inertial stream becomes one 4-byte step update per epoch), ships the
// compact intermediate results to a server over a length-prefixed
// binary protocol, and the server runs all localization schemes, error
// prediction and BMA, returning the fused position.
//
// The same protocol runs over real TCP sockets (see examples/offload
// and cmd/uniloc-server) and over net.Pipe in tests; Table V's
// response-time decomposition combines the protocol's byte counts with
// a radio link model and measured compute times.
package offload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/gnss"
	"repro/internal/imu"
	"repro/internal/rf"
	"repro/internal/sensing"
	"repro/internal/telemetry/trace"
)

// MsgType identifies a protocol frame.
type MsgType byte

// Protocol message types.
const (
	MsgStepUpdate MsgType = iota + 1 // 4-byte pre-processed inertial update
	MsgWiFiVector                    // online WiFi RSSI scan
	MsgCellVector                    // online cellular RSSI scan
	MsgGNSSFix                       // GPS coordinate (sent only when reliable)
	MsgContext                       // light + magnetic variance + epoch header
	MsgLandmark                      // detected landmark signature
	MsgEpochEnd                      // end of one epoch's upload
	MsgResult                        // server → phone: fused location
	MsgHello                         // phone → server: session handshake (v2)
	MsgWelcome                       // server → phone: handshake reply (v2)
	MsgSurvey                        // phone → server: crowdsourced survey point (v3)
)

// Wire protocol versions. Version 2 added the session handshake
// (MsgHello/MsgWelcome) and the availability flag on Result; version 3
// added crowdsourced survey submissions (MsgSurvey) feeding the
// server's shared map store; version 4 added the per-session epoch
// sequence number on MsgContext and the Resumed flag on MsgWelcome,
// making reconnect-replayed epochs idempotent; version 5 added the
// optional 24-byte span context on MsgContext, propagating the
// client's trace across the wire so server-side spans join the
// client's trace tree.
const (
	ProtocolV2 byte = 2
	ProtocolV3 byte = 3
	ProtocolV4 byte = 4
	ProtocolV5 byte = 5

	// ProtocolVersion is the newest version this build speaks.
	ProtocolVersion = ProtocolV5
)

// VersionFeatures is the capability set of one protocol version — the
// single table every version check in the package goes through, so
// adding a version means adding one entry here instead of sprinkling
// `v >= 4` comparisons across client, server, and codec.
type VersionFeatures struct {
	Surveys bool // MsgSurvey accepted (v3+)
	Resume  bool // context seq numbers, replay cache, session re-attach (v4+)
	Trace   bool // span context on MsgContext (v5+)
}

// Features returns the capability set of a protocol version. Unknown
// future versions report the newest known feature set (capabilities
// are cumulative; the handshake negotiates the version down to what
// both ends speak before features matter).
func Features(v byte) VersionFeatures {
	return VersionFeatures{
		Surveys: v >= ProtocolV3,
		Resume:  v >= ProtocolV4,
		Trace:   v >= ProtocolV5,
	}
}

// Negotiate picks the protocol version a session runs at: the lower of
// the server's maximum and the client's hello. A v5 client talking to
// a v4 server runs the session at v4 (and sends no trace bytes); a v3
// client talking to a v5 server keeps its exact old semantics. Values
// below ProtocolV2 are pinned to v2 — there was no pre-handshake
// version to negotiate with.
func Negotiate(serverMax, client byte) byte {
	v := serverMax
	if client < v {
		v = client
	}
	if v < ProtocolV2 {
		v = ProtocolV2
	}
	return v
}

// Survey map identifiers: which shared radio map a crowdsourced survey
// point belongs to.
const (
	MapWiFi     byte = 1
	MapCellular byte = 2
)

// ErrProtocol reports a malformed frame.
var ErrProtocol = errors.New("offload: protocol error")

// maxPayload bounds a frame payload; scans are small.
const maxPayload = 64 * 1024

// WriteFrame writes one frame: [type][uint16 length][payload].
func WriteFrame(w io.Writer, t MsgType, payload []byte) (int, error) {
	if len(payload) > maxPayload {
		return 0, fmt.Errorf("%w: payload %d exceeds max", ErrProtocol, len(payload))
	}
	hdr := [3]byte{byte(t)}
	binary.BigEndian.PutUint16(hdr[1:], uint16(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if len(payload) > 0 {
		if _, err := w.Write(payload); err != nil {
			return 0, err
		}
	}
	return 3 + len(payload), nil
}

// ReadFrame reads one frame.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	var hdr [3]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint16(hdr[1:])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return MsgType(hdr[0]), payload, nil
}

// EncodeStep packs a step event into the paper's 4-byte intermediate
// result: moving direction (heading, 0.1 milliradian resolution) and
// distance (centimeters) since the last update.
func EncodeStep(e *imu.StepEvent) []byte {
	out := make([]byte, 4)
	h := int16(math.Round(e.HeadingR * 1e4))
	binary.BigEndian.PutUint16(out[0:], uint16(h))
	cm := e.LengthM * 100
	if cm < 0 {
		cm = 0
	}
	if cm > 65535 {
		cm = 65535
	}
	binary.BigEndian.PutUint16(out[2:], uint16(math.Round(cm)))
	return out
}

// DecodeStep unpacks a 4-byte step update.
func DecodeStep(b []byte) (*imu.StepEvent, error) {
	if len(b) != 4 {
		return nil, fmt.Errorf("%w: step update must be 4 bytes, got %d", ErrProtocol, len(b))
	}
	h := int16(binary.BigEndian.Uint16(b[0:]))
	cm := binary.BigEndian.Uint16(b[2:])
	return &imu.StepEvent{
		HeadingR: float64(h) / 1e4,
		LengthM:  float64(cm) / 100,
		PeriodS:  sensing.EpochPeriod.Seconds(),
	}, nil
}

// EncodeVector packs an RSSI scan: [uint16 count] then per observation
// [uint8 idLen][id][int16 rssi×10].
func EncodeVector(v rf.Vector) []byte {
	out := make([]byte, 2, 2+len(v)*12)
	binary.BigEndian.PutUint16(out, uint16(len(v)))
	for _, o := range v {
		id := o.ID
		if len(id) > 255 {
			id = id[:255]
		}
		out = append(out, byte(len(id)))
		out = append(out, id...)
		var r [2]byte
		binary.BigEndian.PutUint16(r[:], uint16(int16(math.Round(o.RSSI*10))))
		out = append(out, r[:]...)
	}
	return out
}

// DecodeVector unpacks an RSSI scan.
func DecodeVector(b []byte) (rf.Vector, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: short vector", ErrProtocol)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	out := make(rf.Vector, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: truncated vector", ErrProtocol)
		}
		idLen := int(b[0])
		b = b[1:]
		if len(b) < idLen+2 {
			return nil, fmt.Errorf("%w: truncated vector entry", ErrProtocol)
		}
		id := string(b[:idLen])
		rssi := float64(int16(binary.BigEndian.Uint16(b[idLen:]))) / 10
		b = b[idLen+2:]
		out = append(out, rf.Obs{ID: id, RSSI: rssi})
	}
	return out, nil
}

// EncodeFix packs a GNSS fix: lat, lon (float64), numSats (uint8),
// HDOP (float32).
func EncodeFix(f *gnss.Fix) []byte {
	out := make([]byte, 8+8+1+4)
	binary.BigEndian.PutUint64(out[0:], math.Float64bits(f.Pos.Lat))
	binary.BigEndian.PutUint64(out[8:], math.Float64bits(f.Pos.Lon))
	out[16] = byte(f.NumSats)
	binary.BigEndian.PutUint32(out[17:], math.Float32bits(float32(f.HDOP)))
	return out
}

// DecodeFix unpacks a GNSS fix.
func DecodeFix(b []byte) (*gnss.Fix, error) {
	if len(b) != 21 {
		return nil, fmt.Errorf("%w: fix must be 21 bytes, got %d", ErrProtocol, len(b))
	}
	f := &gnss.Fix{NumSats: int(b[16])}
	f.Pos.Lat = math.Float64frombits(binary.BigEndian.Uint64(b[0:]))
	f.Pos.Lon = math.Float64frombits(binary.BigEndian.Uint64(b[8:]))
	f.HDOP = float64(math.Float32frombits(binary.BigEndian.Uint32(b[17:])))
	return f, nil
}

// EncodeContext packs the epoch header with sequence number zero
// (callers that do not track per-session sequences, e.g. byte-count
// models; seq 0 never matches the server's replay cache). See
// EncodeContextSeq for the full v4 layout.
func EncodeContext(s *sensing.Snapshot) []byte {
	return EncodeContextSeq(s, 0)
}

// EncodeContextSeq packs the v4 epoch header: epoch (uint32), light
// lux (float32), magnetic variance (float32), gpsEnabled flag, then
// the per-session epoch sequence number (uint32). The sequence number
// identifies this epoch across reconnects so a result computed but
// lost in flight is re-answered, never re-stepped.
func EncodeContextSeq(s *sensing.Snapshot, seq uint32) []byte {
	out := make([]byte, 4+4+4+1+4)
	binary.BigEndian.PutUint32(out[0:], uint32(s.Epoch))
	binary.BigEndian.PutUint32(out[4:], math.Float32bits(float32(s.LightLux)))
	binary.BigEndian.PutUint32(out[8:], math.Float32bits(float32(s.MagVarUT)))
	if s.GPSEnabled {
		out[12] = 1
	}
	binary.BigEndian.PutUint32(out[13:], seq)
	return out
}

// EncodeContextTrace packs the v5 epoch header: the v4 layout followed
// by the 24-byte span context of the client's in-flight epoch span. A
// zero (invalid) context still occupies its bytes — the frame length
// is how decoders version the header — but decodes back to zero,
// meaning "no trace".
func EncodeContextTrace(s *sensing.Snapshot, seq uint32, tctx trace.SpanContext) []byte {
	return trace.AppendContext(EncodeContextSeq(s, seq), tctx)
}

// DecodeContext unpacks the epoch header into a fresh snapshot,
// discarding the sequence number.
func DecodeContext(b []byte) (*sensing.Snapshot, error) {
	s, _, err := DecodeContextSeq(b)
	return s, err
}

// DecodeContextSeq unpacks an epoch header of any version, discarding
// any trace context.
func DecodeContextSeq(b []byte) (*sensing.Snapshot, uint32, error) {
	s, seq, _, err := DecodeContextFull(b)
	return s, seq, err
}

// DecodeContextFull unpacks a v5 (41-byte), v4 (17-byte) or v3
// (13-byte) epoch header. v3 frames carry no sequence number and
// report seq 0, which is never cached; frames without a span context
// (or with an all-zero one) report the zero SpanContext — pre-v5
// clients keep their exact old semantics.
func DecodeContextFull(b []byte) (*sensing.Snapshot, uint32, trace.SpanContext, error) {
	var tctx trace.SpanContext
	if len(b) != 13 && len(b) != 17 && len(b) != 17+trace.ContextBytes {
		return nil, 0, tctx, fmt.Errorf("%w: context must be 13, 17 or %d bytes, got %d",
			ErrProtocol, 17+trace.ContextBytes, len(b))
	}
	s := &sensing.Snapshot{
		Epoch:    int(binary.BigEndian.Uint32(b[0:])),
		LightLux: float64(math.Float32frombits(binary.BigEndian.Uint32(b[4:]))),
		MagVarUT: float64(math.Float32frombits(binary.BigEndian.Uint32(b[8:]))),
	}
	s.GPSEnabled = b[12] == 1
	s.T = time.Duration(s.Epoch) * sensing.EpochPeriod
	var seq uint32
	if len(b) >= 17 {
		seq = binary.BigEndian.Uint32(b[13:])
	}
	if len(b) == 17+trace.ContextBytes {
		tctx, _ = trace.DecodeContext(b[17:])
	}
	return s, seq, tctx, nil
}

// EncodeLandmark packs a landmark hit: [uint8 idLen][id][float32 x]
// [float32 y][uint8 kindLen][kind].
func EncodeLandmark(l *sensing.LandmarkHit) []byte {
	out := make([]byte, 0, 1+len(l.ID)+8+1+len(l.Kind))
	out = append(out, byte(len(l.ID)))
	out = append(out, l.ID...)
	var f [4]byte
	binary.BigEndian.PutUint32(f[:], math.Float32bits(float32(l.Pos.X)))
	out = append(out, f[:]...)
	binary.BigEndian.PutUint32(f[:], math.Float32bits(float32(l.Pos.Y)))
	out = append(out, f[:]...)
	out = append(out, byte(len(l.Kind)))
	out = append(out, l.Kind...)
	return out
}

// DecodeLandmark unpacks a landmark hit.
func DecodeLandmark(b []byte) (*sensing.LandmarkHit, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("%w: short landmark", ErrProtocol)
	}
	idLen := int(b[0])
	b = b[1:]
	if len(b) < idLen+8+1 {
		return nil, fmt.Errorf("%w: truncated landmark", ErrProtocol)
	}
	l := &sensing.LandmarkHit{ID: string(b[:idLen])}
	b = b[idLen:]
	l.Pos.X = float64(math.Float32frombits(binary.BigEndian.Uint32(b[0:])))
	l.Pos.Y = float64(math.Float32frombits(binary.BigEndian.Uint32(b[4:])))
	kindLen := int(b[8])
	b = b[9:]
	if len(b) < kindLen {
		return nil, fmt.Errorf("%w: truncated landmark kind", ErrProtocol)
	}
	l.Kind = string(b[:kindLen])
	return l, nil
}

// Survey is a crowdsourced survey point (v3): a full RSSI scan taken at
// a known position (e.g. beside a landmark), contributed to the
// server's shared radio map. Positions travel as float64 because they
// key exact-position refreshes in the map store.
type Survey struct {
	Map  byte // MapWiFi or MapCellular
	X, Y float64
	Vec  rf.Vector
}

// EncodeSurvey packs a survey frame: [map][float64 x][float64 y]
// [vector].
func EncodeSurvey(s *Survey) []byte {
	out := make([]byte, 17, 17+2+len(s.Vec)*12)
	out[0] = s.Map
	binary.BigEndian.PutUint64(out[1:], math.Float64bits(s.X))
	binary.BigEndian.PutUint64(out[9:], math.Float64bits(s.Y))
	return append(out, EncodeVector(s.Vec)...)
}

// DecodeSurvey unpacks a survey frame.
func DecodeSurvey(b []byte) (*Survey, error) {
	if len(b) < 17 {
		return nil, fmt.Errorf("%w: short survey", ErrProtocol)
	}
	s := &Survey{Map: b[0]}
	s.X = math.Float64frombits(binary.BigEndian.Uint64(b[1:]))
	s.Y = math.Float64frombits(binary.BigEndian.Uint64(b[9:]))
	vec, err := DecodeVector(b[17:])
	if err != nil {
		return nil, err
	}
	s.Vec = vec
	return s, nil
}

// Hello is the client's session handshake: the protocol version it
// speaks, the walk's starting position in the local map frame (the
// server resets the session's fresh framework there), and an optional
// client identifier surfaced in the server's per-session stats.
type Hello struct {
	Version  byte
	StartX   float64
	StartY   float64
	ClientID string
}

// EncodeHello packs a hello frame: [version][float32 startX]
// [float32 startY][uint8 idLen][clientID].
func EncodeHello(h *Hello) []byte {
	id := h.ClientID
	if len(id) > 255 {
		id = id[:255]
	}
	out := make([]byte, 0, 1+8+1+len(id))
	out = append(out, h.Version)
	var f [4]byte
	binary.BigEndian.PutUint32(f[:], math.Float32bits(float32(h.StartX)))
	out = append(out, f[:]...)
	binary.BigEndian.PutUint32(f[:], math.Float32bits(float32(h.StartY)))
	out = append(out, f[:]...)
	out = append(out, byte(len(id)))
	out = append(out, id...)
	return out
}

// DecodeHello unpacks a hello frame.
func DecodeHello(b []byte) (*Hello, error) {
	if len(b) < 10 {
		return nil, fmt.Errorf("%w: short hello", ErrProtocol)
	}
	h := &Hello{Version: b[0]}
	h.StartX = float64(math.Float32frombits(binary.BigEndian.Uint32(b[1:])))
	h.StartY = float64(math.Float32frombits(binary.BigEndian.Uint32(b[5:])))
	n := int(b[9])
	if len(b) < 10+n {
		return nil, fmt.Errorf("%w: truncated hello", ErrProtocol)
	}
	h.ClientID = string(b[10 : 10+n])
	return h, nil
}

// Welcome is the server's handshake reply. OK=false means the session
// was rejected (e.g. the server is at its session limit); Reason then
// explains why and the server closes the connection.
type Welcome struct {
	Version   byte
	OK        bool
	SessionID uint32
	Reason    string
	// Resumed (v4) reports that this handshake re-attached a detached
	// session: the server kept the walk's framework state, so the
	// client should re-send any epoch whose result it never received.
	Resumed bool
}

// EncodeWelcome packs a welcome frame: [version][ok][uint32 session]
// [uint8 reasonLen][reason][resumed]. The trailing resumed byte is new
// in v4; pre-v4 decoders ignore trailing bytes, so the frame stays
// backward compatible.
func EncodeWelcome(w *Welcome) []byte {
	reason := w.Reason
	if len(reason) > 255 {
		reason = reason[:255]
	}
	out := make([]byte, 0, 1+1+4+1+len(reason)+1)
	out = append(out, w.Version)
	if w.OK {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	var s [4]byte
	binary.BigEndian.PutUint32(s[:], w.SessionID)
	out = append(out, s[:]...)
	out = append(out, byte(len(reason)))
	out = append(out, reason...)
	if w.Resumed {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// DecodeWelcome unpacks a welcome frame (with or without the v4
// trailing resumed byte).
func DecodeWelcome(b []byte) (*Welcome, error) {
	if len(b) < 7 {
		return nil, fmt.Errorf("%w: short welcome", ErrProtocol)
	}
	w := &Welcome{Version: b[0], OK: b[1] == 1}
	w.SessionID = binary.BigEndian.Uint32(b[2:])
	n := int(b[6])
	if len(b) < 7+n {
		return nil, fmt.Errorf("%w: truncated welcome", ErrProtocol)
	}
	w.Reason = string(b[7 : 7+n])
	if len(b) > 7+n {
		w.Resumed = b[7+n] == 1
	}
	return w, nil
}

// Result is the server's reply for one epoch.
type Result struct {
	X, Y     float64 // fused position (UniLoc2)
	BestX    float64 // UniLoc1 position
	BestY    float64
	Selected string // UniLoc1's selected scheme name
	Env      byte   // 1 indoor, 2 outdoor
	OK       bool   // at least one scheme was available this epoch
}

// EncodeResult packs a result frame.
func EncodeResult(r *Result) []byte {
	out := make([]byte, 0, 16+2+len(r.Selected)+1)
	var f [4]byte
	for _, v := range []float64{r.X, r.Y, r.BestX, r.BestY} {
		binary.BigEndian.PutUint32(f[:], math.Float32bits(float32(v)))
		out = append(out, f[:]...)
	}
	out = append(out, r.Env)
	if r.OK {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = append(out, byte(len(r.Selected)))
	out = append(out, r.Selected...)
	return out
}

// DecodeResult unpacks a result frame.
func DecodeResult(b []byte) (*Result, error) {
	if len(b) < 19 {
		return nil, fmt.Errorf("%w: short result", ErrProtocol)
	}
	r := &Result{}
	vals := make([]float64, 4)
	for i := range vals {
		vals[i] = float64(math.Float32frombits(binary.BigEndian.Uint32(b[i*4:])))
	}
	r.X, r.Y, r.BestX, r.BestY = vals[0], vals[1], vals[2], vals[3]
	r.Env = b[16]
	r.OK = b[17] == 1
	n := int(b[18])
	if len(b) < 19+n {
		return nil, fmt.Errorf("%w: truncated result", ErrProtocol)
	}
	r.Selected = string(b[19 : 19+n])
	return r, nil
}
