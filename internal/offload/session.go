package offload

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/sharedcompute"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// ErrServerFull reports that the server refused a new session because
// it is at its configured session limit.
var ErrServerFull = errors.New("offload: server full")

// Session is one client's private slice of the server: its own
// framework (schemes, particle filters, IODetector, gating state) plus
// bookkeeping. The paper's workstation likewise hosts the
// particle-filter state per user (§IV-C).
type Session struct {
	ID       uint32
	ClientID string

	fw *core.Framework

	evicted atomic.Bool

	// Owned by the attached serving goroutine; a detach/resume cycle
	// hands them to the next goroutine through the manager's lock.
	proto   byte        // negotiated protocol version
	replay  replayCache // v4: bounded per-seq result cache
	lastSeq uint32      // v4: newest answered epoch sequence number

	// Span-tracing state (nil/empty when the server has no tracer).
	// spans is the framework-observer bridge that turns each epoch's
	// telemetry trace into step/scheme spans; spanLabel names this
	// session on every span and pprof label.
	spans     *trace.EpochSpans
	spanLabel string

	mu         sync.Mutex
	conn       net.Conn // nil while detached
	lastActive time.Time
	epochs     int64
	latency    time.Duration
	lat        *telemetry.Histogram // per-session step-latency distribution

	// pins holds this session's shared-compute entry per map store
	// (nil when shared compute is off; nil again after Close releases
	// them). Guarded by mu; see SessionManager.RepinShared.
	pins map[byte]*sharedcompute.Entry
}

// touch records activity and the latency of one served epoch.
func (s *Session) touch(now time.Time, d time.Duration) {
	s.mu.Lock()
	s.lastActive = now
	s.epochs++
	s.latency += d
	s.mu.Unlock()
	s.lat.ObserveDuration(d)
}

// SessionStat is one session's row in a Stats snapshot.
type SessionStat struct {
	ID         uint32
	ClientID   string
	Epochs     int64
	AvgLatency time.Duration // mean framework step time per epoch
	P50Latency time.Duration // median step time (per-session histogram)
	P95Latency time.Duration // 95th-percentile step time
	Idle       time.Duration // time since the last served epoch
}

// Stats is a point-in-time snapshot of a SessionManager's counters.
type Stats struct {
	Opened   int64 // sessions accepted since start
	Closed   int64 // sessions ended (including evictions)
	Rejected int64 // hellos refused at the session limit
	Evicted  int64 // sessions closed by the idle reaper
	Active   int   // sessions live right now

	EpochsServed    int64         // epochs across all sessions, ever
	EpochLatencyAvg time.Duration // mean framework step time per epoch

	// Failure-containment counters (see internal/faultinject and
	// core.Health): deadline evictions of stalled clients, panics
	// recovered inside session frameworks, and estimates quarantined
	// for non-finite output.
	DeadlineTimeouts     int64
	SchemePanics         int64
	QuarantinedEstimates int64

	// AcceptErrors counts transient listener Accept failures (EMFILE,
	// ECONNABORTED, ...) retried with backoff; Drained counts
	// connections closed by a graceful drain (Server.Drain).
	AcceptErrors int64
	Drained      int64

	// StepWorkers is the per-framework scheme-execution worker count
	// sessions are opened with (<= 1: sequential).
	StepWorkers int

	// Protocol v4 resume counters: sessions parked after a transport
	// error, re-handshakes re-attached to a parked session, duplicate
	// epochs answered from the per-seq result cache without re-stepping
	// (each replay would otherwise have double-advanced PDR/HMM state),
	// and replay-cache entries evicted at the per-session bound.
	Detached        int64
	Resumed         int64
	ReplayedEpochs  int64
	ReplayEvictions int64

	// Cross-node failover counters: session states injected from a
	// peer's handoff blob (each one is a walk continued on this node
	// after its origin died), and injections refused (bad blob,
	// factory/restore failure, session limit).
	Injected       int64
	InjectFailures int64

	// Batch scheduler counters (BatchTick > 0): batches executed,
	// epochs stepped through batches, and shared distance-cache
	// effectiveness across all batched schemes.
	Batches         int64
	BatchedEpochs   int64
	DistCacheHits   int64
	DistCacheMisses int64

	// Batch shape quantiles, from always-on internal histograms (they
	// exist with or without a metrics registry, so Stats and /metrics
	// agree): sessions stepped per tick, and distinct pinned map
	// snapshots ("groups") whose columns one tick precomputed. Zero
	// until the first batch.
	BatchSizeP50   float64
	BatchSizeP95   float64
	BatchGroupsP50 float64
	BatchGroupsP95 float64

	// Shared-compute cache counters (ServerConfig.SharedCompute):
	// per-cell likelihood lookups served from vs missed by the shared
	// snapshot rows, rows prewarmed by the batch scheduler's fused
	// kernel, HMM tracker rebuilds served from shared state, entries
	// built/evicted over the server's lifetime, entries resident right
	// now, and the newest resident snapshot version per map store.
	SharedLikHits    int64
	SharedLikMisses  int64
	SharedRowsWarmed int64
	SharedTrackers   int64
	SharedBuilt      int64
	SharedEvicted    int64
	SharedResident   int
	SharedVersions   map[string]uint64

	Sessions []SessionStat // live sessions, per-session detail
}

// SessionManager owns the per-connection frameworks of a multi-user
// offload server: it builds one fresh framework per session from the
// factory, tracks live sessions by ID, enforces the session limit, and
// evicts sessions whose clients have gone quiet.
type SessionManager struct {
	factory     core.FrameworkFactory
	maxSessions int           // 0 = unlimited
	idleTimeout time.Duration // 0 = never evict
	stepWorkers int           // <= 1: sequential scheme execution
	now         func() time.Time

	mu       sync.Mutex
	sessions map[uint32]*Session
	detached map[string]*Session // v4 sessions parked for resume, by client ID
	nextID   uint32

	opened    atomic.Int64
	closed    atomic.Int64
	rejected  atomic.Int64
	evicted   atomic.Int64
	epochs    atomic.Int64
	latency   atomic.Int64 // total step time, nanoseconds
	deadlines atomic.Int64 // sessions evicted at the epoch deadline
	acceptErr atomic.Int64 // transient Accept failures, retried
	drained   atomic.Int64 // connections closed by a graceful drain

	detachedN atomic.Int64 // sessions parked for resume
	resumed   atomic.Int64 // re-handshakes re-attached to a parked session
	replayed  atomic.Int64 // duplicate epochs answered from the seq cache
	replayEv  atomic.Int64 // replay-cache entries evicted at the bound
	injected  atomic.Int64 // sessions injected from a peer handoff blob
	injectErr atomic.Int64 // handoff injections refused

	// Per-session replay cache bounds (0: package defaults).
	replayEntries int
	replayBytes   int

	batches       atomic.Int64 // batch ticks executed
	batchedEpochs atomic.Int64 // epochs stepped through batches
	cacheHits     atomic.Int64 // shared distance-cache hits
	cacheMisses   atomic.Int64 // shared distance-cache misses

	met    serverMetrics
	health *core.Health // shared across session frameworks; counters are atomic

	// Cross-session shared-compute cache (nil = off) and the stores
	// whose snapshots sessions pin entries for. Set before serving.
	shared       *sharedcompute.Cache
	sharedStores map[byte]*mapstore.Store

	tracer      *trace.Tracer // nil = tracing off
	pprofLabels bool          // label serving goroutines and scheme work

	// Always-on batch-shape histograms backing the Stats quantiles
	// (registry-independent; the registry's twins are in serverMetrics).
	batchSizeH   *telemetry.Histogram
	batchGroupsH *telemetry.Histogram
}

// NewSessionManager builds a manager over a framework factory. The
// registry receives the server's RED metrics (sessions, epochs, frame
// bytes, step-latency histogram); nil disables exposition at no cost
// to the serving path.
func NewSessionManager(factory core.FrameworkFactory, maxSessions int, idleTimeout time.Duration, reg *telemetry.Registry) (*SessionManager, error) {
	if factory == nil {
		return nil, fmt.Errorf("offload: session manager needs a framework factory")
	}
	return &SessionManager{
		factory:      factory,
		maxSessions:  maxSessions,
		idleTimeout:  idleTimeout,
		now:          time.Now,
		sessions:     make(map[uint32]*Session),
		detached:     make(map[string]*Session),
		met:          newServerMetrics(reg),
		health:       core.NewHealth(reg),
		batchSizeH:   telemetry.NewHistogram(batchSizeBuckets()),
		batchGroupsH: telemetry.NewHistogram(batchGroupBuckets()),
	}, nil
}

// SetTracer attaches a span tracer: every subsequently opened session
// gets an EpochSpans observer bridging its framework's epoch traces
// into step/scheme spans. Call before serving; nil keeps tracing off
// (the frameworks then run their zero-alloc unobserved path).
func (m *SessionManager) SetTracer(t *trace.Tracer) { m.tracer = t }

// Tracer returns the attached span tracer (nil = tracing off).
func (m *SessionManager) Tracer() *trace.Tracer { return m.tracer }

// SetPprofLabels enables runtime/pprof labels on serving goroutines
// (session), batch workers (batch tick), and per-scheme work, applied
// to subsequently opened sessions. Call before serving.
func (m *SessionManager) SetPprofLabels(on bool) { m.pprofLabels = on }

// noteDeadlineTimeout accounts one session evicted at its epoch
// deadline.
func (m *SessionManager) noteDeadlineTimeout() {
	m.deadlines.Add(1)
	m.met.deadlineTimeouts.Inc()
}

// noteAcceptError accounts one transient listener Accept failure.
func (m *SessionManager) noteAcceptError() {
	m.acceptErr.Add(1)
	m.met.acceptErrors.Inc()
}

// noteDrained accounts one connection closed by a graceful drain.
func (m *SessionManager) noteDrained() {
	m.drained.Add(1)
	m.met.sessionsDrained.Inc()
}

// SetSharedCompute attaches the cross-session shared-compute cache:
// every subsequently opened session's framework reads per-snapshot
// likelihood rows and HMM state through it, and the manager pins one
// entry per store per session (Open retains, RepinShared migrates pins
// across compaction swaps, Close releases — the last release evicts
// the entry). Call before serving; nil keeps shared compute off.
func (m *SessionManager) SetSharedCompute(c *sharedcompute.Cache, stores map[byte]*mapstore.Store) {
	m.shared = c
	m.sharedStores = stores
}

// SharedCompute returns the attached shared-compute cache (nil = off).
func (m *SessionManager) SharedCompute() *sharedcompute.Cache { return m.shared }

// RepinShared refreshes a session's shared-compute pins to the stores'
// current snapshots. Called at epoch boundaries (per epoch unbatched,
// per batch tick batched) so a compaction swap migrates every
// session's pin — and eventually evicts the superseded entry — without
// any lock on the lock-free read path. A session whose pins were
// already released by Close is left alone. No-op when shared compute
// is off.
func (m *SessionManager) RepinShared(s *Session) {
	if m.shared == nil {
		return
	}
	for id, st := range m.sharedStores {
		snap := st.Snapshot()
		s.mu.Lock()
		if s.pins == nil {
			s.mu.Unlock()
			return
		}
		old := s.pins[id]
		s.mu.Unlock()
		if old != nil && old.Snapshot() == snap {
			continue
		}
		e := m.shared.Retain(snap, st.Name())
		s.mu.Lock()
		if s.pins == nil {
			// Close raced us between the check and the retain: undo.
			s.mu.Unlock()
			m.shared.Release(e)
			return
		}
		old = s.pins[id]
		s.pins[id] = e
		s.mu.Unlock()
		m.shared.Release(old)
	}
}

// releasePins drops every shared-compute pin a session holds and marks
// it past repinning.
func (m *SessionManager) releasePins(s *Session) {
	if m.shared == nil {
		return
	}
	s.mu.Lock()
	pins := s.pins
	s.pins = nil
	s.mu.Unlock()
	for _, e := range pins {
		m.shared.Release(e)
	}
}

// SetStepWorkers sets the per-framework scheme-execution worker count
// applied to every subsequently opened session (core.WithParallel
// semantics; <= 1 keeps sequential execution). Call before serving.
func (m *SessionManager) SetStepWorkers(workers int) { m.stepWorkers = workers }

// StepWorkers reports the configured per-framework worker count.
func (m *SessionManager) StepWorkers() int { return m.stepWorkers }

// Open admits a new session: it enforces the session limit, builds a
// fresh framework from the factory, and resets it at the client's
// starting position. It returns ErrServerFull at the limit.
func (m *SessionManager) Open(clientID string, start geo.Point, conn net.Conn) (*Session, error) {
	m.mu.Lock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		m.mu.Unlock()
		m.rejected.Add(1)
		m.met.sessionsRejected.Inc()
		return nil, ErrServerFull
	}
	m.nextID++
	id := m.nextID
	m.mu.Unlock()

	// Build outside the lock: training-grade factories may be slow and
	// must not serialize unrelated sessions.
	fw, err := m.factory()
	if err != nil {
		return nil, fmt.Errorf("offload: framework factory: %w", err)
	}
	if m.stepWorkers > 1 {
		// Server-wide parallelism applies uniformly: every session's
		// framework fans its schemes out to its own persistent pool.
		fw.SetParallel(m.stepWorkers)
	}
	// Failure containment reports into the server's shared counters: a
	// panicking or NaN-emitting scheme in any session shows up in
	// scheme_panics_total / quarantined_estimates_total.
	fw.SetHealth(m.health)
	// Pin shared-compute entries before the first Reset so the initial
	// tracker build already runs through the shared path.
	var pins map[byte]*sharedcompute.Entry
	if m.shared != nil {
		fw.SetSharedCompute(m.shared)
		pins = make(map[byte]*sharedcompute.Entry, len(m.sharedStores))
		for mapID, st := range m.sharedStores {
			if e := m.shared.Retain(st.Snapshot(), st.Name()); e != nil {
				pins[mapID] = e
			}
		}
	}
	fw.Reset(start)

	s := &Session{
		ID: id, ClientID: clientID, fw: fw, conn: conn,
		lastActive: m.now(),
		lat:        telemetry.NewHistogram(telemetry.DefBuckets()),
		pins:       pins,
	}
	s.replay.maxEntries, s.replay.maxBytes = m.replayEntries, m.replayBytes
	s.spanLabel = clientID
	if s.spanLabel == "" {
		s.spanLabel = fmt.Sprintf("session-%d", id)
	}
	if m.tracer.Enabled() {
		// Bridge the framework's epoch traces into spans, composing with
		// any observer the factory already attached (e.g. a JSONL epoch
		// writer). Without a tracer no observer is added, preserving the
		// framework's zero-alloc unobserved path.
		s.spans = trace.NewEpochSpans(m.tracer, s.spanLabel)
		if prev := fw.Observer(); prev != nil {
			fw.SetObserver(telemetry.MultiObserver(prev, s.spans))
		} else {
			fw.SetObserver(s.spans)
		}
	}
	if m.pprofLabels {
		fw.SetPprofLabels(true)
	}
	m.mu.Lock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		// Lost the race against concurrent opens while building.
		m.mu.Unlock()
		m.rejected.Add(1)
		m.met.sessionsRejected.Inc()
		m.releasePins(s)
		return nil, ErrServerFull
	}
	m.sessions[id] = s
	active := len(m.sessions)
	m.mu.Unlock()
	m.opened.Add(1)
	m.met.sessionsOpened.Inc()
	m.met.sessionsActive.Set(float64(active))
	return s, nil
}

// Detach parks a live v4 session for seq-numbered resume after a
// transport error: the framework (with its PDR/HMM state) and the
// per-seq result cache survive, the dead connection is dropped. A
// re-handshake with the same client ID re-attaches via Resume; until
// then the session stays in the live set and remains subject to idle
// eviction. No-op when the session is no longer live.
func (m *SessionManager) Detach(s *Session) {
	m.mu.Lock()
	if _, live := m.sessions[s.ID]; !live {
		m.mu.Unlock()
		return
	}
	// At most one parked session per client ID: a newer detach under
	// the same ID supersedes (and closes) the older one.
	old := m.detached[s.ClientID]
	m.detached[s.ClientID] = s
	m.mu.Unlock()
	s.mu.Lock()
	s.conn = nil
	s.mu.Unlock()
	if old != nil && old != s {
		m.Close(old)
	}
	m.detachedN.Add(1)
	m.met.sessionsDetached.Inc()
}

// Resume re-attaches a previously detached session to a fresh
// connection, preserving its framework state exactly — no Reset, so a
// resumed walk continues from the state the last served epoch left.
// Only already-detached sessions match: a re-handshake racing the old
// serving goroutine's exit gets a fresh session instead (the stale one
// idles out). Returns nil when there is nothing to resume.
func (m *SessionManager) Resume(clientID string, conn net.Conn) *Session {
	if clientID == "" {
		return nil
	}
	m.mu.Lock()
	s := m.detached[clientID]
	if s == nil || s.evicted.Load() {
		m.mu.Unlock()
		return nil
	}
	delete(m.detached, clientID)
	m.mu.Unlock()
	s.mu.Lock()
	s.conn = conn
	s.lastActive = m.now()
	s.mu.Unlock()
	m.resumed.Add(1)
	m.met.sessionsResumed.Inc()
	return s
}

// noteReplay accounts one duplicate epoch answered from a session's
// per-seq result cache instead of being re-stepped.
func (m *SessionManager) noteReplay() {
	m.replayed.Add(1)
	m.met.epochsReplayed.Inc()
}

// noteReplayEvictions accounts replay-cache entries evicted at the
// per-session bound.
func (m *SessionManager) noteReplayEvictions(n int) {
	if n <= 0 {
		return
	}
	m.replayEv.Add(int64(n))
	m.met.replayEvictions.Add(int64(n))
}

// SetReplayCaps bounds every subsequently opened (or injected)
// session's v4 replay cache: at most entries cached results, at most
// bytes of encoded payload, oldest evicted first. Zero values keep the
// package defaults. Call before serving.
func (m *SessionManager) SetReplayCaps(entries, bytes int) {
	m.replayEntries, m.replayBytes = entries, bytes
}

// ExportState serializes a session for cross-node handoff: identity,
// protocol, the replay cache, the given map-store versions, and the
// framework snapshot. Must be called from the goroutine driving the
// session's epochs (it reads the same state Step mutates) — the server
// exports at epoch boundaries.
func (m *SessionManager) ExportState(s *Session, mapVers map[byte]uint64) ([]byte, error) {
	fw, err := s.fw.Snapshot()
	if err != nil {
		return nil, err
	}
	st := &SessionState{
		ClientID: s.ClientID,
		Proto:    s.proto,
		Seq:      s.lastSeq,
		Replay:   make([]ReplayEntry, 0, len(s.replay.entries)),
		MapVers:  mapVers,
		FW:       fw,
	}
	for _, e := range s.replay.entries {
		st.Replay = append(st.Replay, ReplayEntry{Seq: e.seq, Payload: e.payload})
	}
	return EncodeSessionState(st), nil
}

// Inject materializes a session from a peer's handoff blob and parks
// it detached, exactly as if the walk had been served here and its
// connection had dropped: a v4 re-handshake under the blob's client ID
// then resumes it via Resume, replay cache intact, framework state
// bit-identical to the origin's last export. Respects the session
// limit. The caller typically follows up with Resume immediately.
func (m *SessionManager) Inject(blob []byte) error {
	err := m.inject(blob)
	if err != nil {
		m.injectErr.Add(1)
		m.met.injectFailures.Inc()
	}
	return err
}

func (m *SessionManager) inject(blob []byte) error {
	st, err := DecodeSessionState(blob)
	if err != nil {
		return err
	}
	if st.ClientID == "" {
		return fmt.Errorf("offload: session state carries no client ID")
	}
	m.mu.Lock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		m.mu.Unlock()
		return ErrServerFull
	}
	m.nextID++
	id := m.nextID
	m.mu.Unlock()

	// Build and restore outside the lock, mirroring Open.
	fw, err := m.factory()
	if err != nil {
		return fmt.Errorf("offload: framework factory: %w", err)
	}
	if m.stepWorkers > 1 {
		fw.SetParallel(m.stepWorkers)
	}
	fw.SetHealth(m.health)
	var pins map[byte]*sharedcompute.Entry
	if m.shared != nil {
		fw.SetSharedCompute(m.shared)
		pins = make(map[byte]*sharedcompute.Entry, len(m.sharedStores))
		for mapID, stg := range m.sharedStores {
			if e := m.shared.Retain(stg.Snapshot(), stg.Name()); e != nil {
				pins[mapID] = e
			}
		}
	}
	s := &Session{
		ID: id, ClientID: st.ClientID, fw: fw,
		lastActive: m.now(),
		lat:        telemetry.NewHistogram(telemetry.DefBuckets()),
		pins:       pins,
	}
	s.spanLabel = st.ClientID
	if err := fw.Restore(st.FW); err != nil {
		fw.Close()
		m.releasePins(s)
		return fmt.Errorf("offload: restore handoff state: %w", err)
	}
	s.proto = st.Proto
	s.lastSeq = st.Seq
	s.replay.maxEntries, s.replay.maxBytes = m.replayEntries, m.replayBytes
	for _, e := range st.Replay {
		s.replay.put(e.Seq, e.Payload)
	}
	if m.tracer.Enabled() {
		s.spans = trace.NewEpochSpans(m.tracer, s.spanLabel)
		if prev := fw.Observer(); prev != nil {
			fw.SetObserver(telemetry.MultiObserver(prev, s.spans))
		} else {
			fw.SetObserver(s.spans)
		}
	}
	if m.pprofLabels {
		fw.SetPprofLabels(true)
	}

	m.mu.Lock()
	if m.maxSessions > 0 && len(m.sessions) >= m.maxSessions {
		m.mu.Unlock()
		fw.Close()
		m.releasePins(s)
		return ErrServerFull
	}
	m.sessions[id] = s
	// Park detached: at most one per client ID, newest state wins.
	old := m.detached[st.ClientID]
	m.detached[st.ClientID] = s
	active := len(m.sessions)
	m.mu.Unlock()
	if old != nil && old != s {
		m.Close(old)
	}
	m.injected.Add(1)
	m.met.sessionsInjected.Inc()
	m.met.sessionsActive.Set(float64(active))
	return nil
}

// noteBatch accounts one executed batch: its size, how many distinct
// pinned map snapshots ("groups") its precompute pass covered, and the
// effectiveness of its shared distance cache.
func (m *SessionManager) noteBatch(size, groups int, cache *fingerprint.DistCache) {
	m.batches.Add(1)
	m.batchedEpochs.Add(int64(size))
	m.met.batchTicks.Inc()
	m.met.batchSize.Observe(float64(size))
	m.met.batchGroups.Observe(float64(groups))
	m.batchSizeH.Observe(float64(size))
	m.batchGroupsH.Observe(float64(groups))
	m.mu.Lock()
	active := len(m.sessions)
	m.mu.Unlock()
	if active > 0 {
		m.met.batchOccupancy.Set(float64(size) / float64(active))
	}
	if cache != nil {
		m.cacheHits.Add(cache.Hits())
		m.cacheMisses.Add(cache.Misses())
		m.met.distCacheHits.Add(cache.Hits())
		m.met.distCacheMisses.Add(cache.Misses())
		m.met.distCacheCols.Add(int64(cache.Len()))
	}
}

// Close removes a session from the live set and stops its framework's
// worker pool, so scheme-execution goroutines never outlive their
// session. Idempotent.
func (m *SessionManager) Close(s *Session) {
	m.mu.Lock()
	_, live := m.sessions[s.ID]
	delete(m.sessions, s.ID)
	if m.detached[s.ClientID] == s {
		delete(m.detached, s.ClientID)
	}
	active := len(m.sessions)
	m.mu.Unlock()
	if live {
		s.fw.Close()
		m.releasePins(s)
		m.closed.Add(1)
		m.met.sessionsClosed.Inc()
		m.met.sessionsActive.Set(float64(active))
	}
}

// RecordEpoch accounts one served epoch and its framework step time.
func (m *SessionManager) RecordEpoch(s *Session, d time.Duration) {
	s.touch(m.now(), d)
	m.epochs.Add(1)
	m.latency.Add(int64(d))
	m.met.epochsServed.Inc()
	m.met.stepLatency.ObserveDuration(d)
}

// EvictIdle closes the connections of sessions idle longer than the
// configured timeout and returns how many it evicted. The serving
// goroutine notices the closed connection, exits cleanly, and removes
// the session. A zero idle timeout disables eviction.
func (m *SessionManager) EvictIdle() int {
	if m.idleTimeout <= 0 {
		return 0
	}
	cutoff := m.now().Add(-m.idleTimeout)
	var victims []*Session
	m.mu.Lock()
	for _, s := range m.sessions {
		s.mu.Lock()
		idle := s.lastActive.Before(cutoff)
		s.mu.Unlock()
		if idle {
			victims = append(victims, s)
		}
	}
	m.mu.Unlock()
	for _, s := range victims {
		if s.evicted.CompareAndSwap(false, true) {
			m.evicted.Add(1)
			m.met.sessionsEvicted.Inc()
			s.mu.Lock()
			conn := s.conn
			s.mu.Unlock()
			if conn != nil {
				// The serving goroutine notices the closed connection,
				// exits, and removes the session.
				_ = conn.Close()
			} else {
				// A detached session has no serving goroutine to do the
				// removal: close it directly so parked frameworks cannot
				// leak past the idle timeout.
				m.Close(s)
			}
		}
	}
	return len(victims)
}

// liveConns counts sessions currently holding a connection (detached
// sessions hold none). Drain polls this to detect when every serving
// goroutine has reached an epoch boundary and exited.
func (m *SessionManager) liveConns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, s := range m.sessions {
		s.mu.Lock()
		if s.conn != nil {
			n++
		}
		s.mu.Unlock()
	}
	return n
}

// DisconnectAll force-closes the connection of every live session and
// returns how many it closed. Sessions are marked evicted first, so
// their serving goroutines exit quietly (no detach-for-resume: the
// process is going away). Detached sessions, which have no connection,
// are closed outright. Used by Server.Drain once the grace period runs
// out.
func (m *SessionManager) DisconnectAll() int {
	var victims []*Session
	m.mu.Lock()
	for _, s := range m.sessions {
		victims = append(victims, s)
	}
	m.mu.Unlock()
	n := 0
	for _, s := range victims {
		if !s.evicted.CompareAndSwap(false, true) {
			continue
		}
		n++
		m.noteDrained()
		s.mu.Lock()
		conn := s.conn
		s.mu.Unlock()
		if conn != nil {
			_ = conn.Close()
		} else {
			m.Close(s)
		}
	}
	return n
}

// Stats returns a snapshot of the manager's counters and live
// sessions.
func (m *SessionManager) Stats() Stats {
	st := Stats{
		Opened:               m.opened.Load(),
		Closed:               m.closed.Load(),
		Rejected:             m.rejected.Load(),
		Evicted:              m.evicted.Load(),
		EpochsServed:         m.epochs.Load(),
		StepWorkers:          m.stepWorkers,
		DeadlineTimeouts:     m.deadlines.Load(),
		SchemePanics:         m.health.SchemePanics.Value(),
		QuarantinedEstimates: m.health.Quarantined.Value(),
		AcceptErrors:         m.acceptErr.Load(),
		Drained:              m.drained.Load(),
		Detached:             m.detachedN.Load(),
		Resumed:              m.resumed.Load(),
		ReplayedEpochs:       m.replayed.Load(),
		ReplayEvictions:      m.replayEv.Load(),
		Injected:             m.injected.Load(),
		InjectFailures:       m.injectErr.Load(),
		Batches:              m.batches.Load(),
		BatchedEpochs:        m.batchedEpochs.Load(),
		DistCacheHits:        m.cacheHits.Load(),
		DistCacheMisses:      m.cacheMisses.Load(),
	}
	if m.shared != nil {
		cs := m.shared.Stats()
		st.SharedLikHits = cs.LikHits
		st.SharedLikMisses = cs.LikMisses
		st.SharedRowsWarmed = cs.RowsWarmed
		st.SharedTrackers = cs.Trackers
		st.SharedBuilt = cs.Built
		st.SharedEvicted = cs.Evicted
		st.SharedResident = cs.Resident
		st.SharedVersions = cs.ResidentVersions
	}
	if m.batchSizeH.Count() > 0 {
		st.BatchSizeP50 = m.batchSizeH.Quantile(0.5)
		st.BatchSizeP95 = m.batchSizeH.Quantile(0.95)
	}
	if m.batchGroupsH.Count() > 0 {
		st.BatchGroupsP50 = m.batchGroupsH.Quantile(0.5)
		st.BatchGroupsP95 = m.batchGroupsH.Quantile(0.95)
	}
	if st.EpochsServed > 0 {
		st.EpochLatencyAvg = time.Duration(m.latency.Load() / st.EpochsServed)
	}
	now := m.now()
	m.mu.Lock()
	st.Active = len(m.sessions)
	st.Sessions = make([]SessionStat, 0, len(m.sessions))
	for _, s := range m.sessions {
		s.mu.Lock()
		row := SessionStat{ID: s.ID, ClientID: s.ClientID, Epochs: s.epochs, Idle: now.Sub(s.lastActive)}
		if s.epochs > 0 {
			row.AvgLatency = s.latency / time.Duration(s.epochs)
		}
		s.mu.Unlock()
		if s.lat.Count() > 0 {
			row.P50Latency = time.Duration(s.lat.Quantile(0.5) * float64(time.Second))
			row.P95Latency = time.Duration(s.lat.Quantile(0.95) * float64(time.Second))
		}
		st.Sessions = append(st.Sessions, row)
	}
	m.mu.Unlock()
	return st
}
