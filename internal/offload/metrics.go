package offload

import "repro/internal/telemetry"

// serverMetrics bundles the offload server's RED-style instruments:
// request rate (epochs served, frame bytes), errors (rejections,
// evictions, connection errors), and duration (framework step latency
// histogram). Built from a nil registry every instrument is nil, and
// nil instruments are no-ops — the uninstrumented server pays only a
// predictable nil check per update.
type serverMetrics struct {
	sessionsOpened   *telemetry.Counter
	sessionsClosed   *telemetry.Counter
	sessionsRejected *telemetry.Counter
	sessionsEvicted  *telemetry.Counter
	sessionsActive   *telemetry.Gauge
	epochsServed     *telemetry.Counter
	bytesIn          *telemetry.Counter
	bytesOut         *telemetry.Counter
	connErrors       *telemetry.Counter
	stepLatency      *telemetry.Histogram
	surveysIngested  *telemetry.Counter
	surveysDropped   *telemetry.Counter
	deadlineTimeouts *telemetry.Counter
	acceptErrors     *telemetry.Counter
	sessionsDrained  *telemetry.Counter

	// Batch scheduler instruments (BatchTick > 0).
	batchTicks      *telemetry.Counter
	batchSize       *telemetry.Histogram
	batchGroups     *telemetry.Histogram
	batchOccupancy  *telemetry.Gauge
	distCacheHits   *telemetry.Counter
	distCacheMisses *telemetry.Counter
	distCacheCols   *telemetry.Counter

	// Protocol v4 resume instruments.
	sessionsDetached *telemetry.Counter
	sessionsResumed  *telemetry.Counter
	epochsReplayed   *telemetry.Counter
	replayEvictions  *telemetry.Counter

	// Cross-node failover instruments.
	sessionsInjected *telemetry.Counter
	injectFailures   *telemetry.Counter
}

// batchSizeBuckets cover 1..maxBatch sessions per tick.
func batchSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}
}

// batchGroupBuckets cover the distinct pinned map snapshots one tick
// precomputes against — at most the configured store count, so the
// range is tiny (0 = nothing shareable that tick).
func batchGroupBuckets() []float64 {
	return []float64{0, 1, 2, 3, 4}
}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	return serverMetrics{
		sessionsOpened:   reg.Counter("uniloc_sessions_opened_total", "sessions accepted since start"),
		sessionsClosed:   reg.Counter("uniloc_sessions_closed_total", "sessions ended, including evictions"),
		sessionsRejected: reg.Counter("uniloc_sessions_rejected_total", "hellos refused at the session limit"),
		sessionsEvicted:  reg.Counter("uniloc_sessions_evicted_total", "sessions closed by the idle reaper"),
		sessionsActive:   reg.Gauge("uniloc_sessions_active", "sessions live right now"),
		epochsServed:     reg.Counter("uniloc_epochs_served_total", "sensing epochs processed across all sessions"),
		bytesIn:          reg.Counter("uniloc_frame_bytes_total", "protocol frame bytes", "dir", "in"),
		bytesOut:         reg.Counter("uniloc_frame_bytes_total", "protocol frame bytes", "dir", "out"),
		connErrors:       reg.Counter("uniloc_conn_errors_total", "connections that ended with a transport or protocol error"),
		stepLatency:      reg.Histogram("uniloc_step_seconds", "Framework.Step latency per served epoch", telemetry.DefBuckets()),
		surveysIngested:  reg.Counter("uniloc_surveys_ingested_total", "crowdsourced survey points accepted into a shared map store"),
		surveysDropped:   reg.Counter("uniloc_surveys_dropped_total", "survey submissions rejected (unknown map, no store, or unusable vector)"),
		deadlineTimeouts: reg.Counter("deadline_timeouts_total", "protocol reads/writes that hit their deadline"),
		acceptErrors:     reg.Counter("accept_errors_total", "transient listener Accept failures retried with backoff"),
		sessionsDrained:  reg.Counter("uniloc_sessions_drained_total", "connections closed by a graceful drain"),

		batchTicks:      reg.Counter("uniloc_batch_ticks_total", "batches executed by the batch-per-tick scheduler"),
		batchSize:       reg.Histogram("uniloc_batch_size", "sessions stepped per batch tick", batchSizeBuckets()),
		batchGroups:     reg.Histogram("uniloc_batch_groups", "distinct pinned map snapshots precomputed per batch tick", batchGroupBuckets()),
		batchOccupancy:  reg.Gauge("uniloc_batch_occupancy", "last batch size over active sessions"),
		distCacheHits:   reg.Counter("uniloc_distcache_hits_total", "scheme distance columns served from the shared batch cache"),
		distCacheMisses: reg.Counter("uniloc_distcache_misses_total", "scheme distance lookups computed locally during a batch"),
		distCacheCols:   reg.Counter("uniloc_distcache_columns_total", "unique distance columns precomputed across batches"),

		sessionsDetached: reg.Counter("uniloc_sessions_detached_total", "v4 sessions parked for resume after a transport error"),
		sessionsResumed:  reg.Counter("uniloc_sessions_resumed_total", "v4 re-handshakes re-attached to a detached session"),
		epochsReplayed:   reg.Counter("resume_replays_total", "duplicate epochs answered from the per-seq result cache without re-stepping"),
		replayEvictions:  reg.Counter("uniloc_replay_evictions_total", "replay-cache entries evicted at the per-session bound"),

		sessionsInjected: reg.Counter("uniloc_sessions_injected_total", "sessions materialized from a peer's handoff blob (cross-node resumes)"),
		injectFailures:   reg.Counter("uniloc_inject_failures_total", "handoff injections refused (bad blob, restore failure, or session limit)"),
	}
}
