package offload

import "repro/internal/telemetry"

// serverMetrics bundles the offload server's RED-style instruments:
// request rate (epochs served, frame bytes), errors (rejections,
// evictions, connection errors), and duration (framework step latency
// histogram). Built from a nil registry every instrument is nil, and
// nil instruments are no-ops — the uninstrumented server pays only a
// predictable nil check per update.
type serverMetrics struct {
	sessionsOpened   *telemetry.Counter
	sessionsClosed   *telemetry.Counter
	sessionsRejected *telemetry.Counter
	sessionsEvicted  *telemetry.Counter
	sessionsActive   *telemetry.Gauge
	epochsServed     *telemetry.Counter
	bytesIn          *telemetry.Counter
	bytesOut         *telemetry.Counter
	connErrors       *telemetry.Counter
	stepLatency      *telemetry.Histogram
	surveysIngested  *telemetry.Counter
	surveysDropped   *telemetry.Counter
	deadlineTimeouts *telemetry.Counter
}

func newServerMetrics(reg *telemetry.Registry) serverMetrics {
	return serverMetrics{
		sessionsOpened:   reg.Counter("uniloc_sessions_opened_total", "sessions accepted since start"),
		sessionsClosed:   reg.Counter("uniloc_sessions_closed_total", "sessions ended, including evictions"),
		sessionsRejected: reg.Counter("uniloc_sessions_rejected_total", "hellos refused at the session limit"),
		sessionsEvicted:  reg.Counter("uniloc_sessions_evicted_total", "sessions closed by the idle reaper"),
		sessionsActive:   reg.Gauge("uniloc_sessions_active", "sessions live right now"),
		epochsServed:     reg.Counter("uniloc_epochs_served_total", "sensing epochs processed across all sessions"),
		bytesIn:          reg.Counter("uniloc_frame_bytes_total", "protocol frame bytes", "dir", "in"),
		bytesOut:         reg.Counter("uniloc_frame_bytes_total", "protocol frame bytes", "dir", "out"),
		connErrors:       reg.Counter("uniloc_conn_errors_total", "connections that ended with a transport or protocol error"),
		stepLatency:      reg.Histogram("uniloc_step_seconds", "Framework.Step latency per served epoch", telemetry.DefBuckets()),
		surveysIngested:  reg.Counter("uniloc_surveys_ingested_total", "crowdsourced survey points accepted into a shared map store"),
		surveysDropped:   reg.Counter("uniloc_surveys_dropped_total", "survey submissions rejected (unknown map, no store, or unusable vector)"),
		deadlineTimeouts: reg.Counter("deadline_timeouts_total", "protocol reads/writes that hit their deadline"),
	}
}
