package offload

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/mapstore"
	"repro/internal/rf"
	"repro/internal/sensing"
	"repro/internal/telemetry/trace"
)

// maxBatch bounds how many ready epochs one tick executes; a full
// batch fires immediately instead of waiting out the tick.
const maxBatch = 256

// stepRequest is one session's ready epoch, parked on the scheduler's
// queue until the tick fires. done is buffered so a batch worker never
// blocks handing the result back.
type stepRequest struct {
	sess *Session
	snap *sensing.Snapshot
	done chan stepResponse

	// Tracing: the serving goroutine's frame span, and the tracer
	// timestamp at submission. A batch worker turns the submit→execute
	// gap into a "server.queue" child of the frame span, so batch wait
	// is visible (and attributable) in every trace's critical path.
	parent trace.SpanContext
	enqNS  int64
}

// stepResponse carries one stepped epoch back to its serving
// goroutine, with the framework step duration measured inside the
// batch (queueing delay excluded — the latency histograms keep
// measuring compute, as they did per-connection).
type stepResponse struct {
	res core.StepResult
	dur time.Duration
}

// scheduler is the batch-per-tick execution engine (ISSUE 6 tentpole):
// it collects ready epochs from all sessions, pins the shared map
// snapshots once, precomputes the fingerprint-distance columns every
// batched scheme would otherwise compute per session (one columnar
// pass per unique observation via AppendDistancesBatch), then steps
// the sessions across a worker pool and fans the results back.
//
// Bit-identity invariant: grouping is by pinned snapshot *pointer*
// (fingerprint.DistCache keys on Reader identity). A snapshot version
// swap landing mid-batch makes later sessions pin the new snapshot,
// miss the cache, and compute locally — the exact floats unbatched
// execution would produce. Sessions are independent frameworks, so
// stepping them concurrently cannot reorder any per-session float
// operation.
type scheduler struct {
	tick    time.Duration
	workers int
	stores  map[byte]*mapstore.Store
	mgr     *SessionManager

	reqs chan *stepRequest
	quit chan struct{}
	wg   sync.WaitGroup

	ticks atomic.Int64 // batch ticks executed; labels spans and profiles

	mu     sync.RWMutex
	closed bool
}

// newScheduler starts the batching loop. workers <= 0 defaults to
// NumCPU; stores may be nil (batching then still amortizes scheduling
// and parallelizes sessions, without precomputed columns).
func newScheduler(tick time.Duration, workers int, stores map[byte]*mapstore.Store, mgr *SessionManager) *scheduler {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sc := &scheduler{
		tick:    tick,
		workers: workers,
		stores:  stores,
		mgr:     mgr,
		reqs:    make(chan *stepRequest, 4*maxBatch),
		quit:    make(chan struct{}),
	}
	sc.wg.Add(1)
	go sc.loop()
	return sc
}

// step submits one session's epoch and blocks until its batch has
// executed it. parent is the serving goroutine's frame span context
// (zero when tracing is off). After close the step runs inline (same
// floats, no batching) so late serving goroutines never strand.
func (sc *scheduler) step(sess *Session, snap *sensing.Snapshot, parent trace.SpanContext) (core.StepResult, time.Duration) {
	sc.mu.RLock()
	if sc.closed {
		sc.mu.RUnlock()
		sess.spans.SetBatch(trace.SpanContext{}, 0) // inline: no batch to link
		t0 := time.Now()
		res := sess.fw.Step(snap)
		return res, time.Since(t0)
	}
	req := &stepRequest{sess: sess, snap: snap, done: make(chan stepResponse, 1), parent: parent}
	if parent.Valid() {
		req.enqNS = sc.mgr.tracer.Now()
	}
	sc.reqs <- req
	sc.mu.RUnlock()
	resp := <-req.done
	return resp.res, resp.dur
}

// close stops the batching loop after it has answered everything
// already queued. Idempotent.
func (sc *scheduler) close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	sc.mu.Unlock()
	close(sc.quit)
	sc.wg.Wait()
}

// loop gathers requests into batches: the tick timer arms when the
// first request of a batch arrives, and the batch runs when it fires
// (or immediately at maxBatch). One loop goroutine runs batches
// serially, so a batch's cache teardown can never race the next
// batch's setup.
func (sc *scheduler) loop() {
	defer sc.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var batch []*stepRequest
	fire := func() {
		sc.runBatch(batch)
		batch = batch[:0]
	}
	for {
		select {
		case req := <-sc.reqs:
			if len(batch) == 0 {
				timer.Reset(sc.tick)
			}
			batch = append(batch, req)
			if len(batch) >= maxBatch {
				if !timer.Stop() {
					<-timer.C
				}
				fire()
			}
		case <-timer.C:
			fire()
		case <-sc.quit:
			// close() set closed under the lock before closing quit, and
			// every in-flight submitter sent while holding the read lock,
			// so the queue can no longer grow: drain it, answer the final
			// batch, exit.
			for {
				select {
				case req := <-sc.reqs:
					batch = append(batch, req)
					continue
				default:
				}
				break
			}
			if len(batch) > 0 {
				fire()
			}
			return
		}
	}
}

// runBatch executes one batch: precompute shared columns, install the
// cache on every batched framework, step sessions across the worker
// pool, record batch telemetry. With a tracer attached, the whole
// batch becomes one "batch.tick" root span, every stepped epoch's span
// tree links back to it (EpochSpans.SetBatch), and each request's
// submit→execute wait becomes a "server.queue" child of its frame
// span.
func (sc *scheduler) runBatch(batch []*stepRequest) {
	if len(batch) == 0 {
		return
	}
	tracer := sc.mgr.tracer
	tick := sc.ticks.Add(1)
	var tickSpan trace.Span
	if tracer.Enabled() {
		tickSpan = tracer.Start("batch.tick", trace.SpanContext{})
		// One tick aggregates epochs from many traces; it is a root of
		// its own trace but not a request, so it never competes with
		// frame spans for exemplar slots.
		tickSpan.SetRoot(false)
		tickSpan.Attr("batch_tick", tick)
	}
	tickCtx := tickSpan.Context()

	cache, groups := sc.precompute(batch)
	for _, r := range batch {
		r.sess.fw.SetDistCache(cache)
	}

	workers := sc.workers
	if workers > len(batch) {
		workers = len(batch)
	}
	pprofLabels := sc.mgr.pprofLabels
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				r := batch[i]
				if r.parent.Valid() {
					// The time this epoch sat on the queue waiting for its
					// batch — charged to the frame span, not to Step.
					tracer.Emit(&trace.Record{
						Trace:   r.parent.Trace.String(),
						Span:    tracer.NewSpanID().String(),
						Parent:  r.parent.Span.String(),
						Name:    "server.queue",
						Session: r.sess.spanLabel,
						StartNS: r.enqNS,
						DurNS:   tracer.Now() - r.enqNS,
					})
				}
				r.sess.spans.SetBatch(tickCtx, tick)
				step := func() {
					t0 := time.Now()
					res := r.sess.fw.Step(r.snap)
					r.done <- stepResponse{res: res, dur: time.Since(t0)}
				}
				if pprofLabels {
					pprof.Do(context.Background(),
						pprof.Labels("session", r.sess.spanLabel, "batch_tick", strconv.FormatInt(tick, 10)),
						func(context.Context) { step() })
				} else {
					step()
				}
			}
		}()
	}
	wg.Wait()
	for _, r := range batch {
		r.sess.fw.SetDistCache(nil)
	}
	if tickSpan.Recording() {
		tickSpan.Attr("batch_size", len(batch))
		tickSpan.Attr("groups", len(groups))
		for _, g := range groups {
			name := "snapshot_version.wifi"
			if g.mapID == MapCellular {
				name = "snapshot_version.cell"
			}
			tickSpan.Attr(name, g.version)
		}
		if cache != nil {
			tickSpan.Attr("cache_hits", cache.Hits())
			tickSpan.Attr("cache_misses", cache.Misses())
			tickSpan.Attr("cache_columns", cache.Len())
		}
		tickSpan.End()
	}
	sc.mgr.noteBatch(len(batch), len(groups), cache)
}

// batchGroup describes one fused columnar pass of a batch: the map it
// covered and the pinned snapshot version its columns were computed
// against.
type batchGroup struct {
	mapID   byte
	version uint64
}

// precompute pins each configured store's current snapshot and runs
// one AppendDistancesBatch pass per store over the batch's unique
// observations, filling the shared cache. WiFi observations feed both
// the WiFi scheme and the fusion scheme's rssiDev, so a single column
// can serve up to 2×sessions consumers. Returns a nil cache when there
// is nothing to share, plus one batchGroup per (map, pinned snapshot)
// pass actually run.
func (sc *scheduler) precompute(batch []*stepRequest) (*fingerprint.DistCache, []batchGroup) {
	if len(sc.stores) == 0 {
		return nil, nil
	}
	var cache *fingerprint.DistCache
	var groups []batchGroup
	for _, mapID := range []byte{MapWiFi, MapCellular} {
		store := sc.stores[mapID]
		if store == nil {
			continue
		}
		snap := store.Snapshot() // pinned: the cache key for this pass
		if snap == nil || snap.Len() == 0 {
			continue
		}
		var uniq []rf.Vector
		seen := make(map[string]struct{}, len(batch))
		for _, r := range batch {
			obs := r.snap.WiFi
			if mapID == MapCellular {
				obs = r.snap.Cell
			}
			// Schemes gate on MinAPsForFix; shorter vectors never reach
			// a distance pass, so precomputing them would be waste.
			if len(obs) < 2 {
				continue
			}
			k := fingerprint.ObsKey(obs)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			uniq = append(uniq, obs)
		}
		if len(uniq) == 0 {
			continue
		}
		cols := snap.AppendDistancesBatch(uniq)
		if cache == nil {
			cache = fingerprint.NewDistCache()
		}
		for i, obs := range uniq {
			cache.Put(snap, obs, cols[i])
		}
		groups = append(groups, batchGroup{mapID: mapID, version: snap.Version()})
	}
	return cache, groups
}
