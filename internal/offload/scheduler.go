package offload

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/mapstore"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/telemetry/trace"
)

// maxBatch bounds how many ready epochs one tick executes; a full
// batch fires immediately instead of waiting out the tick.
const maxBatch = 256

// stepRequest is one session's ready epoch, parked on the scheduler's
// queue until the tick fires. done is buffered so a batch worker never
// blocks handing the result back. Requests are pooled: the submitter
// clears the payload fields and returns the request (with its
// persistent done channel) after receiving the response.
type stepRequest struct {
	sess *Session
	snap *sensing.Snapshot
	done chan stepResponse

	// Tracing: the serving goroutine's frame span, and the tracer
	// timestamp at submission. A batch worker turns the submit→execute
	// gap into a "server.queue" child of the frame span, so batch wait
	// is visible (and attributable) in every trace's critical path.
	parent trace.SpanContext
	enqNS  int64
}

// stepResponse carries one stepped epoch back to its serving
// goroutine, with the framework step duration measured inside the
// batch (queueing delay excluded — the latency histograms keep
// measuring compute, as they did per-connection).
type stepResponse struct {
	res core.StepResult
	dur time.Duration
}

// scheduler is the batch-per-tick execution engine (ISSUE 6 tentpole):
// it collects ready epochs from all sessions, pins the shared map
// snapshots once, precomputes the fingerprint-distance columns every
// batched scheme would otherwise compute per session (one columnar
// pass per unique observation via AppendDistancesBatch), then steps
// the sessions across a worker pool and fans the results back. With a
// shared-compute cache attached (ISSUE 9), each batch additionally
// migrates its sessions' snapshot pins and prewarms the fused
// likelihood rows for the batch's unique WiFi observations, so the
// per-cell likelihood grid is evaluated once per snapshot instead of
// once per session.
//
// Bit-identity invariant: grouping is by pinned snapshot *pointer*
// (fingerprint.DistCache keys on Reader identity, sharedcompute on the
// snapshot pointer). A snapshot version swap landing mid-batch makes
// later sessions pin the new snapshot, miss the caches, and compute
// locally — the exact floats unbatched execution would produce.
// Sessions are independent frameworks, so stepping them concurrently
// cannot reorder any per-session float operation.
type scheduler struct {
	tick    time.Duration
	workers int
	stores  map[byte]*mapstore.Store
	mgr     *SessionManager

	// fusionScale is the likelihood scale rows are prewarmed for —
	// the default fusion config's. A session running a different scale
	// simply never matches the prewarmed rows (rows are keyed by
	// scale), costing nothing but the wasted warmup.
	fusionScale float64

	reqs chan *stepRequest
	quit chan struct{}
	wg   sync.WaitGroup

	ticks atomic.Int64 // batch ticks executed; labels spans and profiles

	reqPool sync.Pool // *stepRequest with persistent done channel

	// Precompute scratch, reused across batches. Touched only by the
	// loop goroutine, which runs batches serially: each batch's
	// workers drain (wg.Wait) and drop the cache before the next
	// batch's Reset, so reuse can never race a reader.
	cache    *fingerprint.DistCache
	seen     map[string]struct{}
	uniq     []rf.Vector
	uniqKeys []string
	keyBuf   []byte
	groups   []batchGroup

	mu     sync.RWMutex
	closed bool
}

// newScheduler starts the batching loop. workers <= 0 defaults to
// NumCPU; stores may be nil (batching then still amortizes scheduling
// and parallelizes sessions, without precomputed columns).
func newScheduler(tick time.Duration, workers int, stores map[byte]*mapstore.Store, mgr *SessionManager) *scheduler {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	sc := &scheduler{
		tick:        tick,
		workers:     workers,
		stores:      stores,
		mgr:         mgr,
		fusionScale: schemes.DefaultFusionConfig().RSSIScaleDB,
		reqs:        make(chan *stepRequest, 4*maxBatch),
		quit:        make(chan struct{}),
	}
	sc.reqPool.New = func() any {
		return &stepRequest{done: make(chan stepResponse, 1)}
	}
	sc.wg.Add(1)
	go sc.loop()
	return sc
}

// step submits one session's epoch and blocks until its batch has
// executed it. parent is the serving goroutine's frame span context
// (zero when tracing is off). After close the step runs inline (same
// floats, no batching) so late serving goroutines never strand.
func (sc *scheduler) step(sess *Session, snap *sensing.Snapshot, parent trace.SpanContext) (core.StepResult, time.Duration) {
	sc.mu.RLock()
	if sc.closed {
		sc.mu.RUnlock()
		sess.spans.SetBatch(trace.SpanContext{}, 0) // inline: no batch to link
		t0 := time.Now()
		res := sess.fw.Step(snap)
		return res, time.Since(t0)
	}
	req := sc.reqPool.Get().(*stepRequest)
	req.sess, req.snap, req.parent, req.enqNS = sess, snap, parent, 0
	if parent.Valid() {
		req.enqNS = sc.mgr.tracer.Now()
	}
	sc.reqs <- req
	sc.mu.RUnlock()
	resp := <-req.done
	// The worker is done with the request once it sends the response,
	// so after receiving it the submitter owns the request again.
	req.sess, req.snap, req.parent = nil, nil, trace.SpanContext{}
	sc.reqPool.Put(req)
	return resp.res, resp.dur
}

// close stops the batching loop after it has answered everything
// already queued. Idempotent.
func (sc *scheduler) close() {
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return
	}
	sc.closed = true
	sc.mu.Unlock()
	close(sc.quit)
	sc.wg.Wait()
}

// loop gathers requests into batches: the tick timer arms when the
// first request of a batch arrives, and the batch runs when it fires
// (or immediately at maxBatch). One loop goroutine runs batches
// serially, so a batch's cache teardown can never race the next
// batch's setup.
func (sc *scheduler) loop() {
	defer sc.wg.Done()
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*stepRequest, 0, maxBatch)
	fire := func() {
		sc.runBatch(batch)
		batch = batch[:0]
	}
	for {
		select {
		case req := <-sc.reqs:
			if len(batch) == 0 {
				timer.Reset(sc.tick)
			}
			batch = append(batch, req)
			if len(batch) >= maxBatch {
				if !timer.Stop() {
					<-timer.C
				}
				fire()
			}
		case <-timer.C:
			fire()
		case <-sc.quit:
			// close() set closed under the lock before closing quit, and
			// every in-flight submitter sent while holding the read lock,
			// so the queue can no longer grow: drain it, answer the final
			// batch, exit.
			for {
				select {
				case req := <-sc.reqs:
					batch = append(batch, req)
					continue
				default:
				}
				break
			}
			if len(batch) > 0 {
				fire()
			}
			return
		}
	}
}

// runBatch executes one batch: precompute shared columns, migrate
// shared-compute pins and prewarm likelihood rows, install the cache
// on every batched framework, step sessions across the worker pool,
// record batch telemetry. With a tracer attached, the whole batch
// becomes one "batch.tick" root span, every stepped epoch's span tree
// links back to it (EpochSpans.SetBatch), and each request's
// submit→execute wait becomes a "server.queue" child of its frame
// span.
func (sc *scheduler) runBatch(batch []*stepRequest) {
	if len(batch) == 0 {
		return
	}
	tracer := sc.mgr.tracer
	tick := sc.ticks.Add(1)
	var tickSpan trace.Span
	if tracer.Enabled() {
		tickSpan = tracer.Start("batch.tick", trace.SpanContext{})
		// One tick aggregates epochs from many traces; it is a root of
		// its own trace but not a request, so it never competes with
		// frame spans for exemplar slots.
		tickSpan.SetRoot(false)
		tickSpan.Attr("batch_tick", tick)
	}
	tickCtx := tickSpan.Context()

	cache, groups, pre := sc.precompute(batch)
	if sc.mgr.shared != nil {
		// Migrate pins at the batch boundary: after a compaction swap
		// every batched session re-pins the fresh snapshot here, and
		// the superseded entry is evicted once its last pin moves.
		for _, r := range batch {
			sc.mgr.RepinShared(r.sess)
		}
		if pre != nil {
			if e := sc.mgr.shared.Get(pre.snap); e != nil {
				e.PrewarmFusion(pre.uniq, pre.keys, pre.cols, sc.fusionScale)
			}
		}
	}
	for _, r := range batch {
		r.sess.fw.SetDistCache(cache)
	}

	workers := sc.workers
	if workers > len(batch) {
		workers = len(batch)
	}
	pprofLabels := sc.mgr.pprofLabels
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(batch) {
					return
				}
				r := batch[i]
				if r.parent.Valid() {
					// The time this epoch sat on the queue waiting for its
					// batch — charged to the frame span, not to Step.
					tracer.Emit(&trace.Record{
						Trace:   r.parent.Trace.String(),
						Span:    tracer.NewSpanID().String(),
						Parent:  r.parent.Span.String(),
						Name:    "server.queue",
						Session: r.sess.spanLabel,
						StartNS: r.enqNS,
						DurNS:   tracer.Now() - r.enqNS,
					})
				}
				r.sess.spans.SetBatch(tickCtx, tick)
				step := func() {
					t0 := time.Now()
					res := r.sess.fw.Step(r.snap)
					// Detach the batch cache before answering: the response
					// hands the request back to the submitter, which may
					// recycle it (and r.sess) immediately.
					r.sess.fw.SetDistCache(nil)
					r.done <- stepResponse{res: res, dur: time.Since(t0)}
				}
				if pprofLabels {
					pprof.Do(context.Background(),
						pprof.Labels("session", r.sess.spanLabel, "batch_tick", strconv.FormatInt(tick, 10)),
						func(context.Context) { step() })
				} else {
					step()
				}
			}
		}()
	}
	wg.Wait()
	if tickSpan.Recording() {
		tickSpan.Attr("batch_size", len(batch))
		tickSpan.Attr("groups", len(groups))
		for _, g := range groups {
			name := "snapshot_version.wifi"
			if g.mapID == MapCellular {
				name = "snapshot_version.cell"
			}
			tickSpan.Attr(name, g.version)
		}
		if cache != nil {
			tickSpan.Attr("cache_hits", cache.Hits())
			tickSpan.Attr("cache_misses", cache.Misses())
			tickSpan.Attr("cache_columns", cache.Len())
		}
		tickSpan.End()
	}
	// noteBatch reads the cache's counters before the next batch's
	// Reset zeroes them (same loop goroutine, so no race).
	sc.mgr.noteBatch(len(batch), len(groups), cache)
}

// batchGroup describes one fused columnar pass of a batch: the map it
// covered and the pinned snapshot version its columns were computed
// against.
type batchGroup struct {
	mapID   byte
	version uint64
}

// prewarmData carries one batch's unique WiFi observations — with
// their canonical keys and distance columns — to the shared-compute
// prewarm, which anchors fused likelihood evaluation on each column's
// best match.
type prewarmData struct {
	snap *mapstore.Snapshot
	uniq []rf.Vector
	keys []string
	cols [][]float64
}

// precompute pins each configured store's current snapshot and runs
// one AppendDistancesBatch pass per store over the batch's unique
// observations, filling the shared cache. WiFi observations feed both
// the WiFi scheme and the fusion scheme's rssiDev, so a single column
// can serve up to 2×sessions consumers. Returns a nil cache when there
// is nothing to share, one batchGroup per (map, pinned snapshot) pass
// actually run, and — when shared compute is on — the WiFi pass's
// prewarm payload. All scratch (dedup map, slices, the cache itself)
// is reused across batches; see the scheduler struct comment for why
// that cannot race.
func (sc *scheduler) precompute(batch []*stepRequest) (*fingerprint.DistCache, []batchGroup, *prewarmData) {
	if len(sc.stores) == 0 {
		return nil, nil, nil
	}
	if sc.cache == nil {
		sc.cache = fingerprint.NewDistCache()
		sc.seen = make(map[string]struct{}, maxBatch)
	}
	sc.cache.Reset()
	sc.groups = sc.groups[:0]
	var cache *fingerprint.DistCache
	var pre *prewarmData
	for _, mapID := range []byte{MapWiFi, MapCellular} {
		store := sc.stores[mapID]
		if store == nil {
			continue
		}
		snap := store.Snapshot() // pinned: the cache key for this pass
		if snap == nil || snap.Len() == 0 {
			continue
		}
		sc.uniq = sc.uniq[:0]
		sc.uniqKeys = sc.uniqKeys[:0]
		clear(sc.seen)
		for _, r := range batch {
			obs := r.snap.WiFi
			if mapID == MapCellular {
				obs = r.snap.Cell
			}
			// Schemes gate on MinAPsForFix; shorter vectors never reach
			// a distance pass, so precomputing them would be waste.
			if len(obs) < 2 {
				continue
			}
			sc.keyBuf = fingerprint.AppendObsKey(sc.keyBuf[:0], obs)
			if _, dup := sc.seen[string(sc.keyBuf)]; dup {
				continue
			}
			k := string(sc.keyBuf)
			sc.seen[k] = struct{}{}
			sc.uniq = append(sc.uniq, obs)
			sc.uniqKeys = append(sc.uniqKeys, k)
		}
		if len(sc.uniq) == 0 {
			continue
		}
		cols := snap.AppendDistancesBatch(sc.uniq)
		cache = sc.cache
		for i := range sc.uniq {
			cache.PutKey(snap, sc.uniqKeys[i], cols[i])
		}
		sc.groups = append(sc.groups, batchGroup{mapID: mapID, version: snap.Version()})
		if mapID == MapWiFi && sc.mgr.shared != nil {
			// Copy: sc.uniq/sc.uniqKeys are reused for the next store.
			pre = &prewarmData{
				snap: snap,
				uniq: append([]rf.Vector(nil), sc.uniq...),
				keys: append([]string(nil), sc.uniqKeys...),
				cols: cols,
			}
		}
	}
	return cache, sc.groups, pre
}
