package offload

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// dropConn wraps the client side of a connection and delivers frames
// to the reader one at a time. When the configured target frame
// arrives it is fully consumed off the wire — proving the server's
// write succeeded — and then the read fails and the underlying conn is
// closed, exactly a link that died with the reply in flight. This is
// the scenario behind the resume double-advance bug: the server has
// already stepped the epoch, the client never learns it.
type dropConn struct {
	net.Conn
	mu      sync.Mutex
	buf     []byte
	frame   int
	target  int // 1-based index of the frame to swallow; 0 = never
	dropped bool
}

func (d *dropConn) Read(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		var hdr [3]byte
		if _, err := io.ReadFull(d.Conn, hdr[:]); err != nil {
			return 0, err
		}
		payload := make([]byte, binary.BigEndian.Uint16(hdr[1:]))
		if _, err := io.ReadFull(d.Conn, payload); err != nil {
			return 0, err
		}
		d.frame++
		if d.frame == d.target {
			d.dropped = true
			_ = d.Conn.Close() // sever the link; the reply is gone
			return 0, errors.New("dropConn: link died with reply in flight")
		}
		d.buf = append(hdr[:], payload...)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

// TestReplayAfterLostReply is the reconnect-replay regression test:
// the server computes and writes an epoch's result, the link dies
// before the client reads it, and the client's reconnect re-submits
// the same epoch. Under the old protocol the server would step the
// framework again (double-advancing PDR/HMM state) and the resumed
// session would restart from lastPos; under v4 the re-handshake
// re-attaches the detached session and the duplicate sequence number
// is answered from the per-seq result cache without re-stepping, so
// the whole walk is indistinguishable from an uninterrupted one.
func TestReplayAfterLostReply(t *testing.T) {
	factory, w := offloadWorld(t)
	start, snaps := corridorWalk(w, 2, 21, 12)

	// Reference: the same walk with no link failure.
	refSrv := newTestServer(t, ServerConfig{Factory: factory})
	want := runWalk(t, pipeClient(t, refSrv), start, snaps)

	ls := startLiveServer(t, "127.0.0.1:0", ServerConfig{Factory: factory})
	defer ls.kill()
	addr := ls.ln.Addr().String()
	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }

	raw, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	// Linger 0 makes the drop's Close send an RST: the server sees a
	// mid-stream transport error (a dead link), not a clean EOF
	// goodbye, and parks the session for resume.
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	// Frame #1 is the Welcome; frame #1+k is the k-th epoch's result.
	// Drop the fifth epoch's reply after the server fully wrote it.
	dc := &dropConn{Conn: raw, target: 1 + 5}
	client := NewClient(dc, "phone-replay")
	client.SetTimeout(2 * time.Second)
	client.SetReconnect(dial, Backoff{Min: 20 * time.Millisecond, Max: 200 * time.Millisecond, Attempts: 10, Seed: 3})
	defer func() { _ = client.Close() }()

	got := runWalk(t, client, start, snaps)
	if !dc.dropped {
		t.Fatal("drop never fired — the test exercised nothing")
	}
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if *got[i] != *want[i] {
			t.Errorf("epoch %d diverged after replay: got %+v, want %+v", i, got[i], want[i])
		}
	}

	// Exactly-once stepping: the lost epoch was computed once and its
	// re-submission answered from the cache, not re-stepped.
	st := ls.srv.Stats()
	if st.EpochsServed != int64(len(snaps)) {
		t.Errorf("EpochsServed = %d, want %d (re-sent epoch must not be re-stepped)", st.EpochsServed, len(snaps))
	}
	if st.ReplayedEpochs != 1 {
		t.Errorf("ReplayedEpochs = %d, want 1", st.ReplayedEpochs)
	}
	if st.Detached != 1 || st.Resumed != 1 {
		t.Errorf("Detached/Resumed = %d/%d, want 1/1", st.Detached, st.Resumed)
	}
	if client.Resumes() < 1 {
		t.Errorf("client.Resumes() = %d, want >= 1", client.Resumes())
	}
}
