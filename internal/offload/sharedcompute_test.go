package offload

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/noise"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// fusionStoreWorld is sharedStoreWorld with the fusion scheme in the
// factory: fusion is the heaviest consumer of the shared-compute cache
// (per-cell RSSI likelihood rows), so the bit-identity proof must run
// it, not just the wifi tracker.
func fusionStoreWorld(t testing.TB, reg *telemetry.Registry) (core.FrameworkFactory, *world.World, *mapstore.Store) {
	t.Helper()
	w := &world.World{
		Name:  "shared",
		Noise: noise.Field{Seed: 8},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "hall", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 4), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2, CorridorWidth: 2.5},
		},
		APs: []world.Site{
			{ID: "a0", Pos: geo.Pt(5, 3), TxPowerDBm: 16},
			{ID: "a1", Pos: geo.Pt(20, 1), TxPowerDBm: 16},
			{ID: "a2", Pos: geo.Pt(35, 3), TxPowerDBm: 16},
		},
	}
	db := fingerprint.Survey(w, rf.WiFiModel(), w.APs, 3, rand.New(rand.NewSource(1)))
	store := mapstore.New(db, mapstore.Config{
		Name:         "wifi",
		RebuildBatch: 1 << 30, // rebuilds driven by the test
		Metrics:      mapstore.NewMetrics(reg, "wifi"),
	})
	t.Cleanup(store.Close)
	ms := core.NewModelSet()
	for _, name := range []string{schemes.NameWiFi, schemes.NameMotion, schemes.NameFusion} {
		for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
			ms.Put(&core.ErrorModel{
				Scheme: name, Env: env, Features: nil,
				Reg: &regress.Result{HasIntercept: true, Intercept: 3, ResidStd: 2},
			})
		}
	}
	factory := func() (*core.Framework, error) {
		ss := []schemes.Scheme{
			schemes.NewWiFi(store),
			schemes.NewPDR(w, schemes.DefaultPDRConfig(), rand.New(rand.NewSource(2))),
			schemes.NewFusion(w, store, schemes.DefaultFusionConfig(), rand.New(rand.NewSource(3))),
		}
		return core.NewFramework(ss, ms)
	}
	return factory, w, store
}

// TestSharedComputeMatchesPrivate64 is the shared-compute cache's
// end-to-end bit-identity proof: 64 concurrent sessions served with
// the cache on (batched, prewarmed, pins migrating across a mid-walk
// compaction swap) produce exactly — struct-equal, so Float64bits —
// the Results the same walks get from isolated private sessions with
// the cache off. Run under -race in CI: lock-free index reads, row
// fills, prewarm, and pin migration all race here by construction.
func TestSharedComputeMatchesPrivate64(t *testing.T) {
	const nClients = 64
	const epochs = 10
	const swapAt = 5 // map v1 for epochs [0,5), v2 for [5,10)

	survey := fingerprint.Fingerprint{
		Pos: geo.Pt(12, 2),
		Vec: rf.Vector{{ID: "a0", RSSI: -52}, {ID: "a1", RSSI: -58}},
	}

	// Reference: private compute, no cache, no batching.
	refFactory, rw, refStore := fusionStoreWorld(t, telemetry.NewRegistry())
	starts := make([]geo.Point, nClients)
	walks := make([][]*sensing.Snapshot, nClients)
	for i := range walks {
		starts[i], walks[i] = corridorWalk(rw, 1+float64(i%4)*0.7, int64(40+i), epochs)
	}
	refSrv := newTestServer(t, ServerConfig{Factory: refFactory})
	refClients := make([]*Client, nClients)
	want := make([][]*Result, nClients)
	for i := range refClients {
		refClients[i] = pipeClient(t, refSrv)
		if err := refClients[i].Hello(starts[i]); err != nil {
			t.Fatalf("ref hello %d: %v", i, err)
		}
		want[i] = make([]*Result, epochs)
	}
	refPhase := func(lo, hi int) {
		for i, c := range refClients {
			for k := lo; k < hi; k++ {
				res, err := c.Localize(walks[i][k])
				if err != nil {
					t.Fatalf("ref client %d epoch %d: %v", i, k, err)
				}
				want[i][k] = res
			}
		}
	}
	refPhase(0, swapAt)
	if err := refStore.Submit(survey); err != nil {
		t.Fatal(err)
	}
	refStore.Rebuild()
	refPhase(swapAt, epochs)

	// Shared: identically-built world, batch scheduler + shared-compute
	// cache on, all clients stepping concurrently.
	shFactory, _, shStore := fusionStoreWorld(t, telemetry.NewRegistry())
	srv := newTestServer(t, ServerConfig{
		Factory:       shFactory,
		BatchTick:     500 * time.Microsecond,
		BatchWorkers:  4,
		BatchStores:   map[byte]*mapstore.Store{MapWiFi: shStore},
		SharedCompute: true,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ListenAndServe(ln, nil)
	t.Cleanup(func() { _ = ln.Close() })

	clients := make([]*Client, nClients)
	for i := range clients {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		clients[i] = NewClient(conn, fmt.Sprintf("phone-shared-%d", i))
		clients[i].SetTimeout(10 * time.Second)
		if err := clients[i].Hello(starts[i]); err != nil {
			t.Fatalf("hello %d: %v", i, err)
		}
	}
	got := make([][]*Result, nClients)
	for i := range got {
		got[i] = make([]*Result, epochs)
	}
	phase := func(lo, hi int) {
		var wg sync.WaitGroup
		errs := make(chan error, nClients)
		for i := range clients {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for k := lo; k < hi; k++ {
					res, err := clients[i].Localize(walks[i][k])
					if err != nil {
						errs <- fmt.Errorf("client %d epoch %d: %w", i, k, err)
						return
					}
					got[i][k] = res
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	phase(0, swapAt)
	if err := shStore.Submit(survey); err != nil {
		t.Fatal(err)
	}
	shStore.Rebuild()
	phase(swapAt, epochs)

	for i := range want {
		for k := range want[i] {
			if *got[i][k] != *want[i][k] {
				t.Errorf("client %d epoch %d: shared %+v != private %+v", i, k, got[i][k], want[i][k])
			}
		}
	}

	st := srv.Stats()
	if st.SharedBuilt < 2 {
		t.Errorf("SharedBuilt = %d, want >= 2 (pre- and post-swap snapshots)", st.SharedBuilt)
	}
	if st.SharedLikHits == 0 {
		t.Error("SharedLikHits = 0 — no session ever read a shared likelihood")
	}
	if st.SharedLikHits+st.SharedLikMisses > 0 {
		rate := float64(st.SharedLikHits) / float64(st.SharedLikHits+st.SharedLikMisses)
		t.Logf("shared-compute hit rate at %d sessions: %.3f (%d hits, %d misses, %d rows warmed)",
			nClients, rate, st.SharedLikHits, st.SharedLikMisses, st.SharedRowsWarmed)
	}
	if st.SharedTrackers == 0 {
		t.Error("SharedTrackers = 0 — no tracker rebuild used shared positions")
	}
}

// TestSharedComputeEviction pins the cache lifecycle at the server
// level: entries exist while sessions pin them and are gone — with the
// evicted counter advanced — once the last session closes.
func TestSharedComputeEviction(t *testing.T) {
	reg := telemetry.NewRegistry()
	factory, w, store := fusionStoreWorld(t, reg)
	srv := newTestServer(t, ServerConfig{
		Factory:       factory,
		Metrics:       reg,
		MapStores:     map[byte]*mapstore.Store{MapWiFi: store},
		SharedCompute: true,
	})

	const nClients = 3
	conns := make([]net.Conn, nClients)
	done := make([]chan error, nClients)
	clients := make([]*Client, nClients)
	for i := range clients {
		c1, c2 := net.Pipe()
		conns[i] = c1
		done[i] = make(chan error, 1)
		go func(c net.Conn, ch chan error) { ch <- srv.Serve(c) }(c2, done[i])
		clients[i] = NewClient(c1, fmt.Sprintf("evict-%d", i))
	}

	start, snaps := corridorWalk(w, 2, 3, 4)
	for i, c := range clients {
		if err := c.Hello(start); err != nil {
			t.Fatalf("hello %d: %v", i, err)
		}
		for k, snap := range snaps {
			if _, err := c.Localize(snap); err != nil {
				t.Fatalf("client %d epoch %d: %v", i, k, err)
			}
		}
	}

	st := srv.Stats()
	if st.SharedResident == 0 || st.SharedBuilt == 0 {
		t.Fatalf("cache idle while %d sessions pinned: %+v", nClients, st)
	}
	if v := st.SharedVersions["wifi"]; v != store.Version() {
		t.Fatalf("SharedVersions[wifi] = %d, want %d", v, store.Version())
	}
	if st.SharedLikHits+st.SharedLikMisses == 0 {
		t.Fatal("no shared likelihood traffic from fusion sessions")
	}

	for i, c := range conns {
		_ = c.Close()
		select {
		case <-done[i]:
		case <-time.After(2 * time.Second):
			t.Fatalf("server goroutine %d did not stop", i)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		st = srv.Stats()
		if st.SharedResident == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("entries still resident after all sessions closed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.SharedEvicted == 0 {
		t.Fatal("SharedEvicted = 0 after last session closed")
	}
	_ = clients
}

// TestBatchedStepAllocsBounded guards the batched path's per-epoch
// allocation overhead: with the scheduler's request pool and reused
// per-batch scratch (dist cache, dedup sets, column buffers), stepping
// through the batch loop must not allocate meaningfully more than the
// plain unbatched path. This pins the regression where every batch
// rebuilt its scratch from scratch (93 vs 67 allocs/op).
func TestBatchedStepAllocsBounded(t *testing.T) {
	measure := func(batch bool) float64 {
		reg := telemetry.NewRegistry()
		factory, w, store := sharedStoreWorld(t, reg)
		cfg := ServerConfig{Factory: factory}
		if batch {
			cfg.BatchTick = 100 * time.Microsecond
			cfg.BatchStores = map[byte]*mapstore.Store{MapWiFi: store}
		}
		srv := newTestServer(t, cfg)
		client := pipeClient(t, srv)
		start, snaps := corridorWalk(w, 2, 3, 60)
		if err := client.Hello(start); err != nil {
			t.Fatal(err)
		}
		// Warm every lazily-built structure: session scratch, scheduler
		// pool, dist-cache maps, tracker state.
		for _, snap := range snaps[:40] {
			if _, err := client.Localize(snap); err != nil {
				t.Fatal(err)
			}
		}
		i := 40
		return testing.AllocsPerRun(60, func() {
			if _, err := client.Localize(snaps[i%len(snaps)]); err != nil {
				t.Fatal(err)
			}
			i++
		})
	}
	unbatched := measure(false)
	batched := measure(true)
	t.Logf("allocs/epoch: unbatched=%.1f batched=%.1f", unbatched, batched)
	// The batch loop's own bookkeeping (timer reset, batch append,
	// telemetry) is allowed a small constant on top of the unbatched
	// path; scratch rebuilds would blow well past it.
	if batched > unbatched+12 {
		t.Errorf("batched path allocates %.1f/epoch vs %.1f unbatched — scheduler scratch is not being reused",
			batched, unbatched)
	}
}
