package offload

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/noise"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// sharedStoreWorld is offloadWorld over a shared mapstore.Store: every
// session's wifi scheme reads the same versioned map, and the server
// routes MsgSurvey submissions into it.
func sharedStoreWorld(t testing.TB, reg *telemetry.Registry) (core.FrameworkFactory, *world.World, *mapstore.Store) {
	return sharedStoreWorldBatch(t, reg, 1<<30) // rebuilds driven by the test
}

// sharedStoreWorldBatch is sharedStoreWorld with a configurable
// compaction batch size, so flood tests can exercise the background
// compactor mid-traffic.
func sharedStoreWorldBatch(t testing.TB, reg *telemetry.Registry, batch int) (core.FrameworkFactory, *world.World, *mapstore.Store) {
	t.Helper()
	w := &world.World{
		Name:  "shared",
		Noise: noise.Field{Seed: 8},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "hall", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 4), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2, CorridorWidth: 2.5},
		},
		APs: []world.Site{
			{ID: "a0", Pos: geo.Pt(5, 3), TxPowerDBm: 16},
			{ID: "a1", Pos: geo.Pt(20, 1), TxPowerDBm: 16},
			{ID: "a2", Pos: geo.Pt(35, 3), TxPowerDBm: 16},
		},
	}
	db := fingerprint.Survey(w, rf.WiFiModel(), w.APs, 3, rand.New(rand.NewSource(1)))
	store := mapstore.New(db, mapstore.Config{
		Name:         "wifi",
		RebuildBatch: batch,
		Metrics:      mapstore.NewMetrics(reg, "wifi"),
	})
	t.Cleanup(store.Close)
	ms := core.NewModelSet()
	for _, name := range []string{schemes.NameWiFi, schemes.NameMotion} {
		for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
			ms.Put(&core.ErrorModel{
				Scheme: name, Env: env, Features: nil,
				Reg: &regress.Result{HasIntercept: true, Intercept: 3, ResidStd: 2},
			})
		}
	}
	factory := func() (*core.Framework, error) {
		ss := []schemes.Scheme{
			schemes.NewWiFi(store),
			schemes.NewPDR(w, schemes.DefaultPDRConfig(), rand.New(rand.NewSource(2))),
		}
		return core.NewFramework(ss, ms)
	}
	return factory, w, store
}

// TestSurveyIngestion drives the full crowdsourcing loop over the wire:
// a client submits survey points mid-walk, the server routes them into
// the shared store, a compaction folds them in, and the next epochs are
// served from the advanced snapshot version.
func TestSurveyIngestion(t *testing.T) {
	reg := telemetry.NewRegistry()
	factory, w, store := sharedStoreWorld(t, reg)
	srv := newTestServer(t, ServerConfig{
		Factory:   factory,
		Metrics:   reg,
		MapStores: map[byte]*mapstore.Store{MapWiFi: store},
	})
	client := pipeClient(t, srv)

	start, snaps := corridorWalk(w, 2, 3, 20)
	if err := client.Hello(start); err != nil {
		t.Fatal(err)
	}
	baseLen := store.View().Len()

	// First half of the walk on snapshot version 1, submitting surveys
	// along the way.
	model := rf.WiFiModel()
	rnd := rand.New(rand.NewSource(99))
	for i, snap := range snaps[:10] {
		if _, err := client.Localize(snap); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		p := geo.Pt(1+float64(i)*3.5, 0.5)
		vec := model.Scan(w, w.APs, p, rf.Reference(), rnd)
		if len(vec) < 2 {
			continue
		}
		if err := client.SubmitSurvey(MapWiFi, p, vec); err != nil {
			t.Fatalf("survey %d: %v", i, err)
		}
	}
	// Unusable and misrouted submissions are dropped, not fatal.
	if err := client.SubmitSurvey(MapWiFi, geo.Pt(1, 1), rf.Vector{{ID: "a0", RSSI: -50}}); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitSurvey(MapCellular, geo.Pt(1, 1), vecOf("a0", -50, "a1", -60)); err != nil {
		t.Fatal(err)
	}
	// A Localize round trip guarantees all survey frames were consumed
	// (frames are processed strictly in order on one connection).
	if _, err := client.Localize(snaps[10]); err != nil {
		t.Fatal(err)
	}

	ingested := store.Pending()
	if ingested == 0 {
		t.Fatal("no survey points reached the store")
	}
	if v := store.Rebuild(); v != 2 {
		t.Fatalf("rebuild version = %d, want 2", v)
	}
	if got := store.View().Len(); got != baseLen+ingested {
		t.Fatalf("store grew to %d, want %d", got, baseLen+ingested)
	}

	// Remaining epochs are served from the new version without error.
	for i, snap := range snaps[11:] {
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("post-swap epoch %d: %v", i, err)
		}
		if !res.OK {
			t.Fatalf("post-swap epoch %d: result not OK", i)
		}
	}

	ms := reg.Snapshot()
	if got, _ := ms.Get("uniloc_surveys_ingested_total"); got != float64(ingested) {
		t.Fatalf("uniloc_surveys_ingested_total = %v, want %v", got, ingested)
	}
	if got, _ := ms.Get("uniloc_surveys_dropped_total"); got != 2 {
		t.Fatalf("uniloc_surveys_dropped_total = %v, want 2", got)
	}
	if got, _ := ms.Get("uniloc_mapstore_snapshot_version", "map", "wifi"); got != 2 {
		t.Fatalf("uniloc_mapstore_snapshot_version = %v, want 2", got)
	}
}

// TestSurveyFloodOfMalformedInput pushes a sustained, concurrent flood
// of mostly-garbage survey submissions — NaN positions, out-of-bounds
// coordinates, single-transmitter and duplicate-transmitter vectors —
// through the wire ingest path into a store with a small compaction
// batch, so the
// background compactor churns while the garbage arrives. The contract:
// every submission is either ingested or dropped (counters add up),
// the compactor neither stalls nor panics, the snapshot version
// advances past the garbage, and sessions keep localizing throughout.
func TestSurveyFloodOfMalformedInput(t *testing.T) {
	reg := telemetry.NewRegistry()
	factory, w, store := sharedStoreWorldBatch(t, reg, 16)
	srv := newTestServer(t, ServerConfig{
		Factory:   factory,
		Metrics:   reg,
		MapStores: map[byte]*mapstore.Store{MapWiFi: store},
	})

	const clients = 3
	const perClient = 200
	model := rf.WiFiModel()

	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for cli := 0; cli < clients; cli++ {
		client := pipeClient(t, srv)
		_, snaps := corridorWalk(w, 1+float64(cli), int64(40+cli), 10)
		wg.Add(1)
		go func(cli int, client *Client) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(500 + cli)))
			if err := client.Hello(geo.Pt(2, 2)); err != nil {
				errs <- err
				return
			}
			for i := 0; i < perClient; i++ {
				var pos geo.Point
				var vec rf.Vector
				switch i % 5 {
				case 0: // valid point, distinct positions across the hall
					pos = geo.Pt(float64(1+(i*7)%38), 0.5+float64(cli))
					vec = model.Scan(w, w.APs, pos, rf.Reference(), rnd)
				case 1: // NaN position
					pos = geo.Pt(math.NaN(), 2)
					vec = vecOf("a0", -50, "a1", -60)
				case 2: // absurdly out of bounds
					pos = geo.Pt(1e9, -1e9)
					vec = vecOf("a0", -50, "a1", -60)
				case 3: // too few transmitters
					pos = geo.Pt(5, 2)
					vec = rf.Vector{{ID: "a0", RSSI: -50}}
				case 4: // duplicate transmitters merging below the minimum
					pos = geo.Pt(5, 2)
					vec = rf.Vector{{ID: "a0", RSSI: -50}, {ID: "a0", RSSI: -40}}
				}
				if err := client.SubmitSurvey(MapWiFi, pos, vec); err != nil {
					errs <- err
					return
				}
				// Interleave epochs so the flood shares the connection
				// with real traffic the way a misbehaving phone would.
				if i%25 == 24 {
					if _, err := client.Localize(snaps[(i/25)%len(snaps)]); err != nil {
						errs <- err
						return
					}
				}
			}
			// A final round trip guarantees every survey frame before it
			// was consumed (frames are handled in order per connection).
			if res, err := client.Localize(snaps[0]); err != nil {
				errs <- err
			} else if !res.OK {
				errs <- fmt.Errorf("client %d: final epoch not OK after flood", cli)
			}
		}(cli, client)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// The compactor must have kept up with the batch kicks mid-flood.
	if v := store.Version(); v < 2 {
		t.Errorf("snapshot version = %d, want >= 2 (compactor never ran during the flood)", v)
	}
	// Drain the tail and verify the store still compacts cleanly.
	store.Rebuild()
	if p := store.Pending(); p != 0 {
		t.Errorf("pending = %d after final rebuild, want 0", p)
	}

	snap := reg.Snapshot()
	ingested, _ := snap.Get("uniloc_surveys_ingested_total")
	dropped, _ := snap.Get("uniloc_surveys_dropped_total")
	total := float64(clients * perClient)
	if ingested+dropped != total {
		t.Errorf("ingested (%v) + dropped (%v) = %v, want %v — a submission vanished uncounted",
			ingested, dropped, ingested+dropped, total)
	}
	// Every malformed submission (4 of each 5) must have been dropped;
	// the valid fifth may still be rejected when a scan comes up short,
	// but some of 120 spread positions must land.
	if minDropped := total * 4 / 5; dropped < minDropped {
		t.Errorf("dropped = %v, want >= %v", dropped, minDropped)
	}
	if ingested == 0 {
		t.Error("no valid survey survived the flood")
	}

	// Non-finite RSSI cannot survive the wire (the protocol quantizes
	// RSSI to int16 deci-dB), so the store's ErrBadRSSI defense is
	// exercised directly: a locally-submitted NaN reading must be
	// rejected even after the flood.
	err := store.Submit(fingerprint.Fingerprint{
		Pos: geo.Pt(5, 2),
		Vec: rf.Vector{{ID: "a0", RSSI: math.NaN()}, {ID: "a1", RSSI: -60}},
	})
	if err == nil {
		t.Error("store accepted a NaN RSSI via direct Submit")
	}
}

func vecOf(idA string, rssiA float64, idB string, rssiB float64) rf.Vector {
	return rf.Vector{{ID: idA, RSSI: rssiA}, {ID: idB, RSSI: rssiB}}
}

// TestServerWithoutStoresDropsSurveys pins that MsgSurvey on a server
// with no configured stores is counted and ignored, never an error.
func TestServerWithoutStoresDropsSurveys(t *testing.T) {
	reg := telemetry.NewRegistry()
	factory, w := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory, Metrics: reg})
	client := pipeClient(t, srv)

	start, snaps := corridorWalk(w, 2, 5, 3)
	if err := client.Hello(start); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitSurvey(MapWiFi, geo.Pt(3, 2), vecOf("a0", -48, "a1", -62)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Localize(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if got, _ := reg.Snapshot().Get("uniloc_surveys_dropped_total"); got != 1 {
		t.Fatalf("uniloc_surveys_dropped_total = %v, want 1", got)
	}
}

func TestSurveyRoundTrip(t *testing.T) {
	in := &Survey{
		Map: MapWiFi,
		X:   12.345678901234, // float64 precision must survive the wire
		Y:   -7.000000000001,
		Vec: rf.Vector{{ID: "ap-aa", RSSI: -48.3}, {ID: "ap-bb", RSSI: -71.9}},
	}
	out, err := DecodeSurvey(EncodeSurvey(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Map != in.Map || out.X != in.X || out.Y != in.Y {
		t.Fatalf("round trip mutated header: %+v != %+v", out, in)
	}
	if len(out.Vec) != len(in.Vec) {
		t.Fatalf("vector length %d != %d", len(out.Vec), len(in.Vec))
	}
	for i := range out.Vec {
		if out.Vec[i].ID != in.Vec[i].ID || out.Vec[i].RSSI != in.Vec[i].RSSI {
			t.Fatalf("vec[%d] = %+v != %+v", i, out.Vec[i], in.Vec[i])
		}
	}
	if _, err := DecodeSurvey([]byte{1, 2, 3}); err == nil {
		t.Fatal("short survey frame must error")
	}
}
