package offload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/noise"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// sharedStoreWorld is offloadWorld over a shared mapstore.Store: every
// session's wifi scheme reads the same versioned map, and the server
// routes MsgSurvey submissions into it.
func sharedStoreWorld(t testing.TB, reg *telemetry.Registry) (core.FrameworkFactory, *world.World, *mapstore.Store) {
	t.Helper()
	w := &world.World{
		Name:  "shared",
		Noise: noise.Field{Seed: 8},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "hall", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 4), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2, CorridorWidth: 2.5},
		},
		APs: []world.Site{
			{ID: "a0", Pos: geo.Pt(5, 3), TxPowerDBm: 16},
			{ID: "a1", Pos: geo.Pt(20, 1), TxPowerDBm: 16},
			{ID: "a2", Pos: geo.Pt(35, 3), TxPowerDBm: 16},
		},
	}
	db := fingerprint.Survey(w, rf.WiFiModel(), w.APs, 3, rand.New(rand.NewSource(1)))
	store := mapstore.New(db, mapstore.Config{
		Name:         "wifi",
		RebuildBatch: 1 << 30, // rebuilds driven by the test
		Metrics:      mapstore.NewMetrics(reg, "wifi"),
	})
	t.Cleanup(store.Close)
	ms := core.NewModelSet()
	for _, name := range []string{schemes.NameWiFi, schemes.NameMotion} {
		for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
			ms.Put(&core.ErrorModel{
				Scheme: name, Env: env, Features: nil,
				Reg: &regress.Result{HasIntercept: true, Intercept: 3, ResidStd: 2},
			})
		}
	}
	factory := func() (*core.Framework, error) {
		ss := []schemes.Scheme{
			schemes.NewWiFi(store),
			schemes.NewPDR(w, schemes.DefaultPDRConfig(), rand.New(rand.NewSource(2))),
		}
		return core.NewFramework(ss, ms)
	}
	return factory, w, store
}

// TestSurveyIngestion drives the full crowdsourcing loop over the wire:
// a client submits survey points mid-walk, the server routes them into
// the shared store, a compaction folds them in, and the next epochs are
// served from the advanced snapshot version.
func TestSurveyIngestion(t *testing.T) {
	reg := telemetry.NewRegistry()
	factory, w, store := sharedStoreWorld(t, reg)
	srv := newTestServer(t, ServerConfig{
		Factory:   factory,
		Metrics:   reg,
		MapStores: map[byte]*mapstore.Store{MapWiFi: store},
	})
	client := pipeClient(t, srv)

	start, snaps := corridorWalk(w, 2, 3, 20)
	if err := client.Hello(start); err != nil {
		t.Fatal(err)
	}
	baseLen := store.View().Len()

	// First half of the walk on snapshot version 1, submitting surveys
	// along the way.
	model := rf.WiFiModel()
	rnd := rand.New(rand.NewSource(99))
	for i, snap := range snaps[:10] {
		if _, err := client.Localize(snap); err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		p := geo.Pt(1+float64(i)*3.5, 0.5)
		vec := model.Scan(w, w.APs, p, rf.Reference(), rnd)
		if len(vec) < 2 {
			continue
		}
		if err := client.SubmitSurvey(MapWiFi, p, vec); err != nil {
			t.Fatalf("survey %d: %v", i, err)
		}
	}
	// Unusable and misrouted submissions are dropped, not fatal.
	if err := client.SubmitSurvey(MapWiFi, geo.Pt(1, 1), rf.Vector{{ID: "a0", RSSI: -50}}); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitSurvey(MapCellular, geo.Pt(1, 1), vecOf("a0", -50, "a1", -60)); err != nil {
		t.Fatal(err)
	}
	// A Localize round trip guarantees all survey frames were consumed
	// (frames are processed strictly in order on one connection).
	if _, err := client.Localize(snaps[10]); err != nil {
		t.Fatal(err)
	}

	ingested := store.Pending()
	if ingested == 0 {
		t.Fatal("no survey points reached the store")
	}
	if v := store.Rebuild(); v != 2 {
		t.Fatalf("rebuild version = %d, want 2", v)
	}
	if got := store.View().Len(); got != baseLen+ingested {
		t.Fatalf("store grew to %d, want %d", got, baseLen+ingested)
	}

	// Remaining epochs are served from the new version without error.
	for i, snap := range snaps[11:] {
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("post-swap epoch %d: %v", i, err)
		}
		if !res.OK {
			t.Fatalf("post-swap epoch %d: result not OK", i)
		}
	}

	ms := reg.Snapshot()
	if got, _ := ms.Get("uniloc_surveys_ingested_total"); got != float64(ingested) {
		t.Fatalf("uniloc_surveys_ingested_total = %v, want %v", got, ingested)
	}
	if got, _ := ms.Get("uniloc_surveys_dropped_total"); got != 2 {
		t.Fatalf("uniloc_surveys_dropped_total = %v, want 2", got)
	}
	if got, _ := ms.Get("uniloc_mapstore_snapshot_version", "map", "wifi"); got != 2 {
		t.Fatalf("uniloc_mapstore_snapshot_version = %v, want 2", got)
	}
}

func vecOf(idA string, rssiA float64, idB string, rssiB float64) rf.Vector {
	return rf.Vector{{ID: idA, RSSI: rssiA}, {ID: idB, RSSI: rssiB}}
}

// TestServerWithoutStoresDropsSurveys pins that MsgSurvey on a server
// with no configured stores is counted and ignored, never an error.
func TestServerWithoutStoresDropsSurveys(t *testing.T) {
	reg := telemetry.NewRegistry()
	factory, w := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory, Metrics: reg})
	client := pipeClient(t, srv)

	start, snaps := corridorWalk(w, 2, 5, 3)
	if err := client.Hello(start); err != nil {
		t.Fatal(err)
	}
	if err := client.SubmitSurvey(MapWiFi, geo.Pt(3, 2), vecOf("a0", -48, "a1", -62)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Localize(snaps[0]); err != nil {
		t.Fatal(err)
	}
	if got, _ := reg.Snapshot().Get("uniloc_surveys_dropped_total"); got != 1 {
		t.Fatalf("uniloc_surveys_dropped_total = %v, want 1", got)
	}
}

func TestSurveyRoundTrip(t *testing.T) {
	in := &Survey{
		Map: MapWiFi,
		X:   12.345678901234, // float64 precision must survive the wire
		Y:   -7.000000000001,
		Vec: rf.Vector{{ID: "ap-aa", RSSI: -48.3}, {ID: "ap-bb", RSSI: -71.9}},
	}
	out, err := DecodeSurvey(EncodeSurvey(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Map != in.Map || out.X != in.X || out.Y != in.Y {
		t.Fatalf("round trip mutated header: %+v != %+v", out, in)
	}
	if len(out.Vec) != len(in.Vec) {
		t.Fatalf("vector length %d != %d", len(out.Vec), len(in.Vec))
	}
	for i := range out.Vec {
		if out.Vec[i].ID != in.Vec[i].ID || out.Vec[i].RSSI != in.Vec[i].RSSI {
			t.Fatalf("vec[%d] = %+v != %+v", i, out.Vec[i], in.Vec[i])
		}
	}
	if _, err := DecodeSurvey([]byte{1, 2, 3}); err == nil {
		t.Fatal("short survey frame must error")
	}
}
