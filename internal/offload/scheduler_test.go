package offload

import (
	"fmt"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/rf"
	"repro/internal/sensing"
	"repro/internal/telemetry"
)

// TestBatchedServerMatchesUnbatched is the scheduler's end-to-end
// bit-identity proof at the wire level: N concurrent clients against a
// batch-per-tick server produce exactly the Results the same walks get
// from isolated, unbatched sessions — including across a crowdsourced
// compaction that swaps the shared snapshot version at a fixed epoch
// boundary mid-run. Run under -race in CI: the scheduler's fan-in,
// cache hand-off, and fan-out all execute concurrently here.
func TestBatchedServerMatchesUnbatched(t *testing.T) {
	const nClients = 4
	const epochs = 16
	const swapAt = 8 // map v1 for epochs [0,8), v2 for [8,16)

	survey := fingerprint.Fingerprint{
		Pos: geo.Pt(12, 2),
		Vec: rf.Vector{{ID: "a0", RSSI: -52}, {ID: "a1", RSSI: -58}},
	}

	// Reference: the same walks through plain per-session stepping,
	// with the identical survey+rebuild at the identical boundary.
	refFactory, rw, refStore := sharedStoreWorld(t, telemetry.NewRegistry())
	starts := make([]geo.Point, nClients)
	walks := make([][]*sensing.Snapshot, nClients)
	for i := range walks {
		starts[i], walks[i] = corridorWalk(rw, 1+float64(i)*0.7, int64(40+i), epochs)
	}
	refSrv := newTestServer(t, ServerConfig{Factory: refFactory})
	refClients := make([]*Client, nClients)
	want := make([][]*Result, nClients)
	for i := range refClients {
		refClients[i] = pipeClient(t, refSrv)
		if err := refClients[i].Hello(starts[i]); err != nil {
			t.Fatalf("ref hello %d: %v", i, err)
		}
		want[i] = make([]*Result, epochs)
	}
	refPhase := func(lo, hi int) {
		for i, c := range refClients {
			for k := lo; k < hi; k++ {
				res, err := c.Localize(walks[i][k])
				if err != nil {
					t.Fatalf("ref client %d epoch %d: %v", i, k, err)
				}
				want[i][k] = res
			}
		}
	}
	refPhase(0, swapAt)
	if err := refStore.Submit(survey); err != nil {
		t.Fatal(err)
	}
	refStore.Rebuild()
	refPhase(swapAt, epochs)

	// Batched: an identically-built world and store (sharedStoreWorld
	// is deterministic), all clients walking concurrently so batches
	// actually form.
	batFactory, _, batStore := sharedStoreWorld(t, telemetry.NewRegistry())
	srv := newTestServer(t, ServerConfig{
		Factory:      batFactory,
		BatchTick:    500 * time.Microsecond,
		BatchWorkers: 4,
		BatchStores:  map[byte]*mapstore.Store{MapWiFi: batStore},
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.ListenAndServe(ln, nil)
	t.Cleanup(func() { _ = ln.Close() })

	clients := make([]*Client, nClients)
	for i := range clients {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = conn.Close() })
		clients[i] = NewClient(conn, fmt.Sprintf("phone-batch-%d", i))
		clients[i].SetTimeout(5 * time.Second)
		if err := clients[i].Hello(starts[i]); err != nil {
			t.Fatalf("hello %d: %v", i, err)
		}
	}
	got := make([][]*Result, nClients)
	for i := range got {
		got[i] = make([]*Result, epochs)
	}
	phase := func(lo, hi int) {
		var wg sync.WaitGroup
		errs := make(chan error, nClients)
		for i := range clients {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				for k := lo; k < hi; k++ {
					res, err := clients[i].Localize(walks[i][k])
					if err != nil {
						errs <- fmt.Errorf("client %d epoch %d: %w", i, k, err)
						return
					}
					got[i][k] = res
				}
			}(i)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
	}
	phase(0, swapAt)
	if err := batStore.Submit(survey); err != nil {
		t.Fatal(err)
	}
	batStore.Rebuild()
	phase(swapAt, epochs)

	for i := range want {
		for k := range want[i] {
			if *got[i][k] != *want[i][k] {
				t.Errorf("client %d epoch %d: batched %+v != unbatched %+v", i, k, got[i][k], want[i][k])
			}
		}
	}

	st := srv.Stats()
	if st.Batches == 0 {
		t.Error("scheduler ran no batches — the batched path was never exercised")
	}
	if st.BatchedEpochs != int64(nClients*epochs) {
		t.Errorf("BatchedEpochs = %d, want %d (every epoch must go through the scheduler)",
			st.BatchedEpochs, nClients*epochs)
	}
}

// TestWalkSurvivesFaultyLinkBatched is the chaos variant of
// TestWalkSurvivesFaultyLink with the batch scheduler on: drops,
// truncations and corruption under reconnect must not wedge the batch
// loop or leak a non-finite result, and v4 reconnects resume the
// parked session rather than double-stepping it.
func TestWalkSurvivesFaultyLinkBatched(t *testing.T) {
	reg := telemetry.NewRegistry()
	factory, w, store := sharedStoreWorld(t, reg)
	cfg := ServerConfig{
		Factory:      factory,
		EpochTimeout: 2 * time.Second,
		BatchTick:    300 * time.Microsecond,
		BatchStores:  map[byte]*mapstore.Store{MapWiFi: store},
	}
	start, snaps := corridorWalk(w, 2, 3, 40)

	ls := startLiveServer(t, "127.0.0.1:0", cfg)
	defer func() { ls.kill() }()
	addr := ls.ln.Addr().String()

	var dialSeq int64
	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		dialSeq++
		return faultinject.WrapConn(conn, faultinject.ConnConfig{
			Seed: 300 + dialSeq, DropProb: 0.01, TruncateProb: 0.01, CorruptProb: 0.01,
		}), nil
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn, "phone-chaos-batched")
	client.SetTimeout(time.Second)
	client.SetReconnect(dial, Backoff{Min: 2 * time.Millisecond, Max: 50 * time.Millisecond, Attempts: 25, Seed: 11})
	defer func() { _ = client.Close() }()

	if err := client.Hello(start); err != nil {
		t.Fatalf("hello: %v", err)
	}
	for i, snap := range snaps {
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("epoch %d died despite reconnect: %v", i, err)
		}
		if math.IsNaN(res.X) || math.IsNaN(res.Y) || math.IsInf(res.X, 0) || math.IsInf(res.Y, 0) {
			t.Fatalf("epoch %d: non-finite result through faulty link", i)
		}
	}
	if client.Epochs() != len(snaps) {
		t.Errorf("epochs = %d, want %d", client.Epochs(), len(snaps))
	}
}
