package offload

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"time"

	"repro/internal/geo"
	"repro/internal/rf"
	"repro/internal/sensing"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// ErrRejected reports that the server refused the session handshake;
// the wrapped message carries the server's reason.
var ErrRejected = errors.New("offload: session rejected")

// Backoff tunes the client's reconnect schedule: capped exponential
// backoff with deterministic jitter. The zero value picks sane
// defaults (10ms..2s, 5 attempts).
type Backoff struct {
	Min      time.Duration // first retry delay (default 10ms)
	Max      time.Duration // delay cap (default 2s)
	Attempts int           // reconnect attempts per operation (default 5)
	Seed     int64         // jitter stream seed — fixed seed, fixed schedule
}

func (b Backoff) min() time.Duration {
	if b.Min <= 0 {
		return 10 * time.Millisecond
	}
	return b.Min
}

func (b Backoff) max() time.Duration {
	if b.Max <= 0 {
		return 2 * time.Second
	}
	return b.Max
}

func (b Backoff) attempts() int {
	if b.Attempts <= 0 {
		return 5
	}
	return b.Attempts
}

// clientMetrics are the phone-side robustness instruments. All nil —
// and therefore free — without a registry.
type clientMetrics struct {
	reconnects       *telemetry.Counter
	deadlineTimeouts *telemetry.Counter
}

// Client is the phone side of the offloading protocol: it opens a
// session with a hello frame, uploads one epoch's pre-processed sensor
// data at a time, and receives the fused position. With a dialer
// attached (SetReconnect) it survives server restarts: a failed epoch
// triggers capped-exponential-backoff reconnects, a fresh handshake
// that preserves the client ID, and a retry of the epoch.
type Client struct {
	conn net.Conn

	clientID  string
	sessionID uint32
	helloed   bool
	proto     byte // negotiated protocol version (maxProto before Hello)
	maxProto  byte // highest version this client offers (ProtocolVersion by default)

	timeout time.Duration            // per-frame read/write deadline (0 = none)
	dial    func() (net.Conn, error) // nil = no reconnect
	backoff Backoff
	rnd     *rand.Rand // jitter stream; non-nil iff dial is set

	start    geo.Point // handshake start, replayed on reconnect
	hasStart bool
	lastPos  geo.Point // last served position: the reconnect handshake resumes here
	hasPos   bool

	seq uint32 // per-session epoch sequence number (v4); 0 = none sent

	bytesUp    int
	bytesDown  int
	epochs     int
	reconnects int
	resumes    int

	met clientMetrics

	tracer  *trace.Tracer     // nil = tracing off
	curSpan trace.SpanContext // in-flight epoch span, embedded in v5 context frames
}

// NewClient wraps an established connection to the server. The
// optional clientID labels this phone in the server's per-session
// stats.
func NewClient(conn net.Conn, clientID ...string) *Client {
	c := &Client{conn: conn, proto: ProtocolVersion, maxProto: ProtocolVersion}
	if len(clientID) > 0 {
		c.clientID = clientID[0]
	}
	return c
}

// SetMaxProtocol caps the version this client offers in its hello, for
// tests and staged rollouts: a client capped at v3 behaves exactly
// like a real v3 build — no sequence numbers resumed, no trace bytes,
// surveys allowed. Call before Hello; versions below the v2 handshake
// floor or above ProtocolVersion are clamped.
func (c *Client) SetMaxProtocol(v byte) {
	if v < ProtocolV2 {
		v = ProtocolV2
	}
	if v > ProtocolVersion {
		v = ProtocolVersion
	}
	c.maxProto = v
	if !c.helloed {
		c.proto = v
	}
}

// SetTimeout bounds every protocol read and write: Localize and Hello
// fail with a timeout error instead of blocking forever on a stalled
// or half-dead server. 0 disables deadlines (the old behavior).
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// SetReconnect arms automatic reconnection: when an epoch fails on a
// transport or protocol error, the client redials via dial with capped
// exponential backoff plus jitter, re-handshakes under the same client
// ID (resuming at the last served position), and retries the epoch.
// Rejections (ErrRejected) are never retried — the server said no.
func (c *Client) SetReconnect(dial func() (net.Conn, error), bo Backoff) {
	c.dial = dial
	c.backoff = bo
	c.rnd = rand.New(rand.NewSource(bo.Seed))
}

// SetMetrics registers the client's robustness counters
// (offload_reconnects_total, deadline_timeouts_total) on reg. Pass the
// registry before the first operation.
func (c *Client) SetMetrics(reg *telemetry.Registry) {
	c.met = clientMetrics{
		reconnects:       reg.Counter("offload_reconnects_total", "successful client reconnects after a failed epoch"),
		deadlineTimeouts: reg.Counter("deadline_timeouts_total", "protocol reads/writes that hit their deadline"),
	}
}

// SetTracer attaches a span tracer: every Localize call becomes one
// "client.epoch" root span whose context travels to the server in the
// v5 context frame, so the server's frame, batch, and per-scheme spans
// join the same trace tree. Nil (the default) disables tracing at zero
// cost. When the handshake negotiates a pre-v5 session, spans are
// still recorded locally but no trace bytes are sent.
func (c *Client) SetTracer(t *trace.Tracer) { c.tracer = t }

// Proto returns the negotiated protocol version (ProtocolVersion
// before Hello completes).
func (c *Client) Proto() byte { return c.proto }

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// BytesUp returns the total bytes uploaded (including framing).
func (c *Client) BytesUp() int { return c.bytesUp }

// BytesDown returns the total bytes downloaded (including framing).
func (c *Client) BytesDown() int { return c.bytesDown }

// Epochs returns the number of epochs localized.
func (c *Client) Epochs() int { return c.epochs }

// Reconnects returns how many times the client has successfully
// re-established and re-handshaken its session.
func (c *Client) Reconnects() int { return c.reconnects }

// Resumes returns how many re-handshakes the server answered with
// Welcome.Resumed — reconnects that re-attached the server-side
// session instead of opening a fresh one (v4).
func (c *Client) Resumes() int { return c.resumes }

// SessionID returns the server-assigned session ID (0 before Hello).
func (c *Client) SessionID() uint32 { return c.sessionID }

// armRead applies the read deadline, if one is configured.
func (c *Client) armRead() {
	if c.timeout > 0 {
		_ = c.conn.SetReadDeadline(time.Now().Add(c.timeout))
	}
}

// armWrite applies the write deadline, if one is configured.
func (c *Client) armWrite() {
	if c.timeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.timeout))
	}
}

// noteTimeout counts deadline hits.
func (c *Client) noteTimeout(err error) {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		c.met.deadlineTimeouts.Inc()
	}
}

// Hello performs the session handshake: it announces the protocol
// version and the walk's starting position, and waits for the server's
// welcome. It returns ErrRejected (with the server's reason) when the
// server refuses the session, e.g. at its session limit.
func (c *Client) Hello(start geo.Point) error {
	if c.helloed {
		return fmt.Errorf("%w: hello already sent", ErrProtocol)
	}
	c.start, c.hasStart = start, true
	h := &Hello{Version: c.maxProto, StartX: start.X, StartY: start.Y, ClientID: c.clientID}
	c.armWrite()
	n, err := WriteFrame(c.conn, MsgHello, EncodeHello(h))
	c.bytesUp += n
	if err != nil {
		c.noteTimeout(err)
		return err
	}
	c.armRead()
	t, payload, err := ReadFrame(c.conn)
	if err != nil {
		c.noteTimeout(err)
		return err
	}
	c.bytesDown += 3 + len(payload)
	if t != MsgWelcome {
		return fmt.Errorf("%w: expected welcome, got type %d", ErrProtocol, t)
	}
	w, err := DecodeWelcome(payload)
	if err != nil {
		return err
	}
	if !w.OK {
		return fmt.Errorf("%w: %s", ErrRejected, w.Reason)
	}
	// The welcome carries the server's negotiated version; min with our
	// own guards against a server echoing a version we never offered.
	c.proto = Negotiate(c.maxProto, w.Version)
	c.sessionID = w.SessionID
	c.helloed = true
	if w.Resumed {
		c.resumes++
	}
	return nil
}

// Localize uploads one snapshot and returns the server's result. The
// inertial step travels as the paper's 4-byte intermediate result; the
// GNSS fix is uploaded only when it meets the reliability criterion
// (§IV-C). If Hello has not been called, a handshake starting at the
// map origin is performed first. With SetReconnect armed, a failed
// epoch is retried across reconnects before the error is surfaced.
func (c *Client) Localize(snap *sensing.Snapshot) (*Result, error) {
	if !c.helloed {
		if err := c.Hello(c.resumePoint()); err != nil {
			return nil, err
		}
	}
	// One sequence number per logical epoch, shared by every retry of
	// it: when a reconnect re-attaches the server session, a re-sent
	// epoch whose result was already computed is answered from the
	// server's per-seq cache instead of being re-stepped.
	c.seq++
	// One root span per logical epoch too: retries of the same epoch
	// carry the same span context, so a replayed result lands in the
	// same trace as the upload that produced it.
	span := c.tracer.Start("client.epoch", trace.SpanContext{})
	if span.Recording() {
		span.SetSession(c.clientID)
		span.Attr("epoch", snap.Epoch)
		span.Attr("seq", c.seq)
		c.curSpan = span.Context()
	}
	res, err := c.localizeOnce(snap)
	if err != nil && c.dial != nil && !errors.Is(err, ErrRejected) {
		res, err = c.retryEpoch(snap, err)
	}
	if span.Recording() {
		span.Attr("ok", err == nil)
		span.End()
		c.curSpan = trace.SpanContext{}
	}
	return res, err
}

// retryEpoch drives the reconnect loop for one failed epoch: capped
// exponential backoff with jitter, redial, re-handshake under the same
// client ID at the last served position, retry. The original failure
// is wrapped into the terminal error when every attempt is exhausted.
func (c *Client) retryEpoch(snap *sensing.Snapshot, firstErr error) (*Result, error) {
	lastErr := firstErr
	delay := c.backoff.min()
	for attempt := 0; attempt < c.backoff.attempts(); attempt++ {
		// Full jitter on top of the exponential floor: sleep in
		// [delay/2, delay). Deterministic under the configured seed.
		sleep := delay/2 + time.Duration(c.rnd.Int63n(int64(delay/2)+1))
		time.Sleep(sleep)
		if delay *= 2; delay > c.backoff.max() {
			delay = c.backoff.max()
		}

		conn, err := c.dial()
		if err != nil {
			lastErr = err
			continue
		}
		_ = c.conn.Close() // drop the dead conn; ignore its error
		c.conn = conn
		c.helloed = false
		c.sessionID = 0
		if err := c.Hello(c.resumePoint()); err != nil {
			if errors.Is(err, ErrRejected) {
				return nil, err
			}
			lastErr = err
			continue
		}
		c.reconnects++
		c.met.reconnects.Inc()
		res, err := c.localizeOnce(snap)
		if err == nil {
			return res, nil
		}
		if errors.Is(err, ErrRejected) {
			return nil, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("offload: epoch failed after %d reconnect attempts: %w", c.backoff.attempts(), lastErr)
}

// resumePoint is where a (re)handshake starts the server-side
// framework when the server opens a fresh session: the last served
// position when one exists (the walk is mid-flight), else the original
// start, else the map origin. A v4 server that still holds the
// detached session ignores this and resumes the framework exactly
// where it left off — restarting at lastPos (plus re-stepping the
// in-flight epoch) is the double-advance bug the sequence numbers
// close.
func (c *Client) resumePoint() geo.Point {
	if c.hasPos {
		return c.lastPos
	}
	if c.hasStart {
		return c.start
	}
	return geo.Pt(0, 0)
}

// localizeOnce runs one epoch exchange over the current connection.
func (c *Client) localizeOnce(snap *sensing.Snapshot) (*Result, error) {
	write := func(t MsgType, payload []byte) error {
		c.armWrite()
		n, err := WriteFrame(c.conn, t, payload)
		c.bytesUp += n
		if err != nil {
			c.noteTimeout(err)
		}
		return err
	}
	if snap.Step != nil {
		if err := write(MsgStepUpdate, EncodeStep(snap.Step)); err != nil {
			return nil, err
		}
	}
	if len(snap.WiFi) > 0 {
		if err := write(MsgWiFiVector, EncodeVector(snap.WiFi)); err != nil {
			return nil, err
		}
	}
	if len(snap.Cell) > 0 {
		if err := write(MsgCellVector, EncodeVector(snap.Cell)); err != nil {
			return nil, err
		}
	}
	if snap.GNSS.Reliable() {
		if err := write(MsgGNSSFix, EncodeFix(snap.GNSS)); err != nil {
			return nil, err
		}
	}
	if snap.Landmark != nil {
		if err := write(MsgLandmark, EncodeLandmark(snap.Landmark)); err != nil {
			return nil, err
		}
	}
	ctxPayload := EncodeContextSeq(snap, c.seq)
	if c.curSpan.Valid() && Features(c.proto).Trace {
		// v5 negotiated: ship the epoch span's context so server-side
		// spans join this trace. Pre-v5 sessions get the plain header —
		// the feature gate, not the tracer, decides the wire bytes.
		ctxPayload = EncodeContextTrace(snap, c.seq, c.curSpan)
	}
	if err := write(MsgContext, ctxPayload); err != nil {
		return nil, err
	}
	if err := write(MsgEpochEnd, nil); err != nil {
		return nil, err
	}

	c.armRead()
	t, payload, err := ReadFrame(c.conn)
	if err != nil {
		c.noteTimeout(err)
		return nil, err
	}
	c.bytesDown += 3 + len(payload)
	if t != MsgResult {
		return nil, fmt.Errorf("%w: expected result, got type %d", ErrProtocol, t)
	}
	res, err := DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	c.epochs++
	c.lastPos, c.hasPos = res.Pos(), true
	return res, nil
}

// SubmitSurvey contributes one crowdsourced survey point (a full RSSI
// scan at a known position) to the server's shared radio map
// (protocol v3). The frame is fire-and-forget: the server folds the
// point into its map store at the next compaction and sends no
// acknowledgment, so a submission costs one upload and no round trip.
// mapID is MapWiFi or MapCellular.
func (c *Client) SubmitSurvey(mapID byte, pos geo.Point, vec rf.Vector) error {
	if !c.helloed {
		if err := c.Hello(c.resumePoint()); err != nil {
			return err
		}
	}
	if !Features(c.proto).Surveys {
		// A v2 session has no MsgSurvey; sending one anyway would kill
		// the epoch stream server-side with a protocol error.
		return fmt.Errorf("%w: surveys need protocol v%d, session is v%d", ErrProtocol, ProtocolV3, c.proto)
	}
	s := &Survey{Map: mapID, X: pos.X, Y: pos.Y, Vec: vec}
	c.armWrite()
	n, err := WriteFrame(c.conn, MsgSurvey, EncodeSurvey(s))
	c.bytesUp += n
	if err != nil {
		c.noteTimeout(err)
	}
	return err
}

// Pos converts a result into a local-map point.
func (r *Result) Pos() geo.Point { return geo.Pt(r.X, r.Y) }

// BestPos converts a result's UniLoc1 output into a local-map point.
func (r *Result) BestPos() geo.Point { return geo.Pt(r.BestX, r.BestY) }
