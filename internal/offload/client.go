package offload

import (
	"fmt"
	"net"

	"repro/internal/geo"
	"repro/internal/sensing"
)

// Client is the phone side of the offloading protocol: it uploads one
// epoch's pre-processed sensor data and receives the fused position.
type Client struct {
	conn net.Conn

	bytesUp   int
	bytesDown int
	epochs    int
}

// NewClient wraps an established connection to the server.
func NewClient(conn net.Conn) *Client { return &Client{conn: conn} }

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// BytesUp returns the total bytes uploaded (including framing).
func (c *Client) BytesUp() int { return c.bytesUp }

// BytesDown returns the total bytes downloaded (including framing).
func (c *Client) BytesDown() int { return c.bytesDown }

// Epochs returns the number of epochs localized.
func (c *Client) Epochs() int { return c.epochs }

// Localize uploads one snapshot and returns the server's result. The
// inertial step travels as the paper's 4-byte intermediate result; the
// GNSS fix is uploaded only when it meets the reliability criterion
// (§IV-C).
func (c *Client) Localize(snap *sensing.Snapshot) (*Result, error) {
	write := func(t MsgType, payload []byte) error {
		n, err := WriteFrame(c.conn, t, payload)
		c.bytesUp += n
		return err
	}
	if snap.Step != nil {
		if err := write(MsgStepUpdate, EncodeStep(snap.Step)); err != nil {
			return nil, err
		}
	}
	if len(snap.WiFi) > 0 {
		if err := write(MsgWiFiVector, EncodeVector(snap.WiFi)); err != nil {
			return nil, err
		}
	}
	if len(snap.Cell) > 0 {
		if err := write(MsgCellVector, EncodeVector(snap.Cell)); err != nil {
			return nil, err
		}
	}
	if snap.GNSS.Reliable() {
		if err := write(MsgGNSSFix, EncodeFix(snap.GNSS)); err != nil {
			return nil, err
		}
	}
	if snap.Landmark != nil {
		if err := write(MsgLandmark, EncodeLandmark(snap.Landmark)); err != nil {
			return nil, err
		}
	}
	if err := write(MsgContext, EncodeContext(snap)); err != nil {
		return nil, err
	}
	if err := write(MsgEpochEnd, nil); err != nil {
		return nil, err
	}

	t, payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	c.bytesDown += 3 + len(payload)
	if t != MsgResult {
		return nil, fmt.Errorf("%w: expected result, got type %d", ErrProtocol, t)
	}
	res, err := DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	c.epochs++
	return res, nil
}

// Pos converts a result into a local-map point.
func (r *Result) Pos() geo.Point { return geo.Pt(r.X, r.Y) }

// BestPos converts a result's UniLoc1 output into a local-map point.
func (r *Result) BestPos() geo.Point { return geo.Pt(r.BestX, r.BestY) }
