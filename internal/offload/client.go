package offload

import (
	"errors"
	"fmt"
	"net"

	"repro/internal/geo"
	"repro/internal/rf"
	"repro/internal/sensing"
)

// ErrRejected reports that the server refused the session handshake;
// the wrapped message carries the server's reason.
var ErrRejected = errors.New("offload: session rejected")

// Client is the phone side of the offloading protocol: it opens a
// session with a hello frame, uploads one epoch's pre-processed sensor
// data at a time, and receives the fused position.
type Client struct {
	conn net.Conn

	clientID  string
	sessionID uint32
	helloed   bool

	bytesUp   int
	bytesDown int
	epochs    int
}

// NewClient wraps an established connection to the server. The
// optional clientID labels this phone in the server's per-session
// stats.
func NewClient(conn net.Conn, clientID ...string) *Client {
	c := &Client{conn: conn}
	if len(clientID) > 0 {
		c.clientID = clientID[0]
	}
	return c
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// BytesUp returns the total bytes uploaded (including framing).
func (c *Client) BytesUp() int { return c.bytesUp }

// BytesDown returns the total bytes downloaded (including framing).
func (c *Client) BytesDown() int { return c.bytesDown }

// Epochs returns the number of epochs localized.
func (c *Client) Epochs() int { return c.epochs }

// SessionID returns the server-assigned session ID (0 before Hello).
func (c *Client) SessionID() uint32 { return c.sessionID }

// Hello performs the session handshake: it announces the protocol
// version and the walk's starting position, and waits for the server's
// welcome. It returns ErrRejected (with the server's reason) when the
// server refuses the session, e.g. at its session limit.
func (c *Client) Hello(start geo.Point) error {
	if c.helloed {
		return fmt.Errorf("%w: hello already sent", ErrProtocol)
	}
	h := &Hello{Version: ProtocolVersion, StartX: start.X, StartY: start.Y, ClientID: c.clientID}
	n, err := WriteFrame(c.conn, MsgHello, EncodeHello(h))
	c.bytesUp += n
	if err != nil {
		return err
	}
	t, payload, err := ReadFrame(c.conn)
	if err != nil {
		return err
	}
	c.bytesDown += 3 + len(payload)
	if t != MsgWelcome {
		return fmt.Errorf("%w: expected welcome, got type %d", ErrProtocol, t)
	}
	w, err := DecodeWelcome(payload)
	if err != nil {
		return err
	}
	if !w.OK {
		return fmt.Errorf("%w: %s", ErrRejected, w.Reason)
	}
	c.sessionID = w.SessionID
	c.helloed = true
	return nil
}

// Localize uploads one snapshot and returns the server's result. The
// inertial step travels as the paper's 4-byte intermediate result; the
// GNSS fix is uploaded only when it meets the reliability criterion
// (§IV-C). If Hello has not been called, a handshake starting at the
// map origin is performed first.
func (c *Client) Localize(snap *sensing.Snapshot) (*Result, error) {
	if !c.helloed {
		if err := c.Hello(geo.Pt(0, 0)); err != nil {
			return nil, err
		}
	}
	write := func(t MsgType, payload []byte) error {
		n, err := WriteFrame(c.conn, t, payload)
		c.bytesUp += n
		return err
	}
	if snap.Step != nil {
		if err := write(MsgStepUpdate, EncodeStep(snap.Step)); err != nil {
			return nil, err
		}
	}
	if len(snap.WiFi) > 0 {
		if err := write(MsgWiFiVector, EncodeVector(snap.WiFi)); err != nil {
			return nil, err
		}
	}
	if len(snap.Cell) > 0 {
		if err := write(MsgCellVector, EncodeVector(snap.Cell)); err != nil {
			return nil, err
		}
	}
	if snap.GNSS.Reliable() {
		if err := write(MsgGNSSFix, EncodeFix(snap.GNSS)); err != nil {
			return nil, err
		}
	}
	if snap.Landmark != nil {
		if err := write(MsgLandmark, EncodeLandmark(snap.Landmark)); err != nil {
			return nil, err
		}
	}
	if err := write(MsgContext, EncodeContext(snap)); err != nil {
		return nil, err
	}
	if err := write(MsgEpochEnd, nil); err != nil {
		return nil, err
	}

	t, payload, err := ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	c.bytesDown += 3 + len(payload)
	if t != MsgResult {
		return nil, fmt.Errorf("%w: expected result, got type %d", ErrProtocol, t)
	}
	res, err := DecodeResult(payload)
	if err != nil {
		return nil, err
	}
	c.epochs++
	return res, nil
}

// SubmitSurvey contributes one crowdsourced survey point (a full RSSI
// scan at a known position) to the server's shared radio map
// (protocol v3). The frame is fire-and-forget: the server folds the
// point into its map store at the next compaction and sends no
// acknowledgment, so a submission costs one upload and no round trip.
// mapID is MapWiFi or MapCellular.
func (c *Client) SubmitSurvey(mapID byte, pos geo.Point, vec rf.Vector) error {
	if !c.helloed {
		if err := c.Hello(geo.Pt(0, 0)); err != nil {
			return err
		}
	}
	s := &Survey{Map: mapID, X: pos.X, Y: pos.Y, Vec: vec}
	n, err := WriteFrame(c.conn, MsgSurvey, EncodeSurvey(s))
	c.bytesUp += n
	return err
}

// Pos converts a result into a local-map point.
func (r *Result) Pos() geo.Point { return geo.Pt(r.X, r.Y) }

// BestPos converts a result's UniLoc1 output into a local-map point.
func (r *Result) BestPos() geo.Point { return geo.Pt(r.BestX, r.BestY) }
