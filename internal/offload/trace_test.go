package offload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sensing"
	"repro/internal/telemetry/trace"
)

func TestFeaturesTable(t *testing.T) {
	for _, tc := range []struct {
		v    byte
		want VersionFeatures
	}{
		{ProtocolV2, VersionFeatures{}},
		{ProtocolV3, VersionFeatures{Surveys: true}},
		{ProtocolV4, VersionFeatures{Surveys: true, Resume: true}},
		{ProtocolV5, VersionFeatures{Surveys: true, Resume: true, Trace: true}},
		{ProtocolV5 + 1, VersionFeatures{Surveys: true, Resume: true, Trace: true}},
	} {
		if got := Features(tc.v); got != tc.want {
			t.Errorf("Features(%d) = %+v, want %+v", tc.v, got, tc.want)
		}
	}
}

func TestNegotiate(t *testing.T) {
	for _, tc := range []struct {
		server, client, want byte
	}{
		{ProtocolV5, ProtocolV5, ProtocolV5},
		{ProtocolV5, ProtocolV4, ProtocolV4},     // old client keeps old semantics
		{ProtocolV4, ProtocolV5, ProtocolV4},     // old server wins too
		{ProtocolV5, ProtocolV5 + 3, ProtocolV5}, // future client runs at our max
		{ProtocolV5, 0, ProtocolV2},              // nonsense pins to the handshake floor
		{ProtocolV2, ProtocolV5, ProtocolV2},
	} {
		if got := Negotiate(tc.server, tc.client); got != tc.want {
			t.Errorf("Negotiate(%d, %d) = %d, want %d", tc.server, tc.client, got, tc.want)
		}
	}
}

func TestContextTraceCodec(t *testing.T) {
	tr := trace.New(trace.Config{Seed: 3})
	tctx := trace.SpanContext{Trace: tr.NewTraceID(), Span: tr.NewSpanID()}
	snap := &sensing.Snapshot{Epoch: 77, LightLux: 120, MagVarUT: 1.5, GPSEnabled: true}

	b := EncodeContextTrace(snap, 9, tctx)
	if len(b) != 17+trace.ContextBytes {
		t.Fatalf("v5 context = %d bytes, want %d", len(b), 17+trace.ContextBytes)
	}
	s, seq, back, err := DecodeContextFull(b)
	if err != nil {
		t.Fatal(err)
	}
	if s.Epoch != 77 || !s.GPSEnabled || seq != 9 {
		t.Errorf("decoded snap = %+v seq = %d", s, seq)
	}
	if back != tctx {
		t.Errorf("trace context = %+v, want %+v", back, tctx)
	}

	// A zero context still travels (frame length versions the header)
	// but decodes back to "no trace".
	s, seq, back, err = DecodeContextFull(EncodeContextTrace(snap, 9, trace.SpanContext{}))
	if err != nil || back.Valid() {
		t.Errorf("zero context: %+v %v", back, err)
	}
	if s.Epoch != 77 || seq != 9 {
		t.Errorf("zero context snap/seq = %+v %d", s, seq)
	}

	// v4 (17-byte) and v3 (13-byte) headers keep decoding.
	s, seq, back, err = DecodeContextFull(EncodeContextSeq(snap, 5))
	if err != nil || seq != 5 || back.Valid() || s.Epoch != 77 {
		t.Errorf("v4 header: %+v %d %+v %v", s, seq, back, err)
	}
	s, seq, back, err = DecodeContextFull(EncodeContextSeq(snap, 0)[:13])
	if err != nil || seq != 0 || back.Valid() || s.Epoch != 77 {
		t.Errorf("v3 header: %+v %d %+v %v", s, seq, back, err)
	}
	if _, _, _, err := DecodeContextFull(make([]byte, 20)); err == nil {
		t.Error("odd-length context must fail")
	}
}

// waitForSpans polls until the tracer's ring holds at least want spans
// named name. The server ends its frame span after the result write,
// so the last epoch's record lands in the ring slightly after the
// client's Localize returns.
func waitForSpans(t *testing.T, tr *trace.Tracer, name string, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		n := 0
		for _, r := range tr.Snapshot() {
			if r.Name == name {
				n++
			}
		}
		if n >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out: %d %q spans, want %d", n, name, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestV5ClientV4ServerDowngrade pins satellite 6's compatibility
// contract: a v5 client against a server capped at v4 negotiates the
// session down, sends no trace bytes, and every v4 behavior (resume
// seq numbers included) keeps working.
func TestV5ClientV4ServerDowngrade(t *testing.T) {
	factory, w := offloadWorld(t)
	srvTracer := trace.New(trace.Config{Seed: 21})
	srv := newTestServer(t, ServerConfig{
		Factory:     factory,
		MaxProtocol: ProtocolV4,
		Tracer:      srvTracer,
	})
	client := pipeClient(t, srv)
	client.SetTracer(trace.New(trace.Config{Seed: 22}))

	start, snaps := corridorWalk(w, 2, 3, 8)
	results := runWalk(t, client, start, snaps)
	if len(results) != 8 || !results[len(results)-1].OK {
		t.Fatalf("walk failed under downgrade: %+v", results[len(results)-1])
	}
	if client.Proto() != ProtocolV4 {
		t.Fatalf("client proto = %d, want %d", client.Proto(), ProtocolV4)
	}

	// The server still traces its own frames, but none of them joined a
	// client trace — the v4 session carried no span context.
	waitForSpans(t, srvTracer, "server.frame", 8)
	frames := 0
	for _, r := range srvTracer.Snapshot() {
		if r.Name != "server.frame" {
			continue
		}
		frames++
		if r.Parent != "" {
			t.Errorf("v4 session frame span has remote parent %q", r.Parent)
		}
	}
	if frames != 8 {
		t.Errorf("server traced %d frames, want 8", frames)
	}
}

// TestEndToEndTraceSmoke is the acceptance walk: tracing on across
// client, server, and batch scheduler must yield complete span trees —
// client.epoch → server.frame → {server.read, server.queue, step →
// scheme.*, server.write} — with the frame's children explaining the
// bulk of its latency. CI runs this by name.
func TestEndToEndTraceSmoke(t *testing.T) {
	factory, w := offloadWorld(t)
	// One shared tracer stands in for client and server exporting into
	// the same backend, so Assemble sees whole trees.
	tracer := trace.New(trace.Config{Seed: 31})
	srv := newTestServer(t, ServerConfig{
		Factory:      factory,
		Tracer:       tracer,
		BatchTick:    2 * time.Millisecond,
		BatchWorkers: 1,
	})
	client := pipeClient(t, srv)
	client.SetTracer(tracer)

	const epochs = 12
	start, snaps := corridorWalk(w, 2, 3, epochs)
	runWalk(t, client, start, snaps)
	waitForSpans(t, tracer, "server.frame", epochs)

	trees := trace.Assemble(tracer.Snapshot())
	var complete int
	var frameDur, frameChild int64
	for _, tr := range trees {
		if !tr.Complete() || tr.Root.Name != "client.epoch" {
			continue
		}
		complete++
		names := map[string]*trace.Record{}
		schemes := 0
		for _, s := range tr.Spans {
			names[s.Name] = s
			if strings.HasPrefix(s.Name, "scheme.") {
				schemes++
			}
		}
		frame := names["server.frame"]
		if frame == nil {
			t.Fatalf("trace %s has no server.frame span: %+v", tr.Trace, tr.Spans)
		}
		if frame.Parent != tr.Root.Span {
			t.Errorf("frame span parent = %q, want client root %q", frame.Parent, tr.Root.Span)
		}
		for _, want := range []string{"server.read", "server.queue", "step", "server.write", "classify", "combine"} {
			if names[want] == nil {
				t.Errorf("trace %s missing %q span", tr.Trace, want)
			}
		}
		if schemes == 0 {
			t.Errorf("trace %s has no scheme spans", tr.Trace)
		}
		if step := names["step"]; step != nil {
			var hasTick bool
			for _, a := range step.Attrs {
				if a.K == "batch_tick" {
					hasTick = true
				}
			}
			if !hasTick {
				t.Errorf("trace %s step span missing batch_tick link attr", tr.Trace)
			}
		}
		cov := trace.CriticalPath(tr, frame)
		frameDur += frame.DurNS
		frameChild += cov.ChildNS
	}
	if complete != epochs {
		t.Fatalf("complete client-rooted traces = %d, want %d", complete, epochs)
	}
	// The acceptance bar: the frame's children (read, batch-queue wait,
	// step, write) must explain ≥90% of total frame latency. (The paper
	// target is 95%; 90% absorbs scheduling noise on tiny CI boxes —
	// every systematic gap would cost far more than 10%.)
	if frac := float64(frameChild) / float64(frameDur); frac < 0.9 {
		t.Errorf("frame critical-path coverage = %.3f, want >= 0.9", frac)
	}

	// batch.tick spans exist and carry the batch size.
	ticks := 0
	for _, r := range tracer.Snapshot() {
		if r.Name == "batch.tick" {
			ticks++
		}
	}
	if ticks == 0 {
		t.Error("no batch.tick spans recorded")
	}

	// The slowest frames surfaced as exemplars.
	cur, prev := tracer.Exemplars().Snapshot()
	if len(cur)+len(prev) == 0 {
		t.Error("no exemplars collected")
	}
}

// TestTraceOffServesIdentically is the zero-overhead sanity check: a
// server with no tracer must serve a v5 client (which sends no trace
// bytes without a tracer of its own) exactly as before.
func TestTraceOffServesIdentically(t *testing.T) {
	factory, w := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory})
	client := pipeClient(t, srv)
	start, snaps := corridorWalk(w, 2, 3, 6)
	results := runWalk(t, client, start, snaps)
	if len(results) != 6 || !results[len(results)-1].OK {
		t.Fatalf("tracer-off walk failed: %+v", results[len(results)-1])
	}
	if client.Proto() != ProtocolV5 {
		t.Errorf("proto = %d, want %d", client.Proto(), ProtocolV5)
	}
}
