package offload

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/sensing"
	"repro/internal/telemetry"
)

// ServerConfig configures a multi-session offload server.
type ServerConfig struct {
	// Factory builds one fresh framework per session. Required; must
	// be safe for concurrent use.
	Factory core.FrameworkFactory

	// MaxSessions caps concurrent sessions; further hellos are
	// rejected gracefully with a Welcome{OK: false}. 0 = unlimited.
	MaxSessions int

	// IdleTimeout evicts sessions with no served epoch for this long.
	// 0 = never evict.
	IdleTimeout time.Duration

	// Metrics receives the server's RED-style instruments (sessions
	// opened/closed/rejected/evicted, active-session gauge, epochs
	// served, frame bytes in/out, step-latency histogram,
	// connection-error counter). Nil disables exposition; the serving
	// path then pays only nil checks.
	Metrics *telemetry.Registry

	// MapStores routes MsgSurvey submissions (protocol v3) to the shared
	// radio-map stores, keyed by map ID (MapWiFi, MapCellular). Nil or
	// missing entries drop submissions (counted); the stores themselves
	// are shared with the Factory's schemes, so accepted points become
	// visible to every session at the next snapshot rebuild.
	MapStores map[byte]*mapstore.Store

	// StepWorkers fans every session's per-scheme work out to a
	// persistent worker pool of this size (core.WithParallel) so
	// multi-core servers cut per-epoch latency. <= 1 keeps sequential
	// scheme execution. Results are bit-identical either way.
	StepWorkers int

	// EpochTimeout bounds each session's protocol I/O: a session that
	// takes longer than this to deliver one epoch's frames (or to
	// accept its result) is closed, with deadline_timeouts_total
	// incremented — a stalled or half-dead client can no longer pin a
	// serving goroutine forever. It also bounds the handshake read.
	// 0 = no deadline.
	EpochTimeout time.Duration

	// BatchTick enables the batch-per-tick scheduler: ready epochs from
	// all sessions are collected for up to this long (a full batch
	// fires sooner), their shared fingerprint-distance columns are
	// precomputed once per unique observation against the pinned map
	// snapshots, and the sessions are stepped across a worker pool.
	// Results are bit-identical to per-connection stepping (see
	// scheduler). 0 keeps the per-connection step loop.
	BatchTick time.Duration

	// BatchWorkers sizes the batch scheduler's session-step worker
	// pool. <= 0 defaults to runtime.NumCPU().
	BatchWorkers int

	// BatchStores are the shared radio-map stores the scheduler
	// precomputes distance columns against, keyed like MapStores
	// (MapWiFi routes each epoch's WiFi scan, MapCellular its cell
	// scan). Nil falls back to MapStores; sessions whose schemes read
	// other maps simply miss the cache and compute locally.
	BatchStores map[byte]*mapstore.Store
}

// Server runs the UniLoc framework (all localization schemes, error
// prediction, and BMA) on behalf of phones. Each connection gets its
// own framework from the factory, so concurrent walks never share
// particle-filter, IODetector, or gating state — the paper's
// workstation similarly hosts the localization state per user (§IV-C).
type Server struct {
	mgr          *SessionManager
	stores       map[byte]*mapstore.Store
	epochTimeout time.Duration
	sched        *scheduler // nil: per-connection stepping
}

// NewServer builds a multi-session server from the config.
func NewServer(cfg ServerConfig) (*Server, error) {
	mgr, err := NewSessionManager(cfg.Factory, cfg.MaxSessions, cfg.IdleTimeout, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	mgr.SetStepWorkers(cfg.StepWorkers)
	s := &Server{mgr: mgr, stores: cfg.MapStores, epochTimeout: cfg.EpochTimeout}
	if cfg.BatchTick > 0 {
		batchStores := cfg.BatchStores
		if batchStores == nil {
			batchStores = cfg.MapStores
		}
		s.sched = newScheduler(cfg.BatchTick, cfg.BatchWorkers, batchStores, mgr)
	}
	return s, nil
}

// Close releases the server's background resources (the batch
// scheduler's goroutine, when batching is enabled). Serving goroutines
// that outlive Close fall back to inline stepping; results are
// unchanged. Idempotent.
func (s *Server) Close() {
	if s.sched != nil {
		s.sched.close()
	}
}

// Sessions exposes the server's session manager (stats, manual
// eviction).
func (s *Server) Sessions() *SessionManager { return s.mgr }

// Stats returns a snapshot of the server's session and epoch counters.
func (s *Server) Stats() Stats { return s.mgr.Stats() }

// handshake reads the client's hello and admits or rejects the
// session. A nil session with a nil error means the client was
// rejected gracefully.
func (s *Server) handshake(conn net.Conn) (*Session, error) {
	t, payload, err := ReadFrame(conn)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, nil // client went away before the handshake
		}
		return nil, err
	}
	if t != MsgHello {
		return nil, fmt.Errorf("%w: expected hello, got type %d", ErrProtocol, t)
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		return nil, err
	}
	if hello.Version > ProtocolVersion {
		reject := &Welcome{Version: ProtocolVersion, Reason: fmt.Sprintf("unsupported protocol version %d", hello.Version)}
		_, _ = WriteFrame(conn, MsgWelcome, EncodeWelcome(reject))
		return nil, fmt.Errorf("%w: client version %d > %d", ErrProtocol, hello.Version, ProtocolVersion)
	}
	if hello.Version >= 4 {
		// A v4 re-handshake under a known client ID re-attaches the
		// detached session: framework state and the per-seq result
		// cache survive the reconnect, so the hello's start position is
		// deliberately ignored — resetting there is exactly the replay
		// bug v4 fixes.
		if sess := s.mgr.Resume(hello.ClientID, conn); sess != nil {
			sess.proto = hello.Version
			welcome := &Welcome{Version: ProtocolVersion, OK: true, SessionID: sess.ID, Resumed: true}
			if _, err := WriteFrame(conn, MsgWelcome, EncodeWelcome(welcome)); err != nil {
				s.mgr.Detach(sess) // park again for the next attempt
				return nil, err
			}
			return sess, nil
		}
	}
	sess, err := s.mgr.Open(hello.ClientID, geo.Pt(hello.StartX, hello.StartY), conn)
	if err != nil {
		reject := &Welcome{Version: ProtocolVersion, Reason: err.Error()}
		_, _ = WriteFrame(conn, MsgWelcome, EncodeWelcome(reject))
		if errors.Is(err, ErrServerFull) {
			return nil, nil // graceful rejection, not a transport failure
		}
		return nil, err
	}
	sess.proto = hello.Version
	welcome := &Welcome{Version: ProtocolVersion, OK: true, SessionID: sess.ID}
	if _, err := WriteFrame(conn, MsgWelcome, EncodeWelcome(welcome)); err != nil {
		s.mgr.Close(sess)
		return nil, err
	}
	return sess, nil
}

// meteredConn counts every byte crossing a connection into the
// server's frame-byte counters (atomic adds; no-ops without a
// registry).
type meteredConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Serve processes one connection: session handshake, then epochs until
// EOF or error. It returns nil on clean shutdown (client closed the
// connection, graceful rejection, or idle eviction).
func (s *Server) Serve(conn net.Conn) error {
	err := s.serve(&meteredConn{Conn: conn, in: s.mgr.met.bytesIn, out: s.mgr.met.bytesOut})
	if err != nil {
		s.mgr.met.connErrors.Inc()
	}
	return err
}

// armDeadline applies the per-session epoch deadline, if configured.
func (s *Server) armDeadline(conn net.Conn) {
	if s.epochTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(s.epochTimeout))
	}
}

// isTimeout reports whether err is a deadline hit.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()
	s.armDeadline(conn) // the handshake is bounded too
	sess, err := s.handshake(conn)
	if err != nil || sess == nil {
		if err != nil && isTimeout(err) {
			s.mgr.noteDeadlineTimeout()
			return nil // stalled before handshake: quiet eviction
		}
		return err
	}
	detach := false
	defer func() {
		if detach {
			s.mgr.Detach(sess)
		} else {
			s.mgr.Close(sess)
		}
	}()
	// ioFail maps a mid-stream I/O failure to serve's return value:
	// evictions and deadline hits stay quiet closes, any other
	// transport/protocol failure parks a v4 session for seq-numbered
	// resume (Detach) instead of discarding its walk state.
	ioFail := func(err error) error {
		if sess.evicted.Load() {
			return nil // reaper closed the connection under us
		}
		if isTimeout(err) {
			// The client stalled mid-epoch: evict quietly, counted.
			s.mgr.noteDeadlineTimeout()
			return nil
		}
		if sess.proto >= 4 {
			detach = true
			return nil
		}
		return err
	}
	for {
		s.armDeadline(conn) // one deadline window per epoch exchange
		snap, seq, err := s.readEpoch(conn)
		if err == io.EOF {
			return nil // clean shutdown: the walk is over, no resume
		}
		if err != nil {
			return ioFail(err)
		}
		if sess.proto >= 4 && seq != 0 && seq == sess.lastSeq && sess.lastReply != nil {
			// Reconnect replay: the client re-sent an epoch whose result
			// was computed but lost in flight. Answer from the per-seq
			// cache — re-stepping would double-advance PDR/HMM state.
			s.mgr.noteReplay()
			if _, err := WriteFrame(conn, MsgResult, sess.lastReply); err != nil {
				return ioFail(err)
			}
			continue
		}
		var res core.StepResult
		var stepDur time.Duration
		if s.sched != nil {
			res, stepDur = s.sched.step(sess, snap)
		} else {
			t0 := time.Now()
			res = sess.fw.Step(snap)
			stepDur = time.Since(t0)
		}
		s.mgr.RecordEpoch(sess, stepDur)

		out := &Result{
			X: res.BMA.X, Y: res.BMA.Y,
			BestX: res.Best.X, BestY: res.Best.Y,
			Env: byte(res.Env),
			OK:  res.OK,
		}
		if res.BestIdx >= 0 {
			out.Selected = res.Schemes[res.BestIdx].Name
		}
		payload := EncodeResult(out)
		if sess.proto >= 4 && seq != 0 {
			sess.lastSeq, sess.lastReply = seq, payload
		}
		if _, err := WriteFrame(conn, MsgResult, payload); err != nil {
			return ioFail(err)
		}
	}
}

// readEpoch assembles one snapshot from frames up to MsgEpochEnd,
// returning the epoch's v4 sequence number (0 for v3 clients).
func (s *Server) readEpoch(r io.Reader) (*sensing.Snapshot, uint32, error) {
	snap := &sensing.Snapshot{}
	var seq uint32
	gotContext := false
	for {
		t, payload, err := ReadFrame(r)
		if err != nil {
			if err == io.EOF && !gotContext {
				return nil, 0, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				return nil, 0, io.EOF
			}
			return nil, 0, err
		}
		switch t {
		case MsgContext:
			ctx, sq, err := DecodeContextSeq(payload)
			if err != nil {
				return nil, 0, err
			}
			ctx.WiFi, ctx.Cell = snap.WiFi, snap.Cell
			ctx.Step, ctx.GNSS, ctx.Landmark = snap.Step, snap.GNSS, snap.Landmark
			snap = ctx
			seq = sq
			gotContext = true
		case MsgStepUpdate:
			step, err := DecodeStep(payload)
			if err != nil {
				return nil, 0, err
			}
			snap.Step = step
		case MsgWiFiVector:
			v, err := DecodeVector(payload)
			if err != nil {
				return nil, 0, err
			}
			snap.WiFi = v
		case MsgCellVector:
			v, err := DecodeVector(payload)
			if err != nil {
				return nil, 0, err
			}
			snap.Cell = v
		case MsgGNSSFix:
			f, err := DecodeFix(payload)
			if err != nil {
				return nil, 0, err
			}
			snap.GNSS = f
		case MsgLandmark:
			l, err := DecodeLandmark(payload)
			if err != nil {
				return nil, 0, err
			}
			snap.Landmark = l
		case MsgSurvey:
			sv, err := DecodeSurvey(payload)
			if err != nil {
				return nil, 0, err
			}
			s.ingestSurvey(sv)
		case MsgEpochEnd:
			if !gotContext {
				return nil, 0, fmt.Errorf("%w: epoch ended without context", ErrProtocol)
			}
			return snap, seq, nil
		default:
			return nil, 0, fmt.Errorf("%w: unexpected message type %d", ErrProtocol, t)
		}
	}
}

// ingestSurvey routes one crowdsourced survey point to its shared map
// store. Submissions for unknown maps, or with vectors the store deems
// unusable, are dropped and counted — never an error that would kill
// the session's epoch stream.
func (s *Server) ingestSurvey(sv *Survey) {
	st := s.stores[sv.Map]
	if st == nil {
		s.mgr.met.surveysDropped.Inc()
		return
	}
	fp := fingerprint.Fingerprint{Pos: geo.Pt(sv.X, sv.Y), Vec: sv.Vec}
	if err := st.Submit(fp); err != nil {
		s.mgr.met.surveysDropped.Inc()
		return
	}
	s.mgr.met.surveysIngested.Inc()
}

// Accept-loop backoff bounds for transient Accept errors.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// ListenAndServe accepts connections on ln and serves each in its own
// goroutine until the listener is closed. Transient Accept errors
// (e.g. EMFILE, ECONNABORTED) are retried with capped exponential
// backoff instead of killing the server. Connection-level errors are
// reported through errf (may be nil). If an idle timeout is
// configured, a reaper goroutine evicts quiet sessions while the loop
// runs.
func (s *Server) ListenAndServe(ln net.Listener, errf func(error)) {
	stopReaper := s.startReaper()
	defer stopReaper()

	var wg sync.WaitGroup
	backoff := acceptBackoffMin
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				break
			}
			if errf != nil {
				errf(fmt.Errorf("offload: accept: %w (retrying in %v)", err, backoff))
			}
			time.Sleep(backoff)
			backoff *= 2
			if backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Serve(conn); err != nil && errf != nil {
				errf(err)
			}
		}()
	}
	wg.Wait()
}

// startReaper launches the idle-eviction goroutine and returns its
// stop function. With no idle timeout configured it is a no-op.
func (s *Server) startReaper() func() {
	if s.mgr.idleTimeout <= 0 {
		return func() {}
	}
	period := s.mgr.idleTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.mgr.EvictIdle()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
