package offload

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/sensing"
	"repro/internal/sharedcompute"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// ServerConfig configures a multi-session offload server.
type ServerConfig struct {
	// Factory builds one fresh framework per session. Required; must
	// be safe for concurrent use.
	Factory core.FrameworkFactory

	// MaxSessions caps concurrent sessions; further hellos are
	// rejected gracefully with a Welcome{OK: false}. 0 = unlimited.
	MaxSessions int

	// IdleTimeout evicts sessions with no served epoch for this long.
	// 0 = never evict.
	IdleTimeout time.Duration

	// Metrics receives the server's RED-style instruments (sessions
	// opened/closed/rejected/evicted, active-session gauge, epochs
	// served, frame bytes in/out, step-latency histogram,
	// connection-error counter). Nil disables exposition; the serving
	// path then pays only nil checks.
	Metrics *telemetry.Registry

	// MapStores routes MsgSurvey submissions (protocol v3) to the shared
	// radio-map stores, keyed by map ID (MapWiFi, MapCellular). Nil or
	// missing entries drop submissions (counted); the stores themselves
	// are shared with the Factory's schemes, so accepted points become
	// visible to every session at the next snapshot rebuild.
	MapStores map[byte]*mapstore.Store

	// StepWorkers fans every session's per-scheme work out to a
	// persistent worker pool of this size (core.WithParallel) so
	// multi-core servers cut per-epoch latency. <= 1 keeps sequential
	// scheme execution. Results are bit-identical either way.
	StepWorkers int

	// EpochTimeout bounds each session's protocol I/O: a session that
	// takes longer than this to deliver one epoch's frames (or to
	// accept its result) is closed, with deadline_timeouts_total
	// incremented — a stalled or half-dead client can no longer pin a
	// serving goroutine forever. It also bounds the handshake read.
	// 0 = no deadline.
	EpochTimeout time.Duration

	// BatchTick enables the batch-per-tick scheduler: ready epochs from
	// all sessions are collected for up to this long (a full batch
	// fires sooner), their shared fingerprint-distance columns are
	// precomputed once per unique observation against the pinned map
	// snapshots, and the sessions are stepped across a worker pool.
	// Results are bit-identical to per-connection stepping (see
	// scheduler). 0 keeps the per-connection step loop.
	BatchTick time.Duration

	// BatchWorkers sizes the batch scheduler's session-step worker
	// pool. <= 0 defaults to runtime.NumCPU().
	BatchWorkers int

	// BatchStores are the shared radio-map stores the scheduler
	// precomputes distance columns against, keyed like MapStores
	// (MapWiFi routes each epoch's WiFi scan, MapCellular its cell
	// scan). Nil falls back to MapStores; sessions whose schemes read
	// other maps simply miss the cache and compute locally.
	BatchStores map[byte]*mapstore.Store

	// SharedCompute enables the cross-session shared-compute cache
	// (internal/sharedcompute): per-snapshot RSSI likelihood rows, HMM
	// tracker state, and cell representatives are computed once per
	// map compaction and shared by every session pinning that
	// snapshot, instead of once per session. Entries are
	// refcount-pinned per session and evicted when the last pinning
	// session closes. Results are Float64bits-identical to private
	// computation (DESIGN.md §16). Requires shared map stores
	// (BatchStores or MapStores); composes with, but does not require,
	// BatchTick — with batching on, the scheduler additionally
	// prewarms likelihood rows through the fused kernel.
	SharedCompute bool

	// Tracer enables end-to-end span tracing: one "server.frame" span
	// per served epoch (continuing the client's trace when the v5
	// context frame carries one), with read/queue/step/write children
	// and per-scheme spans bridged from the framework's epoch traces.
	// Nil keeps tracing off — no observer is attached and the serving
	// path allocates nothing extra.
	Tracer *trace.Tracer

	// PprofLabels wraps serving goroutines (session), batch workers
	// (session + batch tick), and per-scheme work in runtime/pprof
	// labels so CPU profiles of a busy server decompose by session and
	// scheme. Off by default: labeling allocates per epoch.
	PprofLabels bool

	// MaxProtocol caps the version the handshake negotiates, for tests
	// and staged rollouts (a v5 build serving at v4 must ignore trace
	// context exactly like a real v4 server). 0 = ProtocolVersion.
	MaxProtocol byte

	// SurveyIngest, when set, receives every MsgSurvey submission
	// instead of the local MapStores — cluster followers use it to
	// forward crowdsourced points to the replication leader, whose
	// compactions then stream back to every node. A returned error
	// drops the submission (counted), never the session.
	SurveyIngest func(*Survey) error

	// ShipSession, when set, receives the freshly exported state of a
	// v4+ session after every served epoch (cluster.Handoff replicates
	// it to peer nodes). Called on the serving goroutine right after the
	// result is delivered, so it must only enqueue — never block on the
	// network. The blob is self-contained (offload.SessionState): a peer
	// that injects it continues the walk at exactly this epoch.
	ShipSession func(clientID string, seq uint32, state []byte)

	// FetchSession, when set, is consulted on a v4+ hello whose client
	// ID matches no locally detached session: a non-nil blob (obtained
	// from a handoff peer) is injected and resumed, so the client's walk
	// continues on this node with its exact state — zero restarted
	// walks even when the owning node was killed without warning. Nil
	// means no peer holds state and a fresh session opens.
	FetchSession func(clientID string) []byte

	// ReplayEntries / ReplayBytes bound each session's v4 replay cache
	// (entries and encoded payload bytes; oldest evicted first, counted
	// by uniloc_replay_evictions_total). 0 uses the package defaults.
	ReplayEntries int
	ReplayBytes   int
}

// Server runs the UniLoc framework (all localization schemes, error
// prediction, and BMA) on behalf of phones. Each connection gets its
// own framework from the factory, so concurrent walks never share
// particle-filter, IODetector, or gating state — the paper's
// workstation similarly hosts the localization state per user (§IV-C).
type Server struct {
	mgr          *SessionManager
	stores       map[byte]*mapstore.Store
	surveyIngest func(*Survey) error
	shipSession  func(clientID string, seq uint32, state []byte)
	fetchSession func(clientID string) []byte
	epochTimeout time.Duration
	sched        *scheduler    // nil: per-connection stepping
	tracer       *trace.Tracer // nil: tracing off
	pprofLabels  bool
	maxProto     byte
	draining     atomic.Bool // Drain called: finish in-flight epochs, close cleanly
}

// NewServer builds a multi-session server from the config.
func NewServer(cfg ServerConfig) (*Server, error) {
	mgr, err := NewSessionManager(cfg.Factory, cfg.MaxSessions, cfg.IdleTimeout, cfg.Metrics)
	if err != nil {
		return nil, err
	}
	mgr.SetStepWorkers(cfg.StepWorkers)
	mgr.SetTracer(cfg.Tracer)
	mgr.SetPprofLabels(cfg.PprofLabels)
	maxProto := cfg.MaxProtocol
	if maxProto == 0 {
		maxProto = ProtocolVersion
	}
	mgr.SetReplayCaps(cfg.ReplayEntries, cfg.ReplayBytes)
	s := &Server{
		mgr: mgr, stores: cfg.MapStores, surveyIngest: cfg.SurveyIngest,
		shipSession: cfg.ShipSession, fetchSession: cfg.FetchSession,
		epochTimeout: cfg.EpochTimeout,
		tracer:       cfg.Tracer, pprofLabels: cfg.PprofLabels, maxProto: maxProto,
	}
	batchStores := cfg.BatchStores
	if batchStores == nil {
		batchStores = cfg.MapStores
	}
	if cfg.SharedCompute && len(batchStores) > 0 {
		// Attach before the scheduler is built and before any session
		// opens, so every framework and batch sees the cache.
		mgr.SetSharedCompute(sharedcompute.NewCache(cfg.Metrics), batchStores)
	}
	if cfg.BatchTick > 0 {
		s.sched = newScheduler(cfg.BatchTick, cfg.BatchWorkers, batchStores, mgr)
	}
	return s, nil
}

// Close releases the server's background resources (the batch
// scheduler's goroutine, when batching is enabled). Serving goroutines
// that outlive Close fall back to inline stepping; results are
// unchanged. Idempotent.
func (s *Server) Close() {
	if s.sched != nil {
		s.sched.close()
	}
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain begins a graceful shutdown of serving: every session finishes
// its in-flight epoch, delivers the result, and is then closed at the
// epoch boundary so the client sees a clean EOF (and its reconnect
// path takes it to another node) instead of a deadline timeout.
// Connections that have not reached an epoch boundary when the grace
// period runs out are force-closed. The caller is responsible for
// closing the listener first — Drain stops sessions, not accepts.
// Returns how many connections the grace expiry had to force-close.
// Idempotent; concurrent calls all wait out the grace period.
func (s *Server) Drain(grace time.Duration) int {
	s.draining.Store(true)
	deadline := time.Now().Add(grace)
	for time.Now().Before(deadline) {
		if s.mgr.liveConns() == 0 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	return s.mgr.DisconnectAll()
}

// Sessions exposes the server's session manager (stats, manual
// eviction).
func (s *Server) Sessions() *SessionManager { return s.mgr }

// Stats returns a snapshot of the server's session and epoch counters.
func (s *Server) Stats() Stats { return s.mgr.Stats() }

// handshake reads the client's hello and admits or rejects the
// session. A nil session with a nil error means the client was
// rejected gracefully.
func (s *Server) handshake(conn net.Conn) (*Session, error) {
	t, payload, err := ReadFrame(conn)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, nil // client went away before the handshake
		}
		return nil, err
	}
	if t != MsgHello {
		return nil, fmt.Errorf("%w: expected hello, got type %d", ErrProtocol, t)
	}
	hello, err := DecodeHello(payload)
	if err != nil {
		return nil, err
	}
	// Version negotiation (one table for the whole package — see
	// Features): the session runs at the lower of the server's maximum
	// and the client's hello, so a newer client degrades gracefully —
	// a v5 client against a v4-capped server simply runs without trace
	// propagation — instead of being rejected.
	ver := Negotiate(s.maxProto, hello.Version)
	if Features(ver).Resume {
		// A v4+ re-handshake under a known client ID re-attaches the
		// detached session: framework state and the per-seq result
		// cache survive the reconnect, so the hello's start position is
		// deliberately ignored — resetting there is exactly the replay
		// bug v4 fixes.
		if sess := s.mgr.Resume(hello.ClientID, conn); sess != nil {
			sess.proto = ver
			welcome := &Welcome{Version: ver, OK: true, SessionID: sess.ID, Resumed: true}
			if _, err := WriteFrame(conn, MsgWelcome, EncodeWelcome(welcome)); err != nil {
				s.mgr.Detach(sess) // park again for the next attempt
				return nil, err
			}
			return sess, nil
		}
		// No local parked session: a peer may hold this walk's shipped
		// state (its owning node died, or the router moved the key). A
		// successful fetch+inject makes the resume path above work as if
		// the walk had always lived here — same framework bits, same
		// replay cache. Any failure falls through to a fresh Open at the
		// hello's start position, exactly the pre-failover behavior.
		if s.fetchSession != nil && hello.ClientID != "" {
			if blob := s.fetchSession(hello.ClientID); blob != nil {
				if err := s.mgr.Inject(blob); err == nil {
					if sess := s.mgr.Resume(hello.ClientID, conn); sess != nil {
						sess.proto = ver
						welcome := &Welcome{Version: ver, OK: true, SessionID: sess.ID, Resumed: true}
						if _, err := WriteFrame(conn, MsgWelcome, EncodeWelcome(welcome)); err != nil {
							s.mgr.Detach(sess)
							return nil, err
						}
						return sess, nil
					}
				}
			}
		}
	}
	sess, err := s.mgr.Open(hello.ClientID, geo.Pt(hello.StartX, hello.StartY), conn)
	if err != nil {
		reject := &Welcome{Version: ver, Reason: err.Error()}
		_, _ = WriteFrame(conn, MsgWelcome, EncodeWelcome(reject))
		if errors.Is(err, ErrServerFull) {
			return nil, nil // graceful rejection, not a transport failure
		}
		return nil, err
	}
	sess.proto = ver
	welcome := &Welcome{Version: ver, OK: true, SessionID: sess.ID}
	if _, err := WriteFrame(conn, MsgWelcome, EncodeWelcome(welcome)); err != nil {
		s.mgr.Close(sess)
		return nil, err
	}
	return sess, nil
}

// meteredConn counts every byte crossing a connection into the
// server's frame-byte counters (atomic adds; no-ops without a
// registry).
type meteredConn struct {
	net.Conn
	in, out *telemetry.Counter
}

func (c *meteredConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	return n, err
}

func (c *meteredConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	return n, err
}

// Serve processes one connection: session handshake, then epochs until
// EOF or error. It returns nil on clean shutdown (client closed the
// connection, graceful rejection, or idle eviction).
func (s *Server) Serve(conn net.Conn) error {
	err := s.serve(&meteredConn{Conn: conn, in: s.mgr.met.bytesIn, out: s.mgr.met.bytesOut})
	if err != nil {
		s.mgr.met.connErrors.Inc()
	}
	return err
}

// armDeadline applies the per-session epoch deadline, if configured.
func (s *Server) armDeadline(conn net.Conn) {
	if s.epochTimeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(s.epochTimeout))
	}
}

// isTimeout reports whether err is a deadline hit.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func (s *Server) serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()
	if s.draining.Load() {
		// A connection that raced the drain (the listener closes first,
		// but pipes and in-flight accepts can still deliver one) gets a
		// clean close, not a session: the client's reconnect path takes
		// it elsewhere.
		return nil
	}
	s.armDeadline(conn) // the handshake is bounded too
	sess, err := s.handshake(conn)
	if err != nil || sess == nil {
		if err != nil && isTimeout(err) {
			s.mgr.noteDeadlineTimeout()
			return nil // stalled before handshake: quiet eviction
		}
		return err
	}
	detach := false
	defer func() {
		if detach {
			s.mgr.Detach(sess)
		} else {
			s.mgr.Close(sess)
		}
	}()
	// ioFail maps a mid-stream I/O failure to serve's return value:
	// evictions and deadline hits stay quiet closes, any other
	// transport/protocol failure parks a v4+ session for seq-numbered
	// resume (Detach) instead of discarding its walk state.
	ioFail := func(err error) error {
		if sess.evicted.Load() {
			return nil // reaper closed the connection under us
		}
		if isTimeout(err) {
			// The client stalled mid-epoch: evict quietly, counted.
			s.mgr.noteDeadlineTimeout()
			return nil
		}
		if Features(sess.proto).Resume {
			detach = true
			return nil
		}
		return err
	}
	if s.pprofLabels {
		// Label the serving goroutine so CPU/goroutine profiles of a
		// busy server decompose by session (batch workers and scheme
		// execution add their own labels on top).
		var loopErr error
		pprof.Do(context.Background(), pprof.Labels("session", sess.spanLabel),
			func(context.Context) { loopErr = s.epochLoop(conn, sess, ioFail) })
		return loopErr
	}
	return s.epochLoop(conn, sess, ioFail)
}

// emitChild synthesizes a completed child span of the frame span from
// a start timestamp taken on this goroutine.
func (s *Server) emitChild(frame *trace.Span, sess *Session, name string, startNS int64) {
	fctx := frame.Context()
	if !fctx.Valid() {
		return
	}
	s.tracer.Emit(&trace.Record{
		Trace:   fctx.Trace.String(),
		Span:    s.tracer.NewSpanID().String(),
		Parent:  fctx.Span.String(),
		Name:    name,
		Session: sess.spanLabel,
		StartNS: startNS,
		DurNS:   s.tracer.Now() - startNS,
	})
}

// epochLoop serves epochs on an established session until EOF or
// error. With a tracer attached, each served epoch becomes one
// "server.frame" span — continuing the client's trace when the v5
// context frame carried a span context, a fresh root otherwise — with
// server.read/server.queue/step/server.write children accounting for
// where the frame's wall time went.
func (s *Server) epochLoop(conn net.Conn, sess *Session, ioFail func(error) error) error {
	for {
		s.armDeadline(conn) // one deadline window per epoch exchange
		snap, seq, tctx, arrived, err := s.readEpoch(conn, sess.proto)
		if err == io.EOF {
			return nil // clean shutdown: the walk is over, no resume
		}
		if err != nil {
			return ioFail(err)
		}
		var frame trace.Span
		if s.tracer.Enabled() {
			// The span starts when the epoch's first frame arrived, so
			// idle time between epochs (the client walking) never counts.
			frame = s.tracer.StartAt("server.frame", tctx, arrived)
			// Frame spans are the server's unit of tail latency even when
			// they continue a client trace, so they feed the exemplar
			// collector as complete-trace roots.
			frame.SetRoot(true)
			frame.SetSession(sess.spanLabel)
			frame.Attr("epoch", snap.Epoch)
			if seq != 0 {
				frame.Attr("seq", seq)
			}
			s.emitChild(&frame, sess, "server.read", s.tracer.At(arrived))
			sess.spans.SetParent(frame.Context())
		}
		if cached := sess.replay.get(seq); Features(sess.proto).Resume && seq != 0 && cached != nil {
			// Reconnect replay: the client re-sent an epoch whose result
			// was computed but lost in flight. Answer from the per-seq
			// cache — re-stepping would double-advance PDR/HMM state.
			s.mgr.noteReplay()
			frame.Attr("replay", true)
			_, err := WriteFrame(conn, MsgResult, cached)
			frame.End()
			if err != nil {
				return ioFail(err)
			}
			if s.draining.Load() {
				if sess.evicted.CompareAndSwap(false, true) {
					s.mgr.noteDrained()
				}
				return nil
			}
			continue
		}
		var res core.StepResult
		var stepDur time.Duration
		if s.sched != nil {
			res, stepDur = s.sched.step(sess, snap, frame.Context())
		} else {
			// Unbatched: migrate this session's shared-compute pins at
			// the epoch boundary (batched sessions repin per tick).
			s.mgr.RepinShared(sess)
			t0 := time.Now()
			res = sess.fw.Step(snap)
			stepDur = time.Since(t0)
		}
		s.mgr.RecordEpoch(sess, stepDur)

		out := &Result{
			X: res.BMA.X, Y: res.BMA.Y,
			BestX: res.Best.X, BestY: res.Best.Y,
			Env: byte(res.Env),
			OK:  res.OK,
		}
		if res.BestIdx >= 0 {
			out.Selected = res.Schemes[res.BestIdx].Name
		}
		payload := EncodeResult(out)
		if Features(sess.proto).Resume && seq != 0 {
			sess.lastSeq = seq
			s.mgr.noteReplayEvictions(sess.replay.put(seq, payload))
		}
		var wStart int64
		if frame.Recording() {
			wStart = s.tracer.Now()
		}
		_, err = WriteFrame(conn, MsgResult, payload)
		if frame.Recording() {
			s.emitChild(&frame, sess, "server.write", wStart)
			frame.End()
		}
		if err != nil {
			return ioFail(err)
		}
		s.ship(sess)
		if s.draining.Load() {
			// Graceful drain: the in-flight epoch was finished and its
			// result delivered; now close at the epoch boundary (serve's
			// defer closes the conn) so the client sees a clean EOF and
			// reconnects — to another node — instead of timing out.
			if sess.evicted.CompareAndSwap(false, true) {
				s.mgr.noteDrained()
			}
			return nil
		}
	}
}

// ship exports the session's state and hands it to the ShipSession
// hook at an epoch boundary. The exported blob includes the epoch just
// served (framework post-step, replay cache holding its result), so a
// peer injecting it either answers the client's replay of that epoch
// from the cache or steps the next one — never a double advance. The
// epoch before the next ship lands is covered the other way: the
// client re-sends it, and re-stepping it from this state is
// deterministic. Only identified v4+ sessions ship; anonymous or
// pre-resume sessions cannot be re-attached anywhere.
func (s *Server) ship(sess *Session) {
	if s.shipSession == nil || sess.ClientID == "" || !Features(sess.proto).Resume {
		return
	}
	var vers map[byte]uint64
	if len(s.stores) > 0 {
		vers = make(map[byte]uint64, len(s.stores))
		for id, st := range s.stores {
			vers[id] = st.Version()
		}
	}
	blob, err := s.mgr.ExportState(sess, vers)
	if err != nil {
		return // unsnapshotable session (untracked RNG): serve-local only
	}
	s.shipSession(sess.ClientID, sess.lastSeq, blob)
}

// readEpoch assembles one snapshot from frames up to MsgEpochEnd,
// returning the epoch's v4 sequence number (0 for v3 clients), the v5
// trace context (zero without one), and — when tracing — the arrival
// time of the epoch's first frame (the idle gap between epochs belongs
// to the client, not to the frame span). proto is the session's
// negotiated version: frames a feature gate excludes (MsgSurvey before
// v3) are protocol errors, exactly as on a real old server.
func (s *Server) readEpoch(r io.Reader, proto byte) (*sensing.Snapshot, uint32, trace.SpanContext, time.Time, error) {
	snap := &sensing.Snapshot{}
	var seq uint32
	var tctx trace.SpanContext
	var arrived time.Time
	gotContext := false
	first := true
	fail := func(err error) (*sensing.Snapshot, uint32, trace.SpanContext, time.Time, error) {
		return nil, 0, trace.SpanContext{}, arrived, err
	}
	for {
		t, payload, err := ReadFrame(r)
		if err != nil {
			if err == io.EOF && !gotContext {
				return fail(io.EOF)
			}
			if err == io.ErrUnexpectedEOF {
				return fail(io.EOF)
			}
			return fail(err)
		}
		if first {
			first = false
			if s.tracer.Enabled() {
				arrived = time.Now()
			}
		}
		switch t {
		case MsgContext:
			ctx, sq, tc, err := DecodeContextFull(payload)
			if err != nil {
				return fail(err)
			}
			ctx.WiFi, ctx.Cell = snap.WiFi, snap.Cell
			ctx.Step, ctx.GNSS, ctx.Landmark = snap.Step, snap.GNSS, snap.Landmark
			snap = ctx
			seq = sq
			tctx = tc
			gotContext = true
		case MsgStepUpdate:
			step, err := DecodeStep(payload)
			if err != nil {
				return fail(err)
			}
			snap.Step = step
		case MsgWiFiVector:
			v, err := DecodeVector(payload)
			if err != nil {
				return fail(err)
			}
			snap.WiFi = v
		case MsgCellVector:
			v, err := DecodeVector(payload)
			if err != nil {
				return fail(err)
			}
			snap.Cell = v
		case MsgGNSSFix:
			f, err := DecodeFix(payload)
			if err != nil {
				return fail(err)
			}
			snap.GNSS = f
		case MsgLandmark:
			l, err := DecodeLandmark(payload)
			if err != nil {
				return fail(err)
			}
			snap.Landmark = l
		case MsgSurvey:
			if !Features(proto).Surveys {
				return fail(fmt.Errorf("%w: survey frame on a v%d session", ErrProtocol, proto))
			}
			sv, err := DecodeSurvey(payload)
			if err != nil {
				return fail(err)
			}
			s.ingestSurvey(sv)
		case MsgEpochEnd:
			if !gotContext {
				return fail(fmt.Errorf("%w: epoch ended without context", ErrProtocol))
			}
			return snap, seq, tctx, arrived, nil
		default:
			return fail(fmt.Errorf("%w: unexpected message type %d", ErrProtocol, t))
		}
	}
}

// ingestSurvey routes one crowdsourced survey point to its shared map
// store — or, with a SurveyIngest hook installed, to the hook (cluster
// followers forward to the replication leader this way). Submissions
// for unknown maps, or with vectors the store deems unusable, are
// dropped and counted — never an error that would kill the session's
// epoch stream.
func (s *Server) ingestSurvey(sv *Survey) {
	if s.surveyIngest != nil {
		if err := s.surveyIngest(sv); err != nil {
			s.mgr.met.surveysDropped.Inc()
			return
		}
		s.mgr.met.surveysIngested.Inc()
		return
	}
	st := s.stores[sv.Map]
	if st == nil {
		s.mgr.met.surveysDropped.Inc()
		return
	}
	fp := fingerprint.Fingerprint{Pos: geo.Pt(sv.X, sv.Y), Vec: sv.Vec}
	if err := st.Submit(fp); err != nil {
		s.mgr.met.surveysDropped.Inc()
		return
	}
	s.mgr.met.surveysIngested.Inc()
}

// Accept-loop backoff bounds for transient Accept errors.
const (
	acceptBackoffMin = 5 * time.Millisecond
	acceptBackoffMax = 1 * time.Second
)

// ListenAndServe accepts connections on ln and serves each in its own
// goroutine until the listener is closed. Transient Accept errors
// (e.g. EMFILE, ECONNABORTED) are retried with capped exponential
// backoff instead of killing the server. Connection-level errors are
// reported through errf (may be nil). If an idle timeout is
// configured, a reaper goroutine evicts quiet sessions while the loop
// runs.
func (s *Server) ListenAndServe(ln net.Listener, errf func(error)) {
	stopReaper := s.startReaper()
	defer stopReaper()

	var wg sync.WaitGroup
	backoff := acceptBackoffMin
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				break
			}
			s.mgr.noteAcceptError()
			if errf != nil {
				errf(fmt.Errorf("offload: accept: %w (retrying in %v)", err, backoff))
			}
			time.Sleep(backoff)
			backoff *= 2
			if backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			continue
		}
		backoff = acceptBackoffMin
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Serve(conn); err != nil && errf != nil {
				errf(err)
			}
		}()
	}
	wg.Wait()
}

// startReaper launches the idle-eviction goroutine and returns its
// stop function. With no idle timeout configured it is a no-op.
func (s *Server) startReaper() func() {
	if s.mgr.idleTimeout <= 0 {
		return func() {}
	}
	period := s.mgr.idleTimeout / 4
	if period < time.Millisecond {
		period = time.Millisecond
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.mgr.EvictIdle()
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
