package offload

import (
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/core"
	"repro/internal/sensing"
)

// Server runs the UniLoc framework (all localization schemes, error
// prediction, and BMA) on behalf of phones. One framework instance
// serves one walk at a time; the paper's workstation similarly hosts
// the particle-filter state per user.
type Server struct {
	mu sync.Mutex
	fw *core.Framework
}

// NewServer wraps a framework.
func NewServer(fw *core.Framework) *Server { return &Server{fw: fw} }

// Serve processes epochs from one connection until EOF or error. It
// returns nil on clean shutdown (client closed the connection between
// epochs).
func (s *Server) Serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()
	for {
		snap, err := s.readEpoch(conn)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		s.mu.Lock()
		res := s.fw.Step(snap)
		s.mu.Unlock()

		out := &Result{
			X: res.BMA.X, Y: res.BMA.Y,
			BestX: res.Best.X, BestY: res.Best.Y,
			Env: byte(res.Env),
		}
		if res.BestIdx >= 0 {
			out.Selected = res.Schemes[res.BestIdx].Name
		}
		if _, err := WriteFrame(conn, MsgResult, EncodeResult(out)); err != nil {
			return err
		}
	}
}

// readEpoch assembles one snapshot from frames up to MsgEpochEnd.
func (s *Server) readEpoch(r io.Reader) (*sensing.Snapshot, error) {
	snap := &sensing.Snapshot{}
	gotContext := false
	for {
		t, payload, err := ReadFrame(r)
		if err != nil {
			if err == io.EOF && !gotContext {
				return nil, io.EOF
			}
			if err == io.ErrUnexpectedEOF {
				return nil, io.EOF
			}
			return nil, err
		}
		switch t {
		case MsgContext:
			ctx, err := DecodeContext(payload)
			if err != nil {
				return nil, err
			}
			ctx.WiFi, ctx.Cell = snap.WiFi, snap.Cell
			ctx.Step, ctx.GNSS, ctx.Landmark = snap.Step, snap.GNSS, snap.Landmark
			snap = ctx
			gotContext = true
		case MsgStepUpdate:
			step, err := DecodeStep(payload)
			if err != nil {
				return nil, err
			}
			snap.Step = step
		case MsgWiFiVector:
			v, err := DecodeVector(payload)
			if err != nil {
				return nil, err
			}
			snap.WiFi = v
		case MsgCellVector:
			v, err := DecodeVector(payload)
			if err != nil {
				return nil, err
			}
			snap.Cell = v
		case MsgGNSSFix:
			f, err := DecodeFix(payload)
			if err != nil {
				return nil, err
			}
			snap.GNSS = f
		case MsgLandmark:
			l, err := DecodeLandmark(payload)
			if err != nil {
				return nil, err
			}
			snap.Landmark = l
		case MsgEpochEnd:
			if !gotContext {
				return nil, fmt.Errorf("%w: epoch ended without context", ErrProtocol)
			}
			return snap, nil
		default:
			return nil, fmt.Errorf("%w: unexpected message type %d", ErrProtocol, t)
		}
	}
}

// ListenAndServe accepts connections on ln and serves each until it
// closes. It returns when the listener is closed. Connection-level
// errors are reported through errf (may be nil).
func (s *Server) ListenAndServe(ln net.Listener, errf func(error)) {
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			break
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Serve(conn); err != nil && errf != nil {
				errf(err)
			}
		}()
	}
	wg.Wait()
}
