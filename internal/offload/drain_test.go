package offload

import (
	"net"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestGracefulDrain is the drain satellite's acceptance test: a node
// under traffic drains — in-flight epochs finish and deliver their
// results, sessions then close with a clean EOF at the epoch boundary
// — and the client's reconnect path finishes the walk on another node
// instead of timing out. Run under -race in CI.
func TestGracefulDrain(t *testing.T) {
	factory, w := offloadWorld(t)
	cfg := ServerConfig{Factory: factory}
	a := startLiveServer(t, "127.0.0.1:0", cfg)
	b := startLiveServer(t, "127.0.0.1:0", cfg)
	defer a.kill()
	defer b.kill()
	addrA, addrB := a.ln.Addr().String(), b.ln.Addr().String()

	// Dial prefers A (the draining node) and falls back to B — the
	// single-client stand-in for a router that marks A down.
	dial := func() (net.Conn, error) {
		if conn, err := net.Dial("tcp", addrA); err == nil {
			return conn, nil
		}
		return net.Dial("tcp", addrB)
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn, "phone-drain")
	client.SetTimeout(2 * time.Second)
	client.SetReconnect(dial, Backoff{Min: 5 * time.Millisecond, Max: 100 * time.Millisecond, Attempts: 20, Seed: 3})
	client.SetMetrics(telemetry.NewRegistry())
	defer func() { _ = client.Close() }()

	const epochs = 16
	start, snaps := corridorWalk(w, 2, 5, epochs)
	if err := client.Hello(start); err != nil {
		t.Fatal(err)
	}
	drained := make(chan int, 1)
	for i, snap := range snaps {
		if i == 6 {
			// SIGTERM on node A: listener first (no new sessions), then
			// drain. Drain blocks until the session reaches an epoch
			// boundary, so it runs alongside the walk — the very next
			// epoch finishes, delivers its result, and closes the
			// connection, well inside the grace window.
			_ = a.ln.Close()
			go func() { drained <- a.srv.Drain(2 * time.Second) }()
		}
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		if !res.OK {
			t.Fatalf("epoch %d: result not OK", i)
		}
	}
	if forced := <-drained; forced != 0 {
		t.Errorf("drain force-closed %d connections, want 0", forced)
	}
	if !a.srv.Draining() {
		t.Error("Draining() = false after Drain")
	}

	if client.Reconnects() < 1 {
		t.Fatalf("client reconnected %d times, want >= 1", client.Reconnects())
	}
	if st := a.srv.Stats(); st.Drained < 1 || st.DeadlineTimeouts != 0 {
		t.Fatalf("node A drained=%d deadlineTimeouts=%d, want >=1 and 0", st.Drained, st.DeadlineTimeouts)
	}
	// The walk finished on B.
	if st := b.srv.Stats(); st.EpochsServed == 0 {
		t.Fatal("node B served no epochs after the drain")
	}
}

// TestDrainIdleForceClose covers the grace expiry: a session idling
// between epochs (its client is walking, no frames in flight) cannot
// reach an epoch boundary, so Drain force-closes it when the grace
// runs out — counted, and still a connection close the client's
// reconnect survives.
func TestDrainIdleForceClose(t *testing.T) {
	factory, w := offloadWorld(t)
	ls := startLiveServer(t, "127.0.0.1:0", ServerConfig{Factory: factory})
	defer ls.kill()

	conn, err := net.Dial("tcp", ls.ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn, "phone-idle")
	defer func() { _ = client.Close() }()
	start, snaps := corridorWalk(w, 2, 9, 2)
	results := runWalk(t, client, start, snaps)
	if !results[len(results)-1].OK {
		t.Fatal("warmup walk failed")
	}

	_ = ls.ln.Close()
	if forced := ls.srv.Drain(50 * time.Millisecond); forced != 1 {
		t.Fatalf("drain force-closed %d connections, want 1", forced)
	}
	if st := ls.srv.Stats(); st.Drained != 1 || st.Active != 0 {
		t.Fatalf("after forced drain: drained=%d active=%d, want 1 and 0", st.Drained, st.Active)
	}
	// The client observes a dead connection, not a served result.
	if _, err := client.Localize(snaps[0]); err == nil {
		t.Fatal("localize succeeded on a drained node")
	}
}
