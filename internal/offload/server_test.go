package offload

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/imu"
	"repro/internal/noise"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/world"
)

// offloadWorld builds a corridor world plus a minimal trained
// framework with the wifi and motion schemes.
func offloadFramework(t *testing.T) (*core.Framework, *world.World) {
	t.Helper()
	w := &world.World{
		Name:  "off",
		Noise: noise.Field{Seed: 8},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "hall", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 4), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2, CorridorWidth: 2.5},
		},
		APs: []world.Site{
			{ID: "a0", Pos: geo.Pt(5, 3), TxPowerDBm: 16},
			{ID: "a1", Pos: geo.Pt(20, 1), TxPowerDBm: 16},
			{ID: "a2", Pos: geo.Pt(35, 3), TxPowerDBm: 16},
		},
	}
	db := fingerprint.Survey(w, rf.WiFiModel(), w.APs, 3, rand.New(rand.NewSource(1)))
	ss := []schemes.Scheme{
		schemes.NewWiFi(db),
		schemes.NewPDR(w, schemes.DefaultPDRConfig(), rand.New(rand.NewSource(2))),
	}
	ms := core.NewModelSet()
	for _, name := range []string{schemes.NameWiFi, schemes.NameMotion} {
		for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
			ms.Put(&core.ErrorModel{
				Scheme: name, Env: env, Features: nil,
				Reg: &regress.Result{HasIntercept: true, Intercept: 3, ResidStd: 2},
			})
		}
	}
	fw, err := core.NewFramework(ss, ms)
	if err != nil {
		t.Fatal(err)
	}
	fw.Reset(geo.Pt(2, 2))
	return fw, w
}

func TestClientServerEndToEnd(t *testing.T) {
	fw, w := offloadFramework(t)
	client := pipeClient(t, NewServer(fw))

	rnd := rand.New(rand.NewSource(3))
	model := rf.WiFiModel()
	pos := geo.Pt(2, 2)
	var lastErr float64
	for i := 0; i < 30; i++ {
		pos = pos.Add(geo.Pt(0.7, 0))
		snap := &sensing.Snapshot{
			Epoch:    i,
			WiFi:     model.Scan(w, w.APs, pos, rf.Reference(), rnd),
			Step:     &imu.StepEvent{LengthM: 0.7, HeadingR: 0, PeriodS: 0.5},
			LightLux: 300,
			MagVarUT: 2.2,
		}
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		lastErr = geo.Pt(res.X, res.Y).Dist(pos)
	}
	if lastErr > 10 {
		t.Errorf("fused error after walk = %v m", lastErr)
	}
	if client.Epochs() != 30 {
		t.Errorf("epochs = %d", client.Epochs())
	}
	if client.BytesUp() == 0 || client.BytesDown() == 0 {
		t.Error("byte counters should advance")
	}
	// The per-epoch upload should be compact (tens of bytes, not KB).
	perEpoch := client.BytesUp() / client.Epochs()
	if perEpoch > 300 {
		t.Errorf("upload %d B/epoch too large", perEpoch)
	}
}
