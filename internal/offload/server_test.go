package offload

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/imu"
	"repro/internal/mapstore"
	"repro/internal/noise"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// offloadWorld builds a corridor world plus a deterministic framework
// factory over the wifi and motion schemes. Every factory call returns
// an identically-initialized framework (fixed scheme seeds), so a
// session's outputs depend only on the epochs it is fed — the property
// the concurrency tests rely on.
func offloadWorld(t testing.TB) (core.FrameworkFactory, *world.World) {
	t.Helper()
	w := &world.World{
		Name:  "off",
		Noise: noise.Field{Seed: 8},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "hall", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 4), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2, CorridorWidth: 2.5},
		},
		APs: []world.Site{
			{ID: "a0", Pos: geo.Pt(5, 3), TxPowerDBm: 16},
			{ID: "a1", Pos: geo.Pt(20, 1), TxPowerDBm: 16},
			{ID: "a2", Pos: geo.Pt(35, 3), TxPowerDBm: 16},
		},
	}
	db := fingerprint.Survey(w, rf.WiFiModel(), w.APs, 3, rand.New(rand.NewSource(1)))
	ms := core.NewModelSet()
	for _, name := range []string{schemes.NameWiFi, schemes.NameMotion} {
		for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
			ms.Put(&core.ErrorModel{
				Scheme: name, Env: env, Features: nil,
				Reg: &regress.Result{HasIntercept: true, Intercept: 3, ResidStd: 2},
			})
		}
	}
	factory := func() (*core.Framework, error) {
		ss := []schemes.Scheme{
			schemes.NewWiFi(db),
			schemes.NewPDR(w, schemes.DefaultPDRConfig(), rand.New(rand.NewSource(2))),
		}
		return core.NewFramework(ss, ms)
	}
	return factory, w
}

func newTestServer(t testing.TB, cfg ServerConfig) *Server {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

// corridorWalk precomputes one client's walk: a straight line of
// epochs with WiFi scans and step updates, deterministic in the seed.
func corridorWalk(w *world.World, lane float64, seed int64, epochs int) (geo.Point, []*sensing.Snapshot) {
	rnd := rand.New(rand.NewSource(seed))
	model := rf.WiFiModel()
	start := geo.Pt(2, lane)
	pos := start
	snaps := make([]*sensing.Snapshot, 0, epochs)
	for i := 0; i < epochs; i++ {
		pos = pos.Add(geo.Pt(0.7, 0))
		snaps = append(snaps, &sensing.Snapshot{
			Epoch:    i,
			WiFi:     model.Scan(w, w.APs, pos, rf.Reference(), rnd),
			Step:     &imu.StepEvent{LengthM: 0.7, HeadingR: 0, PeriodS: 0.5},
			LightLux: 300,
			MagVarUT: 2.2,
		})
	}
	return start, snaps
}

// runWalk replays precomputed snapshots through a client and returns
// every result.
func runWalk(t testing.TB, client *Client, start geo.Point, snaps []*sensing.Snapshot) []*Result {
	t.Helper()
	if err := client.Hello(start); err != nil {
		t.Fatalf("hello: %v", err)
	}
	out := make([]*Result, 0, len(snaps))
	for i, snap := range snaps {
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		out = append(out, res)
	}
	return out
}

func TestClientServerEndToEnd(t *testing.T) {
	factory, w := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory})
	client := pipeClient(t, srv)

	start, snaps := corridorWalk(w, 2, 3, 30)
	results := runWalk(t, client, start, snaps)

	pos := start.Add(geo.Pt(0.7*float64(len(snaps)), 0))
	last := results[len(results)-1]
	if !last.OK {
		t.Error("result should report a scheme available")
	}
	if lastErr := geo.Pt(last.X, last.Y).Dist(pos); lastErr > 10 {
		t.Errorf("fused error after walk = %v m", lastErr)
	}
	if client.Epochs() != 30 {
		t.Errorf("epochs = %d", client.Epochs())
	}
	if client.SessionID() == 0 {
		t.Error("hello should assign a session id")
	}
	if client.BytesUp() == 0 || client.BytesDown() == 0 {
		t.Error("byte counters should advance")
	}
	// The per-epoch upload should be compact (tens of bytes, not KB).
	perEpoch := client.BytesUp() / client.Epochs()
	if perEpoch > 300 {
		t.Errorf("upload %d B/epoch too large", perEpoch)
	}

	st := srv.Stats()
	if st.Opened != 1 || st.Active != 1 || st.EpochsServed != 30 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.Sessions) != 1 || st.Sessions[0].Epochs != 30 {
		t.Errorf("session stats = %+v", st.Sessions)
	}
}

// TestConcurrentClientsMatchIsolatedRuns is the tentpole regression:
// N simultaneous walks through ONE server must reproduce exactly the
// per-walk results of N single-client runs. Before per-session
// frameworks, interleaved epochs corrupted every walk. Run under
// -race in CI.
func TestConcurrentClientsMatchIsolatedRuns(t *testing.T) {
	const nClients = 4
	const epochs = 40
	factory, w := offloadWorld(t)

	// Precompute every walk serially so snapshot generation is
	// deterministic and race-free.
	starts := make([]geo.Point, nClients)
	walks := make([][]*sensing.Snapshot, nClients)
	for c := 0; c < nClients; c++ {
		starts[c], walks[c] = corridorWalk(w, 1+0.4*float64(c), int64(100+c), epochs)
	}

	// Reference: each walk alone against its own fresh server.
	want := make([][]*Result, nClients)
	for c := 0; c < nClients; c++ {
		srv := newTestServer(t, ServerConfig{Factory: factory})
		client := pipeClient(t, srv)
		want[c] = runWalk(t, client, starts[c], walks[c])
	}

	// All walks concurrently against one shared server over real TCP.
	srv := newTestServer(t, ServerConfig{Factory: factory})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		srv.ListenAndServe(ln, func(err error) { t.Errorf("server: %v", err) })
	}()

	got := make([][]*Result, nClients)
	var wg sync.WaitGroup
	for c := 0; c < nClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Errorf("client %d dial: %v", c, err)
				return
			}
			defer func() { _ = conn.Close() }()
			got[c] = runWalk(t, NewClient(conn, fmt.Sprintf("c%d", c)), starts[c], walks[c])
		}(c)
	}
	wg.Wait()
	_ = ln.Close()
	select {
	case <-serveDone:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not stop")
	}

	for c := 0; c < nClients; c++ {
		if len(got[c]) != len(want[c]) {
			t.Fatalf("client %d: %d results, want %d", c, len(got[c]), len(want[c]))
		}
		for i := range got[c] {
			g, w := got[c][i], want[c][i]
			if *g != *w {
				t.Fatalf("client %d epoch %d: concurrent result %+v != isolated %+v", c, i, g, w)
			}
		}
	}

	st := srv.Stats()
	if st.Opened != nClients || st.Closed != nClients || st.Active != 0 {
		t.Errorf("stats after walks = %+v", st)
	}
	if st.EpochsServed != nClients*epochs {
		t.Errorf("epochs served = %d, want %d", st.EpochsServed, nClients*epochs)
	}
}

func TestSessionLimitRejectsGracefully(t *testing.T) {
	factory, w := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory, MaxSessions: 1})

	first := pipeClient(t, srv)
	start, snaps := corridorWalk(w, 2, 5, 1)
	runWalk(t, first, start, snaps)

	// Second session must be refused with the server's reason, not a
	// dropped connection.
	second := pipeClient(t, srv)
	err := second.Hello(geo.Pt(0, 0))
	if !isRejected(err) {
		t.Fatalf("second hello = %v, want ErrRejected", err)
	}

	st := srv.Stats()
	if st.Rejected != 1 || st.Active != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServeRequiresHello(t *testing.T) {
	factory, _ := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory})
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(c2) }()
	// Protocol-v1 style: epoch frames with no handshake.
	if _, err := WriteFrame(c1, MsgContext, EncodeContext(&sensing.Snapshot{})); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("server should reject a session without hello")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not reject")
	}
	_ = c1.Close()
}

func TestServeNegotiatesDownNewerClient(t *testing.T) {
	// A client announcing a future protocol version is not rejected:
	// the handshake negotiates the session down to the server's
	// maximum, so old servers keep serving new phones.
	factory, _ := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory})
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(c2) }()
	h := &Hello{Version: ProtocolVersion + 1}
	if _, err := WriteFrame(c1, MsgHello, EncodeHello(h)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(c1)
	if err != nil || typ != MsgWelcome {
		t.Fatalf("welcome read: %v %v", typ, err)
	}
	w, err := DecodeWelcome(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !w.OK {
		t.Fatalf("newer client must be negotiated down, got rejection: %s", w.Reason)
	}
	if w.Version != ProtocolVersion {
		t.Errorf("negotiated version = %d, want server max %d", w.Version, ProtocolVersion)
	}
	_ = c1.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server did not finish")
	}
}

func TestIdleEviction(t *testing.T) {
	factory, w := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory, IdleTimeout: 30 * time.Millisecond})

	client := pipeClient(t, srv)
	start, snaps := corridorWalk(w, 2, 5, 2)
	runWalk(t, client, start, snaps)

	// Let the session go idle past the timeout, then reap manually
	// (ListenAndServe runs the same reaper on a ticker).
	time.Sleep(50 * time.Millisecond)
	if n := srv.Sessions().EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	// The session's connection is closed: the next request fails.
	if _, err := client.Localize(snaps[0]); err == nil {
		t.Error("localize after eviction should fail")
	}

	waitFor(t, func() bool {
		st := srv.Stats()
		return st.Evicted == 1 && st.Active == 0 && st.Closed == 1
	})
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within deadline")
}

// scriptedListener feeds ListenAndServe a sequence of accept results.
type scriptedListener struct {
	mu     sync.Mutex
	script []acceptResult
}

type acceptResult struct {
	conn net.Conn
	err  error
}

type tempErr struct{}

func (tempErr) Error() string   { return "resource temporarily unavailable" }
func (tempErr) Timeout() bool   { return false }
func (tempErr) Temporary() bool { return true }

func (l *scriptedListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.script) == 0 {
		return nil, net.ErrClosed
	}
	r := l.script[0]
	l.script = l.script[1:]
	return r.conn, r.err
}
func (l *scriptedListener) Close() error   { return nil }
func (l *scriptedListener) Addr() net.Addr { return &net.TCPAddr{} }

func TestListenAndServeRetriesTransientAcceptErrors(t *testing.T) {
	factory, _ := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory})

	ln := &scriptedListener{script: []acceptResult{
		{err: tempErr{}},
		{err: tempErr{}},
		{err: fmt.Errorf("weird accept failure")},
	}}
	var reported []error
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.ListenAndServe(ln, func(err error) {
			mu.Lock()
			reported = append(reported, err)
			mu.Unlock()
		})
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("ListenAndServe did not stop on closed listener")
	}
	mu.Lock()
	defer mu.Unlock()
	// All three errors retried and reported; only net.ErrClosed ends
	// the loop.
	if len(reported) != 3 {
		t.Fatalf("reported %d errors, want 3: %v", len(reported), reported)
	}
}

func isRejected(err error) bool { return errors.Is(err, ErrRejected) }

func BenchmarkServerConcurrentClients(b *testing.B) {
	// Same epoch workload through two server configurations: private
	// per-session database scans ("private") vs every session reading
	// one shared indexed map store ("shared"). The shared store must
	// not regress concurrent throughput — readers pin snapshots with
	// one atomic load and never contend.
	worlds := []struct {
		name    string
		factory core.FrameworkFactory
		w       *world.World
	}{}
	{
		factory, w := offloadWorld(b)
		worlds = append(worlds, struct {
			name    string
			factory core.FrameworkFactory
			w       *world.World
		}{"private", factory, w})
		sharedFactory, sw, _ := sharedStoreWorld(b, telemetry.NewRegistry())
		worlds = append(worlds, struct {
			name    string
			factory core.FrameworkFactory
			w       *world.World
		}{"shared", sharedFactory, sw})
	}
	for _, wd := range worlds {
		factory := wd.factory
		_, snaps := corridorWalk(wd.w, 2, 7, 8)
		for _, nc := range []int{1, 2, 4, 8} {
			benchServerClients(b, fmt.Sprintf("map=%s/clients=%d", wd.name, nc), ServerConfig{Factory: factory}, snaps, nc)
		}
	}

	// Batched scheduler over the shared store: the same epochs, but
	// grouped per tick and served one columnar distance pass per batch.
	batchedFactory, bw, store := sharedStoreWorld(b, telemetry.NewRegistry())
	_, bsnaps := corridorWalk(bw, 2, 7, 8)
	for _, nc := range []int{8, 64} {
		cfg := ServerConfig{
			Factory:     batchedFactory,
			BatchTick:   200 * time.Microsecond,
			BatchStores: map[byte]*mapstore.Store{MapWiFi: store},
		}
		benchServerClients(b, fmt.Sprintf("map=shared-batched/clients=%d", nc), cfg, bsnaps, nc)
	}
}

func benchServerClients(b *testing.B, name string, cfg ServerConfig, snaps []*sensing.Snapshot, nc int) {
	b.Run(name, func(b *testing.B) {
		srv, err := NewServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go srv.ListenAndServe(ln, nil)
		defer func() { _ = ln.Close() }()

		clients := make([]*Client, nc)
		for i := range clients {
			conn, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = conn.Close() }()
			clients[i] = NewClient(conn)
			if err := clients[i].Hello(geo.Pt(2, 2)); err != nil {
				b.Fatal(err)
			}
		}

		// b.N epochs total, split across the concurrent clients:
		// throughput should grow with nc now that sessions no
		// longer serialize on one shared framework.
		b.ResetTimer()
		var wg sync.WaitGroup
		per := b.N / nc
		if per == 0 {
			per = 1
		}
		for _, c := range clients {
			wg.Add(1)
			go func(c *Client) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					if _, err := c.Localize(snaps[i%len(snaps)]); err != nil {
						b.Error(err)
						return
					}
				}
			}(c)
		}
		wg.Wait()
		b.ReportMetric(float64(per*nc)/b.Elapsed().Seconds(), "epochs/s")
	})
}

// TestServerMetricsExposition runs a full walk against an instrumented
// server and checks the RED metrics a scrape would see: session
// counters, epochs served, frame bytes in both directions, and a
// populated step-latency histogram — plus per-session latency
// percentiles in Stats.
func TestServerMetricsExposition(t *testing.T) {
	factory, w := offloadWorld(t)
	reg := telemetry.NewRegistry()
	srv := newTestServer(t, ServerConfig{Factory: factory, MaxSessions: 1, Metrics: reg})

	client := pipeClient(t, srv)
	start, snaps := corridorWalk(w, 2, 3, 25)
	runWalk(t, client, start, snaps)

	// A second client must be rejected (limit 1) and counted.
	c1, c2 := net.Pipe()
	go func() { _ = srv.Serve(c2) }()
	reject := NewClient(c1)
	if err := reject.Hello(start); !errors.Is(err, ErrRejected) {
		t.Fatalf("second hello err = %v, want rejection", err)
	}
	_ = c1.Close()

	snap := reg.Snapshot()
	expect := map[string]float64{
		"uniloc_sessions_opened_total":   1,
		"uniloc_sessions_active":         1,
		"uniloc_sessions_rejected_total": 1,
		"uniloc_epochs_served_total":     25,
	}
	for name, want := range expect {
		if got, ok := snap.Get(name); !ok || got != want {
			t.Errorf("%s = %v ok=%v, want %v", name, got, ok, want)
		}
	}
	// The byte counters increment after the pipe write is consumed, so
	// the server goroutine may still be a hair behind the client's own
	// accounting — poll briefly before failing.
	wantBytes := func(dir string, min int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			v, ok := reg.Snapshot().Get("uniloc_frame_bytes_total", "dir", dir)
			if ok && v >= float64(min) {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("bytes %s = %v ok=%v, want >= client-side count %d", dir, v, ok, min)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	wantBytes("in", client.BytesUp())
	wantBytes("out", client.BytesDown())
	if h := reg.Histogram("uniloc_step_seconds", "", nil); h.Count() != 25 {
		t.Errorf("step histogram count = %d, want 25", h.Count())
	}

	st := srv.Stats()
	if len(st.Sessions) != 1 {
		t.Fatalf("sessions = %+v", st.Sessions)
	}
	row := st.Sessions[0]
	if row.P50Latency <= 0 || row.P95Latency < row.P50Latency {
		t.Errorf("session latency percentiles p50=%v p95=%v", row.P50Latency, row.P95Latency)
	}

	// The scrape itself renders both formats without error.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil || !strings.Contains(sb.String(), "uniloc_step_seconds_bucket") {
		t.Errorf("prometheus render err=%v missing step buckets", err)
	}
}

// TestServerWithoutRegistryStillServes pins the nil-metrics path: all
// instruments are nil and every update must be a safe no-op.
func TestServerWithoutRegistryStillServes(t *testing.T) {
	factory, w := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory}) // Metrics: nil
	client := pipeClient(t, srv)
	start, snaps := corridorWalk(w, 2, 3, 5)
	results := runWalk(t, client, start, snaps)
	if len(results) != 5 {
		t.Fatalf("served %d epochs", len(results))
	}
	if st := srv.Stats(); st.EpochsServed != 5 {
		t.Errorf("stats still work without a registry: %+v", st)
	}
}

// TestStepWorkersParallelSessionsMatchSequential wires the parallel
// epoch pipeline through the server: ServerConfig.StepWorkers must
// reach every session's framework (core.WithParallel semantics), the
// replies must match a sequential server's exactly, Stats must surface
// the setting, and closing a session must stop its worker pool.
func TestStepWorkersParallelSessionsMatchSequential(t *testing.T) {
	factory, w := offloadWorld(t)
	start, snaps := corridorWalk(w, 1.5, 77, 30)

	seqSrv := newTestServer(t, ServerConfig{Factory: factory})
	want := runWalk(t, pipeClient(t, seqSrv), start, snaps)

	parSrv := newTestServer(t, ServerConfig{Factory: factory, StepWorkers: 2})
	if st := parSrv.Stats(); st.StepWorkers != 2 {
		t.Fatalf("Stats().StepWorkers = %d, want 2", st.StepWorkers)
	}

	// Opened sessions carry the configured worker count; Close stops
	// the pool with the session.
	probe, err := parSrv.mgr.Open("probe", start, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := probe.fw.StepWorkers(); got != 2 {
		t.Fatalf("session framework StepWorkers = %d, want 2", got)
	}
	parSrv.mgr.Close(probe)

	got := runWalk(t, pipeClient(t, parSrv), start, snaps)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if *got[i] != *want[i] {
			t.Fatalf("epoch %d: parallel server reply %+v != sequential %+v", i, got[i], want[i])
		}
	}
}
