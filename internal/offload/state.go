package offload

import (
	"fmt"

	"repro/internal/statecodec"
)

// Default bounds for the per-session v4 replay cache. A well-behaved
// client only ever replays its single last unacked epoch, so the
// entry cap exists purely to bound a hostile or buggy client; the
// byte cap additionally bounds what a session contributes to a
// handoff blob.
const (
	DefaultReplayEntries = 16
	DefaultReplayBytes   = 16 * 1024
)

// replayEntry is one answered epoch in a session's replay cache.
type replayEntry struct {
	seq     uint32
	payload []byte
}

// replayCache is the bounded per-session store of recently answered
// epoch results, keyed by the client's v4 sequence number. It replaces
// the original single-slot cache: a session that survives a node
// failover can be asked to replay any epoch the client never saw
// acknowledged, and an unbounded cache would let one session grow
// without limit across a long walk. Oldest entries are evicted first;
// evictions are surfaced so the server can count them
// (uniloc_replay_evictions_total). Owned by the serving goroutine, like
// the rest of the session's protocol state.
type replayCache struct {
	entries    []replayEntry // ascending arrival order: oldest first
	bytes      int
	maxEntries int // <= 0: DefaultReplayEntries
	maxBytes   int // <= 0: DefaultReplayBytes
}

func (c *replayCache) caps() (int, int) {
	me, mb := c.maxEntries, c.maxBytes
	if me <= 0 {
		me = DefaultReplayEntries
	}
	if mb <= 0 {
		mb = DefaultReplayBytes
	}
	return me, mb
}

// get returns the cached result payload for seq, or nil.
func (c *replayCache) get(seq uint32) []byte {
	for i := len(c.entries) - 1; i >= 0; i-- {
		if c.entries[i].seq == seq {
			return c.entries[i].payload
		}
	}
	return nil
}

// put records one answered epoch, replacing any previous entry for the
// same seq, and returns how many entries were evicted to stay within
// the caps. A payload larger than the byte cap on its own still keeps
// exactly one entry — the cache must always be able to answer the most
// recent epoch, or reconnect replay breaks entirely.
func (c *replayCache) put(seq uint32, payload []byte) int {
	for i := range c.entries {
		if c.entries[i].seq == seq {
			c.bytes += len(payload) - len(c.entries[i].payload)
			c.entries[i].payload = payload
			return c.trim()
		}
	}
	c.entries = append(c.entries, replayEntry{seq: seq, payload: payload})
	c.bytes += len(payload)
	return c.trim()
}

// trim evicts oldest-first until the cache fits its caps, always
// retaining at least the newest entry.
func (c *replayCache) trim() int {
	maxEntries, maxBytes := c.caps()
	evicted := 0
	for len(c.entries) > 1 && (len(c.entries) > maxEntries || c.bytes > maxBytes) {
		c.bytes -= len(c.entries[0].payload)
		c.entries[0] = replayEntry{}
		c.entries = c.entries[1:]
		evicted++
	}
	return evicted
}

// sessionStateVersion is the handoff blob's format version. Decoders
// reject anything else: session states cross nodes, and mixed-build
// clusters must fail loudly, not misread bits.
const sessionStateVersion byte = 1

// SessionState is the complete serializable state of one offload
// session — everything a different node needs to continue the walk at
// the exact epoch the origin last served: identity, negotiated
// protocol, the bounded replay cache (so already-stepped epochs are
// re-answered, never re-stepped), the map-store versions the state was
// taken against, and the framework snapshot (schemes, filters, RNG
// stream positions; see core.Framework.Snapshot).
type SessionState struct {
	ClientID string
	Proto    byte
	Seq      uint32 // newest answered epoch sequence number (0: none)
	Replay   []ReplayEntry
	MapVers  map[byte]uint64 // map-store version per map ID at export
	FW       []byte          // core.Framework snapshot blob
}

// ReplayEntry is one answered epoch in an exported SessionState.
type ReplayEntry struct {
	Seq     uint32
	Payload []byte
}

// EncodeSessionState packs a session state into its versioned wire
// form.
func EncodeSessionState(st *SessionState) []byte {
	dst := []byte{sessionStateVersion}
	dst = statecodec.AppendString(dst, st.ClientID)
	dst = statecodec.AppendU8(dst, st.Proto)
	dst = statecodec.AppendU32(dst, st.Seq)
	dst = statecodec.AppendU32(dst, uint32(len(st.Replay)))
	for _, e := range st.Replay {
		dst = statecodec.AppendU32(dst, e.Seq)
		dst = statecodec.AppendBytes(dst, e.Payload)
	}
	dst = statecodec.AppendU32(dst, uint32(len(st.MapVers)))
	// Map IDs are single bytes: walk the space for deterministic order.
	for id := 0; id < 256; id++ {
		v, ok := st.MapVers[byte(id)]
		if !ok {
			continue
		}
		dst = statecodec.AppendU8(dst, byte(id))
		dst = statecodec.AppendU64(dst, v)
	}
	dst = statecodec.AppendBytes(dst, st.FW)
	return dst
}

// DecodeSessionState unpacks a session state blob.
func DecodeSessionState(b []byte) (*SessionState, error) {
	r := statecodec.NewReader(b)
	if v := r.U8(); r.Err() != nil || v != sessionStateVersion {
		return nil, fmt.Errorf("offload: unsupported session state version")
	}
	st := &SessionState{
		ClientID: r.String(),
		Proto:    r.U8(),
		Seq:      r.U32(),
	}
	nReplay := int(r.U32())
	if r.Err() != nil {
		return nil, fmt.Errorf("offload: truncated session state: %w", r.Err())
	}
	st.Replay = make([]ReplayEntry, 0, nReplay)
	for i := 0; i < nReplay; i++ {
		st.Replay = append(st.Replay, ReplayEntry{Seq: r.U32(), Payload: r.Bytes()})
	}
	nVers := int(r.U32())
	if r.Err() != nil {
		return nil, fmt.Errorf("offload: truncated session state: %w", r.Err())
	}
	st.MapVers = make(map[byte]uint64, nVers)
	for i := 0; i < nVers; i++ {
		st.MapVers[r.U8()] = r.U64()
	}
	st.FW = r.Bytes()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("offload: truncated session state: %w", err)
	}
	return st, nil
}
