package offload

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/mapstore"
	"repro/internal/rf"
	"repro/internal/telemetry"
)

// TestVersionMatrix runs the full pairwise client×server version
// matrix over v2–v5: every combination must negotiate min(client,
// server), serve a short walk end to end, and enforce the negotiated
// feature set on both sides (surveys are the observable one — a v2
// session must refuse them client-side, a v3+ session must deliver
// them to the map store).
func TestVersionMatrix(t *testing.T) {
	versions := []byte{ProtocolV2, ProtocolV3, ProtocolV4, ProtocolV5}
	for _, sv := range versions {
		for _, cv := range versions {
			t.Run(fmt.Sprintf("server_v%d/client_v%d", sv, cv), func(t *testing.T) {
				factory, w, store := sharedStoreWorld(t, telemetry.NewRegistry())
				srv := newTestServer(t, ServerConfig{
					Factory:     factory,
					MaxProtocol: sv,
					MapStores:   map[byte]*mapstore.Store{MapWiFi: store},
				})
				client := pipeClient(t, srv)
				client.SetMaxProtocol(cv)

				want := sv
				if cv < sv {
					want = cv
				}
				start, snaps := corridorWalk(w, 2, int64(sv)*10+int64(cv), 4)
				results := runWalk(t, client, start, snaps)
				if len(results) != 4 || !results[len(results)-1].OK {
					t.Fatalf("walk failed at v%d×v%d: %+v", sv, cv, results[len(results)-1])
				}
				if got := client.Proto(); got != want {
					t.Fatalf("negotiated v%d, want v%d", got, want)
				}
				feats := Features(want)
				if feats != (VersionFeatures{Surveys: want >= ProtocolV3, Resume: want >= ProtocolV4, Trace: want >= ProtocolV5}) {
					t.Fatalf("Features(%d) = %+v", want, feats)
				}

				err := client.SubmitSurvey(MapWiFi, geo.Pt(3, 3),
					rf.Vector{{ID: "a0", RSSI: -48}, {ID: "a1", RSSI: -61}})
				if feats.Surveys {
					if err != nil {
						t.Fatalf("v%d survey refused: %v", want, err)
					}
					// The frame is fire-and-forget; a follow-up epoch orders
					// the stream so the survey has been ingested by the time
					// its result returns.
					if _, err := client.Localize(snaps[len(snaps)-1]); err != nil {
						t.Fatal(err)
					}
					if store.Pending() != 1 {
						t.Fatalf("store pending = %d after v%d survey, want 1", store.Pending(), want)
					}
				} else {
					if !errors.Is(err, ErrProtocol) {
						t.Fatalf("v%d survey err = %v, want ErrProtocol", want, err)
					}
					// The gate must fire client-side: nothing reached the wire,
					// the session is still healthy.
					if _, err := client.Localize(snaps[len(snaps)-1]); err != nil {
						t.Fatalf("session broken after refused survey: %v", err)
					}
				}
			})
		}
	}
}

// TestServerRejectsSurveyOnV2Session covers the server half of the
// feature gate: a hand-rolled MsgSurvey on a v2 session is a protocol
// error (exactly what a real v2 server, which predates the frame type,
// would produce), not a silent ingest.
func TestServerRejectsSurveyOnV2Session(t *testing.T) {
	factory, w, store := sharedStoreWorld(t, telemetry.NewRegistry())
	srv := newTestServer(t, ServerConfig{
		Factory:   factory,
		MapStores: map[byte]*mapstore.Store{MapWiFi: store},
	})
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(c2) }()
	t.Cleanup(func() { _ = c1.Close() })
	client := NewClient(c1)
	client.SetMaxProtocol(ProtocolV2)
	start, snaps := corridorWalk(w, 2, 7, 1)
	runWalk(t, client, start, snaps)

	// Bypass the client-side gate and push the frame raw.
	sv := &Survey{Map: MapWiFi, X: 3, Y: 3, Vec: rf.Vector{{ID: "a0", RSSI: -50}, {ID: "a1", RSSI: -60}}}
	if _, err := WriteFrame(client.conn, MsgSurvey, EncodeSurvey(sv)); err != nil {
		t.Fatal(err)
	}
	// The server kills the epoch stream with a protocol error, never a
	// result.
	select {
	case err := <-done:
		if !errors.Is(err, ErrProtocol) {
			t.Fatalf("server exit = %v, want ErrProtocol", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server kept serving after a v2 survey frame")
	}
	if store.Pending() != 0 {
		t.Fatalf("survey leaked into the store on a v2 session: pending = %d", store.Pending())
	}
}
