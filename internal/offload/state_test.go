package offload

import (
	"bytes"
	"fmt"
	"testing"
)

// TestReplayCacheBounds pins the v4 replay cache's eviction contract:
// entries and bytes are capped, oldest entries go first, the newest
// entry always survives, and every cached seq stays answerable until
// evicted.
func TestReplayCacheBounds(t *testing.T) {
	c := replayCache{maxEntries: 4, maxBytes: 1 << 20}
	evicted := 0
	for seq := uint32(1); seq <= 10; seq++ {
		evicted += c.put(seq, []byte(fmt.Sprintf("result-%d", seq)))
	}
	if evicted != 6 {
		t.Fatalf("evicted %d entries, want 6", evicted)
	}
	if len(c.entries) != 4 {
		t.Fatalf("cache holds %d entries, want 4", len(c.entries))
	}
	for seq := uint32(1); seq <= 6; seq++ {
		if c.get(seq) != nil {
			t.Errorf("seq %d should have been evicted", seq)
		}
	}
	for seq := uint32(7); seq <= 10; seq++ {
		want := fmt.Sprintf("result-%d", seq)
		if got := c.get(seq); string(got) != want {
			t.Errorf("seq %d: got %q, want %q", seq, got, want)
		}
	}

	// Byte cap: payloads of 100 bytes under a 250-byte cap keep 2.
	c = replayCache{maxEntries: 100, maxBytes: 250}
	for seq := uint32(1); seq <= 5; seq++ {
		c.put(seq, make([]byte, 100))
	}
	if len(c.entries) != 2 || c.bytes != 200 {
		t.Fatalf("byte-capped cache holds %d entries / %d bytes, want 2 / 200", len(c.entries), c.bytes)
	}

	// An oversized payload still keeps exactly the newest entry.
	c.put(6, make([]byte, 1000))
	if len(c.entries) != 1 || c.get(6) == nil {
		t.Fatalf("oversized newest entry must survive alone, have %d entries", len(c.entries))
	}

	// Re-putting an existing seq replaces, never duplicates.
	c = replayCache{}
	c.put(1, []byte("a"))
	c.put(1, []byte("bb"))
	if len(c.entries) != 1 || string(c.get(1)) != "bb" || c.bytes != 2 {
		t.Fatalf("re-put must replace: %d entries, %q, %d bytes", len(c.entries), c.get(1), c.bytes)
	}
}

// TestSessionStateRoundTrip pins the handoff blob codec.
func TestSessionStateRoundTrip(t *testing.T) {
	st := &SessionState{
		ClientID: "phone-42",
		Proto:    ProtocolV5,
		Seq:      17,
		Replay: []ReplayEntry{
			{Seq: 16, Payload: []byte("r16")},
			{Seq: 17, Payload: []byte("r17")},
		},
		MapVers: map[byte]uint64{MapWiFi: 9, MapCellular: 4},
		FW:      []byte{1, 2, 3, 4},
	}
	blob := EncodeSessionState(st)
	got, err := DecodeSessionState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.ClientID != st.ClientID || got.Proto != st.Proto || got.Seq != st.Seq {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Replay) != 2 || got.Replay[0].Seq != 16 || !bytes.Equal(got.Replay[1].Payload, []byte("r17")) {
		t.Fatalf("replay mismatch: %+v", got.Replay)
	}
	if got.MapVers[MapWiFi] != 9 || got.MapVers[MapCellular] != 4 {
		t.Fatalf("map versions mismatch: %+v", got.MapVers)
	}
	if !bytes.Equal(got.FW, st.FW) {
		t.Fatalf("framework blob mismatch")
	}

	// Truncations and version skew fail loudly, never misread.
	if _, err := DecodeSessionState(blob[:len(blob)-3]); err == nil {
		t.Fatal("truncated blob must be rejected")
	}
	bad := append([]byte{}, blob...)
	bad[0] = 99
	if _, err := DecodeSessionState(bad); err == nil {
		t.Fatal("unknown version must be rejected")
	}
}
