package offload

import (
	"bytes"
	"math"
	"net"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/gnss"
	"repro/internal/imu"
	"repro/internal/rf"
	"repro/internal/sensing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello")
	n, err := WriteFrame(&buf, MsgWiFiVector, payload)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3+len(payload) {
		t.Errorf("wrote %d bytes", n)
	}
	typ, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgWiFiVector || string(got) != "hello" {
		t.Errorf("round trip = %v %q", typ, got)
	}
}

func TestFrameEmptyPayload(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgEpochEnd, nil); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := ReadFrame(&buf)
	if err != nil || typ != MsgEpochEnd || len(payload) != 0 {
		t.Errorf("empty frame: %v %v %v", typ, payload, err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteFrame(&buf, MsgWiFiVector, make([]byte, maxPayload+1)); err == nil {
		t.Error("oversized payload should fail")
	}
}

func TestStepCodecIs4Bytes(t *testing.T) {
	ev := &imu.StepEvent{HeadingR: 1.2345, LengthM: 0.73, PeriodS: 0.5}
	b := EncodeStep(ev)
	if len(b) != 4 {
		t.Fatalf("step update must be the paper's 4 bytes, got %d", len(b))
	}
	back, err := DecodeStep(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.HeadingR-ev.HeadingR) > 1e-3 {
		t.Errorf("heading %v -> %v", ev.HeadingR, back.HeadingR)
	}
	if math.Abs(back.LengthM-ev.LengthM) > 0.005 {
		t.Errorf("length %v -> %v", ev.LengthM, back.LengthM)
	}
	if _, err := DecodeStep([]byte{1, 2, 3}); err == nil {
		t.Error("short step should fail")
	}
}

func TestStepCodecNegativeHeading(t *testing.T) {
	ev := &imu.StepEvent{HeadingR: -2.9, LengthM: 0.6}
	back, err := DecodeStep(EncodeStep(ev))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(back.HeadingR-ev.HeadingR) > 1e-3 {
		t.Errorf("negative heading %v -> %v", ev.HeadingR, back.HeadingR)
	}
}

func TestVectorCodec(t *testing.T) {
	v := rf.Vector{{ID: "AP-long-name-01", RSSI: -63.4}, {ID: "b", RSSI: -91.2}}
	back, err := DecodeVector(EncodeVector(v))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("len = %d", len(back))
	}
	for i := range v {
		if back[i].ID != v[i].ID {
			t.Errorf("id %q -> %q", v[i].ID, back[i].ID)
		}
		if math.Abs(back[i].RSSI-v[i].RSSI) > 0.05 {
			t.Errorf("rssi %v -> %v", v[i].RSSI, back[i].RSSI)
		}
	}
	// Empty vector round-trips.
	empty, err := DecodeVector(EncodeVector(nil))
	if err != nil || len(empty) != 0 {
		t.Error("empty vector round trip failed")
	}
	// Truncated payload rejected.
	if _, err := DecodeVector(EncodeVector(v)[:5]); err == nil {
		t.Error("truncated vector should fail")
	}
}

func TestFixCodec(t *testing.T) {
	f := &gnss.Fix{Pos: geo.LatLon{Lat: 1.34832, Lon: 103.68311}, NumSats: 9, HDOP: 1.13}
	back, err := DecodeFix(EncodeFix(f))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumSats != 9 || math.Abs(back.HDOP-1.13) > 1e-3 {
		t.Errorf("fix meta %d %v", back.NumSats, back.HDOP)
	}
	if math.Abs(back.Pos.Lat-f.Pos.Lat) > 1e-9 || math.Abs(back.Pos.Lon-f.Pos.Lon) > 1e-9 {
		t.Error("lat/lon must round-trip at full precision")
	}
	if _, err := DecodeFix([]byte{1}); err == nil {
		t.Error("short fix should fail")
	}
}

func TestContextCodec(t *testing.T) {
	s := &sensing.Snapshot{Epoch: 1234, LightLux: 10543.5, MagVarUT: 2.25, GPSEnabled: true}
	back, err := DecodeContext(EncodeContext(s))
	if err != nil {
		t.Fatal(err)
	}
	if back.Epoch != 1234 || !back.GPSEnabled {
		t.Error("context meta wrong")
	}
	if math.Abs(back.LightLux-s.LightLux) > 1 || math.Abs(back.MagVarUT-s.MagVarUT) > 0.01 {
		t.Error("context values wrong")
	}
	if back.T != time.Duration(1234)*sensing.EpochPeriod {
		t.Errorf("T = %v", back.T)
	}
}

func TestLandmarkCodec(t *testing.T) {
	l := &sensing.LandmarkHit{ID: "lm07-turn", Pos: sensing.Landmark2D{X: 56.5, Y: 10.5}, Kind: "turn"}
	back, err := DecodeLandmark(EncodeLandmark(l))
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != l.ID || back.Kind != l.Kind {
		t.Error("landmark meta wrong")
	}
	if math.Abs(back.Pos.X-56.5) > 1e-3 || math.Abs(back.Pos.Y-10.5) > 1e-3 {
		t.Error("landmark position wrong")
	}
	if _, err := DecodeLandmark([]byte{5, 'a'}); err == nil {
		t.Error("truncated landmark should fail")
	}
}

func TestResultCodec(t *testing.T) {
	r := &Result{X: 12.5, Y: -3.25, BestX: 11, BestY: -2, Selected: "fusion", Env: 1, OK: true}
	back, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if back.Selected != "fusion" || back.Env != 1 {
		t.Error("result meta wrong")
	}
	if !back.OK {
		t.Error("OK flag must round-trip")
	}
	// An unavailable epoch round-trips OK=false so the client can
	// distinguish "no scheme available" from a fix at the origin.
	unavail, err := DecodeResult(EncodeResult(&Result{}))
	if err != nil {
		t.Fatal(err)
	}
	if unavail.OK {
		t.Error("zero result must decode with OK=false")
	}
	if math.Abs(back.X-12.5) > 1e-3 || math.Abs(back.BestY+2) > 1e-3 {
		t.Error("result coordinates wrong")
	}
	if back.Pos() != geo.Pt(back.X, back.Y) || back.BestPos() != geo.Pt(back.BestX, back.BestY) {
		t.Error("Pos helpers wrong")
	}
	if _, err := DecodeResult([]byte{1, 2}); err == nil {
		t.Error("short result should fail")
	}
}

func TestHelloCodec(t *testing.T) {
	h := &Hello{Version: ProtocolVersion, StartX: 12.25, StartY: -4.5, ClientID: "phone-7"}
	back, err := DecodeHello(EncodeHello(h))
	if err != nil {
		t.Fatal(err)
	}
	if back.Version != ProtocolVersion || back.ClientID != "phone-7" {
		t.Errorf("hello meta = %+v", back)
	}
	if math.Abs(back.StartX-12.25) > 1e-3 || math.Abs(back.StartY+4.5) > 1e-3 {
		t.Error("hello start wrong")
	}
	// Anonymous client (no ID) round-trips.
	anon, err := DecodeHello(EncodeHello(&Hello{Version: ProtocolVersion}))
	if err != nil || anon.ClientID != "" {
		t.Errorf("anonymous hello: %+v %v", anon, err)
	}
	if _, err := DecodeHello([]byte{2, 0}); err == nil {
		t.Error("short hello should fail")
	}
	if _, err := DecodeHello(EncodeHello(h)[:11]); err == nil {
		t.Error("truncated hello should fail")
	}
}

func TestWelcomeCodec(t *testing.T) {
	w := &Welcome{Version: ProtocolVersion, OK: true, SessionID: 90210}
	back, err := DecodeWelcome(EncodeWelcome(w))
	if err != nil {
		t.Fatal(err)
	}
	if !back.OK || back.SessionID != 90210 || back.Version != ProtocolVersion {
		t.Errorf("welcome = %+v", back)
	}
	rej, err := DecodeWelcome(EncodeWelcome(&Welcome{Version: ProtocolVersion, Reason: "offload: server full"}))
	if err != nil {
		t.Fatal(err)
	}
	if rej.OK || rej.Reason != "offload: server full" {
		t.Errorf("rejection = %+v", rej)
	}
	if _, err := DecodeWelcome([]byte{2, 1}); err == nil {
		t.Error("short welcome should fail")
	}
}

func TestLinkModel(t *testing.T) {
	l := WiFiLink()
	if l.TransferTime(0) != 0 {
		t.Error("zero bytes should be free")
	}
	small := l.TransferTime(100)
	big := l.TransferTime(100000)
	if small >= big {
		t.Error("more bytes must take longer")
	}
	if small < l.BaseLatency {
		t.Error("latency floor missing")
	}
	if CellLink().TransferTime(1000) <= WiFiLink().TransferTime(1000) {
		t.Error("cellular link should be slower")
	}
	if l.RoundTrip(100, 50) != l.TransferTime(100)+l.TransferTime(50) {
		t.Error("RoundTrip must sum both directions")
	}
	hs := HandshakeTime(l, "phone-1")
	if hs < 2*l.BaseLatency {
		t.Errorf("handshake %v must pay latency both ways", hs)
	}
	if HandshakeTime(l, "a-much-longer-client-identifier") <= hs-time.Millisecond {
		t.Error("longer client IDs cannot make the handshake cheaper")
	}
}

// pipeConn runs the server over net.Pipe and returns a client.
func pipeClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	c1, c2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(c2) }()
	t.Cleanup(func() {
		_ = c1.Close()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("server: %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Error("server did not stop")
		}
	})
	return NewClient(c1)
}
