package offload

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/geo"
	"repro/internal/telemetry"
)

// liveServer is a killable TCP offload server for restart tests: it
// tracks accepted connections so "kill" can sever live sessions the
// way a crashed process would.
type liveServer struct {
	srv *Server
	ln  net.Listener

	mu    sync.Mutex
	conns []net.Conn
	wg    sync.WaitGroup
}

func startLiveServer(t *testing.T, addr string, cfg ServerConfig) *liveServer {
	t.Helper()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	ls := &liveServer{srv: newTestServer(t, cfg), ln: ln}
	ls.wg.Add(1)
	go func() {
		defer ls.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			ls.mu.Lock()
			ls.conns = append(ls.conns, conn)
			ls.mu.Unlock()
			ls.wg.Add(1)
			go func() {
				defer ls.wg.Done()
				_ = ls.srv.Serve(conn)
			}()
		}
	}()
	return ls
}

// kill closes the listener and every live connection — a process
// crash, as far as clients can tell.
func (ls *liveServer) kill() {
	_ = ls.ln.Close()
	ls.mu.Lock()
	for _, c := range ls.conns {
		_ = c.Close()
	}
	ls.mu.Unlock()
	ls.wg.Wait()
}

// TestClientReconnectAcrossServerRestart is the offload-link half of
// the acceptance criteria: the server dies mid-walk, a fresh one takes
// over the address, and the client's backoff reconnect + re-handshake
// (same client ID, resuming at the last served position) finishes the
// walk. Run under -race in CI.
func TestClientReconnectAcrossServerRestart(t *testing.T) {
	factory, w := offloadWorld(t)
	cfg := ServerConfig{Factory: factory}
	start, snaps := corridorWalk(w, 2, 3, 30)

	ls := startLiveServer(t, "127.0.0.1:0", cfg)
	addr := ls.ln.Addr().String()
	defer func() { ls.kill() }()

	dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	client := NewClient(conn, "phone-restart")
	client.SetTimeout(2 * time.Second)
	client.SetReconnect(dial, Backoff{Min: 5 * time.Millisecond, Max: 100 * time.Millisecond, Attempts: 20, Seed: 1})
	client.SetMetrics(reg)
	defer func() { _ = client.Close() }()

	if err := client.Hello(start); err != nil {
		t.Fatalf("hello: %v", err)
	}
	for i, snap := range snaps {
		if i == 10 {
			// The server process dies and is replaced.
			ls.kill()
			ls = startLiveServer(t, addr, cfg)
		}
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		if math.IsNaN(res.X) || math.IsNaN(res.Y) {
			t.Fatalf("epoch %d: NaN position after restart", i)
		}
	}
	if client.Epochs() != len(snaps) {
		t.Errorf("epochs = %d, want %d", client.Epochs(), len(snaps))
	}
	if client.Reconnects() < 1 {
		t.Error("walk crossed a server restart without a recorded reconnect")
	}
	if v, _ := reg.Snapshot().Get("offload_reconnects_total"); v < 1 {
		t.Errorf("offload_reconnects_total = %v, want >= 1", v)
	}
	// The replacement server saw a fresh handshake under the same ID.
	st := ls.srv.Stats()
	if st.Opened < 1 || len(st.Sessions) != 1 || st.Sessions[0].ClientID != "phone-restart" {
		t.Errorf("replacement server stats = %+v", st)
	}
}

// TestClientTimeoutOnStalledServer: a server that accepts the session
// and then stops consuming must not hang Localize forever — the
// configured deadline fires and is counted.
func TestClientTimeoutOnStalledServer(t *testing.T) {
	_, w := offloadWorld(t)
	_, snaps := corridorWalk(w, 2, 3, 1)
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	go func() {
		// Speak just enough protocol to admit the session, then stall.
		if tp, payload, err := ReadFrame(b); err == nil && tp == MsgHello {
			_, _ = DecodeHello(payload)
			_, _ = WriteFrame(b, MsgWelcome, EncodeWelcome(&Welcome{Version: ProtocolVersion, OK: true, SessionID: 1}))
		}
		select {} // never read again
	}()

	reg := telemetry.NewRegistry()
	client := NewClient(a, "phone-stall")
	client.SetTimeout(50 * time.Millisecond)
	client.SetMetrics(reg)
	if err := client.Hello(geo.Pt(0, 0)); err != nil {
		t.Fatalf("hello: %v", err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := client.Localize(snaps[0])
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Localize against a stalled server should fail")
		}
		if !isTimeout(err) {
			t.Fatalf("want timeout error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Localize blocked past its deadline — the stall defense is missing")
	}
	if v, _ := reg.Snapshot().Get("deadline_timeouts_total"); v < 1 {
		t.Errorf("deadline_timeouts_total = %v, want >= 1", v)
	}
}

// TestServerEvictsStalledClientAtEpochDeadline: a client that
// handshakes and then goes silent is evicted at the epoch deadline and
// counted, instead of pinning a serving goroutine forever.
func TestServerEvictsStalledClientAtEpochDeadline(t *testing.T) {
	factory, _ := offloadWorld(t)
	srv := newTestServer(t, ServerConfig{Factory: factory, EpochTimeout: 50 * time.Millisecond})
	a, b := net.Pipe()
	defer a.Close()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(b) }()

	client := NewClient(a, "phone-silent")
	if err := client.Hello(geo.Pt(2, 2)); err != nil {
		t.Fatalf("hello: %v", err)
	}
	// Send nothing further.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("deadline eviction should be a clean exit, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never evicted the silent session")
	}
	st := srv.Stats()
	if st.DeadlineTimeouts != 1 {
		t.Errorf("Stats().DeadlineTimeouts = %d, want 1", st.DeadlineTimeouts)
	}
	if st.Active != 0 {
		t.Errorf("evicted session still live: %+v", st)
	}
}

// TestWalkSurvivesFaultyLink drives a full walk through a
// fault-injecting connection (drops, truncations, corruption) with
// reconnect armed: every epoch must eventually be served, and no
// NaN may reach a result. Deterministic under the fixed seeds.
func TestWalkSurvivesFaultyLink(t *testing.T) {
	factory, w := offloadWorld(t)
	cfg := ServerConfig{Factory: factory, EpochTimeout: 2 * time.Second}
	start, snaps := corridorWalk(w, 2, 3, 40)

	ls := startLiveServer(t, "127.0.0.1:0", cfg)
	defer func() { ls.kill() }()
	addr := ls.ln.Addr().String()

	var dialSeq int64
	dial := func() (net.Conn, error) {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		// Every redial gets its own deterministic fault stream.
		dialSeq++
		return faultinject.WrapConn(conn, faultinject.ConnConfig{
			Seed: 100 + dialSeq, DropProb: 0.01, TruncateProb: 0.01, CorruptProb: 0.01,
		}), nil
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient(conn, "phone-chaos")
	client.SetTimeout(time.Second)
	client.SetReconnect(dial, Backoff{Min: 2 * time.Millisecond, Max: 50 * time.Millisecond, Attempts: 25, Seed: 9})
	defer func() { _ = client.Close() }()

	if err := client.Hello(start); err != nil {
		t.Fatalf("hello: %v", err)
	}
	for i, snap := range snaps {
		res, err := client.Localize(snap)
		if err != nil {
			t.Fatalf("epoch %d died despite reconnect: %v", i, err)
		}
		if math.IsNaN(res.X) || math.IsNaN(res.Y) || math.IsInf(res.X, 0) || math.IsInf(res.Y, 0) {
			t.Fatalf("epoch %d: non-finite result through faulty link", i)
		}
	}
	if client.Epochs() != len(snaps) {
		t.Errorf("epochs = %d, want %d", client.Epochs(), len(snaps))
	}
}
