package offload

import "time"

// LinkModel models the phone↔server radio link for the response-time
// decomposition (Table V). Transfer time = base latency + payload ÷
// bandwidth. WiFi and cellular links differ mainly in latency.
type LinkModel struct {
	Name        string
	BaseLatency time.Duration // one-way latency
	Bandwidth   float64       // bytes per second
}

// WiFiLink returns a campus-WLAN-like link.
func WiFiLink() LinkModel {
	return LinkModel{Name: "wifi", BaseLatency: 18 * time.Millisecond, Bandwidth: 2.0e6}
}

// CellLink returns a cellular-data-like link (used where WiFi is not
// available; pervasively available per §IV-C).
func CellLink() LinkModel {
	return LinkModel{Name: "cellular", BaseLatency: 55 * time.Millisecond, Bandwidth: 0.6e6}
}

// TransferTime returns the modeled one-way transfer time for n bytes.
func (l LinkModel) TransferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return l.BaseLatency + time.Duration(float64(n)/l.Bandwidth*float64(time.Second))
}
