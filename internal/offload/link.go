package offload

import "time"

// LinkModel models the phone↔server radio link for the response-time
// decomposition (Table V). Transfer time = base latency + payload ÷
// bandwidth. WiFi and cellular links differ mainly in latency.
type LinkModel struct {
	Name        string
	BaseLatency time.Duration // one-way latency
	Bandwidth   float64       // bytes per second
}

// WiFiLink returns a campus-WLAN-like link.
func WiFiLink() LinkModel {
	return LinkModel{Name: "wifi", BaseLatency: 18 * time.Millisecond, Bandwidth: 2.0e6}
}

// CellLink returns a cellular-data-like link (used where WiFi is not
// available; pervasively available per §IV-C).
func CellLink() LinkModel {
	return LinkModel{Name: "cellular", BaseLatency: 55 * time.Millisecond, Bandwidth: 0.6e6}
}

// TransferTime returns the modeled one-way transfer time for n bytes.
func (l LinkModel) TransferTime(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return l.BaseLatency + time.Duration(float64(n)/l.Bandwidth*float64(time.Second))
}

// RoundTrip returns the modeled time to upload up bytes and receive
// down bytes (one request/response exchange of the offload protocol).
func (l LinkModel) RoundTrip(up, down int) time.Duration {
	return l.TransferTime(up) + l.TransferTime(down)
}

// HandshakeTime returns the modeled one-off cost of the protocol-v2
// session handshake (hello up, welcome down) for a client with the
// given ID. It is paid once per walk, not per epoch.
func HandshakeTime(l LinkModel, clientID string) time.Duration {
	const frame = 3 // [type][uint16 length]
	up := frame + len(EncodeHello(&Hello{Version: ProtocolVersion, ClientID: clientID}))
	down := frame + len(EncodeWelcome(&Welcome{Version: ProtocolVersion, OK: true}))
	return l.RoundTrip(up, down)
}
