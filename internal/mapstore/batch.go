package mapstore

import (
	"math"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/rf"
)

// AppendDistancesBatch computes the full distance column for several
// observations against this snapshot in one point-major pass: each
// interned fingerprint row is walked once per query while it is hot,
// instead of once per (session, scheme) consumer. Entry [q] holds the
// same values, in the same order, as AppendDistances(nil, obs[q]) —
// bit-identical, since every (query, point) pair runs the exact float
// operation sequence of distSqInterned either way. Observations naming
// a transmitter the map has never heard fall back to the linear path
// per query, exactly as the single-observation entry points do.
func (s *Snapshot) AppendDistancesBatch(obs []rf.Vector) [][]float64 {
	out := make([][]float64, len(obs))
	n := s.Len()
	type query struct {
		qi   int
		ids  []int32
		rssi []float64
	}
	interned := make([]query, 0, len(obs))
	for qi, o := range obs {
		s.met.lookup(opDistances)
		ids, rssi, ok := s.intern(o)
		if !ok {
			out[qi] = s.db.AppendDistances(make([]float64, 0, n), o)
			continue
		}
		out[qi] = make([]float64, n)
		interned = append(interned, query{qi: qi, ids: ids, rssi: rssi})
	}
	for i := 0; i < n; i++ {
		pt := int32(i)
		for _, q := range interned {
			out[q.qi][i] = math.Sqrt(s.distSqInterned(q.ids, q.rssi, pt))
		}
	}
	return out
}

// LikCell identifies one cell of the RSSI likelihood grid the schemes
// memoize over: the grid of edge cellM anchored at the origin, so cell
// (X, Y) covers [X*cellM, (X+1)*cellM) × [Y*cellM, (Y+1)*cellM).
type LikCell struct{ X, Y int32 }

// LikCellFor returns the likelihood-grid cell containing p.
func LikCellFor(p geo.Point, cellM float64) LikCell {
	return LikCell{int32(math.Floor(p.X / cellM)), int32(math.Floor(p.Y / cellM))}
}

// Center returns the cell's center — the canonical position every
// consumer resolves the cell's representative fingerprint through.
func (c LikCell) Center(cellM float64) geo.Point {
	return geo.Pt((float64(c.X)+0.5)*cellM, (float64(c.Y)+0.5)*cellM)
}

// CellLikelihood converts an RSSI-space distance into the canonical
// fingerprint likelihood: a Gaussian over distance with a small floor
// so a bad match never zeroes a particle outright. The fusion scheme's
// private memo, the shared-compute rows, and CellLikelihoodsBatch all
// evaluate likelihoods through this one expression, which is what
// makes their outputs bit-identical.
func CellLikelihood(d, scale float64) float64 {
	return math.Max(math.Exp(-d*d/(2*scale*scale)), 1e-3)
}

// CellLikelihoodsBatch evaluates CellLikelihood for every observation
// against every cell representative in one fused rep-major pass: each
// representative fingerprint row stays hot while all queries consume
// it, mirroring AppendDistancesBatch. reps[k] is the fingerprint index
// representing cell k (a NearestIndexAt result at the cell center); a
// negative rep yields the neutral likelihood 1, matching the private
// path's behavior when no fingerprint exists. Entry [q][k] is
// Float64bits-identical to the private computation for (obs[q], cell
// k): for interned observations math.Sqrt(distSqInterned(...)) replays
// rf.Distance exactly, and unknown-transmitter observations fall back
// to rf.Distance itself.
func (s *Snapshot) CellLikelihoodsBatch(obs []rf.Vector, reps []int32, scale float64) [][]float64 {
	out := make([][]float64, len(obs))
	type query struct {
		qi   int
		ids  []int32
		rssi []float64
	}
	interned := make([]query, 0, len(obs))
	for qi, o := range obs {
		out[qi] = make([]float64, len(reps))
		ids, rssi, ok := s.intern(o)
		if !ok {
			for k, rep := range reps {
				l := 1.0
				if rep >= 0 {
					d := rf.Distance(o, s.db.Points[rep].Vec, s.db.Floor)
					l = CellLikelihood(d, scale)
				}
				out[qi][k] = l
			}
			continue
		}
		interned = append(interned, query{qi: qi, ids: ids, rssi: rssi})
	}
	for k, rep := range reps {
		if rep < 0 {
			for _, q := range interned {
				out[q.qi][k] = 1.0
			}
			continue
		}
		for _, q := range interned {
			d := math.Sqrt(s.distSqInterned(q.ids, q.rssi, rep))
			out[q.qi][k] = CellLikelihood(d, scale)
		}
	}
	return out
}

// NearestBatch answers one Nearest query per observation. Each query
// keeps the snapshot's signal-space cell pruning (already per-query
// optimal), so the batch entry point exists for call-site symmetry
// with AppendDistancesBatch rather than for a fused kernel; results
// are bit-identical to per-query Nearest calls.
func (s *Snapshot) NearestBatch(obs []rf.Vector, k int) [][]fingerprint.Match {
	out := make([][]fingerprint.Match, len(obs))
	for i, o := range obs {
		out[i] = s.Nearest(o, k)
	}
	return out
}
