package mapstore

import (
	"math"

	"repro/internal/fingerprint"
	"repro/internal/rf"
)

// AppendDistancesBatch computes the full distance column for several
// observations against this snapshot in one point-major pass: each
// interned fingerprint row is walked once per query while it is hot,
// instead of once per (session, scheme) consumer. Entry [q] holds the
// same values, in the same order, as AppendDistances(nil, obs[q]) —
// bit-identical, since every (query, point) pair runs the exact float
// operation sequence of distSqInterned either way. Observations naming
// a transmitter the map has never heard fall back to the linear path
// per query, exactly as the single-observation entry points do.
func (s *Snapshot) AppendDistancesBatch(obs []rf.Vector) [][]float64 {
	out := make([][]float64, len(obs))
	n := s.Len()
	type query struct {
		qi   int
		ids  []int32
		rssi []float64
	}
	interned := make([]query, 0, len(obs))
	for qi, o := range obs {
		s.met.lookup(opDistances)
		ids, rssi, ok := s.intern(o)
		if !ok {
			out[qi] = s.db.AppendDistances(make([]float64, 0, n), o)
			continue
		}
		out[qi] = make([]float64, n)
		interned = append(interned, query{qi: qi, ids: ids, rssi: rssi})
	}
	for i := 0; i < n; i++ {
		pt := int32(i)
		for _, q := range interned {
			out[q.qi][i] = math.Sqrt(s.distSqInterned(q.ids, q.rssi, pt))
		}
	}
	return out
}

// NearestBatch answers one Nearest query per observation. Each query
// keeps the snapshot's signal-space cell pruning (already per-query
// optimal), so the batch entry point exists for call-site symmetry
// with AppendDistancesBatch rather than for a fused kernel; results
// are bit-identical to per-query Nearest calls.
func (s *Snapshot) NearestBatch(obs []rf.Vector, k int) [][]fingerprint.Match {
	out := make([][]fingerprint.Match, len(obs))
	for i, o := range obs {
		out[i] = s.Nearest(o, k)
	}
	return out
}
