package mapstore

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/rf"
)

// TestBatchKernelsMatchPerQuery pins the batch scheduler's kernel
// contract: AppendDistancesBatch and NearestBatch must return exactly
// — Float64bits exactly — what the per-query paths return, for every
// query, including ones with unknown transmitters (the intern-fallback
// path) and sub-audible vectors.
func TestBatchKernelsMatchPerQuery(t *testing.T) {
	db := synthDB(300, 30, 5)
	snap := Build(db, 1, 0, nil)
	rnd := rand.New(rand.NewSource(77))

	queries := make([]rf.Vector, 0, 40)
	for i := 0; i < 36; i++ {
		queries = append(queries, randObs(db, rnd))
	}
	// Adversarial tails: an unknown transmitter (intern fails, the
	// batch pass must fall back to the linear scan for that query
	// only), a duplicate of query 0, and a single-entry vector.
	queries = append(queries,
		rf.Vector{{ID: "not-a-real-ap", RSSI: -55}, {ID: "ap-001", RSSI: -60}},
		append(rf.Vector(nil), queries[0]...),
		rf.Vector{{ID: "ap-002", RSSI: -48}},
	)

	cols := snap.AppendDistancesBatch(queries)
	if len(cols) != len(queries) {
		t.Fatalf("got %d columns for %d queries", len(cols), len(queries))
	}
	for qi, obs := range queries {
		want := snap.AppendDistances(nil, obs)
		if len(cols[qi]) != len(want) {
			t.Fatalf("query %d: column length %d, want %d", qi, len(cols[qi]), len(want))
		}
		for i := range want {
			if math.Float64bits(cols[qi][i]) != math.Float64bits(want[i]) {
				t.Fatalf("query %d point %d: batch %v != per-query %v", qi, i, cols[qi][i], want[i])
			}
		}
	}

	for _, k := range []int{1, 3, 10} {
		batch := snap.NearestBatch(queries, k)
		for qi, obs := range queries {
			want := snap.Nearest(obs, k)
			if !eqMatches(batch[qi], want) {
				t.Fatalf("k=%d query %d: NearestBatch diverged from Nearest", k, qi)
			}
		}
	}

	// Empty batch stays well-defined.
	if out := snap.AppendDistancesBatch(nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d columns", len(out))
	}
}
