// Package mapstore makes the radio map a first-class shared subsystem:
// an indexed, immutable Snapshot over a fingerprint database, and a
// versioned Store that lets every offload session read one shared map
// concurrently while crowdsourced survey points stream in and a
// background compactor atomically swaps in rebuilt snapshots.
//
// The Snapshot carries two indexes over the same points:
//
//   - a uniform spatial grid over fingerprint positions, answering
//     VectorAt, DensityAround, and physical-neighbour queries by
//     expanding-ring search over O(cell) points instead of O(N);
//   - a coarse signal-space pruning structure (per-grid-cell RSSI
//     bounding boxes over interned transmitter IDs) that lets Nearest
//     skip whole cells whose best possible RSSI distance already loses
//     to the current top-k.
//
// Equivalence guarantee: every query returns *bit-identical* results to
// the linear scans in fingerprint.DB — same matches, same order, same
// floats. The β₁/β₂ error-model features feed trained regressions, so
// the indexes must never change a value, only the work done to find it.
// Exact distances are therefore always computed with the same float
// operation sequence as rf.Distance (interned IDs are ranked in string
// order, keeping merge order identical), candidate selection reuses the
// canonical fingerprint.MatchLess ordering, and pruning bounds carry a
// safety margin so float rounding in a bound can only cost extra work,
// never a wrong skip.
package mapstore

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/rf"
)

// Snapshot is one immutable, indexed revision of a radio map. All
// methods are safe for unlimited concurrent use; a Snapshot never
// changes after Build, so readers pinned to one version are fully
// deterministic no matter what the owning Store swaps in behind them.
type Snapshot struct {
	db      *fingerprint.DB // canonical points; also the exact-fallback path
	version uint64
	built   time.Time
	floor   float64
	spacing float64

	// Spatial grid: CSR of point indices per cell, ascending in each
	// cell. gx0/gy0 anchor cell (0,0); cellM is the edge length.
	gx0, gy0 float64
	cellM    float64
	nx, ny   int
	cellOff  []int32
	cellPts  []int32

	// Interned vectors: transmitter IDs mapped to their rank in sorted
	// string order, so an integer merge walk visits (and sums) exactly
	// the float pairs rf.Distance would.
	dict    map[string]int32
	vecOff  []int32
	vecID   []int32
	vecRSSI []float64

	// Per-cell signal bounding boxes: for each cell, the sorted ranks
	// heard anywhere in the cell with the [lo, hi] RSSI envelope,
	// floor-extended when not every point in the cell hears the
	// transmitter.
	sigOff []int32
	sigID  []int32
	sigLo  []float64
	sigHi  []float64

	// Lazily-built physical neighbour lists, cached per radius.
	nbMu sync.Mutex
	nb   map[float64][][]int32

	met *Metrics // nil when unobserved
}

// boundEps returns the pruning safety margin around a squared-distance
// (or distance) bound v: bounds are computed with a different float
// operation order than exact distances, so a skip decision backs off by
// a margin far above accumulated rounding yet far below any difference
// that could distinguish real candidates.
func boundEps(v float64) float64 { return 1e-7 + 1e-9*math.Abs(v) }

// autoCellM picks the grid cell size from the survey spacing: a few
// grid pitches per cell keeps ring searches short while giving the
// signal bounding boxes enough points to prune whole cells.
func autoCellM(spacing float64) float64 {
	c := 4 * spacing
	if spacing <= 0 {
		c = 8
	}
	return math.Min(math.Max(c, 2), 64)
}

// maxGridCells caps nx*ny. Store.Submit validates crowdsourced
// positions, but Build must survive any database it is handed: an
// extreme extent coarsens the grid (doubling the cell size) instead of
// exploding the CSR allocation. The cap keeps cell indices well inside
// int32 and the offset array a few MB at worst.
const maxGridCells = 1 << 20

// Build indexes db into an immutable snapshot with the given version.
// cellM <= 0 picks the cell size automatically from the survey spacing.
// The points and vectors of db are referenced, not copied deeply;
// callers hand over ownership and must not mutate db afterwards (Store
// compaction always builds from fresh slices).
func Build(db *fingerprint.DB, version uint64, cellM float64, met *Metrics) *Snapshot {
	if cellM <= 0 {
		cellM = autoCellM(db.SpacingM)
	}
	s := &Snapshot{
		db:      db,
		version: version,
		built:   time.Now(),
		floor:   db.Floor,
		spacing: db.SpacingM,
		cellM:   cellM,
		nb:      make(map[float64][][]int32),
		met:     met,
	}
	n := len(db.Points)
	if n == 0 {
		return s
	}

	// Grid extent over the surveyed positions.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, fp := range db.Points {
		minX = math.Min(minX, fp.Pos.X)
		minY = math.Min(minY, fp.Pos.Y)
		maxX = math.Max(maxX, fp.Pos.X)
		maxY = math.Max(maxY, fp.Pos.Y)
	}
	s.gx0, s.gy0 = minX, minY
	spanX, spanY := maxX-minX, maxY-minY
	if !(spanX >= 0) || math.IsInf(spanX, 0) || !(spanY >= 0) || math.IsInf(spanY, 0) {
		// Non-finite coordinates slipped past the caller's validation:
		// a one-cell grid degrades every query to a (correct) scan of
		// all points instead of computing a grid from garbage.
		spanX, spanY = 0, 0
	}
	// Coarsen until the grid fits the cap; float arithmetic avoids int
	// overflow on extreme-but-finite extents.
	for {
		fx := math.Floor(spanX/cellM) + 1
		fy := math.Floor(spanY/cellM) + 1
		if fx*fy <= maxGridCells {
			s.nx, s.ny = int(fx), int(fy)
			break
		}
		cellM *= 2
	}
	s.cellM = cellM

	// Counting-sort points into cells (CSR), preserving index order
	// within each cell.
	nc := s.nx * s.ny
	counts := make([]int32, nc+1)
	cellOf := make([]int32, n)
	for i, fp := range db.Points {
		c := int32(s.cellX(fp.Pos.X) + s.cellY(fp.Pos.Y)*s.nx)
		cellOf[i] = c
		counts[c+1]++
	}
	for c := 0; c < nc; c++ {
		counts[c+1] += counts[c]
	}
	s.cellOff = counts
	s.cellPts = make([]int32, n)
	fill := make([]int32, nc)
	for i := 0; i < n; i++ {
		c := cellOf[i]
		s.cellPts[s.cellOff[c]+fill[c]] = int32(i)
		fill[c]++
	}

	// Intern transmitter IDs by their rank in sorted string order, so
	// integer comparisons reproduce rf.Distance's merge order exactly.
	idSet := make(map[string]struct{})
	total := 0
	for _, fp := range db.Points {
		total += len(fp.Vec)
		for _, o := range fp.Vec {
			idSet[o.ID] = struct{}{}
		}
	}
	ids := make([]string, 0, len(idSet))
	for id := range idSet {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	s.dict = make(map[string]int32, len(ids))
	for r, id := range ids {
		s.dict[id] = int32(r)
	}
	s.vecOff = make([]int32, n+1)
	s.vecID = make([]int32, 0, total)
	s.vecRSSI = make([]float64, 0, total)
	for i, fp := range db.Points {
		// rf.Vector is ID-sorted (Scan guarantees it), and rank order
		// equals string order, so entries land rank-sorted.
		for _, o := range fp.Vec {
			s.vecID = append(s.vecID, s.dict[o.ID])
			s.vecRSSI = append(s.vecRSSI, o.RSSI)
		}
		s.vecOff[i+1] = int32(len(s.vecID))
	}

	// Per-cell signal bounding boxes.
	s.sigOff = make([]int32, nc+1)
	type box struct {
		lo, hi float64
		cnt    int32 // distinct points in the cell hearing this transmitter
		last   int32 // last point counted, so a duplicated ID in one vector counts once
	}
	for c := 0; c < nc; c++ {
		lo, hi := s.cellOff[c], s.cellOff[c+1]
		if lo == hi {
			s.sigOff[c+1] = int32(len(s.sigID))
			continue
		}
		boxes := make(map[int32]*box)
		for _, pi := range s.cellPts[lo:hi] {
			for e := s.vecOff[pi]; e < s.vecOff[pi+1]; e++ {
				id, rssi := s.vecID[e], s.vecRSSI[e]
				b := boxes[id]
				if b == nil {
					boxes[id] = &box{lo: rssi, hi: rssi, cnt: 1, last: pi}
				} else {
					b.lo = math.Min(b.lo, rssi)
					b.hi = math.Max(b.hi, rssi)
					if b.last != pi {
						b.cnt++
						b.last = pi
					}
				}
			}
		}
		ranks := make([]int32, 0, len(boxes))
		for id := range boxes {
			ranks = append(ranks, id)
		}
		sort.Slice(ranks, func(a, b int) bool { return ranks[a] < ranks[b] })
		cellN := hi - lo
		for _, id := range ranks {
			b := boxes[id]
			blo, bhi := b.lo, b.hi
			if b.cnt < cellN {
				// Some point in the cell imputes the floor for this
				// transmitter; extend the envelope to keep the bound
				// valid for every member point.
				blo = math.Min(blo, s.floor)
				bhi = math.Max(bhi, s.floor)
			}
			s.sigID = append(s.sigID, id)
			s.sigLo = append(s.sigLo, blo)
			s.sigHi = append(s.sigHi, bhi)
		}
		s.sigOff[c+1] = int32(len(s.sigID))
	}
	return s
}

// cellX returns the clamped cell column for an x coordinate.
func (s *Snapshot) cellX(x float64) int {
	c := int((x - s.gx0) / s.cellM)
	if c < 0 {
		return 0
	}
	if c >= s.nx {
		return s.nx - 1
	}
	return c
}

// cellY returns the clamped cell row for a y coordinate.
func (s *Snapshot) cellY(y float64) int {
	c := int((y - s.gy0) / s.cellM)
	if c < 0 {
		return 0
	}
	if c >= s.ny {
		return s.ny - 1
	}
	return c
}

// Version implements fingerprint.Reader.
func (s *Snapshot) Version() uint64 { return s.version }

// GridStats reports the spatial grid shape and its non-empty cell count
// — index introspection for tests and debug tooling. A linear-scan
// equivalent of Nearest touches every non-empty cell; the pruning win
// is measured against that.
func (s *Snapshot) GridStats() (nx, ny, nonEmpty int) {
	for c := 0; c < s.nx*s.ny; c++ {
		if s.cellOff[c] != s.cellOff[c+1] {
			nonEmpty++
		}
	}
	return s.nx, s.ny, nonEmpty
}

// BuiltAt returns when this snapshot was assembled.
func (s *Snapshot) BuiltAt() time.Time { return s.built }

// Len implements fingerprint.Reader.
func (s *Snapshot) Len() int { return len(s.db.Points) }

// At implements fingerprint.Reader.
func (s *Snapshot) At(i int) fingerprint.Fingerprint { return s.db.Points[i] }

// FloorDB implements fingerprint.Reader.
func (s *Snapshot) FloorDB() float64 { return s.floor }

// Spacing implements fingerprint.Reader.
func (s *Snapshot) Spacing() float64 { return s.spacing }

// Positions implements fingerprint.Reader.
func (s *Snapshot) Positions() []geo.Point { return s.db.Positions() }

// intern converts an observation to interned (rank, rssi) arrays. ok is
// false when the observation names a transmitter the map has never
// heard — exact float summation order could then differ from the
// string-ordered merge, so callers fall back to the linear path.
func (s *Snapshot) intern(obs rf.Vector) (ids []int32, rssi []float64, ok bool) {
	ids = make([]int32, len(obs))
	rssi = make([]float64, len(obs))
	for i, o := range obs {
		r, known := s.dict[o.ID]
		if !known {
			return nil, nil, false
		}
		ids[i] = r
		rssi[i] = o.RSSI
	}
	return ids, rssi, true
}

// distSqInterned computes the squared RSSI distance between the
// interned observation and point pt with the exact float operation
// sequence of rf.Distance (which returns math.Sqrt of this sum).
func (s *Snapshot) distSqInterned(qid []int32, qr []float64, pt int32) float64 {
	var sum float64
	add := func(x, y float64) {
		d := x - y
		sum += d * d
	}
	i := 0
	j := int(s.vecOff[pt])
	end := int(s.vecOff[pt+1])
	for i < len(qid) && j < end {
		switch {
		case qid[i] == s.vecID[j]:
			add(qr[i], s.vecRSSI[j])
			i++
			j++
		case qid[i] < s.vecID[j]:
			add(qr[i], s.floor)
			i++
		default:
			add(s.floor, s.vecRSSI[j])
			j++
		}
	}
	for ; i < len(qid); i++ {
		add(qr[i], s.floor)
	}
	for ; j < end; j++ {
		add(s.floor, s.vecRSSI[j])
	}
	return sum
}

// cellLowerBound returns a lower bound on the squared RSSI distance
// from the interned observation to ANY point in cell c: per observed
// transmitter, the squared distance from the observed RSSI to the
// cell's [lo, hi] envelope (or to the floor when no point in the cell
// hears it). Contributions from transmitters heard only by the cell are
// nonnegative and ignored, keeping the bound valid.
func (s *Snapshot) cellLowerBound(qid []int32, qr []float64, c int32) float64 {
	var lb float64
	i := 0
	j := int(s.sigOff[c])
	end := int(s.sigOff[c+1])
	for i < len(qid) {
		for j < end && s.sigID[j] < qid[i] {
			j++
		}
		a := qr[i]
		if j < end && s.sigID[j] == qid[i] {
			if a < s.sigLo[j] {
				d := s.sigLo[j] - a
				lb += d * d
			} else if a > s.sigHi[j] {
				d := a - s.sigHi[j]
				lb += d * d
			}
			j++
		} else {
			d := a - s.floor
			lb += d * d
		}
		i++
	}
	return lb
}

// Nearest implements fingerprint.Reader. Cells are scored by their
// signal-space lower bound and scanned in ascending-bound order; a cell
// whose bound already exceeds the current k-th best exact distance (by
// more than the rounding margin) is skipped, along with every cell
// after it. Results are bit-identical to fingerprint.DB.Nearest.
func (s *Snapshot) Nearest(obs rf.Vector, k int) []fingerprint.Match {
	if s.Len() == 0 || k <= 0 {
		return nil
	}
	s.met.lookup(opNearest)
	qid, qr, ok := s.intern(obs)
	if !ok {
		// Unknown transmitter: exact summation order is only defined by
		// the string merge, so take the linear path.
		s.met.observeCells(opNearest, s.nx*s.ny)
		return s.db.Nearest(obs, k)
	}

	// Score every non-empty cell by its lower bound.
	type cellLB struct {
		cell int32
		lb   float64
	}
	lbs := make([]cellLB, 0, s.nx*s.ny)
	for c := int32(0); c < int32(s.nx*s.ny); c++ {
		if s.cellOff[c] == s.cellOff[c+1] {
			continue
		}
		lbs = append(lbs, cellLB{cell: c, lb: s.cellLowerBound(qid, qr, c)})
	}
	sort.Slice(lbs, func(a, b int) bool {
		if lbs[a].lb != lbs[b].lb {
			return lbs[a].lb < lbs[b].lb
		}
		return lbs[a].cell < lbs[b].cell
	})

	// Exact top-k over the surviving cells, ordered by the canonical
	// MatchLess comparator on Dist = sqrt(d2) — the same key DB.Nearest
	// sorts on. Comparing on d2 would be monotone but not identical:
	// sqrt can round two distinct d2 values to the same Dist, where the
	// canonical order falls through to the position/index tie-break.
	type cand struct {
		dist float64
		idx  int32
	}
	top := make([]cand, 0, k)
	worse := func(a, b cand) bool { // true when a orders after b
		pa, pb := s.db.Points[a.idx].Pos, s.db.Points[b.idx].Pos
		return fingerprint.MatchLess(b.dist, a.dist, pb, pa, int(b.idx), int(a.idx))
	}
	scanned := 0
	for _, cl := range lbs {
		if len(top) == k {
			kth := top[k-1].dist
			if math.Sqrt(cl.lb) > kth+boundEps(kth) {
				break
			}
		}
		scanned++
		for _, pi := range s.cellPts[s.cellOff[cl.cell]:s.cellOff[cl.cell+1]] {
			c := cand{dist: math.Sqrt(s.distSqInterned(qid, qr, pi)), idx: pi}
			if len(top) == k && worse(c, top[k-1]) {
				continue
			}
			// Insertion into the small sorted top-k slice.
			pos := len(top)
			for pos > 0 && worse(top[pos-1], c) {
				pos--
			}
			if len(top) < k {
				top = append(top, cand{})
			}
			copy(top[pos+1:], top[pos:])
			top[pos] = c
		}
	}
	s.met.observeCells(opNearest, scanned)

	out := make([]fingerprint.Match, len(top))
	for i, c := range top {
		out[i] = fingerprint.Match{Pos: s.db.Points[c.idx].Pos, Dist: c.dist}
	}
	return out
}

// Distances implements fingerprint.Reader. The output is inherently
// O(N); the win here is constant-factor — the interned flat layout
// replaces per-point string comparisons with integer merges over
// contiguous memory, with identical float summation order.
func (s *Snapshot) Distances(obs rf.Vector) []float64 {
	s.met.lookup(opDistances)
	qid, qr, ok := s.intern(obs)
	if !ok {
		return s.db.Distances(obs)
	}
	out := make([]float64, s.Len())
	for i := range out {
		out[i] = math.Sqrt(s.distSqInterned(qid, qr, int32(i)))
	}
	return out
}

// AppendDistances implements fingerprint.DistanceAppender: the same
// values as Distances in the same order, written into the caller's
// buffer so per-epoch match paths avoid the O(N) allocation.
func (s *Snapshot) AppendDistances(dst []float64, obs rf.Vector) []float64 {
	s.met.lookup(opDistances)
	qid, qr, ok := s.intern(obs)
	if !ok {
		return s.db.AppendDistances(dst, obs)
	}
	for i, n := 0, s.Len(); i < n; i++ {
		dst = append(dst, math.Sqrt(s.distSqInterned(qid, qr, int32(i))))
	}
	return dst
}

// ringBound returns the minimum possible distance from p to any point
// outside the box of cells within Chebyshev radius r-1 of (cx, cy) —
// i.e. to anything in ring r or beyond. Zero when p lies outside that
// box (no pruning possible yet).
func (s *Snapshot) ringBound(p geo.Point, cx, cy, r int) float64 {
	loX := s.gx0 + float64(cx-r+1)*s.cellM
	hiX := s.gx0 + float64(cx+r)*s.cellM
	loY := s.gy0 + float64(cy-r+1)*s.cellM
	hiY := s.gy0 + float64(cy+r)*s.cellM
	if p.X < loX || p.X > hiX || p.Y < loY || p.Y > hiY {
		return 0
	}
	return math.Min(math.Min(p.X-loX, hiX-p.X), math.Min(p.Y-loY, hiY-p.Y))
}

// visitRing calls fn for every in-grid point index in the cells at
// Chebyshev radius r of (cx, cy), and reports how many cells it
// visited.
func (s *Snapshot) visitRing(cx, cy, r int, fn func(pi int32)) int {
	visited := 0
	visit := func(x, y int) {
		if x < 0 || x >= s.nx || y < 0 || y >= s.ny {
			return
		}
		visited++
		c := x + y*s.nx
		for _, pi := range s.cellPts[s.cellOff[c]:s.cellOff[c+1]] {
			fn(pi)
		}
	}
	if r == 0 {
		visit(cx, cy)
		return visited
	}
	for x := cx - r; x <= cx+r; x++ {
		visit(x, cy-r)
		visit(x, cy+r)
	}
	for y := cy - r + 1; y <= cy+r-1; y++ {
		visit(cx-r, y)
		visit(cx+r, y)
	}
	return visited
}

// maxRing returns the largest ring radius that can still contain
// in-grid cells around (cx, cy).
func (s *Snapshot) maxRing(cx, cy int) int {
	m := cx
	if v := s.nx - 1 - cx; v > m {
		m = v
	}
	if cy > m {
		m = cy
	}
	if v := s.ny - 1 - cy; v > m {
		m = v
	}
	return m
}

// VectorAt implements fingerprint.Reader: expanding-ring search for the
// physically nearest fingerprint, with the linear scan's exact
// comparison (strict squared-distance improvement, first index wins on
// ties).
func (s *Snapshot) VectorAt(p geo.Point) (rf.Vector, float64, bool) {
	best, bestD, ok := s.nearestIdx(p)
	if !ok {
		return nil, 0, false
	}
	return s.db.Points[best].Vec, math.Sqrt(bestD), true
}

// NearestIndexAt returns the index of the fingerprint VectorAt(p)
// resolves to — the physically nearest point, first index on ties — or
// false on an empty snapshot. Shared-compute entries cache these
// indices per likelihood-grid cell so every session's cell-center
// lookup lands on the same representative without repeating the ring
// search.
func (s *Snapshot) NearestIndexAt(p geo.Point) (int, bool) {
	best, _, ok := s.nearestIdx(p)
	return int(best), ok
}

// nearestIdx is the shared ring search behind VectorAt and
// NearestIndexAt, returning the winning index and its squared
// distance.
func (s *Snapshot) nearestIdx(p geo.Point) (int32, float64, bool) {
	if s.Len() == 0 {
		return -1, 0, false
	}
	s.met.lookup(opVectorAt)
	cx, cy := s.cellX(p.X), s.cellY(p.Y)
	best := int32(-1)
	bestD := math.Inf(1)
	consider := func(pi int32) {
		d := s.db.Points[pi].Pos.DistSq(p)
		if d < bestD || (d == bestD && pi < best) {
			bestD = d
			best = pi
		}
	}
	cells := 0
	maxR := s.maxRing(cx, cy)
	for r := 0; r <= maxR; r++ {
		if best >= 0 {
			if b := s.ringBound(p, cx, cy, r); b*b > bestD+boundEps(bestD) {
				break
			}
		}
		cells += s.visitRing(cx, cy, r, consider)
	}
	s.met.observeCells(opVectorAt, cells)
	return best, bestD, true
}

// DensityAround implements fingerprint.Reader: ring-limited k-NN whose
// selected distance multiset — and therefore the ascending summation
// the feature averages over — matches the linear implementation
// exactly.
func (s *Snapshot) DensityAround(p geo.Point, neighbours int) float64 {
	if neighbours <= 0 {
		neighbours = 3
	}
	if s.Len() == 0 {
		return 50
	}
	s.met.lookup(opDensity)
	k := neighbours
	if n := s.Len(); n < k {
		k = n
	}
	best := make([]float64, 0, k)
	consider := func(pi int32) {
		d := s.db.Points[pi].Pos.Dist(p)
		if len(best) == k && d >= best[k-1] {
			return
		}
		pos := sort.SearchFloat64s(best, d)
		if len(best) < k {
			best = append(best, 0)
		}
		copy(best[pos+1:], best[pos:])
		best[pos] = d
	}
	cx, cy := s.cellX(p.X), s.cellY(p.Y)
	cells := 0
	maxR := s.maxRing(cx, cy)
	for r := 0; r <= maxR; r++ {
		if len(best) == k {
			kth := best[k-1]
			if s.ringBound(p, cx, cy, r) > kth+boundEps(kth) {
				break
			}
		}
		cells += s.visitRing(cx, cy, r, consider)
	}
	s.met.observeCells(opDensity, cells)

	var sum float64
	for _, d := range best {
		sum += d
	}
	avg := sum / float64(len(best))
	v := math.Max(avg, s.spacing/2)
	return math.Min(v, 20)
}

// NeighborLists implements fingerprint.NeighborLister: for every point,
// the ascending indices of all points within maxDistM (inclusive, self
// included), computed by ring search and cached per radius. The HMM
// tracker walks these instead of scanning all N states per transition.
func (s *Snapshot) NeighborLists(maxDistM float64) [][]int32 {
	s.nbMu.Lock()
	defer s.nbMu.Unlock()
	if nb, ok := s.nb[maxDistM]; ok {
		return nb
	}
	n := s.Len()
	nb := make([][]int32, n)
	for j := 0; j < n; j++ {
		p := s.db.Points[j].Pos
		cx, cy := s.cellX(p.X), s.cellY(p.Y)
		var list []int32
		maxR := s.maxRing(cx, cy)
		for r := 0; r <= maxR; r++ {
			if s.ringBound(p, cx, cy, r) > maxDistM+boundEps(maxDistM) {
				break
			}
			s.visitRing(cx, cy, r, func(pi int32) {
				// The exact inclusion test mirrors the tracker's own
				// skip condition (d > maxD → exclude).
				if !(s.db.Points[pi].Pos.Dist(p) > maxDistM) {
					list = append(list, pi)
				}
			})
		}
		sort.Slice(list, func(a, b int) bool { return list[a] < list[b] })
		nb[j] = list
	}
	s.nb[maxDistM] = nb
	return nb
}
