package mapstore

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/rf"
	"repro/internal/telemetry"
)

func vec2(a, b float64) rf.Vector {
	return rf.Vector{{ID: "ap-a", RSSI: a}, {ID: "ap-b", RSSI: b}}
}

func TestStoreSubmitRebuild(t *testing.T) {
	db := synthDB(50, 10, 11)
	st := New(db, Config{Name: "test", RebuildBatch: 1 << 30}) // manual rebuilds only
	defer st.Close()

	if st.Version() != 1 {
		t.Fatalf("initial version = %d, want 1", st.Version())
	}
	if got := st.View().Len(); got != 50 {
		t.Fatalf("initial Len = %d", got)
	}

	// Unusable vector is rejected and does not queue.
	if err := st.Submit(fingerprint.Fingerprint{Pos: geo.Pt(1, 1), Vec: rf.Vector{{ID: "x", RSSI: -50}}}); err == nil {
		t.Fatal("single-transmitter Submit accepted")
	}
	if st.Pending() != 0 {
		t.Fatalf("pending = %d after rejected submit", st.Pending())
	}

	// New position extends the map; duplicate position refreshes it.
	novel := geo.Pt(-40, -40)
	if err := st.Submit(fingerprint.Fingerprint{Pos: novel, Vec: vec2(-50, -60)}); err != nil {
		t.Fatal(err)
	}
	existing := db.Points[3].Pos
	if err := st.Submit(fingerprint.Fingerprint{Pos: existing, Vec: vec2(-45, -55)}); err != nil {
		t.Fatal(err)
	}
	if st.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", st.Pending())
	}

	old := st.Snapshot()
	if v := st.Rebuild(); v != 2 {
		t.Fatalf("rebuilt version = %d, want 2", v)
	}
	if st.Pending() != 0 {
		t.Fatalf("pending = %d after rebuild", st.Pending())
	}
	cur := st.Snapshot()
	if cur.Len() != 51 {
		t.Fatalf("Len = %d after extend+refresh, want 51", cur.Len())
	}
	if _, d, ok := cur.VectorAt(novel); !ok || d != 0 {
		t.Fatalf("novel point not found: d=%v ok=%v", d, ok)
	}
	refreshed := cur.At(3)
	if refreshed.Pos != existing || refreshed.Vec[0].RSSI != -45 {
		t.Fatalf("existing point not refreshed: %+v", refreshed)
	}

	// The old snapshot is frozen: same length, same data, old version.
	if old.Version() != 1 || old.Len() != 50 {
		t.Fatalf("old snapshot mutated: v=%d len=%d", old.Version(), old.Len())
	}

	// No-op rebuild does not bump the version.
	if v := st.Rebuild(); v != 2 {
		t.Fatalf("no-op rebuild bumped version to %d", v)
	}
}

// TestStoreSubmitValidation covers the crowdsourced-input hardening:
// non-finite or out-of-bounds positions and non-finite RSSI must be
// rejected before they can reach a snapshot rebuild (where a garbage
// position would poison the grid extent), and duplicated transmitter
// IDs must be merged so the signal-box pruning counts stay valid.
func TestStoreSubmitValidation(t *testing.T) {
	db := synthDB(20, 8, 31)
	st := New(db, Config{Name: "validate", RebuildBatch: 1 << 30})
	defer st.Close()

	badPos := []geo.Point{
		geo.Pt(math.NaN(), 5),
		geo.Pt(5, math.NaN()),
		geo.Pt(math.Inf(1), 5),
		geo.Pt(5, math.Inf(-1)),
		geo.Pt(2*MaxCoordM, 0),
		geo.Pt(0, -2*MaxCoordM),
	}
	for _, p := range badPos {
		if err := st.Submit(fingerprint.Fingerprint{Pos: p, Vec: vec2(-50, -60)}); !errors.Is(err, ErrBadPosition) {
			t.Fatalf("Submit at %v: err = %v, want ErrBadPosition", p, err)
		}
	}
	nanVec := rf.Vector{{ID: "ap-a", RSSI: math.NaN()}, {ID: "ap-b", RSSI: -60}}
	if err := st.Submit(fingerprint.Fingerprint{Pos: geo.Pt(1, 1), Vec: nanVec}); !errors.Is(err, ErrBadRSSI) {
		t.Fatalf("Submit with NaN RSSI: err = %v, want ErrBadRSSI", err)
	}
	// A vector that collapses to one transmitter after dedupe is as
	// useless as a one-transmitter vector submitted directly.
	dupOnly := rf.Vector{{ID: "ap-a", RSSI: -50}, {ID: "ap-a", RSSI: -40}}
	if err := st.Submit(fingerprint.Fingerprint{Pos: geo.Pt(1, 1), Vec: dupOnly}); !errors.Is(err, ErrTooFewTransmitters) {
		t.Fatalf("Submit with duplicate-only vector: err = %v, want ErrTooFewTransmitters", err)
	}
	if st.Pending() != 0 {
		t.Fatalf("pending = %d after rejected submissions, want 0", st.Pending())
	}

	// Unsorted input with duplicates is normalized: sorted by ID,
	// duplicates merged keeping the strongest reading.
	messy := rf.Vector{{ID: "ap-b", RSSI: -60}, {ID: "ap-a", RSSI: -50}, {ID: "ap-a", RSSI: -40}}
	pos := geo.Pt(700, 700)
	if err := st.Submit(fingerprint.Fingerprint{Pos: pos, Vec: messy}); err != nil {
		t.Fatal(err)
	}
	st.Rebuild()
	got, d, ok := st.Snapshot().VectorAt(pos)
	if !ok || d != 0 {
		t.Fatalf("normalized point not found: d=%v ok=%v", d, ok)
	}
	want := vec2(-40, -60)
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("normalized vector = %v, want %v", got, want)
	}
}

// TestStoreConcurrentClose hammers shutdown from several goroutines;
// pre-sync.Once this was a racy check-then-close that could panic with
// "close of closed channel".
func TestStoreConcurrentClose(t *testing.T) {
	db := synthDB(10, 8, 37)
	st := New(db, Config{Name: "cc", RebuildBatch: 1 << 30})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st.Close()
		}()
	}
	wg.Wait()
}

func TestStoreBatchTriggersCompactor(t *testing.T) {
	db := synthDB(30, 8, 13)
	st := New(db, Config{Name: "batch", RebuildBatch: 5})
	defer st.Close()

	for i := 0; i < 5; i++ {
		p := geo.Pt(float64(100+i), 100)
		if err := st.Submit(fingerprint.Fingerprint{Pos: p, Vec: vec2(-50, -60)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Version() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("compactor did not rebuild; version=%d pending=%d", st.Version(), st.Pending())
		}
		time.Sleep(time.Millisecond)
	}
	if got := st.View().Len(); got != 35 {
		t.Fatalf("Len = %d after batch compaction, want 35", got)
	}
}

func TestStoreTimerTriggersCompactor(t *testing.T) {
	db := synthDB(30, 8, 17)
	st := New(db, Config{Name: "timer", RebuildBatch: 1 << 30, RebuildEvery: 5 * time.Millisecond})
	defer st.Close()

	if err := st.Submit(fingerprint.Fingerprint{Pos: geo.Pt(200, 200), Vec: vec2(-40, -70)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Version() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("timer compaction never ran; version=%d", st.Version())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestStoreCloseFlushesPending(t *testing.T) {
	db := synthDB(20, 8, 19)
	st := New(db, Config{Name: "close", RebuildBatch: 1 << 30})
	if err := st.Submit(fingerprint.Fingerprint{Pos: geo.Pt(300, 300), Vec: vec2(-50, -62)}); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if st.Version() != 2 || st.View().Len() != 21 {
		t.Fatalf("Close did not flush: v=%d len=%d", st.Version(), st.View().Len())
	}
	st.Close() // idempotent
}

// TestStoreConcurrentReadersAcrossSwaps is the -race acceptance test:
// >= 4 concurrent sessions read the store while the compactor swaps in
// >= 3 new snapshot versions; every reader pinned to a version observes
// bit-identical results for that version throughout.
func TestStoreConcurrentReadersAcrossSwaps(t *testing.T) {
	db := synthDB(200, 20, 23)
	st := New(db, Config{Name: "race", RebuildBatch: 1 << 30})
	defer st.Close()

	const readers = 6
	const swaps = 4
	obs := randObsFixed(db)
	p := geo.Pt(17, 23)

	// Per-version reference answers, computed on first encounter of the
	// version and compared by every subsequent read of the same version.
	type ref struct {
		nearest []fingerprint.Match
		density float64
		distM   float64
	}
	var refMu sync.Mutex
	refs := make(map[uint64]ref)

	stop := make(chan struct{})
	errc := make(chan error, readers)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := st.View() // pin one snapshot for the whole "epoch"
				got := ref{
					nearest: view.Nearest(obs, 3),
					density: view.DensityAround(p, 3),
				}
				_, got.distM, _ = view.VectorAt(p)
				v := view.Version()

				refMu.Lock()
				want, seen := refs[v]
				if !seen {
					refs[v] = got
					refMu.Unlock()
					continue
				}
				refMu.Unlock()
				if !eqMatches(got.nearest, want.nearest) || got.density != want.density || got.distM != want.distM {
					errc <- fmt.Errorf("version %d not deterministic across readers", v)
					return
				}
			}
		}()
	}

	for i := 0; i < swaps; i++ {
		for j := 0; j < 10; j++ {
			pos := geo.Pt(float64(500+i*10+j), float64(500+i))
			if err := st.Submit(fingerprint.Fingerprint{Pos: pos, Vec: vec2(-48, -58)}); err != nil {
				t.Fatal(err)
			}
		}
		st.Rebuild()
		time.Sleep(2 * time.Millisecond) // let readers overlap each version
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	if v := st.Version(); v != 1+swaps {
		t.Fatalf("final version = %d, want %d", v, 1+swaps)
	}
	if len(refs) < 3 {
		t.Fatalf("readers observed only %d versions, want >= 3 swaps covered", len(refs))
	}
}

// randObsFixed derives a deterministic observation from the database.
func randObsFixed(db *fingerprint.DB) rf.Vector {
	base := db.Points[len(db.Points)/2].Vec
	obs := make(rf.Vector, len(base))
	for i, o := range base {
		obs[i] = rf.Obs{ID: o.ID, RSSI: o.RSSI + 1.5}
	}
	return obs
}

func TestStoreMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	db := synthDB(40, 10, 29)
	st := New(db, Config{Name: "wifi", RebuildBatch: 1 << 30, Metrics: NewMetrics(reg, "wifi")})
	defer st.Close()

	view := st.View()
	view.Nearest(randObsFixed(db), 3)
	view.DensityAround(geo.Pt(5, 5), 3)
	view.VectorAt(geo.Pt(5, 5))
	view.Distances(randObsFixed(db))

	st.Submit(fingerprint.Fingerprint{Pos: geo.Pt(999, 999), Vec: vec2(-50, -60)})
	st.Submit(fingerprint.Fingerprint{Pos: geo.Pt(998, 999), Vec: rf.Vector{{ID: "x", RSSI: -50}}}) // dropped
	st.Rebuild()

	snap := reg.Snapshot()
	checks := []struct {
		name   string
		labels []string
		want   float64
	}{
		{"uniloc_mapstore_lookups_total", []string{"map", "wifi", "op", "nearest"}, 1},
		{"uniloc_mapstore_lookups_total", []string{"map", "wifi", "op", "density"}, 1},
		{"uniloc_mapstore_lookups_total", []string{"map", "wifi", "op", "vector_at"}, 1},
		{"uniloc_mapstore_lookups_total", []string{"map", "wifi", "op", "distances"}, 1},
		{"uniloc_mapstore_points_submitted_total", []string{"map", "wifi"}, 1},
		{"uniloc_mapstore_points_dropped_total", []string{"map", "wifi"}, 1},
		{"uniloc_mapstore_rebuilds_total", []string{"map", "wifi"}, 2}, // initial build + rebuild
		{"uniloc_mapstore_snapshot_version", []string{"map", "wifi"}, 2},
		{"uniloc_mapstore_snapshot_points", []string{"map", "wifi"}, 41},
		{"uniloc_mapstore_pending_points", []string{"map", "wifi"}, 0},
	}
	for _, c := range checks {
		got, ok := snap.Get(c.name, c.labels...)
		if !ok {
			t.Fatalf("metric %s%v not found", c.name, c.labels)
		}
		if got != c.want {
			t.Fatalf("metric %s%v = %v, want %v", c.name, c.labels, got, c.want)
		}
	}
}

// TestSetOnRebuild pins the replication hook contract: the hook fires
// once per snapshot swap with the new version and the exact batch that
// was folded in (rejected submissions never appear), and a no-op
// Rebuild does not fire it.
func TestSetOnRebuild(t *testing.T) {
	db := synthDB(30, 8, 17)
	st := New(db, Config{Name: "hook", RebuildBatch: 1 << 30})
	defer st.Close()

	type delta struct {
		version uint64
		batch   []fingerprint.Fingerprint
	}
	var mu sync.Mutex
	var deltas []delta
	st.SetOnRebuild(func(v uint64, batch []fingerprint.Fingerprint) {
		mu.Lock()
		deltas = append(deltas, delta{v, append([]fingerprint.Fingerprint(nil), batch...)})
		mu.Unlock()
	})

	if st.Rebuild(); len(deltas) != 0 {
		t.Fatalf("no-op rebuild fired the hook: %+v", deltas)
	}

	a := fingerprint.Fingerprint{Pos: geo.Pt(-7, -7), Vec: vec2(-41, -51)}
	b := fingerprint.Fingerprint{Pos: db.Points[5].Pos, Vec: vec2(-42, -52)}
	for _, fp := range []fingerprint.Fingerprint{a, b} {
		if err := st.Submit(fp); err != nil {
			t.Fatal(err)
		}
	}
	// A rejected submission must not leak into the delta.
	if err := st.Submit(fingerprint.Fingerprint{Pos: geo.Pt(math.NaN(), 0), Vec: vec2(-40, -50)}); err == nil {
		t.Fatal("bad submit accepted")
	}
	if v := st.Rebuild(); v != 2 {
		t.Fatalf("version = %d, want 2", v)
	}

	if len(deltas) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(deltas))
	}
	if deltas[0].version != 2 {
		t.Fatalf("delta version = %d, want 2", deltas[0].version)
	}
	if len(deltas[0].batch) != 2 || deltas[0].batch[0].Pos != a.Pos || deltas[0].batch[1].Pos != b.Pos {
		t.Fatalf("delta batch = %+v", deltas[0].batch)
	}

	// nil removes the hook.
	st.SetOnRebuild(nil)
	if err := st.Submit(a); err != nil {
		t.Fatal(err)
	}
	st.Rebuild()
	if len(deltas) != 1 {
		t.Fatalf("removed hook still fired: %d deltas", len(deltas))
	}
}

// TestApplyDeltaReplication is the replication acceptance test at the
// store level: a follower that replays the leader's OnRebuild batches
// in order via ApplyDelta converges to the same versions and
// bit-identical snapshot state — Nearest results included — without
// its own pending queue interfering.
func TestApplyDeltaReplication(t *testing.T) {
	leader := New(synthDB(60, 10, 23), Config{Name: "leader", RebuildBatch: 1 << 30})
	defer leader.Close()
	follower := New(synthDB(60, 10, 23), Config{Name: "follower", RebuildBatch: 1 << 30})
	defer follower.Close()

	var log [][]fingerprint.Fingerprint
	leader.SetOnRebuild(func(_ uint64, batch []fingerprint.Fingerprint) {
		log = append(log, append([]fingerprint.Fingerprint(nil), batch...))
	})

	// Locally queued junk on the follower must never leak into a
	// replicated snapshot: ApplyDelta bypasses the pending queue.
	poison := fingerprint.Fingerprint{Pos: geo.Pt(99, 99), Vec: vec2(-10, -11)}
	if err := follower.Submit(poison); err != nil {
		t.Fatal(err)
	}

	// Three compaction rounds on the leader: extend, refresh, mixed.
	rounds := [][]fingerprint.Fingerprint{
		{{Pos: geo.Pt(-20, -20), Vec: vec2(-50, -60)}},
		{{Pos: leader.Snapshot().At(7).Pos, Vec: vec2(-44, -54)}},
		{
			{Pos: geo.Pt(-21, -20), Vec: vec2(-51, -61)},
			{Pos: geo.Pt(-20, -20), Vec: vec2(-49, -59)}, // refresh the round-1 extension
		},
	}
	for _, round := range rounds {
		for _, fp := range round {
			if err := leader.Submit(fp); err != nil {
				t.Fatal(err)
			}
		}
		leader.Rebuild()
	}
	if len(log) != 3 {
		t.Fatalf("leader produced %d deltas, want 3", len(log))
	}

	for i, batch := range log {
		if v := follower.ApplyDelta(batch); v != uint64(i+2) {
			t.Fatalf("follower version after delta %d = %d, want %d", i, v, i+2)
		}
	}

	ls, fs := leader.Snapshot(), follower.Snapshot()
	if ls.Version() != fs.Version() {
		t.Fatalf("versions diverged: leader %d follower %d", ls.Version(), fs.Version())
	}
	if ls.Len() != fs.Len() {
		t.Fatalf("lengths diverged: leader %d follower %d", ls.Len(), fs.Len())
	}
	for i := 0; i < ls.Len(); i++ {
		lp, fp := ls.At(i), fs.At(i)
		if lp.Pos != fp.Pos || len(lp.Vec) != len(fp.Vec) {
			t.Fatalf("point %d diverged: %+v vs %+v", i, lp, fp)
		}
		for j := range lp.Vec {
			if lp.Vec[j] != fp.Vec[j] {
				t.Fatalf("point %d obs %d diverged: %+v vs %+v", i, j, lp.Vec[j], fp.Vec[j])
			}
		}
	}
	if _, d, ok := fs.VectorAt(poison.Pos); ok && d == 0 {
		t.Fatal("follower's locally pending point leaked into a replicated snapshot")
	}

	// The acceptance bar: Nearest must match bit for bit.
	for q := 0; q < 20; q++ {
		obs := make(rf.Vector, len(ls.At(q%ls.Len()).Vec))
		for i, o := range ls.At(q % ls.Len()).Vec {
			obs[i] = rf.Obs{ID: o.ID, RSSI: o.RSSI + float64(q)*0.37 - 2}
		}
		lm, fm := ls.Nearest(obs, 4), fs.Nearest(obs, 4)
		if !eqMatches(lm, fm) {
			t.Fatalf("Nearest diverged for query %d:\nleader   %+v\nfollower %+v", q, lm, fm)
		}
	}

	// The follower's local queue is intact and compacts on top of the
	// replicated state as usual.
	if follower.Pending() != 1 {
		t.Fatalf("follower pending = %d, want 1", follower.Pending())
	}
	if v := follower.Rebuild(); v != fs.Version()+1 {
		t.Fatalf("follower local rebuild version = %d, want %d", v, fs.Version()+1)
	}
}
