package mapstore

import (
	"errors"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/rf"
)

// ErrTooFewTransmitters rejects submitted fingerprints that cannot
// discriminate locations (the survey applies the same rule: matching
// needs at least two audible transmitters).
var ErrTooFewTransmitters = errors.New("mapstore: fingerprint needs at least 2 transmitters")

// ErrBadPosition rejects submitted fingerprints whose position is not a
// finite coordinate within MaxCoordM of the origin. Crowdsourced input
// is untrusted, and a NaN/Inf or absurd coordinate would poison the
// next snapshot's grid extent.
var ErrBadPosition = errors.New("mapstore: fingerprint position is not finite or out of map bounds")

// ErrBadRSSI rejects submitted fingerprints carrying a non-finite RSSI,
// which would propagate NaN/Inf through every distance computed against
// the rebuilt snapshot.
var ErrBadRSSI = errors.New("mapstore: fingerprint RSSI is not finite")

// MaxCoordM bounds accepted survey coordinates (meters from the map
// origin). Site coordinate frames are local, so ±1000 km is far beyond
// any legitimate survey while still rejecting junk that would explode
// the grid.
const MaxCoordM = 1e6

// Config parameterizes a Store.
type Config struct {
	// Name labels the store's metrics ("wifi", "cellular", ...).
	Name string
	// RebuildBatch triggers an asynchronous rebuild once this many
	// submissions are pending. <= 0 uses DefaultRebuildBatch.
	RebuildBatch int
	// RebuildEvery additionally rebuilds on a timer so a trickle of
	// submissions below the batch size still lands. 0 disables the
	// timer.
	RebuildEvery time.Duration
	// CellM overrides the spatial grid cell size; <= 0 picks it from
	// the survey spacing.
	CellM float64
	// Metrics receives store instrumentation; nil disables it.
	Metrics *Metrics
}

// DefaultRebuildBatch is the pending-submission count that triggers a
// background compaction when Config.RebuildBatch is unset.
const DefaultRebuildBatch = 256

// Store is a versioned, shared radio map. Readers call View to pin the
// current immutable Snapshot (one atomic load); writers call Submit to
// queue crowdsourced fingerprints, which a background compactor folds
// into a rebuilt snapshot off the hot path and swaps in atomically.
// Version numbers start at 1 and increase by one per swap, so any two
// readers holding the same version see bit-identical state forever.
type Store struct {
	cfg  Config
	snap atomic.Pointer[Snapshot]

	mu      sync.Mutex // guards pending
	pending []fingerprint.Fingerprint

	rebuildMu sync.Mutex // serializes compactions; guards onRebuild
	onRebuild func(version uint64, applied []fingerprint.Fingerprint)

	kick      chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New builds a Store over db's points. The database is copied, so the
// caller may keep mutating its own DB; the store's snapshots never
// change underneath a reader. The background compactor starts
// immediately; call Close to stop it.
func New(db *fingerprint.DB, cfg Config) *Store {
	if cfg.RebuildBatch <= 0 {
		cfg.RebuildBatch = DefaultRebuildBatch
	}
	s := &Store{
		cfg:  cfg,
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	first := Build(copyDB(db), 1, cfg.CellM, cfg.Metrics)
	s.snap.Store(first)
	cfg.Metrics.snapshotSwapped(first)
	s.wg.Add(1)
	go s.compactor()
	return s
}

// copyDB clones a database's point slice (vectors are shared — they are
// immutable by contract).
func copyDB(db *fingerprint.DB) *fingerprint.DB {
	out := &fingerprint.DB{SpacingM: db.SpacingM, Floor: db.Floor}
	out.Points = append([]fingerprint.Fingerprint(nil), db.Points...)
	return out
}

// View implements fingerprint.Map: one atomic load pins the current
// snapshot for the caller.
func (s *Store) View() fingerprint.Reader { return s.snap.Load() }

// Snapshot returns the current snapshot with its concrete type (for
// NeighborLists and version/age inspection).
func (s *Store) Snapshot() *Snapshot { return s.snap.Load() }

// Version returns the version of the live snapshot.
func (s *Store) Version() uint64 { return s.snap.Load().version }

// Name returns the configured store name ("wifi", "cellular", ...),
// used to label per-store metrics and shared-compute entries.
func (s *Store) Name() string { return s.cfg.Name }

// Pending returns how many submissions await the next compaction.
func (s *Store) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Submit queues one crowdsourced fingerprint for the next compaction.
// A submission at the exact position of an existing fingerprint
// replaces that point's vector (map refresh); anywhere else it extends
// the map. Submissions are validated before queueing — non-finite or
// out-of-bounds positions, non-finite RSSI, and vectors with fewer than
// two distinct transmitters are rejected; duplicate transmitter entries
// are merged keeping the strongest reading.
func (s *Store) Submit(fp fingerprint.Fingerprint) error {
	// The negated form also catches NaN (every NaN comparison is false).
	if !(math.Abs(fp.Pos.X) <= MaxCoordM && math.Abs(fp.Pos.Y) <= MaxCoordM) {
		s.cfg.Metrics.submitDropped()
		return ErrBadPosition
	}
	for _, o := range fp.Vec {
		if math.IsNaN(o.RSSI) || math.IsInf(o.RSSI, 0) {
			s.cfg.Metrics.submitDropped()
			return ErrBadRSSI
		}
	}
	// The snapshot's merge-walk distance requires strictly ID-sorted
	// vectors; locally-scanned vectors already are, but crowdsourced
	// input is not trusted to be. Duplicate IDs must not survive: a
	// repeated entry would inflate the per-cell signal-box point counts
	// that Nearest prunes with.
	clean := true
	for i := 1; i < len(fp.Vec); i++ {
		if fp.Vec[i-1].ID >= fp.Vec[i].ID {
			clean = false
			break
		}
	}
	if !clean {
		vec := append(rf.Vector(nil), fp.Vec...)
		sort.Slice(vec, func(a, b int) bool { return vec[a].ID < vec[b].ID })
		w := 0
		for _, o := range vec {
			if w > 0 && vec[w-1].ID == o.ID {
				if o.RSSI > vec[w-1].RSSI {
					vec[w-1].RSSI = o.RSSI
				}
				continue
			}
			vec[w] = o
			w++
		}
		fp.Vec = vec[:w]
	}
	if len(fp.Vec) < 2 {
		s.cfg.Metrics.submitDropped()
		return ErrTooFewTransmitters
	}
	s.mu.Lock()
	s.pending = append(s.pending, fp)
	n := len(s.pending)
	s.mu.Unlock()
	s.cfg.Metrics.submitAccepted(n)
	if n >= s.cfg.RebuildBatch {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// SetOnRebuild installs a hook observing every snapshot swap: it is
// called with the new version and the exact (already-validated) batch
// of fingerprints folded into it, in fold order. Replication hubs use
// it to ship per-version deltas to follower stores: replaying the same
// batches in the same order onto the same base DB rebuilds
// bit-identical snapshots with matching version numbers. The hook runs
// under the rebuild lock — keep it quick (append to a log, signal a
// streamer) and never call back into Rebuild/ApplyDelta from it.
// Install before traffic; nil removes the hook.
func (s *Store) SetOnRebuild(fn func(version uint64, applied []fingerprint.Fingerprint)) {
	s.rebuildMu.Lock()
	s.onRebuild = fn
	s.rebuildMu.Unlock()
}

// fold applies a batch to a copy of cur's database with
// replace-or-extend semantics (a point at the exact position of an
// existing fingerprint refreshes its vector; anywhere else it extends
// the map) and swaps in the rebuilt snapshot. Caller holds rebuildMu.
func (s *Store) fold(cur *Snapshot, batch []fingerprint.Fingerprint) *Snapshot {
	db := copyDB(cur.db)
	byPos := make(map[geo.Point]int, len(db.Points))
	for i, fp := range db.Points {
		byPos[fp.Pos] = i
	}
	for _, fp := range batch {
		if i, ok := byPos[fp.Pos]; ok {
			db.Points[i].Vec = fp.Vec
		} else {
			byPos[fp.Pos] = len(db.Points)
			db.Points = append(db.Points, fp)
		}
	}

	next := Build(db, cur.version+1, s.cfg.CellM, s.cfg.Metrics)
	s.snap.Store(next)
	s.cfg.Metrics.snapshotSwapped(next)
	if s.onRebuild != nil {
		s.onRebuild(next.version, batch)
	}
	return next
}

// Rebuild synchronously folds all pending submissions into a new
// snapshot and swaps it in, returning the live version afterwards. With
// nothing pending it is a no-op. Safe to call concurrently with the
// background compactor and with any number of readers.
func (s *Store) Rebuild() uint64 {
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()

	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()

	cur := s.snap.Load()
	if len(batch) == 0 {
		return cur.version
	}

	next := s.fold(cur, batch)
	s.mu.Lock()
	s.cfg.Metrics.setPending(len(s.pending))
	s.mu.Unlock()
	return next.version
}

// ApplyDelta folds one replicated batch into a new snapshot exactly as
// a local compaction would, returning the new version. Unlike Submit +
// Rebuild it bypasses the pending queue entirely, so a concurrently
// firing background compactor can neither split a delta across two
// versions nor interleave locally queued points into it — the property
// follower stores need for their versions (and snapshot contents) to
// match the leader's bit for bit. The batch must be the leader's
// OnRebuild payload: already validated and in fold order. An empty
// batch still advances the version (the leader's did).
func (s *Store) ApplyDelta(batch []fingerprint.Fingerprint) uint64 {
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	return s.fold(s.snap.Load(), batch).version
}

// compactor is the background rebuild loop: it fires on batch-size
// kicks from Submit and, when configured, on a timer.
func (s *Store) compactor() {
	defer s.wg.Done()
	var tick <-chan time.Time
	if s.cfg.RebuildEvery > 0 {
		t := time.NewTicker(s.cfg.RebuildEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.done:
			return
		case <-s.kick:
			s.Rebuild()
		case <-tick:
			s.Rebuild()
		}
	}
}

// Close stops the background compactor after folding in any remaining
// pending submissions. The store remains readable after Close.
// Idempotent and safe for concurrent callers: every Close returns only
// once the shutdown has completed.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
		s.Rebuild()
	})
}

func (m *Metrics) submitAccepted(pending int) {
	if m == nil {
		return
	}
	m.submitted.Inc()
	m.pending.Set(float64(pending))
}

func (m *Metrics) submitDropped() {
	if m == nil {
		return
	}
	m.dropped.Inc()
}

func (m *Metrics) setPending(n int) {
	if m == nil {
		return
	}
	m.pending.Set(float64(n))
}
