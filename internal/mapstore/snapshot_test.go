package mapstore

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/rf"
)

// synthDB builds a deterministic synthetic fingerprint database: n
// points jittered off a regular grid, each hearing a random subset of
// nTx transmitters with distance-dependent RSSI. It exercises all the
// index's edge conditions: duplicate positions, ties, sparse vectors.
func synthDB(n, nTx int, seed int64) *fingerprint.DB {
	rnd := rand.New(rand.NewSource(seed))
	spacing := 3.0
	side := int(math.Ceil(math.Sqrt(float64(n))))
	type tx struct {
		id  string
		pos geo.Point
		p0  float64
	}
	txs := make([]tx, nTx)
	extent := float64(side) * spacing
	for t := range txs {
		txs[t] = tx{
			id:  fmt.Sprintf("ap-%03d", t),
			pos: geo.Pt(rnd.Float64()*extent, rnd.Float64()*extent),
			p0:  -30 - rnd.Float64()*10,
		}
	}
	db := &fingerprint.DB{SpacingM: spacing, Floor: -98}
	for i := 0; i < n; i++ {
		gx, gy := i%side, i/side
		p := geo.Pt(
			(float64(gx)+0.5)*spacing+rnd.NormFloat64()*0.3,
			(float64(gy)+0.5)*spacing+rnd.NormFloat64()*0.3,
		)
		var vec rf.Vector
		for _, t := range txs {
			d := t.pos.Dist(p)
			rssi := t.p0 - 20*math.Log10(math.Max(d, 1)) + rnd.NormFloat64()*2
			if rssi < -90 { // audibility cutoff keeps vectors sparse
				continue
			}
			vec = append(vec, rf.Obs{ID: t.id, RSSI: rssi})
		}
		if len(vec) < 2 {
			// Force the minimum the survey guarantees.
			vec = rf.Vector{
				{ID: txs[0].id, RSSI: -89},
				{ID: txs[1].id, RSSI: -89.5},
			}
		}
		sort.Slice(vec, func(a, b int) bool { return vec[a].ID < vec[b].ID })
		db.Points = append(db.Points, fingerprint.Fingerprint{Pos: p, Vec: vec})
	}
	// A few exact duplicates and co-located points stress tie-breaking.
	if n >= 4 {
		db.Points[n-1] = db.Points[0]
		db.Points[n-2].Pos = db.Points[1].Pos
	}
	return db
}

// randObs draws a plausible observation vector near a random stored
// point (sharing most of its transmitters, with noise).
func randObs(db *fingerprint.DB, rnd *rand.Rand) rf.Vector {
	base := db.Points[rnd.Intn(len(db.Points))].Vec
	var obs rf.Vector
	for _, o := range base {
		if rnd.Float64() < 0.15 {
			continue // drop some transmitters
		}
		obs = append(obs, rf.Obs{ID: o.ID, RSSI: o.RSSI + rnd.NormFloat64()*3})
	}
	if len(obs) == 0 {
		obs = append(rf.Vector(nil), base...)
	}
	return obs
}

func eqMatches(a, b []fingerprint.Match) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Pos != b[i].Pos || a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

// TestSnapshotEquivalence is the hard requirement of the subsystem:
// every indexed query must return bit-identical results to the linear
// scan — same matches, same order, same floats.
func TestSnapshotEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		n, nTx int
		seed   int64
	}{
		{"small", 40, 12, 1},
		{"medium", 400, 40, 2},
		{"large", 1500, 80, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			db := synthDB(tc.n, tc.nTx, tc.seed)
			snap := Build(db, 1, 0, nil)
			rnd := rand.New(rand.NewSource(tc.seed + 100))
			extent := math.Sqrt(float64(tc.n)) * db.SpacingM

			for trial := 0; trial < 200; trial++ {
				obs := randObs(db, rnd)
				if trial%7 == 0 {
					// Unknown transmitters must take the exact fallback.
					obs = append(obs, rf.Obs{ID: "zz-unknown", RSSI: -60})
					sort.Slice(obs, func(a, b int) bool { return obs[a].ID < obs[b].ID })
				}
				k := 1 + rnd.Intn(6)
				if got, want := snap.Nearest(obs, k), db.Nearest(obs, k); !eqMatches(got, want) {
					t.Fatalf("trial %d: Nearest(k=%d) diverged:\n got %v\nwant %v", trial, k, got, want)
				}
				gd, wd := snap.Distances(obs), db.Distances(obs)
				if len(gd) != len(wd) {
					t.Fatalf("trial %d: Distances length %d != %d", trial, len(gd), len(wd))
				}
				for i := range gd {
					if gd[i] != wd[i] {
						t.Fatalf("trial %d: Distances[%d] = %v != %v", trial, i, gd[i], wd[i])
					}
				}

				// Query points both inside and well outside the grid.
				p := geo.Pt(rnd.Float64()*extent*1.4-0.2*extent, rnd.Float64()*extent*1.4-0.2*extent)
				gv, gdist, gok := snap.VectorAt(p)
				wv, wdist, wok := db.VectorAt(p)
				if gok != wok || gdist != wdist {
					t.Fatalf("trial %d: VectorAt(%v) = (%v,%v) want (%v,%v)", trial, p, gdist, gok, wdist, wok)
				}
				if len(gv) != len(wv) {
					t.Fatalf("trial %d: VectorAt vectors differ in length", trial)
				}
				for i := range gv {
					if gv[i] != wv[i] {
						t.Fatalf("trial %d: VectorAt vec[%d] = %v != %v", trial, i, gv[i], wv[i])
					}
				}

				nb := 3
				if trial%5 == 0 {
					nb = 1 + rnd.Intn(8)
				}
				if got, want := snap.DensityAround(p, nb), db.DensityAround(p, nb); got != want {
					t.Fatalf("trial %d: DensityAround(%v,%d) = %v != %v", trial, p, nb, got, want)
				}
			}
		})
	}
}

// TestSnapshotDuplicateIDBoxes reproduces the pruning hazard of a
// duplicated transmitter ID within one stored vector: the per-cell
// signal boxes must count distinct points per transmitter, not vector
// entries. Point 0's duplicated "a" would otherwise satisfy the
// cell-population count by itself, the floor extension for point 1
// (which does not hear "a") would be skipped, and Nearest would prune
// the cell containing the true match.
func TestSnapshotDuplicateIDBoxes(t *testing.T) {
	db := &fingerprint.DB{SpacingM: 3, Floor: -98, Points: []fingerprint.Fingerprint{
		{Pos: geo.Pt(1, 1), Vec: rf.Vector{{ID: "a", RSSI: -40}, {ID: "a", RSSI: -40}, {ID: "b", RSSI: -50}}},
		{Pos: geo.Pt(2, 2), Vec: rf.Vector{{ID: "b", RSSI: -52}}},
		{Pos: geo.Pt(20, 1), Vec: rf.Vector{{ID: "a", RSSI: -88}, {ID: "b", RSSI: -55}}},
	}}
	snap := Build(db, 1, 4, nil) // cellM=4: points 0 and 1 share a cell
	// Near the floor on "a", close to point 1 on "b": the true nearest
	// is point 1, which lives behind the duplicate-inflated box.
	obs := rf.Vector{{ID: "a", RSSI: -97}, {ID: "b", RSSI: -52}}
	for k := 1; k <= 3; k++ {
		if got, want := snap.Nearest(obs, k), db.Nearest(obs, k); !eqMatches(got, want) {
			t.Fatalf("k=%d: Nearest with duplicate-ID vector diverged:\n got %v\nwant %v", k, got, want)
		}
	}
	gd, wd := snap.Distances(obs), db.Distances(obs)
	for i := range gd {
		if gd[i] != wd[i] {
			t.Fatalf("Distances[%d] = %v != %v", i, gd[i], wd[i])
		}
	}
}

// TestSnapshotBuildExtremeExtent is the defense-in-depth behind
// Store.Submit's position validation: Build handed a database with an
// absurd or non-finite extent must coarsen to a capped grid instead of
// allocating (or panicking on) nx*ny cell offsets, and still answer
// queries bit-identically to the linear scan.
func TestSnapshotBuildExtremeExtent(t *testing.T) {
	vecA := rf.Vector{{ID: "a", RSSI: -40}, {ID: "b", RSSI: -60}}
	vecB := rf.Vector{{ID: "a", RSSI: -70}, {ID: "b", RSSI: -45}}
	db := &fingerprint.DB{SpacingM: 3, Floor: -98, Points: []fingerprint.Fingerprint{
		{Pos: geo.Pt(0, 0), Vec: vecA},
		{Pos: geo.Pt(3, 4), Vec: vecB},
		{Pos: geo.Pt(1e12, 2e12), Vec: vecA},
	}}
	snap := Build(db, 1, 0, nil)
	nx, ny, _ := snap.GridStats()
	if nc := nx * ny; nc > maxGridCells || nc <= 0 {
		t.Fatalf("grid not capped: %dx%d = %d cells", nx, ny, nc)
	}
	obs := rf.Vector{{ID: "a", RSSI: -50}, {ID: "b", RSSI: -55}}
	if got, want := snap.Nearest(obs, 2), db.Nearest(obs, 2); !eqMatches(got, want) {
		t.Fatalf("Nearest on capped grid diverged: %v vs %v", got, want)
	}
	p := geo.Pt(2, 2)
	_, gdist, gok := snap.VectorAt(p)
	_, wdist, wok := db.VectorAt(p)
	if gok != wok || gdist != wdist {
		t.Fatalf("VectorAt on capped grid = (%v,%v), want (%v,%v)", gdist, gok, wdist, wok)
	}
	if got, want := snap.DensityAround(p, 2), db.DensityAround(p, 2); got != want {
		t.Fatalf("DensityAround on capped grid = %v, want %v", got, want)
	}

	// Non-finite coordinates (only reachable by building directly from
	// a corrupt database) must not panic either.
	bad := &fingerprint.DB{SpacingM: 3, Floor: -98, Points: []fingerprint.Fingerprint{
		{Pos: geo.Pt(0, 0), Vec: vecA},
		{Pos: geo.Pt(math.NaN(), math.Inf(1)), Vec: vecB},
	}}
	got := Build(bad, 1, 0, nil).Nearest(obs, 1)
	if len(got) != 1 {
		t.Fatalf("Nearest over non-finite positions = %v", got)
	}
}

// TestSnapshotNeighborLists checks the spatial-index neighbour lists
// against the O(N²) definition the HMM tracker uses.
func TestSnapshotNeighborLists(t *testing.T) {
	db := synthDB(300, 30, 7)
	snap := Build(db, 1, 0, nil)
	maxD := 18.0 // MaxStepM * 3 at the tracker's default
	lists := snap.NeighborLists(maxD)
	if len(lists) != len(db.Points) {
		t.Fatalf("got %d lists for %d points", len(lists), len(db.Points))
	}
	for j := range db.Points {
		var want []int32
		for i := range db.Points {
			if db.Points[i].Pos.Dist(db.Points[j].Pos) > maxD {
				continue
			}
			want = append(want, int32(i))
		}
		got := lists[j]
		if len(got) != len(want) {
			t.Fatalf("point %d: %d neighbours, want %d", j, len(got), len(want))
		}
		for x := range got {
			if got[x] != want[x] {
				t.Fatalf("point %d: neighbour list %v != %v", j, got, want)
			}
		}
	}
	// Cached second call returns the same data.
	again := snap.NeighborLists(maxD)
	if &again[0][0] != &lists[0][0] {
		t.Fatal("NeighborLists did not serve the cached lists")
	}
}

// TestSnapshotEmptyAndDegenerate covers empty maps and single points.
func TestSnapshotEmptyAndDegenerate(t *testing.T) {
	empty := Build(&fingerprint.DB{SpacingM: 3, Floor: -100}, 1, 0, nil)
	if got := empty.Nearest(rf.Vector{{ID: "a", RSSI: -50}}, 3); got != nil {
		t.Fatalf("empty Nearest = %v", got)
	}
	if _, _, ok := empty.VectorAt(geo.Pt(0, 0)); ok {
		t.Fatal("empty VectorAt ok")
	}
	if got := empty.DensityAround(geo.Pt(0, 0), 3); got != 50 {
		t.Fatalf("empty DensityAround = %v, want 50", got)
	}
	if got := empty.Distances(rf.Vector{{ID: "a", RSSI: -50}}); len(got) != 0 {
		t.Fatalf("empty Distances = %v", got)
	}

	one := &fingerprint.DB{SpacingM: 3, Floor: -100, Points: []fingerprint.Fingerprint{{
		Pos: geo.Pt(5, 5),
		Vec: rf.Vector{{ID: "a", RSSI: -40}, {ID: "b", RSSI: -60}},
	}}}
	snap := Build(one, 1, 0, nil)
	obs := rf.Vector{{ID: "a", RSSI: -42}}
	if got, want := snap.Nearest(obs, 3), one.Nearest(obs, 3); !eqMatches(got, want) {
		t.Fatalf("single-point Nearest %v != %v", got, want)
	}
	if got, want := snap.DensityAround(geo.Pt(100, 100), 3), one.DensityAround(geo.Pt(100, 100), 3); got != want {
		t.Fatalf("single-point DensityAround %v != %v", got, want)
	}
}

// TestSnapshotReaderInterface pins the static contract.
func TestSnapshotReaderInterface(t *testing.T) {
	var _ fingerprint.Reader = (*Snapshot)(nil)
	var _ fingerprint.NeighborLister = (*Snapshot)(nil)
	var _ fingerprint.Map = (*Store)(nil)

	db := synthDB(20, 8, 9)
	snap := Build(db, 42, 0, nil)
	if snap.Version() != 42 {
		t.Fatalf("Version = %d", snap.Version())
	}
	if snap.Len() != db.Len() || snap.FloorDB() != db.FloorDB() || snap.Spacing() != db.Spacing() {
		t.Fatal("snapshot metadata does not mirror db")
	}
	for i := 0; i < snap.Len(); i++ {
		if snap.At(i).Pos != db.At(i).Pos {
			t.Fatalf("At(%d) mismatch", i)
		}
	}
	sp, dp := snap.Positions(), db.Positions()
	for i := range sp {
		if sp[i] != dp[i] {
			t.Fatalf("Positions[%d] mismatch", i)
		}
	}
}
