package mapstore

import (
	"time"

	"repro/internal/telemetry"
)

// op names the query kinds the store instruments.
type op int

const (
	opNearest op = iota
	opDistances
	opVectorAt
	opDensity
	opCount
)

var opNames = [opCount]string{"nearest", "distances", "vector_at", "density"}

// Metrics holds the store's telemetry instruments. A nil *Metrics is a
// valid no-op sink, so snapshots built outside a server (tests,
// benchmarks, examples) pay nothing.
type Metrics struct {
	lookups [opCount]*telemetry.Counter
	cells   [opCount]*telemetry.Histogram

	rebuilds  *telemetry.Counter
	submitted *telemetry.Counter
	dropped   *telemetry.Counter
	pending   *telemetry.Gauge
	version   *telemetry.Gauge
	points    *telemetry.Gauge
	builtAt   *telemetry.Gauge
}

// NewMetrics registers the mapstore instruments on reg under the given
// map name ("wifi", "cellular", ...). A nil registry yields no-op
// instruments; telemetry's nil-safety keeps every call site branchless.
func NewMetrics(reg *telemetry.Registry, name string) *Metrics {
	m := &Metrics{
		rebuilds:  reg.Counter("uniloc_mapstore_rebuilds_total", "Snapshot rebuilds completed.", "map", name),
		submitted: reg.Counter("uniloc_mapstore_points_submitted_total", "Crowdsourced fingerprints accepted into the pending queue.", "map", name),
		dropped:   reg.Counter("uniloc_mapstore_points_dropped_total", "Submitted fingerprints rejected as unusable.", "map", name),
		pending:   reg.Gauge("uniloc_mapstore_pending_points", "Fingerprints waiting for the next compaction.", "map", name),
		version:   reg.Gauge("uniloc_mapstore_snapshot_version", "Version of the live snapshot.", "map", name),
		points:    reg.Gauge("uniloc_mapstore_snapshot_points", "Fingerprints in the live snapshot.", "map", name),
		builtAt:   reg.Gauge("uniloc_mapstore_snapshot_built_timestamp_seconds", "Unix time the live snapshot was built.", "map", name),
	}
	for o := op(0); o < opCount; o++ {
		m.lookups[o] = reg.Counter("uniloc_mapstore_lookups_total", "Map queries served, by operation.", "map", name, "op", opNames[o])
		m.cells[o] = reg.Histogram("uniloc_mapstore_cells_scanned", "Grid cells visited per query, by operation.",
			[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}, "map", name, "op", opNames[o])
	}
	return m
}

func (m *Metrics) lookup(o op) {
	if m == nil {
		return
	}
	m.lookups[o].Inc()
}

func (m *Metrics) observeCells(o op, n int) {
	if m == nil {
		return
	}
	m.cells[o].Observe(float64(n))
}

func (m *Metrics) snapshotSwapped(s *Snapshot) {
	if m == nil {
		return
	}
	m.rebuilds.Inc()
	m.version.Set(float64(s.version))
	m.points.Set(float64(s.Len()))
	m.builtAt.Set(float64(s.built.UnixNano()) / float64(time.Second))
}
