// Package hmm implements the second-order hidden-Markov-model location
// predictor the paper uses to estimate the user's position online when
// computing the fingerprint-density feature β₁ (§III-B: "In our current
// implementation, we use a second order HMM, which can provide an
// acceptable estimation accuracy").
//
// States are the fingerprint locations themselves. The transition model
// prefers physically reachable moves (bounded walking speed) and, being
// second-order, moves consistent with the previous displacement
// direction. The emission model converts RSSI-space distance into a
// likelihood.
package hmm

import (
	"math"

	"repro/internal/geo"
)

// Tracker is an online second-order HMM filter over a fixed set of
// candidate locations.
type Tracker struct {
	states []geo.Point

	// belief over (prev, cur) state pairs is too large for dense
	// storage at survey resolution; we keep the marginal belief over
	// the current state plus the expected previous position, which is
	// the standard collapsed approximation for second-order motion
	// smoothing.
	belief []float64
	prev   geo.Point
	cur    geo.Point
	init   bool

	// MaxStepM bounds plausible movement between updates.
	MaxStepM float64
	// DirWeight controls how strongly direction consistency (the
	// second-order term) is rewarded.
	DirWeight float64
	// EmissionScale converts RSSI distance to log-likelihood: larger
	// means flatter emissions.
	EmissionScale float64

	// nb, when set, lists for each state j the ascending indices of
	// states within the transition radius (MaxStepM*3), letting Update
	// skip the full O(N²) scan. See SetNeighborLists.
	nb [][]int32
}

// New creates a tracker over the given candidate locations. The slice
// is copied, so the caller may reuse it.
func New(states []geo.Point) *Tracker {
	return NewShared(append([]geo.Point(nil), states...))
}

// NewShared creates a tracker that adopts states without copying. The
// caller guarantees the slice is never mutated afterwards — e.g. the
// positions slice a sharedcompute entry materializes once per map
// snapshot and hands to every session's tracker. All mutable filter
// state (belief, previous position) stays private per tracker, so
// trackers sharing one states slice are fully independent.
func NewShared(states []geo.Point) *Tracker {
	t := &Tracker{
		states:        states,
		belief:        make([]float64, len(states)),
		MaxStepM:      6,
		DirWeight:     0.6,
		EmissionScale: 12,
	}
	for i := range t.belief {
		if len(states) > 0 {
			t.belief[i] = 1 / float64(len(states))
		}
	}
	return t
}

// Len returns the number of states.
func (t *Tracker) Len() int { return len(t.states) }

// TransitionRadiusM returns the distance beyond which the transition
// model assigns zero probability — the radius neighbor lists must be
// built with.
func (t *Tracker) TransitionRadiusM() float64 { return t.MaxStepM * 3 }

// SetNeighborLists installs precomputed per-state neighbor lists:
// lists[j] holds, in ascending order, every state index i with
// states[i].Dist(states[j]) <= TransitionRadiusM() (self included).
// Update then only visits listed pairs, which preserves the exact
// float summation order of the full scan (the scan skips the same
// pairs) while cutting the transition step from O(N²) to O(N·cell).
// Passing nil restores the full scan. Lists of the wrong length are
// ignored.
func (t *Tracker) SetNeighborLists(lists [][]int32) {
	if lists != nil && len(lists) != len(t.states) {
		return
	}
	t.nb = lists
}

// transWeight is the transition kernel for a move from si to sj at
// distance d: a Gaussian over step length, boosted (second-order term)
// when the move continues the previous displacement direction.
func (t *Tracker) transWeight(si, sj geo.Point, d float64, dir geo.Point, dirNorm float64) float64 {
	g := math.Exp(-d * d / (2 * t.MaxStepM * t.MaxStepM))
	if dirNorm > 0.5 {
		move := sj.Sub(si)
		if mn := move.Norm(); mn > 0.3 {
			cos := move.Dot(dir) / (mn * dirNorm)
			g *= 1 + t.DirWeight*cos
			if g < 0 {
				g = 0
			}
		}
	}
	return g
}

// Update folds in one observation given as the RSSI distance from the
// online scan to each state's fingerprint, and returns the predicted
// location (the belief-weighted mean).
func (t *Tracker) Update(rssiDists []float64) geo.Point {
	if len(rssiDists) != len(t.states) || len(t.states) == 0 {
		return t.cur
	}
	next := make([]float64, len(t.states))
	dir := t.cur.Sub(t.prev)
	dirNorm := dir.Norm()
	for j, sj := range t.states {
		// Transition: sum over weighted previous belief. The indexed
		// variant walks only the precomputed neighbors of j; because
		// the full scan skips exactly the pairs the lists exclude
		// (d > MaxStepM*3), both paths add the same terms in the same
		// order and produce bit-identical beliefs.
		var trans float64
		if !t.init {
			trans = 1
		} else if t.nb != nil {
			for _, i32 := range t.nb[j] {
				i := int(i32)
				if t.belief[i] <= 1e-12 {
					continue
				}
				si := t.states[i]
				d := si.Dist(sj)
				if d > t.MaxStepM*3 {
					continue // defensive: lists built for a smaller radius
				}
				trans += t.belief[i] * t.transWeight(si, sj, d, dir, dirNorm)
			}
		} else {
			for i, si := range t.states {
				if t.belief[i] <= 1e-12 {
					continue
				}
				d := si.Dist(sj)
				if d > t.MaxStepM*3 {
					continue
				}
				trans += t.belief[i] * t.transWeight(si, sj, d, dir, dirNorm)
			}
		}
		emit := math.Exp(-rssiDists[j] / t.EmissionScale)
		next[j] = trans * emit
	}
	var total float64
	for _, v := range next {
		total += v
	}
	if total <= 0 || math.IsNaN(total) {
		// Degenerate update: reset to the emission-only belief.
		total = 0
		for j := range next {
			next[j] = math.Exp(-rssiDists[j] / t.EmissionScale)
			total += next[j]
		}
		if total <= 0 {
			return t.cur
		}
	}
	for j := range next {
		next[j] /= total
	}
	t.belief = next

	var x, y float64
	for j, s := range t.states {
		x += s.X * next[j]
		y += s.Y * next[j]
	}
	est := geo.Pt(x, y)
	t.prev, t.cur = t.cur, est
	t.init = true
	return est
}

// Predicted returns the current predicted location (zero before the
// first update).
func (t *Tracker) Predicted() geo.Point { return t.cur }

// ExportState copies out the tracker's mutable filter state — the
// current belief, the last two predicted positions, and whether the
// first update has happened — for session migration. The states slice
// itself is derived from the map snapshot and is rebuilt, not
// shipped.
func (t *Tracker) ExportState() (belief []float64, prev, cur geo.Point, init bool) {
	return append([]float64(nil), t.belief...), t.prev, t.cur, t.init
}

// RestoreState installs exported filter state into a tracker built
// over the same states. It reports false (leaving the fresh uniform
// belief in place) when the belief length does not match this
// tracker's state count — the map advanced between snapshot and
// restore, and a stale belief over different states would be
// meaningless.
func (t *Tracker) RestoreState(belief []float64, prev, cur geo.Point, init bool) bool {
	if len(belief) != len(t.states) {
		return false
	}
	copy(t.belief, belief)
	t.prev, t.cur, t.init = prev, cur, init
	return true
}
