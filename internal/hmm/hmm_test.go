package hmm

import (
	"math"
	"testing"

	"repro/internal/geo"
)

// lineStates builds states on a 1-D line at 3 m pitch.
func lineStates(n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = geo.Pt(float64(i)*3, 0)
	}
	return out
}

// distsFor builds emission distances favouring state idx.
func distsFor(states []geo.Point, truth geo.Point) []float64 {
	out := make([]float64, len(states))
	for i, s := range states {
		out[i] = s.Dist(truth) * 4 // RSSI distance grows with physical distance
	}
	return out
}

func TestTrackerConvergesToObservation(t *testing.T) {
	states := lineStates(20)
	tr := New(states)
	truth := geo.Pt(30, 0)
	var est geo.Point
	for i := 0; i < 5; i++ {
		est = tr.Update(distsFor(states, truth))
	}
	if est.Dist(truth) > 4 {
		t.Errorf("estimate %v far from truth %v", est, truth)
	}
}

func TestTrackerFollowsMovement(t *testing.T) {
	states := lineStates(30)
	tr := New(states)
	// Walk from x=0 to x=60 at 1.5 m per update.
	var worst float64
	for step := 0; step <= 40; step++ {
		truth := geo.Pt(float64(step)*1.5, 0)
		est := tr.Update(distsFor(states, truth))
		if step > 3 {
			if e := est.Dist(truth); e > worst {
				worst = e
			}
		}
	}
	if worst > 5 {
		t.Errorf("worst tracking error %v too large", worst)
	}
}

func TestTrackerRejectsTeleport(t *testing.T) {
	states := lineStates(40)
	tr := New(states)
	// Establish position at x=6.
	for i := 0; i < 6; i++ {
		tr.Update(distsFor(states, geo.Pt(6, 0)))
	}
	// One glitchy observation at x=90 should not teleport the belief
	// all the way (bounded-speed transition).
	est := tr.Update(distsFor(states, geo.Pt(90, 0)))
	if est.X > 50 {
		t.Errorf("teleported to %v", est)
	}
}

func TestTrackerSecondOrderMomentum(t *testing.T) {
	states := lineStates(40)
	tr := New(states)
	// Walk right for a while.
	for step := 0; step < 12; step++ {
		tr.Update(distsFor(states, geo.Pt(float64(step)*2, 0)))
	}
	before := tr.Predicted()
	// Ambiguous observation equally near x=before±6: momentum should
	// keep the estimate from jumping backward.
	amb := make([]float64, len(states))
	for i, s := range states {
		d1 := math.Abs(s.X - (before.X - 6))
		d2 := math.Abs(s.X - (before.X + 6))
		amb[i] = math.Min(d1, d2) * 4
	}
	est := tr.Update(amb)
	if est.X < before.X-3 {
		t.Errorf("momentum violated: %v -> %v", before, est)
	}
}

func TestTrackerDegenerateInputs(t *testing.T) {
	tr := New(nil)
	if got := tr.Update(nil); got != (geo.Point{}) {
		t.Errorf("empty tracker Update = %v", got)
	}
	states := lineStates(5)
	tr2 := New(states)
	// Mismatched length: no-op.
	if got := tr2.Update([]float64{1, 2}); got != (geo.Point{}) {
		t.Errorf("mismatched Update = %v", got)
	}
	if tr2.Len() != 5 {
		t.Errorf("Len = %d", tr2.Len())
	}
}

func TestTrackerRecoverFromZeroBelief(t *testing.T) {
	states := lineStates(10)
	tr := New(states)
	// Huge distances make all emissions ~0 — the tracker must not NaN.
	huge := make([]float64, len(states))
	for i := range huge {
		huge[i] = 1e9
	}
	est := tr.Update(huge)
	if math.IsNaN(est.X) || math.IsNaN(est.Y) {
		t.Error("NaN estimate")
	}
	// And it still works afterwards.
	est = tr.Update(distsFor(states, geo.Pt(9, 0)))
	if math.IsNaN(est.X) {
		t.Error("NaN after recovery")
	}
}

// gridStates builds a 2-D grid of states at 3 m pitch.
func gridStates(side int) []geo.Point {
	out := make([]geo.Point, 0, side*side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			out = append(out, geo.Pt(float64(x)*3, float64(y)*3))
		}
	}
	return out
}

// neighborListsFor computes the reference neighbor lists by the same
// definition SetNeighborLists documents.
func neighborListsFor(states []geo.Point, maxD float64) [][]int32 {
	out := make([][]int32, len(states))
	for j := range states {
		for i := range states {
			if states[i].Dist(states[j]) > maxD {
				continue
			}
			out[j] = append(out[j], int32(i))
		}
	}
	return out
}

// TestTrackerNeighborListsEquivalent verifies the indexed transition
// path is bit-identical to the full scan over a long tracked walk.
func TestTrackerNeighborListsEquivalent(t *testing.T) {
	states := gridStates(12)
	full := New(states)
	fast := New(states)
	fast.SetNeighborLists(neighborListsFor(states, fast.TransitionRadiusM()))

	for step := 0; step < 30; step++ {
		truth := geo.Pt(float64(step)*1.2, float64(step)*0.7)
		dists := distsFor(states, truth)
		a := full.Update(dists)
		b := fast.Update(dists)
		if a != b {
			t.Fatalf("step %d: estimates diverged: %v != %v", step, a, b)
		}
		for i := range full.belief {
			if full.belief[i] != fast.belief[i] {
				t.Fatalf("step %d: belief[%d] diverged: %v != %v", step, i, full.belief[i], fast.belief[i])
			}
		}
	}
}

func TestTrackerSetNeighborListsValidation(t *testing.T) {
	states := lineStates(8)
	tr := New(states)
	tr.SetNeighborLists(make([][]int32, 3)) // wrong length: ignored
	if tr.nb != nil {
		t.Fatal("mismatched neighbor lists were installed")
	}
	lists := neighborListsFor(states, tr.TransitionRadiusM())
	tr.SetNeighborLists(lists)
	if tr.nb == nil {
		t.Fatal("valid neighbor lists rejected")
	}
	tr.SetNeighborLists(nil)
	if tr.nb != nil {
		t.Fatal("nil did not restore the full scan")
	}
}
