package cluster

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/offload"
	"repro/internal/telemetry"
)

// RouterConfig configures a cluster router.
type RouterConfig struct {
	// Backends are the uniloc-server addresses sessions hash onto.
	// Required, at least one.
	Backends []string

	// VNodes is the virtual-node count per backend on the hash ring.
	// <= 0 uses DefaultVNodes.
	VNodes int

	// DialTimeout bounds each backend dial. <= 0 uses 2s.
	DialTimeout time.Duration

	// HealthEvery is the active probe period: every backend gets a TCP
	// probe this often, marking it down (its sessions re-route) or back
	// up (its keys come home). 0 disables active probing — backends are
	// then only marked down passively, on dial failure, and never
	// revive.
	HealthEvery time.Duration

	// Metrics receives the router's instruments, including the
	// per-backend membership gauge (uniloc_router_backend_up) that
	// makes /metrics show cluster state. Nil disables exposition.
	Metrics *telemetry.Registry
}

// routerMetrics are the router's instruments; all nil — and free —
// without a registry.
type routerMetrics struct {
	reg           *telemetry.Registry
	active        *telemetry.Gauge
	routed        *telemetry.Counter
	dialFailures  *telemetry.Counter
	reroutes      *telemetry.Counter
	helloErrors   *telemetry.Counter
	probes        *telemetry.Counter
	probeFailures *telemetry.Counter
	rebalanced    *telemetry.Counter
}

func newRouterMetrics(reg *telemetry.Registry) routerMetrics {
	return routerMetrics{
		reg:           reg,
		active:        reg.Gauge("uniloc_router_active_conns", "client connections currently proxied"),
		routed:        reg.Counter("uniloc_router_routed_total", "client connections routed to a backend"),
		dialFailures:  reg.Counter("uniloc_router_dial_failures_total", "backend dials that failed (backend marked down)"),
		reroutes:      reg.Counter("uniloc_router_reroutes_total", "connections that landed on a non-first-choice backend"),
		helloErrors:   reg.Counter("uniloc_router_hello_errors_total", "connections dropped before a routable hello"),
		probes:        reg.Counter("uniloc_router_probes_total", "active health probes sent"),
		probeFailures: reg.Counter("uniloc_router_probe_failures_total", "active health probes that failed"),
		rebalanced:    reg.Counter("uniloc_router_rebalanced_total", "proxied connections drained because their key moved to another backend"),
	}
}

// backendUp publishes one backend's membership state as a labeled
// gauge (1 up, 0 down).
func (m routerMetrics) backendUp(addr string, up bool) {
	v := 0.0
	if up {
		v = 1.0
	}
	m.reg.Gauge("uniloc_router_backend_up", "backend liveness on the router's hash ring (1 = routable)", "backend", addr).Set(v)
}

// Router terminates nothing: it reads exactly one frame — the hello —
// to learn the client ID, consistent-hashes it onto a backend,
// forwards the hello verbatim, and then splices bytes both ways. The
// offload protocol (v2–v5, trace context included) crosses it
// untouched, so router and backends upgrade independently. A dead
// backend is marked down on dial failure (and by the active prober),
// and the very next reconnect of its clients lands on a surviving
// node, where protocol v4 either resumes a detached session (same
// node) or opens a fresh one at the client's last served position.
type Router struct {
	ring        *Ring
	dialTimeout time.Duration
	healthEvery time.Duration
	met         routerMetrics

	mu     sync.Mutex
	active int64
	conns  map[*proxied]struct{} // live proxied connections, for rebalance drains
	probes map[string]*probeState
	rnd    *rand.Rand // probe-backoff jitter; guarded by mu
	done   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// proxied is one live client↔backend splice, tracked so a rebalance
// (AddBackend) can drain exactly the connections whose key moved.
type proxied struct {
	client  net.Conn
	backend net.Conn
	key     string
	addr    string
}

// probeState is one backend's prober schedule: consecutive failures
// and the earliest next probe time. A persistently-down backend is
// probed on jittered exponential backoff instead of every tick, so a
// large ring with a dead member doesn't spend its probe budget
// hammering it (and a thundering herd of routers doesn't re-probe in
// lockstep).
type probeState struct {
	failures int
	next     time.Time
}

// NewRouter builds a router over the configured backends.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring := NewRing(cfg.Backends, cfg.VNodes)
	if len(ring.Members()) == 0 {
		return nil, errors.New("cluster: router needs at least one backend")
	}
	dt := cfg.DialTimeout
	if dt <= 0 {
		dt = 2 * time.Second
	}
	r := &Router{
		ring:        ring,
		dialTimeout: dt,
		healthEvery: cfg.HealthEvery,
		met:         newRouterMetrics(cfg.Metrics),
		conns:       make(map[*proxied]struct{}),
		probes:      make(map[string]*probeState),
		rnd:         rand.New(rand.NewSource(time.Now().UnixNano())),
		done:        make(chan struct{}),
	}
	for _, m := range ring.Members() {
		r.met.backendUp(m.Addr, true)
	}
	if r.healthEvery > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Ring exposes the router's hash ring (membership snapshots, manual
// mark-down in tests).
func (r *Router) Ring() *Ring { return r.ring }

// Close stops the active prober. In-flight proxied connections are
// left alone — close the listener to stop new ones.
func (r *Router) Close() {
	r.once.Do(func() { close(r.done) })
	r.wg.Wait()
}

// markDown records a backend transition, keeping the membership gauge
// in sync with the ring.
func (r *Router) markDown(addr string, down bool) {
	was := r.ring.Up(addr)
	r.ring.SetDown(addr, down)
	if was == down { // state actually changed
		r.met.backendUp(addr, !down)
	}
}

// probeBackoffCap caps the prober's exponential backoff at this many
// base periods: a dead backend is still re-probed within ~16 periods,
// so a restarted node rejoins promptly, while the steady-state cost of
// a long-dead one drops by an order of magnitude.
const probeBackoffCap = 16

// probeLoop actively probes backends with TCP dials: a refused probe
// marks the backend down, a successful one marks it back up — so a
// restarted node rejoins the ring without operator action. Healthy
// backends are probed every HealthEvery; a backend that keeps failing
// backs off exponentially (doubling per consecutive failure, capped,
// with ±25% jitter) so persistent deadness is cheap to track.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.healthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			now := time.Now()
			for _, m := range r.ring.Members() {
				r.mu.Lock()
				ps := r.probes[m.Addr]
				if ps == nil {
					ps = &probeState{}
					r.probes[m.Addr] = ps
				}
				due := !now.Before(ps.next)
				r.mu.Unlock()
				if !due {
					continue
				}
				r.met.probes.Inc()
				conn, err := net.DialTimeout("tcp", m.Addr, r.dialTimeout)
				if err == nil {
					_ = conn.Close()
				}
				r.markDown(m.Addr, err != nil)
				r.mu.Lock()
				if err != nil {
					r.met.probeFailures.Inc()
					if ps.failures < 30 {
						ps.failures++
					}
					mult := 1 << ps.failures
					if mult > probeBackoffCap {
						mult = probeBackoffCap
					}
					delay := time.Duration(mult) * r.healthEvery
					// ±25% jitter de-correlates probe storms across routers.
					delay += time.Duration((r.rnd.Float64() - 0.5) * 0.5 * float64(delay))
					ps.next = now.Add(delay)
				} else {
					ps.failures = 0
					ps.next = now.Add(r.healthEvery)
				}
				r.mu.Unlock()
			}
		}
	}
}

// AddBackend adds a live backend to the router's ring at runtime and
// drains exactly the proxied connections whose key now hashes to it:
// their splices are severed with an RST on both sides, so the backend
// parks the v4 session for resume and the client's reconnect — landing
// on the new backend — migrates the walk over the handoff path instead
// of restarting it. Connections whose keys did not move are untouched.
// Returns how many connections were drained; -1 if the address was
// already a member (nothing changes).
func (r *Router) AddBackend(addr string) int {
	if !r.ring.Add(addr) {
		return -1
	}
	r.met.backendUp(addr, true)
	r.mu.Lock()
	var moved []*proxied
	for p := range r.conns {
		if next, ok := r.ring.Pick(p.key); ok && next != p.addr {
			moved = append(moved, p)
		}
	}
	r.mu.Unlock()
	for _, p := range moved {
		// Drain-before-move: the abrupt close tells the old backend to
		// park (not end) the session; the client reconnects and the ring
		// now routes it to the new backend, which fetches the session
		// state over the handoff wire.
		abortConn(p.client)
		abortConn(p.backend)
		_ = p.client.Close()
		_ = p.backend.Close()
		r.met.rebalanced.Inc()
	}
	return len(moved)
}

// dialBackend walks the ring from the key's home position: the home
// backend first, then — marking each failure down — the next live
// points clockwise, so one dead node costs its clients one extra dial,
// not an outage.
func (r *Router) dialBackend(key string) (net.Conn, string, error) {
	tried := 0
	for {
		addr, ok := r.ring.Pick(key)
		if !ok {
			return nil, "", errors.New("cluster: no live backends")
		}
		conn, err := net.DialTimeout("tcp", addr, r.dialTimeout)
		if err == nil {
			if tried > 0 {
				r.met.reroutes.Inc()
			}
			return conn, addr, nil
		}
		r.met.dialFailures.Inc()
		r.markDown(addr, true)
		if tried++; tried > len(r.ring.Members()) {
			return nil, "", fmt.Errorf("cluster: all backends unreachable: %w", err)
		}
	}
}

// Serve proxies one client connection: hello in, backend out, then a
// transparent bidirectional splice until either side closes.
func (r *Router) Serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()

	t, payload, err := offload.ReadFrame(conn)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil // port scan or health probe: quiet close
		}
		r.met.helloErrors.Inc()
		return err
	}
	if t != offload.MsgHello {
		r.met.helloErrors.Inc()
		return fmt.Errorf("cluster: expected hello, got frame type %d", t)
	}
	hello, err := offload.DecodeHello(payload)
	if err != nil {
		r.met.helloErrors.Inc()
		return err
	}
	key := hello.ClientID
	if key == "" {
		// Anonymous clients still need a stable-ish shard: the remote
		// address holds for the life of this connection, which is all an
		// ID-less (hence resume-less) session can use anyway.
		key = conn.RemoteAddr().String()
	}

	backend, addr, err := r.dialBackend(key)
	if err != nil {
		return err
	}
	defer func() { _ = backend.Close() }()
	if _, err := offload.WriteFrame(backend, offload.MsgHello, payload); err != nil {
		r.markDown(addr, true)
		return fmt.Errorf("cluster: forward hello to %s: %w", addr, err)
	}
	r.met.routed.Inc()
	p := &proxied{client: conn, backend: backend, key: key, addr: addr}
	r.mu.Lock()
	r.active++
	r.conns[p] = struct{}{}
	r.met.active.Set(float64(r.active))
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.active--
		delete(r.conns, p)
		r.met.active.Set(float64(r.active))
		r.mu.Unlock()
	}()

	// Splice. Closing both conns on either direction's exit unblocks
	// the other copy; a backend death therefore surfaces to the client
	// immediately as a dead connection, and its reconnect re-enters the
	// router. Abruptness must survive the hop: a client RST arriving as
	// a read error is re-raised to the backend as an RST (not a clean
	// FIN), because uniloc-server reads the difference semantically —
	// a reset parks a v4 session for resume, EOF ends the walk.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := io.Copy(backend, conn); err != nil {
			abortConn(backend)
		}
		_ = backend.Close()
		_ = conn.Close()
	}()
	if _, err := io.Copy(conn, backend); err != nil {
		abortConn(conn)
	}
	_ = conn.Close()
	_ = backend.Close()
	<-done
	return nil
}

// abortConn arms an RST close: the peer sees a connection reset
// instead of a clean EOF when the conn is closed next.
func abortConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
}

// ListenAndServe accepts and proxies connections until the listener
// closes. Transient accept errors back off exactly like the offload
// server's loop; per-connection errors go to errf (may be nil).
func (r *Router) ListenAndServe(ln net.Listener, errf func(error)) {
	backoff := 5 * time.Millisecond
	const maxBackoff = time.Second
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				break
			}
			if errf != nil {
				errf(fmt.Errorf("cluster: accept: %w (retrying in %v)", err, backoff))
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 5 * time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.Serve(conn); err != nil && errf != nil {
				errf(err)
			}
		}()
	}
	wg.Wait()
}
