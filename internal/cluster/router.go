package cluster

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/offload"
	"repro/internal/telemetry"
)

// RouterConfig configures a cluster router.
type RouterConfig struct {
	// Backends are the uniloc-server addresses sessions hash onto.
	// Required, at least one.
	Backends []string

	// VNodes is the virtual-node count per backend on the hash ring.
	// <= 0 uses DefaultVNodes.
	VNodes int

	// DialTimeout bounds each backend dial. <= 0 uses 2s.
	DialTimeout time.Duration

	// HealthEvery is the active probe period: every backend gets a TCP
	// probe this often, marking it down (its sessions re-route) or back
	// up (its keys come home). 0 disables active probing — backends are
	// then only marked down passively, on dial failure, and never
	// revive.
	HealthEvery time.Duration

	// Metrics receives the router's instruments, including the
	// per-backend membership gauge (uniloc_router_backend_up) that
	// makes /metrics show cluster state. Nil disables exposition.
	Metrics *telemetry.Registry
}

// routerMetrics are the router's instruments; all nil — and free —
// without a registry.
type routerMetrics struct {
	reg          *telemetry.Registry
	active       *telemetry.Gauge
	routed       *telemetry.Counter
	dialFailures *telemetry.Counter
	reroutes     *telemetry.Counter
	helloErrors  *telemetry.Counter
	probes       *telemetry.Counter
}

func newRouterMetrics(reg *telemetry.Registry) routerMetrics {
	return routerMetrics{
		reg:          reg,
		active:       reg.Gauge("uniloc_router_active_conns", "client connections currently proxied"),
		routed:       reg.Counter("uniloc_router_routed_total", "client connections routed to a backend"),
		dialFailures: reg.Counter("uniloc_router_dial_failures_total", "backend dials that failed (backend marked down)"),
		reroutes:     reg.Counter("uniloc_router_reroutes_total", "connections that landed on a non-first-choice backend"),
		helloErrors:  reg.Counter("uniloc_router_hello_errors_total", "connections dropped before a routable hello"),
		probes:       reg.Counter("uniloc_router_probes_total", "active health probes sent"),
	}
}

// backendUp publishes one backend's membership state as a labeled
// gauge (1 up, 0 down).
func (m routerMetrics) backendUp(addr string, up bool) {
	v := 0.0
	if up {
		v = 1.0
	}
	m.reg.Gauge("uniloc_router_backend_up", "backend liveness on the router's hash ring (1 = routable)", "backend", addr).Set(v)
}

// Router terminates nothing: it reads exactly one frame — the hello —
// to learn the client ID, consistent-hashes it onto a backend,
// forwards the hello verbatim, and then splices bytes both ways. The
// offload protocol (v2–v5, trace context included) crosses it
// untouched, so router and backends upgrade independently. A dead
// backend is marked down on dial failure (and by the active prober),
// and the very next reconnect of its clients lands on a surviving
// node, where protocol v4 either resumes a detached session (same
// node) or opens a fresh one at the client's last served position.
type Router struct {
	ring        *Ring
	dialTimeout time.Duration
	healthEvery time.Duration
	met         routerMetrics

	mu     sync.Mutex
	active int64
	done   chan struct{}
	once   sync.Once
	wg     sync.WaitGroup
}

// NewRouter builds a router over the configured backends.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring := NewRing(cfg.Backends, cfg.VNodes)
	if len(ring.Members()) == 0 {
		return nil, errors.New("cluster: router needs at least one backend")
	}
	dt := cfg.DialTimeout
	if dt <= 0 {
		dt = 2 * time.Second
	}
	r := &Router{
		ring:        ring,
		dialTimeout: dt,
		healthEvery: cfg.HealthEvery,
		met:         newRouterMetrics(cfg.Metrics),
		done:        make(chan struct{}),
	}
	for _, m := range ring.Members() {
		r.met.backendUp(m.Addr, true)
	}
	if r.healthEvery > 0 {
		r.wg.Add(1)
		go r.probeLoop()
	}
	return r, nil
}

// Ring exposes the router's hash ring (membership snapshots, manual
// mark-down in tests).
func (r *Router) Ring() *Ring { return r.ring }

// Close stops the active prober. In-flight proxied connections are
// left alone — close the listener to stop new ones.
func (r *Router) Close() {
	r.once.Do(func() { close(r.done) })
	r.wg.Wait()
}

// markDown records a backend transition, keeping the membership gauge
// in sync with the ring.
func (r *Router) markDown(addr string, down bool) {
	was := r.ring.Up(addr)
	r.ring.SetDown(addr, down)
	if was == down { // state actually changed
		r.met.backendUp(addr, !down)
	}
}

// probeLoop actively probes every backend with a TCP dial: a refused
// probe marks the backend down, a successful one marks it back up —
// so a restarted node rejoins the ring without operator action.
func (r *Router) probeLoop() {
	defer r.wg.Done()
	tick := time.NewTicker(r.healthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
			for _, m := range r.ring.Members() {
				r.met.probes.Inc()
				conn, err := net.DialTimeout("tcp", m.Addr, r.dialTimeout)
				if err == nil {
					_ = conn.Close()
				}
				r.markDown(m.Addr, err != nil)
			}
		}
	}
}

// dialBackend walks the ring from the key's home position: the home
// backend first, then — marking each failure down — the next live
// points clockwise, so one dead node costs its clients one extra dial,
// not an outage.
func (r *Router) dialBackend(key string) (net.Conn, string, error) {
	tried := 0
	for {
		addr, ok := r.ring.Pick(key)
		if !ok {
			return nil, "", errors.New("cluster: no live backends")
		}
		conn, err := net.DialTimeout("tcp", addr, r.dialTimeout)
		if err == nil {
			if tried > 0 {
				r.met.reroutes.Inc()
			}
			return conn, addr, nil
		}
		r.met.dialFailures.Inc()
		r.markDown(addr, true)
		if tried++; tried > len(r.ring.Members()) {
			return nil, "", fmt.Errorf("cluster: all backends unreachable: %w", err)
		}
	}
}

// Serve proxies one client connection: hello in, backend out, then a
// transparent bidirectional splice until either side closes.
func (r *Router) Serve(conn net.Conn) error {
	defer func() { _ = conn.Close() }()

	t, payload, err := offload.ReadFrame(conn)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil // port scan or health probe: quiet close
		}
		r.met.helloErrors.Inc()
		return err
	}
	if t != offload.MsgHello {
		r.met.helloErrors.Inc()
		return fmt.Errorf("cluster: expected hello, got frame type %d", t)
	}
	hello, err := offload.DecodeHello(payload)
	if err != nil {
		r.met.helloErrors.Inc()
		return err
	}
	key := hello.ClientID
	if key == "" {
		// Anonymous clients still need a stable-ish shard: the remote
		// address holds for the life of this connection, which is all an
		// ID-less (hence resume-less) session can use anyway.
		key = conn.RemoteAddr().String()
	}

	backend, addr, err := r.dialBackend(key)
	if err != nil {
		return err
	}
	defer func() { _ = backend.Close() }()
	if _, err := offload.WriteFrame(backend, offload.MsgHello, payload); err != nil {
		r.markDown(addr, true)
		return fmt.Errorf("cluster: forward hello to %s: %w", addr, err)
	}
	r.met.routed.Inc()
	r.mu.Lock()
	r.active++
	r.met.active.Set(float64(r.active))
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.active--
		r.met.active.Set(float64(r.active))
		r.mu.Unlock()
	}()

	// Splice. Closing both conns on either direction's exit unblocks
	// the other copy; a backend death therefore surfaces to the client
	// immediately as a dead connection, and its reconnect re-enters the
	// router. Abruptness must survive the hop: a client RST arriving as
	// a read error is re-raised to the backend as an RST (not a clean
	// FIN), because uniloc-server reads the difference semantically —
	// a reset parks a v4 session for resume, EOF ends the walk.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := io.Copy(backend, conn); err != nil {
			abortConn(backend)
		}
		_ = backend.Close()
		_ = conn.Close()
	}()
	if _, err := io.Copy(conn, backend); err != nil {
		abortConn(conn)
	}
	_ = conn.Close()
	_ = backend.Close()
	<-done
	return nil
}

// abortConn arms an RST close: the peer sees a connection reset
// instead of a clean EOF when the conn is closed next.
func abortConn(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
}

// ListenAndServe accepts and proxies connections until the listener
// closes. Transient accept errors back off exactly like the offload
// server's loop; per-connection errors go to errf (may be nil).
func (r *Router) ListenAndServe(ln net.Listener, errf func(error)) {
	backoff := 5 * time.Millisecond
	const maxBackoff = time.Second
	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				break
			}
			if errf != nil {
				errf(fmt.Errorf("cluster: accept: %w (retrying in %v)", err, backoff))
			}
			time.Sleep(backoff)
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 5 * time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.Serve(conn); err != nil && errf != nil {
				errf(err)
			}
		}()
	}
	wg.Wait()
}
