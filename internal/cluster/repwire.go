package cluster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/rf"
)

// The replication link speaks its own framing, not the offload
// protocol's: a compaction delta carries a whole batch of fingerprints
// and would overflow the offload frame's uint16 length, and — crucially
// — RSSI travels as full float64 bits. The offload vector codec
// quantizes RSSI to 0.1 dB for phone uplinks; replaying a quantized
// batch would rebuild a follower snapshot whose Nearest distances
// diverge from the leader's in the last bits, breaking the
// bit-identity contract the cluster test pins.

// Replication frame types.
const (
	rmSubscribe byte = 1 // follower → leader: per-map current versions
	rmDelta     byte = 2 // leader → follower: one compaction batch
	rmSurvey    byte = 3 // follower → leader: forwarded crowdsourced point
	rmError     byte = 4 // leader → follower: terminal error message
)

// maxRepPayload bounds one replication frame (16 MiB — thousands of
// points per delta with room to spare; a frame beyond it is corrupt).
const maxRepPayload = 16 << 20

// ErrRepProtocol reports a malformed replication frame.
var ErrRepProtocol = errors.New("cluster: replication protocol error")

// writeRepFrame writes one [type][uint32 len][payload] frame.
func writeRepFrame(w io.Writer, t byte, payload []byte) error {
	if len(payload) > maxRepPayload {
		return fmt.Errorf("%w: frame payload %d exceeds %d", ErrRepProtocol, len(payload), maxRepPayload)
	}
	hdr := [5]byte{t}
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if len(payload) == 0 {
		return nil
	}
	_, err := w.Write(payload)
	return err
}

// readRepFrame reads one replication frame.
func readRepFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[1:])
	if n > maxRepPayload {
		return 0, nil, fmt.Errorf("%w: frame payload %d exceeds %d", ErrRepProtocol, n, maxRepPayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return hdr[0], payload, nil
}

// delta is one map store compaction: the exact batch its version
// folded in.
type delta struct {
	mapID   byte
	version uint64
	batch   []fingerprint.Fingerprint
}

// encodeDelta packs a delta frame:
// [mapID][uint64 version][uint32 n]{point}*n where each point is
// [float64 x][float64 y][uint16 k]{[uint16 idLen][id][float64 rssi]}*k.
func encodeDelta(d delta) ([]byte, error) {
	size := 1 + 8 + 4
	for _, fp := range d.batch {
		size += 16 + 2
		for _, o := range fp.Vec {
			if len(o.ID) > math.MaxUint16 {
				return nil, fmt.Errorf("%w: transmitter ID %d bytes", ErrRepProtocol, len(o.ID))
			}
			size += 2 + len(o.ID) + 8
		}
	}
	out := make([]byte, 0, size)
	out = append(out, d.mapID)
	out = binary.BigEndian.AppendUint64(out, d.version)
	out = binary.BigEndian.AppendUint32(out, uint32(len(d.batch)))
	for _, fp := range d.batch {
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(fp.Pos.X))
		out = binary.BigEndian.AppendUint64(out, math.Float64bits(fp.Pos.Y))
		out = binary.BigEndian.AppendUint16(out, uint16(len(fp.Vec)))
		for _, o := range fp.Vec {
			out = binary.BigEndian.AppendUint16(out, uint16(len(o.ID)))
			out = append(out, o.ID...)
			out = binary.BigEndian.AppendUint64(out, math.Float64bits(o.RSSI))
		}
	}
	return out, nil
}

// decodeDelta unpacks a delta frame.
func decodeDelta(b []byte) (delta, error) {
	var d delta
	if len(b) < 13 {
		return d, fmt.Errorf("%w: short delta frame (%d bytes)", ErrRepProtocol, len(b))
	}
	d.mapID = b[0]
	d.version = binary.BigEndian.Uint64(b[1:])
	n := binary.BigEndian.Uint32(b[9:])
	b = b[13:]
	d.batch = make([]fingerprint.Fingerprint, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 18 {
			return d, fmt.Errorf("%w: truncated delta point", ErrRepProtocol)
		}
		x := math.Float64frombits(binary.BigEndian.Uint64(b))
		y := math.Float64frombits(binary.BigEndian.Uint64(b[8:]))
		k := int(binary.BigEndian.Uint16(b[16:]))
		b = b[18:]
		vec := make(rf.Vector, 0, k)
		for j := 0; j < k; j++ {
			if len(b) < 2 {
				return d, fmt.Errorf("%w: truncated observation", ErrRepProtocol)
			}
			idLen := int(binary.BigEndian.Uint16(b))
			if len(b) < 2+idLen+8 {
				return d, fmt.Errorf("%w: truncated observation", ErrRepProtocol)
			}
			id := string(b[2 : 2+idLen])
			rssi := math.Float64frombits(binary.BigEndian.Uint64(b[2+idLen:]))
			b = b[2+idLen+8:]
			vec = append(vec, rf.Obs{ID: id, RSSI: rssi})
		}
		d.batch = append(d.batch, fingerprint.Fingerprint{Pos: geo.Pt(x, y), Vec: vec})
	}
	if len(b) != 0 {
		return d, fmt.Errorf("%w: %d trailing delta bytes", ErrRepProtocol, len(b))
	}
	return d, nil
}

// encodeSubscribe packs a follower's subscription: [uint16 n]{[mapID]
// [uint64 version]}*n, the version each of its stores is currently at
// (the leader streams everything newer).
func encodeSubscribe(versions map[byte]uint64) []byte {
	out := make([]byte, 0, 2+len(versions)*9)
	out = binary.BigEndian.AppendUint16(out, uint16(len(versions)))
	// Deterministic order: map IDs are single bytes, walk the space.
	for id := 0; id < 256; id++ {
		v, ok := versions[byte(id)]
		if !ok {
			continue
		}
		out = append(out, byte(id))
		out = binary.BigEndian.AppendUint64(out, v)
	}
	return out
}

// decodeSubscribe unpacks a subscription frame.
func decodeSubscribe(b []byte) (map[byte]uint64, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("%w: short subscribe frame", ErrRepProtocol)
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) != n*9 {
		return nil, fmt.Errorf("%w: subscribe frame %d bytes for %d maps", ErrRepProtocol, len(b), n)
	}
	out := make(map[byte]uint64, n)
	for i := 0; i < n; i++ {
		out[b[0]] = binary.BigEndian.Uint64(b[1:])
		b = b[9:]
	}
	return out, nil
}
