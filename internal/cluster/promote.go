package cluster

import (
	"repro/internal/telemetry"
)

// Promote turns a standby follower into the replication leader after
// the old leader dies. The sequence is deterministic:
//
//  1. The follower's connection loop stops — no more deltas can arrive
//     and race the role flip.
//  2. A Leader is built over the same stores, so every subsequent
//     local compaction enters the new delta log.
//  3. The log is seeded with the follower's retained history: a
//     surviving follower that subscribes at version V gets exactly the
//     deltas (V, head] replayed in version order — deterministic
//     catch-up, with the follower's own gap check rejecting anything
//     the history cannot bridge.
//  4. Surveys the follower buffered while the leader link was down are
//     submitted into the local stores, entering the ordinary
//     Submit → compact → delta cycle — re-forwarded, not lost.
//
// The caller then serves the returned leader on its replication
// listener (Leader.ListenAndServe) and routes local survey ingest to
// Leader.SurveyIngest instead of Follower.ForwardSurvey. Followers
// configured with this node in their candidate list (NewFollowerAddrs)
// re-subscribe on their next reconnect cycle.
func Promote(f *Follower, reg *telemetry.Registry) *Leader {
	f.Close()
	l := NewLeader(f.stores, reg)
	l.seed(f.retainedDeltas())
	for _, sv := range f.takeBuffered() {
		l.ingest(sv)
	}
	return l
}

// seed prepends retained history to the delta log. Compactions hooked
// by NewLeader may already have appended newer entries; the retained
// history is strictly older (it ends at the stores' current versions),
// so prepending preserves ascending order.
func (l *Leader) seed(history map[byte][]delta) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, log := range history {
		l.logs[id] = append(append([]delta(nil), log...), l.logs[id]...)
	}
	l.cond.Broadcast()
}
