package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/mapstore"
	"repro/internal/offload"
	"repro/internal/telemetry"
)

// ErrNotConnected reports a survey forward attempted while the
// follower has no live leader connection and its buffer is full; the
// point is dropped (the client fired and forgot) and the offload
// server counts it.
var ErrNotConnected = errors.New("cluster: not connected to replication leader")

// surveyBufferCap bounds the surveys a follower holds while its leader
// link is down (a leader failover gap); beyond it the oldest buffered
// point is dropped — bounded memory beats unbounded fidelity on a
// crowdsourcing path that is lossy by design.
const surveyBufferCap = 1024

// followerMetrics are the replication client's instruments.
type followerMetrics struct {
	connected       *telemetry.Gauge
	deltasApplied   *telemetry.Counter
	pointsApplied   *telemetry.Counter
	surveysForward  *telemetry.Counter
	surveysDropped  *telemetry.Counter
	surveysBuffered *telemetry.Counter
	surveysFlushed  *telemetry.Counter
	gapAborts       *telemetry.Counter
	reconnectsTotal *telemetry.Counter
}

func newFollowerMetrics(reg *telemetry.Registry) followerMetrics {
	return followerMetrics{
		connected:       reg.Gauge("uniloc_repl_connected", "1 while subscribed to the replication leader"),
		deltasApplied:   reg.Counter("uniloc_repl_deltas_applied_total", "leader compaction deltas folded into local stores"),
		pointsApplied:   reg.Counter("uniloc_repl_points_applied_total", "fingerprints folded in from deltas"),
		surveysForward:  reg.Counter("uniloc_repl_surveys_sent_total", "locally ingested surveys forwarded to the leader"),
		surveysDropped:  reg.Counter("uniloc_repl_surveys_send_failed_total", "survey forwards dropped (no leader link and buffer full)"),
		surveysBuffered: reg.Counter("uniloc_repl_surveys_buffered_total", "surveys buffered while the leader link was down"),
		surveysFlushed:  reg.Counter("uniloc_repl_surveys_flushed_total", "buffered surveys re-forwarded after the link came back"),
		gapAborts:       reg.Counter("uniloc_repl_gap_aborts_total", "sessions aborted on a delta version gap (resubscribed instead of applying)"),
		reconnectsTotal: reg.Counter("uniloc_repl_reconnects_total", "replication link reconnect attempts"),
	}
}

// Follower keeps a node's map stores converged with the leader's: it
// subscribes with its stores' current versions, folds every streamed
// delta in with Store.ApplyDelta (which pins versions exactly like a
// local compaction, preserving the bit-identity and batch-grouping
// invariants per node), and forwards locally ingested surveys to the
// leader — the node itself never compacts crowdsourced input, so its
// versions can never fork from the leader's.
//
// Failover plumbing: a follower can be given several leader addresses
// (the current leader plus promotion candidates) and cycles through
// them on connection failure, so followers re-home onto a promoted
// standby without restarting. It retains every applied delta, giving
// cluster.Promote a complete log to seed the new leader's streamer
// with, and buffers surveys while the link is down so points ingested
// during a leader failover are re-forwarded, not lost.
type Follower struct {
	addrs  []string
	stores map[byte]*mapstore.Store
	met    followerMetrics

	mu       sync.Mutex
	conn     net.Conn          // nil while disconnected
	buf      []*offload.Survey // surveys held while disconnected
	retained map[byte][]delta  // applied deltas, ascending version per map

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewFollower builds a follower replicating from the leader at addr
// and starts its connection loop (dial, subscribe, apply; reconnect
// with backoff on any failure). Close stops it.
//
// The stores must be constructed from the same seed database as the
// leader's and must never fold local submissions (route surveys
// through ForwardSurvey — offload.ServerConfig.SurveyIngest does this
// when wired); otherwise versions fork and ApplyDelta diverges.
func NewFollower(addr string, stores map[byte]*mapstore.Store, reg *telemetry.Registry) *Follower {
	return NewFollowerAddrs([]string{addr}, stores, reg)
}

// NewFollowerAddrs is NewFollower over a candidate leader list: the
// follower tries each address in turn until one accepts its
// subscription, and moves to the next on every failure — a promoted
// standby in the list picks up the followers of a dead leader without
// operator action.
func NewFollowerAddrs(addrs []string, stores map[byte]*mapstore.Store, reg *telemetry.Registry) *Follower {
	f := &Follower{
		addrs:    addrs,
		stores:   stores,
		met:      newFollowerMetrics(reg),
		retained: make(map[byte][]delta, len(stores)),
		done:     make(chan struct{}),
	}
	f.wg.Add(1)
	go f.run()
	return f
}

// Close stops the connection loop and drops the link. Idempotent.
func (f *Follower) Close() {
	f.once.Do(func() { close(f.done) })
	f.mu.Lock()
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// run is the connection loop: one session per iteration, capped
// exponential backoff between attempts, cycling through the candidate
// leader addresses on failure.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := 10 * time.Millisecond
	const maxBackoff = 2 * time.Second
	next := 0
	for {
		select {
		case <-f.done:
			return
		default:
		}
		err := f.session(f.addrs[next%len(f.addrs)])
		if err == nil {
			backoff = 10 * time.Millisecond // served for a while: reset
		} else {
			next++ // this candidate failed: try the next one
		}
		select {
		case <-f.done:
			return
		case <-time.After(backoff):
		}
		f.met.reconnectsTotal.Inc()
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// session runs one subscribe-and-apply cycle until the link fails.
func (f *Follower) session(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		return err
	}
	versions := make(map[byte]uint64, len(f.stores))
	for id, st := range f.stores {
		versions[id] = st.Version()
	}
	if err := writeRepFrame(conn, rmSubscribe, encodeSubscribe(versions)); err != nil {
		_ = conn.Close()
		return err
	}
	f.mu.Lock()
	f.conn = conn
	buffered := f.buf
	f.buf = nil
	f.mu.Unlock()
	// A Close that ran between the dial and the assignment above saw a
	// nil conn and closed nothing; catch up here so the blocking read
	// below cannot outlive Close.
	select {
	case <-f.done:
		_ = conn.Close()
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		return nil
	default:
	}
	f.met.connected.Set(1)
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		f.met.connected.Set(0)
		_ = conn.Close()
	}()

	// The link is back: re-forward every survey buffered during the gap
	// (a leader failover must not eat crowdsourced points). A write
	// failure re-buffers the remainder for the next session.
	for i, sv := range buffered {
		if err := writeRepFrame(conn, rmSurvey, offload.EncodeSurvey(sv)); err != nil {
			f.mu.Lock()
			f.buf = append(buffered[i:], f.buf...)
			f.mu.Unlock()
			return nil
		}
		f.met.surveysFlushed.Inc()
	}

	for {
		t, payload, err := readRepFrame(conn)
		if err != nil {
			return nil // link failed; run() redials
		}
		switch t {
		case rmDelta:
			d, err := decodeDelta(payload)
			if err != nil {
				return err
			}
			st := f.stores[d.mapID]
			if st == nil {
				return fmt.Errorf("%w: delta for unknown map %d", ErrRepProtocol, d.mapID)
			}
			if cur := st.Version(); d.version != cur+1 {
				// A gap would silently fork the snapshot contents even
				// though ApplyDelta's version still increments; resubscribe
				// from our actual version instead of applying.
				f.met.gapAborts.Inc()
				return fmt.Errorf("cluster: delta version %d on local version %d (map %d)", d.version, cur, d.mapID)
			}
			if got := st.ApplyDelta(d.batch); got != d.version {
				return fmt.Errorf("cluster: applied delta landed at version %d, want %d", got, d.version)
			}
			f.mu.Lock()
			f.retained[d.mapID] = append(f.retained[d.mapID], d)
			f.mu.Unlock()
			f.met.deltasApplied.Inc()
			f.met.pointsApplied.Add(int64(len(d.batch)))
		case rmError:
			return fmt.Errorf("cluster: leader refused subscription: %s", payload)
		default:
			return fmt.Errorf("%w: unexpected frame type %d from leader", ErrRepProtocol, t)
		}
	}
}

// ForwardSurvey ships one locally received survey to the leader
// (fire-and-forget, like the phone uplink that delivered it). While
// the leader link is down — a failover gap — the survey is buffered
// and re-forwarded when the link returns; only a full buffer drops.
// Plugs directly into offload.ServerConfig.SurveyIngest.
func (f *Follower) ForwardSurvey(sv *offload.Survey) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conn == nil {
		if len(f.buf) >= surveyBufferCap {
			f.met.surveysDropped.Inc()
			return ErrNotConnected
		}
		f.buf = append(f.buf, sv)
		f.met.surveysBuffered.Inc()
		return nil
	}
	if err := writeRepFrame(f.conn, rmSurvey, offload.EncodeSurvey(sv)); err != nil {
		f.met.surveysDropped.Inc()
		return err
	}
	f.met.surveysForward.Inc()
	return nil
}

// Connected reports whether the replication link is currently up.
func (f *Follower) Connected() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.conn != nil
}

// retainedDeltas snapshots the follower's applied-delta history,
// ascending version per map (Promote seeds the new leader's log from
// it).
func (f *Follower) retainedDeltas() map[byte][]delta {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[byte][]delta, len(f.retained))
	for id, log := range f.retained {
		out[id] = append([]delta(nil), log...)
	}
	return out
}

// takeBuffered drains the surveys buffered during a disconnect.
func (f *Follower) takeBuffered() []*offload.Survey {
	f.mu.Lock()
	defer f.mu.Unlock()
	buf := f.buf
	f.buf = nil
	return buf
}

// WaitVersion is a test and startup helper: it blocks until the given
// map store reaches at least version v, or the timeout elapses.
func (f *Follower) WaitVersion(mapID byte, v uint64, timeout time.Duration) bool {
	st := f.stores[mapID]
	if st == nil {
		return false
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st.Version() >= v {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return st.Version() >= v
}
