package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/mapstore"
	"repro/internal/offload"
	"repro/internal/telemetry"
)

// ErrNotConnected reports a survey forward attempted while the
// follower has no live leader connection; the point is dropped (the
// client fired and forgot) and the offload server counts it.
var ErrNotConnected = errors.New("cluster: not connected to replication leader")

// followerMetrics are the replication client's instruments.
type followerMetrics struct {
	connected       *telemetry.Gauge
	deltasApplied   *telemetry.Counter
	pointsApplied   *telemetry.Counter
	surveysForward  *telemetry.Counter
	surveysDropped  *telemetry.Counter
	reconnectsTotal *telemetry.Counter
}

func newFollowerMetrics(reg *telemetry.Registry) followerMetrics {
	return followerMetrics{
		connected:       reg.Gauge("uniloc_repl_connected", "1 while subscribed to the replication leader"),
		deltasApplied:   reg.Counter("uniloc_repl_deltas_applied_total", "leader compaction deltas folded into local stores"),
		pointsApplied:   reg.Counter("uniloc_repl_points_applied_total", "fingerprints folded in from deltas"),
		surveysForward:  reg.Counter("uniloc_repl_surveys_sent_total", "locally ingested surveys forwarded to the leader"),
		surveysDropped:  reg.Counter("uniloc_repl_surveys_send_failed_total", "survey forwards that failed (no leader connection)"),
		reconnectsTotal: reg.Counter("uniloc_repl_reconnects_total", "replication link reconnect attempts"),
	}
}

// Follower keeps a node's map stores converged with the leader's: it
// subscribes with its stores' current versions, folds every streamed
// delta in with Store.ApplyDelta (which pins versions exactly like a
// local compaction, preserving the bit-identity and batch-grouping
// invariants per node), and forwards locally ingested surveys to the
// leader — the node itself never compacts crowdsourced input, so its
// versions can never fork from the leader's.
type Follower struct {
	addr   string
	stores map[byte]*mapstore.Store
	met    followerMetrics

	mu   sync.Mutex
	conn net.Conn // nil while disconnected

	done chan struct{}
	once sync.Once
	wg   sync.WaitGroup
}

// NewFollower builds a follower replicating from the leader at addr
// and starts its connection loop (dial, subscribe, apply; reconnect
// with backoff on any failure). Close stops it.
//
// The stores must be constructed from the same seed database as the
// leader's and must never fold local submissions (route surveys
// through ForwardSurvey — offload.ServerConfig.SurveyIngest does this
// when wired); otherwise versions fork and ApplyDelta diverges.
func NewFollower(addr string, stores map[byte]*mapstore.Store, reg *telemetry.Registry) *Follower {
	f := &Follower{
		addr:   addr,
		stores: stores,
		met:    newFollowerMetrics(reg),
		done:   make(chan struct{}),
	}
	f.wg.Add(1)
	go f.run()
	return f
}

// Close stops the connection loop and drops the link. Idempotent.
func (f *Follower) Close() {
	f.once.Do(func() { close(f.done) })
	f.mu.Lock()
	if f.conn != nil {
		_ = f.conn.Close()
	}
	f.mu.Unlock()
	f.wg.Wait()
}

// run is the connection loop: one session per iteration, capped
// exponential backoff between attempts.
func (f *Follower) run() {
	defer f.wg.Done()
	backoff := 10 * time.Millisecond
	const maxBackoff = 2 * time.Second
	for {
		select {
		case <-f.done:
			return
		default:
		}
		err := f.session()
		if err == nil {
			backoff = 10 * time.Millisecond // served for a while: reset
		}
		select {
		case <-f.done:
			return
		case <-time.After(backoff):
		}
		f.met.reconnectsTotal.Inc()
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// session runs one subscribe-and-apply cycle until the link fails.
func (f *Follower) session() error {
	conn, err := net.DialTimeout("tcp", f.addr, 2*time.Second)
	if err != nil {
		return err
	}
	versions := make(map[byte]uint64, len(f.stores))
	for id, st := range f.stores {
		versions[id] = st.Version()
	}
	if err := writeRepFrame(conn, rmSubscribe, encodeSubscribe(versions)); err != nil {
		_ = conn.Close()
		return err
	}
	f.mu.Lock()
	f.conn = conn
	f.mu.Unlock()
	// A Close that ran between the dial and the assignment above saw a
	// nil conn and closed nothing; catch up here so the blocking read
	// below cannot outlive Close.
	select {
	case <-f.done:
		_ = conn.Close()
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		return nil
	default:
	}
	f.met.connected.Set(1)
	defer func() {
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		f.met.connected.Set(0)
		_ = conn.Close()
	}()

	for {
		t, payload, err := readRepFrame(conn)
		if err != nil {
			return nil // link failed; run() redials
		}
		switch t {
		case rmDelta:
			d, err := decodeDelta(payload)
			if err != nil {
				return err
			}
			st := f.stores[d.mapID]
			if st == nil {
				return fmt.Errorf("%w: delta for unknown map %d", ErrRepProtocol, d.mapID)
			}
			if cur := st.Version(); d.version != cur+1 {
				// A gap would silently fork the snapshot contents even
				// though ApplyDelta's version still increments; resubscribe
				// from our actual version instead of applying.
				return fmt.Errorf("cluster: delta version %d on local version %d (map %d)", d.version, cur, d.mapID)
			}
			if got := st.ApplyDelta(d.batch); got != d.version {
				return fmt.Errorf("cluster: applied delta landed at version %d, want %d", got, d.version)
			}
			f.met.deltasApplied.Inc()
			f.met.pointsApplied.Add(int64(len(d.batch)))
		case rmError:
			return fmt.Errorf("cluster: leader refused subscription: %s", payload)
		default:
			return fmt.Errorf("%w: unexpected frame type %d from leader", ErrRepProtocol, t)
		}
	}
}

// ForwardSurvey ships one locally received survey to the leader
// (fire-and-forget, like the phone uplink that delivered it). Plugs
// directly into offload.ServerConfig.SurveyIngest.
func (f *Follower) ForwardSurvey(sv *offload.Survey) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.conn == nil {
		f.met.surveysDropped.Inc()
		return ErrNotConnected
	}
	if err := writeRepFrame(f.conn, rmSurvey, offload.EncodeSurvey(sv)); err != nil {
		f.met.surveysDropped.Inc()
		return err
	}
	f.met.surveysForward.Inc()
	return nil
}

// Connected reports whether the replication link is currently up.
func (f *Follower) Connected() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.conn != nil
}

// WaitVersion is a test and startup helper: it blocks until the given
// map store reaches at least version v, or the timeout elapses.
func (f *Follower) WaitVersion(mapID byte, v uint64, timeout time.Duration) bool {
	st := f.stores[mapID]
	if st == nil {
		return false
	}
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st.Version() >= v {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return st.Version() >= v
}
