package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fingerprint"
	"repro/internal/geo"
	"repro/internal/imu"
	"repro/internal/noise"
	"repro/internal/offload"
	"repro/internal/prng"
	"repro/internal/regress"
	"repro/internal/rf"
	"repro/internal/schemes"
	"repro/internal/sensing"
	"repro/internal/telemetry"
	"repro/internal/world"
)

// clusterWorld mirrors the offload package's test world: a corridor
// with three APs and a deterministic framework factory (fixed scheme
// seeds), so a session's outputs depend only on the epochs it is fed —
// the property that makes "same walk, any node" bit-identical.
func clusterWorld(t testing.TB) (core.FrameworkFactory, *world.World, *fingerprint.DB) {
	t.Helper()
	w := &world.World{
		Name:  "cluster",
		Noise: noise.Field{Seed: 8},
		Proj:  geo.Projection{Origin: geo.LatLon{Lat: 1.3, Lon: 103.7}},
		Regions: []world.Region{
			{Name: "hall", Kind: world.KindOffice, Poly: geo.RectPoly(0, 0, 40, 4), SkyOpenness: 0.05, LightLux: 300, MagNoise: 2, CorridorWidth: 2.5},
		},
		APs: []world.Site{
			{ID: "a0", Pos: geo.Pt(5, 3), TxPowerDBm: 16},
			{ID: "a1", Pos: geo.Pt(20, 1), TxPowerDBm: 16},
			{ID: "a2", Pos: geo.Pt(35, 3), TxPowerDBm: 16},
		},
	}
	db := fingerprint.Survey(w, rf.WiFiModel(), w.APs, 3, rand.New(rand.NewSource(1)))
	ms := core.NewModelSet()
	for _, name := range []string{schemes.NameWiFi, schemes.NameMotion} {
		for _, env := range []core.EnvClass{core.EnvIndoor, core.EnvOutdoor} {
			ms.Put(&core.ErrorModel{
				Scheme: name, Env: env, Features: nil,
				Reg: &regress.Result{HasIntercept: true, Intercept: 3, ResidStd: 2},
			})
		}
	}
	factory := func() (*core.Framework, error) {
		// Tracked PDR source (bit-identical to rand.NewSource(2)): the
		// framework is snapshotable, so sessions ship over the handoff
		// wire and a peer node can continue any walk mid-flight.
		pdrSrc := prng.New(2)
		pdr := schemes.NewPDR(w, schemes.DefaultPDRConfig(), rand.New(pdrSrc))
		pdr.TrackSource(pdrSrc)
		ss := []schemes.Scheme{
			schemes.NewWiFi(db),
			pdr,
		}
		return core.NewFramework(ss, ms)
	}
	return factory, w, db
}

// corridorWalk precomputes one walker's epochs, deterministic in the
// seed.
func corridorWalk(w *world.World, lane float64, seed int64, epochs int) (geo.Point, []*sensing.Snapshot) {
	rnd := rand.New(rand.NewSource(seed))
	model := rf.WiFiModel()
	start := geo.Pt(2, lane)
	pos := start
	snaps := make([]*sensing.Snapshot, 0, epochs)
	for i := 0; i < epochs; i++ {
		pos = pos.Add(geo.Pt(0.7, 0))
		snaps = append(snaps, &sensing.Snapshot{
			Epoch:    i,
			WiFi:     model.Scan(w, w.APs, pos, rf.Reference(), rnd),
			Step:     &imu.StepEvent{LengthM: 0.7, HeadingR: 0, PeriodS: 0.5},
			LightLux: 300,
			MagVarUT: 2.2,
		})
	}
	return start, snaps
}

// node is one in-process uniloc-server backend: an offload server on a
// real TCP listener.
type node struct {
	srv *offload.Server
	ln  net.Listener

	mu    sync.Mutex
	conns []net.Conn
	wg    sync.WaitGroup
}

func startNode(t testing.TB, cfg offload.ServerConfig) *node {
	t.Helper()
	srv, err := offload.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	n := &node{srv: srv, ln: ln}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			n.mu.Lock()
			n.conns = append(n.conns, conn)
			n.mu.Unlock()
			n.wg.Add(1)
			go func() {
				defer n.wg.Done()
				_ = n.srv.Serve(conn)
			}()
		}
	}()
	t.Cleanup(func() { n.kill(); n.srv.Close() })
	return n
}

func (n *node) addr() string { return n.ln.Addr().String() }

// kill closes the listener and every live connection — a process
// crash, as far as the router and clients can tell. Idempotent.
func (n *node) kill() {
	_ = n.ln.Close()
	n.mu.Lock()
	for _, c := range n.conns {
		_ = c.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// startRouter runs a Router over a real listener.
func startRouter(t testing.TB, cfg RouterConfig) (*Router, string) {
	t.Helper()
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.ListenAndServe(ln, nil)
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		r.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("router did not stop")
		}
	})
	return r, ln.Addr().String()
}

// runWalk drives one walker's precomputed epochs and returns every
// result; any error is returned rather than fataled so concurrent
// walkers can report.
func runWalk(client *offload.Client, start geo.Point, snaps []*sensing.Snapshot) ([]*offload.Result, error) {
	if err := client.Hello(start); err != nil {
		return nil, fmt.Errorf("hello: %w", err)
	}
	out := make([]*offload.Result, 0, len(snaps))
	for i, snap := range snaps {
		res, err := client.Localize(snap)
		if err != nil {
			return out, fmt.Errorf("epoch %d: %w", i, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func samePositions(got, want []*offload.Result) error {
	if len(got) != len(want) {
		return fmt.Errorf("result counts differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if math.Float32bits(float32(got[i].X)) != math.Float32bits(float32(want[i].X)) ||
			math.Float32bits(float32(got[i].Y)) != math.Float32bits(float32(want[i].Y)) ||
			got[i].OK != want[i].OK {
			return fmt.Errorf("epoch %d diverged: (%v,%v,%v) vs (%v,%v,%v)",
				i, got[i].X, got[i].Y, got[i].OK, want[i].X, want[i].Y, want[i].OK)
		}
	}
	return nil
}

type walkCase struct {
	id    string
	start geo.Point
	snaps []*sensing.Snapshot
	want  []*offload.Result
}

// makeWalks precomputes walker inputs and their reference outputs
// against one directly-dialed node.
func makeWalks(t *testing.T, w *world.World, cfg offload.ServerConfig, walkers, epochs int) []walkCase {
	t.Helper()
	direct := startNode(t, cfg)
	walks := make([]walkCase, walkers)
	for i := range walks {
		start, snaps := corridorWalk(w, 1+float64(i%3), int64(40+i), epochs)
		conn, err := net.Dial("tcp", direct.addr())
		if err != nil {
			t.Fatal(err)
		}
		client := offload.NewClient(conn, fmt.Sprintf("phone-%d", i))
		want, err := runWalk(client, start, snaps)
		_ = client.Close()
		if err != nil {
			t.Fatalf("direct walk %d: %v", i, err)
		}
		walks[i] = walkCase{fmt.Sprintf("phone-%d", i), start, snaps, want}
	}
	return walks
}

// TestClusterBitIdenticalToDirect is the first half of the tentpole's
// acceptance bar: walker sessions consistent-hashed across a 3-node
// cluster produce bit-identical positions to the same walks served by
// one directly-dialed node. Run under -race in CI.
func TestClusterBitIdenticalToDirect(t *testing.T) {
	factory, w, _ := clusterWorld(t)
	cfg := offload.ServerConfig{Factory: factory}
	walks := makeWalks(t, w, cfg, 6, 10)

	nodes := []*node{startNode(t, cfg), startNode(t, cfg), startNode(t, cfg)}
	_, addr := startRouter(t, RouterConfig{
		Backends: []string{nodes[0].addr(), nodes[1].addr(), nodes[2].addr()},
	})

	var wg sync.WaitGroup
	errs := make([]error, len(walks))
	for i := range walks {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				errs[i] = err
				return
			}
			client := offload.NewClient(conn, walks[i].id)
			defer func() { _ = client.Close() }()
			got, err := runWalk(client, walks[i].start, walks[i].snaps)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = samePositions(got, walks[i].want)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("walker %d through cluster: %v", i, err)
		}
	}

	// The hash actually spread the sessions: at least two backends
	// served something.
	busy := 0
	for _, n := range nodes {
		if n.srv.Stats().Opened > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Errorf("only %d backends served sessions — ring not spreading", busy)
	}
}

// TestClusterNodeKillMidWalk is the second half: killing one backend
// mid-walk re-routes its sessions through the client reconnect path
// and every walker finishes its full walk — with no duplicate steps,
// pinned by walkers on surviving nodes staying bit-identical to the
// direct reference. Run under -race in CI.
func TestClusterNodeKillMidWalk(t *testing.T) {
	factory, w, _ := clusterWorld(t)
	cfg := offload.ServerConfig{Factory: factory}
	const walkers = 8
	const epochs = 14
	const killAt = 6
	walks := makeWalks(t, w, cfg, walkers, epochs)

	nodes := []*node{startNode(t, cfg), startNode(t, cfg), startNode(t, cfg)}
	router, addr := startRouter(t, RouterConfig{
		Backends: []string{nodes[0].addr(), nodes[1].addr(), nodes[2].addr()},
	})

	// Find the victim before starting: the node that phone-0's key maps
	// to, so at least one walker is guaranteed to be re-routed.
	victimAddr, ok := router.Ring().Pick("phone-0")
	if !ok {
		t.Fatal("ring empty")
	}
	var victim *node
	for _, n := range nodes {
		if n.addr() == victimAddr {
			victim = n
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, walkers)
	moved := make([]bool, walkers) // walker's home was the victim
	var killOnce sync.Once
	for i := range walks {
		home, _ := router.Ring().Pick(walks[i].id)
		moved[i] = home == victimAddr
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dial := func() (net.Conn, error) { return net.Dial("tcp", addr) }
			conn, err := dial()
			if err != nil {
				errs[i] = err
				return
			}
			client := offload.NewClient(conn, walks[i].id)
			client.SetTimeout(5 * time.Second)
			client.SetReconnect(dial, offload.Backoff{
				Min: 5 * time.Millisecond, Max: 200 * time.Millisecond, Attempts: 30, Seed: int64(i),
			})
			defer func() { _ = client.Close() }()
			if err := client.Hello(walks[i].start); err != nil {
				errs[i] = err
				return
			}
			var got []*offload.Result
			for j, snap := range walks[i].snaps {
				if j == killAt {
					killOnce.Do(func() { victim.kill() })
				}
				res, err := client.Localize(snap)
				if err != nil {
					errs[i] = fmt.Errorf("epoch %d: %w", j, err)
					return
				}
				got = append(got, res)
			}
			if len(got) != epochs {
				errs[i] = fmt.Errorf("finished %d/%d epochs", len(got), epochs)
				return
			}
			if !moved[i] {
				// Walkers whose node survived must be untouched by the
				// kill: bit-identical to the direct reference — the "no
				// duplicate steps" proof for the steady majority.
				errs[i] = samePositions(got, walks[i].want)
			} else {
				for j, r := range got {
					if !r.OK {
						errs[i] = fmt.Errorf("re-routed walker epoch %d not OK", j)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("walker %d (moved=%v): %v", i, moved[i], err)
		}
	}

	anyMoved := false
	for _, m := range moved {
		anyMoved = anyMoved || m
	}
	if !anyMoved {
		t.Fatal("no walker lived on the victim — test can't exercise re-routing")
	}
	// The victim is marked down on the ring after its death.
	if router.Ring().Up(victimAddr) {
		t.Error("victim still marked up after dial failures")
	}
	// Survivors picked up the orphaned sessions.
	served := int64(0)
	for _, n := range nodes {
		if n != victim {
			served += n.srv.Stats().EpochsServed
		}
	}
	if served == 0 {
		t.Error("survivors served nothing")
	}
}

// severConn severs the client→router link right after the target
// result frame has been fully read off the wire — the reply is
// delivered to this wrapper but "lost" before the application saw it,
// modeling a link that died with the reply in flight (the resume
// double-advance scenario, now through the router).
type severConn struct {
	net.Conn
	mu      sync.Mutex
	buf     []byte
	frame   int
	target  int
	severed bool
}

func (d *severConn) Read(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.buf) == 0 {
		var hdr [3]byte
		if _, err := readFull(d.Conn, hdr[:]); err != nil {
			return 0, err
		}
		n := int(hdr[1])<<8 | int(hdr[2])
		payload := make([]byte, n)
		if _, err := readFull(d.Conn, payload); err != nil {
			return 0, err
		}
		d.frame++
		if d.frame == d.target && !d.severed {
			d.severed = true
			_ = d.Conn.Close()
			return 0, fmt.Errorf("severConn: link died with reply in flight")
		}
		d.buf = append(hdr[:], payload...)
	}
	n := copy(p, d.buf)
	d.buf = d.buf[n:]
	return n, nil
}

func readFull(r net.Conn, p []byte) (int, error) {
	total := 0
	for total < len(p) {
		n, err := r.Read(p[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// TestClusterSameNodeResume verifies sequence-resume through the
// router: a client whose link dies with a reply in flight reconnects,
// the ring routes it to the same (healthy) backend, the v4
// re-handshake re-attaches the detached session, and the re-sent
// epoch is answered from the replay cache — the whole walk stays
// bit-identical to the uninterrupted reference. Run under -race in CI.
func TestClusterSameNodeResume(t *testing.T) {
	factory, w, _ := clusterWorld(t)
	cfg := offload.ServerConfig{Factory: factory}
	walks := makeWalks(t, w, cfg, 1, 12)
	wc := walks[0]

	backend := startNode(t, cfg)
	_, addr := startRouter(t, RouterConfig{Backends: []string{backend.addr()}})

	dialSevered := false
	dial := func() (net.Conn, error) {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if tc, ok := raw.(*net.TCPConn); ok {
			_ = tc.SetLinger(0) // sever = RST: the backend parks the session
		}
		if dialSevered {
			return raw, nil // reconnects get a clean link
		}
		dialSevered = true
		// Frame 1 is the Welcome; frame 1+k the k-th epoch's result.
		// Sever after the 5th epoch's reply was written.
		return &severConn{Conn: raw, target: 1 + 5}, nil
	}
	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	client := offload.NewClient(conn, wc.id)
	client.SetTimeout(2 * time.Second)
	client.SetReconnect(func() (net.Conn, error) { return dial() }, offload.Backoff{
		Min: 5 * time.Millisecond, Max: 100 * time.Millisecond, Attempts: 20, Seed: 7,
	})
	defer func() { _ = client.Close() }()

	got, err := runWalk(client, wc.start, wc.snaps)
	if err != nil {
		t.Fatal(err)
	}
	if err := samePositions(got, wc.want); err != nil {
		t.Fatalf("resumed walk diverged from reference: %v", err)
	}
	if client.Resumes() < 1 {
		t.Errorf("client resumes = %d, want >= 1", client.Resumes())
	}
	st := backend.srv.Stats()
	if st.Resumed < 1 || st.ReplayedEpochs < 1 {
		t.Errorf("backend resumed=%d replayed=%d, want >= 1 each", st.Resumed, st.ReplayedEpochs)
	}
	if st.Opened != 1 {
		t.Errorf("backend opened %d sessions, want 1 (resume, not re-open)", st.Opened)
	}
}

// TestRouterMembershipMetrics pins the satellite: the prober notices a
// dead backend, the ring marks it down, and the membership gauge on
// the telemetry registry flips to 0 — /metrics shows cluster state.
func TestRouterMembershipMetrics(t *testing.T) {
	factory, _, _ := clusterWorld(t)
	cfg := offload.ServerConfig{Factory: factory}
	a, b := startNode(t, cfg), startNode(t, cfg)
	reg := telemetry.NewRegistry()
	router, _ := startRouter(t, RouterConfig{
		Backends:    []string{a.addr(), b.addr()},
		HealthEvery: 10 * time.Millisecond,
		Metrics:     reg,
	})

	up := func(addr string) (float64, bool) {
		return reg.Snapshot().Get("uniloc_router_backend_up", "backend", addr)
	}
	if v, ok := up(a.addr()); !ok || v != 1 {
		t.Fatalf("backend %s gauge = %v,%v, want 1", a.addr(), v, ok)
	}

	b.kill()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if v, ok := up(b.addr()); ok && v == 0 && !router.Ring().Up(b.addr()) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("prober never marked the dead backend down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	members := router.Ring().Members()
	downRows := 0
	for _, m := range members {
		if !m.Up {
			downRows++
		}
	}
	if len(members) != 2 || downRows != 1 {
		t.Fatalf("membership = %+v, want 2 rows with 1 down", members)
	}
}
